// Dictionary (category-value) encoding. The paper (§6.1, Figure 19) observes
// that category attributes have few distinct values — sex, race, state —
// so the values can be coded in a small number of bits. The Dictionary maps
// Values to dense codes [0, cardinality) and back.

#ifndef STATCUBE_STORAGE_DICTIONARY_H_
#define STATCUBE_STORAGE_DICTIONARY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "statcube/common/status.h"
#include "statcube/common/value.h"

namespace statcube {

/// Bidirectional map between Values and dense integer codes.
class Dictionary {
 public:
  /// Returns the code for `v`, inserting it if new.
  uint32_t Encode(const Value& v) {
    auto it = code_of_.find(v);
    if (it != code_of_.end()) return it->second;
    uint32_t code = static_cast<uint32_t>(values_.size());
    values_.push_back(v);
    code_of_.emplace(v, code);
    return code;
  }

  /// Returns the code for `v`, or an error if `v` was never inserted.
  Result<uint32_t> Lookup(const Value& v) const {
    auto it = code_of_.find(v);
    if (it == code_of_.end())
      return Status::NotFound("value not in dictionary: " + v.ToString());
    return it->second;
  }

  /// The value for a code. Precondition: code < cardinality().
  const Value& Decode(uint32_t code) const { return values_[code]; }

  /// Number of distinct values.
  uint32_t cardinality() const { return static_cast<uint32_t>(values_.size()); }

  /// All values in code order.
  const std::vector<Value>& values() const { return values_; }

  /// Rough storage footprint of the dictionary itself.
  size_t ByteSize() const {
    size_t b = 0;
    for (const Value& v : values_) {
      b += sizeof(Value);
      if (v.type() == ValueType::kString) b += v.AsString().size();
    }
    return b;
  }

 private:
  std::vector<Value> values_;
  std::unordered_map<Value, uint32_t> code_of_;
};

}  // namespace statcube

#endif  // STATCUBE_STORAGE_DICTIONARY_H_
