// Run-length encoding of integer sequences. Used twice in the paper:
// compressing the least-rapidly-varying columns of a transposed file
// ([WL+85], §6.1, Figure 19) and compressing runs of nulls in a linearized
// sparse array under "header compression" ([EOA81], §6.2, Figure 21).

#ifndef STATCUBE_STORAGE_RLE_H_
#define STATCUBE_STORAGE_RLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace statcube {

/// A (value, run length) pair.
struct RleRun {
  uint64_t value;
  uint64_t length;
  bool operator==(const RleRun&) const = default;
};

/// Run-length-encoded sequence of uint64 values with positional access.
class RleVector {
 public:
  /// Appends one value, extending the last run if it matches.
  void PushBack(uint64_t v) {
    if (!runs_.empty() && runs_.back().value == v) {
      ++runs_.back().length;
    } else {
      runs_.push_back({v, 1});
    }
    ++size_;
  }

  /// Appends a run of `n` copies of `v`.
  void PushRun(uint64_t v, uint64_t n) {
    if (n == 0) return;
    if (!runs_.empty() && runs_.back().value == v) {
      runs_.back().length += n;
    } else {
      runs_.push_back({v, n});
    }
    size_ += n;
  }

  /// Value at logical position i (O(log #runs) via binary search over
  /// accumulated run boundaries, built lazily).
  uint64_t Get(uint64_t i) const;

  /// Decodes the whole sequence.
  std::vector<uint64_t> Decode() const;

  uint64_t size() const { return size_; }
  const std::vector<RleRun>& runs() const { return runs_; }
  size_t ByteSize() const { return runs_.size() * sizeof(RleRun); }

 private:
  void BuildPrefix() const;

  std::vector<RleRun> runs_;
  uint64_t size_ = 0;
  // Lazily built exclusive prefix sums of run lengths for positional lookup.
  mutable std::vector<uint64_t> prefix_;
};

}  // namespace statcube

#endif  // STATCUBE_STORAGE_RLE_H_
