// Packed bit vector and fixed-width bit-packed integer vector. These are the
// building blocks of bit-transposed files [WL+85] (paper §6.1, Figure 19):
// a category attribute with k distinct values needs only ceil(log2(k)) bits
// per row, and each bit position can be stored as its own "bit-transposed
// file" (one BitVector per bit plane).

#ifndef STATCUBE_STORAGE_BITVECTOR_H_
#define STATCUBE_STORAGE_BITVECTOR_H_

#include <cstdint>
#include <cstddef>
#include <vector>

namespace statcube {

/// A growable vector of bits, 64 per word.
class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(size_t n, bool value = false) { Resize(n, value); }

  void Resize(size_t n, bool value = false) {
    size_ = n;
    words_.assign((n + 63) / 64, value ? ~uint64_t{0} : 0);
    TrimLastWord();
  }

  void PushBack(bool bit) {
    if (size_ % 64 == 0) words_.push_back(0);
    if (bit) words_[size_ / 64] |= uint64_t{1} << (size_ % 64);
    ++size_;
  }

  bool Get(size_t i) const {
    return (words_[i / 64] >> (i % 64)) & 1;
  }

  void Set(size_t i, bool bit) {
    uint64_t mask = uint64_t{1} << (i % 64);
    if (bit)
      words_[i / 64] |= mask;
    else
      words_[i / 64] &= ~mask;
  }

  size_t size() const { return size_; }

  /// Number of set bits.
  size_t PopCount() const {
    size_t c = 0;
    for (uint64_t w : words_) c += static_cast<size_t>(__builtin_popcountll(w));
    return c;
  }

  /// Number of set bits in [0, i).
  size_t Rank(size_t i) const {
    size_t c = 0, full = i / 64;
    for (size_t w = 0; w < full; ++w)
      c += static_cast<size_t>(__builtin_popcountll(words_[w]));
    size_t rem = i % 64;
    if (rem) {
      uint64_t mask = (uint64_t{1} << rem) - 1;
      c += static_cast<size_t>(__builtin_popcountll(words_[full] & mask));
    }
    return c;
  }

  /// Bitwise AND with another vector of the same size (in place).
  void AndWith(const BitVector& other) {
    for (size_t i = 0; i < words_.size() && i < other.words_.size(); ++i)
      words_[i] &= other.words_[i];
  }

  /// Bitwise OR with another vector of the same size (in place).
  void OrWith(const BitVector& other) {
    for (size_t i = 0; i < words_.size() && i < other.words_.size(); ++i)
      words_[i] |= other.words_[i];
  }

  /// Flips every bit (in place); bits past `size()` stay zero.
  void Negate() {
    for (uint64_t& w : words_) w = ~w;
    TrimLastWord();
  }

  /// Storage footprint in bytes.
  size_t ByteSize() const { return words_.size() * sizeof(uint64_t); }

  /// Direct word access for fast scans.
  const std::vector<uint64_t>& words() const { return words_; }

 private:
  void TrimLastWord() {
    size_t rem = size_ % 64;
    if (rem && !words_.empty()) words_.back() &= (uint64_t{1} << rem) - 1;
  }

  std::vector<uint64_t> words_;
  size_t size_ = 0;
};

/// A vector of unsigned integers packed at a fixed bit width.
class PackedIntVector {
 public:
  explicit PackedIntVector(unsigned bits_per_value = 1)
      : bits_(bits_per_value == 0 ? 1 : bits_per_value) {}

  /// Minimum width able to represent values in [0, n).
  static unsigned BitsFor(uint64_t n) {
    if (n <= 1) return 1;
    unsigned b = 0;
    uint64_t max = n - 1;
    while (max) {
      ++b;
      max >>= 1;
    }
    return b;
  }

  void PushBack(uint64_t v) {
    size_t bit = size_ * bits_;
    size_t need_words = (bit + bits_ + 63) / 64;
    if (words_.size() < need_words) words_.resize(need_words, 0);
    size_t word = bit / 64, off = bit % 64;
    words_[word] |= v << off;
    if (off + bits_ > 64) words_[word + 1] |= v >> (64 - off);
    ++size_;
  }

  uint64_t Get(size_t i) const {
    size_t bit = i * bits_;
    size_t word = bit / 64, off = bit % 64;
    uint64_t v = words_[word] >> off;
    if (off + bits_ > 64) v |= words_[word + 1] << (64 - off);
    uint64_t mask = bits_ == 64 ? ~uint64_t{0} : (uint64_t{1} << bits_) - 1;
    return v & mask;
  }

  size_t size() const { return size_; }
  unsigned bits_per_value() const { return bits_; }
  size_t ByteSize() const { return words_.size() * sizeof(uint64_t); }

 private:
  unsigned bits_;
  std::vector<uint64_t> words_;
  size_t size_ = 0;
};

}  // namespace statcube

#endif  // STATCUBE_STORAGE_BITVECTOR_H_
