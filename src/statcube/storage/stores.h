// Physical table layouts from the paper's §6.1 (Figures 18 and 19), all with
// logical block accounting so benchmarks can report "blocks touched":
//
//  * RowFileStore     — the conventional N-ary row layout. Any summary query
//                       reads every byte of the relation.
//  * TransposedStore  — one file per column ("vertical partitioning",
//                       [THC79]). A summary query reads only the columns it
//                       mentions; fetching a whole row touches every column
//                       file (the trade-off the paper calls out).
//  * BitTransposedStore — [WL+85]: category columns are dictionary-encoded to
//                       ceil(log2(k)) bits and stored as separate bit planes
//                       (single-bit columns); equality predicates evaluate
//                       with word-parallel boolean operations on the planes.
//
// All three answer the same query shape — SUM(measure) over conjunctive
// equality filters on category columns — so bench_transposed and
// bench_bit_transposed can compare them directly.

#ifndef STATCUBE_STORAGE_STORES_H_
#define STATCUBE_STORAGE_STORES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "statcube/common/block_counter.h"
#include "statcube/common/status.h"
#include "statcube/common/value.h"
#include "statcube/relational/table.h"
#include "statcube/storage/bitvector.h"
#include "statcube/storage/dictionary.h"
#include "statcube/storage/rle.h"

namespace statcube {

/// An equality filter on a named column.
struct EqFilter {
  std::string column;
  Value value;
};

/// Common interface so benches can treat the layouts uniformly.
class ColumnarQueryable {
 public:
  virtual ~ColumnarQueryable() = default;

  /// SUM(measure_column) over rows satisfying all equality filters.
  virtual Result<double> SumWhere(const std::vector<EqFilter>& filters,
                                  const std::string& measure_column) = 0;

  /// Materializes row `i` (schema order).
  virtual Result<Row> GetRow(size_t i) = 0;

  /// Bytes this layout occupies.
  virtual size_t ByteSize() const = 0;

  /// Accounting for logical block reads.
  BlockCounter& counter() { return counter_; }

 protected:
  BlockCounter counter_;
};

/// Conventional row (N-ary) layout.
class RowFileStore : public ColumnarQueryable {
 public:
  explicit RowFileStore(const Table& table);

  Result<double> SumWhere(const std::vector<EqFilter>& filters,
                          const std::string& measure_column) override;
  Result<Row> GetRow(size_t i) override;
  size_t ByteSize() const override;

 private:
  Schema schema_;
  std::vector<Row> rows_;
  size_t row_bytes_;  // average encoded width of one row
};

/// One file per column ([THC79], Figure 18).
class TransposedStore : public ColumnarQueryable {
 public:
  explicit TransposedStore(const Table& table);

  Result<double> SumWhere(const std::vector<EqFilter>& filters,
                          const std::string& measure_column) override;
  Result<Row> GetRow(size_t i) override;
  size_t ByteSize() const override;

 private:
  Schema schema_;
  size_t num_rows_;
  std::vector<std::vector<Value>> columns_;
  std::vector<size_t> column_bytes_;  // encoded size of each column file
};

/// Options for the bit-transposed layout.
struct BitTransposedOptions {
  /// Additionally keep a run-length encoding of each column's code stream
  /// and charge the cheaper of (bit planes, RLE) per scan — the [WL+85]
  /// observation that slowly varying (e.g. sort-leading) columns compress
  /// dramatically under RLE.
  bool enable_rle = true;
};

/// Dictionary-encoded bit-plane layout ([WL+85], Figure 19). The measure
/// column is kept as a plain vector of doubles; every other column becomes
/// ceil(log2(cardinality)) bit planes.
class BitTransposedStore : public ColumnarQueryable {
 public:
  BitTransposedStore(const Table& table, const std::string& measure_column,
                     BitTransposedOptions options = {});

  Result<double> SumWhere(const std::vector<EqFilter>& filters,
                          const std::string& measure_column) override;
  Result<Row> GetRow(size_t i) override;
  size_t ByteSize() const override;

  /// Bitmap of rows where `column == value`, built by ANDing/negating bit
  /// planes (word-parallel predicate evaluation). Charges the touched
  /// planes' bytes.
  Result<BitVector> SelectBitmap(const std::string& column,
                                 const Value& value);

  /// Compression ratio versus the row layout of the same table.
  double CompressionVsRowBytes(size_t row_bytes) const {
    return double(row_bytes) / double(ByteSize());
  }

 private:
  struct EncodedColumn {
    Dictionary dict;
    unsigned bits = 0;
    std::vector<BitVector> planes;  // planes[b].Get(row) = bit b of code
    RleVector rle;                  // optional RLE of the code stream
    size_t PlaneBytes() const {
      size_t s = 0;
      for (const auto& p : planes) s += p.ByteSize();
      return s;
    }
  };

  Schema schema_;
  size_t num_rows_ = 0;
  std::string measure_column_;
  size_t measure_idx_ = 0;
  std::vector<double> measure_;           // plain doubles
  std::vector<EncodedColumn> encoded_;    // one per non-measure column
  std::vector<int> encoded_index_;        // schema col -> index in encoded_ (-1 = measure)
  BitTransposedOptions options_;
};

}  // namespace statcube

#endif  // STATCUBE_STORAGE_STORES_H_
