// In-memory B+-tree with per-subtree entry counts.
//
// The paper uses a B-tree twice:
//  * header compression ([EOA81], §6.2, Figure 21) builds a B-tree over the
//    accumulated (monotonically increasing) run-length sequence so that both
//    the forward mapping (array position -> stored position) and the inverse
//    mapping can be answered in O(log n);
//  * random sampling from B+-trees ([OR95], §5.6) needs rank-based access,
//    which the per-subtree counts provide (acceptance/rejection free
//    "select the i-th record" in O(log n)).
//
// Keys are kept in sorted order; duplicate keys are rejected. Leaves are
// linked for ordered scans.

#ifndef STATCUBE_STORAGE_BTREE_H_
#define STATCUBE_STORAGE_BTREE_H_

#include <cassert>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

namespace statcube {

/// B+-tree mapping K -> V. K must be less-than comparable.
template <typename K, typename V, int kMaxKeys = 64>
class BPlusTree {
  static_assert(kMaxKeys >= 4, "node fanout too small");

 public:
  BPlusTree() : root_(std::make_unique<Node>(/*leaf=*/true)) {}

  /// Inserts (key, value). Returns false (no change) if the key exists.
  bool Insert(const K& key, const V& value) {
    if (root_->keys.size() == kMaxKeys) {
      auto new_root = std::make_unique<Node>(/*leaf=*/false);
      new_root->count = root_->count;
      new_root->children.push_back(std::move(root_));
      SplitChild(new_root.get(), 0);
      root_ = std::move(new_root);
    }
    bool inserted = InsertNonFull(root_.get(), key, value);
    if (inserted) ++size_;
    return inserted;
  }

  /// Returns a pointer to the value for `key`, or nullptr.
  const V* Find(const K& key) const {
    const Node* n = root_.get();
    while (true) {
      size_t i = LowerBoundIndex(n->keys, key);
      if (n->leaf) {
        if (i < n->keys.size() && !(key < n->keys[i])) return &n->values[i];
        return nullptr;
      }
      if (i < n->keys.size() && !(key < n->keys[i])) ++i;  // equal separators go right
      n = n->children[i].get();
    }
  }

  /// Entry cursor: key/value of a leaf slot.
  struct Entry {
    const K* key = nullptr;
    const V* value = nullptr;
    bool valid() const { return key != nullptr; }
  };

  /// First entry with key >= `key` (empty Entry if none).
  Entry LowerBound(const K& key) const {
    const Node* n = root_.get();
    while (!n->leaf) {
      size_t i = LowerBoundIndex(n->keys, key);
      if (i < n->keys.size() && !(key < n->keys[i])) ++i;
      n = n->children[i].get();
    }
    size_t i = LowerBoundIndex(n->keys, key);
    while (n && i >= n->keys.size()) {
      n = n->next;
      i = 0;
    }
    if (!n) return {};
    return {&n->keys[i], &n->values[i]};
  }

  /// Last entry with key <= `key` (empty Entry if none). This is the
  /// header-compression primitive: find the run whose accumulated start
  /// covers a position.
  Entry FloorEntry(const K& key) const {
    const Node* n = root_.get();
    Entry best{};
    while (true) {
      // Find the last key in this node that is <= key.
      size_t i = UpperBoundIndex(n->keys, key);  // first key > key
      if (n->leaf) {
        if (i > 0) best = {&n->keys[i - 1], &n->values[i - 1]};
        return best;
      }
      if (i > 0) {
        // keys[i-1] <= key: remember it as a candidate via the left subtree
        // max; but simpler: descend into children[i] which holds keys in
        // (keys[i-1], keys[i]]. A floor may live there or be keys[i-1]'s leaf
        // copy. Since this is a B+-tree, every key occurs in a leaf, so
        // descending into children[i] finds it.
      }
      n = n->children[i].get();
    }
  }

  /// The entry of rank `r` in key order, 0-based. Precondition: r < size().
  Entry SelectByRank(size_t r) const {
    assert(r < size_);
    const Node* n = root_.get();
    while (!n->leaf) {
      size_t i = 0;
      while (r >= n->children[i]->count) {
        r -= n->children[i]->count;
        ++i;
      }
      n = n->children[i].get();
    }
    return {&n->keys[r], &n->values[r]};
  }

  /// Visits all entries in key order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    const Node* n = root_.get();
    while (!n->leaf) n = n->children.front().get();
    for (; n; n = n->next)
      for (size_t i = 0; i < n->keys.size(); ++i) fn(n->keys[i], n->values[i]);
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Height of the tree (1 for a lone leaf). Exposed for tests.
  int Height() const {
    int h = 1;
    const Node* n = root_.get();
    while (!n->leaf) {
      n = n->children.front().get();
      ++h;
    }
    return h;
  }

 private:
  struct Node {
    explicit Node(bool is_leaf) : leaf(is_leaf) {}
    bool leaf;
    size_t count = 0;  // total entries in this subtree
    std::vector<K> keys;
    std::vector<V> values;                        // leaf only
    std::vector<std::unique_ptr<Node>> children;  // internal only
    Node* next = nullptr;                         // leaf chain
  };

  static size_t LowerBoundIndex(const std::vector<K>& keys, const K& key) {
    size_t lo = 0, hi = keys.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (keys[mid] < key)
        lo = mid + 1;
      else
        hi = mid;
    }
    return lo;
  }

  static size_t UpperBoundIndex(const std::vector<K>& keys, const K& key) {
    size_t lo = 0, hi = keys.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (key < keys[mid])
        hi = mid;
      else
        lo = mid + 1;
    }
    return lo;
  }

  // Splits the full child `parent->children[i]` in two, hoisting a separator.
  void SplitChild(Node* parent, size_t i) {
    Node* child = parent->children[i].get();
    auto right = std::make_unique<Node>(child->leaf);
    size_t mid = child->keys.size() / 2;

    if (child->leaf) {
      right->keys.assign(child->keys.begin() + mid, child->keys.end());
      right->values.assign(child->values.begin() + mid, child->values.end());
      child->keys.resize(mid);
      child->values.resize(mid);
      right->next = child->next;
      child->next = right.get();
      right->count = right->keys.size();
      child->count = child->keys.size();
      // Separator: first key of the right leaf (B+-tree style: separator is
      // duplicated in the leaf).
      parent->keys.insert(parent->keys.begin() + i, right->keys.front());
    } else {
      // Internal: the middle key moves up, children split around it.
      K sep = child->keys[mid];
      right->keys.assign(child->keys.begin() + mid + 1, child->keys.end());
      child->keys.resize(mid);
      for (size_t c = mid + 1; c < child->children.size(); ++c)
        right->children.push_back(std::move(child->children[c]));
      child->children.resize(mid + 1);
      right->count = 0;
      for (auto& c : right->children) right->count += c->count;
      child->count = 0;
      for (auto& c : child->children) child->count += c->count;
      parent->keys.insert(parent->keys.begin() + i, sep);
    }
    parent->children.insert(parent->children.begin() + i + 1, std::move(right));
  }

  bool InsertNonFull(Node* n, const K& key, const V& value) {
    if (n->leaf) {
      size_t i = LowerBoundIndex(n->keys, key);
      if (i < n->keys.size() && !(key < n->keys[i])) return false;  // duplicate
      n->keys.insert(n->keys.begin() + i, key);
      n->values.insert(n->values.begin() + i, value);
      ++n->count;
      return true;
    }
    size_t i = LowerBoundIndex(n->keys, key);
    if (i < n->keys.size() && !(key < n->keys[i])) ++i;
    if (n->children[i]->keys.size() == kMaxKeys) {
      SplitChild(n, i);
      // The new separator n->keys[i] is the minimum of the right half; keys
      // >= it belong to the right child.
      if (!(key < n->keys[i])) ++i;
    }
    bool inserted = InsertNonFull(n->children[i].get(), key, value);
    if (inserted) ++n->count;
    return inserted;
  }

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace statcube

#endif  // STATCUBE_STORAGE_BTREE_H_
