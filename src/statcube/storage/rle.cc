#include "statcube/storage/rle.h"

#include <algorithm>

namespace statcube {

void RleVector::BuildPrefix() const {
  if (prefix_.size() == runs_.size()) return;
  prefix_.resize(runs_.size());
  uint64_t acc = 0;
  for (size_t i = 0; i < runs_.size(); ++i) {
    prefix_[i] = acc;
    acc += runs_[i].length;
  }
}

uint64_t RleVector::Get(uint64_t i) const {
  BuildPrefix();
  // Find the last run whose start is <= i.
  auto it = std::upper_bound(prefix_.begin(), prefix_.end(), i);
  size_t run = static_cast<size_t>(it - prefix_.begin()) - 1;
  return runs_[run].value;
}

std::vector<uint64_t> RleVector::Decode() const {
  std::vector<uint64_t> out;
  out.reserve(size_);
  for (const RleRun& r : runs_)
    out.insert(out.end(), r.length, r.value);
  return out;
}

}  // namespace statcube
