#include "statcube/storage/stores.h"

#include <algorithm>

namespace statcube {

namespace {

// Encoded width of one value: 8 bytes for numerics, string length for
// strings (a disk layout would add a length prefix; close enough for
// relative comparisons).
size_t ValueBytes(const Value& v) {
  if (v.type() == ValueType::kString) return v.AsString().size();
  return 8;
}

size_t AvgRowBytes(const Table& t) {
  if (t.num_rows() == 0) return 0;
  size_t total = 0;
  size_t sample = std::min<size_t>(t.num_rows(), 256);
  for (size_t i = 0; i < sample; ++i)
    for (const Value& v : t.row(i)) total += ValueBytes(v);
  return std::max<size_t>(1, total / sample);
}

}  // namespace

// ---------------------------------------------------------------- RowFile

RowFileStore::RowFileStore(const Table& table)
    : schema_(table.schema()),
      rows_(table.rows()),
      row_bytes_(AvgRowBytes(table)) {}

Result<double> RowFileStore::SumWhere(const std::vector<EqFilter>& filters,
                                      const std::string& measure_column) {
  STATCUBE_ASSIGN_OR_RETURN(size_t midx, schema_.IndexOf(measure_column));
  std::vector<std::pair<size_t, Value>> fidx;
  for (const auto& f : filters) {
    STATCUBE_ASSIGN_OR_RETURN(size_t idx, schema_.IndexOf(f.column));
    fidx.emplace_back(idx, f.value);
  }
  // A row scan reads the entire relation.
  counter_.ChargeBytes(rows_.size() * row_bytes_);
  double sum = 0;
  for (const Row& row : rows_) {
    bool match = true;
    for (const auto& [idx, v] : fidx) {
      if (row[idx] != v) {
        match = false;
        break;
      }
    }
    if (match && row[midx].is_numeric()) sum += row[midx].AsDouble();
  }
  return sum;
}

Result<Row> RowFileStore::GetRow(size_t i) {
  if (i >= rows_.size()) return Status::OutOfRange("row index");
  // One row is at most a couple of blocks.
  counter_.ChargeBytes(row_bytes_);
  return rows_[i];
}

size_t RowFileStore::ByteSize() const { return rows_.size() * row_bytes_; }

// -------------------------------------------------------------- Transposed

TransposedStore::TransposedStore(const Table& table)
    : schema_(table.schema()), num_rows_(table.num_rows()) {
  size_t ncols = schema_.num_columns();
  columns_.resize(ncols);
  column_bytes_.assign(ncols, 0);
  for (size_t c = 0; c < ncols; ++c) {
    columns_[c].reserve(num_rows_);
    for (size_t r = 0; r < num_rows_; ++r) {
      columns_[c].push_back(table.at(r, c));
      column_bytes_[c] += ValueBytes(table.at(r, c));
    }
  }
}

Result<double> TransposedStore::SumWhere(const std::vector<EqFilter>& filters,
                                         const std::string& measure_column) {
  STATCUBE_ASSIGN_OR_RETURN(size_t midx, schema_.IndexOf(measure_column));
  std::vector<std::pair<size_t, Value>> fidx;
  for (const auto& f : filters) {
    STATCUBE_ASSIGN_OR_RETURN(size_t idx, schema_.IndexOf(f.column));
    fidx.emplace_back(idx, f.value);
  }
  // Only the mentioned column files are read.
  counter_.ChargeBytes(column_bytes_[midx]);
  for (const auto& [idx, v] : fidx) {
    (void)v;
    counter_.ChargeBytes(column_bytes_[idx]);
  }
  double sum = 0;
  for (size_t r = 0; r < num_rows_; ++r) {
    bool match = true;
    for (const auto& [idx, v] : fidx) {
      if (columns_[idx][r] != v) {
        match = false;
        break;
      }
    }
    if (match && columns_[midx][r].is_numeric())
      sum += columns_[midx][r].AsDouble();
  }
  return sum;
}

Result<Row> TransposedStore::GetRow(size_t i) {
  if (i >= num_rows_) return Status::OutOfRange("row index");
  // The transposed-file penalty: one block touch per column file.
  counter_.ChargeBlocks(schema_.num_columns());
  Row row;
  row.reserve(schema_.num_columns());
  for (size_t c = 0; c < schema_.num_columns(); ++c)
    row.push_back(columns_[c][i]);
  return row;
}

size_t TransposedStore::ByteSize() const {
  size_t b = 0;
  for (size_t cb : column_bytes_) b += cb;
  return b;
}

// ---------------------------------------------------------- Bit-transposed

BitTransposedStore::BitTransposedStore(const Table& table,
                                       const std::string& measure_column,
                                       BitTransposedOptions options)
    : schema_(table.schema()),
      num_rows_(table.num_rows()),
      measure_column_(measure_column),
      options_(options) {
  auto midx = schema_.IndexOf(measure_column);
  measure_idx_ = midx.ok() ? *midx : 0;

  size_t ncols = schema_.num_columns();
  encoded_index_.assign(ncols, -1);
  measure_.reserve(num_rows_);
  for (size_t r = 0; r < num_rows_; ++r) {
    const Value& v = table.at(r, measure_idx_);
    measure_.push_back(v.is_numeric() ? v.AsDouble() : 0.0);
  }

  for (size_t c = 0; c < ncols; ++c) {
    if (c == measure_idx_) continue;
    encoded_index_[c] = static_cast<int>(encoded_.size());
    encoded_.emplace_back();
    EncodedColumn& ec = encoded_.back();
    // First pass: build the dictionary (codes in first-seen order).
    std::vector<uint32_t> codes;
    codes.reserve(num_rows_);
    for (size_t r = 0; r < num_rows_; ++r)
      codes.push_back(ec.dict.Encode(table.at(r, c)));
    ec.bits = PackedIntVector::BitsFor(ec.dict.cardinality());
    ec.planes.assign(ec.bits, BitVector(num_rows_));
    for (size_t r = 0; r < num_rows_; ++r)
      for (unsigned b = 0; b < ec.bits; ++b)
        if (codes[r] & (1u << b)) ec.planes[b].Set(r, true);
    if (options_.enable_rle)
      for (uint32_t code : codes) ec.rle.PushBack(code);
  }
}

Result<BitVector> BitTransposedStore::SelectBitmap(const std::string& column,
                                                   const Value& value) {
  STATCUBE_ASSIGN_OR_RETURN(size_t cidx, schema_.IndexOf(column));
  if (encoded_index_[cidx] < 0)
    return Status::InvalidArgument("cannot filter on the measure column");
  EncodedColumn& ec = encoded_[static_cast<size_t>(encoded_index_[cidx])];
  auto code = ec.dict.Lookup(value);
  if (!code.ok()) {
    // Value never occurs: empty bitmap, no planes read.
    return BitVector(num_rows_, false);
  }
  counter_.ChargeBytes(ec.PlaneBytes());
  BitVector out(num_rows_, true);
  for (unsigned b = 0; b < ec.bits; ++b) {
    BitVector plane = ec.planes[b];
    if (!((*code >> b) & 1u)) plane.Negate();
    out.AndWith(plane);
  }
  return out;
}

Result<double> BitTransposedStore::SumWhere(
    const std::vector<EqFilter>& filters, const std::string& measure_column) {
  if (measure_column != measure_column_)
    return Status::InvalidArgument("store was built for measure '" +
                                   measure_column_ + "'");
  BitVector match(num_rows_, true);
  for (const auto& f : filters) {
    STATCUBE_ASSIGN_OR_RETURN(BitVector bm, SelectBitmap(f.column, f.value));
    match.AndWith(bm);
  }
  // Read the measure column (plain doubles).
  counter_.ChargeBytes(measure_.size() * sizeof(double));
  double sum = 0;
  const auto& words = match.words();
  for (size_t w = 0; w < words.size(); ++w) {
    uint64_t bits = words[w];
    while (bits) {
      unsigned tz = static_cast<unsigned>(__builtin_ctzll(bits));
      size_t r = w * 64 + tz;
      if (r < num_rows_) sum += measure_[r];
      bits &= bits - 1;
    }
  }
  return sum;
}

Result<Row> BitTransposedStore::GetRow(size_t i) {
  if (i >= num_rows_) return Status::OutOfRange("row index");
  // Touch every plane of every column plus the measure: the same
  // row-reassembly penalty as the transposed store, amplified by the number
  // of bit planes.
  uint64_t planes_touched = 0;
  for (const auto& ec : encoded_) planes_touched += ec.bits;
  counter_.ChargeBlocks(planes_touched + 1);

  Row row(schema_.num_columns());
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    if (encoded_index_[c] < 0) {
      row[c] = Value(measure_[i]);
      continue;
    }
    const EncodedColumn& ec = encoded_[static_cast<size_t>(encoded_index_[c])];
    uint32_t code = 0;
    for (unsigned b = 0; b < ec.bits; ++b)
      if (ec.planes[b].Get(i)) code |= (1u << b);
    row[c] = ec.dict.Decode(code);
  }
  return row;
}

size_t BitTransposedStore::ByteSize() const {
  size_t b = measure_.size() * sizeof(double);
  for (const auto& ec : encoded_) {
    // When RLE is enabled, a real system would store the cheaper encoding.
    size_t plane_bytes = ec.PlaneBytes() + ec.dict.ByteSize();
    if (options_.enable_rle)
      plane_bytes = std::min(plane_bytes, ec.rle.ByteSize() + ec.dict.ByteSize());
    b += plane_bytes;
  }
  return b;
}

}  // namespace statcube
