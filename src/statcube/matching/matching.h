// Classification matching (paper §5.7, Figure 17) and disaggregation by
// proxy (§5.3).
//
// Summarizing across sources fails when their classifications disagree:
//  * non-overlapping granularities — two age-group bucketings with different
//    boundaries. We align them by refining both to the union of boundary
//    points under a uniform-density interpolation, then summing. The
//    interpolation method is recorded so the "metadata of the methods used"
//    can be kept in the database, as the paper demands.
//  * time-varying categories — an industry list that gains "internet" in
//    1991. A CategoryTimeline stores each period's category set and explicit
//    split/merge/rename mappings between periods.
//  * disaggregation by proxy — estimate a finer breakdown of a total using
//    a proxy variable (county areas standing in for county populations).

#ifndef STATCUBE_MATCHING_MATCHING_H_
#define STATCUBE_MATCHING_MATCHING_H_

#include <map>
#include <string>
#include <vector>

#include "statcube/common/status.h"
#include "statcube/common/value.h"

namespace statcube {

/// One bucket of an interval classification: [lo, hi) with a measure value.
struct IntervalBucket {
  double lo = 0;
  double hi = 0;
  double value = 0;
};

/// Re-buckets `source` onto the boundary list `boundaries` (ascending,
/// covering the source span) by uniform-density interpolation: a source
/// bucket contributes to a target bucket proportionally to their overlap.
Result<std::vector<IntervalBucket>> RefineToBoundaries(
    const std::vector<IntervalBucket>& source,
    const std::vector<double>& boundaries);

/// Aligns two interval classifications of the same domain to their common
/// refinement (union of boundaries) and returns the bucket-wise sum — the
/// "combined age-group classification" of Figure 17.
Result<std::vector<IntervalBucket>> MergeIntervalSources(
    const std::vector<IntervalBucket>& a, const std::vector<IntervalBucket>& b);

/// Category sets that change over time, with declared mappings.
class CategoryTimeline {
 public:
  /// Registers a period's category set (periods are ordered by insertion).
  Status AddVersion(const std::string& period, std::vector<Value> categories);

  /// Declares that `from_value` in `from_period` corresponds to `to_values`
  /// in `to_period` (rename: one value; split: several; retire: empty).
  Status DeclareMapping(const std::string& from_period, const Value& from_value,
                        const std::string& to_period,
                        std::vector<Value> to_values);

  /// Maps a category value between periods: explicit mapping if declared,
  /// identity if the value exists in the target period, NotFound otherwise
  /// (the undocumented-analyst-judgment case the paper warns about).
  Result<std::vector<Value>> Map(const std::string& from_period,
                                 const Value& value,
                                 const std::string& to_period) const;

  /// Categories present in `later` but not `earlier` (e.g. {"internet"}).
  Result<std::vector<Value>> Added(const std::string& earlier,
                                   const std::string& later) const;

  /// Categories present in `earlier` but not `later`.
  Result<std::vector<Value>> Removed(const std::string& earlier,
                                     const std::string& later) const;

  const std::vector<std::string>& periods() const { return periods_; }

 private:
  Result<const std::vector<Value>*> VersionOf(const std::string& period) const;

  std::vector<std::string> periods_;
  std::map<std::string, std::vector<Value>> versions_;
  // (from_period, from_value, to_period) -> to_values
  std::map<std::string, std::map<Value, std::map<std::string, std::vector<Value>>>>
      mappings_;
};

/// A child category with its parent and proxy weight.
struct ProxyChild {
  Value child;
  Value parent;
  double proxy_weight = 0;  ///< e.g. county area
};

/// Disaggregation by proxy: distributes each parent's total over its
/// children proportionally to the proxy weights ("use the area of the
/// counties as a proxy to estimate the population at the county level").
Result<std::map<Value, double>> DisaggregateByProxy(
    const std::map<Value, double>& parent_totals,
    const std::vector<ProxyChild>& children);

}  // namespace statcube

#endif  // STATCUBE_MATCHING_MATCHING_H_
