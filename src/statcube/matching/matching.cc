#include "statcube/matching/matching.h"

#include <algorithm>
#include <set>

namespace statcube {

Result<std::vector<IntervalBucket>> RefineToBoundaries(
    const std::vector<IntervalBucket>& source,
    const std::vector<double>& boundaries) {
  if (boundaries.size() < 2)
    return Status::InvalidArgument("need at least two boundaries");
  for (size_t i = 1; i < boundaries.size(); ++i)
    if (boundaries[i] <= boundaries[i - 1])
      return Status::InvalidArgument("boundaries must be ascending");
  for (const auto& b : source) {
    if (b.hi <= b.lo) return Status::InvalidArgument("empty source bucket");
    if (b.lo < boundaries.front() || b.hi > boundaries.back())
      return Status::InvalidArgument("boundaries do not cover the source");
  }

  std::vector<IntervalBucket> out;
  for (size_t i = 0; i + 1 < boundaries.size(); ++i)
    out.push_back({boundaries[i], boundaries[i + 1], 0.0});
  // Uniform-density interpolation: each source bucket spreads its value
  // over its span.
  for (const auto& s : source) {
    double density = s.value / (s.hi - s.lo);
    for (auto& t : out) {
      double lo = std::max(s.lo, t.lo), hi = std::min(s.hi, t.hi);
      if (hi > lo) t.value += density * (hi - lo);
    }
  }
  return out;
}

Result<std::vector<IntervalBucket>> MergeIntervalSources(
    const std::vector<IntervalBucket>& a,
    const std::vector<IntervalBucket>& b) {
  std::set<double> bounds;
  for (const auto& x : a) {
    bounds.insert(x.lo);
    bounds.insert(x.hi);
  }
  for (const auto& x : b) {
    bounds.insert(x.lo);
    bounds.insert(x.hi);
  }
  std::vector<double> boundaries(bounds.begin(), bounds.end());
  STATCUBE_ASSIGN_OR_RETURN(std::vector<IntervalBucket> ra,
                            RefineToBoundaries(a, boundaries));
  STATCUBE_ASSIGN_OR_RETURN(std::vector<IntervalBucket> rb,
                            RefineToBoundaries(b, boundaries));
  for (size_t i = 0; i < ra.size(); ++i) ra[i].value += rb[i].value;
  return ra;
}

Status CategoryTimeline::AddVersion(const std::string& period,
                                    std::vector<Value> categories) {
  if (versions_.count(period))
    return Status::AlreadyExists("period '" + period + "'");
  periods_.push_back(period);
  versions_.emplace(period, std::move(categories));
  return Status::OK();
}

Result<const std::vector<Value>*> CategoryTimeline::VersionOf(
    const std::string& period) const {
  auto it = versions_.find(period);
  if (it == versions_.end())
    return Status::NotFound("no category version for period '" + period + "'");
  return &it->second;
}

Status CategoryTimeline::DeclareMapping(const std::string& from_period,
                                        const Value& from_value,
                                        const std::string& to_period,
                                        std::vector<Value> to_values) {
  STATCUBE_RETURN_NOT_OK(VersionOf(from_period).status());
  STATCUBE_ASSIGN_OR_RETURN(const std::vector<Value>* target,
                            VersionOf(to_period));
  for (const Value& v : to_values) {
    if (std::find(target->begin(), target->end(), v) == target->end())
      return Status::InvalidArgument("mapping target " + v.ToString() +
                                     " not a category of period '" +
                                     to_period + "'");
  }
  mappings_[from_period][from_value][to_period] = std::move(to_values);
  return Status::OK();
}

Result<std::vector<Value>> CategoryTimeline::Map(
    const std::string& from_period, const Value& value,
    const std::string& to_period) const {
  STATCUBE_ASSIGN_OR_RETURN(const std::vector<Value>* from,
                            VersionOf(from_period));
  STATCUBE_ASSIGN_OR_RETURN(const std::vector<Value>* to,
                            VersionOf(to_period));
  if (std::find(from->begin(), from->end(), value) == from->end())
    return Status::NotFound(value.ToString() + " is not a category of '" +
                            from_period + "'");
  auto pit = mappings_.find(from_period);
  if (pit != mappings_.end()) {
    auto vit = pit->second.find(value);
    if (vit != pit->second.end()) {
      auto tit = vit->second.find(to_period);
      if (tit != vit->second.end()) return tit->second;
    }
  }
  // Identity when the category survives unchanged.
  if (std::find(to->begin(), to->end(), value) != to->end())
    return std::vector<Value>{value};
  return Status::NotFound("no mapping for " + value.ToString() + " from '" +
                          from_period + "' to '" + to_period +
                          "' and the category does not survive");
}

Result<std::vector<Value>> CategoryTimeline::Added(
    const std::string& earlier, const std::string& later) const {
  STATCUBE_ASSIGN_OR_RETURN(const std::vector<Value>* e, VersionOf(earlier));
  STATCUBE_ASSIGN_OR_RETURN(const std::vector<Value>* l, VersionOf(later));
  std::vector<Value> out;
  for (const Value& v : *l)
    if (std::find(e->begin(), e->end(), v) == e->end()) out.push_back(v);
  return out;
}

Result<std::vector<Value>> CategoryTimeline::Removed(
    const std::string& earlier, const std::string& later) const {
  return Added(later, earlier);
}

Result<std::map<Value, double>> DisaggregateByProxy(
    const std::map<Value, double>& parent_totals,
    const std::vector<ProxyChild>& children) {
  // Sum of proxy weights per parent.
  std::map<Value, double> weight_sum;
  for (const auto& c : children) {
    if (c.proxy_weight < 0)
      return Status::InvalidArgument("negative proxy weight for " +
                                     c.child.ToString());
    weight_sum[c.parent] += c.proxy_weight;
  }
  std::map<Value, double> out;
  for (const auto& c : children) {
    auto pit = parent_totals.find(c.parent);
    if (pit == parent_totals.end())
      return Status::NotFound("no total for parent " + c.parent.ToString());
    double wsum = weight_sum[c.parent];
    if (wsum <= 0)
      return Status::InvalidArgument("zero total proxy weight under " +
                                     c.parent.ToString());
    out[c.child] = pit->second * (c.proxy_weight / wsum);
  }
  return out;
}

}  // namespace statcube
