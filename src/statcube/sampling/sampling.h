// Random sampling inside the data management system ([OR95], paper §5.6).
// The paper's efficiency argument: extracting a large collection only to
// sample it outside the system is wasteful; the sampling function belongs in
// the engine. Provided: reservoir sampling (one pass, bounded memory),
// Bernoulli sampling, and rank-based sampling from a B+-tree (uniform
// without replacement via subtree counts, no scan at all).

#ifndef STATCUBE_SAMPLING_SAMPLING_H_
#define STATCUBE_SAMPLING_SAMPLING_H_

#include <cstdint>
#include <vector>

#include "statcube/common/rng.h"
#include "statcube/common/status.h"
#include "statcube/relational/table.h"
#include "statcube/storage/btree.h"

namespace statcube {

/// One-pass reservoir sample of `k` rows (all rows equally likely; order not
/// meaningful). Returns all rows if k >= table size.
Table ReservoirSample(const Table& input, size_t k, uint64_t seed);

/// Bernoulli sample: keeps each row independently with probability `p`.
Result<Table> BernoulliSample(const Table& input, double p, uint64_t seed);

/// Uniform sample of `k` distinct keys from a B+-tree using rank selection
/// on the subtree counts — O(k log n), no traversal of unsampled records.
template <typename K, typename V, int kMaxKeys>
std::vector<std::pair<K, V>> BTreeSample(const BPlusTree<K, V, kMaxKeys>& tree,
                                         size_t k, uint64_t seed) {
  std::vector<std::pair<K, V>> out;
  size_t n = tree.size();
  if (n == 0) return out;
  if (k > n) k = n;
  // Floyd's algorithm for k distinct ranks in [0, n).
  Rng rng(seed);
  std::vector<size_t> ranks;
  std::vector<bool> chosen(n, false);
  for (size_t j = n - k; j < n; ++j) {
    size_t t = size_t(rng.Uniform(j + 1));
    size_t pick = chosen[t] ? j : t;
    chosen[pick] = true;
    ranks.push_back(pick);
  }
  for (size_t r : ranks) {
    auto e = tree.SelectByRank(r);
    out.emplace_back(*e.key, *e.value);
  }
  return out;
}

}  // namespace statcube

#endif  // STATCUBE_SAMPLING_SAMPLING_H_
