#include "statcube/sampling/sampling.h"

namespace statcube {

Table ReservoirSample(const Table& input, size_t k, uint64_t seed) {
  Table out(input.name() + "_sample", input.schema());
  if (k == 0) return out;
  Rng rng(seed);
  std::vector<size_t> reservoir;
  for (size_t i = 0; i < input.num_rows(); ++i) {
    if (reservoir.size() < k) {
      reservoir.push_back(i);
    } else {
      size_t j = size_t(rng.Uniform(i + 1));
      if (j < k) reservoir[j] = i;
    }
  }
  for (size_t i : reservoir) out.AppendRowUnchecked(input.row(i));
  return out;
}

Result<Table> BernoulliSample(const Table& input, double p, uint64_t seed) {
  if (p < 0.0 || p > 1.0)
    return Status::InvalidArgument("sampling rate must be in [0, 1]");
  Rng rng(seed);
  Table out(input.name() + "_sample", input.schema());
  for (const Row& r : input.rows())
    if (rng.Bernoulli(p)) out.AppendRowUnchecked(r);
  return out;
}

}  // namespace statcube
