#include "statcube/serve/front_door.h"

#include <algorithm>
#include <sstream>

#include "statcube/obs/json.h"
#include "statcube/obs/log.h"
#include "statcube/obs/metrics.h"
#include "statcube/serve/json_value.h"

namespace statcube::serve {

namespace {

obs::HttpResponse JsonError(int status, const std::string& message) {
  obs::HttpResponse resp;
  resp.status = status;
  resp.content_type = "application/json";
  resp.body = "{\"error\":" + obs::JsonStr(message) + "}\n";
  return resp;
}

// HTTP status for a query that was admitted but failed to execute. The
// query's own mistakes are 4xx; infrastructure limits map to their
// dedicated codes so load generators can tell the classes apart.
int StatusToHttp(const Status& st) {
  switch (st.code()) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kOutOfRange:
    case StatusCode::kNotSummarizable:
    case StatusCode::kUnimplemented: return 400;
    case StatusCode::kPrivacyRefused: return 403;
    case StatusCode::kCancelled: return 499;
    case StatusCode::kDeadlineExceeded: return 504;
    default: return 500;
  }
}

bool ValidTenantName(const std::string& name) {
  if (name.empty() || name.size() > 64) return false;
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

void AppendValueJson(std::ostringstream& os, const Value& v) {
  switch (v.type()) {
    case ValueType::kNull: os << "null"; break;
    case ValueType::kInt64: os << v.AsInt64(); break;
    case ValueType::kDouble: os << obs::JsonNum(v.AsDouble()); break;
    case ValueType::kString: os << obs::JsonStr(v.AsString()); break;
    case ValueType::kAll: os << "\"ALL\""; break;
  }
}

}  // namespace

std::string TableToJson(const Table& table, size_t max_rows) {
  std::ostringstream os;
  os << "{\"name\":" << obs::JsonStr(table.name()) << ",\"columns\":[";
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (c) os << ",";
    os << obs::JsonStr(table.schema().column(c).name);
  }
  size_t emit = table.num_rows();
  if (max_rows > 0) emit = std::min(emit, max_rows);
  os << "],\"rows\":" << table.num_rows() << ",\"data\":[";
  for (size_t r = 0; r < emit; ++r) {
    if (r) os << ",";
    os << "[";
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c) os << ",";
      AppendValueJson(os, table.at(r, c));
    }
    os << "]";
  }
  os << "]}";
  return os.str();
}

QueryFrontDoor::QueryFrontDoor(const StatisticalObject& obj,
                               FrontDoorOptions options)
    : obj_(obj),
      options_(options),
      tenants_(options.default_quota),
      queue_(options.queue) {
  if (options_.max_threads < 1) options_.max_threads = 1;
  if (options_.default_threads < 0) options_.default_threads = 0;
}

uint64_t QueryFrontDoor::requests() const {
  return requests_.load(std::memory_order_relaxed);
}

obs::HttpResponse QueryFrontDoor::ServeRequest(const obs::HttpRequest& req) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (obs::Enabled())
    obs::MetricsRegistry::Global().GetCounter("statcube.serve.requests").Add();

  // ---- Parse and validate the body -------------------------------------
  auto parsed = ParseJson(req.body);
  if (!parsed.ok()) return JsonError(400, parsed.status().message());
  const JsonValue& body = *parsed;
  if (!body.is_object())
    return JsonError(400, "request body must be a JSON object");

  static const char* kKnownKeys[] = {"query",       "engine", "cache",
                                     "threads",     "deadline_ms",
                                     "tenant",      "render", "vectorized"};
  for (const auto& [key, value] : body.AsObject()) {
    bool known = false;
    for (const char* k : kKnownKeys) known = known || key == k;
    if (!known) return JsonError(400, "unknown request field \"" + key + "\"");
    (void)value;
  }

  const JsonValue* query_v = body.Find("query");
  if (query_v == nullptr || !query_v->is_string() ||
      query_v->AsString().empty())
    return JsonError(400, "\"query\" must be a non-empty string");
  const std::string& query_text = query_v->AsString();

  QueryOptions qopt;
  qopt.cache = options_.default_cache;
  qopt.threads = options_.default_threads;
  qopt.deadline_us = options_.default_deadline_ms * 1000;

  if (const JsonValue* v = body.Find("engine")) {
    if (!v->is_string()) return JsonError(400, "\"engine\" must be a string");
    auto engine = EngineFromName(v->AsString());
    if (!engine.ok()) return JsonError(400, engine.status().message());
    qopt.engine = *engine;
  }
  if (const JsonValue* v = body.Find("cache")) {
    if (!v->is_string()) return JsonError(400, "\"cache\" must be a string");
    auto mode = cache::ModeFromName(v->AsString());
    if (!mode.ok()) return JsonError(400, mode.status().message());
    qopt.cache = *mode;
  }
  if (const JsonValue* v = body.Find("threads")) {
    if (!v->is_int() || v->AsInt() < 0 ||
        v->AsInt() > int64_t(options_.max_threads))
      return JsonError(400, "\"threads\" must be an integer in [0, " +
                                std::to_string(options_.max_threads) + "]");
    qopt.threads = int(v->AsInt());
  }
  if (const JsonValue* v = body.Find("vectorized")) {
    if (!v->is_bool())
      return JsonError(400, "\"vectorized\" must be a boolean");
    // Bit-identical either way (exec/vec_kernels.h); exposed so tenants can
    // A/B the kernels per request.
    qopt.vectorized = v->AsBool();
  }
  if (const JsonValue* v = body.Find("deadline_ms")) {
    if (!v->is_int() || v->AsInt() < 0)
      return JsonError(400, "\"deadline_ms\" must be a non-negative integer "
                            "(0 = no deadline)");
    qopt.deadline_us = uint64_t(v->AsInt()) * 1000;
  }
  bool render = false;
  if (const JsonValue* v = body.Find("render")) {
    if (!v->is_bool()) return JsonError(400, "\"render\" must be a boolean");
    render = v->AsBool();
  }
  std::string tenant = "default";
  if (const JsonValue* v = body.Find("tenant")) {
    if (!v->is_string() || !ValidTenantName(v->AsString()))
      return JsonError(400, "\"tenant\" must match [A-Za-z0-9_.-]{1,64}");
    tenant = v->AsString();
  }
  qopt.tenant = tenant;

  // ---- Per-tenant admission: the 429 path ------------------------------
  Admission admission = tenants_.Admit(tenant);
  if (!admission.ok()) {
    if (obs::Enabled())
      obs::MetricsRegistry::Global()
          .GetCounter("statcube.serve.rejected")
          .Add();
    obs::HttpResponse resp = JsonError(
        429, std::string("tenant over ") + AdmitOutcomeName(admission.outcome) +
                 " quota");
    resp.body.pop_back();  // re-open the JSON object to add fields
    resp.body.erase(resp.body.size() - 1);
    resp.body += ",\"tenant\":" + obs::JsonStr(tenant) +
                 ",\"reason\":" +
                 obs::JsonStr(AdmitOutcomeName(admission.outcome)) +
                 ",\"retry_after_ms\":" +
                 std::to_string(admission.retry_after_ms) + "}\n";
    // Retry-After is whole seconds; round up so clients never retry early.
    // The concurrency gate has no time component — suggest one second.
    uint64_t after_s = admission.retry_after_ms == 0
                           ? 1
                           : (admission.retry_after_ms + 999) / 1000;
    resp.headers.emplace_back("Retry-After", std::to_string(after_s));
    return resp;
  }

  // Admitted: from here every exit must Release the tenant, charging the
  // bytes of whatever response actually goes out.
  auto release = [&](obs::HttpResponse resp, bool ok) {
    tenants_.Release(tenant, resp.body.size(), ok);
    return resp;
  };

  // ---- Global execute-or-shed gate: the 503 path -----------------------
  EnterOutcome gate = queue_.Enter();
  if (gate != EnterOutcome::kAdmitted) {
    tenants_.NoteShed(tenant);
    obs::HttpResponse resp =
        JsonError(503, gate == EnterOutcome::kShedQueueFull
                           ? "admission queue full"
                           : "timed out waiting for an execution slot");
    resp.headers.emplace_back("Retry-After", "1");
    obs::LogEvent(obs::LogLevel::kWarn, "query_shed")
        .Str("tenant", tenant)
        .Str("reason", gate == EnterOutcome::kShedQueueFull ? "queue_full"
                                                            : "timeout")
        .Emit();
    return release(std::move(resp), /*ok=*/false);
  }

  // ---- Execute through the exact CLI path ------------------------------
  Result<ProfiledQuery> result = QueryProfiled(obj_, query_text, qopt);
  queue_.Exit();

  if (!result.ok()) {
    const Status& st = result.status();
    obs::HttpResponse resp = JsonError(StatusToHttp(st), st.message());
    resp.body.erase(resp.body.size() - 2);  // strip "}\n" to append fields
    resp.body += ",\"code\":" + obs::JsonStr(StatusCodeName(st.code())) +
                 ",\"tenant\":" + obs::JsonStr(tenant) + "}\n";
    return release(std::move(resp), /*ok=*/false);
  }

  const ProfiledQuery& pq = *result;
  std::ostringstream os;
  os << "{\"tenant\":" << obs::JsonStr(tenant)
     << ",\"engine\":" << obs::JsonStr(QueryEngineName(qopt.engine))
     << ",\"backend\":" << obs::JsonStr(pq.profile.backend)
     << ",\"cache\":"
     << obs::JsonStr(pq.profile.cache.empty() ? std::string("off")
                                              : pq.profile.cache)
     << ",\"outcome\":" << obs::JsonStr(pq.profile.outcome)
     << ",\"profile_id\":" << pq.profile_id
     << ",\"result\":" << TableToJson(pq.table, options_.max_result_rows);
  if (render) os << ",\"rendered\":" << obs::JsonStr(pq.rendered);
  os << "}\n";

  obs::HttpResponse resp;
  resp.content_type = "application/json";
  resp.body = os.str();
  if (obs::Enabled())
    obs::MetricsRegistry::Global().GetCounter("statcube.serve.ok").Add();
  return release(std::move(resp), /*ok=*/true);
}

void QueryFrontDoor::Register(obs::StatsServer& server) {
  server.HandleMethod("POST", "/query", [this](const obs::HttpRequest& req) {
    return ServeRequest(req);
  });
  server.AddStatuszSection("tenants", [this] { return StatuszSection(); });
}

std::string QueryFrontDoor::StatuszSection() const {
  std::vector<TenantStats> stats = tenants_.Snapshot();
  std::ostringstream os;
  os << "<p>queue: " << queue_.active() << " active / " << queue_.queued()
     << " queued (max_active " << queue_.options().max_active
     << ", max_queued " << queue_.options().max_queued << ", "
     << queue_.sheds() << " shed)</p>";
  if (stats.empty()) {
    os << "<p>no tenants seen yet</p>";
    return os.str();
  }
  os << "<table><tr><th>tenant</th><th>active</th><th>admitted</th>"
     << "<th>429 concurrency</th><th>429 rate</th><th>429 bytes</th>"
     << "<th>shed</th><th>ok</th><th>error</th><th>bytes_served</th>"
     << "<th>rate_tokens</th><th>byte_tokens</th></tr>";
  for (const TenantStats& s : stats) {
    os << "<tr><td><a href=\"/profiles?tenant=" << s.name << "\">" << s.name
       << "</a></td><td>" << s.active << "</td><td>" << s.admitted
       << "</td><td>" << s.rejected_concurrency << "</td><td>"
       << s.rejected_rate << "</td><td>" << s.rejected_bytes << "</td><td>"
       << s.shed << "</td><td>" << s.queries_ok << "</td><td>"
       << s.queries_error << "</td><td>" << s.bytes_served << "</td><td>"
       << obs::JsonNum(s.rate_tokens) << "</td><td>"
       << obs::JsonNum(s.byte_tokens) << "</td></tr>";
  }
  os << "</table>";
  return os.str();
}

}  // namespace statcube::serve
