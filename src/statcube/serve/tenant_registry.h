/// \file
/// \brief Per-tenant admission control for the query front door: concurrent
/// -query budgets, token-bucket rate limits, and byte budgets, with the
/// counters /statusz needs to show who is being served and who is being
/// told to back off.
///
/// The paper frames OLAP engines as shared analytical services queried
/// concurrently by large user populations over the same cubes; a shared
/// service needs an answer to "who may run right now?". `TenantRegistry`
/// holds that answer: one entry per tenant (created on first request with a
/// configurable default quota, or registered explicitly), each with three
/// independent admission gates checked in order:
///
///  1. **Concurrency** — at most `max_concurrent` queries in flight.
///  2. **Rate** — a token bucket holding up to `burst` request tokens,
///     refilled continuously at `rate_qps`; each admission spends one.
///  3. **Bytes** — a second bucket in response bytes, refilled at
///     `bytes_per_sec` up to `byte_burst`. Because a query's cost is only
///     known *after* it runs, admission requires the bucket to be positive
///     and the actual bytes are charged at release — the bucket may go
///     negative (debt), which simply pushes the next admission out. This is
///     the classic post-paid byte budget: precise, work-conserving, and
///     impossible to cheat by issuing one enormous query.
///
/// A rejection reports which gate refused and a `retry_after_ms` hint
/// (served as the HTTP `Retry-After` header on 429 responses) computed from
/// the bucket's refill rate — clients that honour it converge on the
/// configured rate without coordination.
///
/// Time is passed in explicitly (`AdmitAt` / `ReleaseAt`) so quota edges —
/// a budget exactly exhausted, a token arriving exactly on the refill
/// boundary — are deterministic in tests; the `Admit`/`Release` wrappers
/// use the shared steady clock (common/cancellation.h's SteadyNowUs).
///
/// Thread safety: one mutex guards the tenant map and every bucket; all
/// methods may be called from any worker thread. Admission is a handful of
/// arithmetic operations under the lock — bench_serve measures the cycle.

#ifndef STATCUBE_SERVE_TENANT_REGISTRY_H_
#define STATCUBE_SERVE_TENANT_REGISTRY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "statcube/common/mutex.h"
#include "statcube/common/thread_annotations.h"

namespace statcube::serve {

/// Admission limits for one tenant. The default-constructed quota is
/// permissive (no rate or byte limit, 16 concurrent queries) — the front
/// door's flags tighten it for every tenant or per tenant.
struct TenantQuota {
  /// Maximum queries in flight at once; 0 = unlimited.
  int max_concurrent = 16;
  /// Request tokens added per second; 0 disables rate limiting.
  double rate_qps = 0;
  /// Token-bucket capacity; 0 = max(1, rate_qps) — one second of burst.
  double burst = 0;
  /// Response bytes credited per second; 0 disables the byte budget.
  uint64_t bytes_per_sec = 0;
  /// Byte-bucket capacity; 0 = bytes_per_sec — one second of burst.
  uint64_t byte_burst = 0;
};

/// Which admission gate made the decision.
enum class AdmitOutcome : uint8_t {
  kAdmitted = 0,         ///< run it
  kConcurrencyExceeded,  ///< too many queries already in flight
  kRateLimited,          ///< request token bucket empty
  kByteBudgetExhausted,  ///< byte budget spent (bucket not positive)
};

/// Short stable name for an outcome ("admitted", "concurrency", "rate",
/// "bytes") — used in JSON and 429 bodies.
const char* AdmitOutcomeName(AdmitOutcome outcome);

/// Result of one admission attempt. On rejection `retry_after_ms` estimates
/// when the refused gate would next admit (0 when the gate does not recover
/// by waiting, e.g. concurrency — retry after a query finishes).
struct Admission {
  AdmitOutcome outcome = AdmitOutcome::kAdmitted;
  /// Backoff hint for 429 Retry-After; milliseconds, rounded up.
  uint64_t retry_after_ms = 0;

  /// True when the query may run.
  bool ok() const { return outcome == AdmitOutcome::kAdmitted; }
};

/// Point-in-time per-tenant accounting, as shown on /statusz.
struct TenantStats {
  std::string name;               ///< tenant id
  int active = 0;                 ///< queries in flight now
  uint64_t admitted = 0;          ///< total admissions
  uint64_t rejected_concurrency = 0;  ///< 429s from the concurrency gate
  uint64_t rejected_rate = 0;         ///< 429s from the rate gate
  uint64_t rejected_bytes = 0;        ///< 429s from the byte gate
  uint64_t shed = 0;              ///< admitted but shed at the global queue
  uint64_t queries_ok = 0;        ///< completed successfully
  uint64_t queries_error = 0;     ///< completed with an error/stop outcome
  uint64_t bytes_served = 0;      ///< response bytes charged at release
  double rate_tokens = 0;         ///< request tokens left in the bucket
  double byte_tokens = 0;         ///< byte budget left (negative = in debt)

  /// Total 429s across the three gates.
  uint64_t rejected_total() const {
    return rejected_concurrency + rejected_rate + rejected_bytes;
  }
};

/// The tenant table. One per front door (tests build their own); not a
/// process-wide singleton because two servers in one process — the unit
/// tests do this — must not share budgets.
class TenantRegistry {
 public:
  /// `default_quota` applies to tenants first seen at admission time.
  explicit TenantRegistry(TenantQuota default_quota = {});

  TenantRegistry(const TenantRegistry&) = delete;             ///< Not copyable.
  TenantRegistry& operator=(const TenantRegistry&) = delete;  ///< Not copyable.

  /// Creates or reconfigures `tenant` with an explicit quota. Live
  /// admissions are unaffected; the new limits apply from the next Admit.
  /// Buckets are re-clamped to the new capacities.
  void Configure(const std::string& tenant, const TenantQuota& quota);

  /// Admission gates at an explicit steady-clock time (microseconds).
  /// Tenants are created on first use with the default quota. On success the
  /// caller MUST pair this with ReleaseAt/Release exactly once.
  Admission AdmitAt(const std::string& tenant, uint64_t now_us);

  /// AdmitAt at the current steady-clock time.
  Admission Admit(const std::string& tenant);

  /// Completes an admitted query: decrements the in-flight count, charges
  /// `bytes` against the byte budget, and counts the outcome (`ok` = the
  /// query returned a result). Unknown tenants are ignored (a Release
  /// without a paired Admit is a bug, but not one worth crashing a server
  /// over — the active count is clamped at zero).
  void ReleaseAt(const std::string& tenant, uint64_t now_us, uint64_t bytes,
                 bool ok);

  /// ReleaseAt at the current steady-clock time.
  void Release(const std::string& tenant, uint64_t bytes, bool ok);

  /// Counts a query that was admitted by this registry but shed by the
  /// global admission queue (the 503 path). The caller still Releases.
  void NoteShed(const std::string& tenant);

  /// Per-tenant accounting, sorted by tenant name.
  std::vector<TenantStats> Snapshot() const;

  /// JSON document: {"tenants":[{...}, ...]} sorted by name, with the quota
  /// and the live counters for each tenant.
  std::string ToJson() const;

  /// Number of tenants ever seen.
  size_t TenantCount() const;

 private:
  // One tenant's quota, buckets, and counters.
  struct Tenant {
    TenantQuota quota;
    // Bucket state. `last_us` is the refill timestamp both buckets share.
    double rate_tokens = 0;
    double byte_tokens = 0;
    uint64_t last_us = 0;
    bool buckets_primed = false;  // buckets start full on first admission
    TenantStats stats;
  };

  Tenant& GetOrCreate(const std::string& tenant) STATCUBE_REQUIRES(mu_);
  static void Refill(Tenant& t, uint64_t now_us);

  const TenantQuota default_quota_;
  mutable Mutex mu_;
  std::map<std::string, Tenant> tenants_ STATCUBE_GUARDED_BY(mu_);
};

}  // namespace statcube::serve

#endif  // STATCUBE_SERVE_TENANT_REGISTRY_H_
