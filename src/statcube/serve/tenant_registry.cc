#include "statcube/serve/tenant_registry.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "statcube/common/cancellation.h"
#include "statcube/obs/json.h"

namespace statcube::serve {

namespace {

double EffectiveBurst(const TenantQuota& q) {
  if (q.burst > 0) return q.burst;
  return std::max(1.0, q.rate_qps);
}

double EffectiveByteBurst(const TenantQuota& q) {
  if (q.byte_burst > 0) return double(q.byte_burst);
  return double(q.bytes_per_sec);
}

// Milliseconds (rounded up, at least 1) until `deficit` units accrue at
// `per_sec` — the Retry-After hint for a bucket rejection.
uint64_t RetryAfterMs(double deficit, double per_sec) {
  if (per_sec <= 0) return 0;
  double ms = std::ceil(deficit / per_sec * 1000.0);
  return ms < 1.0 ? 1 : uint64_t(ms);
}

}  // namespace

const char* AdmitOutcomeName(AdmitOutcome outcome) {
  switch (outcome) {
    case AdmitOutcome::kAdmitted: return "admitted";
    case AdmitOutcome::kConcurrencyExceeded: return "concurrency";
    case AdmitOutcome::kRateLimited: return "rate";
    case AdmitOutcome::kByteBudgetExhausted: return "bytes";
  }
  return "?";
}

TenantRegistry::TenantRegistry(TenantQuota default_quota)
    : default_quota_(default_quota) {}

TenantRegistry::Tenant& TenantRegistry::GetOrCreate(const std::string& name) {
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    Tenant t;
    t.quota = default_quota_;
    t.stats.name = name;
    it = tenants_.emplace(name, std::move(t)).first;
  }
  return it->second;
}

void TenantRegistry::Refill(Tenant& t, uint64_t now_us) {
  if (now_us <= t.last_us) return;  // steady clock, but be defensive
  double dt_s = double(now_us - t.last_us) / 1e6;
  if (t.quota.rate_qps > 0)
    t.rate_tokens = std::min(EffectiveBurst(t.quota),
                             t.rate_tokens + t.quota.rate_qps * dt_s);
  if (t.quota.bytes_per_sec > 0)
    t.byte_tokens = std::min(EffectiveByteBurst(t.quota),
                             t.byte_tokens + double(t.quota.bytes_per_sec) *
                                                 dt_s);
  t.last_us = now_us;
}

void TenantRegistry::Configure(const std::string& tenant,
                               const TenantQuota& quota) {
  MutexLock lock(mu_);
  Tenant& t = GetOrCreate(tenant);
  t.quota = quota;
  // Re-clamp to the (possibly smaller) new capacities; an unprimed tenant
  // will still start with full buckets at its first admission.
  if (t.buckets_primed) {
    t.rate_tokens = std::min(t.rate_tokens, EffectiveBurst(quota));
    t.byte_tokens = std::min(t.byte_tokens, EffectiveByteBurst(quota));
  }
}

Admission TenantRegistry::AdmitAt(const std::string& tenant, uint64_t now_us) {
  MutexLock lock(mu_);
  Tenant& t = GetOrCreate(tenant);
  if (!t.buckets_primed) {
    t.rate_tokens = EffectiveBurst(t.quota);
    t.byte_tokens = EffectiveByteBurst(t.quota);
    t.last_us = now_us;
    t.buckets_primed = true;
  }
  Refill(t, now_us);

  // Evaluate every gate before committing anything, so a rejection at a
  // later gate never spends a token at an earlier one.
  Admission a;
  if (t.quota.max_concurrent > 0 && t.stats.active >= t.quota.max_concurrent) {
    a.outcome = AdmitOutcome::kConcurrencyExceeded;
    a.retry_after_ms = 0;  // recovers when a query finishes, not with time
    ++t.stats.rejected_concurrency;
    return a;
  }
  if (t.quota.rate_qps > 0 && t.rate_tokens < 1.0) {
    a.outcome = AdmitOutcome::kRateLimited;
    a.retry_after_ms = RetryAfterMs(1.0 - t.rate_tokens, t.quota.rate_qps);
    ++t.stats.rejected_rate;
    return a;
  }
  // The byte budget is post-paid: admission only requires the bucket to be
  // positive; the actual response bytes are charged at release and may push
  // the bucket negative (debt), delaying the next admission.
  if (t.quota.bytes_per_sec > 0 && t.byte_tokens <= 0) {
    a.outcome = AdmitOutcome::kByteBudgetExhausted;
    // Time for the debt to clear and the first byte of credit to accrue.
    a.retry_after_ms =
        RetryAfterMs(-t.byte_tokens + 1.0, double(t.quota.bytes_per_sec));
    ++t.stats.rejected_bytes;
    return a;
  }

  if (t.quota.rate_qps > 0) t.rate_tokens -= 1.0;
  ++t.stats.active;
  ++t.stats.admitted;
  return a;
}

Admission TenantRegistry::Admit(const std::string& tenant) {
  return AdmitAt(tenant, SteadyNowUs());
}

void TenantRegistry::ReleaseAt(const std::string& tenant, uint64_t now_us,
                               uint64_t bytes, bool ok) {
  MutexLock lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;
  Tenant& t = it->second;
  Refill(t, now_us);
  if (t.stats.active > 0) --t.stats.active;
  t.stats.bytes_served += bytes;
  if (t.quota.bytes_per_sec > 0) t.byte_tokens -= double(bytes);
  if (ok)
    ++t.stats.queries_ok;
  else
    ++t.stats.queries_error;
}

void TenantRegistry::Release(const std::string& tenant, uint64_t bytes,
                             bool ok) {
  ReleaseAt(tenant, SteadyNowUs(), bytes, ok);
}

void TenantRegistry::NoteShed(const std::string& tenant) {
  MutexLock lock(mu_);
  ++GetOrCreate(tenant).stats.shed;
}

std::vector<TenantStats> TenantRegistry::Snapshot() const {
  MutexLock lock(mu_);
  std::vector<TenantStats> out;
  out.reserve(tenants_.size());
  for (const auto& [name, t] : tenants_) {
    TenantStats s = t.stats;
    s.rate_tokens = t.rate_tokens;
    s.byte_tokens = t.byte_tokens;
    out.push_back(std::move(s));
  }
  return out;  // std::map iteration is already name-sorted
}

std::string TenantRegistry::ToJson() const {
  MutexLock lock(mu_);
  std::ostringstream os;
  os << "{\"tenants\":[";
  bool first = true;
  for (const auto& [name, t] : tenants_) {
    if (!first) os << ",";
    first = false;
    const TenantStats& s = t.stats;
    os << "{\"tenant\":" << obs::JsonStr(name)
       << ",\"active\":" << s.active
       << ",\"admitted\":" << s.admitted
       << ",\"rejected_concurrency\":" << s.rejected_concurrency
       << ",\"rejected_rate\":" << s.rejected_rate
       << ",\"rejected_bytes\":" << s.rejected_bytes
       << ",\"shed\":" << s.shed
       << ",\"queries_ok\":" << s.queries_ok
       << ",\"queries_error\":" << s.queries_error
       << ",\"bytes_served\":" << s.bytes_served
       << ",\"rate_tokens\":" << obs::JsonNum(t.rate_tokens)
       << ",\"byte_tokens\":" << obs::JsonNum(t.byte_tokens)
       << ",\"quota\":{\"max_concurrent\":" << t.quota.max_concurrent
       << ",\"rate_qps\":" << obs::JsonNum(t.quota.rate_qps)
       << ",\"burst\":" << obs::JsonNum(EffectiveBurst(t.quota))
       << ",\"bytes_per_sec\":" << t.quota.bytes_per_sec
       << ",\"byte_burst\":" << uint64_t(EffectiveByteBurst(t.quota))
       << "}}";
  }
  os << "]}";
  return os.str();
}

size_t TenantRegistry::TenantCount() const {
  MutexLock lock(mu_);
  return tenants_.size();
}

}  // namespace statcube::serve
