/// \file
/// \brief Bounded admission queue for the query front door: a counting gate
/// that lets `max_active` queries execute, queues up to `max_queued` more,
/// and sheds everything beyond — the 503 path.
///
/// Why a second queue when the HTTP server already bounds its connection
/// queue: the connection queue protects the *scrape* path (accepting and
/// parsing cheap requests); this queue protects the *execution* path, where
/// one query can hold a worker for seconds. Keeping them separate means a
/// burst of queries saturating the engine never blocks /healthz or
/// /metrics, and the shedding decision can see query-level state (queue
/// depth, wait budget) instead of raw connection counts.
///
/// Semantics: `Enter` admits immediately while fewer than `max_active`
/// tickets are outstanding. Otherwise the caller waits — FIFO by arrival,
/// implemented as a ticket sequence — up to `max_wait_ms`, unless the
/// queue already holds `max_queued` waiters, in which case it sheds
/// immediately (`kShedQueueFull`). A waiter whose budget expires sheds with
/// `kShedTimeout`. Every successful Enter MUST be paired with Exit.
///
/// Metrics: statcube.serve.queue_depth and statcube.serve.active gauges are
/// updated on every transition; shed counts are left to the caller, which
/// knows the tenant.

#ifndef STATCUBE_SERVE_ADMISSION_QUEUE_H_
#define STATCUBE_SERVE_ADMISSION_QUEUE_H_

#include <cstdint>

#include "statcube/common/mutex.h"
#include "statcube/common/thread_annotations.h"

namespace statcube::serve {

/// Sizing for AdmissionQueue.
struct AdmissionQueueOptions {
  /// Queries executing at once (clamped to >= 1).
  int max_active = 4;
  /// Queries allowed to wait for a slot; 0 = shed as soon as all slots are
  /// busy (pure load shedding, no queueing).
  int max_queued = 16;
  /// Longest a query may wait in the queue before being shed (clamped to
  /// >= 1; waiting longer than a client timeout only wastes the slot).
  int max_wait_ms = 2000;
};

/// How an Enter attempt ended.
enum class EnterOutcome : uint8_t {
  kAdmitted = 0,   ///< slot acquired; pair with Exit()
  kShedQueueFull,  ///< queue already at max_queued — immediate 503
  kShedTimeout,    ///< waited max_wait_ms without getting a slot — 503
};

/// The bounded execute-or-shed gate. All methods are thread-safe.
class AdmissionQueue {
 public:
  /// Builds the gate; options are clamped to sane minimums.
  explicit AdmissionQueue(AdmissionQueueOptions options = {});

  AdmissionQueue(const AdmissionQueue&) = delete;             ///< Not copyable.
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;  ///< Not copyable.

  /// Acquires an execution slot, waiting up to max_wait_ms. New arrivals
  /// never barge past existing waiters (they shed or join the queue), but
  /// wakeup order among waiters is the scheduler's. kAdmitted requires a
  /// matching Exit().
  EnterOutcome Enter();

  /// Releases an execution slot and wakes the head waiter.
  void Exit();

  /// Queries executing now.
  int active() const;
  /// Queries waiting now.
  int queued() const;
  /// Total sheds (queue-full + timeout) since construction.
  uint64_t sheds() const;

  /// Configured options (after clamping).
  const AdmissionQueueOptions& options() const { return options_; }

 private:
  void UpdateGauges() STATCUBE_REQUIRES(mu_);

  AdmissionQueueOptions options_;
  mutable Mutex mu_;
  CondVar cv_;
  int active_ STATCUBE_GUARDED_BY(mu_) = 0;
  int queued_ STATCUBE_GUARDED_BY(mu_) = 0;
  uint64_t sheds_ STATCUBE_GUARDED_BY(mu_) = 0;
};

}  // namespace statcube::serve

#endif  // STATCUBE_SERVE_ADMISSION_QUEUE_H_
