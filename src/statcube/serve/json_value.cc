#include "statcube/serve/json_value.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "statcube/obs/json.h"

namespace statcube::serve {

const JsonValue* JsonValue::Find(const std::string& key) const {
  const JsonValue* found = nullptr;
  for (const auto& [k, v] : obj_)
    if (k == key) found = &v;
  return found;
}

std::string JsonValue::Dump() const {
  switch (type_) {
    case JsonType::kNull: return "null";
    case JsonType::kBool: return bool_ ? "true" : "false";
    case JsonType::kNumber:
      return is_int_ ? std::to_string(int_) : obs::JsonNum(num_);
    case JsonType::kString: return obs::JsonStr(str_);
    case JsonType::kArray: {
      std::string out = "[";
      for (size_t i = 0; i < arr_.size(); ++i) {
        if (i) out += ",";
        out += arr_[i].Dump();
      }
      return out + "]";
    }
    case JsonType::kObject: {
      std::string out = "{";
      for (size_t i = 0; i < obj_.size(); ++i) {
        if (i) out += ",";
        out += obs::JsonStr(obj_[i].first) + ":" + obj_[i].second.Dump();
      }
      return out + "}";
    }
  }
  return "null";
}

// Recursive-descent parser. Kept as a class so position/depth state does not
// have to thread through every production.
class JsonParser {
 public:
  JsonParser(const std::string& text, int max_depth)
      : text_(text), max_depth_(max_depth) {}

  Result<JsonValue> Parse() {
    JsonValue root;
    STATCUBE_RETURN_NOT_OK(ParseValue(&root, 0));
    SkipWhitespace();
    if (pos_ != text_.size())
      return Err("trailing characters after JSON document");
    return root;
  }

 private:
  Status Err(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > max_depth_) return Err("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"': {
        out->type_ = JsonType::kString;
        return ParseString(&out->str_);
      }
      case 't':
      case 'f': return ParseBool(out);
      case 'n': return ParseNull(out);
      default: return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    out->type_ = JsonType::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"')
        return Err("expected object key string");
      std::string key;
      STATCUBE_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Err("expected ':' after object key");
      JsonValue value;
      STATCUBE_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->obj_.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Err("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    out->type_ = JsonType::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      STATCUBE_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->arr_.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Err("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening '"'
    out->clear();
    while (pos_ < text_.size()) {
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c < 0x20) return Err("unescaped control character in string");
      if (c != '\\') {
        out->push_back(char(c));
        ++pos_;
        continue;
      }
      if (pos_ + 1 >= text_.size()) return Err("truncated escape");
      char esc = text_[pos_ + 1];
      pos_ += 2;
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Err("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_ + size_t(i)];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= unsigned(h - '0');
            else if (h >= 'a' && h <= 'f') code |= unsigned(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= unsigned(h - 'A' + 10);
            else return Err("bad hex digit in \\u escape");
          }
          pos_ += 4;
          // UTF-8 encode the code point. Surrogate pairs are passed through
          // as two 3-byte sequences — request fields are ASCII in practice
          // and the value is never re-interpreted, only compared/echoed.
          if (code < 0x80) {
            out->push_back(char(code));
          } else if (code < 0x800) {
            out->push_back(char(0xC0 | (code >> 6)));
            out->push_back(char(0x80 | (code & 0x3F)));
          } else {
            out->push_back(char(0xE0 | (code >> 12)));
            out->push_back(char(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(char(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return Err("unknown escape character");
      }
    }
    return Err("unterminated string");
  }

  Status ParseBool(JsonValue* out) {
    if (text_.compare(pos_, 4, "true") == 0) {
      out->type_ = JsonType::kBool;
      out->bool_ = true;
      pos_ += 4;
      return Status::OK();
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->type_ = JsonType::kBool;
      out->bool_ = false;
      pos_ += 5;
      return Status::OK();
    }
    return Err("expected 'true' or 'false'");
  }

  Status ParseNull(JsonValue* out) {
    if (text_.compare(pos_, 4, "null") == 0) {
      out->type_ = JsonType::kNull;
      pos_ += 4;
      return Status::OK();
    }
    return Err("expected 'null'");
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    bool integral = true;
    (void)Consume('-');
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_])))
      return Err("expected a number");
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
    // JSON forbids leading zeros ("01"); be strict like the query-string
    // parser so malformed clients hear about it.
    size_t digits_start = text_[start] == '-' ? start + 1 : start;
    if (pos_ - digits_start > 1 && text_[digits_start] == '0') {
      pos_ = digits_start;
      return Err("leading zero in number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_])))
        return Err("expected digits after decimal point");
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_])))
        return Err("expected digits in exponent");
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    std::string token = text_.substr(start, pos_ - start);
    out->type_ = JsonType::kNumber;
    out->num_ = strtod(token.c_str(), nullptr);
    if (integral) {
      errno = 0;
      long long v = strtoll(token.c_str(), nullptr, 10);
      if (errno == 0) {
        out->is_int_ = true;
        out->int_ = int64_t(v);
      }
    }
    return Status::OK();
  }

  const std::string& text_;
  const int max_depth_;
  size_t pos_ = 0;
};

Result<JsonValue> ParseJson(const std::string& text, int max_depth) {
  return JsonParser(text, max_depth).Parse();
}

}  // namespace statcube::serve
