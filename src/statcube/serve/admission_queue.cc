#include "statcube/serve/admission_queue.h"

#include <algorithm>
#include <chrono>

#include "statcube/obs/metrics.h"

namespace statcube::serve {

AdmissionQueue::AdmissionQueue(AdmissionQueueOptions options)
    : options_(options) {
  options_.max_active = std::max(1, options_.max_active);
  options_.max_queued = std::max(0, options_.max_queued);
  options_.max_wait_ms = std::max(1, options_.max_wait_ms);
}

void AdmissionQueue::UpdateGauges() {
  if (!obs::Enabled()) return;
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetGauge("statcube.serve.active").Set(double(active_));
  reg.GetGauge("statcube.serve.queue_depth").Set(double(queued_));
}

EnterOutcome AdmissionQueue::Enter() {
  MutexLock lock(mu_);
  // Fast path: a free slot and nobody waiting ahead of us. The queued_ == 0
  // check is what prevents a new arrival from barging past queued waiters
  // in the window between an Exit's notify and the waiter's wakeup.
  if (active_ < options_.max_active && queued_ == 0) {
    ++active_;
    UpdateGauges();
    return EnterOutcome::kAdmitted;
  }
  if (queued_ >= options_.max_queued) {
    ++sheds_;
    if (obs::Enabled())
      obs::MetricsRegistry::Global()
          .GetCounter("statcube.serve.shed_queue_full")
          .Add();
    return EnterOutcome::kShedQueueFull;
  }
  ++queued_;
  UpdateGauges();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.max_wait_ms);
  while (active_ >= options_.max_active) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      --queued_;
      ++sheds_;
      UpdateGauges();
      if (obs::Enabled())
        obs::MetricsRegistry::Global()
            .GetCounter("statcube.serve.shed_timeout")
            .Add();
      return EnterOutcome::kShedTimeout;
    }
    cv_.WaitFor(mu_, std::chrono::duration_cast<std::chrono::microseconds>(
                         deadline - now));
  }
  --queued_;
  ++active_;
  UpdateGauges();
  return EnterOutcome::kAdmitted;
}

void AdmissionQueue::Exit() {
  MutexLock lock(mu_);
  if (active_ > 0) --active_;
  UpdateGauges();
  // NotifyAll, not NotifyOne: several waiters can proceed after a burst of
  // exits, and spurious wakeups are already handled by the wait loop.
  cv_.NotifyAll();
}

int AdmissionQueue::active() const {
  MutexLock lock(mu_);
  return active_;
}

int AdmissionQueue::queued() const {
  MutexLock lock(mu_);
  return queued_;
}

uint64_t AdmissionQueue::sheds() const {
  MutexLock lock(mu_);
  return sheds_;
}

}  // namespace statcube::serve
