/// \file
/// \brief A minimal JSON reader for `POST /query` request bodies.
///
/// The serving subsystem accepts requests as small JSON objects ("which
/// query, which engine, which tenant"), so it needs to *read* JSON where the
/// rest of obs/ only ever *writes* it (obs/json.h). This is a deliberately
/// small recursive-descent parser over the full JSON grammar — objects,
/// arrays, strings with escapes, numbers, booleans, null — with the limits a
/// front door wants: a maximum nesting depth (a hostile body of ten thousand
/// '[' must not recurse the stack away) and strict trailing-garbage
/// rejection. It makes no allocation-sharing or streaming claims; request
/// bodies are bounded by the HTTP layer (StatsServerOptions::max_body_bytes)
/// long before parse cost matters.
///
/// Errors are reported through the repo's Status type with the byte offset
/// of the offending character, so the front door's 400 responses can say
/// *where* the body went wrong.

#ifndef STATCUBE_SERVE_JSON_VALUE_H_
#define STATCUBE_SERVE_JSON_VALUE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "statcube/common/status.h"

namespace statcube::serve {

/// Type tag of a parsed JSON value.
enum class JsonType : uint8_t {
  kNull,    ///< JSON null
  kBool,    ///< true / false
  kNumber,  ///< any JSON number (stored as double; integral values keep an
            ///< exact int64 alongside while they fit)
  kString,  ///< a JSON string, unescaped
  kArray,   ///< [...]
  kObject,  ///< {...}
};

/// One parsed JSON value (a tree: arrays and objects own their children).
/// Accessors are checked: asking an object for its string value is a
/// programming error caught by the `ok`-style getters, not UB.
class JsonValue {
 public:
  /// Constructs JSON null.
  JsonValue() = default;

  /// This value's type tag.
  JsonType type() const { return type_; }

  /// True when the value is JSON null.
  bool is_null() const { return type_ == JsonType::kNull; }
  /// True for true/false.
  bool is_bool() const { return type_ == JsonType::kBool; }
  /// True for any number.
  bool is_number() const { return type_ == JsonType::kNumber; }
  /// True when the number was written without fraction/exponent and fits
  /// int64 exactly (so "threads": 4 is an int, "threads": 4.5 is not).
  bool is_int() const { return type_ == JsonType::kNumber && is_int_; }
  /// True for strings.
  bool is_string() const { return type_ == JsonType::kString; }
  /// True for arrays.
  bool is_array() const { return type_ == JsonType::kArray; }
  /// True for objects.
  bool is_object() const { return type_ == JsonType::kObject; }

  /// The boolean value (false unless is_bool()).
  bool AsBool() const { return bool_; }
  /// The number as a double (0 unless is_number()).
  double AsDouble() const { return num_; }
  /// The number as an int64 (0 unless is_int()).
  int64_t AsInt() const { return int_; }
  /// The unescaped string (empty unless is_string()).
  const std::string& AsString() const { return str_; }
  /// Array elements (empty unless is_array()).
  const std::vector<JsonValue>& AsArray() const { return arr_; }
  /// Object members in source order (empty unless is_object()). Source
  /// order is kept so error messages and round-trip dumps stay readable;
  /// lookup is by linear scan — request bodies have a handful of keys.
  const std::vector<std::pair<std::string, JsonValue>>& AsObject() const {
    return obj_;
  }

  /// Pointer to the member named `key`, or nullptr (objects only; the last
  /// duplicate wins, matching common JSON-decoder behaviour).
  const JsonValue* Find(const std::string& key) const;

  /// Re-serializes this value as compact JSON (test/debug aid; uses
  /// obs::JsonStr escaping rules for strings).
  std::string Dump() const;

 private:
  friend class JsonParser;

  JsonType type_ = JsonType::kNull;
  bool bool_ = false;
  bool is_int_ = false;
  double num_ = 0;
  int64_t int_ = 0;
  std::string str_;
  std::vector<JsonValue> arr_;
  std::vector<std::pair<std::string, JsonValue>> obj_;
};

/// Parses `text` as one complete JSON document. Trailing non-whitespace,
/// nesting beyond `max_depth`, invalid escapes, and every other grammar
/// violation return InvalidArgument with the byte offset of the problem.
Result<JsonValue> ParseJson(const std::string& text, int max_depth = 64);

}  // namespace statcube::serve

#endif  // STATCUBE_SERVE_JSON_VALUE_H_
