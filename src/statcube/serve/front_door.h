/// \file
/// \brief The multi-tenant query front door: `POST /query` as a first-class
/// serving endpoint, with per-tenant admission control (429), bounded
/// queueing with load shedding (503), and JSON results that are
/// bit-identical to what the CLI path computes.
///
/// The paper's framing is an OLAP engine as a *shared service*: many users,
/// one set of cubes, concurrent ad-hoc aggregation. The observability
/// subsystem (obs/) already shows what such a service is doing; this file is
/// the missing front half — the piece that decides, per request, whether the
/// service should do it at all. A request travels:
///
///   body JSON  →  parse/validate (400)
///              →  TenantRegistry::Admit (429 + Retry-After)
///              →  AdmissionQueue::Enter (503 when the queue is full or the
///                 wait budget expires)
///              →  QueryProfiled — the exact engine/cache/parallel/deadline
///                 path the CLI uses, now stamped with the tenant
///              →  JSON response; response bytes charged to the tenant's
///                 byte budget at release.
///
/// The request body is a flat JSON object:
///
/// ```json
/// {"query":   "SELECT sum(amount) BY store",   // required
///  "engine":  "molap",          // relational|molap|rolap|rolap+bitmap
///  "cache":   "derive",         // off|on|derive
///  "threads": 4,                // 0 = exec::DefaultThreads()
///  "deadline_ms": 250,          // 0 = no deadline
///  "tenant":  "team-fraud",     // [A-Za-z0-9_.-]{1,64}; default "default"
///  "render":  true,             // include the ASCII rendering too
///  "vectorized": true}          // radix kernels; default STATCUBE_VECTORIZED
/// ```
///
/// Unknown keys are a 400, not silently ignored — a client that misspells
/// `"deadline_ms"` must hear about it rather than run without a deadline.
///
/// Layering: serve/ sits above query/ and obs/. The front door registers
/// its endpoint and its /statusz section through the generic StatsServer
/// hooks, so obs/ never includes a serve/ header.

#ifndef STATCUBE_SERVE_FRONT_DOOR_H_
#define STATCUBE_SERVE_FRONT_DOOR_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "statcube/cache/mode.h"
#include "statcube/core/statistical_object.h"
#include "statcube/obs/http_server.h"
#include "statcube/query/parser.h"
#include "statcube/serve/admission_queue.h"
#include "statcube/serve/tenant_registry.h"

namespace statcube::serve {

/// Service-level policy for a QueryFrontDoor.
struct FrontDoorOptions {
  /// Quota applied to tenants first seen at admission (Configure overrides
  /// per tenant). The default default-quota is permissive — see TenantQuota.
  TenantQuota default_quota;
  /// Execute-or-shed gate sizing (see AdmissionQueueOptions).
  AdmissionQueueOptions queue;
  /// Cache mode when the request does not say ("cache" key absent).
  cache::Mode default_cache = cache::Mode::kOff;
  /// Threads when the request does not say. 1 = serial; 0 would mean
  /// exec::DefaultThreads().
  int default_threads = 1;
  /// Largest "threads" a request may ask for; bigger is a 400 (a client
  /// asking for 10k workers is a bug, not a preference).
  int max_threads = 64;
  /// Deadline applied when the request does not say (0 = none).
  uint64_t default_deadline_ms = 0;
  /// Rows of the result included in the JSON "data" array. 0 = all rows
  /// (the default: responses are bounded by the byte budget, not by
  /// truncation — a truncated analytical answer is worse than none).
  size_t max_result_rows = 0;
};

/// Serializes a result table as a JSON object:
/// `{"name":...,"columns":[...],"rows":N,"data":[[...],...]}`.
/// Cell encoding: int64 → JSON integer, double → JSON number, string →
/// JSON string, NULL → null, ALL → the string "ALL". With `max_rows` > 0
/// only the first `max_rows` rows are emitted ("rows" still reports the
/// full count, so clients can detect truncation). Exposed so tests can
/// assert the served bytes equal an independent encoding of the same table.
std::string TableToJson(const Table& table, size_t max_rows = 0);

/// The /query serving subsystem: owns the tenant table and the admission
/// queue, and turns HTTP requests into QueryProfiled calls against one
/// statistical object. Thread-safe: ServeRequest may be called from every
/// StatsServer worker at once.
class QueryFrontDoor {
 public:
  /// Serves queries against `obj` (borrowed; must outlive the front door).
  explicit QueryFrontDoor(const StatisticalObject& obj,
                          FrontDoorOptions options = {});

  QueryFrontDoor(const QueryFrontDoor&) = delete;             ///< Not copyable.
  QueryFrontDoor& operator=(const QueryFrontDoor&) = delete;  ///< Not copyable.

  /// Handles one POST /query request end to end: parse → admit → queue →
  /// execute → respond. Public (rather than only reachable through a
  /// server socket) so unit tests and bench_serve drive the full pipeline
  /// in-process.
  obs::HttpResponse ServeRequest(const obs::HttpRequest& req);

  /// Registers POST /query on `server` and adds the per-tenant table as a
  /// /statusz section. Must be called before server.Start(); the front
  /// door must outlive the server.
  void Register(obs::StatsServer& server);

  /// Per-tenant admission state (Configure quotas through this).
  TenantRegistry& tenants() { return tenants_; }
  /// The execute-or-shed gate.
  AdmissionQueue& queue() { return queue_; }
  /// Configured policy (after construction-time clamping).
  const FrontDoorOptions& options() const { return options_; }

  /// Requests fully served (any status) since construction.
  uint64_t requests() const;

  /// HTML fragment for /statusz: one row per tenant with its quota and
  /// counters, plus the queue gauges.
  std::string StatuszSection() const;

 private:
  const StatisticalObject& obj_;
  FrontDoorOptions options_;
  TenantRegistry tenants_;
  AdmissionQueue queue_;
  std::atomic<uint64_t> requests_{0};
};

}  // namespace statcube::serve

#endif  // STATCUBE_SERVE_FRONT_DOOR_H_
