#include "statcube/privacy/protected_db.h"

#include "statcube/obs/query_profile.h"

namespace statcube {

ProtectedDatabase::ProtectedDatabase(Table micro, PrivacyPolicy policy)
    : micro_(std::move(micro)), policy_(policy), rng_(policy.seed) {}

Result<double> ProtectedDatabase::Aggregate(AggFn fn,
                                            const std::string& column,
                                            const BitVector& set) const {
  size_t cidx = 0;
  if (fn != AggFn::kCountAll) {
    STATCUBE_ASSIGN_OR_RETURN(cidx, micro_.schema().IndexOf(column));
  }
  AggState state;
  for (size_t i = 0; i < micro_.num_rows(); ++i) {
    if (!set.Get(i)) continue;
    if (fn == AggFn::kCountAll) {
      ++state.rows;
    } else {
      state.Add(micro_.at(i, cidx));
    }
  }
  Value v = state.Finalize(fn);
  return v.is_null() ? 0.0 : v.AsDouble();
}

Result<double> ProtectedDatabase::Query(AggFn fn, const std::string& column,
                                        const RowPredicate& pred) {
  obs::Span span("privacy.query");
  // Materialize the query set.
  BitVector set(micro_.num_rows(), false);
  size_t size = 0;
  for (size_t i = 0; i < micro_.num_rows(); ++i) {
    if (pred(micro_.row(i))) {
      set.Set(i, true);
      ++size;
    }
  }

  size_t k = policy_.min_query_set_size;
  size_t n = micro_.num_rows();
  if (size < k || size + k > n) {
    ++refused_;
    obs::RecordPrivacy(/*answered=*/false);
    return Status::PrivacyRefused(
        "query set size " + std::to_string(size) + " outside [" +
        std::to_string(k) + ", " + std::to_string(n - k) + "]");
  }

  if (policy_.max_overlap != SIZE_MAX) {
    for (const BitVector& prev : history_) {
      BitVector inter = set;
      inter.AndWith(prev);
      if (inter.PopCount() > policy_.max_overlap) {
        ++refused_;
        obs::RecordPrivacy(/*answered=*/false);
        return Status::PrivacyRefused(
            "query set overlaps a previous query in " +
            std::to_string(inter.PopCount()) + " rows (max " +
            std::to_string(policy_.max_overlap) + ")");
      }
    }
    history_.push_back(set);
  }

  // Sampling defense: answer from a Bernoulli subsample, scaled.
  double answer;
  if (policy_.sample_rate < 1.0) {
    BitVector sampled(micro_.num_rows(), false);
    size_t kept = 0;
    for (size_t i = 0; i < micro_.num_rows(); ++i) {
      if (set.Get(i) && rng_.Bernoulli(policy_.sample_rate)) {
        sampled.Set(i, true);
        ++kept;
      }
    }
    STATCUBE_ASSIGN_OR_RETURN(double sampled_answer,
                              Aggregate(fn, column, sampled));
    // Scale additive aggregates; means/extrema report the sample statistic.
    if (fn == AggFn::kSum || fn == AggFn::kCount || fn == AggFn::kCountAll) {
      answer = kept == 0 ? 0.0 : sampled_answer * (double(size) / double(kept));
    } else {
      answer = sampled_answer;
    }
  } else {
    STATCUBE_ASSIGN_OR_RETURN(answer, Aggregate(fn, column, set));
  }

  bool perturbed = policy_.output_noise_stddev > 0 || policy_.sample_rate < 1.0;
  if (policy_.output_noise_stddev > 0)
    answer += rng_.Gaussian(0.0, policy_.output_noise_stddev);

  ++answered_;
  obs::RecordPrivacy(/*answered=*/true, perturbed);
  return answer;
}

Result<double> ProtectedDatabase::TrueAnswer(AggFn fn,
                                             const std::string& column,
                                             const RowPredicate& pred) const {
  BitVector set(micro_.num_rows(), false);
  for (size_t i = 0; i < micro_.num_rows(); ++i)
    if (pred(micro_.row(i))) set.Set(i, true);
  return Aggregate(fn, column, set);
}

}  // namespace statcube
