// Cell suppression (paper §7, defense (iii)): before releasing a summary
// table, suppress cells whose underlying count is below a threshold
// (primary suppression — census "cell suppression"), then add complementary
// suppressions so no primary cell can be reconstructed from published
// marginals: any line (fixing all dimensions but one) with exactly one
// suppressed cell and a published marginal leaks that cell by subtraction,
// so a second cell in the line must also be suppressed. Iterate to a fixed
// point.

#ifndef STATCUBE_PRIVACY_SUPPRESSION_H_
#define STATCUBE_PRIVACY_SUPPRESSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "statcube/common/status.h"
#include "statcube/relational/table.h"

namespace statcube {

/// Configuration for SuppressCells.
struct SuppressionOptions {
  /// Cells with count below this are primary-suppressed.
  int64_t count_threshold = 5;
  /// Apply complementary suppression (assumes marginals are published).
  bool complementary = true;
};

/// Result of a suppression pass.
struct SuppressionResult {
  Table published;               ///< input with suppressed measures NULLed
  std::vector<size_t> primary;   ///< row indexes primary-suppressed
  std::vector<size_t> secondary; ///< row indexes complementary-suppressed
};

/// Suppresses cells of a macro-data table. `dim_columns` identify the
/// coordinates; `count_column` holds the cell count tested against the
/// threshold; every column in `measure_columns` (typically including the
/// count) is NULLed in suppressed cells.
Result<SuppressionResult> SuppressCells(
    const Table& macro, const std::vector<std::string>& dim_columns,
    const std::string& count_column,
    const std::vector<std::string>& measure_columns,
    const SuppressionOptions& options = {});

}  // namespace statcube

#endif  // STATCUBE_PRIVACY_SUPPRESSION_H_
