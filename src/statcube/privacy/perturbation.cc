#include "statcube/privacy/perturbation.h"

#include <cmath>

#include "statcube/common/rng.h"

namespace statcube {

Result<Table> PerturbInput(const Table& micro,
                           const std::vector<std::string>& columns,
                           const PerturbOptions& options) {
  STATCUBE_ASSIGN_OR_RETURN(std::vector<size_t> cidx,
                            micro.schema().IndexesOf(columns));
  Rng rng(options.seed);
  Table out(micro.name() + "_perturbed", micro.schema());
  for (const Row& r : micro.rows()) out.AppendRowUnchecked(r);

  for (size_t c : cidx) {
    // Draw the noise vector.
    std::vector<double> noise(out.num_rows());
    double noise_sum = 0;
    for (auto& nv : noise) {
      nv = rng.Gaussian(0.0, options.noise_stddev);
      noise_sum += nv;
    }
    double shift =
        options.preserve_total ? noise_sum / double(out.num_rows()) : 0.0;
    for (size_t r = 0; r < out.num_rows(); ++r) {
      const Value& v = out.row(r)[c];
      if (!v.is_numeric()) continue;
      out.mutable_rows()[r][c] = Value(v.AsDouble() + noise[r] - shift);
    }
  }
  return out;
}

Result<double> MeanAbsoluteRowError(const Table& a, const Table& b,
                                    const std::string& column) {
  if (a.num_rows() != b.num_rows())
    return Status::InvalidArgument("tables differ in size");
  STATCUBE_ASSIGN_OR_RETURN(size_t ca, a.schema().IndexOf(column));
  STATCUBE_ASSIGN_OR_RETURN(size_t cb, b.schema().IndexOf(column));
  if (a.num_rows() == 0) return 0.0;
  double err = 0;
  for (size_t r = 0; r < a.num_rows(); ++r)
    err += std::abs(a.at(r, ca).AsDouble() - b.at(r, cb).AsDouble());
  return err / double(a.num_rows());
}

Result<double> RelativeTotalError(const Table& a, const Table& b,
                                  const std::string& column) {
  STATCUBE_ASSIGN_OR_RETURN(size_t ca, a.schema().IndexOf(column));
  STATCUBE_ASSIGN_OR_RETURN(size_t cb, b.schema().IndexOf(column));
  double ta = 0, tb = 0;
  for (const Row& r : a.rows()) ta += r[ca].AsDouble();
  for (const Row& r : b.rows()) tb += r[cb].AsDouble();
  if (ta == 0) return tb == 0 ? 0.0 : 1.0;
  return std::abs(ta - tb) / std::abs(ta);
}

}  // namespace statcube
