// Statistical-inference defenses (paper §7).
//
// ProtectedDatabase wraps micro-data and answers only statistical summary
// queries, enforcing:
//  * query-set size restriction — refuse when the query set has fewer than
//    k rows or more than N-k (the complement leak: "average salary of all
//    employees under 65" vs "of all employees");
//  * query-set overlap control — optionally refuse when a new query set
//    overlaps a previously answered one in more than `max_overlap` rows
//    (the paper notes this eventually refuses everything — a test shows
//    exactly that);
//  * output perturbation — optionally add zero-mean noise to every answer;
//  * random-sample queries — optionally answer from a fixed random subset
//    of the query set, scaled up ([OR95]-style defense for large data).
//
// The tracker attack (tracker.h) demonstrates that size restriction alone
// is always compromisable [DS80].

#ifndef STATCUBE_PRIVACY_PROTECTED_DB_H_
#define STATCUBE_PRIVACY_PROTECTED_DB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "statcube/common/rng.h"
#include "statcube/common/status.h"
#include "statcube/relational/aggregate.h"
#include "statcube/relational/expression.h"
#include "statcube/relational/table.h"
#include "statcube/storage/bitvector.h"

namespace statcube {

/// Defense configuration.
struct PrivacyPolicy {
  /// Minimum query-set size k; also refuses sets larger than N - k.
  size_t min_query_set_size = 5;
  /// Maximum allowed overlap (rows) between a new query set and any
  /// previously answered one. SIZE_MAX disables overlap control.
  size_t max_overlap = SIZE_MAX;
  /// Standard deviation of zero-mean Gaussian output noise; 0 disables.
  double output_noise_stddev = 0.0;
  /// Answer from a Bernoulli sample of the query set with this rate (scaled
  /// back up); 1.0 disables.
  double sample_rate = 1.0;
  /// Seed for noise / sampling.
  uint64_t seed = 42;
};

/// A micro-data table exposed only through guarded statistical queries.
class ProtectedDatabase {
 public:
  ProtectedDatabase(Table micro, PrivacyPolicy policy);

  /// Answers fn(column) over rows matching `pred`, or PrivacyRefused.
  Result<double> Query(AggFn fn, const std::string& column,
                       const RowPredicate& pred);

  /// Number of rows (public: the attacker model assumes N is known).
  size_t num_rows() const { return micro_.num_rows(); }

  const PrivacyPolicy& policy() const { return policy_; }
  uint64_t queries_answered() const { return answered_; }
  uint64_t queries_refused() const { return refused_; }

  /// The exact answer, bypassing every defense — for tests and for
  /// measuring attack accuracy only.
  Result<double> TrueAnswer(AggFn fn, const std::string& column,
                            const RowPredicate& pred) const;

 private:
  Result<double> Aggregate(AggFn fn, const std::string& column,
                           const BitVector& set) const;

  Table micro_;
  PrivacyPolicy policy_;
  Rng rng_;
  std::vector<BitVector> history_;  // answered query sets (overlap control)
  uint64_t answered_ = 0;
  uint64_t refused_ = 0;
};

}  // namespace statcube

#endif  // STATCUBE_PRIVACY_PROTECTED_DB_H_
