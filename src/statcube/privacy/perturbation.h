// Data perturbation defenses (paper §7, defenses (iv) and (v)):
//  * input perturbation — store statistically correct but noise-perturbed
//    micro-data for general consumption;
//  * output perturbation — handled by ProtectedDatabase's
//    `output_noise_stddev` policy.
// Plus helpers to measure the accuracy/privacy trade-off the paper says all
// these imperfect defenses make.

#ifndef STATCUBE_PRIVACY_PERTURBATION_H_
#define STATCUBE_PRIVACY_PERTURBATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "statcube/common/status.h"
#include "statcube/relational/table.h"

namespace statcube {

/// Options for input perturbation.
struct PerturbOptions {
  double noise_stddev = 1.0;  ///< zero-mean Gaussian noise per value
  uint64_t seed = 7;
  /// If true, shift the noise so the column total is preserved exactly
  /// ("statistically correct" release).
  bool preserve_total = true;
};

/// Returns a copy of `micro` with the numeric `columns` perturbed.
Result<Table> PerturbInput(const Table& micro,
                           const std::vector<std::string>& columns,
                           const PerturbOptions& options = {});

/// Mean absolute per-row error between a column of two same-shaped tables —
/// the privacy gained (individual values are wrong by ~this much).
Result<double> MeanAbsoluteRowError(const Table& a, const Table& b,
                                    const std::string& column);

/// Relative error between the column sums of two tables — the statistical
/// utility lost (should be ~0 when preserve_total is on).
Result<double> RelativeTotalError(const Table& a, const Table& b,
                                  const std::string& column);

}  // namespace statcube

#endif  // STATCUBE_PRIVACY_PERTURBATION_H_
