#include "statcube/privacy/audit.h"

namespace statcube {

Result<double> AuditedDatabase::Query(const std::string& description,
                                      AggFn fn, const std::string& column,
                                      const RowPredicate& pred) {
  AuditRecord rec;
  rec.description = description;
  rec.fn = fn;
  rec.column = column;

  std::vector<size_t> members;
  for (size_t i = 0; i < micro_.num_rows(); ++i)
    if (pred(micro_.row(i))) members.push_back(i);
  rec.query_set_size = members.size();

  auto result = db_.Query(fn, column, pred);
  rec.answered = result.ok();
  if (!result.ok()) rec.refusal_reason = result.status().message();
  if (rec.answered)
    for (size_t i : members) ++touch_counts_[i];
  log_.push_back(std::move(rec));
  return result;
}

std::vector<size_t> AuditedDatabase::HeavilyQueriedRows(
    uint64_t threshold) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < touch_counts_.size(); ++i)
    if (touch_counts_[i] > threshold) out.push_back(i);
  return out;
}

}  // namespace statcube
