#include "statcube/privacy/tracker.h"

namespace statcube {

Result<GeneralTracker> FindGeneralTracker(
    ProtectedDatabase& db, const Schema& schema,
    const std::vector<std::string>& category_columns,
    const std::vector<std::vector<Value>>& candidate_values) {
  if (category_columns.size() != candidate_values.size())
    return Status::InvalidArgument("columns/values arity mismatch");
  size_t n = db.num_rows();
  size_t k = db.policy().min_query_set_size;

  for (size_t c = 0; c < category_columns.size(); ++c) {
    for (const Value& v : candidate_values[c]) {
      STATCUBE_ASSIGN_OR_RETURN(
          RowPredicate eq, expr::ColumnEq(schema, category_columns[c], v));
      RowPredicate ne = expr::Not(eq);
      // The attacker only sees legal answers: probe |T| via a count query.
      auto size_t_q = db.Query(AggFn::kCountAll, "", eq);
      if (!size_t_q.ok()) continue;  // refused: T outside the window anyway
      double t_size = *size_t_q;
      if (t_size >= double(2 * k) && t_size <= double(n) - double(2 * k)) {
        return GeneralTracker{eq, ne,
                              category_columns[c] + " = " + v.ToString()};
      }
    }
  }
  return Status::NotFound("no general tracker among the candidates");
}

Result<double> IndividualTrackerAttack::Via(AggFn fn,
                                            const std::string& column) {
  // T = C1 AND NOT C2; q(C1) = q(T) + q(C1 AND C2)  =>  q(C) = q(C1) - q(T).
  RowPredicate t = expr::And({c1_, expr::Not(c2_)});
  STATCUBE_ASSIGN_OR_RETURN(double q_c1, db_->Query(fn, column, c1_));
  STATCUBE_ASSIGN_OR_RETURN(double q_t, db_->Query(fn, column, t));
  queries_used_ += 2;
  return q_c1 - q_t;
}

Result<double> IndividualTrackerAttack::Count() {
  return Via(AggFn::kCountAll, "");
}

Result<double> IndividualTrackerAttack::Sum(const std::string& column) {
  return Via(AggFn::kSum, column);
}

Result<double> TrackerAttack::PaddedQuery(AggFn fn, const std::string& column,
                                          const RowPredicate& pred) {
  // q(C or T) + q(C or ~T) - (q(T) + q(~T)): four legal queries.
  RowPredicate c_or_t = expr::Or({pred, tracker_.tracker});
  RowPredicate c_or_nt = expr::Or({pred, tracker_.complement});
  STATCUBE_ASSIGN_OR_RETURN(double a, db_->Query(fn, column, c_or_t));
  STATCUBE_ASSIGN_OR_RETURN(double b, db_->Query(fn, column, c_or_nt));
  STATCUBE_ASSIGN_OR_RETURN(double t, db_->Query(fn, column, tracker_.tracker));
  STATCUBE_ASSIGN_OR_RETURN(double nt,
                            db_->Query(fn, column, tracker_.complement));
  queries_used_ += 4;
  return a + b - (t + nt);
}

Result<double> TrackerAttack::Count(const RowPredicate& pred) {
  return PaddedQuery(AggFn::kCountAll, "", pred);
}

Result<double> TrackerAttack::Sum(const std::string& column,
                                  const RowPredicate& pred) {
  return PaddedQuery(AggFn::kSum, column, pred);
}

Result<double> TrackerAttack::IndividualValue(const std::string& column,
                                              const RowPredicate& pred) {
  STATCUBE_ASSIGN_OR_RETURN(double count, Count(pred));
  if (count < 0.5 || count > 1.5)
    return Status::InvalidArgument(
        "predicate does not isolate an individual (count ~= " +
        std::to_string(count) + ")");
  return Sum(column, pred);
}

}  // namespace statcube
