// The general tracker of Denning & Schlörer [DS80] (paper §7): a procedure
// that compromises any database protected only by query-set size
// restriction. A predicate T whose query set satisfies 2k <= |T| <= N - 2k
// is a *general tracker*; padding any small query C with T and its
// complement keeps every issued query inside the legal window:
//
//   count(C) = q(C or T) + q(C or not T) - N
//   sum(C)   = q_sum(C or T) + q_sum(C or not T) - total_sum
//
// so the restricted answer is reconstructed exactly from answerable
// queries. `FindGeneralTracker` locates a tracker by scanning single-column
// equality predicates; `TrackerAttack` then reads out any individual's
// value.

#ifndef STATCUBE_PRIVACY_TRACKER_H_
#define STATCUBE_PRIVACY_TRACKER_H_

#include <string>
#include <vector>

#include "statcube/common/status.h"
#include "statcube/privacy/protected_db.h"

namespace statcube {

/// A located general tracker: the predicate and its complement.
struct GeneralTracker {
  RowPredicate tracker;
  RowPredicate complement;
  std::string description;  ///< e.g. "sex = M"
};

/// Scans candidate predicates (equality on each of `category_columns`'
/// values, built from `public_schema_values`) and returns the first general
/// tracker, i.e. one with 2k <= |T| <= N - 2k. Uses only legal queries
/// against `db` to verify candidate sizes (q(T) succeeds and q(not T)
/// succeeds imply the window, given the attacker knows N).
Result<GeneralTracker> FindGeneralTracker(
    ProtectedDatabase& db, const Schema& schema,
    const std::vector<std::string>& category_columns,
    const std::vector<std::vector<Value>>& candidate_values);

/// The *individual* tracker of [DS80]: when the attacker can split the
/// predicate isolating an individual as C = C1 AND C2 with both |C1| and
/// |C1 AND NOT C2| inside the legal window, T = C1 AND NOT C2 tracks that
/// individual:  q(C) = q(C1) − q(T). Cheaper than the general tracker (two
/// queries per secret) but target-specific.
class IndividualTrackerAttack {
 public:
  /// `c1` and `c2` are the attacker's split of the isolating predicate
  /// (e.g. c1: dept = eng, c2: age = 65).
  IndividualTrackerAttack(ProtectedDatabase* db, RowPredicate c1,
                          RowPredicate c2)
      : db_(db), c1_(std::move(c1)), c2_(std::move(c2)) {}

  /// count(C1 AND C2) via the two legal padded queries.
  Result<double> Count();

  /// sum(column) over C1 AND C2.
  Result<double> Sum(const std::string& column);

  uint64_t queries_used() const { return queries_used_; }

 private:
  Result<double> Via(AggFn fn, const std::string& column);

  ProtectedDatabase* db_;
  RowPredicate c1_, c2_;
  uint64_t queries_used_ = 0;
};

/// Compromises the database with a tracker.
class TrackerAttack {
 public:
  TrackerAttack(ProtectedDatabase* db, GeneralTracker tracker)
      : db_(db), tracker_(std::move(tracker)) {}

  /// count of an arbitrary predicate, however small its query set.
  Result<double> Count(const RowPredicate& pred);

  /// sum(column) over an arbitrary predicate.
  Result<double> Sum(const std::string& column, const RowPredicate& pred);

  /// The value of `column` for the single individual matching `pred`
  /// (verifies the query set is a singleton first).
  Result<double> IndividualValue(const std::string& column,
                                 const RowPredicate& pred);

  /// Queries issued so far.
  uint64_t queries_used() const { return queries_used_; }

 private:
  Result<double> PaddedQuery(AggFn fn, const std::string& column,
                             const RowPredicate& pred);

  ProtectedDatabase* db_;
  GeneralTracker tracker_;
  uint64_t queries_used_ = 0;
};

}  // namespace statcube

#endif  // STATCUBE_PRIVACY_TRACKER_H_
