// Query auditing for the privacy monitor (paper §7): overlap control
// "requires keeping track of all query sets" — the audit log is that
// record, plus the operational telemetry a database officer would want: per
// query, its declared description, set size, decision, and which rows have
// been touched how often (heavily-queried individuals are the ones at
// inference risk).

#ifndef STATCUBE_PRIVACY_AUDIT_H_
#define STATCUBE_PRIVACY_AUDIT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "statcube/common/status.h"
#include "statcube/privacy/protected_db.h"

namespace statcube {

/// One audited query.
struct AuditRecord {
  std::string description;  ///< caller-supplied predicate description
  AggFn fn;
  std::string column;
  size_t query_set_size = 0;
  bool answered = false;
  std::string refusal_reason;  ///< empty when answered
};

/// A ProtectedDatabase wrapper that records every query.
class AuditedDatabase {
 public:
  AuditedDatabase(Table micro, PrivacyPolicy policy)
      : micro_(micro),
        db_(std::move(micro), policy),
        touch_counts_(micro_.num_rows(), 0) {}

  /// Issues a query through the monitor, logging it under `description`.
  Result<double> Query(const std::string& description, AggFn fn,
                       const std::string& column, const RowPredicate& pred);

  const std::vector<AuditRecord>& log() const { return log_; }
  ProtectedDatabase& db() { return db_; }

  /// Rows (by index) whose membership in *answered* query sets exceeds
  /// `threshold` — the individuals most exposed to intersection inference.
  std::vector<size_t> HeavilyQueriedRows(uint64_t threshold) const;

  /// How many answered query sets row `i` appeared in.
  uint64_t TouchCount(size_t i) const {
    return i < touch_counts_.size() ? touch_counts_[i] : 0;
  }

 private:
  Table micro_;  // for set-size/touch accounting (the monitor's own copy
                 // answers the queries)
  ProtectedDatabase db_;
  std::vector<AuditRecord> log_;
  std::vector<uint64_t> touch_counts_;
};

}  // namespace statcube

#endif  // STATCUBE_PRIVACY_AUDIT_H_
