#include "statcube/privacy/suppression.h"

#include <algorithm>
#include <map>

namespace statcube {

Result<SuppressionResult> SuppressCells(
    const Table& macro, const std::vector<std::string>& dim_columns,
    const std::string& count_column,
    const std::vector<std::string>& measure_columns,
    const SuppressionOptions& options) {
  STATCUBE_ASSIGN_OR_RETURN(std::vector<size_t> didx,
                            macro.schema().IndexesOf(dim_columns));
  STATCUBE_ASSIGN_OR_RETURN(size_t cidx,
                            macro.schema().IndexOf(count_column));
  STATCUBE_ASSIGN_OR_RETURN(std::vector<size_t> midx,
                            macro.schema().IndexesOf(measure_columns));

  size_t n = macro.num_rows();
  std::vector<bool> suppressed(n, false);
  SuppressionResult result;

  // Primary suppression.
  for (size_t r = 0; r < n; ++r) {
    const Value& c = macro.at(r, cidx);
    if (c.is_numeric() && c.AsDouble() > 0 &&
        c.AsDouble() < double(options.count_threshold)) {
      suppressed[r] = true;
      result.primary.push_back(r);
    }
  }

  // Complementary suppression: for every "line" (all dims fixed but one),
  // a single suppressed cell is recoverable from the line's marginal;
  // suppress the smallest-count unsuppressed sibling. Repeat to fixpoint.
  if (options.complementary && dim_columns.size() >= 1) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t vary = 0; vary < didx.size(); ++vary) {
        // Group rows by the values of all dims except `vary`.
        std::map<Row, std::vector<size_t>> lines;
        for (size_t r = 0; r < n; ++r) {
          Row key;
          for (size_t d = 0; d < didx.size(); ++d)
            if (d != vary) key.push_back(macro.at(r, didx[d]));
          lines[key].push_back(r);
        }
        for (const auto& [key, rows] : lines) {
          if (rows.size() < 2) continue;  // no sibling: marginal == cell,
                                          // nothing complementary can help
          size_t nsupp = 0;
          for (size_t r : rows) nsupp += suppressed[r] ? 1 : 0;
          if (nsupp != 1) continue;
          // Pick the smallest-count unsuppressed sibling.
          int64_t best = -1;
          double best_count = 0;
          for (size_t r : rows) {
            if (suppressed[r]) continue;
            double c = macro.at(r, cidx).is_numeric()
                           ? macro.at(r, cidx).AsDouble()
                           : 0.0;
            if (best < 0 || c < best_count) {
              best = int64_t(r);
              best_count = c;
            }
          }
          if (best >= 0) {
            suppressed[size_t(best)] = true;
            result.secondary.push_back(size_t(best));
            changed = true;
          }
        }
      }
    }
  }

  // Publish with suppressed measures NULLed.
  Table out(macro.name() + "_published", macro.schema());
  for (size_t r = 0; r < n; ++r) {
    Row row = macro.row(r);
    if (suppressed[r]) {
      for (size_t m : midx) row[m] = Value::Null();
    }
    out.AppendRowUnchecked(std::move(row));
  }
  std::sort(result.primary.begin(), result.primary.end());
  std::sort(result.secondary.begin(), result.secondary.end());
  result.published = std::move(out);
  return result;
}

}  // namespace statcube
