#include "statcube/relational/table.h"

#include <algorithm>

#include "statcube/common/str_util.h"

namespace statcube {

Status Table::AppendRow(Row row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(schema_.num_columns()) + " for table '" + name_ + "'");
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

Result<std::vector<Value>> Table::Column(const std::string& name) const {
  STATCUBE_ASSIGN_OR_RETURN(size_t idx, schema_.IndexOf(name));
  std::vector<Value> out;
  out.reserve(rows_.size());
  for (const Row& r : rows_) out.push_back(r[idx]);
  return out;
}

Status Table::SortBy(const std::vector<std::string>& cols) {
  STATCUBE_ASSIGN_OR_RETURN(std::vector<size_t> idx, schema_.IndexesOf(cols));
  std::stable_sort(rows_.begin(), rows_.end(),
                   [&idx](const Row& a, const Row& b) {
                     for (size_t c : idx) {
                       int cmp = Value::Compare(a[c], b[c]);
                       if (cmp != 0) return cmp < 0;
                     }
                     return false;
                   });
  return Status::OK();
}

std::string Table::ToString(size_t max_rows) const {
  size_t ncols = schema_.num_columns();
  std::vector<size_t> widths(ncols);
  for (size_t c = 0; c < ncols; ++c) widths[c] = schema_.column(c).name.size();
  size_t shown = std::min(max_rows, rows_.size());
  for (size_t r = 0; r < shown; ++r)
    for (size_t c = 0; c < ncols; ++c)
      widths[c] = std::max(widths[c], rows_[r][c].ToString().size());

  std::string out = name_.empty() ? "" : (name_ + " (" +
      std::to_string(rows_.size()) + " rows)\n");
  for (size_t c = 0; c < ncols; ++c) {
    out += PadRight(schema_.column(c).name, widths[c]);
    out += (c + 1 < ncols) ? " | " : "\n";
  }
  for (size_t c = 0; c < ncols; ++c) {
    out += std::string(widths[c], '-');
    out += (c + 1 < ncols) ? "-+-" : "\n";
  }
  for (size_t r = 0; r < shown; ++r) {
    for (size_t c = 0; c < ncols; ++c) {
      out += PadRight(rows_[r][c].ToString(), widths[c]);
      out += (c + 1 < ncols) ? " | " : "\n";
    }
  }
  if (shown < rows_.size()) {
    out += "... (" + std::to_string(rows_.size() - shown) + " more rows)\n";
  }
  return out;
}

size_t Table::ByteSize() const {
  size_t b = 0;
  for (const Row& r : rows_) {
    for (const Value& v : r) {
      b += sizeof(Value);
      if (v.type() == ValueType::kString) b += v.AsString().size();
    }
  }
  return b;
}

}  // namespace statcube
