#include "statcube/relational/join.h"

#include <unordered_map>

#include "statcube/common/value.h"
#include "statcube/obs/query_profile.h"

namespace statcube {

namespace {

// Shared machinery of the two join flavors.
Result<Table> HashJoinImpl(const Table& left, const std::string& left_key,
                           const Table& right, const std::string& right_key,
                           bool keep_unmatched_left) {
  obs::Span span("op.join");
  STATCUBE_ASSIGN_OR_RETURN(size_t lkey, left.schema().IndexOf(left_key));
  STATCUBE_ASSIGN_OR_RETURN(size_t rkey, right.schema().IndexOf(right_key));

  // Build side: right table (dimension tables are small in a star schema).
  // Matches are stored per key in build-row order — an unordered_multimap's
  // equal_range walks duplicates in implementation-defined order, which
  // would leak the stdlib's bucket layout into duplicate-match emission
  // order and break the bit-identical determinism contract.
  std::unordered_map<Value, std::vector<size_t>> build;
  build.reserve(right.num_rows());
  for (size_t i = 0; i < right.num_rows(); ++i)
    build[right.row(i)[rkey]].push_back(i);

  Schema out_schema;
  for (const auto& c : left.schema().columns())
    out_schema.AddColumn(c.name, c.type);
  std::vector<size_t> right_cols;  // right column indexes kept in output
  for (size_t c = 0; c < right.schema().num_columns(); ++c) {
    if (c == rkey) continue;
    std::string name = right.schema().column(c).name;
    if (out_schema.Contains(name)) name = right.name() + "." + name;
    out_schema.AddColumn(name, right.schema().column(c).type);
    right_cols.push_back(c);
  }

  Table out(left.name() + "_join_" + right.name(), out_schema);
  for (const Row& lrow : left.rows()) {
    auto it = build.find(lrow[lkey]);
    if (it == build.end()) {
      if (keep_unmatched_left) {
        Row r = lrow;
        r.resize(out_schema.num_columns(), Value::Null());
        out.AppendRowUnchecked(std::move(r));
      }
      continue;
    }
    for (size_t match : it->second) {
      const Row& rrow = right.row(match);
      Row r = lrow;
      r.reserve(out_schema.num_columns());
      for (size_t c : right_cols) r.push_back(rrow[c]);
      out.AppendRowUnchecked(std::move(r));
    }
  }
  obs::RecordOperator("join", left.num_rows() + right.num_rows(),
                      out.num_rows());
  return out;
}

}  // namespace

Result<Table> HashJoin(const Table& left, const std::string& left_key,
                       const Table& right, const std::string& right_key) {
  return HashJoinImpl(left, left_key, right, right_key,
                      /*keep_unmatched_left=*/false);
}

Result<Table> LeftOuterHashJoin(const Table& left, const std::string& left_key,
                                const Table& right,
                                const std::string& right_key) {
  return HashJoinImpl(left, left_key, right, right_key,
                      /*keep_unmatched_left=*/true);
}

}  // namespace statcube
