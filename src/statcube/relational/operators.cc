#include "statcube/relational/operators.h"

#include <unordered_set>

#include "statcube/obs/query_profile.h"

namespace statcube {

Table Select(const Table& input, const RowPredicate& pred) {
  obs::Span span("op.select");
  Table out(input.name() + "_sel", input.schema());
  for (const Row& row : input.rows())
    if (pred(row)) out.AppendRowUnchecked(row);
  obs::RecordOperator("select", input.num_rows(), out.num_rows());
  return out;
}

Result<Table> Project(const Table& input,
                      const std::vector<std::string>& columns) {
  STATCUBE_ASSIGN_OR_RETURN(std::vector<size_t> idx,
                            input.schema().IndexesOf(columns));
  Schema out_schema;
  for (size_t i : idx)
    out_schema.AddColumn(input.schema().column(i).name,
                         input.schema().column(i).type);
  Table out(input.name() + "_proj", out_schema);
  for (const Row& row : input.rows()) {
    Row r;
    r.reserve(idx.size());
    for (size_t i : idx) r.push_back(row[i]);
    out.AppendRowUnchecked(std::move(r));
  }
  obs::RecordOperator("project", input.num_rows(), out.num_rows());
  return out;
}

Table Distinct(const Table& input) {
  Table out(input.name() + "_distinct", input.schema());
  std::unordered_set<Row, RowHash, RowEq> seen;
  for (const Row& row : input.rows())
    if (seen.insert(row).second) out.AppendRowUnchecked(row);
  obs::RecordOperator("distinct", input.num_rows(), out.num_rows());
  return out;
}

Result<Table> ProjectDistinct(const Table& input,
                              const std::vector<std::string>& columns) {
  STATCUBE_ASSIGN_OR_RETURN(Table projected, Project(input, columns));
  return Distinct(projected);
}

Result<Table> UnionAll(const Table& a, const Table& b) {
  if (!(a.schema() == b.schema())) {
    return Status::InvalidArgument("UnionAll: schemas differ between '" +
                                   a.name() + "' and '" + b.name() + "'");
  }
  Table out(a.name() + "_union", a.schema());
  for (const Row& row : a.rows()) out.AppendRowUnchecked(row);
  for (const Row& row : b.rows()) out.AppendRowUnchecked(row);
  return out;
}

Result<Table> UnionDistinct(const Table& a, const Table& b) {
  STATCUBE_ASSIGN_OR_RETURN(Table all, UnionAll(a, b));
  return Distinct(all);
}

Table Limit(const Table& input, size_t n) {
  Table out(input.name() + "_limit", input.schema());
  for (size_t i = 0; i < n && i < input.num_rows(); ++i)
    out.AppendRowUnchecked(input.row(i));
  return out;
}

Result<Table> Sorted(const Table& input,
                     const std::vector<std::string>& cols) {
  Table out = input;
  STATCUBE_RETURN_NOT_OK(out.SortBy(cols));
  return out;
}

}  // namespace statcube
