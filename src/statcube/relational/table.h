// In-memory relation: a Schema plus a bag of rows. This is the logical
// container used by the relational operators; physical layouts with block
// accounting (row files, transposed files, bit-transposed files) live in
// src/statcube/storage.

#ifndef STATCUBE_RELATIONAL_TABLE_H_
#define STATCUBE_RELATIONAL_TABLE_H_

#include <string>
#include <vector>

#include "statcube/common/status.h"
#include "statcube/common/value.h"
#include "statcube/relational/schema.h"

namespace statcube {

/// A named, schema-ed bag of rows.
class Table {
 public:
  Table() = default;
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  const Schema& schema() const { return schema_; }

  size_t num_rows() const { return rows_.size(); }
  size_t num_columns() const { return schema_.num_columns(); }

  /// Appends a row; the arity must match the schema.
  Status AppendRow(Row row);

  /// Unchecked append for hot loops (arity asserted in debug builds).
  void AppendRowUnchecked(Row row) { rows_.push_back(std::move(row)); }

  const Row& row(size_t i) const { return rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row>& mutable_rows() { return rows_; }

  /// Value at (row, column).
  const Value& at(size_t r, size_t c) const { return rows_[r][c]; }

  /// Extracts one column as a vector of values.
  Result<std::vector<Value>> Column(const std::string& name) const;

  /// Sorts rows in place by the given columns (Value total order).
  Status SortBy(const std::vector<std::string>& cols);

  /// Renders up to `max_rows` rows as an aligned ASCII table.
  std::string ToString(size_t max_rows = 20) const;

  /// Estimated in-memory size in bytes of the row data (used by the storage
  /// benchmarks for the "cross product is wasteful" observation of §4.3).
  size_t ByteSize() const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace statcube

#endif  // STATCUBE_RELATIONAL_TABLE_H_
