// Equi-joins. The star schema of §4.3 (Figure 11) answers dimension-level
// queries by joining the fact table to dimension tables on their ID columns;
// HashJoin is the workhorse there and in the ROLAP backend.

#ifndef STATCUBE_RELATIONAL_JOIN_H_
#define STATCUBE_RELATIONAL_JOIN_H_

#include <string>
#include <vector>

#include "statcube/common/status.h"
#include "statcube/relational/table.h"

namespace statcube {

/// Inner hash equi-join of `left` and `right` on left.left_key ==
/// right.right_key. Output columns: all of left, then all of right except
/// the join key (to avoid a duplicate column). Right-side columns whose name
/// clashes with a left column are prefixed with "<right table name>.".
Result<Table> HashJoin(const Table& left, const std::string& left_key,
                       const Table& right, const std::string& right_key);

/// Left outer hash join: like HashJoin, but left rows without a match keep a
/// NULL-padded right side — so fact rows with dangling dimension keys (late-
/// arriving dimension rows in a warehouse) are not silently dropped.
Result<Table> LeftOuterHashJoin(const Table& left, const std::string& left_key,
                                const Table& right,
                                const std::string& right_key);

}  // namespace statcube

#endif  // STATCUBE_RELATIONAL_JOIN_H_
