// Group-by aggregation with mergeable accumulators.
//
// The summary functions here are the paper's §5.6 "simple aggregation
// functions (usually only count, sum, average, maximum, minimum)" plus
// stddev/variance which are mergeable via (count, sum, sum of squares).
// Holistic statistics (percentiles, trimmed means) live in
// statcube/olap/statistics.h because they cannot be maintained in constant
// state.
//
// Accumulator states are exposed (`GroupByStates`) and mergeable so that a
// coarser grouping can be computed from a finer one without revisiting the
// micro-data — the key enabler of the simultaneous cube computation
// ([ZDN97]-style, §5.4/§6.6) and of answering queries from materialized
// views ([HUR96], §6.3). Note that merging is exactly what summarizability
// (§3.3.2) licenses; the semantic checks for when merging is *valid* are in
// statcube/core/summarizability.h.

#ifndef STATCUBE_RELATIONAL_AGGREGATE_H_
#define STATCUBE_RELATIONAL_AGGREGATE_H_

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "statcube/common/status.h"
#include "statcube/common/value.h"
#include "statcube/relational/table.h"

namespace statcube {

/// Distributive/algebraic summary functions.
enum class AggFn {
  kCount,     ///< non-null values of the column
  kCountAll,  ///< rows (column ignored)
  kSum,
  kAvg,
  kMin,
  kMax,
  kVariance,  ///< population variance
  kStdDev,    ///< population standard deviation
};

/// Name of an aggregate function ("sum", "avg", ...).
const char* AggFnName(AggFn fn);

/// One requested aggregate: a function over a column, with an output name.
struct AggSpec {
  AggFn fn;
  std::string column;       ///< empty allowed for kCountAll
  std::string output_name;  ///< defaults to "<fn>_<column>" when empty

  std::string EffectiveName() const;
};

/// Mergeable accumulator covering every AggFn. Constant size; merging two
/// states gives the state of the concatenated input.
struct AggState {
  int64_t count = 0;        // non-null values
  int64_t rows = 0;         // all rows
  double sum = 0.0;
  double sum_sq = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  /// Folds one value into the state (NULL affects only `rows`).
  void Add(const Value& v) {
    ++rows;
    if (v.is_null()) return;
    ++count;
    if (v.is_numeric()) {
      double d = v.AsDouble();
      sum += d;
      sum_sq += d * d;
      if (d < min) min = d;
      if (d > max) max = d;
    }
  }

  /// Merges another state (set union of the underlying multisets).
  void Merge(const AggState& o) {
    count += o.count;
    rows += o.rows;
    sum += o.sum;
    sum_sq += o.sum_sq;
    if (o.min < min) min = o.min;
    if (o.max > max) max = o.max;
  }

  /// Finalizes the state into the value of `fn` (NULL on empty input for
  /// sum/avg/min/max).
  Value Finalize(AggFn fn) const;
};

/// Intermediate group-by result: group key -> one state per AggSpec.
using GroupedStates =
    std::unordered_map<Row, std::vector<AggState>, RowHash, RowEq>;

/// Computes accumulator states per group.
/// `group_cols` may be empty (single global group with an empty key).
Result<GroupedStates> GroupByStates(const Table& input,
                                    const std::vector<std::string>& group_cols,
                                    const std::vector<AggSpec>& aggs);

/// Full group-by: returns a table with `group_cols` followed by one column
/// per aggregate, sorted by the group columns for deterministic output.
Result<Table> GroupBy(const Table& input,
                      const std::vector<std::string>& group_cols,
                      const std::vector<AggSpec>& aggs);

/// Converts grouped states into an output table (shared by GroupBy and the
/// cube builder).
Table StatesToTable(const std::string& name,
                    const std::vector<std::string>& group_cols,
                    const std::vector<AggSpec>& aggs,
                    const GroupedStates& states);

}  // namespace statcube

#endif  // STATCUBE_RELATIONAL_AGGREGATE_H_
