// The data-cube relational operator of Gray et al. [GB+96], discussed in the
// paper's §4.3/§5.4 (Figures 10 and 15): GROUP BY CUBE(d1..dn) produces the
// union of the 2^n group-bys over every subset of the dimensions, with the
// reserved pseudo-value ALL standing in for "summarized over every value of
// this column". ROLLUP produces the n+1 hierarchical prefixes.
//
// Two implementations are provided:
//  * CubeByNaive — literally the union of 2^n independent group-bys; one
//    scan of the input per subset. This is the verbose SQL the paper calls
//    "awkward" in §5.4.
//  * CubeBy — one scan computes the finest grouping; every coarser grouping
//    is derived by merging accumulator states along the lattice, the
//    simultaneous-aggregation idea of [ZDN97] (§6.6). Results are identical
//    (a property test asserts this); bench/bench_cube_operator measures the
//    gap.

#ifndef STATCUBE_RELATIONAL_CUBE_OPERATOR_H_
#define STATCUBE_RELATIONAL_CUBE_OPERATOR_H_

#include <string>
#include <vector>

#include "statcube/common/status.h"
#include "statcube/relational/aggregate.h"
#include "statcube/relational/table.h"

namespace statcube {

/// GROUP BY CUBE: all 2^n groupings, one scan per grouping.
Result<Table> CubeByNaive(const Table& input,
                          const std::vector<std::string>& dims,
                          const std::vector<AggSpec>& aggs);

/// GROUP BY CUBE: one input scan, coarser groupings rolled up through the
/// lattice by state merging.
Result<Table> CubeBy(const Table& input, const std::vector<std::string>& dims,
                     const std::vector<AggSpec>& aggs);

/// GROUP BY ROLLUP: the n+1 prefix groupings (d1..dn), (d1..dn-1), ..., ().
Result<Table> RollupBy(const Table& input,
                       const std::vector<std::string>& dims,
                       const std::vector<AggSpec>& aggs);

/// Number of rows a CUBE over these dimension cardinalities can produce at
/// most: prod(card_i + 1). Exposed for size estimation in the
/// materialization module.
uint64_t CubeUpperBound(const std::vector<uint64_t>& cardinalities);

// Building blocks shared with the parallel cube kernel
// (statcube/exec/parallel_kernels.h), exposed so the parallel lattice walk
// emits bytes identical to the serial one.

/// Output schema shared by all cube variants: dims then aggregates.
Schema CubeOutputSchema(const std::vector<std::string>& dims,
                        const std::vector<AggSpec>& aggs);

/// Rolls `fine` (grouping `fine_mask`) up to `coarse_mask` by dropping the
/// key positions of dims present in fine but not in coarse and merging
/// states. Deterministic: iteration over `fine` and AggState::Merge order
/// are pure functions of `fine`'s contents.
GroupedStates RollupGroupedStates(const GroupedStates& fine,
                                  uint32_t fine_mask, uint32_t coarse_mask,
                                  size_t ndims);

/// Emits one grouping's states into `out`, padding absent dims with ALL.
/// `mask` bit i set <=> dims[i] participates in the grouping.
void EmitCubeGrouping(const GroupedStates& states, uint32_t mask,
                      size_t ndims, const std::vector<AggSpec>& aggs,
                      Table* out);

/// Sorts cube output deterministically by the dimension columns (total
/// order: every row's dim/ALL pattern is unique).
void SortCubeRows(Table* t, size_t ndims);

}  // namespace statcube

#endif  // STATCUBE_RELATIONAL_CUBE_OPERATOR_H_
