// Relational schema: ordered, named, typed columns. The relational
// representation of a statistical object (paper §4.3, Figure 10) is a table
// whose first columns are category attributes and whose last columns are
// summary attributes — but, as the paper stresses, the relational model
// itself carries no such semantics. The semantics live in src/core; this
// layer is a plain relational engine.

#ifndef STATCUBE_RELATIONAL_SCHEMA_H_
#define STATCUBE_RELATIONAL_SCHEMA_H_

#include <string>
#include <vector>

#include "statcube/common/status.h"
#include "statcube/common/value.h"

namespace statcube {

/// One column: a name and a declared type. Values of type kNull/kAll may
/// appear in any column (SQL NULL and the cube operator's ALL).
struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kString;

  bool operator==(const ColumnDef&) const = default;
};

/// An ordered list of column definitions.
class Schema {
 public:
  Schema() = default;
  /*implicit*/ Schema(std::vector<ColumnDef> cols) : cols_(std::move(cols)) {}

  /// Appends a column.
  void AddColumn(std::string name, ValueType type) {
    cols_.push_back({std::move(name), type});
  }

  size_t num_columns() const { return cols_.size(); }
  const ColumnDef& column(size_t i) const { return cols_[i]; }
  const std::vector<ColumnDef>& columns() const { return cols_; }

  /// Index of the column named `name`, or an error.
  Result<size_t> IndexOf(const std::string& name) const {
    for (size_t i = 0; i < cols_.size(); ++i)
      if (cols_[i].name == name) return i;
    return Status::NotFound("no column named '" + name + "'");
  }

  /// True if a column with this name exists.
  bool Contains(const std::string& name) const {
    for (const auto& c : cols_)
      if (c.name == name) return true;
    return false;
  }

  /// Resolves several names to indexes (error on the first miss).
  Result<std::vector<size_t>> IndexesOf(
      const std::vector<std::string>& names) const {
    std::vector<size_t> out;
    out.reserve(names.size());
    for (const auto& n : names) {
      STATCUBE_ASSIGN_OR_RETURN(size_t idx, IndexOf(n));
      out.push_back(idx);
    }
    return out;
  }

  bool operator==(const Schema&) const = default;

 private:
  std::vector<ColumnDef> cols_;
};

}  // namespace statcube

#endif  // STATCUBE_RELATIONAL_SCHEMA_H_
