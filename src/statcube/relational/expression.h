// Row predicates. Predicates are compiled against a Schema once (name ->
// index resolution), then evaluated per row with no lookups. This is the
// selection language of both the relational operators and the statistical
// S-select.

#ifndef STATCUBE_RELATIONAL_EXPRESSION_H_
#define STATCUBE_RELATIONAL_EXPRESSION_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "statcube/common/status.h"
#include "statcube/common/value.h"
#include "statcube/relational/schema.h"

namespace statcube {

/// A compiled predicate over rows of a fixed schema.
using RowPredicate = std::function<bool(const Row&)>;

/// Comparison operators for `ColumnCompare`.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Builders return a compiled predicate or an error if a column is missing.
namespace expr {

/// column <op> literal.
Result<RowPredicate> ColumnCompare(const Schema& schema,
                                   const std::string& column, CompareOp op,
                                   Value literal);

/// column == literal (shorthand).
Result<RowPredicate> ColumnEq(const Schema& schema, const std::string& column,
                              Value literal);

/// column IN (set of literals).
Result<RowPredicate> ColumnIn(const Schema& schema, const std::string& column,
                              std::vector<Value> literals);

/// lo <= column <= hi — the "dice" range selection of the paper's §5.3.
Result<RowPredicate> ColumnBetween(const Schema& schema,
                                   const std::string& column, Value lo,
                                   Value hi);

/// Conjunction of predicates (empty conjunction is TRUE).
RowPredicate And(std::vector<RowPredicate> preds);

/// Disjunction of predicates (empty disjunction is FALSE).
RowPredicate Or(std::vector<RowPredicate> preds);

/// Negation.
RowPredicate Not(RowPredicate pred);

/// The always-true predicate.
RowPredicate True();

}  // namespace expr
}  // namespace statcube

#endif  // STATCUBE_RELATIONAL_EXPRESSION_H_
