// Star schema (paper §4.3, Figure 11): a central fact table keyed by
// dimension IDs, surrounded by dimension tables that hold the category
// attributes of each dimension's classification structure. Queries that
// group or filter by dimension attributes are answered by joining the fact
// table to the dimension tables that own those attributes and aggregating —
// the ROLAP execution strategy measured in bench/bench_rolap_molap.

#ifndef STATCUBE_RELATIONAL_STAR_SCHEMA_H_
#define STATCUBE_RELATIONAL_STAR_SCHEMA_H_

#include <string>
#include <vector>

#include "statcube/common/status.h"
#include "statcube/relational/aggregate.h"
#include "statcube/relational/expression.h"
#include "statcube/relational/table.h"

namespace statcube {

/// One point of the star: a dimension table.
struct StarDimension {
  std::string name;        ///< e.g. "hospital"
  Table table;             ///< the dimension table
  std::string key_column;  ///< its ID column, e.g. "hospital_id"
  std::string fact_fk;     ///< the fact table column referencing it
  /// Category attributes from finest to coarsest (e.g. {"city", "state"}),
  /// the structural information the paper notes plain star schemas lack.
  std::vector<std::string> hierarchy_levels;
};

/// An attribute-equals-value filter applied after denormalization.
struct AttrFilter {
  std::string attribute;
  Value value;
};

/// Fact table plus dimension tables, with attribute-level query answering.
class StarSchema {
 public:
  StarSchema() = default;
  explicit StarSchema(Table fact) : fact_(std::move(fact)) {}

  void set_fact(Table fact) { fact_ = std::move(fact); }
  const Table& fact() const { return fact_; }

  /// Registers a dimension. Its `fact_fk` must exist in the fact table and
  /// `key_column` in the dimension table.
  Status AddDimension(StarDimension dim);

  const std::vector<StarDimension>& dimensions() const { return dims_; }

  /// The dimension table owning `attribute`, or -1 if the fact table owns it
  /// (or an error if nobody does).
  Result<int> OwnerOf(const std::string& attribute) const;

  /// Joins the fact table with exactly the dimension tables needed to make
  /// all of `attributes` available.
  Result<Table> Denormalize(const std::vector<std::string>& attributes) const;

  /// GROUP BY `group_attrs` over the star with optional equality filters:
  /// joins what is needed, filters, aggregates. This is "one OLAP query" in
  /// the ROLAP backend.
  Result<Table> Aggregate(const std::vector<std::string>& group_attrs,
                          const std::vector<AggSpec>& aggs,
                          const std::vector<AttrFilter>& filters = {}) const;

  /// Total bytes across fact and dimension tables (storage comparisons).
  size_t ByteSize() const;

 private:
  Table fact_;
  std::vector<StarDimension> dims_;
};

}  // namespace statcube

#endif  // STATCUBE_RELATIONAL_STAR_SCHEMA_H_
