// Relational algebra operators over Tables: select, project, sort, union,
// distinct, limit. These are the operators whose statistical analogues
// (S-select, S-project, S-union, S-aggregation [MRS92]) the paper compares
// in §5.2; the completeness-by-homomorphism harness (§5.5, Figure 16)
// commutes these with summarization.

#ifndef STATCUBE_RELATIONAL_OPERATORS_H_
#define STATCUBE_RELATIONAL_OPERATORS_H_

#include <string>
#include <vector>

#include "statcube/common/status.h"
#include "statcube/relational/expression.h"
#include "statcube/relational/table.h"

namespace statcube {

/// sigma: rows satisfying `pred`.
Table Select(const Table& input, const RowPredicate& pred);

/// pi without duplicate elimination (SQL SELECT list).
Result<Table> Project(const Table& input,
                      const std::vector<std::string>& columns);

/// pi with duplicate elimination (relational projection).
Result<Table> ProjectDistinct(const Table& input,
                              const std::vector<std::string>& columns);

/// Bag union; schemas must be identical.
Result<Table> UnionAll(const Table& a, const Table& b);

/// Set union (bag union + distinct).
Result<Table> UnionDistinct(const Table& a, const Table& b);

/// Removes duplicate rows.
Table Distinct(const Table& input);

/// First `n` rows.
Table Limit(const Table& input, size_t n);

/// Sorted copy.
Result<Table> Sorted(const Table& input, const std::vector<std::string>& cols);

}  // namespace statcube

#endif  // STATCUBE_RELATIONAL_OPERATORS_H_
