#include "statcube/relational/expression.h"

namespace statcube {
namespace expr {

Result<RowPredicate> ColumnCompare(const Schema& schema,
                                   const std::string& column, CompareOp op,
                                   Value literal) {
  STATCUBE_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(column));
  return RowPredicate([idx, op, literal = std::move(literal)](const Row& row) {
    int c = Value::Compare(row[idx], literal);
    switch (op) {
      case CompareOp::kEq:
        return c == 0;
      case CompareOp::kNe:
        return c != 0;
      case CompareOp::kLt:
        return c < 0;
      case CompareOp::kLe:
        return c <= 0;
      case CompareOp::kGt:
        return c > 0;
      case CompareOp::kGe:
        return c >= 0;
    }
    return false;
  });
}

Result<RowPredicate> ColumnEq(const Schema& schema, const std::string& column,
                              Value literal) {
  return ColumnCompare(schema, column, CompareOp::kEq, std::move(literal));
}

Result<RowPredicate> ColumnIn(const Schema& schema, const std::string& column,
                              std::vector<Value> literals) {
  STATCUBE_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(column));
  auto set = std::make_shared<std::unordered_set<Value>>(literals.begin(),
                                                         literals.end());
  return RowPredicate(
      [idx, set](const Row& row) { return set->count(row[idx]) > 0; });
}

Result<RowPredicate> ColumnBetween(const Schema& schema,
                                   const std::string& column, Value lo,
                                   Value hi) {
  STATCUBE_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(column));
  return RowPredicate([idx, lo = std::move(lo), hi = std::move(hi)](
                          const Row& row) {
    return Value::Compare(row[idx], lo) >= 0 &&
           Value::Compare(row[idx], hi) <= 0;
  });
}

RowPredicate And(std::vector<RowPredicate> preds) {
  return [preds = std::move(preds)](const Row& row) {
    for (const auto& p : preds)
      if (!p(row)) return false;
    return true;
  };
}

RowPredicate Or(std::vector<RowPredicate> preds) {
  return [preds = std::move(preds)](const Row& row) {
    for (const auto& p : preds)
      if (p(row)) return true;
    return false;
  };
}

RowPredicate Not(RowPredicate pred) {
  return [pred = std::move(pred)](const Row& row) { return !pred(row); };
}

RowPredicate True() {
  return [](const Row&) { return true; };
}

}  // namespace expr
}  // namespace statcube
