#include "statcube/relational/cube_operator.h"

#include <algorithm>
#include <unordered_map>

#include "statcube/common/str_util.h"

namespace statcube {

Schema CubeOutputSchema(const std::vector<std::string>& dims,
                        const std::vector<AggSpec>& aggs) {
  Schema s;
  for (const auto& d : dims) s.AddColumn(d, ValueType::kString);
  for (const auto& a : aggs) s.AddColumn(a.EffectiveName(), ValueType::kDouble);
  return s;
}

void SortCubeRows(Table* t, size_t ndims) {
  std::sort(t->mutable_rows().begin(), t->mutable_rows().end(),
            [ndims](const Row& a, const Row& b) {
              for (size_t c = 0; c < ndims; ++c) {
                int cmp = Value::Compare(a[c], b[c]);
                if (cmp != 0) return cmp < 0;
              }
              return false;
            });
}

// The grouped key contains the participating dims in dims order.
void EmitCubeGrouping(const GroupedStates& states, uint32_t mask, size_t ndims,
                      const std::vector<AggSpec>& aggs, Table* out) {
  // Every caller runs SortCubeRows over the assembled table.
  // statcube-lint: allow(unordered-emit)
  for (const auto& [key, st] : states) {
    Row row(ndims + aggs.size());
    size_t k = 0;
    for (size_t d = 0; d < ndims; ++d) {
      if (mask & (1u << d))
        row[d] = key[k++];
      else
        row[d] = Value::All();
    }
    for (size_t i = 0; i < aggs.size(); ++i)
      row[ndims + i] = st[i].Finalize(aggs[i].fn);
    out->AppendRowUnchecked(std::move(row));
  }
}

Result<Table> CubeByNaive(const Table& input,
                          const std::vector<std::string>& dims,
                          const std::vector<AggSpec>& aggs) {
  if (dims.size() > 20)
    return Status::InvalidArgument("cube over >20 dimensions refused");
  size_t ndims = dims.size();
  Table out(input.name() + "_cube", CubeOutputSchema(dims, aggs));
  for (uint32_t mask = 0; mask < (1u << ndims); ++mask) {
    std::vector<std::string> sub;
    for (size_t d = 0; d < ndims; ++d)
      if (mask & (1u << d)) sub.push_back(dims[d]);
    STATCUBE_ASSIGN_OR_RETURN(GroupedStates states,
                              GroupByStates(input, sub, aggs));
    EmitCubeGrouping(states, mask, ndims, aggs, &out);
  }
  SortCubeRows(&out, ndims);
  return out;
}

GroupedStates RollupGroupedStates(const GroupedStates& fine,
                                  uint32_t fine_mask, uint32_t coarse_mask,
                                  size_t ndims) {
  // Positions (within the fine key) to keep.
  std::vector<size_t> keep;
  size_t pos = 0;
  for (size_t d = 0; d < ndims; ++d) {
    if (fine_mask & (1u << d)) {
      if (coarse_mask & (1u << d)) keep.push_back(pos);
      ++pos;
    }
  }
  GroupedStates out;
  Row key(keep.size());
  for (const auto& [fkey, fst] : fine) {
    for (size_t i = 0; i < keep.size(); ++i) key[i] = fkey[keep[i]];
    auto it = out.find(key);
    if (it == out.end()) {
      out.emplace(key, fst);
    } else {
      for (size_t i = 0; i < fst.size(); ++i) it->second[i].Merge(fst[i]);
    }
  }
  return out;
}

Result<Table> CubeBy(const Table& input, const std::vector<std::string>& dims,
                     const std::vector<AggSpec>& aggs) {
  if (dims.size() > 20)
    return Status::InvalidArgument("cube over >20 dimensions refused");
  size_t ndims = dims.size();
  uint32_t full = ndims == 0 ? 0 : ((1u << ndims) - 1);

  // One scan of the input: the finest grouping.
  STATCUBE_ASSIGN_OR_RETURN(GroupedStates base,
                            GroupByStates(input, dims, aggs));

  Table out(input.name() + "_cube", CubeOutputSchema(dims, aggs));
  // Process masks by decreasing popcount so every grouping can roll up from
  // a computed parent with exactly one more dimension.
  std::unordered_map<uint32_t, GroupedStates> computed;
  computed.emplace(full, std::move(base));

  std::vector<uint32_t> masks;
  for (uint32_t m = 0; m <= full; ++m) masks.push_back(m);
  std::sort(masks.begin(), masks.end(), [](uint32_t a, uint32_t b) {
    int pa = __builtin_popcount(a), pb = __builtin_popcount(b);
    return pa != pb ? pa > pb : a < b;
  });

  for (uint32_t m : masks) {
    if (!computed.count(m)) {
      // Parent: add the lowest absent dimension. Rolling up from the parent
      // with the *smallest* state count would be cheaper; lowest-bit choice
      // keeps the code simple and is within a constant factor for the
      // benchmark's purposes.
      uint32_t missing = full & ~m;
      uint32_t parent = m | (missing & (~missing + 1));
      const GroupedStates& fine = computed.at(parent);
      computed.emplace(m, RollupGroupedStates(fine, parent, m, ndims));
    }
    EmitCubeGrouping(computed.at(m), m, ndims, aggs, &out);
  }
  SortCubeRows(&out, ndims);
  return out;
}

Result<Table> RollupBy(const Table& input,
                       const std::vector<std::string>& dims,
                       const std::vector<AggSpec>& aggs) {
  size_t ndims = dims.size();
  Table out(input.name() + "_rollup", CubeOutputSchema(dims, aggs));

  STATCUBE_ASSIGN_OR_RETURN(GroupedStates states,
                            GroupByStates(input, dims, aggs));
  uint32_t full = ndims == 0 ? 0 : ((1u << ndims) - 1);
  uint32_t mask = full;
  // Prefixes: (d1..dn), (d1..dn-1), ..., ().
  for (size_t len = ndims + 1; len-- > 0;) {
    uint32_t m = len == 0 ? 0 : ((1u << len) - 1);
    if (m != mask) {
      states = RollupGroupedStates(states, mask, m, ndims);
      mask = m;
    }
    EmitCubeGrouping(states, m, ndims, aggs, &out);
  }
  SortCubeRows(&out, ndims);
  return out;
}

uint64_t CubeUpperBound(const std::vector<uint64_t>& cardinalities) {
  uint64_t total = 1;
  for (uint64_t c : cardinalities) total *= (c + 1);
  return total;
}

}  // namespace statcube
