#include "statcube/relational/star_schema.h"

#include <algorithm>
#include <unordered_set>

#include "statcube/relational/join.h"
#include "statcube/relational/operators.h"

namespace statcube {

Status StarSchema::AddDimension(StarDimension dim) {
  if (!fact_.schema().Contains(dim.fact_fk)) {
    return Status::InvalidArgument("fact table has no column '" +
                                   dim.fact_fk + "' for dimension '" +
                                   dim.name + "'");
  }
  if (!dim.table.schema().Contains(dim.key_column)) {
    return Status::InvalidArgument("dimension table '" + dim.name +
                                   "' has no key column '" + dim.key_column +
                                   "'");
  }
  for (const auto& level : dim.hierarchy_levels) {
    if (!dim.table.schema().Contains(level)) {
      return Status::InvalidArgument("dimension '" + dim.name +
                                     "' lacks hierarchy level column '" +
                                     level + "'");
    }
  }
  dims_.push_back(std::move(dim));
  return Status::OK();
}

Result<int> StarSchema::OwnerOf(const std::string& attribute) const {
  if (fact_.schema().Contains(attribute)) return -1;
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (dims_[i].table.schema().Contains(attribute) &&
        attribute != dims_[i].key_column) {
      return static_cast<int>(i);
    }
  }
  return Status::NotFound("no table in the star owns attribute '" +
                          attribute + "'");
}

Result<Table> StarSchema::Denormalize(
    const std::vector<std::string>& attributes) const {
  std::unordered_set<int> needed;
  for (const auto& attr : attributes) {
    STATCUBE_ASSIGN_OR_RETURN(int owner, OwnerOf(attr));
    if (owner >= 0) needed.insert(owner);
  }
  // Join in ascending dimension-index order: iterating the unordered_set
  // directly would let the stdlib's bucket layout pick the join order, and
  // with it the output column order — nondeterministic across platforms.
  std::vector<int> join_order(needed.begin(), needed.end());
  std::sort(join_order.begin(), join_order.end());
  Table joined = fact_;
  for (int d : join_order) {
    const StarDimension& dim = dims_[static_cast<size_t>(d)];
    STATCUBE_ASSIGN_OR_RETURN(
        joined, HashJoin(joined, dim.fact_fk, dim.table, dim.key_column));
  }
  return joined;
}

Result<Table> StarSchema::Aggregate(
    const std::vector<std::string>& group_attrs,
    const std::vector<AggSpec>& aggs,
    const std::vector<AttrFilter>& filters) const {
  std::vector<std::string> all_attrs = group_attrs;
  for (const auto& f : filters) all_attrs.push_back(f.attribute);
  STATCUBE_ASSIGN_OR_RETURN(Table joined, Denormalize(all_attrs));

  if (!filters.empty()) {
    std::vector<RowPredicate> preds;
    for (const auto& f : filters) {
      STATCUBE_ASSIGN_OR_RETURN(
          RowPredicate p, expr::ColumnEq(joined.schema(), f.attribute, f.value));
      preds.push_back(std::move(p));
    }
    joined = Select(joined, expr::And(std::move(preds)));
  }
  return GroupBy(joined, group_attrs, aggs);
}

size_t StarSchema::ByteSize() const {
  size_t b = fact_.ByteSize();
  for (const auto& d : dims_) b += d.table.ByteSize();
  return b;
}

}  // namespace statcube
