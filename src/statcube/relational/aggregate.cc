#include "statcube/relational/aggregate.h"

#include <algorithm>
#include <cmath>

#include "statcube/common/cancellation.h"
#include "statcube/common/str_util.h"
#include "statcube/obs/query_profile.h"

namespace statcube {

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kCount:
      return "count";
    case AggFn::kCountAll:
      return "count_all";
    case AggFn::kSum:
      return "sum";
    case AggFn::kAvg:
      return "avg";
    case AggFn::kMin:
      return "min";
    case AggFn::kMax:
      return "max";
    case AggFn::kVariance:
      return "var";
    case AggFn::kStdDev:
      return "stddev";
  }
  return "?";
}

std::string AggSpec::EffectiveName() const {
  if (!output_name.empty()) return output_name;
  std::string n = AggFnName(fn);
  if (!column.empty()) n += "_" + column;
  return n;
}

Value AggState::Finalize(AggFn fn) const {
  switch (fn) {
    case AggFn::kCount:
      return Value(count);
    case AggFn::kCountAll:
      return Value(rows);
    case AggFn::kSum:
      return count == 0 ? Value::Null() : Value(sum);
    case AggFn::kAvg:
      return count == 0 ? Value::Null() : Value(sum / double(count));
    case AggFn::kMin:
      return count == 0 ? Value::Null() : Value(min);
    case AggFn::kMax:
      return count == 0 ? Value::Null() : Value(max);
    case AggFn::kVariance: {
      if (count == 0) return Value::Null();
      double mean = sum / double(count);
      double var = sum_sq / double(count) - mean * mean;
      return Value(var < 0 ? 0.0 : var);  // clamp FP noise
    }
    case AggFn::kStdDev: {
      if (count == 0) return Value::Null();
      double mean = sum / double(count);
      double var = sum_sq / double(count) - mean * mean;
      return Value(std::sqrt(var < 0 ? 0.0 : var));
    }
  }
  return Value::Null();
}

Result<GroupedStates> GroupByStates(const Table& input,
                                    const std::vector<std::string>& group_cols,
                                    const std::vector<AggSpec>& aggs) {
  STATCUBE_ASSIGN_OR_RETURN(std::vector<size_t> gidx,
                            input.schema().IndexesOf(group_cols));
  // Resolve aggregate input columns; kCountAll may omit the column.
  std::vector<int64_t> aidx(aggs.size(), -1);
  for (size_t i = 0; i < aggs.size(); ++i) {
    if (aggs[i].fn == AggFn::kCountAll && aggs[i].column.empty()) continue;
    STATCUBE_ASSIGN_OR_RETURN(size_t idx,
                              input.schema().IndexOf(aggs[i].column));
    aidx[i] = static_cast<int64_t>(idx);
  }

  // Serial loops have no ParallelForOptions to carry a stop context, so the
  // query-level one arrives through the thread-local CancelScope slot
  // (installed by QueryProfiled). Checked every 1024 rows — cheap against
  // the per-row hash work, fine-grained enough that a cancelled or expired
  // query stops within a morsel-sized batch.
  const CancelContext* stop = CurrentCancelContext();
  GroupedStates states;
  Row key(gidx.size());
  size_t rownum = 0;
  for (const Row& row : input.rows()) {
    if (stop != nullptr && (rownum++ & 1023) == 0)
      if (StopReason sr = stop->Check(); sr != StopReason::kNone)
        return StopStatus(sr, "groupby");
    for (size_t k = 0; k < gidx.size(); ++k) key[k] = row[gidx[k]];
    auto it = states.find(key);
    if (it == states.end())
      it = states.emplace(key, std::vector<AggState>(aggs.size())).first;
    for (size_t i = 0; i < aggs.size(); ++i) {
      if (aidx[i] < 0) {
        ++it->second[i].rows;  // kCountAll without a column
      } else {
        it->second[i].Add(row[static_cast<size_t>(aidx[i])]);
      }
    }
  }
  return states;
}

Table StatesToTable(const std::string& name,
                    const std::vector<std::string>& group_cols,
                    const std::vector<AggSpec>& aggs,
                    const GroupedStates& states) {
  Schema out_schema;
  for (const auto& g : group_cols) out_schema.AddColumn(g, ValueType::kString);
  for (const auto& a : aggs)
    out_schema.AddColumn(a.EffectiveName(), ValueType::kDouble);

  Table out(name, out_schema);
  for (const auto& [key, st] : states) {
    Row row = key;
    for (size_t i = 0; i < aggs.size(); ++i)
      row.push_back(st[i].Finalize(aggs[i].fn));
    out.AppendRowUnchecked(std::move(row));
  }
  // Deterministic order.
  std::sort(out.mutable_rows().begin(), out.mutable_rows().end(),
            [n = group_cols.size()](const Row& a, const Row& b) {
              for (size_t c = 0; c < n; ++c) {
                int cmp = Value::Compare(a[c], b[c]);
                if (cmp != 0) return cmp < 0;
              }
              return false;
            });
  return out;
}

Result<Table> GroupBy(const Table& input,
                      const std::vector<std::string>& group_cols,
                      const std::vector<AggSpec>& aggs) {
  obs::Span span("op.groupby");
  STATCUBE_ASSIGN_OR_RETURN(GroupedStates states,
                            GroupByStates(input, group_cols, aggs));
  Table out = StatesToTable(input.name() + "_by_" + Join(group_cols, "_"),
                            group_cols, aggs, states);
  obs::RecordOperator("groupby", input.num_rows(), out.num_rows());
  return out;
}

}  // namespace statcube
