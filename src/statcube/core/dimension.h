// Dimensions (category attributes) of a statistical object.
//
// A dimension owns its leaf category values and zero or more classification
// hierarchies over them. §3.2 notes "multiple classifications over the same
// dimension" (products by type OR by price range; stocks by industry OR by
// rating) — hence a vector of hierarchies, each rooted at this dimension's
// leaf values.

#ifndef STATCUBE_CORE_DIMENSION_H_
#define STATCUBE_CORE_DIMENSION_H_

#include <string>
#include <vector>

#include "statcube/common/status.h"
#include "statcube/common/value.h"
#include "statcube/core/classification.h"

namespace statcube {

/// Kind of dimension — drives the measure-type compatibility check (time)
/// and is descriptive for spatial/geographic dimensions, which the paper
/// singles out as the SDB emphasis (§3.1).
enum class DimensionKind { kCategorical, kTemporal, kSpatial };

/// Name of a dimension kind.
const char* DimensionKindName(DimensionKind k);

/// One dimension of the multidimensional space.
class Dimension {
 public:
  Dimension() = default;
  Dimension(std::string name, DimensionKind kind = DimensionKind::kCategorical)
      : name_(std::move(name)), kind_(kind) {}

  const std::string& name() const { return name_; }
  DimensionKind kind() const { return kind_; }
  bool is_temporal() const { return kind_ == DimensionKind::kTemporal; }

  /// Registers a leaf category value (idempotent, keeps insertion order).
  void AddValue(const Value& v) {
    for (const Value& e : values_)
      if (e == v) return;
    values_.push_back(v);
  }

  const std::vector<Value>& values() const { return values_; }
  size_t cardinality() const { return values_.size(); }

  /// Drops the registered leaf values (used when an operator re-derives a
  /// dimension whose value set changed, e.g. S-select or roll-up).
  void ClearValues() { values_.clear(); }

  /// Attaches a classification hierarchy whose leaf level classifies this
  /// dimension's values. Multiple hierarchies = multiple classifications
  /// over the same dimension.
  void AddHierarchy(ClassificationHierarchy h) {
    hierarchies_.push_back(std::move(h));
  }

  const std::vector<ClassificationHierarchy>& hierarchies() const {
    return hierarchies_;
  }
  std::vector<ClassificationHierarchy>& mutable_hierarchies() {
    return hierarchies_;
  }

  /// Finds a hierarchy by name.
  Result<const ClassificationHierarchy*> HierarchyNamed(
      const std::string& name) const {
    for (const auto& h : hierarchies_)
      if (h.name() == name) return &h;
    return Status::NotFound("dimension '" + name_ + "' has no hierarchy '" +
                            name + "'");
  }

  /// Finds the hierarchy (and level index) owning a category attribute
  /// named `level_name`; errors if none or ambiguous across hierarchies.
  Result<std::pair<const ClassificationHierarchy*, size_t>> LevelNamed(
      const std::string& level_name) const {
    const ClassificationHierarchy* found = nullptr;
    size_t level = 0;
    for (const auto& h : hierarchies_) {
      auto idx = h.LevelIndex(level_name);
      if (idx.ok()) {
        if (found) {
          return Status::InvalidArgument("category attribute '" + level_name +
                                         "' is ambiguous on dimension '" +
                                         name_ + "'");
        }
        found = &h;
        level = *idx;
      }
    }
    if (!found)
      return Status::NotFound("no category attribute '" + level_name +
                              "' on dimension '" + name_ + "'");
    return std::make_pair(found, level);
  }

 private:
  std::string name_;
  DimensionKind kind_ = DimensionKind::kCategorical;
  std::vector<Value> values_;
  std::vector<ClassificationHierarchy> hierarchies_;
};

}  // namespace statcube

#endif  // STATCUBE_CORE_DIMENSION_H_
