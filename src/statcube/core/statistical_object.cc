#include "statcube/core/statistical_object.h"

#include <algorithm>

#include "statcube/common/str_util.h"

namespace statcube {

void StatisticalObject::RebuildSchema() {
  Schema s;
  for (const auto& d : dims_) s.AddColumn(d.name(), ValueType::kString);
  for (const auto& m : measures_) s.AddColumn(m.name, ValueType::kDouble);
  Table t(name_, s);
  data_ = std::move(t);
}

Status StatisticalObject::AddDimension(Dimension dim) {
  if (data_.num_rows() > 0)
    return Status::InvalidArgument("cannot add dimensions after cells");
  for (const auto& d : dims_)
    if (d.name() == dim.name())
      return Status::AlreadyExists("dimension '" + dim.name() + "'");
  dims_.push_back(std::move(dim));
  RebuildSchema();
  return Status::OK();
}

Status StatisticalObject::AddMeasure(SummaryMeasure measure) {
  if (data_.num_rows() > 0)
    return Status::InvalidArgument("cannot add measures after cells");
  for (const auto& m : measures_)
    if (m.name == measure.name)
      return Status::AlreadyExists("measure '" + measure.name + "'");
  measures_.push_back(std::move(measure));
  RebuildSchema();
  return Status::OK();
}

Result<const Dimension*> StatisticalObject::DimensionNamed(
    const std::string& name) const {
  for (const auto& d : dims_)
    if (d.name() == name) return &d;
  return Status::NotFound("object '" + name_ + "' has no dimension '" + name +
                          "'");
}

Result<Dimension*> StatisticalObject::MutableDimensionNamed(
    const std::string& name) {
  for (auto& d : dims_)
    if (d.name() == name) {
      // Handing out a mutable hierarchy invalidates cached roll-ups.
      DataEpochs::Global().Bump(name_);
      return &d;
    }
  return Status::NotFound("object '" + name_ + "' has no dimension '" + name +
                          "'");
}

Result<const SummaryMeasure*> StatisticalObject::MeasureNamed(
    const std::string& name) const {
  for (const auto& m : measures_)
    if (m.name == name) return &m;
  return Status::NotFound("object '" + name_ + "' has no measure '" + name +
                          "'");
}

Result<size_t> StatisticalObject::DimensionIndex(
    const std::string& name) const {
  for (size_t i = 0; i < dims_.size(); ++i)
    if (dims_[i].name() == name) return i;
  return Status::NotFound("object '" + name_ + "' has no dimension '" + name +
                          "'");
}

Status StatisticalObject::AddCell(const Row& dim_values,
                                  const Row& measure_values) {
  if (dim_values.size() != dims_.size())
    return Status::InvalidArgument("expected " + std::to_string(dims_.size()) +
                                   " dimension values, got " +
                                   std::to_string(dim_values.size()));
  if (measure_values.size() != measures_.size())
    return Status::InvalidArgument(
        "expected " + std::to_string(measures_.size()) +
        " measure values, got " + std::to_string(measure_values.size()));
  Row row;
  row.reserve(dim_values.size() + measure_values.size());
  for (size_t i = 0; i < dim_values.size(); ++i) {
    dims_[i].AddValue(dim_values[i]);
    row.push_back(dim_values[i]);
  }
  for (const Value& v : measure_values) row.push_back(v);
  STATCUBE_RETURN_NOT_OK(data_.AppendRow(std::move(row)));
  // Publish the mutation so cached query results against the old contents
  // stop matching (common/epoch.h).
  DataEpochs::Global().Bump(name_);
  return Status::OK();
}

Result<StatisticalObject> StatisticalObject::FromTable(
    const Table& table, const std::vector<std::string>& dim_columns,
    const std::vector<SummaryMeasure>& measures,
    const std::vector<std::string>& temporal_columns) {
  StatisticalObject obj(table.name());
  for (const auto& dc : dim_columns) {
    STATCUBE_RETURN_NOT_OK(table.schema().IndexOf(dc).status());
    bool temporal = std::find(temporal_columns.begin(),
                              temporal_columns.end(),
                              dc) != temporal_columns.end();
    STATCUBE_RETURN_NOT_OK(obj.AddDimension(Dimension(
        dc, temporal ? DimensionKind::kTemporal : DimensionKind::kCategorical)));
  }
  for (const auto& m : measures) {
    STATCUBE_RETURN_NOT_OK(table.schema().IndexOf(m.name).status());
    STATCUBE_RETURN_NOT_OK(obj.AddMeasure(m));
  }
  STATCUBE_ASSIGN_OR_RETURN(std::vector<size_t> didx,
                            table.schema().IndexesOf(dim_columns));
  std::vector<std::string> mnames;
  for (const auto& m : measures) mnames.push_back(m.name);
  STATCUBE_ASSIGN_OR_RETURN(std::vector<size_t> midx,
                            table.schema().IndexesOf(mnames));
  for (const Row& r : table.rows()) {
    Row dv, mv;
    for (size_t i : didx) dv.push_back(r[i]);
    for (size_t i : midx) mv.push_back(r[i]);
    STATCUBE_RETURN_NOT_OK(obj.AddCell(dv, mv));
  }
  return obj;
}

std::string StatisticalObject::DescribeStructure() const {
  std::string out = "Statistical object: " + name_ + "\n";
  for (const auto& m : measures_) {
    out += "  Summary measure: " + m.name + " (" +
           std::string(AggFnName(m.default_fn)) + ", " +
           MeasureTypeName(m.type);
    if (!m.unit.empty()) out += ", unit=" + m.unit;
    out += ")\n";
  }
  std::vector<std::string> dnames;
  for (const auto& d : dims_) dnames.push_back(d.name());
  out += "  Dimensions: " + Join(dnames, ", ") + "\n";
  for (const auto& d : dims_) {
    for (const auto& h : d.hierarchies()) {
      // Render coarse --> fine like the paper: professional class -->
      // profession; year --> month --> day.
      std::vector<std::string> levels(h.levels().rbegin(), h.levels().rend());
      out += "  Classification hierarchy (" + d.name() + "): " +
             Join(levels, " --> ") + "\n";
    }
  }
  return out;
}

}  // namespace statcube
