#include "statcube/core/catalog.h"

#include <set>

namespace statcube {

Status Catalog::RegisterMicroData(const std::string& name, Table table) {
  if (Contains(name)) return Status::AlreadyExists("dataset '" + name + "'");
  micro_.emplace(name, std::move(table));
  return Status::OK();
}

Status Catalog::RegisterObject(const std::string& name,
                               StatisticalObject object) {
  if (Contains(name)) return Status::AlreadyExists("dataset '" + name + "'");
  objects_.emplace(name, std::move(object));
  return Status::OK();
}

bool Catalog::Contains(const std::string& name) const {
  return micro_.count(name) > 0 || objects_.count(name) > 0;
}

Status Catalog::RecordDerivation(Derivation derivation) {
  if (!Contains(derivation.target))
    return Status::NotFound("target '" + derivation.target +
                            "' is not registered");
  if (derivation.sources.empty())
    return Status::InvalidArgument("derivation needs at least one source");
  for (const auto& s : derivation.sources) {
    if (!Contains(s))
      return Status::NotFound("source '" + s + "' is not registered");
    if (s == derivation.target)
      return Status::InvalidArgument("dataset cannot derive from itself");
  }
  if (derivation.method.empty())
    return Status::InvalidArgument(
        "derivation must name its method — undocumented analyst "
        "calculations are the §5.7 failure mode");
  derivations_.push_back(std::move(derivation));
  return Status::OK();
}

Result<const Table*> Catalog::MicroData(const std::string& name) const {
  auto it = micro_.find(name);
  if (it == micro_.end())
    return Status::NotFound("no micro-data named '" + name + "'");
  return &it->second;
}

Result<const StatisticalObject*> Catalog::Object(
    const std::string& name) const {
  auto it = objects_.find(name);
  if (it == objects_.end())
    return Status::NotFound("no statistical object named '" + name + "'");
  return &it->second;
}

std::vector<Derivation> Catalog::DerivationsOf(const std::string& name) const {
  std::vector<Derivation> out;
  for (const auto& d : derivations_)
    if (d.target == name) out.push_back(d);
  return out;
}

Result<std::vector<Derivation>> Catalog::Lineage(
    const std::string& name) const {
  if (!Contains(name))
    return Status::NotFound("no dataset named '" + name + "'");
  std::vector<Derivation> out;
  std::set<std::string> visited;
  std::vector<std::string> stack = {name};
  while (!stack.empty()) {
    std::string cur = stack.back();
    stack.pop_back();
    if (!visited.insert(cur).second) continue;
    for (const auto& d : derivations_) {
      if (d.target != cur) continue;
      out.push_back(d);
      for (const auto& s : d.sources) stack.push_back(s);
    }
  }
  return out;
}

std::vector<std::string> Catalog::Dependents(const std::string& name) const {
  std::set<std::string> out;
  std::vector<std::string> stack = {name};
  while (!stack.empty()) {
    std::string cur = stack.back();
    stack.pop_back();
    for (const auto& d : derivations_) {
      for (const auto& s : d.sources) {
        if (s == cur && out.insert(d.target).second)
          stack.push_back(d.target);
      }
    }
  }
  return std::vector<std::string>(out.begin(), out.end());
}

std::vector<std::string> Catalog::ListMicro() const {
  std::vector<std::string> out;
  for (const auto& [n, t] : micro_) out.push_back(n);
  return out;
}

std::vector<std::string> Catalog::ListObjects() const {
  std::vector<std::string> out;
  for (const auto& [n, o] : objects_) out.push_back(n);
  return out;
}

}  // namespace statcube
