#include "statcube/core/terminology.h"

namespace statcube {

const std::vector<TermPair>& StructuralTerms() {
  static const std::vector<TermPair> kTerms = {
      {"Dimension", "Category Attribute"},
      {"Dimension Hierarchy", "Category Hierarchy"},
      {"Measures (fact column)", "Summary Attribute"},
      {"Data Cube (fact table)", "Statistical Object"},
      {"Multidimensionality", "Cross Product"},
      {"Dimension Value", "Category Value"},
      {"Table / Data Cube", "Summary Table"},
  };
  return kTerms;
}

const std::vector<TermPair>& OperatorTerms() {
  static const std::vector<TermPair> kTerms = {
      {"Slice", "S-projection"},
      {"Dice", "S-selection"},
      {"Roll up (consolidation)", "S-aggregation"},
      {"Drill down", "S-disaggregation"},
      {"(no equivalent)", "S-union"},
  };
  return kTerms;
}

Result<std::string> SdbTermFor(const std::string& olap_term) {
  for (const auto& t : StructuralTerms())
    if (t.olap == olap_term) return t.sdb;
  for (const auto& t : OperatorTerms())
    if (t.olap == olap_term) return t.sdb;
  return Status::NotFound("no SDB correspondence for OLAP term '" +
                          olap_term + "'");
}

Result<std::string> OlapTermFor(const std::string& sdb_term) {
  for (const auto& t : StructuralTerms())
    if (t.sdb == sdb_term) return t.olap;
  for (const auto& t : OperatorTerms())
    if (t.sdb == sdb_term) return t.olap;
  return Status::NotFound("no OLAP correspondence for SDB term '" + sdb_term +
                          "'");
}

}  // namespace statcube
