// Summary-table layout operators in the spirit of [OOM85] (paper §5.2):
// operators over the *presentation* of a statistical object as a 2-D table —
// "attribute split and attribute merge, which permit users to specify how
// the category attributes are organized on rows and columns, or in multiple
// tables".
//
// Layout2D is the layout state (which attributes label the rows, which the
// columns, in what nesting order); the operators rearrange it; Render()
// materializes it via the Figure 1/9 renderer. SplitByValue / MergeByValue
// are the multi-table operators: one "page" per category value (the
// "Employment in California" page of Figure 1) and its inverse.

#ifndef STATCUBE_CORE_LAYOUT_H_
#define STATCUBE_CORE_LAYOUT_H_

#include <map>
#include <string>
#include <vector>

#include "statcube/common/status.h"
#include "statcube/core/statistical_object.h"
#include "statcube/core/table_render.h"

namespace statcube {

/// The row/column assignment of a statistical object's dimensions.
class Layout2D {
 public:
  /// Initial layout: `row_dims` then `col_dims`, which together must be
  /// exactly the object's dimensions.
  static Result<Layout2D> Create(const StatisticalObject& obj,
                                 std::vector<std::string> row_dims,
                                 std::vector<std::string> col_dims);

  const std::vector<std::string>& row_dims() const { return rows_; }
  const std::vector<std::string>& col_dims() const { return cols_; }

  /// Attribute split: moves `dim` from the columns to the rows (appended as
  /// the innermost row attribute).
  Status MoveToRows(const std::string& dim);

  /// Attribute merge: moves `dim` from the rows to the columns.
  Status MoveToColumns(const std::string& dim);

  /// Transposes the whole layout (rows <-> columns).
  void Transpose();

  /// Reorders the row nesting (must be a permutation of the current rows).
  Status ReorderRows(std::vector<std::string> order);

  /// Reorders the column nesting.
  Status ReorderColumns(std::vector<std::string> order);

  /// Renders the object under this layout.
  Result<std::string> Render(const StatisticalObject& obj,
                             const std::string& measure,
                             bool marginals = false) const;

 private:
  Layout2D(std::vector<std::string> rows, std::vector<std::string> cols)
      : rows_(std::move(rows)), cols_(std::move(cols)) {}

  static Status CheckPermutation(const std::vector<std::string>& current,
                                 const std::vector<std::string>& order);

  std::vector<std::string> rows_;
  std::vector<std::string> cols_;
};

/// Table split: one statistical object per value of `dim` (each with `dim`
/// removed) — the per-state "pages" the paper reads off Figure 1(iii).
Result<std::map<Value, StatisticalObject>> SplitByValue(
    const StatisticalObject& obj, const std::string& dim);

/// Table merge: reassembles the pages into one object with a new `dim`
/// whose value per page is the map key. All pages must share structure.
Result<StatisticalObject> MergeByValue(
    const std::map<Value, StatisticalObject>& pages, const std::string& dim);

}  // namespace statcube

#endif  // STATCUBE_CORE_LAYOUT_H_
