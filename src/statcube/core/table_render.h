// The traditional 2-D representation of a statistical object (paper §2.1,
// Figure 1) with optional marginals (§4.3, Figure 9).
//
// More than one dimension can be assigned to the rows and to the columns (an
// arbitrary order must be chosen — the limitation the graph model removes),
// and a classification hierarchy can be nested in the column headers the way
// Figure 1 nests professional class over profession. Marginals add "total"
// columns per nested parent, a "total" column over all column dimensions,
// a "total" row, and the grand total.

#ifndef STATCUBE_CORE_TABLE_RENDER_H_
#define STATCUBE_CORE_TABLE_RENDER_H_

#include <optional>
#include <string>
#include <vector>

#include "statcube/common/status.h"
#include "statcube/core/statistical_object.h"

namespace statcube {

/// Layout choices for Render2D.
struct Render2DOptions {
  std::vector<std::string> row_dims;  ///< dimensions on the rows, outer first
  std::vector<std::string> col_dims;  ///< dimensions on the columns
  std::string measure;                ///< measure to display
  /// Aggregation when several cells collapse into one (defaults to the
  /// measure's declared summary function).
  std::optional<AggFn> fn;
  /// Adds total columns/rows ("marginals", Figure 9).
  bool marginals = false;
  /// Name of a classification hierarchy on the *last* column dimension to
  /// nest one level of parents into the header (Figure 1's professional
  /// class over profession). Empty = no nesting. Non-strict hierarchies are
  /// rejected (a 2-D table cannot place a multi-parent value).
  std::string nest_hierarchy;
};

/// Renders the object as an ASCII 2-D statistical table.
Result<std::string> Render2D(const StatisticalObject& obj,
                             const Render2DOptions& options);

}  // namespace statcube

#endif  // STATCUBE_CORE_TABLE_RENDER_H_
