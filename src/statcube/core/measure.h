// Summary measures and their summarizability-relevant typing.
//
// The paper's §3.3.2 observes that whether a summary can be further summed
// depends on the *kind* of measure: accident counts add over months,
// populations do not. [LS97] formalizes this as the measure-type/dimension
// compatibility condition; we adopt its three-way typing:
//
//  * flow   (events per period: sales, accidents, births)
//           — additive over every dimension, including time;
//  * stock  (level at a point in time: population, inventory, water level)
//           — additive over non-temporal dimensions, NOT over time
//             (avg/min/max over time are fine);
//  * value-per-unit (rates: average income, unit price, exchange rate)
//           — never additive; only avg/min/max/count are meaningful.

#ifndef STATCUBE_CORE_MEASURE_H_
#define STATCUBE_CORE_MEASURE_H_

#include <string>

#include "statcube/relational/aggregate.h"

namespace statcube {

/// [LS97] measure typing.
enum class MeasureType { kFlow, kStock, kValuePerUnit };

/// Name of a measure type ("flow", "stock", "value-per-unit").
const char* MeasureTypeName(MeasureType t);

/// A summary attribute of a statistical object: name, unit (the paper notes
/// "quantity sold" carries dollars while "number employed" is unitless
/// because it came from a count), measure type, and the summary function the
/// object was built with.
struct SummaryMeasure {
  std::string name;
  std::string unit;  ///< "" for unitless counts
  MeasureType type = MeasureType::kFlow;
  AggFn default_fn = AggFn::kSum;
  /// For kAvg measures: the name of a sibling measure holding each cell's
  /// count, so that further summarization can form the weighted mean — the
  /// paper's §5.1 note that "to perform 'average' it is assumed that the
  /// 'sum' and 'count' of each cell are maintained". Empty = aggregate cells
  /// unweighted.
  std::string weight_measure;
};

/// Whether applying `fn` along a dimension is type-compatible per [LS97]:
/// `temporal_dimension` is true when the dimension being collapsed is time.
/// (Disjointness/completeness are checked separately by the
/// summarizability module; this is only the measure-type condition.)
bool FunctionCompatible(MeasureType type, AggFn fn, bool temporal_dimension);

}  // namespace statcube

#endif  // STATCUBE_CORE_MEASURE_H_
