#include "statcube/core/schema_graph.h"

#include <algorithm>
#include <functional>

#include "statcube/common/str_util.h"

namespace statcube {

namespace {

// Appends a dimension's C chain under `parent`: coarsest hierarchy level
// first, dimension leaf last. Uses the first hierarchy (the graph model
// draws one classification; alternates are still on the Dimension).
void AddDimensionChain(SchemaGraph* g, std::vector<SchemaGraphNode>* nodes,
                       int parent, const Dimension& dim) {
  (void)g;
  auto add = [nodes](GraphNodeKind kind, std::string label) {
    nodes->push_back({kind, std::move(label), {}});
    return static_cast<int>(nodes->size()) - 1;
  };
  if (dim.hierarchies().empty()) {
    int c = add(GraphNodeKind::kCategory, dim.name());
    (*nodes)[static_cast<size_t>(parent)].children.push_back(c);
    return;
  }
  const ClassificationHierarchy& h = dim.hierarchies().front();
  // levels() are finest first; draw coarsest first.
  int attach = parent;
  for (size_t i = h.num_levels(); i-- > 0;) {
    int c = add(GraphNodeKind::kCategory, h.levels()[i]);
    (*nodes)[static_cast<size_t>(attach)].children.push_back(c);
    attach = c;
  }
}

}  // namespace

SchemaGraph SchemaGraph::FromObject(const StatisticalObject& obj) {
  SchemaGraph g;
  std::vector<std::string> mnames;
  for (const auto& m : obj.measures()) mnames.push_back(m.name);
  g.root_ = g.AddNode(GraphNodeKind::kSummary, Join(mnames, ", "));
  int x = g.AddNode(GraphNodeKind::kCross, "X");
  g.nodes_[static_cast<size_t>(g.root_)].children.push_back(x);
  for (const auto& d : obj.dimensions())
    AddDimensionChain(&g, &g.nodes_, x, d);
  return g;
}

Result<SchemaGraph> SchemaGraph::With2DLayout(
    const StatisticalObject& obj, const std::vector<std::string>& row_dims,
    const std::vector<std::string>& col_dims) {
  SchemaGraph g;
  std::vector<std::string> mnames;
  for (const auto& m : obj.measures()) mnames.push_back(m.name);
  g.root_ = g.AddNode(GraphNodeKind::kSummary, Join(mnames, ", "));
  int x = g.AddNode(GraphNodeKind::kCross, "X");
  g.nodes_[static_cast<size_t>(g.root_)].children.push_back(x);
  int rows = g.AddNode(GraphNodeKind::kCross, "rows");
  int cols = g.AddNode(GraphNodeKind::kCross, "columns");
  g.nodes_[static_cast<size_t>(x)].children = {cols, rows};
  for (const auto& dn : row_dims) {
    STATCUBE_ASSIGN_OR_RETURN(const Dimension* d, obj.DimensionNamed(dn));
    AddDimensionChain(&g, &g.nodes_, rows, *d);
  }
  for (const auto& dn : col_dims) {
    STATCUBE_ASSIGN_OR_RETURN(const Dimension* d, obj.DimensionNamed(dn));
    AddDimensionChain(&g, &g.nodes_, cols, *d);
  }
  return g;
}

Result<SchemaGraph> SchemaGraph::FromObjectWithValues(
    const StatisticalObject& obj, size_t max_values_per_level) {
  SchemaGraph g;
  std::vector<std::string> mnames;
  for (const auto& m : obj.measures()) mnames.push_back(m.name);
  g.root_ = g.AddNode(GraphNodeKind::kSummary, Join(mnames, ", "));
  int x = g.AddNode(GraphNodeKind::kCross, "X");
  g.nodes_[static_cast<size_t>(g.root_)].children.push_back(x);

  for (const auto& d : obj.dimensions()) {
    if (d.hierarchies().empty()) {
      if (d.values().size() > max_values_per_level)
        return Status::InvalidArgument(
            "dimension '" + d.name() + "' has " +
            std::to_string(d.values().size()) +
            " values; the Figure 3 instance graph cannot display it (the "
            "paper's screen-size complaint)");
      int c = g.AddNode(GraphNodeKind::kCategory, d.name());
      g.nodes_[static_cast<size_t>(x)].children.push_back(c);
      for (const Value& v : d.values()) {
        int vn = g.AddNode(GraphNodeKind::kCategory, v.ToString());
        g.nodes_[static_cast<size_t>(c)].children.push_back(vn);
      }
      continue;
    }
    const ClassificationHierarchy& h = d.hierarchies().front();
    for (size_t l = 0; l < h.num_levels(); ++l) {
      if (h.ValuesAt(l).size() > max_values_per_level)
        return Status::InvalidArgument(
            "level '" + h.levels()[l] + "' has " +
            std::to_string(h.ValuesAt(l).size()) +
            " values; the Figure 3 instance graph cannot display it");
    }
    // Attribute node for the coarsest level, then value nodes downward —
    // each intermediate value node playing the dual role the paper
    // criticizes.
    size_t top = h.num_levels() - 1;
    int attr = g.AddNode(GraphNodeKind::kCategory, h.levels()[top]);
    g.nodes_[static_cast<size_t>(x)].children.push_back(attr);
    // Recursive lambda: adds the value node for `v` at `level` and its
    // children one level down.
    std::function<int(size_t, const Value&)> add_value =
        [&](size_t level, const Value& v) -> int {
      int vn = g.AddNode(GraphNodeKind::kCategory, v.ToString());
      if (level > 0) {
        for (const Value& child : h.Children(level, v)) {
          int cn = add_value(level - 1, child);
          g.nodes_[static_cast<size_t>(vn)].children.push_back(cn);
        }
      }
      return vn;
    };
    for (const Value& v : h.ValuesAt(top)) {
      int vn = add_value(top, v);
      g.nodes_[static_cast<size_t>(attr)].children.push_back(vn);
    }
  }
  return g;
}

Status SchemaGraph::GroupDimensions(const std::string& group_label,
                                    const std::vector<std::string>& dim_labels) {
  // A dimension is addressed either by the label of the C node hanging off
  // the X-node (the coarsest classification level) or by the finest label of
  // that node's chain (the dimension itself).
  auto finest_label = [this](int node) {
    int cur = node;
    while (!nodes_[static_cast<size_t>(cur)].children.empty())
      cur = nodes_[static_cast<size_t>(cur)].children.front();
    return nodes_[static_cast<size_t>(cur)].label;
  };
  // Find, for each label, an X-node that has a matching child C chain.
  std::vector<std::pair<int, int>> found;  // (x node, child index)
  for (const auto& label : dim_labels) {
    bool ok = false;
    for (size_t n = 0; n < nodes_.size() && !ok; ++n) {
      if (nodes_[n].kind != GraphNodeKind::kCross) continue;
      for (size_t ci = 0; ci < nodes_[n].children.size(); ++ci) {
        int child = nodes_[n].children[ci];
        if (nodes_[static_cast<size_t>(child)].kind == GraphNodeKind::kCategory &&
            (nodes_[static_cast<size_t>(child)].label == label ||
             finest_label(child) == label)) {
          found.emplace_back(static_cast<int>(n), static_cast<int>(ci));
          ok = true;
          break;
        }
      }
    }
    if (!ok)
      return Status::NotFound("no dimension '" + label +
                              "' directly under an X-node");
  }
  // Create the group X-node under the first dimension's parent X.
  int parent_x = found.front().first;
  int group = AddNode(GraphNodeKind::kCross, group_label);
  // Move children (collect node ids first; indexes shift as we erase).
  std::vector<int> moved;
  for (const auto& [x, ci] : found)
    moved.push_back(nodes_[static_cast<size_t>(x)].children[static_cast<size_t>(ci)]);
  for (int m : moved) {
    for (auto& node : nodes_) {
      auto& ch = node.children;
      ch.erase(std::remove(ch.begin(), ch.end(), m), ch.end());
    }
    nodes_[static_cast<size_t>(group)].children.push_back(m);
  }
  nodes_[static_cast<size_t>(parent_x)].children.push_back(group);
  return Status::OK();
}

void SchemaGraph::Flatten() {
  // Repeatedly splice any X-node child of an X-node into its parent.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t n = 0; n < nodes_.size(); ++n) {
      if (nodes_[n].kind != GraphNodeKind::kCross) continue;
      for (size_t ci = 0; ci < nodes_[n].children.size(); ++ci) {
        int child = nodes_[n].children[ci];
        if (nodes_[static_cast<size_t>(child)].kind == GraphNodeKind::kCross) {
          auto grandchildren = nodes_[static_cast<size_t>(child)].children;
          auto& ch = nodes_[n].children;
          ch.erase(ch.begin() + static_cast<long>(ci));
          ch.insert(ch.end(), grandchildren.begin(), grandchildren.end());
          nodes_[static_cast<size_t>(child)].children.clear();
          changed = true;
          break;
        }
      }
      if (changed) break;
    }
  }
}

void SchemaGraph::CollectDimensionLabels(int node, bool under_cross,
                                         std::vector<std::string>* out) const {
  const SchemaGraphNode& n = nodes_[static_cast<size_t>(node)];
  if (n.kind == GraphNodeKind::kCategory) {
    if (under_cross) {
      // The dimension of the cross product is the *finest* level of this C
      // chain: walk to the chain's deepest C node.
      int cur = node;
      while (!nodes_[static_cast<size_t>(cur)].children.empty())
        cur = nodes_[static_cast<size_t>(cur)].children.front();
      out->push_back(nodes_[static_cast<size_t>(cur)].label);
    }
    return;
  }
  for (int c : n.children)
    CollectDimensionLabels(c, n.kind == GraphNodeKind::kCross, out);
}

std::vector<std::string> SchemaGraph::DimensionLabels() const {
  std::vector<std::string> out;
  if (root_ >= 0) CollectDimensionLabels(root_, false, &out);
  std::sort(out.begin(), out.end());
  return out;
}

size_t SchemaGraph::CrossNodeCount() const {
  size_t n = 0;
  // Count only X-nodes still reachable from the root (Flatten orphans some).
  std::vector<int> stack = {root_};
  std::vector<bool> seen(nodes_.size(), false);
  while (!stack.empty()) {
    int cur = stack.back();
    stack.pop_back();
    if (cur < 0 || seen[static_cast<size_t>(cur)]) continue;
    seen[static_cast<size_t>(cur)] = true;
    if (nodes_[static_cast<size_t>(cur)].kind == GraphNodeKind::kCross) ++n;
    for (int c : nodes_[static_cast<size_t>(cur)].children) stack.push_back(c);
  }
  return n;
}

std::string SchemaGraph::ToDot() const {
  std::string out = "digraph schema {\n";
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<int> stack = {root_};
  while (!stack.empty()) {
    int cur = stack.back();
    stack.pop_back();
    if (cur < 0 || seen[static_cast<size_t>(cur)]) continue;
    seen[static_cast<size_t>(cur)] = true;
    const SchemaGraphNode& n = nodes_[static_cast<size_t>(cur)];
    const char* shape = n.kind == GraphNodeKind::kSummary  ? "box"
                        : n.kind == GraphNodeKind::kCross ? "diamond"
                                                          : "ellipse";
    out += "  n" + std::to_string(cur) + " [shape=" + shape + ", label=\"" +
           n.label + "\"];\n";
    for (int c : n.children) {
      out += "  n" + std::to_string(cur) + " -> n" + std::to_string(c) + ";\n";
      stack.push_back(c);
    }
  }
  out += "}\n";
  return out;
}

}  // namespace statcube
