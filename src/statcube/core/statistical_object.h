// The Statistical Object — the data type the paper's conclusion argues
// database systems should support natively. Following STORM [RS90] (§4.1),
// an object is: one or more summary measures, a summary function per
// measure, a set of dimensions (category attributes), and zero or more
// classification hierarchies per dimension. A "complex statistical object"
// (§2.2) is simply one with several measures over the same dimensions.
//
// The object carries its macro-data as a table with one column per
// dimension (leaf category values) and one column per measure — the
// canonical relational representation of Figure 10, but *with* the
// category/summary semantics the paper says the bare relational model
// lacks. The OLAP layer (statcube/olap) evaluates S-operators and
// slice/dice/roll-up against this object via pluggable physical backends.

#ifndef STATCUBE_CORE_STATISTICAL_OBJECT_H_
#define STATCUBE_CORE_STATISTICAL_OBJECT_H_

#include <string>
#include <vector>

#include "statcube/common/epoch.h"
#include "statcube/common/status.h"
#include "statcube/common/value.h"
#include "statcube/core/dimension.h"
#include "statcube/core/measure.h"
#include "statcube/relational/table.h"

namespace statcube {

/// A multidimensional summary dataset with explicit semantics.
class StatisticalObject {
 public:
  StatisticalObject() = default;
  explicit StatisticalObject(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Adds a dimension (before any cells).
  Status AddDimension(Dimension dim);

  /// Adds a summary measure (before any cells).
  Status AddMeasure(SummaryMeasure measure);

  const std::vector<Dimension>& dimensions() const { return dims_; }
  /// Mutable handle; conservatively bumps the cache epoch (hierarchy edits
  /// change roll-up results, so cached answers must stop matching).
  std::vector<Dimension>& mutable_dimensions() {
    DataEpochs::Global().Bump(name_);
    return dims_;
  }
  const std::vector<SummaryMeasure>& measures() const { return measures_; }

  /// Looks up a dimension by name.
  Result<const Dimension*> DimensionNamed(const std::string& name) const;
  Result<Dimension*> MutableDimensionNamed(const std::string& name);

  /// Looks up a measure by name.
  Result<const SummaryMeasure*> MeasureNamed(const std::string& name) const;

  /// Index of a dimension by name.
  Result<size_t> DimensionIndex(const std::string& name) const;

  /// Appends one cell: `dim_values` in dimension order, `measure_values` in
  /// measure order. Leaf category values are registered on their
  /// dimensions automatically.
  Status AddCell(const Row& dim_values, const Row& measure_values);

  /// The macro-data: dimension columns then measure columns.
  const Table& data() const { return data_; }
  /// Mutable handle; conservatively bumps the cache epoch (any direct edit
  /// of the macro-data invalidates cached query results).
  Table& mutable_data() {
    DataEpochs::Global().Bump(name_);
    return data_;
  }

  /// Builds a statistical object directly from a relational table —
  /// `dim_columns` become dimensions (kCategorical unless listed in
  /// `temporal_columns`), `measures` name existing numeric columns.
  static Result<StatisticalObject> FromTable(
      const Table& table, const std::vector<std::string>& dim_columns,
      const std::vector<SummaryMeasure>& measures,
      const std::vector<std::string>& temporal_columns = {});

  /// Renders the conceptual structure in the style of the paper's §2
  /// summaries:
  ///   Summary measure: employment (sum, flow)
  ///   Dimensions: sex, year, profession
  ///   Classification hierarchy: professional class --> profession
  std::string DescribeStructure() const;

 private:
  void RebuildSchema();

  std::string name_;
  std::vector<Dimension> dims_;
  std::vector<SummaryMeasure> measures_;
  Table data_;
};

}  // namespace statcube

#endif  // STATCUBE_CORE_STATISTICAL_OBJECT_H_
