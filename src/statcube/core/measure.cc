#include "statcube/core/measure.h"

namespace statcube {

const char* MeasureTypeName(MeasureType t) {
  switch (t) {
    case MeasureType::kFlow:
      return "flow";
    case MeasureType::kStock:
      return "stock";
    case MeasureType::kValuePerUnit:
      return "value-per-unit";
  }
  return "?";
}

bool FunctionCompatible(MeasureType type, AggFn fn, bool temporal_dimension) {
  switch (fn) {
    case AggFn::kCount:
    case AggFn::kCountAll:
    case AggFn::kMin:
    case AggFn::kMax:
    case AggFn::kAvg:
    case AggFn::kVariance:
    case AggFn::kStdDev:
      // Order statistics, counts and means are meaningful for every measure
      // type along every dimension.
      return true;
    case AggFn::kSum:
      switch (type) {
        case MeasureType::kFlow:
          return true;
        case MeasureType::kStock:
          // "it is meaningless to add populations over time" (§3.3.2)
          return !temporal_dimension;
        case MeasureType::kValuePerUnit:
          return false;
      }
  }
  return false;
}

}  // namespace statcube
