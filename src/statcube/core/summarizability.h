// Summarizability checking (paper §3.3.2, §4.2; [LS97]).
//
// A roll-up is summarizable only when three independent conditions hold:
//
//  1. Disjointness — the classification step is strict. Non-strict steps
//     (physicians with several specialties, lung cancer under two disease
//     categories) double-count additive aggregates.
//  2. Completeness — the children exhaust the parent *with respect to the
//     measure*, and every child present in the data maps to some parent.
//     Cities do not exhaust a state's population (villages, farms); they may
//     exhaust its museums. Exhaustiveness is a semantic declaration
//     (ClassificationHierarchy::DeclareComplete); the child->parent mapping
//     coverage is checked mechanically.
//  3. Type compatibility — the summary function suits the measure type and
//     the dimension being collapsed: flows add over anything, stocks do not
//     add over time, value-per-unit measures never add (measure.h).
//
// The checker reports *all* violations, not just the first, so callers can
// present them to a user the way the paper's examples do.

#ifndef STATCUBE_CORE_SUMMARIZABILITY_H_
#define STATCUBE_CORE_SUMMARIZABILITY_H_

#include <string>
#include <vector>

#include "statcube/common/status.h"
#include "statcube/core/statistical_object.h"

namespace statcube {

/// Outcome of a summarizability check.
struct SummarizabilityReport {
  bool summarizable = true;
  std::vector<std::string> violations;

  /// Folds in a violation.
  void AddViolation(std::string v) {
    summarizable = false;
    violations.push_back(std::move(v));
  }

  /// OK, or kNotSummarizable with all violations joined.
  Status ToStatus() const;
};

/// Checks rolling the dimension `dim_name` up along `hierarchy_name` from
/// `from_level` to `to_level` (level indexes in that hierarchy, finest = 0),
/// aggregating `measure_name` with `fn`.
Result<SummarizabilityReport> CheckRollup(const StatisticalObject& obj,
                                          const std::string& dim_name,
                                          const std::string& hierarchy_name,
                                          size_t from_level, size_t to_level,
                                          const std::string& measure_name,
                                          AggFn fn);

/// Checks summarizing a dimension away entirely (the S-project of [MRS92]):
/// only the measure-type condition applies since no classification step is
/// involved.
Result<SummarizabilityReport> CheckProjectOut(const StatisticalObject& obj,
                                              const std::string& dim_name,
                                              const std::string& measure_name,
                                              AggFn fn);

}  // namespace statcube

#endif  // STATCUBE_CORE_SUMMARIZABILITY_H_
