#include "statcube/core/classification.h"

#include <algorithm>
#include <set>

namespace statcube {

void ClassificationHierarchy::EnsureLevelStorage() const {
  size_t n = levels_.size();
  if (level_values_.size() < n) level_values_.resize(n);
  if (value_index_.size() < n) value_index_.resize(n);
  if (parents_.size() < n) parents_.resize(n);
  if (complete_.size() < n) complete_.resize(n);
  if (props_.size() < n) props_.resize(n);
}

Status ClassificationHierarchy::CheckLevel(size_t level) const {
  if (level >= levels_.size()) {
    return Status::OutOfRange("level " + std::to_string(level) +
                              " out of range for hierarchy '" + name_ +
                              "' with " + std::to_string(levels_.size()) +
                              " levels");
  }
  EnsureLevelStorage();
  return Status::OK();
}

Result<size_t> ClassificationHierarchy::LevelIndex(
    const std::string& level_name) const {
  for (size_t i = 0; i < levels_.size(); ++i)
    if (levels_[i] == level_name) return i;
  return Status::NotFound("hierarchy '" + name_ + "' has no level '" +
                          level_name + "'");
}

Status ClassificationHierarchy::AddValue(size_t level, const Value& v) {
  STATCUBE_RETURN_NOT_OK(CheckLevel(level));
  auto& idx = value_index_[level];
  if (idx.count(v)) return Status::OK();
  idx.emplace(v, level_values_[level].size());
  level_values_[level].push_back(v);
  return Status::OK();
}

Status ClassificationHierarchy::Link(size_t child_level, const Value& child,
                                     const Value& parent) {
  STATCUBE_RETURN_NOT_OK(CheckLevel(child_level));
  if (child_level + 1 >= levels_.size()) {
    return Status::OutOfRange("level " + std::to_string(child_level) +
                              " is the top of hierarchy '" + name_ + "'");
  }
  STATCUBE_RETURN_NOT_OK(AddValue(child_level, child));
  STATCUBE_RETURN_NOT_OK(AddValue(child_level + 1, parent));
  auto& ps = parents_[child_level][child];
  if (std::find(ps.begin(), ps.end(), parent) == ps.end())
    ps.push_back(parent);
  return Status::OK();
}

std::vector<Value> ClassificationHierarchy::Parents(size_t level,
                                                    const Value& v) const {
  if (!CheckLevel(level).ok() || level + 1 >= levels_.size()) return {};
  auto it = parents_[level].find(v);
  return it == parents_[level].end() ? std::vector<Value>{} : it->second;
}

std::vector<Value> ClassificationHierarchy::Children(size_t level,
                                                     const Value& v) const {
  if (!CheckLevel(level).ok() || level == 0) return {};
  std::vector<Value> out;
  for (const auto& [child, ps] : parents_[level - 1]) {
    if (std::find(ps.begin(), ps.end(), v) != ps.end()) out.push_back(child);
  }
  return out;
}

Result<std::vector<Value>> ClassificationHierarchy::Ancestors(
    size_t level, const Value& v, size_t target_level) const {
  STATCUBE_RETURN_NOT_OK(CheckLevel(level));
  STATCUBE_RETURN_NOT_OK(CheckLevel(target_level));
  if (target_level < level) {
    return Status::InvalidArgument(
        "Ancestors: target level below starting level");
  }
  std::vector<Value> frontier = {v};
  for (size_t l = level; l < target_level; ++l) {
    std::set<Value> next;
    for (const Value& f : frontier)
      for (const Value& p : Parents(l, f)) next.insert(p);
    frontier.assign(next.begin(), next.end());
  }
  return frontier;
}

Result<std::vector<Value>> ClassificationHierarchy::LeafDescendants(
    size_t level, const Value& v) const {
  STATCUBE_RETURN_NOT_OK(CheckLevel(level));
  std::vector<Value> frontier = {v};
  for (size_t l = level; l > 0; --l) {
    std::set<Value> next;
    for (const Value& f : frontier)
      for (const Value& c : Children(l, f)) next.insert(c);
    frontier.assign(next.begin(), next.end());
  }
  return frontier;
}

bool ClassificationHierarchy::IsStrictAt(size_t child_level) const {
  if (!CheckLevel(child_level).ok()) return true;
  if (child_level + 1 >= levels_.size()) return true;
  for (const auto& [child, ps] : parents_[child_level])
    if (ps.size() > 1) return false;
  return true;
}

bool ClassificationHierarchy::IsStrict() const {
  for (size_t l = 0; l + 1 < levels_.size(); ++l)
    if (!IsStrictAt(l)) return false;
  return true;
}

bool ClassificationHierarchy::IsCoveringAt(size_t child_level) const {
  if (!CheckLevel(child_level).ok()) return true;
  if (child_level + 1 >= levels_.size()) return true;
  for (const Value& v : level_values_[child_level]) {
    auto it = parents_[child_level].find(v);
    if (it == parents_[child_level].end() || it->second.empty()) return false;
  }
  return true;
}

std::vector<Value> ClassificationHierarchy::MultiParentValues(
    size_t child_level) const {
  std::vector<Value> out;
  if (!CheckLevel(child_level).ok() || child_level + 1 >= levels_.size())
    return out;
  for (const auto& [child, ps] : parents_[child_level])
    if (ps.size() > 1) out.push_back(child);
  return out;
}

void ClassificationHierarchy::DeclareComplete(size_t child_level,
                                              const std::string& measure_name,
                                              bool complete) {
  if (!CheckLevel(child_level).ok()) return;
  complete_[child_level][measure_name] = complete;
}

bool ClassificationHierarchy::IsDeclaredComplete(
    size_t child_level, const std::string& measure_name) const {
  if (!CheckLevel(child_level).ok()) return false;
  auto it = complete_[child_level].find(measure_name);
  return it != complete_[child_level].end() && it->second;
}

Result<std::vector<Value>> ClassificationHierarchy::QualifiedIdentity(
    size_t level, const Value& v) const {
  STATCUBE_RETURN_NOT_OK(CheckLevel(level));
  std::vector<Value> path = {v};
  Value cur = v;
  for (size_t l = level; l + 1 < levels_.size(); ++l) {
    std::vector<Value> ps = Parents(l, cur);
    if (ps.empty()) break;
    if (ps.size() > 1) {
      return Status::InvalidArgument(
          "qualified identity undefined: '" + cur.ToString() +
          "' has multiple parents in non-strict hierarchy '" + name_ + "'");
    }
    cur = ps.front();
    path.push_back(cur);
  }
  return path;
}

Status ClassificationHierarchy::SetProperty(size_t level, const Value& v,
                                            const std::string& key,
                                            Value property) {
  STATCUBE_RETURN_NOT_OK(CheckLevel(level));
  STATCUBE_RETURN_NOT_OK(AddValue(level, v));
  props_[level][v][key] = std::move(property);
  return Status::OK();
}

Result<Value> ClassificationHierarchy::GetProperty(size_t level,
                                                   const Value& v,
                                                   const std::string& key) const {
  STATCUBE_RETURN_NOT_OK(CheckLevel(level));
  auto vit = props_[level].find(v);
  if (vit == props_[level].end())
    return Status::NotFound("no properties on value " + v.ToString());
  auto pit = vit->second.find(key);
  if (pit == vit->second.end())
    return Status::NotFound("no property '" + key + "' on value " +
                            v.ToString());
  return pit->second;
}

std::vector<Value> ClassificationHierarchy::ValuesWithProperty(
    size_t level, const std::string& key, const Value& want) const {
  std::vector<Value> out;
  if (!CheckLevel(level).ok()) return out;
  for (const Value& v : level_values_[level]) {
    auto r = GetProperty(level, v, key);
    if (r.ok() && *r == want) out.push_back(v);
  }
  return out;
}

}  // namespace statcube
