// The OLAP <-> Statistical Database terminology correspondence of the
// paper's Figures 12 (structures) and 14 (operators), as a queryable map —
// the library speaks both vocabularies.

#ifndef STATCUBE_CORE_TERMINOLOGY_H_
#define STATCUBE_CORE_TERMINOLOGY_H_

#include <string>
#include <vector>

#include "statcube/common/status.h"

namespace statcube {

/// One correspondence row.
struct TermPair {
  std::string olap;
  std::string sdb;
};

/// Figure 12: structural terms (dimension <-> category attribute, ...).
const std::vector<TermPair>& StructuralTerms();

/// Figure 14: operator terms (slice <-> S-projection, ...).
const std::vector<TermPair>& OperatorTerms();

/// SDB term for an OLAP term, searching both tables (case-sensitive).
Result<std::string> SdbTermFor(const std::string& olap_term);

/// OLAP term for an SDB term, searching both tables.
Result<std::string> OlapTermFor(const std::string& sdb_term);

}  // namespace statcube

#endif  // STATCUBE_CORE_TERMINOLOGY_H_
