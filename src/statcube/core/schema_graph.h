// The graph model of statistical objects (paper §4.1, Figures 3–7).
//
// Three node kinds: S (summary attribute), X (cross product), C (category
// attribute). The schema graph of Figure 4 is S -> X -> one C chain per
// dimension, each chain running coarsest to finest category attribute so
// the classification hierarchy is explicit and cannot be confused with a
// dimension.
//
// X-nodes can be nested to group dimensions into semantic "subject" groups
// (Figure 5: an X-node "socio-economic categories" holding sex/race/age) —
// and Figure 6 observes that nested X-nodes are mathematically equivalent to
// a flat cross product, which `Flatten` implements and a test verifies.
// Figure 7 captures a physical 2-D layout with X-nodes named "rows" and
// "columns".

#ifndef STATCUBE_CORE_SCHEMA_GRAPH_H_
#define STATCUBE_CORE_SCHEMA_GRAPH_H_

#include <string>
#include <vector>

#include "statcube/common/status.h"
#include "statcube/core/statistical_object.h"

namespace statcube {

/// Node kinds of the STORM graph model.
enum class GraphNodeKind { kSummary, kCross, kCategory };

/// One node of a schema graph.
struct SchemaGraphNode {
  GraphNodeKind kind;
  std::string label;
  std::vector<int> children;  ///< indexes into SchemaGraph::nodes()
};

/// A statistical-object schema as an S/X/C node graph.
class SchemaGraph {
 public:
  /// Builds the Figure 4 graph: S(measure names) -> X -> per-dimension C
  /// chains (coarsest classification level first, leaf level last; a
  /// dimension with no hierarchy contributes a single C node).
  static SchemaGraph FromObject(const StatisticalObject& obj);

  /// Builds the Figure 7 graph: the X-node splits into X("rows") and
  /// X("columns") holding the respective dimension C chains, capturing a
  /// legacy 2-D layout.
  static Result<SchemaGraph> With2DLayout(
      const StatisticalObject& obj, const std::vector<std::string>& row_dims,
      const std::vector<std::string>& col_dims);

  /// Builds the Figure 3 *instance* graph — category values as C-nodes, the
  /// earlier model whose flaws §4.1 dissects: intermediate nodes play two
  /// roles (the node "engineer" is at once a professional-class value and
  /// the label of the professions beneath it), and large category sets do
  /// not fit a screen. The latter complaint is made concrete: building
  /// fails with InvalidArgument when any level holds more than
  /// `max_values_per_level` values.
  static Result<SchemaGraph> FromObjectWithValues(
      const StatisticalObject& obj, size_t max_values_per_level = 16);

  const std::vector<SchemaGraphNode>& nodes() const { return nodes_; }
  int root() const { return root_; }

  /// Moves the named dimensions under a new intermediate X-node with
  /// `group_label` (Figure 5). The dimensions must currently hang directly
  /// off an X-node.
  Status GroupDimensions(const std::string& group_label,
                         const std::vector<std::string>& dim_labels);

  /// Collapses nested X-nodes into their parent X (the Figure 6
  /// equivalence). After flattening, exactly one X-node remains.
  void Flatten();

  /// Labels of the C nodes reachable from X-nodes without passing through
  /// another C node — i.e. the dimensions of the cross product. Invariant
  /// under GroupDimensions/Flatten (the Figure 6 property).
  std::vector<std::string> DimensionLabels() const;

  /// Number of X nodes (1 when flat).
  size_t CrossNodeCount() const;

  /// Graphviz DOT rendering (S = box, X = diamond, C = ellipse).
  std::string ToDot() const;

 private:
  int AddNode(GraphNodeKind kind, std::string label) {
    nodes_.push_back({kind, std::move(label), {}});
    return static_cast<int>(nodes_.size()) - 1;
  }

  void CollectDimensionLabels(int node, bool under_cross,
                              std::vector<std::string>* out) const;

  std::vector<SchemaGraphNode> nodes_;
  int root_ = -1;
};

}  // namespace statcube

#endif  // STATCUBE_CORE_SCHEMA_GRAPH_H_
