#include "statcube/core/layout.h"

#include <algorithm>

namespace statcube {

Result<Layout2D> Layout2D::Create(const StatisticalObject& obj,
                                  std::vector<std::string> row_dims,
                                  std::vector<std::string> col_dims) {
  if (row_dims.empty() || col_dims.empty())
    return Status::InvalidArgument("both rows and columns need a dimension");
  std::vector<std::string> all = row_dims;
  all.insert(all.end(), col_dims.begin(), col_dims.end());
  if (all.size() != obj.dimensions().size())
    return Status::InvalidArgument(
        "layout must mention every dimension exactly once");
  for (const auto& d : obj.dimensions()) {
    if (std::count(all.begin(), all.end(), d.name()) != 1)
      return Status::InvalidArgument("dimension '" + d.name() +
                                     "' must appear exactly once");
  }
  return Layout2D(std::move(row_dims), std::move(col_dims));
}

Status Layout2D::MoveToRows(const std::string& dim) {
  auto it = std::find(cols_.begin(), cols_.end(), dim);
  if (it == cols_.end())
    return Status::NotFound("'" + dim + "' is not a column attribute");
  if (cols_.size() == 1)
    return Status::InvalidArgument("cannot empty the columns");
  cols_.erase(it);
  rows_.push_back(dim);
  return Status::OK();
}

Status Layout2D::MoveToColumns(const std::string& dim) {
  auto it = std::find(rows_.begin(), rows_.end(), dim);
  if (it == rows_.end())
    return Status::NotFound("'" + dim + "' is not a row attribute");
  if (rows_.size() == 1)
    return Status::InvalidArgument("cannot empty the rows");
  rows_.erase(it);
  cols_.push_back(dim);
  return Status::OK();
}

void Layout2D::Transpose() { std::swap(rows_, cols_); }

Status Layout2D::CheckPermutation(const std::vector<std::string>& current,
                                  const std::vector<std::string>& order) {
  if (order.size() != current.size())
    return Status::InvalidArgument("reorder must keep the same attributes");
  for (const auto& a : current)
    if (std::count(order.begin(), order.end(), a) != 1)
      return Status::InvalidArgument("reorder must be a permutation ('" + a +
                                     "' mismatched)");
  return Status::OK();
}

Status Layout2D::ReorderRows(std::vector<std::string> order) {
  STATCUBE_RETURN_NOT_OK(CheckPermutation(rows_, order));
  rows_ = std::move(order);
  return Status::OK();
}

Status Layout2D::ReorderColumns(std::vector<std::string> order) {
  STATCUBE_RETURN_NOT_OK(CheckPermutation(cols_, order));
  cols_ = std::move(order);
  return Status::OK();
}

Result<std::string> Layout2D::Render(const StatisticalObject& obj,
                                     const std::string& measure,
                                     bool marginals) const {
  Render2DOptions opt;
  opt.row_dims = rows_;
  opt.col_dims = cols_;
  opt.measure = measure;
  opt.marginals = marginals;
  return Render2D(obj, opt);
}

Result<std::map<Value, StatisticalObject>> SplitByValue(
    const StatisticalObject& obj, const std::string& dim) {
  STATCUBE_ASSIGN_OR_RETURN(size_t didx, obj.DimensionIndex(dim));
  size_t nd = obj.dimensions().size();
  if (nd < 2)
    return Status::InvalidArgument("cannot split a 1-dimensional object");

  std::map<Value, StatisticalObject> pages;
  for (const Row& r : obj.data().rows()) {
    const Value& key = r[didx];
    auto it = pages.find(key);
    if (it == pages.end()) {
      StatisticalObject page(obj.name() + "[" + dim + "=" + key.ToString() +
                             "]");
      for (size_t i = 0; i < nd; ++i) {
        if (i == didx) continue;
        Dimension d = obj.dimensions()[i];
        d.ClearValues();
        STATCUBE_RETURN_NOT_OK(page.AddDimension(std::move(d)));
      }
      for (const auto& m : obj.measures())
        STATCUBE_RETURN_NOT_OK(page.AddMeasure(m));
      it = pages.emplace(key, std::move(page)).first;
    }
    Row coord, mv;
    for (size_t i = 0; i < nd; ++i)
      if (i != didx) coord.push_back(r[i]);
    for (size_t i = nd; i < r.size(); ++i) mv.push_back(r[i]);
    STATCUBE_RETURN_NOT_OK(it->second.AddCell(coord, mv));
  }
  return pages;
}

Result<StatisticalObject> MergeByValue(
    const std::map<Value, StatisticalObject>& pages, const std::string& dim) {
  if (pages.empty()) return Status::InvalidArgument("no pages to merge");
  const StatisticalObject& first = pages.begin()->second;

  StatisticalObject out("merged_by_" + dim);
  STATCUBE_RETURN_NOT_OK(out.AddDimension(Dimension(dim)));
  for (const auto& d : first.dimensions()) {
    Dimension copy = d;
    copy.ClearValues();
    STATCUBE_RETURN_NOT_OK(out.AddDimension(std::move(copy)));
  }
  for (const auto& m : first.measures())
    STATCUBE_RETURN_NOT_OK(out.AddMeasure(m));

  for (const auto& [key, page] : pages) {
    // Structural compatibility.
    if (page.dimensions().size() != first.dimensions().size() ||
        page.measures().size() != first.measures().size())
      return Status::InvalidArgument("pages differ in structure");
    for (size_t i = 0; i < page.dimensions().size(); ++i)
      if (page.dimensions()[i].name() != first.dimensions()[i].name())
        return Status::InvalidArgument("pages differ in dimension order");
    size_t nd = page.dimensions().size();
    for (const Row& r : page.data().rows()) {
      Row coord = {key};
      for (size_t i = 0; i < nd; ++i) coord.push_back(r[i]);
      Row mv(r.begin() + long(nd), r.end());
      STATCUBE_RETURN_NOT_OK(out.AddCell(coord, mv));
    }
  }
  return out;
}

}  // namespace statcube
