// Catalog of micro-data, macro-data, and metadata (paper §3.3.3).
//
// The paper distinguishes the micro-data (original individual records), the
// macro-data (summarized statistical objects derived from them), and the
// metadata (the classification structures, "often managed by specialized
// systems"). §5.7 adds that when summaries are integrated across sources,
// "the 'metadata' of the methods used to perform integrated summaries need
// to be maintained as part of the database" — analysts' undocumented
// interpolations are exactly what goes wrong.
//
// The Catalog keeps all three: registered micro tables, registered
// statistical objects, derivation edges (what was summarized/rolled
// up/merged from what, by which method), and named method descriptions.

#ifndef STATCUBE_CORE_CATALOG_H_
#define STATCUBE_CORE_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "statcube/common/status.h"
#include "statcube/core/statistical_object.h"

namespace statcube {

/// How one dataset was derived from others.
struct Derivation {
  std::string target;                ///< derived dataset name
  std::vector<std::string> sources;  ///< source dataset names
  std::string method;  ///< e.g. "group-by sum", "uniform interpolation
                       ///< over age boundaries", "roll-up geo to state"
};

/// Registry of datasets and their provenance.
class Catalog {
 public:
  /// Registers micro-data under a unique name.
  Status RegisterMicroData(const std::string& name, Table table);

  /// Registers a statistical object (macro-data) under a unique name.
  Status RegisterObject(const std::string& name, StatisticalObject object);

  /// Records how `target` was derived. Every source and the target must be
  /// registered (micro or macro).
  Status RecordDerivation(Derivation derivation);

  /// Looks up registered datasets.
  Result<const Table*> MicroData(const std::string& name) const;
  Result<const StatisticalObject*> Object(const std::string& name) const;
  bool Contains(const std::string& name) const;

  /// Immediate provenance of a dataset (empty for base data).
  std::vector<Derivation> DerivationsOf(const std::string& name) const;

  /// Full lineage: every (transitively) contributing dataset name, with the
  /// methods along the way, in dependency order.
  Result<std::vector<Derivation>> Lineage(const std::string& name) const;

  /// Datasets (transitively) derived from `name` — what must be refreshed
  /// when a source changes.
  std::vector<std::string> Dependents(const std::string& name) const;

  /// All registered names, micro then macro, each sorted.
  std::vector<std::string> ListMicro() const;
  std::vector<std::string> ListObjects() const;

 private:
  std::map<std::string, Table> micro_;
  std::map<std::string, StatisticalObject> objects_;
  std::vector<Derivation> derivations_;
};

}  // namespace statcube

#endif  // STATCUBE_CORE_CATALOG_H_
