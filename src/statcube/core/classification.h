// Classification structures (paper §2, §4.2, Figure 8).
//
// A classification structure has a schema component — the ordered category
// attributes, finest first (e.g. profession -> professional_class) — and an
// instance component: which category value groups under which. The paper
// identifies the properties that must be captured explicitly because
// summarizability (§3.3.2, [LS97]) depends on them:
//
//  * strictness      — a child may belong to several parents (lung cancer is
//                      both a "cancer" and a "respiratory" disease; a
//                      physician has several specialties). Summing over a
//                      non-strict step double-counts.
//  * covering        — every child is mapped to some parent. An unmapped
//                      child silently drops out of a roll-up.
//  * completeness    — a *semantic* declaration: the children exhaust the
//                      parent with respect to a measure (cities do not
//                      exhaust a state's population, but they do exhaust its
//                      museums). Cannot be inferred from the data; declared.
//  * ID dependency   — child values are unique only within their parent
//                      (store numbers within a city, days within a month);
//                      the full identity is the concatenated path.
//
// Values may carry properties (the ISA example of Figure 8's middle
// structure: a VCR's brand or sound system), which selections can filter on.

#ifndef STATCUBE_CORE_CLASSIFICATION_H_
#define STATCUBE_CORE_CLASSIFICATION_H_

#include <map>
#include <string>
#include <vector>

#include "statcube/common/status.h"
#include "statcube/common/value.h"

namespace statcube {

/// A multi-level classification structure over one dimension.
class ClassificationHierarchy {
 public:
  ClassificationHierarchy() = default;
  /// `levels` are category attribute names, finest first:
  /// {"profession", "professional_class"} or {"day", "month", "year"}.
  ClassificationHierarchy(std::string name, std::vector<std::string> levels)
      : name_(std::move(name)), levels_(std::move(levels)) {}

  const std::string& name() const { return name_; }
  const std::vector<std::string>& levels() const { return levels_; }
  size_t num_levels() const { return levels_.size(); }

  /// Index of a level by category attribute name.
  Result<size_t> LevelIndex(const std::string& level_name) const;

  /// Registers a category value at a level (idempotent).
  Status AddValue(size_t level, const Value& v);

  /// Declares that `child` (at `child_level`) groups under `parent` (at
  /// `child_level + 1`). Both values are registered if new. Multiple calls
  /// with different parents make the structure non-strict.
  Status Link(size_t child_level, const Value& child, const Value& parent);

  /// All values at a level, in insertion order.
  const std::vector<Value>& ValuesAt(size_t level) const {
    return level_values_[level];
  }

  /// Parents of `v` one level up (empty if unmapped or at the top level).
  std::vector<Value> Parents(size_t level, const Value& v) const;

  /// Children of `v` one level down (empty at the leaf level).
  std::vector<Value> Children(size_t level, const Value& v) const;

  /// Ancestors of a leaf-or-mid value at `target_level` (deduplicated; more
  /// than one iff some step is non-strict).
  Result<std::vector<Value>> Ancestors(size_t level, const Value& v,
                                       size_t target_level) const;

  /// All leaf-level descendants of `v` at `level`.
  Result<std::vector<Value>> LeafDescendants(size_t level,
                                             const Value& v) const;

  // --- structural property checks (mechanical) ------------------------

  /// True if no value at `child_level` has more than one parent.
  bool IsStrictAt(size_t child_level) const;

  /// True if every roll-up step is strict.
  bool IsStrict() const;

  /// True if every value at `child_level` has at least one parent.
  bool IsCoveringAt(size_t child_level) const;

  /// Values at `child_level` with multiple parents (the summarizability
  /// culprits).
  std::vector<Value> MultiParentValues(size_t child_level) const;

  // --- semantic declarations (cannot be inferred) ----------------------

  /// Declares (or revokes) completeness of the `child_level ->
  /// child_level+1` grouping with respect to measure `measure_name`
  /// ("cities exhaust museums but not population").
  void DeclareComplete(size_t child_level, const std::string& measure_name,
                       bool complete = true);

  /// Whether completeness was declared for this step and measure.
  bool IsDeclaredComplete(size_t child_level,
                          const std::string& measure_name) const;

  /// Marks child values as ID-dependent on their parent (store numbers are
  /// only unique within a city).
  void set_id_dependent(bool v) { id_dependent_ = v; }
  bool id_dependent() const { return id_dependent_; }

  /// Fully qualified identity of an ID-dependent value: the path of values
  /// from `level` up to the root, finest first (e.g. {s#1, seattle}).
  Result<std::vector<Value>> QualifiedIdentity(size_t level,
                                               const Value& v) const;

  // --- value properties (the ISA enrichment of Figure 8) ---------------

  /// Attaches a named property to a category value.
  Status SetProperty(size_t level, const Value& v, const std::string& key,
                     Value property);

  /// Reads a property (NotFound if absent).
  Result<Value> GetProperty(size_t level, const Value& v,
                            const std::string& key) const;

  /// Values at `level` whose property `key` equals `want` — the "select only
  /// Sanyo products for summarization" query of §4.2.
  std::vector<Value> ValuesWithProperty(size_t level, const std::string& key,
                                        const Value& want) const;

 private:
  Status CheckLevel(size_t level) const;

  std::string name_;
  std::vector<std::string> levels_;
  // Per level: registered values in insertion order + fast membership.
  mutable std::vector<std::vector<Value>> level_values_;
  mutable std::vector<std::map<Value, size_t>> value_index_;
  // Per child level: child value -> parent values.
  mutable std::vector<std::map<Value, std::vector<Value>>> parents_;
  // Per child level: measure name -> declared complete.
  mutable std::vector<std::map<std::string, bool>> complete_;
  // Per level: value -> (property key -> property value).
  mutable std::vector<std::map<Value, std::map<std::string, Value>>> props_;
  bool id_dependent_ = false;

  void EnsureLevelStorage() const;
};

}  // namespace statcube

#endif  // STATCUBE_CORE_CLASSIFICATION_H_
