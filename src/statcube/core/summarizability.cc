#include "statcube/core/summarizability.h"

#include <set>

#include "statcube/common/str_util.h"

namespace statcube {

Status SummarizabilityReport::ToStatus() const {
  if (summarizable) return Status::OK();
  return Status::NotSummarizable(Join(violations, "; "));
}

namespace {

// Additive functions are the ones exposed to double counting and
// incompleteness; order statistics and counts of groups are not.
bool AdditiveSensitive(AggFn fn) {
  return fn == AggFn::kSum || fn == AggFn::kCount || fn == AggFn::kCountAll ||
         fn == AggFn::kAvg || fn == AggFn::kVariance || fn == AggFn::kStdDev;
}

}  // namespace

Result<SummarizabilityReport> CheckRollup(const StatisticalObject& obj,
                                          const std::string& dim_name,
                                          const std::string& hierarchy_name,
                                          size_t from_level, size_t to_level,
                                          const std::string& measure_name,
                                          AggFn fn) {
  STATCUBE_ASSIGN_OR_RETURN(const Dimension* dim, obj.DimensionNamed(dim_name));
  STATCUBE_ASSIGN_OR_RETURN(const SummaryMeasure* measure,
                            obj.MeasureNamed(measure_name));
  STATCUBE_ASSIGN_OR_RETURN(const ClassificationHierarchy* hier,
                            dim->HierarchyNamed(hierarchy_name));
  if (to_level <= from_level)
    return Status::InvalidArgument("roll-up target level must be above start");
  if (to_level >= hier->num_levels())
    return Status::OutOfRange("hierarchy '" + hierarchy_name + "' has only " +
                              std::to_string(hier->num_levels()) + " levels");

  SummarizabilityReport report;

  for (size_t step = from_level; step < to_level; ++step) {
    const std::string& child = hier->levels()[step];
    const std::string& parent = hier->levels()[step + 1];

    // (1) Disjointness.
    if (AdditiveSensitive(fn) && !hier->IsStrictAt(step)) {
      std::vector<std::string> culprits;
      for (const Value& v : hier->MultiParentValues(step))
        culprits.push_back(v.ToString());
      report.AddViolation(
          "step " + child + " -> " + parent + " is non-strict (" +
          Join(culprits, ", ") + " have multiple parents): " +
          AggFnName(fn) + " would double-count");
    }

    // (2a) Mapping coverage: every registered child has a parent.
    if (!hier->IsCoveringAt(step)) {
      report.AddViolation("step " + child + " -> " + parent +
                          " is not covering: unmapped " + child +
                          " values would be dropped from the roll-up");
    }

    // (2b) Semantic completeness w.r.t. the measure.
    if (AdditiveSensitive(fn) &&
        !hier->IsDeclaredComplete(step, measure_name)) {
      report.AddViolation(
          "step " + child + " -> " + parent +
          " is not declared complete for measure '" + measure_name +
          "' (the " + child + " values may not exhaust each " + parent +
          ", like cities vs. state population)");
    }
  }

  // (3) Measure-type condition. A roll-up along a temporal dimension's
  // hierarchy (day -> month) aggregates over time.
  if (!FunctionCompatible(measure->type, fn, dim->is_temporal())) {
    report.AddViolation("measure '" + measure_name + "' has type " +
                        MeasureTypeName(measure->type) + "; " + AggFnName(fn) +
                        " over " + (dim->is_temporal() ? "temporal " : "") +
                        "dimension '" + dim_name + "' is not meaningful");
  }

  return report;
}

Result<SummarizabilityReport> CheckProjectOut(const StatisticalObject& obj,
                                              const std::string& dim_name,
                                              const std::string& measure_name,
                                              AggFn fn) {
  STATCUBE_ASSIGN_OR_RETURN(const Dimension* dim, obj.DimensionNamed(dim_name));
  STATCUBE_ASSIGN_OR_RETURN(const SummaryMeasure* measure,
                            obj.MeasureNamed(measure_name));
  SummarizabilityReport report;
  if (!FunctionCompatible(measure->type, fn, dim->is_temporal())) {
    report.AddViolation("measure '" + measure_name + "' has type " +
                        MeasureTypeName(measure->type) + "; " + AggFnName(fn) +
                        " over " + (dim->is_temporal() ? "temporal " : "") +
                        "dimension '" + dim_name + "' is not meaningful");
  }
  return report;
}

}  // namespace statcube
