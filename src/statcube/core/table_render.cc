#include "statcube/core/table_render.h"

#include <algorithm>
#include <map>
#include <set>

#include "statcube/common/str_util.h"
#include "statcube/relational/aggregate.h"

namespace statcube {

namespace {

// Sorted distinct tuples of the given columns.
std::vector<Row> DistinctTuples(const Table& t,
                                const std::vector<size_t>& idx) {
  std::set<Row> s;
  Row key(idx.size());
  for (const Row& r : t.rows()) {
    for (size_t i = 0; i < idx.size(); ++i) key[i] = r[idx[i]];
    s.insert(key);
  }
  return std::vector<Row>(s.begin(), s.end());
}

std::string CellText(const Value& v) {
  if (v.is_null()) return ".";
  if (v.is_numeric()) {
    double d = v.AsDouble();
    if (d == static_cast<int64_t>(d)) return WithCommas(static_cast<int64_t>(d));
  }
  return v.ToString();
}

}  // namespace

Result<std::string> Render2D(const StatisticalObject& obj,
                             const Render2DOptions& options) {
  if (options.row_dims.empty() || options.col_dims.empty())
    return Status::InvalidArgument("Render2D needs row and column dimensions");
  STATCUBE_ASSIGN_OR_RETURN(const SummaryMeasure* measure,
                            obj.MeasureNamed(options.measure));
  AggFn fn = options.fn.value_or(measure->default_fn);

  // Working table: a copy of the macro-data, plus a derived parent column if
  // header nesting was requested.
  Table work = obj.data();
  std::string parent_col;
  if (!options.nest_hierarchy.empty()) {
    const std::string& leaf_dim = options.col_dims.back();
    STATCUBE_ASSIGN_OR_RETURN(const Dimension* dim,
                              obj.DimensionNamed(leaf_dim));
    STATCUBE_ASSIGN_OR_RETURN(const ClassificationHierarchy* hier,
                              dim->HierarchyNamed(options.nest_hierarchy));
    if (hier->num_levels() < 2)
      return Status::InvalidArgument("hierarchy '" + options.nest_hierarchy +
                                     "' has no parent level to nest");
    if (!hier->IsStrictAt(0))
      return Status::NotSummarizable(
          "hierarchy '" + options.nest_hierarchy +
          "' is non-strict; a 2-D layout cannot place multi-parent values");
    parent_col = hier->levels()[1];
    STATCUBE_ASSIGN_OR_RETURN(size_t leaf_idx,
                              work.schema().IndexOf(leaf_dim));
    Schema s2 = work.schema();
    s2.AddColumn(parent_col, ValueType::kString);
    Table work2(work.name(), s2);
    for (const Row& r : work.rows()) {
      std::vector<Value> ps = hier->Parents(0, r[leaf_idx]);
      Row r2 = r;
      r2.push_back(ps.empty() ? Value::Null() : ps.front());
      work2.AppendRowUnchecked(std::move(r2));
    }
    work = std::move(work2);
  }

  // Effective column key: (other col dims..., [parent], leaf col dim).
  std::vector<std::string> col_key = options.col_dims;
  if (!parent_col.empty())
    col_key.insert(col_key.end() - 1, parent_col);

  // Aggregated cells.
  std::vector<std::string> group_cols = options.row_dims;
  group_cols.insert(group_cols.end(), col_key.begin(), col_key.end());
  AggSpec spec{fn, options.measure, "v"};
  STATCUBE_ASSIGN_OR_RETURN(GroupedStates cells,
                            GroupByStates(work, group_cols, {spec}));

  auto lookup = [&](const Row& key) -> Value {
    auto it = cells.find(key);
    return it == cells.end() ? Value::Null() : it->second[0].Finalize(fn);
  };

  STATCUBE_ASSIGN_OR_RETURN(std::vector<size_t> row_idx,
                            work.schema().IndexesOf(options.row_dims));
  STATCUBE_ASSIGN_OR_RETURN(std::vector<size_t> col_idx,
                            work.schema().IndexesOf(col_key));
  std::vector<Row> row_tuples = DistinctTuples(work, row_idx);
  std::vector<Row> col_tuples = DistinctTuples(work, col_idx);

  // Marginal machinery: aggregated maps at coarser groupings.
  GroupedStates row_totals, parent_totals, col_totals;
  AggState grand;
  if (options.marginals) {
    STATCUBE_ASSIGN_OR_RETURN(row_totals,
                              GroupByStates(work, options.row_dims, {spec}));
    STATCUBE_ASSIGN_OR_RETURN(col_totals, GroupByStates(work, col_key, {spec}));
    if (!parent_col.empty()) {
      std::vector<std::string> pg = options.row_dims;
      for (size_t i = 0; i + 1 < col_key.size(); ++i) pg.push_back(col_key[i]);
      STATCUBE_ASSIGN_OR_RETURN(parent_totals, GroupByStates(work, pg, {spec}));
    }
    STATCUBE_ASSIGN_OR_RETURN(size_t midx,
                              work.schema().IndexOf(options.measure));
    for (const Row& r : work.rows()) grand.Add(r[midx]);
  }

  // --- Layout -----------------------------------------------------------
  // Column descriptors: each display column is either a data column (a col
  // tuple) or a marginal. Marginals are encoded as col tuples with ALL in
  // the summarized positions.
  struct DisplayCol {
    Row tuple;        // values for col_key positions; ALL = summarized
    bool parent_total = false;
    bool grand_col = false;  // total over all column dims
  };
  std::vector<DisplayCol> dcols;
  for (size_t i = 0; i < col_tuples.size(); ++i) {
    dcols.push_back({col_tuples[i], false, false});
    if (options.marginals && !parent_col.empty()) {
      // After the last leaf of each parent group, insert a parent total.
      bool last_of_parent =
          i + 1 == col_tuples.size() ||
          !std::equal(col_tuples[i].begin(), col_tuples[i].end() - 1,
                      col_tuples[i + 1].begin());
      if (last_of_parent) {
        Row t = col_tuples[i];
        t.back() = Value::All();
        dcols.push_back({t, true, false});
      }
    }
  }
  if (options.marginals) {
    Row t(col_key.size(), Value::All());
    dcols.push_back({t, false, true});
  }

  // Header lines: one per col_key position.
  size_t nheader = col_key.size();
  std::vector<std::vector<std::string>> header(nheader,
                                               std::vector<std::string>(dcols.size()));
  for (size_t c = 0; c < dcols.size(); ++c) {
    for (size_t l = 0; l < nheader; ++l) {
      const Value& v = dcols[c].tuple[l];
      if (dcols[c].grand_col) {
        header[l][c] = l == 0 ? "total" : "";
      } else if (dcols[c].parent_total && l == nheader - 1) {
        header[l][c] = "total";
      } else {
        header[l][c] = v.is_all() ? "" : v.ToString();
      }
      // Suppress repeated labels for spans (show only at group start).
      if (c > 0 && l < nheader - 1 && !dcols[c].grand_col &&
          !dcols[c - 1].grand_col &&
          dcols[c].tuple[l] == dcols[c - 1].tuple[l]) {
        header[l][c] = "";
      }
    }
  }

  // Row descriptors.
  struct DisplayRow {
    Row tuple;
    bool total = false;
  };
  std::vector<DisplayRow> drows;
  for (const Row& r : row_tuples) drows.push_back({r, false});
  if (options.marginals)
    drows.push_back({Row(options.row_dims.size(), Value::All()), true});

  // Cell text matrix.
  auto cell_value = [&](const DisplayRow& dr, const DisplayCol& dc) -> Value {
    if (dr.total && dc.grand_col) return grand.Finalize(fn);
    if (dr.total) {
      // Total row: aggregate over all row dims for this column key.
      // Compute from col_totals (grand per column) or parent totals.
      if (dc.parent_total || dc.grand_col) {
        // Sum the matching col_totals entries.
        AggState acc;
        for (const auto& [key, st] : col_totals) {
          bool match = true;
          for (size_t l = 0; l < key.size(); ++l) {
            if (!dc.tuple[l].is_all() && key[l] != dc.tuple[l]) {
              match = false;
              break;
            }
          }
          if (match) acc.Merge(st[0]);
        }
        return acc.Finalize(fn);
      }
      auto it = col_totals.find(dc.tuple);
      return it == col_totals.end() ? Value::Null()
                                    : it->second[0].Finalize(fn);
    }
    if (dc.grand_col) {
      auto it = row_totals.find(dr.tuple);
      return it == row_totals.end() ? Value::Null()
                                    : it->second[0].Finalize(fn);
    }
    if (dc.parent_total) {
      Row key = dr.tuple;
      for (size_t l = 0; l + 1 < dc.tuple.size(); ++l)
        key.push_back(dc.tuple[l]);
      auto it = parent_totals.find(key);
      return it == parent_totals.end() ? Value::Null()
                                       : it->second[0].Finalize(fn);
    }
    Row key = dr.tuple;
    key.insert(key.end(), dc.tuple.begin(), dc.tuple.end());
    return lookup(key);
  };

  // --- Render -------------------------------------------------------------
  size_t label_cols = options.row_dims.size();
  std::vector<size_t> label_width(label_cols);
  for (size_t i = 0; i < label_cols; ++i)
    label_width[i] = options.row_dims[i].size();
  for (const auto& dr : drows)
    for (size_t i = 0; i < label_cols; ++i)
      label_width[i] = std::max(label_width[i],
                                dr.total ? 5 : dr.tuple[i].ToString().size());

  std::vector<size_t> col_width(dcols.size(), 1);
  std::vector<std::vector<std::string>> body(drows.size(),
                                             std::vector<std::string>(dcols.size()));
  for (size_t r = 0; r < drows.size(); ++r)
    for (size_t c = 0; c < dcols.size(); ++c)
      body[r][c] = CellText(cell_value(drows[r], dcols[c]));
  for (size_t c = 0; c < dcols.size(); ++c) {
    for (size_t l = 0; l < nheader; ++l)
      col_width[c] = std::max(col_width[c], header[l][c].size());
    for (size_t r = 0; r < drows.size(); ++r)
      col_width[c] = std::max(col_width[c], body[r][c].size());
  }

  std::string out = obj.name() + " — " + options.measure + " (" +
                    AggFnName(fn) + ")\n";
  // Header lines.
  for (size_t l = 0; l < nheader; ++l) {
    std::string line;
    for (size_t i = 0; i < label_cols; ++i)
      line += PadRight(l == nheader - 1 ? options.row_dims[i] : "",
                       label_width[i]) += "  ";
    for (size_t c = 0; c < dcols.size(); ++c)
      line += PadLeft(header[l][c], col_width[c]) += "  ";
    out += line + "\n";
  }
  // Separator.
  {
    std::string line;
    for (size_t i = 0; i < label_cols; ++i)
      line += std::string(label_width[i], '-') + "  ";
    for (size_t c = 0; c < dcols.size(); ++c)
      line += std::string(col_width[c], '-') + "  ";
    out += line + "\n";
  }
  // Body.
  for (size_t r = 0; r < drows.size(); ++r) {
    std::string line;
    for (size_t i = 0; i < label_cols; ++i) {
      std::string label = drows[r].total
                              ? (i == 0 ? "total" : "")
                              : drows[r].tuple[i].ToString();
      // Suppress repeated outer row labels.
      if (!drows[r].total && r > 0 && !drows[r - 1].total) {
        bool same_prefix = true;
        for (size_t j = 0; j <= i && same_prefix; ++j)
          same_prefix = drows[r].tuple[j] == drows[r - 1].tuple[j];
        if (same_prefix) label = "";
      }
      line += PadRight(label, label_width[i]) += "  ";
    }
    for (size_t c = 0; c < dcols.size(); ++c)
      line += PadLeft(body[r][c], col_width[c]) += "  ";
    out += line + "\n";
  }
  return out;
}

}  // namespace statcube
