#include "statcube/core/dimension.h"

namespace statcube {

const char* DimensionKindName(DimensionKind k) {
  switch (k) {
    case DimensionKind::kCategorical:
      return "categorical";
    case DimensionKind::kTemporal:
      return "temporal";
    case DimensionKind::kSpatial:
      return "spatial";
  }
  return "?";
}

}  // namespace statcube
