#include "statcube/common/status.h"

namespace statcube {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotSummarizable:
      return "NotSummarizable";
    case StatusCode::kPrivacyRefused:
      return "PrivacyRefused";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace statcube
