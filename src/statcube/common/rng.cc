#include "statcube/common/rng.h"

#include <cmath>

namespace statcube {

double Rng::Gaussian(double mean, double stddev) {
  // Box–Muller; draw two uniforms per call.
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

uint64_t Rng::Zipf(uint64_t n, double theta) {
  if (n == 0) return 0;
  if (theta <= 0.0) return Uniform(n);
  // Gray et al. approximation: invert the continuous Zipf CDF.
  double alpha = 1.0 / (1.0 - theta);
  double zetan = 0.0;
  // For small n compute zeta exactly; for large n approximate with the
  // integral, which is accurate enough for workload skew purposes.
  if (n <= 10000) {
    for (uint64_t i = 1; i <= n; ++i) zetan += 1.0 / std::pow(double(i), theta);
  } else {
    zetan = (std::pow(double(n), 1.0 - theta) - 1.0) / (1.0 - theta) + 0.5772;
  }
  double eta = (1.0 - std::pow(2.0 / double(n), 1.0 - theta)) /
               (1.0 - (1.0 / std::pow(2.0, theta) + 0.5 / std::pow(2.0, theta)) / zetan);
  double u = NextDouble();
  double uz = u * zetan;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta)) return 1;
  uint64_t r = static_cast<uint64_t>(
      double(n) * std::pow(eta * u - eta + 1.0, alpha));
  return r >= n ? n - 1 : r;
}

}  // namespace statcube
