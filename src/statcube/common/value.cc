#include "statcube/common/value.h"

#include <cmath>
#include <cstdio>

namespace statcube {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
    case ValueType::kAll:
      return "ALL";
  }
  return "unknown";
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kAll:
      return "ALL";
    case ValueType::kInt64:
      return std::to_string(std::get<int64_t>(repr_));
    case ValueType::kDouble: {
      char buf[64];
      double d = std::get<double>(repr_);
      if (d == std::floor(d) && std::abs(d) < 1e15) {
        snprintf(buf, sizeof(buf), "%.1f", d);
      } else {
        snprintf(buf, sizeof(buf), "%.6g", d);
      }
      return buf;
    }
    case ValueType::kString:
      return std::get<std::string>(repr_);
  }
  return "?";
}

namespace {

// Rank in the cross-type total order: NULL < numeric < string < ALL.
int TypeRank(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return 0;
    case ValueType::kInt64:
    case ValueType::kDouble:
      return 1;
    case ValueType::kString:
      return 2;
    case ValueType::kAll:
      return 3;
  }
  return 4;
}

}  // namespace

int Value::Compare(const Value& a, const Value& b) {
  int ra = TypeRank(a.type()), rb = TypeRank(b.type());
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (ra) {
    case 0:  // both NULL
    case 3:  // both ALL
      return 0;
    case 1: {  // numeric: compare exactly when both int64, else as double
      if (a.type() == ValueType::kInt64 && b.type() == ValueType::kInt64) {
        int64_t x = a.AsInt64(), y = b.AsInt64();
        return x < y ? -1 : (x > y ? 1 : 0);
      }
      double x = a.AsDouble(), y = b.AsDouble();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    default: {  // string
      const std::string& x = a.AsString();
      const std::string& y = b.AsString();
      int c = x.compare(y);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
  }
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueType::kAll:
      return 0xa0761d6478bd642fULL;
    case ValueType::kInt64:
    case ValueType::kDouble: {
      // Hash int64 and integral doubles identically so that equal values
      // hash equally across representations.
      double d = AsDouble();
      if (d == std::floor(d) && std::abs(d) < 9.2e18) {
        int64_t i = static_cast<int64_t>(d);
        uint64_t x = static_cast<uint64_t>(i) * 0xff51afd7ed558ccdULL;
        x ^= x >> 33;
        return static_cast<size_t>(x);
      }
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(d));
      bits *= 0xc4ceb9fe1a85ec53ULL;
      bits ^= bits >> 33;
      return static_cast<size_t>(bits);
    }
    case ValueType::kString: {
      return std::hash<std::string>{}(AsString());
    }
  }
  return 0;
}

}  // namespace statcube
