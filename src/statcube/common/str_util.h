// Small string helpers shared by renderers and error messages.

#ifndef STATCUBE_COMMON_STR_UTIL_H_
#define STATCUBE_COMMON_STR_UTIL_H_

#include <string>
#include <vector>

namespace statcube {

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// Pads `s` on the right with spaces to at least `width` characters.
std::string PadRight(const std::string& s, size_t width);

/// Pads `s` on the left with spaces to at least `width` characters.
std::string PadLeft(const std::string& s, size_t width);

/// Formats an integer with thousands separators ("1,234,567").
std::string WithCommas(int64_t v);

}  // namespace statcube

#endif  // STATCUBE_COMMON_STR_UTIL_H_
