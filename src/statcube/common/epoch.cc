#include "statcube/common/epoch.h"

namespace statcube {

DataEpochs& DataEpochs::Global() {
  static DataEpochs* instance = new DataEpochs();
  return *instance;
}

uint64_t DataEpochs::Of(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = epochs_.find(name);
  return it == epochs_.end() ? 0 : it->second;
}

uint64_t DataEpochs::Bump(const std::string& name) {
  MutexLock lock(mu_);
  return ++epochs_[name];
}

void DataEpochs::Reset() {
  MutexLock lock(mu_);
  epochs_.clear();
}

}  // namespace statcube
