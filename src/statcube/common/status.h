// Status and Result<T>: exception-free error propagation in the style of
// Arrow / RocksDB. All fallible public APIs in statcube return one of these.

#ifndef STATCUBE_COMMON_STATUS_H_
#define STATCUBE_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace statcube {

/// Coarse error taxonomy. Keep this small: callers branch on "ok or not" far
/// more often than on the specific code.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kNotSummarizable,   ///< a summarization would violate summarizability
  kPrivacyRefused,    ///< privacy monitor refused to answer a query
  kUnimplemented,
  kInternal,
  kCancelled,          ///< query stopped by cooperative cancellation
  kDeadlineExceeded,   ///< query stopped by an expired deadline
};

/// Human-readable name of a status code (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Success-or-error value. Cheap to copy on the success path (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotSummarizable(std::string msg) {
    return Status(StatusCode::kNotSummarizable, std::move(msg));
  }
  static Status PrivacyRefused(std::string msg) {
    return Status(StatusCode::kPrivacyRefused, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// A value or an error. `ValueOrDie()` asserts success; use it only in tests
/// and examples, never in library code.
template <typename T>
class Result {
 public:
  /*implicit*/ Result(T value) : value_(std::move(value)) {}
  /*implicit*/ Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value, aborting with the error message on failure.
  T ValueOrDie() && {
    if (!ok()) {
      fprintf(stderr, "Result::ValueOrDie on error: %s\n",
              status_.ToString().c_str());
      abort();
    }
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status out of the enclosing function.
#define STATCUBE_RETURN_NOT_OK(expr)          \
  do {                                        \
    ::statcube::Status _st = (expr);          \
    if (!_st.ok()) return _st;                \
  } while (0)

/// Evaluates a Result expression, assigning its value to `lhs` or returning
/// the error. `lhs` must be a declaration or assignable expression.
#define STATCUBE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                   \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value();

#define STATCUBE_ASSIGN_OR_RETURN_CAT(a, b) a##b
#define STATCUBE_ASSIGN_OR_RETURN_NAME(a, b) STATCUBE_ASSIGN_OR_RETURN_CAT(a, b)

#define STATCUBE_ASSIGN_OR_RETURN(lhs, rexpr) \
  STATCUBE_ASSIGN_OR_RETURN_IMPL(             \
      STATCUBE_ASSIGN_OR_RETURN_NAME(_result_, __LINE__), lhs, rexpr)

}  // namespace statcube

#endif  // STATCUBE_COMMON_STATUS_H_
