/// \file
/// \brief Per-dataset epoch registry used to invalidate cached query results.
///
/// Every mutation of a statistical object's macro-data (AddCell, FromTable,
/// any grab of a mutable handle) bumps the epoch registered under the
/// object's name. Cache keys embed the epoch observed at key-build time, so
/// an entry computed against an older epoch can never be returned for a
/// query against newer data — stale entries simply stop matching and age out
/// of the LRU. This is the "invalidation via a per-table epoch" half of the
/// result cache (see cache/result_cache.h); the paper's §6.3 derivability
/// argument only holds while the base micro-data is unchanged.
///
/// This registry lives in common/ (not cache/) because it sits *below* both
/// of its clients in the layer DAG: src/statcube/core includes it to publish
/// mutations and src/statcube/cache (via query/cache_key.cc) includes it to
/// observe them. Hosting it in either client module would create a layering
/// cycle — statcube-analyze enforces the acyclic layer map in
/// tools/statcube_analyze/layers.json.

#ifndef STATCUBE_COMMON_EPOCH_H_
#define STATCUBE_COMMON_EPOCH_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "statcube/common/mutex.h"
#include "statcube/common/thread_annotations.h"

namespace statcube {

/// Thread-safe name → epoch map. Epochs start at 0 for never-mutated names
/// and only move forward.
class DataEpochs {
 public:
  /// The process-wide registry (statistical objects are keyed by name).
  static DataEpochs& Global();

  /// Current epoch of `name` (0 if never bumped).
  uint64_t Of(const std::string& name) const;

  /// Advances the epoch of `name`; returns the new value. Called by every
  /// mutating path of StatisticalObject.
  uint64_t Bump(const std::string& name);

  /// Drops all registered epochs (test isolation only — live caches keyed on
  /// old epochs keep matching after a reset, so production code never calls
  /// this).
  void Reset();

 private:
  mutable Mutex mu_;
  std::unordered_map<std::string, uint64_t> epochs_ STATCUBE_GUARDED_BY(mu_);
};

}  // namespace statcube

#endif  // STATCUBE_COMMON_EPOCH_H_
