/// \file
/// \brief Clang thread-safety annotation macros (no-ops on other compilers).
///
/// These macros attach Clang's `-Wthread-safety` capability analysis to the
/// concurrency-heavy classes in this repo (exec/task_scheduler, the result
/// cache, the obs serving layer, ...). The analysis proves *at compile time*
/// which mutex guards which field and that every access happens under the
/// right lock — turning the serial==parallel determinism contract and the
/// epoch-invalidation contract from test-time hopes (TSan) into build-time
/// guarantees. See DESIGN.md §8 and
/// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html.
///
/// Usage pattern (see common/mutex.h for the annotated mutex types):
///
/// \code
///   class Account {
///     statcube::Mutex mu_;
///     int64_t balance_ STATCUBE_GUARDED_BY(mu_);
///
///     void Deposit(int64_t n) {
///       statcube::MutexLock lock(mu_);
///       balance_ += n;  // OK: mu_ held
///     }
///     void Audit() STATCUBE_REQUIRES(mu_);  // caller must hold mu_
///   };
/// \endcode
///
/// On GCC (the default local toolchain) every macro expands to nothing, so
/// the annotations cost nothing and cannot break the tier-1 build; the CI
/// `thread-safety` job compiles the tree with clang++ `-Wthread-safety
/// -Werror` to enforce them.

#ifndef STATCUBE_COMMON_THREAD_ANNOTATIONS_H_
#define STATCUBE_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define STATCUBE_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef STATCUBE_THREAD_ANNOTATION_
#define STATCUBE_THREAD_ANNOTATION_(x)  // no-op outside clang
#endif

/// Declares a class to be a capability (a lock). Applied to statcube::Mutex.
#define STATCUBE_CAPABILITY(name) \
  STATCUBE_THREAD_ANNOTATION_(capability(name))

/// Declares an RAII class that acquires a capability in its constructor and
/// releases it in its destructor (statcube::MutexLock).
#define STATCUBE_SCOPED_CAPABILITY \
  STATCUBE_THREAD_ANNOTATION_(scoped_lockable)

/// The annotated field may only be read or written while holding `x`.
#define STATCUBE_GUARDED_BY(x) STATCUBE_THREAD_ANNOTATION_(guarded_by(x))

/// The annotated pointer field may be dereferenced only while holding `x`
/// (the pointer itself is unguarded).
#define STATCUBE_PT_GUARDED_BY(x) \
  STATCUBE_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Callers of the annotated function must hold `...` exclusively.
#define STATCUBE_REQUIRES(...) \
  STATCUBE_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Callers of the annotated function must hold `...` at least shared.
#define STATCUBE_REQUIRES_SHARED(...) \
  STATCUBE_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// The annotated function acquires `...` exclusively and does not release it.
#define STATCUBE_ACQUIRE(...) \
  STATCUBE_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// The annotated function acquires `...` shared and does not release it.
#define STATCUBE_ACQUIRE_SHARED(...) \
  STATCUBE_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// The annotated function releases `...` (held on entry, not on exit).
#define STATCUBE_RELEASE(...) \
  STATCUBE_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// The annotated function releases the shared capability `...`.
#define STATCUBE_RELEASE_SHARED(...) \
  STATCUBE_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// The annotated function tries to acquire `...`; the first argument is the
/// return value meaning success (e.g. STATCUBE_TRY_ACQUIRE(true)).
#define STATCUBE_TRY_ACQUIRE(...) \
  STATCUBE_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Callers must NOT hold `...` (the function acquires it itself; catches
/// self-deadlock at compile time).
#define STATCUBE_EXCLUDES(...) \
  STATCUBE_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// The annotated function asserts (at runtime) that `...` is held; the
/// analysis then treats it as held.
#define STATCUBE_ASSERT_CAPABILITY(...) \
  STATCUBE_THREAD_ANNOTATION_(assert_capability(__VA_ARGS__))

/// The annotated function returns a reference to the capability `x`.
#define STATCUBE_RETURN_CAPABILITY(x) \
  STATCUBE_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment explaining why the access is safe.
#define STATCUBE_NO_THREAD_SAFETY_ANALYSIS \
  STATCUBE_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // STATCUBE_COMMON_THREAD_ANNOTATIONS_H_
