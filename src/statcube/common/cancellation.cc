#include "statcube/common/cancellation.h"

namespace statcube {

Status StopStatus(StopReason reason, const char* what) {
  switch (reason) {
    case StopReason::kCancelled:
      return Status::Cancelled(std::string("query cancelled during ") + what);
    case StopReason::kDeadlineExceeded:
      return Status::DeadlineExceeded(std::string("deadline exceeded during ") +
                                      what);
    case StopReason::kNone:
      break;
  }
  return Status::Internal("StopStatus called with StopReason::kNone");
}

}  // namespace statcube
