/// \file
/// \brief Annotated mutex primitives: the capability types the Clang
/// thread-safety analysis reasons about.
///
/// `std::mutex` and `std::lock_guard` carry no capability annotations, so
/// code using them is invisible to `-Wthread-safety`. This header wraps them
/// in the thinnest possible annotated types:
///
///  * `statcube::Mutex` — a `std::mutex` declared as a capability. Fields it
///    guards are annotated `STATCUBE_GUARDED_BY(mu_)`.
///  * `statcube::MutexLock` — the RAII scoped acquisition
///    (`STATCUBE_SCOPED_CAPABILITY`), the drop-in replacement for
///    `std::lock_guard<std::mutex>` / `std::unique_lock<std::mutex>`.
///  * `statcube::CondVar` — a condition variable that waits directly on a
///    `Mutex` (via `std::condition_variable_any`), so waiting code keeps its
///    capability annotations instead of switching back to `std::unique_lock`.
///
/// All wrappers are header-only and compile to exactly the std calls; the
/// annotations are erased on non-clang compilers (thread_annotations.h).
///
/// Waiting idiom — predicates are re-checked by the caller's loop, never
/// passed into the wait (a lambda body is analyzed as a separate function
/// and would not know the lock is held):
///
/// \code
///   statcube::MutexLock lock(mu_);
///   while (!done_) cv_.Wait(mu_);   // done_ is STATCUBE_GUARDED_BY(mu_)
/// \endcode

#ifndef STATCUBE_COMMON_MUTEX_H_
#define STATCUBE_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "statcube/common/thread_annotations.h"

namespace statcube {

/// A `std::mutex` annotated as a thread-safety capability.
///
/// Also satisfies *BasicLockable* (lowercase `lock`/`unlock`), so
/// `statcube::CondVar` can wait on it directly.
class STATCUBE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  /// Blocks until the mutex is acquired.
  void Lock() STATCUBE_ACQUIRE() { mu_.lock(); }
  /// Releases the mutex (must be held by the calling thread).
  void Unlock() STATCUBE_RELEASE() { mu_.unlock(); }
  /// Acquires the mutex if it is free; returns true on success.
  bool TryLock() STATCUBE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// BasicLockable aliases so CondVar / generic code can use this type.
  void lock() STATCUBE_ACQUIRE() { mu_.lock(); }
  /// BasicLockable alias of Unlock().
  void unlock() STATCUBE_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// RAII scoped acquisition of a Mutex — the annotated replacement for
/// `std::lock_guard<std::mutex>`.
class STATCUBE_SCOPED_CAPABILITY MutexLock {
 public:
  /// Acquires `mu` for the lifetime of this object.
  explicit MutexLock(Mutex& mu) STATCUBE_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  /// Releases the mutex.
  ~MutexLock() STATCUBE_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable that waits directly on a `statcube::Mutex`, keeping
/// the capability visible to the analysis across the wait. Spurious wakeups
/// are possible (as with `std::condition_variable`): always re-check the
/// waited-for condition in a loop around `Wait`/`WaitFor`.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and reacquires `mu` before returning.
  /// The caller must hold `mu`; the analysis treats it as held throughout.
  void Wait(Mutex& mu) STATCUBE_REQUIRES(mu) { cv_.wait(mu); }

  /// Like Wait but returns (with `mu` reacquired) after at most `timeout`;
  /// returns false on timeout, true when notified.
  template <class Rep, class Period>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout)
      STATCUBE_REQUIRES(mu) {
    return cv_.wait_for(mu, timeout) == std::cv_status::no_timeout;
  }

  /// Wakes one waiter (if any).
  void NotifyOne() { cv_.notify_one(); }
  /// Wakes every waiter.
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace statcube

#endif  // STATCUBE_COMMON_MUTEX_H_
