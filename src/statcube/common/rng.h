// Deterministic pseudo-random number generator used by the workload
// generators, sampling module and perturbation-based privacy defenses.
// splitmix64 core: fast, reproducible across platforms, good enough
// statistical quality for synthetic data.

#ifndef STATCUBE_COMMON_RNG_H_
#define STATCUBE_COMMON_RNG_H_

#include <cstdint>
#include <cstddef>

namespace statcube {

/// Deterministic RNG. The same seed always yields the same stream, which
/// keeps tests and benchmarks reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Standard normal via Box–Muller (one value per call; no caching to keep
  /// the stream position deterministic per call count).
  double Gaussian(double mean = 0.0, double stddev = 1.0);

  /// Zipf-distributed rank in [0, n): rank r has probability proportional to
  /// 1/(r+1)^theta. Used for skewed category popularity in workloads.
  /// Rejection-free inverse-CDF over a precomputed table is overkill here;
  /// this uses the classic rejection method of Gray et al.
  uint64_t Zipf(uint64_t n, double theta);

 private:
  uint64_t state_;
};

}  // namespace statcube

#endif  // STATCUBE_COMMON_RNG_H_
