// Value: the dynamic scalar type flowing through the relational engine and
// the statistical-object layer. A category value is usually a string or an
// integer code; a summary measure is an integer count or a double.

#ifndef STATCUBE_COMMON_VALUE_H_
#define STATCUBE_COMMON_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <variant>
#include <vector>

namespace statcube {

/// Scalar type tags. `kNull` doubles as the SQL NULL and as the encoding of
/// an empty cell in a sparse multidimensional array.
enum class ValueType { kNull = 0, kInt64, kDouble, kString, kAll };

/// Name of a value type ("null", "int64", ...).
const char* ValueTypeName(ValueType t);

/// A dynamically typed scalar.
///
/// Besides the usual SQL scalars, Value has a distinguished `ALL`
/// pseudo-value, the reserved keyword value introduced by the data-cube
/// paper [GB+96] and discussed in the paper's §4.3/§5.4 (Figures 10 and 15):
/// a row whose category column holds ALL carries a summary over every
/// category value of that column. ALL compares equal only to ALL and sorts
/// after every ordinary value, so cube results group naturally.
class Value {
 public:
  /// Constructs NULL.
  Value() : repr_(NullRepr{}) {}
  /*implicit*/ Value(int64_t v) : repr_(v) {}
  /*implicit*/ Value(int v) : repr_(static_cast<int64_t>(v)) {}
  /*implicit*/ Value(double v) : repr_(v) {}
  /*implicit*/ Value(std::string v) : repr_(std::move(v)) {}
  /*implicit*/ Value(const char* v) : repr_(std::string(v)) {}

  /// The NULL value.
  static Value Null() { return Value(); }
  /// The ALL pseudo-value ("summary over every category value").
  static Value All() {
    Value v;
    v.repr_ = AllRepr{};
    return v;
  }

  ValueType type() const {
    switch (repr_.index()) {
      case 0:
        return ValueType::kNull;
      case 1:
        return ValueType::kInt64;
      case 2:
        return ValueType::kDouble;
      case 3:
        return ValueType::kString;
      default:
        return ValueType::kAll;
    }
  }

  bool is_null() const { return type() == ValueType::kNull; }
  bool is_all() const { return type() == ValueType::kAll; }

  int64_t AsInt64() const { return std::get<int64_t>(repr_); }
  double AsDouble() const {
    if (type() == ValueType::kInt64)
      return static_cast<double>(std::get<int64_t>(repr_));
    return std::get<double>(repr_);
  }
  const std::string& AsString() const { return std::get<std::string>(repr_); }

  /// True if the value is numeric (int64 or double).
  bool is_numeric() const {
    ValueType t = type();
    return t == ValueType::kInt64 || t == ValueType::kDouble;
  }

  /// Renders the value for display; NULL -> "NULL", ALL -> "ALL".
  std::string ToString() const;

  /// Total order across types: NULL < numbers (by numeric value) < strings
  /// (lexicographic) < ALL. Used for sorting and as the B+-tree key order.
  friend bool operator<(const Value& a, const Value& b) {
    return Compare(a, b) < 0;
  }
  friend bool operator==(const Value& a, const Value& b) {
    return Compare(a, b) == 0;
  }
  friend bool operator!=(const Value& a, const Value& b) {
    return Compare(a, b) != 0;
  }
  friend bool operator<=(const Value& a, const Value& b) {
    return Compare(a, b) <= 0;
  }
  friend bool operator>(const Value& a, const Value& b) {
    return Compare(a, b) > 0;
  }
  friend bool operator>=(const Value& a, const Value& b) {
    return Compare(a, b) >= 0;
  }

  /// Three-way comparison implementing the total order above. Int64 and
  /// double compare numerically against each other.
  static int Compare(const Value& a, const Value& b);

  /// Hash consistent with operator== (int64 and double hashing agree when
  /// they compare equal).
  size_t Hash() const;

 private:
  struct NullRepr {};
  struct AllRepr {};
  std::variant<NullRepr, int64_t, double, std::string, AllRepr> repr_;
};

/// A row of values: a tuple in the relational engine, or a coordinate vector
/// in the multidimensional layer.
using Row = std::vector<Value>;

/// Hash functor for rows (e.g. group-by keys).
struct RowHash {
  size_t operator()(const Row& row) const {
    size_t h = 0xcbf29ce484222325ULL;
    for (const Value& v : row) {
      h ^= v.Hash();
      h *= 0x100000001b3ULL;
    }
    return h;
  }
};

/// Equality functor for rows.
struct RowEq {
  bool operator()(const Row& a, const Row& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i)
      if (a[i] != b[i]) return false;
    return true;
  }
};

}  // namespace statcube

namespace std {
template <>
struct hash<statcube::Value> {
  size_t operator()(const statcube::Value& v) const { return v.Hash(); }
};
}  // namespace std

#endif  // STATCUBE_COMMON_VALUE_H_
