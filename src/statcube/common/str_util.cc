#include "statcube/common/str_util.h"

#include <cstdlib>

namespace statcube {

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string PadRight(const std::string& s, size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

std::string PadLeft(const std::string& s, size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string WithCommas(int64_t v) {
  bool neg = v < 0;
  uint64_t u = neg ? static_cast<uint64_t>(-(v + 1)) + 1 : static_cast<uint64_t>(v);
  std::string digits = std::to_string(u);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out += ',';
    out += *it;
    ++count;
  }
  if (neg) out += '-';
  return std::string(out.rbegin(), out.rend());
}

}  // namespace statcube
