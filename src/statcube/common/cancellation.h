// Cooperative cancellation and deadlines, shared by every layer that can
// stop a query: the morsel loops in exec/ check between morsels, the hot
// serial row loops check periodically, and the query-lifecycle registry
// (obs/query_registry.h) holds a token per in-flight query so an external
// actor — POST /queryz/cancel, the stuck-query watchdog, a caller-supplied
// token — can request a stop. Lives in common/ because obs must not include
// exec headers (exec already depends on obs); exec::CancellationToken is an
// alias of the type defined here.
//
// Semantics: cancellation is cooperative and monotonic. Once a token is
// cancelled (or a deadline passes) every subsequent Check() reports the
// stop, so a loop that observed a stop and a caller that re-checks after
// the loop returned always agree — a kernel can simply run its ParallelFor,
// then ask the context "did we stop?" and turn the answer into a Status.
// The conservative edge (a cancel arriving in the instant after the last
// morsel completed still reports kCancelled) is deliberate: a stopped query
// must never be mistaken for a complete one, while the reverse is harmless.

#ifndef STATCUBE_COMMON_CANCELLATION_H_
#define STATCUBE_COMMON_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "statcube/common/status.h"

namespace statcube {

/// Shared cooperative-cancellation flag. Copies observe the same flag, so a
/// token can be handed to the query registry, the executing loops, and the
/// caller at once — whoever calls Cancel() first stops all of them.
class CancellationToken {
 public:
  /// A fresh, un-cancelled flag.
  CancellationToken()
      : cancelled_(std::make_shared<std::atomic<bool>>(false)) {}

  /// Requests cancellation; visible to every copy of this token.
  void Cancel() const { cancelled_->store(true, std::memory_order_relaxed); }
  /// True once any copy called Cancel(). Checked between morsels/tasks.
  bool cancelled() const {
    return cancelled_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> cancelled_;
};

/// Why an execution loop stopped early (or kNone: keep going).
enum class StopReason : uint8_t {
  kNone = 0,          ///< not stopped
  kCancelled,         ///< a CancellationToken was cancelled
  kDeadlineExceeded,  ///< the absolute deadline passed
};

/// Steady-clock now in microseconds (the time base of CancelContext
/// deadlines and the query registry's start/elapsed fields).
inline uint64_t SteadyNowUs() {
  return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count());
}

/// One query's stop configuration: an optional external token and an
/// optional absolute deadline. Plain pointers/values — the query that owns
/// the token (QueryProfiled) outlives every loop checking the context, the
/// same lifetime rule the ResourceAccumulator relies on.
struct CancelContext {
  /// Cancellation flag to observe; nullptr = not cancellable.
  const CancellationToken* token = nullptr;
  /// Absolute SteadyNowUs() deadline; 0 = no deadline.
  uint64_t deadline_us = 0;

  /// True when there is anything to check (loops skip inactive contexts
  /// with a single pointer/zero test — the disabled-path cost).
  bool active() const { return token != nullptr || deadline_us != 0; }

  /// Current stop state. Cancellation wins over an expired deadline so the
  /// reported reason is stable once both hold.
  StopReason Check() const {
    if (token != nullptr && token->cancelled()) return StopReason::kCancelled;
    if (deadline_us != 0 && SteadyNowUs() >= deadline_us)
      return StopReason::kDeadlineExceeded;
    return StopReason::kNone;
  }
};

/// The Status a stopped query reports: kCancelled or kDeadlineExceeded with
/// `what` (e.g. the kernel or phase name) in the message. `reason` must not
/// be kNone.
Status StopStatus(StopReason reason, const char* what);

namespace internal {
/// Thread-local slot behind CurrentCancelContext/CancelScope.
inline const CancelContext*& CancelContextSlot() {
  thread_local const CancelContext* t_ctx = nullptr;
  return t_ctx;
}
}  // namespace internal

/// The cancel context installed on this thread, or nullptr. Serial row
/// loops (which have no ParallelForOptions to carry the context) read this
/// once per call and check it periodically.
inline const CancelContext* CurrentCancelContext() {
  return internal::CancelContextSlot();
}

/// Installs `ctx` as this thread's current cancel context for the scope's
/// lifetime (nullptr installs nothing and keeps the previous context).
/// QueryProfiled wraps execution in one so the serial operators see the
/// query's deadline/token without signature changes.
class CancelScope {
 public:
  explicit CancelScope(const CancelContext* ctx)
      : prev_(internal::CancelContextSlot()) {
    if (ctx != nullptr) internal::CancelContextSlot() = ctx;
  }
  ~CancelScope() { internal::CancelContextSlot() = prev_; }
  CancelScope(const CancelScope&) = delete;
  CancelScope& operator=(const CancelScope&) = delete;

 private:
  const CancelContext* prev_;
};

}  // namespace statcube

#endif  // STATCUBE_COMMON_CANCELLATION_H_
