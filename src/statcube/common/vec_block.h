/// \file
/// \brief Block-at-a-time primitives over contiguous `double` slabs: the
/// lowest layer of the vectorized execution path (DESIGN.md §12).
///
/// The paper's §6.1 transposed/columnar layout was chosen precisely so
/// aggregation can run over contiguous measure slabs; these functions are
/// the loops that exploit it. Each primitive is written so the compiler's
/// auto-vectorizer can emit SIMD for it, and the reassociating variants are
/// additionally provided as explicit AVX2 intrinsics selected once at
/// startup by runtime CPU dispatch (SimdLevelName() says which).
///
/// Determinism contract (the same one every kernel in statcube/exec obeys):
///
///  * `SumBlockOrdered` / `SumSqBlockOrdered` accumulate strictly
///    left-to-right — the exact floating-point sequence of the serial
///    operators. Always safe, never reassociated.
///  * `SumBlockFast` / `SumSqBlockFast` accumulate in four interleaved
///    lanes (lane j sums elements j, j+4, j+8, ...), which reassociates
///    the addition. Callers may use them **only when reassociation is
///    provably exact** — `ReorderIsExact` implements the rule: if every
///    value is integral and `n * max|v|` (or `n * max|v|^2` for the
///    squared sum) stays within 2^53, every partial sum in any order is an
///    exactly representable integer, so any summation order returns the
///    same bits as the ordered loop.
///  * `MinBlock` / `MaxBlock` reduce over an associative, commutative,
///    NaN-free lattice — bit-identical in any order, always vectorizable.
///  * `CountFlagBits` counts set low bits in a flag byte array — integer
///    arithmetic, any order.
///
/// Layering: these primitives live in common/ (namespace statcube::vec) and
/// depend only on the C++ standard library, so storage layers
/// (molap/dense_array) and exec can both call into them without pulling the
/// scheduler or the relational engine into their translation units. The
/// definitions live in common/vec_block.cc; the metrics-instrumented
/// SumBlockAuto wrapper lives one layer up, in exec/vec_kernels.h.

#ifndef STATCUBE_COMMON_VEC_BLOCK_H_
#define STATCUBE_COMMON_VEC_BLOCK_H_

#include <cstddef>
#include <cstdint>

namespace statcube::vec {

/// The largest integer magnitude a double represents exactly (2^53). Sums
/// whose every partial stays at or below this bound are reorderable without
/// changing a single bit.
inline constexpr double kMaxExactDouble = 9007199254740992.0;  // 2^53

/// Strict left-to-right sum — the serial reference order. n == 0 -> 0.0.
double SumBlockOrdered(const double* v, size_t n);

/// Four-lane reassociated sum (lane j accumulates elements j, j+4, ...;
/// lanes combine as (l0+l1)+(l2+l3), tail appended in order). Use only when
/// ReorderIsExact holds for the block; then the result is bit-identical to
/// SumBlockOrdered. Dispatches to AVX2 when the CPU has it. n == 0 -> 0.0.
double SumBlockFast(const double* v, size_t n);

/// Strict left-to-right sum of squares. n == 0 -> 0.0.
double SumSqBlockOrdered(const double* v, size_t n);

/// Four-lane reassociated sum of squares; same exactness caveat as
/// SumBlockFast with the bound applied to max|v|^2. n == 0 -> 0.0.
double SumSqBlockFast(const double* v, size_t n);

/// Minimum over the block; requires n >= 1 and no NaNs.
double MinBlock(const double* v, size_t n);

/// Maximum over the block; requires n >= 1 and no NaNs.
double MaxBlock(const double* v, size_t n);

/// Number of bytes in `flags[0, n)` with bit `bit` set.
size_t CountFlagBits(const uint8_t* flags, size_t n, uint8_t bit);

/// True when a reassociated sum over `n` values, each integral with
/// absolute value at most `max_abs`, is provably bit-identical to the
/// ordered sum: every partial sum is an integer of magnitude <= n * max_abs
/// <= 2^53, hence exactly representable. `all_integral` is the caller's
/// evidence (tracked incrementally by columnarization and DenseArray).
bool ReorderIsExact(bool all_integral, double max_abs, size_t n);

/// The instruction set the reassociating kernels dispatched to at startup:
/// "avx2" or "generic".
const char* SimdLevelName();

}  // namespace statcube::vec

#endif  // STATCUBE_COMMON_VEC_BLOCK_H_
