#include "statcube/common/vec_block.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#endif

namespace statcube::vec {

namespace {

double SumBlockFastGeneric(const double* v, size_t n) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    l0 += v[i];
    l1 += v[i + 1];
    l2 += v[i + 2];
    l3 += v[i + 3];
  }
  double s = (l0 + l1) + (l2 + l3);
  for (; i < n; ++i) s += v[i];
  return s;
}

double SumSqBlockFastGeneric(const double* v, size_t n) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    l0 += v[i] * v[i];
    l1 += v[i + 1] * v[i + 1];
    l2 += v[i + 2] * v[i + 2];
    l3 += v[i + 3] * v[i + 3];
  }
  double s = (l0 + l1) + (l2 + l3);
  for (; i < n; ++i) s += v[i] * v[i];
  return s;
}

#if defined(__x86_64__) || defined(_M_X64)

// Structurally identical to the generic 4-lane loops (same lane assignment,
// same (l0+l1)+(l2+l3) combine, same in-order tail), so both dispatch
// targets produce the same bits even outside the exactness gate.
__attribute__((target("avx2"))) double SumBlockFastAvx2(const double* v,
                                                        size_t n) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4)
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(v + i));
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double s = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; i < n; ++i) s += v[i];
  return s;
}

__attribute__((target("avx2"))) double SumSqBlockFastAvx2(const double* v,
                                                          size_t n) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d x = _mm256_loadu_pd(v + i);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(x, x));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double s = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; i < n; ++i) s += v[i] * v[i];
  return s;
}

bool CpuHasAvx2() { return __builtin_cpu_supports("avx2") != 0; }

#else

bool CpuHasAvx2() { return false; }

#endif  // x86_64

using BlockSumFn = double (*)(const double*, size_t);

// One-time dispatch: resolved at first use, never changes afterwards.
struct Dispatch {
  BlockSumFn sum;
  BlockSumFn sum_sq;
  const char* level;
};

const Dispatch& GetDispatch() {
  static const Dispatch d = [] {
#if defined(__x86_64__) || defined(_M_X64)
    if (CpuHasAvx2()) return Dispatch{SumBlockFastAvx2, SumSqBlockFastAvx2,
                                      "avx2"};
#endif
    return Dispatch{SumBlockFastGeneric, SumSqBlockFastGeneric, "generic"};
  }();
  return d;
}

}  // namespace

double SumBlockOrdered(const double* v, size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += v[i];
  return s;
}

double SumBlockFast(const double* v, size_t n) {
  return GetDispatch().sum(v, n);
}

double SumSqBlockOrdered(const double* v, size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += v[i] * v[i];
  return s;
}

double SumSqBlockFast(const double* v, size_t n) {
  return GetDispatch().sum_sq(v, n);
}

double MinBlock(const double* v, size_t n) {
  double m = v[0];
  for (size_t i = 1; i < n; ++i) m = v[i] < m ? v[i] : m;
  return m;
}

double MaxBlock(const double* v, size_t n) {
  double m = v[0];
  for (size_t i = 1; i < n; ++i) m = v[i] > m ? v[i] : m;
  return m;
}

size_t CountFlagBits(const uint8_t* flags, size_t n, uint8_t bit) {
  size_t c = 0;
  for (size_t i = 0; i < n; ++i) c += (flags[i] & bit) != 0 ? 1 : 0;
  return c;
}

bool ReorderIsExact(bool all_integral, double max_abs, size_t n) {
  if (!all_integral) return false;
  if (n == 0) return true;
  // Every partial sum in any grouping is bounded by n * max_abs; keeping
  // that at or below 2^53 makes every partial an exactly representable
  // integer, so association cannot change a bit. Division avoids overflow.
  return max_abs <= kMaxExactDouble / static_cast<double>(n);
}

const char* SimdLevelName() { return GetDispatch().level; }

}  // namespace statcube::vec
