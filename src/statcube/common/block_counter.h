// Logical block-access accounting. The paper's §6 arguments (transposed
// files, subcube partitioning, header compression) are fundamentally about
// how many disk blocks a query touches. Everything in this repo is
// in-memory, so each store charges reads against a BlockCounter at a
// configurable block size; benchmarks report blocks touched alongside wall
// time. This is the substitution documented in DESIGN.md for the paper's
// secondary/tertiary storage.
//
// Counters are relaxed atomics so parallel operator kernels (statcube/exec)
// can charge one shared per-store counter from many workers; totals are
// sums of the same charges in any interleaving, so parallel and serial
// execution account identically. Copying snapshots the current totals
// (QueryProfile embeds and copies counters).

#ifndef STATCUBE_COMMON_BLOCK_COUNTER_H_
#define STATCUBE_COMMON_BLOCK_COUNTER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace statcube {

/// Counts logical block reads. Stores call `ChargeBytes` (sequential access
/// to a byte range) or `ChargeBlocks` (random block touches).
class BlockCounter {
 public:
  static constexpr size_t kDefaultBlockSize = 4096;

  explicit BlockCounter(size_t block_size = kDefaultBlockSize)
      : block_size_(block_size) {}

  BlockCounter(const BlockCounter& other)
      : block_size_(other.block_size_),
        blocks_read_(other.blocks_read()),
        bytes_read_(other.bytes_read()) {}

  BlockCounter& operator=(const BlockCounter& other) {
    block_size_ = other.block_size_;
    blocks_read_.store(other.blocks_read(), std::memory_order_relaxed);
    bytes_read_.store(other.bytes_read(), std::memory_order_relaxed);
    return *this;
  }

  /// Charges ceil(bytes / block_size) block reads for a sequential range.
  /// A zero-byte range charges nothing.
  void ChargeBytes(size_t bytes) {
    if (bytes == 0) return;
    blocks_read_.fetch_add((bytes + block_size_ - 1) / block_size_,
                           std::memory_order_relaxed);
    bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
  }

  /// Charges `n` individual block touches (random access pattern).
  void ChargeBlocks(uint64_t n) {
    blocks_read_.fetch_add(n, std::memory_order_relaxed);
    bytes_read_.fetch_add(n * block_size_, std::memory_order_relaxed);
  }

  /// Folds another counter's totals into this one — combines per-store
  /// counters into a query-level total (obs::QueryProfile). Block sizes may
  /// differ; raw blocks and bytes are summed as-is.
  void Merge(const BlockCounter& other) {
    MergeRaw(other.blocks_read(), other.bytes_read());
  }

  /// Merge from raw deltas (for callers that snapshot before/after).
  void MergeRaw(uint64_t blocks, uint64_t bytes) {
    blocks_read_.fetch_add(blocks, std::memory_order_relaxed);
    bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
  }

  void Reset() {
    blocks_read_.store(0, std::memory_order_relaxed);
    bytes_read_.store(0, std::memory_order_relaxed);
  }

  uint64_t blocks_read() const {
    return blocks_read_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_read() const {
    return bytes_read_.load(std::memory_order_relaxed);
  }
  size_t block_size() const { return block_size_; }

 private:
  size_t block_size_;
  std::atomic<uint64_t> blocks_read_{0};
  std::atomic<uint64_t> bytes_read_{0};
};

}  // namespace statcube

#endif  // STATCUBE_COMMON_BLOCK_COUNTER_H_
