#include "statcube/obs/http_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>

#include "statcube/obs/exporter.h"
#include "statcube/obs/flight_recorder.h"
#include "statcube/obs/json.h"
#include "statcube/obs/log.h"
#include "statcube/obs/metrics.h"
#include "statcube/obs/query_registry.h"
#include "statcube/obs/timeseries_ring.h"

namespace statcube::obs {

namespace {

constexpr size_t kMaxRequestBytes = 8192;

const char* StatusText(int code) {
  switch (code) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 499: return "Client Closed Request";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
  }
  return "Unknown";
}

void SetSocketTimeouts(int fd, int read_ms, int write_ms) {
  timeval rtv{read_ms / 1000, (read_ms % 1000) * 1000};
  timeval wtv{write_ms / 1000, (write_ms % 1000) * 1000};
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &rtv, sizeof(rtv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &wtv, sizeof(wtv));
}

// Writes the whole buffer; returns false on error/timeout. MSG_NOSIGNAL so
// a client that hung up yields EPIPE instead of killing the process.
bool WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += size_t(n);
  }
  return true;
}

void WriteResponse(int fd, const HttpResponse& resp, bool head_only) {
  std::ostringstream os;
  os << "HTTP/1.1 " << resp.status << " " << StatusText(resp.status)
     << "\r\nContent-Type: " << resp.content_type
     << "\r\nContent-Length: " << resp.body.size();
  for (const auto& [name, value] : resp.headers)
    os << "\r\n" << name << ": " << value;
  os << "\r\nConnection: close\r\n\r\n";
  std::string out = os.str();
  if (!head_only) out += resp.body;
  WriteAll(fd, out);
}

HttpResponse SimpleResponse(int status, const std::string& body) {
  HttpResponse resp;
  resp.status = status;
  resp.body = body;
  return resp;
}

// Strict query-string parser: pairs split on '&', each pair must be
// `key=value` with a non-empty key (value may be empty). An empty query
// string parses to an empty map; anything else malformed returns false —
// endpoints answer 400 instead of guessing.
bool ParseQuery(const std::string& query,
                std::map<std::string, std::string>* out) {
  out->clear();
  if (query.empty()) return true;
  size_t pos = 0;
  while (pos <= query.size()) {
    size_t amp = query.find('&', pos);
    std::string pair = query.substr(
        pos, amp == std::string::npos ? std::string::npos : amp - pos);
    size_t eq = pair.find('=');
    if (eq == std::string::npos || eq == 0) return false;
    (*out)[pair.substr(0, eq)] = pair.substr(eq + 1);
    if (amp == std::string::npos) break;
    pos = amp + 1;
  }
  return true;
}

// Reads an optional size_t parameter. Returns false (and leaves *out
// untouched) when the key is present but not a plain decimal number.
bool ParseSizeParam(const std::map<std::string, std::string>& params,
                    const std::string& key, size_t* out) {
  auto it = params.find(key);
  if (it == params.end()) return true;
  const std::string& v = it->second;
  // Digits only: strtoull would silently wrap "-1" to a huge value.
  if (v.empty() || v[0] < '0' || v[0] > '9') return false;
  char* end = nullptr;
  unsigned long long n = strtoull(v.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = size_t(n);
  return true;
}

// Case-insensitive Content-Length lookup in a raw header block. Returns
// true with *out = 0 when absent; false when present but not a plain
// decimal number (answered 400 — never guess at a body length).
bool FindContentLength(const std::string& headers, size_t* out) {
  *out = 0;
  size_t pos = 0;
  while (pos < headers.size()) {
    size_t eol = headers.find('\n', pos);
    if (eol == std::string::npos) eol = headers.size();
    std::string line = headers.substr(pos, eol - pos);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    pos = eol + 1;
    size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string name = line.substr(0, colon);
    std::transform(name.begin(), name.end(), name.begin(),
                   [](unsigned char c) { return char(tolower(c)); });
    if (name != "content-length") continue;
    size_t v = colon + 1;
    while (v < line.size() && (line[v] == ' ' || line[v] == '\t')) ++v;
    std::string value = line.substr(v);
    while (!value.empty() && (value.back() == ' ' || value.back() == '\t'))
      value.pop_back();
    if (value.empty() || value[0] < '0' || value[0] > '9') return false;
    char* end = nullptr;
    unsigned long long n = strtoull(value.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') return false;
    *out = size_t(n);
    return true;
  }
  return true;
}

std::string HtmlEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

// Unicode block-element sparkline: each value maps to one of 8 bar heights
// scaled to the series' own min..max. Dependency-free "charting" for
// /statusz — renders in any modern terminal or browser.
std::string Sparkline(const std::vector<double>& values) {
  static const char* kBlocks[8] = {"▁", "▂", "▃", "▄",
                                   "▅", "▆", "▇", "█"};
  if (values.empty()) return "";
  double lo = *std::min_element(values.begin(), values.end());
  double hi = *std::max_element(values.begin(), values.end());
  std::string out;
  for (double v : values) {
    int idx = hi > lo ? int((v - lo) / (hi - lo) * 7.0 + 0.5) : 0;
    idx = std::max(0, std::min(7, idx));
    out += kBlocks[idx];
  }
  return out;
}

std::string FmtDouble(double v) {
  std::ostringstream os;
  if (v == double(int64_t(v)) && v < 1e15 && v > -1e15) {
    os << int64_t(v);
  } else {
    char buf[64];
    snprintf(buf, sizeof(buf), "%.3f", v);
    os << buf;
  }
  return os.str();
}

}  // namespace

StatsServer::StatsServer(StatsServerOptions options)
    : options_(std::move(options)) {
  if (options_.num_workers < 1) options_.num_workers = 1;
  if (options_.max_queued < 1) options_.max_queued = 1;
  if (!options_.register_default_endpoints) return;

  Handle("/healthz", [](const HttpRequest&) {
    return SimpleResponse(200, "ok\n");
  });
  Handle("/metrics", [](const HttpRequest&) {
    HttpResponse resp;
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    resp.body = PrometheusSnapshot();
    return resp;
  });
  Handle("/varz", [this](const HttpRequest&) {
    double uptime = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start_time_)
                        .count();
    HttpResponse resp;
    resp.content_type = "application/json";
    std::ostringstream os;
    os << "{\"uptime_s\":" << JsonNum(uptime)
       << ",\"requests_served\":" << requests_served_.load()
       << ",\"log_dropped\":" << LogDroppedCount()
       << ",\"profiles_recorded\":" << FlightRecorder::Global().TotalRecorded()
       << ",\"metrics\":" << MetricsRegistry::Global().JsonSnapshot() << "}";
    resp.body = os.str();
    return resp;
  });
  Handle("/profiles", [](const HttpRequest& req) {
    std::map<std::string, std::string> params;
    if (!ParseQuery(req.query, &params))
      return SimpleResponse(400, "malformed query string\n");
    size_t limit = 0;  // 0 = everything retained
    // `n` is the documented name; `limit` stays as an alias.
    if (!ParseSizeParam(params, "n", &limit) ||
        !ParseSizeParam(params, "limit", &limit))
      return SimpleResponse(400, "bad n= value\n");
    std::string tenant;  // empty = every tenant
    auto t = params.find("tenant");
    if (t != params.end()) tenant = t->second;
    HttpResponse resp;
    resp.content_type = "application/json";
    resp.body = FlightRecorder::Global().ToJson(limit, tenant);
    return resp;
  });
  Handle("/profiles/", [](const HttpRequest& req) {
    const std::string id_str = req.path.substr(strlen("/profiles/"));
    char* end = nullptr;
    uint64_t id = strtoull(id_str.c_str(), &end, 10);
    if (id_str.empty() || end == nullptr || *end != '\0')
      return SimpleResponse(400, "bad profile id\n");
    auto rec = FlightRecorder::Global().Get(id);
    if (!rec) return SimpleResponse(404, "profile not retained\n");
    HttpResponse resp;
    resp.content_type = "application/json";
    resp.body = rec->ToJson();
    return resp;
  }, /*prefix=*/true);
  Handle("/queryz", [](const HttpRequest& req) {
    std::map<std::string, std::string> params;
    if (!ParseQuery(req.query, &params))
      return SimpleResponse(400, "malformed query string\n");
    auto fmt = params.find("format");
    if (fmt != params.end() && fmt->second != "json" &&
        fmt->second != "html")
      return SimpleResponse(400, "format must be json or html\n");
    if (fmt != params.end() && fmt->second == "json") {
      HttpResponse resp;
      resp.content_type = "application/json";
      resp.body = QueryRegistry::Global().ToJson();
      return resp;
    }
    return QueryzPage();
  });
  HandleMethod("POST", "/queryz/cancel", [](const HttpRequest& req) {
    std::map<std::string, std::string> params;
    if (!ParseQuery(req.query, &params))
      return SimpleResponse(400, "malformed query string\n");
    if (params.find("id") == params.end())
      return SimpleResponse(400, "id= is required\n");
    size_t id = 0;
    if (!ParseSizeParam(params, "id", &id))
      return SimpleResponse(400, "bad id= value\n");
    if (!QueryRegistry::Global().Cancel(uint64_t(id)))
      return SimpleResponse(404, "no in-flight query with that id\n");
    HttpResponse resp;
    resp.content_type = "application/json";
    resp.body = "{\"cancelled\":" + std::to_string(id) + "}\n";
    return resp;
  });
  Handle("/statusz", [this](const HttpRequest& req) {
    std::map<std::string, std::string> params;
    if (!ParseQuery(req.query, &params))
      return SimpleResponse(400, "malformed query string\n");
    return StatuszPage();
  });
  Handle("/tracez", [](const HttpRequest& req) {
    std::map<std::string, std::string> params;
    if (!ParseQuery(req.query, &params))
      return SimpleResponse(400, "malformed query string\n");
    size_t limit = 20;
    if (!ParseSizeParam(params, "n", &limit))
      return SimpleResponse(400, "bad n= value\n");
    auto fmt = params.find("format");
    if (fmt != params.end() && fmt->second != "json" &&
        fmt->second != "html")
      return SimpleResponse(400, "format must be json or html\n");
    bool json = fmt != params.end() && fmt->second == "json";
    return TracezPage(limit, json);
  });
}

HttpResponse StatsServer::StatuszPage() const {
  double uptime = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start_time_)
                      .count();
  std::ostringstream os;
  os << "<!doctype html><html><head><meta charset=\"utf-8\">"
     << "<title>statcube /statusz</title><style>"
     << "body{font-family:monospace;margin:2em;background:#fdfdfd}"
     << "table{border-collapse:collapse}"
     << "td,th{border:1px solid #ccc;padding:2px 8px;text-align:left}"
     << "td.spark{font-size:1.2em;letter-spacing:-1px}"
     << "h2{margin-top:1.5em}</style></head><body>"
     << "<h1>statcube</h1>";

  os << "<h2>Process</h2><table>"
     << "<tr><th>uptime_s</th><td>" << FmtDouble(uptime) << "</td></tr>"
     << "<tr><th>build</th><td>" << HtmlEscape(__DATE__ " " __TIME__)
     << "</td></tr>"
     << "<tr><th>compiler</th><td>" << HtmlEscape(__VERSION__) << "</td></tr>"
     << "<tr><th>port</th><td>" << port_.load() << "</td></tr>"
     << "<tr><th>requests_served</th><td>" << requests_served_.load()
     << "</td></tr>"
     << "<tr><th>profiles_recorded</th><td>"
     << FlightRecorder::Global().TotalRecorded() << "</td></tr></table>";

  if (options_.sampler != nullptr) {
    os << "<h2>Time series</h2><p>interval "
       << options_.sampler->interval_ms() << " ms, sliding window "
       << options_.sampler->window() << " ticks, "
       << options_.sampler->samples() << " samples</p>"
       << "<table id=\"sparklines\"><tr><th>series</th><th>sparkline</th>"
       << "<th>last</th></tr>";
    for (const auto& [name, values] : options_.sampler->SnapshotAll()) {
      os << "<tr><td>" << HtmlEscape(name) << "</td><td class=\"spark\">"
         << Sparkline(values) << "</td><td>"
         << (values.empty() ? std::string("-") : FmtDouble(values.back()))
         << "</td></tr>";
    }
    os << "</table>";
  } else {
    os << "<h2>Time series</h2><p>no sampler configured "
       << "(--statusz-sample-ms)</p>";
  }

  os << "<h2>Gauges</h2><table><tr><th>gauge</th><th>value</th></tr>";
  MetricsRegistry::Global().Visit(
      nullptr,
      [&os](const std::string& name, const Gauge& g) {
        os << "<tr><td>" << HtmlEscape(name) << "</td><td>"
           << FmtDouble(g.Value()) << "</td></tr>";
      },
      nullptr);
  os << "</table>";

  os << "<h2>Recent slow queries</h2>";
  std::vector<RecordedProfile> recent = FlightRecorder::Global().Snapshot(0);
  std::vector<const RecordedProfile*> slow;
  for (const RecordedProfile& rec : recent)
    if (rec.slow) slow.push_back(&rec);
  if (slow.empty()) {
    os << "<p>none retained (threshold "
       << FlightRecorder::Global().SlowQueryThresholdUs() << " us)</p>";
  } else {
    os << "<table><tr><th>id</th><th>latency_us</th><th>backend</th>"
       << "<th>outcome</th><th>query</th></tr>";
    size_t shown = 0;
    for (size_t i = slow.size(); i-- > 0 && shown < 10; ++shown) {
      const RecordedProfile& rec = *slow[i];
      os << "<tr><td><a href=\"/profiles/" << rec.id << "\">" << rec.id
         << "</a></td><td>" << rec.latency_us << "</td><td>"
         << HtmlEscape(rec.profile.backend.empty() ? "relational"
                                                   : rec.profile.backend)
         << "</td><td>"
         << HtmlEscape(rec.profile.outcome.empty() ? "ok"
                                                   : rec.profile.outcome)
         << "</td><td>" << HtmlEscape(rec.query) << "</td></tr>";
    }
    os << "</table>";
  }
  for (const auto& [title, html_fn] : statusz_sections_)
    os << "<h2>" << HtmlEscape(title) << "</h2>" << html_fn();

  os << "<p><a href=\"/tracez\">/tracez</a> <a href=\"/varz\">/varz</a> "
     << "<a href=\"/metrics\">/metrics</a> "
     << "<a href=\"/profiles\">/profiles</a> "
     << "<a href=\"/queryz\">/queryz</a></p></body></html>";

  HttpResponse resp;
  resp.content_type = "text/html; charset=utf-8";
  resp.body = os.str();
  return resp;
}

HttpResponse StatsServer::QueryzPage() {
  std::vector<ActiveQuerySnapshot> snaps = QueryRegistry::Global().Snapshot();
  std::ostringstream os;
  os << "<!doctype html><html><head><meta charset=\"utf-8\">"
     << "<title>statcube /queryz</title><style>"
     << "body{font-family:monospace;margin:2em;background:#fdfdfd}"
     << "table{border-collapse:collapse}"
     << "td,th{border:1px solid #ccc;padding:2px 8px;text-align:left}"
     << "</style></head><body><h1>in-flight queries</h1>"
     << "<p>" << snaps.size() << " active; "
     << "<a href=\"/queryz?format=json\">json</a>; cancel with "
     << "<code>curl -X POST /queryz/cancel?id=N</code></p>";
  if (snaps.empty()) {
    os << "<p>none</p>";
  } else {
    os << "<table><tr><th>id</th><th>tenant</th><th>engine</th>"
       << "<th>threads</th>"
       << "<th>elapsed_us</th><th>cpu_us</th><th>morsels</th>"
       << "<th>cache</th><th>deadline</th><th>cancelled</th>"
       << "<th>query</th></tr>";
    for (const ActiveQuerySnapshot& s : snaps) {
      os << "<tr><td>" << s.id << "</td><td>"
         << HtmlEscape(s.tenant.empty() ? std::string("-") : s.tenant)
         << "</td><td>"
         << HtmlEscape(s.engine)
         << "</td><td>" << s.threads << "</td><td>" << s.elapsed_us
         << "</td><td>" << s.resources.cpu_us << "</td><td>"
         << s.resources.morsels << "</td><td>" << HtmlEscape(s.cache_mode)
         << "</td><td>"
         << (s.deadline_us == 0 ? std::string("-")
                                : std::to_string(s.deadline_us))
         << "</td><td>" << (s.cancelled ? "yes" : "no") << "</td><td>"
         << HtmlEscape(s.query) << "</td></tr>";
    }
    os << "</table>";
  }
  os << "<p><a href=\"/statusz\">/statusz</a> "
     << "<a href=\"/profiles\">/profiles</a></p></body></html>";
  HttpResponse resp;
  resp.content_type = "text/html; charset=utf-8";
  resp.body = os.str();
  return resp;
}

HttpResponse StatsServer::TracezPage(size_t limit, bool json) {
  std::vector<RecordedProfile> entries =
      FlightRecorder::Global().Snapshot(limit);
  HttpResponse resp;
  if (json) {
    std::ostringstream os;
    os << "{\"traces\":[";
    for (size_t i = 0; i < entries.size(); ++i) {
      const RecordedProfile& rec = entries[i];
      if (i) os << ",";
      os << "{\"id\":" << rec.id << ",\"query\":" << JsonStr(rec.query)
         << ",\"latency_us\":" << rec.latency_us
         << ",\"dropped_spans\":" << rec.profile.trace.dropped_spans()
         << ",\"spans\":[";
      const std::vector<SpanRecord>& spans = rec.profile.trace.spans();
      for (size_t s = 0; s < spans.size(); ++s) {
        if (s) os << ",";
        os << "{\"name\":" << JsonStr(spans[s].name)
           << ",\"parent\":" << spans[s].parent
           << ",\"start_us\":" << double(spans[s].start_ns) / 1000.0
           << ",\"dur_us\":" << double(spans[s].dur_ns) / 1000.0
           << ",\"thread\":" << spans[s].thread_id << "}";
      }
      os << "]}";
    }
    os << "]}";
    resp.content_type = "application/json";
    resp.body = os.str();
    return resp;
  }
  std::ostringstream os;
  os << "<!doctype html><html><head><meta charset=\"utf-8\">"
     << "<title>statcube /tracez</title><style>"
     << "body{font-family:monospace;margin:2em;background:#fdfdfd}"
     << "pre{background:#f4f4f4;padding:8px;border:1px solid #ccc}"
     << "</style></head><body><h1>recent traces</h1>"
     << "<p>" << entries.size() << " retained (newest last); "
     << "<a href=\"/tracez?format=json\">json</a></p>";
  for (const RecordedProfile& rec : entries) {
    os << "<h3>#" << rec.id << " "
       << HtmlEscape(rec.query.empty() ? "(unnamed query)" : rec.query)
       << " — " << rec.latency_us << " us</h3><pre>"
       << HtmlEscape(rec.profile.trace.TreeString()) << "</pre>";
  }
  os << "</body></html>";
  resp.content_type = "text/html; charset=utf-8";
  resp.body = os.str();
  return resp;
}

StatsServer::~StatsServer() { Stop(); }

void StatsServer::Handle(const std::string& path, HttpHandler handler,
                         bool prefix) {
  HandleMethod("GET", path, std::move(handler), prefix);
}

void StatsServer::HandleMethod(const std::string& method,
                               const std::string& path, HttpHandler handler,
                               bool prefix) {
  (prefix ? prefix_ : exact_).push_back({path, method, std::move(handler)});
}

void StatsServer::AddStatuszSection(const std::string& title,
                                    std::function<std::string()> html_fn) {
  statusz_sections_.emplace_back(title, std::move(html_fn));
}

Status StatsServer::Start() {
  if (running_.load()) return Status::Internal("stats server already running");

  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    return Status::Internal(std::string("socket: ") + strerror(errno));
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(options_.port);
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s = Status::Internal(std::string("bind port ") +
                                std::to_string(options_.port) + ": " +
                                strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  // The front door is sized for ~1000 concurrent closed-loop sessions; a
  // short backlog turns a connect burst into SYN retransmits (seconds of
  // artificial tail latency). The kernel clamps to somaxconn.
  if (listen(listen_fd_, 1024) < 0) {
    Status s = Status::Internal(std::string("listen: ") + strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t len = sizeof(addr);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_.store(ntohs(addr.sin_port));

  if (pipe(wake_pipe_) < 0) {
    Status s = Status::Internal(std::string("pipe: ") + strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }

  start_time_ = std::chrono::steady_clock::now();
  requests_served_.store(0);
  {
    MutexLock lock(queue_mu_);
    shutting_down_ = false;
  }
  running_.store(true);
  for (int i = 0; i < options_.num_workers; ++i)
    workers_.emplace_back(&StatsServer::WorkerLoop, this);
  acceptor_ = std::thread(&StatsServer::AcceptLoop, this);

  LogEvent(LogLevel::kInfo, "stats_server_started")
      .Int("port", port_.load())
      .Int("workers", options_.num_workers)
      .Emit();
  return Status::OK();
}

void StatsServer::Stop() {
  if (!running_.exchange(false)) return;

  // Wake the acceptor out of poll() via the self-pipe; it then stops
  // accepting and exits. shutdown() unblocks any in-flight accept too.
  char byte = 'x';
  ssize_t ignored = write(wake_pipe_[1], &byte, 1);
  (void)ignored;
  shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  close(listen_fd_);
  listen_fd_ = -1;
  close(wake_pipe_[0]);
  close(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;

  // Tell workers to drain: anything still queued is answered 503.
  {
    MutexLock lock(queue_mu_);
    shutting_down_ = true;
  }
  queue_cv_.NotifyAll();
  for (std::thread& w : workers_)
    if (w.joinable()) w.join();
  workers_.clear();

  std::deque<int> leftovers;
  {
    MutexLock lock(queue_mu_);
    leftovers.swap(pending_);
  }
  for (int fd : leftovers) {
    WriteResponse(fd, SimpleResponse(503, "shutting down\n"), false);
    close(fd);
  }

  LogEvent(LogLevel::kInfo, "stats_server_stopped")
      .Int("requests_served", int64_t(requests_served_.load()))
      .Emit();
}

void StatsServer::AcceptLoop() {
  while (running_.load()) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    int rc = poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // Stop() wrote the self-pipe
    if ((fds[0].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) break;
    if ((fds[0].revents & POLLIN) == 0) continue;

    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listen socket shut down
    }
    bool queued = false;
    {
      MutexLock lock(queue_mu_);
      if (int(pending_.size()) < options_.max_queued) {
        pending_.push_back(fd);
        queued = true;
      }
    }
    if (queued) {
      queue_cv_.NotifyOne();
    } else {
      // Bounded queue full: shed load instead of buffering unboundedly.
      WriteResponse(fd, SimpleResponse(503, "overloaded\n"), false);
      close(fd);
      if (Enabled())
        MetricsRegistry::Global().GetCounter("statcube.http.shed").Add(1);
    }
  }
}

void StatsServer::WorkerLoop() {
  while (true) {
    int fd = -1;
    {
      MutexLock lock(queue_mu_);
      while (!shutting_down_ && pending_.empty()) queue_cv_.Wait(queue_mu_);
      if (!pending_.empty()) {
        fd = pending_.front();
        pending_.pop_front();
      } else if (shutting_down_) {
        return;
      }
    }
    if (fd >= 0) ServeConnection(fd);
  }
}

void StatsServer::ServeConnection(int fd) {
  SetSocketTimeouts(fd, options_.read_timeout_ms, options_.write_timeout_ms);

  // Read until the end of headers. The header section has its own fixed cap
  // (kMaxRequestBytes); the body, read below only when Content-Length
  // announces one, is bounded separately by options_.max_body_bytes.
  std::string raw;
  char buf[2048];
  bool complete = false, timed_out = false;
  while (raw.size() < kMaxRequestBytes) {
    ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      timed_out = (errno == EAGAIN || errno == EWOULDBLOCK);
      break;
    }
    if (n == 0) break;  // client closed
    raw.append(buf, size_t(n));
    if (raw.find("\r\n\r\n") != std::string::npos ||
        raw.find("\n\n") != std::string::npos) {
      complete = true;
      break;
    }
  }
  if (!complete) {
    if (timed_out) WriteResponse(fd, SimpleResponse(408, "timeout\n"), false);
    else if (!raw.empty())
      WriteResponse(fd, SimpleResponse(400, "truncated request\n"), false);
    close(fd);
    return;
  }

  // Locate the header/body boundary (whichever separator came first).
  size_t hdr_end = raw.find("\r\n\r\n");
  size_t sep_len = 4;
  size_t lf_end = raw.find("\n\n");
  if (hdr_end == std::string::npos ||
      (lf_end != std::string::npos && lf_end < hdr_end)) {
    hdr_end = lf_end;
    sep_len = 2;
  }
  const size_t body_start = hdr_end + sep_len;

  size_t content_length = 0;
  if (!FindContentLength(raw.substr(0, hdr_end), &content_length)) {
    WriteResponse(fd, SimpleResponse(400, "bad Content-Length\n"), false);
    close(fd);
    return;
  }
  if (content_length > options_.max_body_bytes) {
    // Refuse without reading: the client said up front it would overflow
    // the budget, so there is no reason to drain the bytes.
    WriteResponse(fd, SimpleResponse(413, "request body too large\n"), false);
    close(fd);
    if (Enabled())
      MetricsRegistry::Global()
          .GetCounter("statcube.http.body_too_large")
          .Add(1);
    return;
  }
  timed_out = false;
  while (raw.size() < body_start + content_length) {
    ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      timed_out = (errno == EAGAIN || errno == EWOULDBLOCK);
      break;
    }
    if (n == 0) break;  // client closed mid-body
    raw.append(buf, size_t(n));
  }
  if (raw.size() < body_start + content_length) {
    WriteResponse(fd,
                  SimpleResponse(timed_out ? 408 : 400,
                                 timed_out ? "timeout\n" : "truncated body\n"),
                  false);
    close(fd);
    return;
  }

  // Request line: METHOD SP target SP version.
  size_t eol = raw.find_first_of("\r\n");
  std::string line = raw.substr(0, eol);
  size_t sp1 = line.find(' ');
  size_t sp2 = line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) {
    WriteResponse(fd, SimpleResponse(400, "malformed request line\n"), false);
    close(fd);
    return;
  }
  HttpRequest req;
  req.method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  size_t qmark = target.find('?');
  req.path = target.substr(0, qmark);
  if (qmark != std::string::npos) req.query = target.substr(qmark + 1);
  req.body = raw.substr(body_start, content_length);

  HttpResponse resp;
  bool head_only = req.method == "HEAD";
  if (req.method != "GET" && req.method != "HEAD" && req.method != "POST") {
    resp = SimpleResponse(405, "only GET, HEAD and POST are served\n");
  } else {
    // HEAD dispatches to the GET route (headers-only at write time). Exact
    // match beats prefix; among prefixes the longest wins. A path that
    // matched only under another method is a 405, not a 404.
    const std::string& method = head_only ? "GET" : req.method;
    const HttpHandler* handler = nullptr;
    bool path_known = false;
    for (const Route& r : exact_)
      if (r.path == req.path) {
        path_known = true;
        if (r.method == method) handler = &r.handler;
      }
    if (handler == nullptr) {
      size_t best = 0;
      for (const Route& r : prefix_)
        if (req.path.rfind(r.path, 0) == 0 && r.path.size() >= best) {
          path_known = true;
          if (r.method == method) {
            handler = &r.handler;
            best = r.path.size();
          }
        }
    }
    if (handler == nullptr) {
      resp = path_known
                 ? SimpleResponse(405, "method not allowed for this endpoint\n")
                 : SimpleResponse(404, "no such endpoint\n");
    } else {
      try {
        resp = (*handler)(req);
      } catch (const std::exception& e) {
        resp = SimpleResponse(500, std::string("handler error: ") + e.what() +
                                       "\n");
      } catch (...) {
        resp = SimpleResponse(500, "handler error\n");
      }
    }
  }

  WriteResponse(fd, resp, head_only);
  close(fd);
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  if (Enabled()) {
    MetricsRegistry& reg = MetricsRegistry::Global();
    reg.GetCounter("statcube.http.requests").Add(1);
    if (resp.status >= 400)
      reg.GetCounter("statcube.http.errors").Add(1);
  }
}

}  // namespace statcube::obs
