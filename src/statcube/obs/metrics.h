// Process-wide observability metrics (counters, gauges, fixed-bucket
// histograms) behind a single runtime gate. The paper's §6 performance
// arguments are claims about how much work a query does; BlockCounter
// (common/block_counter.h) measures logical I/O per store, and this registry
// aggregates that — plus rows, calls, and latencies — across the whole
// process so benchmarks and the CLI can attribute cost to subsystems.
//
// Naming convention: `statcube.<module>.<name>`, e.g.
// `statcube.viewstore.hits`, `statcube.backend.molap.blocks_read`,
// `statcube.query.latency_us`.
//
// Overhead contract: every instrumentation site is guarded by
// `obs::Enabled()` — a relaxed atomic load and a branch. When disabled, no
// allocation, no locking, and no metric mutation happens on any hot path.
// When enabled, updates are lock-free atomic increments; only the first
// lookup of a metric name takes the registry mutex.

#ifndef STATCUBE_OBS_METRICS_H_
#define STATCUBE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "statcube/common/mutex.h"
#include "statcube/common/thread_annotations.h"

namespace statcube::obs {

namespace internal {
extern std::atomic<bool> g_enabled;
}  // namespace internal

/// True when observability collection is on. Relaxed load + branch: cheap
/// enough to call on every operator invocation.
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

/// Flips the global gate (returns the previous value).
bool SetEnabled(bool on);

/// RAII gate flip: enables (or disables) observability for a scope and
/// restores the previous state on exit.
class EnabledScope {
 public:
  explicit EnabledScope(bool on) : prev_(SetEnabled(on)) {}
  ~EnabledScope() { SetEnabled(prev_); }
  EnabledScope(const EnabledScope&) = delete;
  EnabledScope& operator=(const EnabledScope&) = delete;

 private:
  bool prev_;
};

/// Monotonically increasing counter.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. An observation of `v` lands in the first bucket
/// whose upper bound satisfies `v <= bound`; values above the last bound land
/// in the implicit overflow bucket. Bucket bounds are fixed at registration.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  uint64_t TotalCount() const {
    return count_.load(std::memory_order_relaxed);
  }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Count in bucket `i` alone (NOT cumulative); `i == bounds().size()` is
  /// the overflow bucket.
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Estimated value at quantile `q` in [0, 1] by linear interpolation
  /// within the bucket containing the q-th observation (the standard
  /// Prometheus histogram_quantile estimate). Returns 0 with no
  /// observations; quantiles landing in the overflow bucket clamp to the
  /// last finite bound. Feeds the exporter's p50/p95/p99 gauges.
  double Percentile(double q) const;
  void Reset();

 private:
  std::vector<double> bounds_;  // ascending upper bounds
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// 1-2-5 decade ladder from 1 us to 1 s — the default latency bucketing.
const std::vector<double>& DefaultLatencyBoundsUs();

/// Thread-safe registry of named metrics. Metric objects are created on
/// first lookup and live for the process lifetime, so callers may cache the
/// returned references.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  /// `bounds` is only consulted on first registration; empty means
  /// DefaultLatencyBoundsUs().
  Histogram& GetHistogram(const std::string& name,
                          const std::vector<double>& bounds = {});

  /// One metric per line: `name value` (histograms expand to
  /// `name.count/.sum/.le_<bound>` lines). Sorted by name.
  ///
  /// Histogram `le_<bound>` lines are CUMULATIVE: each counts observations
  /// <= that bound, so `le_inf` always equals `count`. This matches
  /// Prometheus histogram semantics and the /metrics exporter
  /// (obs/exporter.h); a scraper can diff any two snapshots line-by-line.
  std::string TextSnapshot() const;

  /// JSON object with "counters", "gauges", and "histograms" keys.
  ///
  /// Unlike TextSnapshot, histogram buckets here are PER-BUCKET (each
  /// "count" is that bucket alone, not cumulative) — JSON consumers want
  /// the raw distribution for plotting; cumulative sums are trivially
  /// recovered with a running total.
  std::string JsonSnapshot() const;

  /// Calls the given callbacks for every registered metric, in name order
  /// per kind, while holding the registry mutex (callbacks must not call
  /// back into the registry). Null callbacks skip that kind. This is how
  /// external renderers (obs/exporter.h) iterate without the registry
  /// knowing their format.
  void Visit(
      const std::function<void(const std::string&, const Counter&)>& counter_fn,
      const std::function<void(const std::string&, const Gauge&)>& gauge_fn,
      const std::function<void(const std::string&, const Histogram&)>&
          histogram_fn) const;

  /// Zeroes every registered metric (the metrics stay registered).
  void Reset();

 private:
  MetricsRegistry() = default;

  // The pointed-to metric objects are internally lock-free atomics; the
  // mutex guards only the name → object maps (registration and iteration).
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      STATCUBE_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      STATCUBE_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      STATCUBE_GUARDED_BY(mu_);
};

}  // namespace statcube::obs

#endif  // STATCUBE_OBS_METRICS_H_
