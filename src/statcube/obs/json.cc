#include "statcube/obs/json.h"

#include <cmath>
#include <cstdio>

namespace statcube::obs {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonStr(const std::string& s) {
  return "\"" + JsonEscape(s) + "\"";
}

std::string JsonNum(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace statcube::obs
