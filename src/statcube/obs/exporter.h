// Prometheus text-exposition (format version 0.0.4) rendering of the
// MetricsRegistry, for the embedded stats server's GET /metrics endpoint
// (http_server.h). Gray et al.'s CUBE paper and the source paper's §6.6 both
// argue aggregate-query cost is workload-dependent; continuously scraping
// per-backend counters and latency histograms is how that argument becomes
// operable against a running server.
//
// Mapping from registry names to Prometheus names: every character outside
// [a-zA-Z0-9_:] becomes '_', so `statcube.query.latency_us` exports as
// `statcube_query_latency_us`. Histograms render the standard triplet
// (`*_bucket{le="..."}` with CUMULATIVE counts and a final le="+Inf",
// `*_sum`, `*_count`) plus derived `*_p50` / `*_p95` / `*_p99` gauges from
// Histogram::Percentile so dashboards get quantiles without PromQL.

#ifndef STATCUBE_OBS_EXPORTER_H_
#define STATCUBE_OBS_EXPORTER_H_

#include <string>

#include "statcube/obs/metrics.h"

namespace statcube::obs {

/// Sanitizes a registry metric name into a valid Prometheus metric name.
std::string PrometheusName(const std::string& name);

/// Renders the registry in Prometheus text exposition format v0.0.4:
/// `# TYPE` comment per metric, counters/gauges as single samples,
/// histograms as cumulative buckets + sum + count + percentile gauges.
std::string PrometheusSnapshot(const MetricsRegistry& registry);

/// PrometheusSnapshot(MetricsRegistry::Global()).
std::string PrometheusSnapshot();

}  // namespace statcube::obs

#endif  // STATCUBE_OBS_EXPORTER_H_
