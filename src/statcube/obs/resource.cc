#include "statcube/obs/resource.h"

#include <sstream>

#include "statcube/obs/json.h"

namespace statcube::obs {

namespace {
thread_local ResourceAccumulator* t_resources = nullptr;
}  // namespace

namespace internal {
ResourceAccumulator* SwapCurrentResources(ResourceAccumulator* r) {
  ResourceAccumulator* prev = t_resources;
  t_resources = r;
  return prev;
}
}  // namespace internal

ResourceAccumulator* CurrentResources() { return t_resources; }

ResourceVector ResourceAccumulator::Snapshot() const {
  ResourceVector v;
  v.cpu_us = cpu_us_.load(std::memory_order_relaxed);
  v.bytes_touched = bytes_.load(std::memory_order_relaxed);
  v.morsels = morsels_.load(std::memory_order_relaxed);
  v.steals = steals_.load(std::memory_order_relaxed);
  v.tasks_spawned = tasks_.load(std::memory_order_relaxed);
  v.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  v.cache_derived_hits = cache_derived_.load(std::memory_order_relaxed);
  v.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kCpuSlots; ++i) {
    if (per_thread_used_[i].load(std::memory_order_relaxed)) {
      v.cpu_us_by_thread.emplace_back(
          uint32_t(i), per_thread_us_[i].load(std::memory_order_relaxed));
    }
  }
  return v;
}

TaskContext TaskContext::Capture() {
  TaskContext ctx;
  if (!Enabled()) return ctx;
  ctx.trace = CurrentTrace();
  ctx.parent_span = internal::CurrentParentSpan();
  ctx.resources = t_resources;
  return ctx;
}

TaskContextScope::TaskContextScope(const TaskContext& ctx) {
  if (ctx.empty()) return;
  installed_ = true;
  prev_binding_ =
      internal::SwapTraceBinding({ctx.trace, ctx.parent_span, {}});
  prev_res_ = internal::SwapCurrentResources(ctx.resources);
}

TaskContextScope::~TaskContextScope() {
  if (!installed_) return;
  internal::SwapTraceBinding(std::move(prev_binding_));
  internal::SwapCurrentResources(prev_res_);
}

std::string ResourceVector::ToString() const {
  std::ostringstream os;
  os << "cpu_us=" << cpu_us << " bytes_touched=" << bytes_touched
     << " morsels=" << morsels << " steals=" << steals
     << " tasks_spawned=" << tasks_spawned << " cache=" << cache_hits << "h/"
     << cache_derived_hits << "d/" << cache_misses << "m";
  if (!cpu_us_by_thread.empty()) {
    os << " cpu_by_thread=";
    for (size_t i = 0; i < cpu_us_by_thread.size(); ++i) {
      if (i) os << ",";
      os << "t" << cpu_us_by_thread[i].first << ":"
         << cpu_us_by_thread[i].second;
    }
  }
  return os.str();
}

std::string ResourceVector::ToJson() const {
  std::ostringstream os;
  os << "{\"cpu_us\":" << cpu_us << ",\"bytes_touched\":" << bytes_touched
     << ",\"morsels\":" << morsels << ",\"steals\":" << steals
     << ",\"tasks_spawned\":" << tasks_spawned
     << ",\"cache_hits\":" << cache_hits
     << ",\"cache_derived_hits\":" << cache_derived_hits
     << ",\"cache_misses\":" << cache_misses << ",\"cpu_us_by_thread\":[";
  for (size_t i = 0; i < cpu_us_by_thread.size(); ++i) {
    if (i) os << ",";
    os << "{\"thread\":" << cpu_us_by_thread[i].first
       << ",\"us\":" << cpu_us_by_thread[i].second << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace statcube::obs
