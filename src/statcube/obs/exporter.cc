#include "statcube/obs/exporter.h"

#include <cctype>
#include <cstdio>
#include <sstream>
#include <utility>

namespace statcube::obs {

namespace {

// Prometheus sample values: integers print exactly, doubles via %.6g.
std::string Num(double v) {
  if (v == double(int64_t(v)) && v > -1e15 && v < 1e15) {
    char buf[32];
    snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string PrometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
              c == ':';
    out += ok ? c : '_';
  }
  // Names must not start with a digit.
  if (!out.empty() && std::isdigit(static_cast<unsigned char>(out[0])))
    out.insert(out.begin(), '_');
  return out;
}

std::string PrometheusSnapshot(const MetricsRegistry& registry) {
  std::ostringstream os;
  registry.Visit(
      [&os](const std::string& name, const Counter& c) {
        std::string pn = PrometheusName(name);
        os << "# TYPE " << pn << " counter\n";
        os << pn << " " << c.Value() << "\n";
      },
      [&os](const std::string& name, const Gauge& g) {
        std::string pn = PrometheusName(name);
        os << "# TYPE " << pn << " gauge\n";
        os << pn << " " << Num(g.Value()) << "\n";
      },
      [&os](const std::string& name, const Histogram& h) {
        std::string pn = PrometheusName(name);
        os << "# TYPE " << pn << " histogram\n";
        uint64_t cum = 0;
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          cum += h.BucketCount(i);
          os << pn << "_bucket{le=\"" << Num(h.bounds()[i]) << "\"} " << cum
             << "\n";
        }
        cum += h.BucketCount(h.bounds().size());
        os << pn << "_bucket{le=\"+Inf\"} " << cum << "\n";
        os << pn << "_sum " << Num(h.Sum()) << "\n";
        os << pn << "_count " << h.TotalCount() << "\n";
        // Derived quantile gauges (estimates; see Histogram::Percentile).
        constexpr std::pair<const char*, double> kQuantiles[] = {
            {"_p50", 0.50}, {"_p95", 0.95}, {"_p99", 0.99}};
        for (const auto& [suffix, q] : kQuantiles) {
          os << "# TYPE " << pn << suffix << " gauge\n";
          os << pn << suffix << " " << Num(h.Percentile(q)) << "\n";
        }
      });
  return os.str();
}

std::string PrometheusSnapshot() {
  return PrometheusSnapshot(MetricsRegistry::Global());
}

}  // namespace statcube::obs
