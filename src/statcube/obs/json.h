// Shared JSON string escaping for every obs serializer. metrics.cc's
// JsonSnapshot, trace.cc's Chrome export, flight_recorder.cc, and log.cc all
// emit JSON containing caller-controlled strings (metric names, span names,
// log fields, query text); one escaper here keeps them all producing valid
// JSON for quotes, backslashes, and control characters instead of three
// drifting copies.

#ifndef STATCUBE_OBS_JSON_H_
#define STATCUBE_OBS_JSON_H_

#include <string>

namespace statcube::obs {

/// Escapes `s` for inclusion inside a JSON string literal: `"` and `\` are
/// backslash-escaped, `\n`/`\t`/`\r`/`\b`/`\f` use their short forms, and
/// any other byte < 0x20 becomes `\u00XX`. Does not add surrounding quotes.
std::string JsonEscape(const std::string& s);

/// `JsonEscape` with surrounding double quotes — a complete JSON string.
std::string JsonStr(const std::string& s);

/// Formats a double as a JSON number without trailing zeros ("12", "12.5",
/// "0.001"); non-finite values (which JSON cannot represent) become 0.
std::string JsonNum(double v);

}  // namespace statcube::obs

#endif  // STATCUBE_OBS_JSON_H_
