// Flight recorder: a fixed-capacity ring buffer retaining the last N
// completed QueryProfiles, so "what did the slow queries look like?" is
// answerable after the fact — from the REPL, from GET /profiles on the
// stats server, or from a debugger — without having had profiling output
// enabled ahead of time.
//
// Every profile recorded gets a process-monotonic id; ids never repeat, so
// a scraper polling /profiles can detect both new entries and how many it
// missed. Recording a profile whose total latency meets the slow-query
// threshold additionally promotes it to the structured log (log.h) as one
// "slow_query" event — exactly one line per offending query, subject to the
// log's token-bucket rate limit.
//
// Concurrency: one mutex guards the ring. Record() copies the profile in;
// Snapshot()/Get() copy profiles out. Profiles are a few KB; this is far
// off the query hot path (one Record per *profiled* query, after the
// result is rendered).

#ifndef STATCUBE_OBS_FLIGHT_RECORDER_H_
#define STATCUBE_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "statcube/common/mutex.h"
#include "statcube/common/thread_annotations.h"
#include "statcube/obs/query_profile.h"

namespace statcube::obs {

/// One retained profile with its identity and summary fields.
struct RecordedProfile {
  uint64_t id = 0;          ///< process-monotonic, starts at 1
  std::string query;        ///< query text, may be empty
  uint64_t latency_us = 0;  ///< root-span total from the trace
  bool slow = false;        ///< met the threshold at record time
  QueryProfile profile;

  /// JSON object: id, query, latency_us, slow, and the full profile.
  std::string ToJson() const;
};

class FlightRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 128;
  /// Upper bound SetCapacity accepts (profiles are a few KB each; 64Ki of
  /// them is already hundreds of MB — anything above is a flag typo).
  static constexpr size_t kMaxCapacity = 65536;

  explicit FlightRecorder(size_t capacity = kDefaultCapacity);

  /// The process-wide recorder fed by QueryProfiled.
  static FlightRecorder& Global();

  /// Retains a copy of `profile` (evicting the oldest entry at capacity)
  /// and returns its id. Queries at or above the slow threshold emit one
  /// "slow_query" log event.
  uint64_t Record(const QueryProfile& profile, const std::string& query = "");

  /// Last `limit` entries, oldest first (0 = all retained). A non-empty
  /// `tenant` keeps only profiles recorded with that tenant stamp (the
  /// limit applies after filtering — "the last N of this tenant's
  /// queries", which is what a per-tenant debugging session wants).
  std::vector<RecordedProfile> Snapshot(size_t limit = 0,
                                        const std::string& tenant = "") const;

  /// The entry with the given id, if still retained.
  std::optional<RecordedProfile> Get(uint64_t id) const;

  /// JSON: {"capacity":N,"recorded":total,"slow_query_threshold_us":T,
  /// "profiles":[...]} with entries oldest first, optionally filtered to
  /// one tenant (see Snapshot).
  std::string ToJson(size_t limit = 0, const std::string& tenant = "") const;

  /// Queries with latency >= `us` are flagged slow and logged; 0 disables
  /// (the default). Returns the previous threshold.
  uint64_t SetSlowQueryThresholdUs(uint64_t us);
  uint64_t SlowQueryThresholdUs() const;

  /// Current ring capacity (runtime-configurable; see SetCapacity).
  size_t capacity() const { return capacity_.load(std::memory_order_relaxed); }

  /// Resizes the ring at runtime (--flight-capacity). Rejects 0 and values
  /// above kMaxCapacity (returns false, capacity unchanged); shrinking
  /// evicts the oldest retained entries immediately. Updates the
  /// statcube.recorder.capacity gauge.
  bool SetCapacity(size_t n);

  /// Total profiles ever recorded (>= retained count).
  uint64_t TotalRecorded() const;

  /// Drops all retained entries (ids keep advancing).
  void Clear();

 private:
  std::atomic<size_t> capacity_;
  mutable Mutex mu_;
  std::deque<RecordedProfile> ring_ STATCUBE_GUARDED_BY(mu_);
  uint64_t next_id_ STATCUBE_GUARDED_BY(mu_) = 1;
  uint64_t slow_threshold_us_ STATCUBE_GUARDED_BY(mu_) = 0;
};

}  // namespace statcube::obs

#endif  // STATCUBE_OBS_FLIGHT_RECORDER_H_
