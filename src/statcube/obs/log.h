// Leveled structured JSON logging. One event per line:
//
//   {"ts":"2026-08-06T12:34:56.789Z","level":"warn","event":"slow_query",
//    "latency_us":52341,"backend":"rolap","query":"SELECT ..."}
//
// `ts` is wall-clock UTC with millisecond precision; every other field is a
// caller-supplied key/value pair, escaped through obs::JsonEscape so hostile
// query text cannot break the line's JSON-ness. Events are built fluently:
//
//   obs::LogEvent(obs::LogLevel::kWarn, "slow_query")
//       .Num("latency_us", us).Str("query", text).Emit();
//
// A process-wide token bucket bounds the emit rate (a slow-query storm must
// not turn the log into the bottleneck): the bucket holds `burst` tokens and
// refills at `per_second`; an event arriving with the bucket empty is
// dropped and counted in statcube.log.dropped. The sink defaults to stderr
// and is pluggable for tests and for servers that want a file or socket.
//
// Like the rest of obs, emitting below the minimum level is one atomic load
// and a branch — no allocation, no formatting.

#ifndef STATCUBE_OBS_LOG_H_
#define STATCUBE_OBS_LOG_H_

#include <cstdint>
#include <functional>
#include <string>

namespace statcube::obs {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// "debug", "info", "warn", "error".
const char* LogLevelName(LogLevel level);

/// Events below `level` are dropped before any formatting. Returns the
/// previous minimum. Default: kInfo.
LogLevel SetMinLogLevel(LogLevel level);
LogLevel MinLogLevel();

/// Replaces the line sink (called with one complete JSON line, no trailing
/// newline). Passing nullptr restores the default stderr sink. Returns the
/// previous sink. The sink is called with the logger's internal mutex NOT
/// held beyond the swap — it must be fast or do its own buffering.
using LogSink = std::function<void(const std::string& line)>;
LogSink SetLogSink(LogSink sink);

/// Token-bucket rate limit for emitted events: at most `burst` events
/// instantaneously and `per_second` sustained. Zero `per_second` disables
/// limiting (the default policy is 100/s sustained, burst 50). Dropped
/// events increment statcube.log.dropped.
void SetLogRateLimit(double per_second, double burst);

/// Number of events dropped by the rate limiter since process start.
uint64_t LogDroppedCount();

/// One structured event under construction. Emit() renders and writes it
/// (subject to level and rate limit); a LogEvent that is never Emit()ed
/// writes nothing.
class LogEvent {
 public:
  LogEvent(LogLevel level, const std::string& event);

  LogEvent& Str(const std::string& key, const std::string& value);
  LogEvent& Num(const std::string& key, double value);
  LogEvent& Int(const std::string& key, int64_t value);
  LogEvent& Bool(const std::string& key, bool value);

  /// Renders the JSON line and hands it to the sink. Returns true if the
  /// line was written, false if suppressed (level or rate limit).
  bool Emit();

  /// The line as it would be written (with a fresh timestamp); for tests.
  std::string Render() const;

 private:
  LogLevel level_;
  std::string fields_;  // ",\"k\":v" pairs, pre-rendered
  bool enabled_;
};

}  // namespace statcube::obs

#endif  // STATCUBE_OBS_LOG_H_
