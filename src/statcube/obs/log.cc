#include "statcube/obs/log.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>

#include "statcube/common/mutex.h"
#include "statcube/common/thread_annotations.h"
#include "statcube/obs/json.h"
#include "statcube/obs/metrics.h"

namespace statcube::obs {

namespace {

std::atomic<int> g_min_level{int(LogLevel::kInfo)};
std::atomic<uint64_t> g_dropped{0};

// Sink + rate limiter state, mutex-guarded (log emission is not a hot path;
// the hot path is the level check, which is lock-free).
struct LogState {
  Mutex mu;
  LogSink sink STATCUBE_GUARDED_BY(mu);  // empty = stderr
  double tokens STATCUBE_GUARDED_BY(mu) = 50.0;
  double per_second STATCUBE_GUARDED_BY(mu) = 100.0;
  double burst STATCUBE_GUARDED_BY(mu) = 50.0;
  std::chrono::steady_clock::time_point last_refill STATCUBE_GUARDED_BY(mu) =
      std::chrono::steady_clock::now();
};

LogState& State() {
  static LogState* state = new LogState();
  return *state;
}

// Takes one token if available; refills lazily from elapsed time.
bool TakeToken(LogState& s) STATCUBE_REQUIRES(s.mu) {
  if (s.per_second <= 0) return true;  // limiting disabled
  auto now = std::chrono::steady_clock::now();
  double elapsed =
      std::chrono::duration<double>(now - s.last_refill).count();
  s.last_refill = now;
  s.tokens = std::min(s.burst, s.tokens + elapsed * s.per_second);
  if (s.tokens < 1.0) return false;
  s.tokens -= 1.0;
  return true;
}

std::string TimestampUtc() {
  using namespace std::chrono;
  auto now = system_clock::now();
  std::time_t secs = system_clock::to_time_t(now);
  auto ms = duration_cast<milliseconds>(now.time_since_epoch()).count() % 1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[64];
  snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
           tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
           tm.tm_min, tm.tm_sec, int(ms));
  return buf;
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "?";
}

LogLevel SetMinLogLevel(LogLevel level) {
  return LogLevel(g_min_level.exchange(int(level)));
}

LogLevel MinLogLevel() { return LogLevel(g_min_level.load()); }

LogSink SetLogSink(LogSink sink) {
  LogState& s = State();
  MutexLock lock(s.mu);
  LogSink prev = std::move(s.sink);
  s.sink = std::move(sink);
  return prev;
}

void SetLogRateLimit(double per_second, double burst) {
  LogState& s = State();
  MutexLock lock(s.mu);
  s.per_second = per_second;
  s.burst = burst;
  s.tokens = burst;
  s.last_refill = std::chrono::steady_clock::now();
}

uint64_t LogDroppedCount() { return g_dropped.load(); }

LogEvent::LogEvent(LogLevel level, const std::string& event)
    : level_(level), enabled_(int(level) >= g_min_level.load()) {
  if (!enabled_) return;
  fields_ = ",\"level\":\"";
  fields_ += LogLevelName(level);
  fields_ += "\",\"event\":";
  fields_ += JsonStr(event);
}

LogEvent& LogEvent::Str(const std::string& key, const std::string& value) {
  if (enabled_)
    fields_ += "," + JsonStr(key) + ":" + JsonStr(value);
  return *this;
}

LogEvent& LogEvent::Num(const std::string& key, double value) {
  if (enabled_)
    fields_ += "," + JsonStr(key) + ":" + JsonNum(value);
  return *this;
}

LogEvent& LogEvent::Int(const std::string& key, int64_t value) {
  if (enabled_)
    fields_ += "," + JsonStr(key) + ":" + std::to_string(value);
  return *this;
}

LogEvent& LogEvent::Bool(const std::string& key, bool value) {
  if (enabled_)
    fields_ += "," + JsonStr(key) + ":" + (value ? "true" : "false");
  return *this;
}

std::string LogEvent::Render() const {
  std::string line = "{\"ts\":\"" + TimestampUtc() + "\"";
  line += fields_;
  line += "}";
  return line;
}

bool LogEvent::Emit() {
  if (!enabled_) return false;
  LogState& s = State();
  LogSink sink;
  {
    MutexLock lock(s.mu);
    if (!TakeToken(s)) {
      g_dropped.fetch_add(1, std::memory_order_relaxed);
      if (Enabled())
        MetricsRegistry::Global().GetCounter("statcube.log.dropped").Add(1);
      return false;
    }
    sink = s.sink;  // copy so the sink runs outside the mutex
  }
  std::string line = Render();
  if (Enabled())
    MetricsRegistry::Global().GetCounter("statcube.log.emitted").Add(1);
  if (sink) {
    sink(line);
  } else {
    fprintf(stderr, "%s\n", line.c_str());
  }
  return true;
}

}  // namespace statcube::obs
