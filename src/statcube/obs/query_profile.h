// QueryProfile: everything one query did, in one struct — phase timings as a
// span tree (trace.h), rows in/out per relational operator, logical
// blocks/bytes charged by each store's BlockCounter, which backend answered,
// and the view store's hit/miss/ancestor decisions. Returned alongside
// results by `QueryProfiled` (query/parser.h) and printed by `EXPLAIN
// PROFILE` / `olap_cli --profile`.
//
// Collection model: `ProfileScope` installs a thread-local active profile
// (and its trace). Instrumented modules call the inline `Record*` helpers
// below; each is a relaxed-load branch when observability is disabled, and
// otherwise updates both the global MetricsRegistry and the active profile
// (if any). Modules never include each other's headers — obs is the only
// shared surface.

#ifndef STATCUBE_OBS_QUERY_PROFILE_H_
#define STATCUBE_OBS_QUERY_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "statcube/common/block_counter.h"
#include "statcube/obs/metrics.h"
#include "statcube/obs/resource.h"
#include "statcube/obs/trace.h"

namespace statcube::obs {

/// Rows through one relational operator invocation, in execution order.
struct OperatorStats {
  std::string op;  ///< "select", "groupby", "join", ...
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
};

/// One view-store routing decision.
struct ViewStoreEvent {
  uint32_t mask = 0;          ///< requested view
  bool hit = false;           ///< answered from an exactly-materialized view
  int64_t ancestor_mask = -1; ///< ancestor used on miss; -1 = base table
  uint64_t rows_scanned = 0;
};

/// The full profile of one query.
struct QueryProfile {
  /// "molap", "rolap", "rolap+bitmap", "relational" — or "cache" when the
  /// result cache answered without executing.
  std::string backend;
  /// Result-cache outcome: "hit", "derived", "miss", or empty when the
  /// query ran with the cache off.
  std::string cache;
  /// How the query ended: "ok", "cancelled", or "deadline_exceeded" (set by
  /// QueryProfiled; empty — treated as "ok" by the serializers — for
  /// profiles collected outside the query lifecycle).
  std::string outcome;
  /// Tenant the query ran on behalf of (QueryOptions::tenant; empty for
  /// untenanted callers like the CLI). Lets /profiles?tenant= and the
  /// front door's accounting attribute retained profiles.
  std::string tenant;
  Trace trace;          ///< span tree (phases and sub-phases)
  /// Everything the query consumed, attributed across workers: CPU time
  /// (total and per thread), bytes touched, morsels, steals, tasks, cache
  /// probe outcomes. Folded from the query's ResourceAccumulator by
  /// ProfileScope::Take().
  ResourceVector resources;
  std::vector<OperatorStats> operators;
  BlockCounter blocks;  ///< logical I/O summed over every store touched
  std::vector<ViewStoreEvent> view_events;
  uint64_t view_hits = 0;
  uint64_t view_misses = 0;
  uint64_t reaggregated_rows = 0;
  uint64_t result_rows = 0;

  /// Number of top-level phases in the span tree.
  size_t NumPhases() const;

  /// Human-readable report: span tree, per-operator rows, block counters.
  std::string ToString() const;

  /// JSON object mirroring ToString's content.
  std::string ToJson() const;
};

/// The profile being collected on this thread, or nullptr.
QueryProfile* ActiveProfile();

/// Installs a fresh QueryProfile (its trace and its ResourceAccumulator) as
/// this thread's active profile, wrapped in an implicit root span named
/// "query". The installed context is what TaskContext::Capture picks up, so
/// work the query fans out to other threads charges this profile. `Take()`
/// closes the root span, folds the accumulated ResourceVector into the
/// profile, observes statcube.query.latency_us, uninstalls, and moves the
/// profile out.
class ProfileScope {
 public:
  ProfileScope();
  ~ProfileScope();
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

  QueryProfile& profile() { return profile_; }
  /// The live accumulator (e.g. to pre-charge setup costs).
  ResourceAccumulator& resources() { return resources_; }
  QueryProfile Take();

 private:
  void Uninstall();

  QueryProfile profile_;
  ResourceAccumulator resources_;
  QueryProfile* prev_profile_;
  internal::TraceBinding prev_binding_;
  ResourceAccumulator* prev_resources_;
  int32_t root_span_ = -1;
  bool installed_ = true;
};

namespace internal {
QueryProfile*& ActiveProfileSlot();
void RecordOperatorImpl(const char* op, uint64_t rows_in, uint64_t rows_out);
void RecordBackendImpl(const std::string& backend, uint64_t blocks,
                       uint64_t bytes);
void RecordViewStoreQueryImpl(uint32_t mask, bool hit, int64_t ancestor_mask,
                              uint64_t rows_scanned);
void RecordViewStoreRefreshImpl(uint64_t reaggregated_rows);
void RecordPrivacyImpl(bool answered, bool perturbed);
}  // namespace internal

/// Rows in/out of a relational operator. Feeds
/// statcube.relational.<op>.{calls,rows_in,rows_out} and the active profile.
inline void RecordOperator(const char* op, uint64_t rows_in,
                           uint64_t rows_out) {
  if (!Enabled()) return;
  internal::RecordOperatorImpl(op, rows_in, rows_out);
}

/// Logical I/O charged by a backend while answering (a delta, not a running
/// total). Feeds statcube.backend.<name>.{queries,blocks_read,bytes_read}
/// and sets the active profile's backend.
inline void RecordBackend(const std::string& backend, uint64_t blocks,
                          uint64_t bytes) {
  if (!Enabled()) return;
  internal::RecordBackendImpl(backend, blocks, bytes);
}

/// A view-store query routing decision. Feeds
/// statcube.viewstore.{hits,misses,rows_scanned}.
inline void RecordViewStoreQuery(uint32_t mask, bool hit,
                                 int64_t ancestor_mask,
                                 uint64_t rows_scanned) {
  if (!Enabled()) return;
  internal::RecordViewStoreQueryImpl(mask, hit, ancestor_mask, rows_scanned);
}

/// Incremental-refresh work. Feeds statcube.viewstore.reagg_rows.
inline void RecordViewStoreRefresh(uint64_t reaggregated_rows) {
  if (!Enabled()) return;
  internal::RecordViewStoreRefreshImpl(reaggregated_rows);
}

/// Privacy-monitor outcome. Feeds
/// statcube.privacy.{answered,refused,perturbed}.
inline void RecordPrivacy(bool answered, bool perturbed = false) {
  if (!Enabled()) return;
  internal::RecordPrivacyImpl(answered, perturbed);
}

}  // namespace statcube::obs

#endif  // STATCUBE_OBS_QUERY_PROFILE_H_
