#include "statcube/obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "statcube/obs/json.h"

namespace statcube::obs {

namespace internal {
std::atomic<bool> g_enabled{false};
}  // namespace internal

bool SetEnabled(bool on) {
  return internal::g_enabled.exchange(on, std::memory_order_relaxed);
}

// ------------------------------------------------------------- Histogram

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double v) {
  size_t i = size_t(std::lower_bound(bounds_.begin(), bounds_.end(), v) -
                    bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add on atomic<double> needs C++20 + hardware support; CAS-loop is
  // portable and this path only runs when observability is enabled.
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed))
    ;
}

double Histogram::Percentile(double q) const {
  uint64_t total = TotalCount();
  if (total == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the target observation (1-based); walk cumulative counts.
  uint64_t rank = uint64_t(q * double(total));
  if (rank < 1) rank = 1;
  uint64_t cum = 0;
  for (size_t i = 0; i < bounds_.size(); ++i) {
    uint64_t in_bucket = BucketCount(i);
    if (cum + in_bucket >= rank) {
      double lo = i == 0 ? 0.0 : bounds_[i - 1];
      double hi = bounds_[i];
      if (in_bucket == 0) return hi;
      return lo + (hi - lo) * double(rank - cum) / double(in_bucket);
    }
    cum += in_bucket;
  }
  // Overflow bucket: no finite upper bound, clamp to the last finite one.
  return bounds_.empty() ? 0.0 : bounds_.back();
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
  count_.store(0);
  sum_.store(0.0);
}

const std::vector<double>& DefaultLatencyBoundsUs() {
  static const std::vector<double> kBounds = {
      1,    2,    5,    10,    20,    50,    100,    200,    500,
      1000, 2000, 5000, 10000, 20000, 50000, 100000, 200000, 500000,
      1000000};
  return kBounds;
}

// -------------------------------------------------------- MetricsRegistry

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>& bounds) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, std::make_unique<Histogram>(
                                bounds.empty() ? DefaultLatencyBoundsUs()
                                               : bounds))
             .first;
  }
  return *it->second;
}

namespace {
// Formats a double without trailing zeros ("12", "12.5", "0.001").
std::string Num(double v) { return JsonNum(v); }
}  // namespace

std::string MetricsRegistry::TextSnapshot() const {
  MutexLock lock(mu_);
  std::ostringstream os;
  for (const auto& [name, c] : counters_)
    os << name << " " << c->Value() << "\n";
  for (const auto& [name, g] : gauges_)
    os << name << " " << Num(g->Value()) << "\n";
  for (const auto& [name, h] : histograms_) {
    os << name << ".count " << h->TotalCount() << "\n";
    os << name << ".sum " << Num(h->Sum()) << "\n";
    // le_ lines are cumulative (Prometheus convention; see metrics.h).
    uint64_t cum = 0;
    for (size_t i = 0; i < h->bounds().size(); ++i) {
      cum += h->BucketCount(i);
      os << name << ".le_" << Num(h->bounds()[i]) << " " << cum << "\n";
    }
    cum += h->BucketCount(h->bounds().size());
    os << name << ".le_inf " << cum << "\n";
  }
  return os.str();
}

std::string MetricsRegistry::JsonSnapshot() const {
  MutexLock lock(mu_);
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ",";
    first = false;
    os << JsonStr(name) << ":" << c->Value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ",";
    first = false;
    os << JsonStr(name) << ":" << Num(g->Value());
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ",";
    first = false;
    os << JsonStr(name) << ":{\"count\":" << h->TotalCount()
       << ",\"sum\":" << Num(h->Sum()) << ",\"buckets\":[";
    for (size_t i = 0; i < h->bounds().size(); ++i) {
      if (i) os << ",";
      os << "{\"le\":" << Num(h->bounds()[i])
         << ",\"count\":" << h->BucketCount(i) << "}";
    }
    if (!h->bounds().empty()) os << ",";
    os << "{\"le\":\"inf\",\"count\":" << h->BucketCount(h->bounds().size())
       << "}]}";
  }
  os << "}}";
  return os.str();
}

void MetricsRegistry::Visit(
    const std::function<void(const std::string&, const Counter&)>& counter_fn,
    const std::function<void(const std::string&, const Gauge&)>& gauge_fn,
    const std::function<void(const std::string&, const Histogram&)>&
        histogram_fn) const {
  MutexLock lock(mu_);
  if (counter_fn)
    for (const auto& [name, c] : counters_) counter_fn(name, *c);
  if (gauge_fn)
    for (const auto& [name, g] : gauges_) gauge_fn(name, *g);
  if (histogram_fn)
    for (const auto& [name, h] : histograms_) histogram_fn(name, *h);
}

void MetricsRegistry::Reset() {
  MutexLock lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace statcube::obs
