#include "statcube/obs/trace.h"

#include <cstdio>
#include <sstream>

#include "statcube/obs/json.h"

namespace statcube::obs {

namespace {
thread_local Trace* t_current_trace = nullptr;
}  // namespace

namespace internal {
Trace* SwapCurrentTrace(Trace* t) {
  Trace* prev = t_current_trace;
  t_current_trace = t;
  return prev;
}
}  // namespace internal

Trace* CurrentTrace() { return t_current_trace; }

TraceScope::TraceScope() : prev_(internal::SwapCurrentTrace(&trace_)) {}
TraceScope::~TraceScope() { internal::SwapCurrentTrace(prev_); }

int32_t Trace::BeginSpan(std::string name) {
  SpanRecord rec;
  rec.name = std::move(name);
  rec.parent = stack_.empty() ? -1 : stack_.back();
  rec.depth = stack_.empty() ? 0 : spans_[size_t(stack_.back())].depth + 1;
  rec.start_ns = NowNs();
  int32_t idx = int32_t(spans_.size());
  spans_.push_back(std::move(rec));
  stack_.push_back(idx);
  return idx;
}

void Trace::EndSpan(int32_t idx) {
  if (idx < 0 || size_t(idx) >= spans_.size()) return;
  SpanRecord& rec = spans_[size_t(idx)];
  if (!rec.open) return;
  rec.dur_ns = NowNs() - rec.start_ns;
  rec.open = false;
  // Scopes close in LIFO order; tolerate out-of-order closes by popping
  // through (an open parent whose child outlived it would otherwise pin the
  // stack).
  while (!stack_.empty()) {
    int32_t top = stack_.back();
    stack_.pop_back();
    if (top == idx) break;
  }
}

uint64_t Trace::TotalDurationNs() const {
  uint64_t total = 0;
  for (const SpanRecord& s : spans_)
    if (s.parent < 0) total += s.dur_ns;
  return total;
}

namespace {
std::string FmtDurUs(uint64_t ns) {
  char buf[32];
  snprintf(buf, sizeof(buf), "%.1f us", double(ns) / 1000.0);
  return buf;
}
}  // namespace

std::string Trace::TreeString() const {
  std::ostringstream os;
  for (const SpanRecord& s : spans_) {
    for (int32_t d = 0; d < s.depth; ++d) os << "  ";
    os << (s.depth > 0 ? "- " : "") << s.name;
    size_t width = size_t(s.depth) * 2 + (s.depth > 0 ? 2 : 0) + s.name.size();
    for (size_t p = width; p < 40; ++p) os << ' ';
    os << " " << FmtDurUs(s.dur_ns);
    if (s.open) os << " (open)";
    os << "\n";
  }
  return os.str();
}

std::string Trace::ChromeTraceJson() const {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  for (size_t i = 0; i < spans_.size(); ++i) {
    const SpanRecord& s = spans_[i];
    if (i) os << ",";
    os << "{\"name\":" << JsonStr(s.name) << ",\"ph\":\"X\",\"ts\":"
       << double(s.start_ns) / 1000.0 << ",\"dur\":"
       << double(s.dur_ns) / 1000.0 << ",\"pid\":1,\"tid\":1}";
  }
  os << "]}";
  return os.str();
}

}  // namespace statcube::obs
