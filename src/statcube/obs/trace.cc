#include "statcube/obs/trace.h"

#include <cstdio>
#include <sstream>
#include <utility>

#include "statcube/obs/json.h"

namespace statcube::obs {

namespace {
thread_local internal::TraceBinding t_binding;

std::atomic<uint32_t> g_next_thread_id{0};
}  // namespace

uint32_t CurrentThreadId() {
  thread_local uint32_t id =
      g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

namespace internal {

TraceBinding SwapTraceBinding(TraceBinding b) {
  TraceBinding prev = std::move(t_binding);
  t_binding = std::move(b);
  return prev;
}

int32_t CurrentParentSpan() {
  if (t_binding.trace == nullptr) return -1;
  return t_binding.stack.empty() ? t_binding.base_parent
                                 : t_binding.stack.back();
}

}  // namespace internal

Trace* CurrentTrace() { return t_binding.trace; }

TraceScope::TraceScope()
    : prev_(internal::SwapTraceBinding({&trace_, -1, {}})) {}
TraceScope::~TraceScope() { internal::SwapTraceBinding(std::move(prev_)); }

Trace::Trace(const Trace& other) : origin_(other.origin_) {
  std::vector<SpanRecord> copied;
  {
    MutexLock lock(other.mu_);
    copied = other.spans_;
  }
  budget_.store(other.span_budget(), std::memory_order_relaxed);
  dropped_.store(other.dropped_spans(), std::memory_order_relaxed);
  MutexLock lock(mu_);
  spans_ = std::move(copied);
}

Trace& Trace::operator=(const Trace& other) {
  if (this == &other) return *this;
  std::vector<SpanRecord> copied;
  {
    MutexLock lock(other.mu_);
    copied = other.spans_;
  }
  budget_.store(other.span_budget(), std::memory_order_relaxed);
  dropped_.store(other.dropped_spans(), std::memory_order_relaxed);
  MutexLock lock(mu_);
  origin_ = other.origin_;
  spans_ = std::move(copied);
  return *this;
}

int32_t Trace::BeginSpan(std::string name) {
  SpanRecord rec;
  rec.name = std::move(name);
  rec.thread_id = CurrentThreadId();
  // Parent comes from this thread's open-span stack; when the trace was
  // propagated here by a TaskContext the stack is seeded with the
  // submitting span as base_parent, so worker spans nest under it.
  const bool bound = t_binding.trace == this;
  rec.parent = bound ? internal::CurrentParentSpan() : -1;
  rec.start_ns = NowNs();
  int32_t idx;
  {
    MutexLock lock(mu_);
    if (spans_.size() >= budget_.load(std::memory_order_relaxed)) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return -1;
    }
    rec.depth =
        rec.parent < 0 ? 0 : spans_[size_t(rec.parent)].depth + 1;
    idx = int32_t(spans_.size());
    spans_.push_back(std::move(rec));
  }
  if (bound) t_binding.stack.push_back(idx);
  return idx;
}

void Trace::EndSpan(int32_t idx) {
  if (idx < 0) return;
  uint64_t now = NowNs();
  {
    MutexLock lock(mu_);
    if (size_t(idx) >= spans_.size()) return;
    SpanRecord& rec = spans_[size_t(idx)];
    if (!rec.open) return;
    rec.dur_ns = now - rec.start_ns;
    rec.open = false;
  }
  // Scopes close in LIFO order per thread; tolerate out-of-order closes by
  // popping through (an open parent whose child outlived it would otherwise
  // pin the stack). Only this thread's stack is touched.
  if (t_binding.trace != this) return;
  while (!t_binding.stack.empty()) {
    int32_t top = t_binding.stack.back();
    t_binding.stack.pop_back();
    if (top == idx) break;
  }
}

uint64_t Trace::TotalDurationNs() const {
  uint64_t total = 0;
  for (const SpanRecord& s : spans_)
    if (s.parent < 0) total += s.dur_ns;
  return total;
}

namespace {
std::string FmtDurUs(uint64_t ns) {
  char buf[32];
  snprintf(buf, sizeof(buf), "%.1f us", double(ns) / 1000.0);
  return buf;
}

// Depth-first order over the span forest: children grouped under their
// parent even when worker threads interleaved the append order.
void DfsOrder(const std::vector<SpanRecord>& spans,
              std::vector<size_t>* out) {
  size_t n = spans.size();
  // children[i] = indexes whose parent == i, ascending (begin order).
  std::vector<std::vector<size_t>> children(n);
  std::vector<size_t> roots;
  for (size_t i = 0; i < n; ++i) {
    int32_t p = spans[i].parent;
    if (p < 0 || size_t(p) >= n)
      roots.push_back(i);
    else
      children[size_t(p)].push_back(i);
  }
  out->reserve(n);
  std::vector<size_t> stack;
  for (size_t r = roots.size(); r > 0; --r) stack.push_back(roots[r - 1]);
  while (!stack.empty()) {
    size_t i = stack.back();
    stack.pop_back();
    out->push_back(i);
    for (size_t c = children[i].size(); c > 0; --c)
      stack.push_back(children[i][c - 1]);
  }
}
}  // namespace

std::string Trace::TreeString() const {
  std::vector<size_t> order;
  DfsOrder(spans_, &order);
  std::ostringstream os;
  for (size_t i : order) {
    const SpanRecord& s = spans_[i];
    for (int32_t d = 0; d < s.depth; ++d) os << "  ";
    os << (s.depth > 0 ? "- " : "") << s.name;
    size_t width = size_t(s.depth) * 2 + (s.depth > 0 ? 2 : 0) + s.name.size();
    for (size_t p = width; p < 40; ++p) os << ' ';
    os << " " << FmtDurUs(s.dur_ns) << " [t" << s.thread_id << "]";
    if (s.open) os << " (open)";
    os << "\n";
  }
  uint64_t dropped = dropped_spans();
  if (dropped > 0) os << "(" << dropped << " spans dropped over budget)\n";
  return os.str();
}

std::string Trace::ChromeTraceJson() const {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  for (size_t i = 0; i < spans_.size(); ++i) {
    const SpanRecord& s = spans_[i];
    if (i) os << ",";
    os << "{\"name\":" << JsonStr(s.name) << ",\"ph\":\"X\",\"ts\":"
       << double(s.start_ns) / 1000.0 << ",\"dur\":"
       << double(s.dur_ns) / 1000.0 << ",\"pid\":1,\"tid\":"
       << s.thread_id + 1 << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace statcube::obs
