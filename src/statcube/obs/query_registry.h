/// \file
/// \brief The query lifecycle control plane: a process-wide registry of
/// in-flight queries (`QueryRegistry`), the RAII scope that enrolls a query
/// for its execution (`ActiveQueryScope`), and a background watchdog
/// (`QueryWatchdog`) that flags — and optionally cancels — queries that run
/// past configured thresholds.
///
/// Why it exists: EXPLAIN PROFILE, /profiles, and /tracez (query_profile.h,
/// flight_recorder.h) only show queries *after* they finished. A stuck or
/// runaway query is invisible exactly when an operator needs to see it. The
/// registry closes that gap: QueryProfiled (query/profiled.cc) enrolls every
/// query for the duration of its execution, so /queryz can list what is
/// running right now — with live resource totals read from the query's
/// `ResourceAccumulator` mid-flight — and POST /queryz/cancel can stop it.
///
/// Cancellation model (common/cancellation.h): each registered query carries
/// a copy of its `CancellationToken` (copies share the flag), so
/// `QueryRegistry::Cancel` and the watchdog's hard limit simply cancel the
/// token; the execution loops notice at the next morsel / row-batch boundary
/// and the query returns kCancelled through the normal Status path.
///
/// Lifetime contract: the `ResourceAccumulator*` a query registers stays
/// valid until `Unregister` because `ActiveQueryScope` is destroyed before
/// the owning `ProfileScope` (declare the ProfileScope first). Mid-flight
/// snapshots of the accumulator are monotonic lower bounds (resource.h), so
/// /queryz never shows torn totals.
///
/// Layering: obs depends on common/ only — exec and query sit above, which
/// is why `CancellationToken` lives in common/cancellation.h rather than
/// exec/task_scheduler.h.

#ifndef STATCUBE_OBS_QUERY_REGISTRY_H_
#define STATCUBE_OBS_QUERY_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "statcube/common/cancellation.h"
#include "statcube/common/mutex.h"
#include "statcube/common/thread_annotations.h"
#include "statcube/obs/resource.h"

namespace statcube::obs {

/// What a query hands the registry when it starts executing. Plain data plus
/// the shared cancellation flag and a borrowed accumulator pointer.
struct ActiveQueryInfo {
  /// Canonical query text (as parsed/executed, not yet truncated).
  std::string query;
  /// Engine name as printed in profiles ("relational", "molap", ...).
  std::string engine;
  /// Result-cache mode name ("off", "on", "derive").
  std::string cache_mode;
  /// Tenant the query runs on behalf of (empty = untenanted).
  std::string tenant;
  /// Worker threads the query may use (QueryOptions::threads, resolved).
  int threads = 1;
  /// Absolute SteadyNowUs() deadline, 0 = none (for display and watchdog).
  uint64_t deadline_us = 0;
  /// The query's cancellation flag; the registry keeps a copy so an external
  /// actor can cancel after the registering thread moved on.
  CancellationToken token;
  /// Live resource accumulator, or nullptr. Borrowed: must stay valid until
  /// Unregister (see the lifetime contract in the file comment).
  const ResourceAccumulator* resources = nullptr;
};

/// Point-in-time view of one in-flight query, as served by /queryz.
struct ActiveQuerySnapshot {
  /// Registry-assigned id (monotonic from 1; the /queryz/cancel handle).
  uint64_t id = 0;
  /// Canonical query text.
  std::string query;
  /// Engine name.
  std::string engine;
  /// Result-cache mode name.
  std::string cache_mode;
  /// Tenant the query runs on behalf of (empty = untenanted).
  std::string tenant;
  /// Worker threads.
  int threads = 1;
  /// SteadyNowUs() when the query registered.
  uint64_t start_us = 0;
  /// Absolute deadline (0 = none).
  uint64_t deadline_us = 0;
  /// Wall time since registration, at snapshot time.
  uint64_t elapsed_us = 0;
  /// True once anyone cancelled the query's token.
  bool cancelled = false;
  /// Mid-flight resource totals (zeroes when no accumulator was registered).
  ResourceVector resources;

  /// JSON object with every field (elapsed CPU/bytes/morsels inlined from
  /// `resources`).
  std::string ToJson() const;
};

/// One watchdog-actionable query returned by QueryRegistry::SweepStuck.
struct StuckQuery {
  /// The query's state at sweep time.
  ActiveQuerySnapshot snapshot;
  /// True when this sweep cancelled the query (hard limit), false when it
  /// merely crossed the soft threshold and should be logged.
  bool auto_cancelled = false;
};

/// Process-wide registry of in-flight queries. All methods are safe to call
/// from any thread; Register/Unregister are O(log n) map operations on the
/// query path (a few dozen ns — measured by bench_obs's registry case), and
/// readers snapshot under the same mutex, which is uncontended at any
/// realistic query rate.
class QueryRegistry {
 public:
  /// The process-wide instance (what QueryProfiled and /queryz use).
  static QueryRegistry& Global();

  QueryRegistry() = default;
  QueryRegistry(const QueryRegistry&) = delete;             ///< Not copyable.
  QueryRegistry& operator=(const QueryRegistry&) = delete;  ///< Not copyable.

  /// Enrolls a query; returns its id (monotonic from 1). Updates the
  /// statcube.query.active gauge.
  uint64_t Register(ActiveQueryInfo info);

  /// Removes a finished query. Unknown ids are ignored (idempotent).
  void Unregister(uint64_t id);

  /// Cancels the query's token. Returns false when `id` is not in flight
  /// (already finished or never existed). Increments
  /// statcube.query.cancel_requests on success.
  bool Cancel(uint64_t id);

  /// Snapshots every in-flight query, ascending by id.
  std::vector<ActiveQuerySnapshot> Snapshot() const;

  /// Number of in-flight queries.
  size_t ActiveCount() const;

  /// JSON document for /queryz?format=json:
  /// {"now_us":N,"active":N,"queries":[...]}.
  std::string ToJson() const;

  /// The watchdog's sweep primitive (exposed on the registry so tests can
  /// drive it without a thread). Returns every query that newly crossed a
  /// threshold this sweep: past `stuck_after_us` (> 0) it is reported once
  /// with `auto_cancelled` false; past `max_query_us` (> 0) its token is
  /// cancelled and it is reported once more with `auto_cancelled` true.
  /// A threshold of 0 disables that action. Thresholds are wall time since
  /// registration.
  std::vector<StuckQuery> SweepStuck(uint64_t stuck_after_us,
                                     uint64_t max_query_us);

 private:
  // Registry entry: the caller-supplied info plus per-query watchdog state.
  struct Entry {
    ActiveQueryInfo info;
    uint64_t start_us = 0;
    bool stuck_logged = false;    // soft threshold already reported
    bool hard_cancelled = false;  // hard limit already actioned
  };

  ActiveQuerySnapshot SnapshotEntry(uint64_t id, const Entry& e,
                                    uint64_t now_us) const
      STATCUBE_REQUIRES(mu_);

  mutable Mutex mu_;
  std::map<uint64_t, Entry> queries_ STATCUBE_GUARDED_BY(mu_);
  uint64_t next_id_ STATCUBE_GUARDED_BY(mu_) = 1;
};

/// RAII enrollment of one query in QueryRegistry::Global() for the scope's
/// lifetime. Declare it *after* the ProfileScope owning the registered
/// accumulator so unregistration happens first.
class ActiveQueryScope {
 public:
  /// Registers `info` with the global registry.
  explicit ActiveQueryScope(ActiveQueryInfo info)
      : id_(QueryRegistry::Global().Register(std::move(info))) {}
  /// Unregisters the query.
  ~ActiveQueryScope() { QueryRegistry::Global().Unregister(id_); }

  ActiveQueryScope(const ActiveQueryScope&) = delete;  ///< Not copyable.
  ActiveQueryScope& operator=(const ActiveQueryScope&) =
      delete;  ///< Not copyable.

  /// The registry id assigned to this query.
  uint64_t id() const { return id_; }

 private:
  uint64_t id_;
};

/// Options for QueryWatchdog.
struct QueryWatchdogOptions {
  /// Milliseconds between sweeps (clamped to >= 10).
  int interval_ms = 1000;
  /// Soft threshold: a query in flight longer than this is logged once as a
  /// structured `stuck_query` event (0 disables).
  uint64_t stuck_after_us = 10 * 1000 * 1000;
  /// Hard limit: a query in flight longer than this is cancelled (0
  /// disables — the default; opt in via stats_server --max-query-ms).
  uint64_t max_query_us = 0;
};

/// Background thread sweeping QueryRegistry::Global() on a fixed interval,
/// in the MetricSampler mold (timeseries_ring.h): Start/Stop are idempotent,
/// and `SweepOnce` is public so tests sweep deterministically without the
/// thread. Each sweep logs one rate-limited `stuck_query` event per
/// newly-stuck query — with a profile-style resource snapshot (elapsed wall
/// and CPU microseconds, bytes, morsels) — and cancels queries past the hard
/// limit, counting statcube.query.stuck and
/// statcube.query.watchdog_cancelled.
class QueryWatchdog {
 public:
  explicit QueryWatchdog(const QueryWatchdogOptions& options = {});
  /// Stops the sweep thread if still running.
  ~QueryWatchdog();

  QueryWatchdog(const QueryWatchdog&) = delete;             ///< Not copyable.
  QueryWatchdog& operator=(const QueryWatchdog&) = delete;  ///< Not copyable.

  /// Starts the background sweep thread (idempotent).
  void Start();
  /// Stops and joins the thread (idempotent; also called by the dtor).
  void Stop();

  /// Takes one sweep now: logs newly-stuck queries, cancels past the hard
  /// limit. Returns the number of queries actioned. Called by the thread
  /// every interval; tests call it directly for determinism.
  size_t SweepOnce();

  /// Sweeps taken so far.
  uint64_t sweeps() const { return sweeps_.load(std::memory_order_acquire); }
  /// Configured sweep interval.
  int interval_ms() const { return interval_ms_; }

 private:
  void ThreadLoop();

  const int interval_ms_;
  const uint64_t stuck_after_us_;
  const uint64_t max_query_us_;

  std::atomic<uint64_t> sweeps_{0};
  std::atomic<bool> stop_{false};
  Mutex thread_mu_;  // guards thread_ start/stop
  std::thread thread_ STATCUBE_GUARDED_BY(thread_mu_);
  bool running_ STATCUBE_GUARDED_BY(thread_mu_) = false;
  Mutex wake_mu_;  // companion of wake_cv_ (the wait condition is stop_)
  CondVar wake_cv_;
};

}  // namespace statcube::obs

#endif  // STATCUBE_OBS_QUERY_REGISTRY_H_
