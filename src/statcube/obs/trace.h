// Per-query tracing: RAII `Span` scopes on a monotonic clock that build a
// span tree (parse → plan → rollup → execute → render), renderable as an
// ASCII tree or exportable as Chrome `trace_event` JSON (load chrome://tracing
// or https://ui.perfetto.dev on the output).
//
// A `Trace` is installed per-thread by `TraceScope` (usually indirectly via
// `ProfileScope`, query_profile.h); `Span` constructors attach to the current
// thread's trace. When observability is disabled or no trace is installed, a
// Span is a no-op: one relaxed load and a branch, no allocation.

#ifndef STATCUBE_OBS_TRACE_H_
#define STATCUBE_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "statcube/obs/metrics.h"

namespace statcube::obs {

/// One completed (or still-open) span. Times are nanoseconds relative to the
/// owning trace's origin.
struct SpanRecord {
  std::string name;
  int32_t parent = -1;  ///< index into the trace's span vector; -1 = root
  int32_t depth = 0;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  bool open = true;
};

/// An append-only span tree for one query (or any other unit of work).
/// Spans are stored in open order; nesting comes from an internal stack, so
/// interleaved RAII scopes on one thread reconstruct the call tree exactly.
class Trace {
 public:
  Trace() : origin_(std::chrono::steady_clock::now()) {}

  int32_t BeginSpan(std::string name);
  void EndSpan(int32_t idx);

  const std::vector<SpanRecord>& spans() const { return spans_; }

  /// Total nanoseconds covered by root spans.
  uint64_t TotalDurationNs() const;

  /// Indented ASCII tree with per-span durations.
  std::string TreeString() const;

  /// Chrome trace_event JSON ("traceEvents" array of complete "X" events).
  std::string ChromeTraceJson() const;

 private:
  uint64_t NowNs() const {
    return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - origin_)
                        .count());
  }

  std::chrono::steady_clock::time_point origin_;
  std::vector<SpanRecord> spans_;
  std::vector<int32_t> stack_;  // indexes of currently-open spans
};

/// The trace installed on this thread, or nullptr.
Trace* CurrentTrace();

/// Installs a fresh Trace as the thread's current trace for the scope's
/// lifetime (restores the previous one on exit, so scopes nest).
class TraceScope {
 public:
  TraceScope();
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  Trace& trace() { return trace_; }

 private:
  Trace trace_;
  Trace* prev_;
};

/// RAII span: attaches to the current thread's trace when observability is
/// enabled, otherwise does nothing.
class Span {
 public:
  explicit Span(const char* name) {
    if (!Enabled()) return;
    trace_ = CurrentTrace();
    if (trace_ != nullptr) idx_ = trace_->BeginSpan(name);
  }
  explicit Span(std::string name) {
    if (!Enabled()) return;
    trace_ = CurrentTrace();
    if (trace_ != nullptr) idx_ = trace_->BeginSpan(std::move(name));
  }
  ~Span() {
    if (trace_ != nullptr) trace_->EndSpan(idx_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Trace* trace_ = nullptr;
  int32_t idx_ = -1;
};

namespace internal {
// Used by TraceScope/ProfileScope to install an externally-owned trace.
Trace* SwapCurrentTrace(Trace* t);
}  // namespace internal

}  // namespace statcube::obs

#endif  // STATCUBE_OBS_TRACE_H_
