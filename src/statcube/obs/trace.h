// Per-query tracing: RAII `Span` scopes on a monotonic clock that build a
// span tree (parse → plan → rollup → execute → render), renderable as an
// ASCII tree or exportable as Chrome `trace_event` JSON (load chrome://tracing
// or https://ui.perfetto.dev on the output).
//
// A `Trace` is installed per-thread by `TraceScope` (usually indirectly via
// `ProfileScope`, query_profile.h); `Span` constructors attach to the current
// thread's trace. When observability is disabled or no trace is installed, a
// Span is a no-op: one relaxed load and a branch, no allocation.
//
// Cross-thread propagation (observability v2): a trace is no longer bound to
// a single thread. `obs::TaskContext` (resource.h) captures the current
// trace plus the innermost open span on the submitting thread; the task
// scheduler (exec/task_scheduler.h) captures one per submitted task and
// installs it on whichever thread runs the task, so worker-side spans (morsel
// batches) attach under the submitting query's span tree instead of
// vanishing. To make that safe:
//
//  * `Trace` span storage is guarded by a mutex — `BeginSpan`/`EndSpan` may
//    race across workers. Reading (`spans()`, `TreeString`, ...) is only
//    valid once the producing tasks have been joined (every TaskGroup joins
//    before its query scope ends, so completed profiles are quiescent).
//  * Span nesting is tracked per *thread* (a thread-local open-span stack
//    bound to the installed trace), seeded with the propagated parent span,
//    so interleaved scopes on each thread still reconstruct the call tree.
//  * Every span records the compact id of the thread that ran it
//    (`SpanRecord::thread_id`), so profiles show which worker did what.
//  * Spans per trace are bounded (`set_span_budget`): a query fanning out
//    into tens of thousands of morsels keeps a complete tree prefix and a
//    count of dropped spans instead of growing without bound.

#ifndef STATCUBE_OBS_TRACE_H_
#define STATCUBE_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "statcube/common/mutex.h"
#include "statcube/common/thread_annotations.h"
#include "statcube/obs/metrics.h"

namespace statcube::obs {

/// Compact process-wide id of the calling thread (assigned on first use,
/// starting at 0). Stable for the thread's lifetime; used to attribute
/// spans and CPU time to workers without exposing native handles.
uint32_t CurrentThreadId();

/// One completed (or still-open) span. Times are nanoseconds relative to the
/// owning trace's origin.
struct SpanRecord {
  std::string name;
  int32_t parent = -1;  ///< index into the trace's span vector; -1 = root
  int32_t depth = 0;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  uint32_t thread_id = 0;  ///< CurrentThreadId() of the thread that ran it
  bool open = true;
};

/// An append-only span tree for one query (or any other unit of work).
/// Spans are stored in open order; nesting comes from per-thread open-span
/// stacks (seeded by TaskContext propagation on worker threads), so
/// interleaved RAII scopes on every participating thread reconstruct the
/// call tree exactly.
///
/// Thread-safety: BeginSpan/EndSpan/counters may be called concurrently
/// from any thread the trace was propagated to. The read accessors
/// (`spans()`, `TreeString()`, `ChromeTraceJson()`, `TotalDurationNs()`)
/// require quiescence: no concurrent writers (guaranteed once the owning
/// query's task groups have joined).
class Trace {
 public:
  /// Spans retained per trace by default; see set_span_budget.
  static constexpr size_t kDefaultSpanBudget = 4096;

  Trace() : origin_(std::chrono::steady_clock::now()) {}

  /// Deep copy (locks `other`). Needed because QueryProfile values holding
  /// a Trace are copied into the flight recorder.
  Trace(const Trace& other);
  Trace& operator=(const Trace& other);

  /// Opens a span as a child of this thread's innermost open span (or of
  /// the propagated parent on a worker thread). Returns the span index, or
  /// -1 when the trace's span budget is exhausted (the drop is counted).
  int32_t BeginSpan(std::string name);
  /// Closes the span by index (no-op for -1 / already closed).
  void EndSpan(int32_t idx);

  /// The recorded spans. Only valid when no thread is concurrently writing
  /// (i.e. after the owning query joined its tasks) — hence deliberately
  /// outside the lock discipline.
  const std::vector<SpanRecord>& spans() const
      STATCUBE_NO_THREAD_SAFETY_ANALYSIS {
    return spans_;
  }

  /// Spans that BeginSpan refused because the budget was reached.
  uint64_t dropped_spans() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Caps the number of retained spans (floor 1). Affects future BeginSpan
  /// calls only; the default is kDefaultSpanBudget.
  void set_span_budget(size_t budget) {
    budget_.store(budget == 0 ? 1 : budget, std::memory_order_relaxed);
  }
  /// Current span budget.
  size_t span_budget() const {
    return budget_.load(std::memory_order_relaxed);
  }

  /// Total nanoseconds covered by root spans. Requires quiescence (see
  /// spans()).
  uint64_t TotalDurationNs() const STATCUBE_NO_THREAD_SAFETY_ANALYSIS;

  /// Indented ASCII tree with per-span durations and thread ids, in
  /// depth-first order (children under their parent regardless of global
  /// begin order). Requires quiescence (see spans()).
  std::string TreeString() const STATCUBE_NO_THREAD_SAFETY_ANALYSIS;

  /// Chrome trace_event JSON ("traceEvents" array of complete "X" events);
  /// spans land on their recording thread's tid lane. Requires quiescence
  /// (see spans()).
  std::string ChromeTraceJson() const STATCUBE_NO_THREAD_SAFETY_ANALYSIS;

 private:
  uint64_t NowNs() const {
    return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - origin_)
                        .count());
  }

  std::chrono::steady_clock::time_point origin_;
  mutable Mutex mu_;  // guards spans_ during concurrent span recording
  std::vector<SpanRecord> spans_ STATCUBE_GUARDED_BY(mu_);
  std::atomic<size_t> budget_{kDefaultSpanBudget};
  std::atomic<uint64_t> dropped_{0};
};

/// The trace installed on this thread, or nullptr.
Trace* CurrentTrace();

namespace internal {
// The per-thread binding of a trace: which trace, which propagated base
// parent, and the stack of spans this thread currently has open. Swapped
// wholesale by TraceScope / ProfileScope / TaskContextScope.
struct TraceBinding {
  Trace* trace = nullptr;
  int32_t base_parent = -1;
  std::vector<int32_t> stack;
};

// Installs `b` as this thread's binding and returns the previous one.
TraceBinding SwapTraceBinding(TraceBinding b);

// The innermost open span index on this thread (base_parent if none), or
// -1 when no trace is installed. This is what TaskContext captures.
int32_t CurrentParentSpan();
}  // namespace internal

/// Installs a fresh Trace as the thread's current trace for the scope's
/// lifetime (restores the previous one, and its open-span stack, on exit —
/// scopes nest).
class TraceScope {
 public:
  TraceScope();
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  Trace& trace() { return trace_; }

 private:
  Trace trace_;
  internal::TraceBinding prev_;
};

/// RAII span: attaches to the current thread's trace when observability is
/// enabled, otherwise does nothing.
class Span {
 public:
  explicit Span(const char* name) {
    if (!Enabled()) return;
    trace_ = CurrentTrace();
    if (trace_ != nullptr) idx_ = trace_->BeginSpan(name);
  }
  explicit Span(std::string name) {
    if (!Enabled()) return;
    trace_ = CurrentTrace();
    if (trace_ != nullptr) idx_ = trace_->BeginSpan(std::move(name));
  }
  ~Span() {
    if (trace_ != nullptr) trace_->EndSpan(idx_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Trace* trace_ = nullptr;
  int32_t idx_ = -1;
};

}  // namespace statcube::obs

#endif  // STATCUBE_OBS_TRACE_H_
