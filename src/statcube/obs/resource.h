/// \file
/// \brief Per-query resource attribution: a `ResourceVector` of everything a
/// query consumed (CPU time per worker, bytes touched, morsels, steals,
/// cache outcomes, tasks spawned), accumulated through a query-scoped
/// context that travels with the work — across the task scheduler's thread
/// boundary — instead of staying pinned to the submitting thread.
///
/// Collection model: `ProfileScope` (query_profile.h) owns a
/// `ResourceAccumulator` and installs it thread-locally next to the trace.
/// `TaskContext::Capture()` snapshots the current thread's {trace, innermost
/// open span, accumulator}; the scheduler captures one per submitted task
/// and wraps the task body in a `TaskContextScope`, so a worker executing a
/// morsel charges the *submitting query's* accumulator and attaches its
/// spans under the submitting span. All charge paths are relaxed atomic
/// adds behind the `obs::Enabled()` gate — disabled, every helper is one
/// relaxed load and a branch.
///
/// Lifetime contract: an accumulator outlives every task charging it
/// because each query joins its TaskGroups before `ProfileScope::Take()`
/// folds the totals into the profile — the same quiescence rule the trace
/// relies on (trace.h).

#ifndef STATCUBE_OBS_RESOURCE_H_
#define STATCUBE_OBS_RESOURCE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "statcube/obs/trace.h"

namespace statcube::obs {

/// What one query consumed, attributed across every thread that worked on
/// it. Plain copyable data — the atomic accumulation happens in
/// `ResourceAccumulator`; this is its folded snapshot, carried by
/// `QueryProfile` into EXPLAIN PROFILE, /profiles, and /tracez.
struct ResourceVector {
  /// Microseconds of task/morsel execution summed over all workers (wall
  /// time of each morsel body on its executing thread, so for a parallel
  /// query this exceeds the query's wall latency).
  uint64_t cpu_us = 0;
  /// Logical bytes charged by instrumented scan/aggregate sites (kernel
  /// inputs and backend block I/O).
  uint64_t bytes_touched = 0;
  /// Morsels executed on behalf of this query.
  uint64_t morsels = 0;
  /// Tasks of this query that ran on a thread other than the one whose
  /// deque they were submitted to (work-stealing migrations).
  uint64_t steals = 0;
  /// Tasks submitted to the scheduler on behalf of this query.
  uint64_t tasks_spawned = 0;
  /// Result-cache exact hits observed while this query executed.
  uint64_t cache_hits = 0;
  /// Result-cache derived (lattice roll-up) hits.
  uint64_t cache_derived_hits = 0;
  /// Result-cache lookups that found no exact entry.
  uint64_t cache_misses = 0;
  /// Per-thread CPU split: (CurrentThreadId, microseconds), ascending by
  /// thread id. Threads beyond the accumulator's slot capacity fold into
  /// the aggregate `cpu_us` only.
  std::vector<std::pair<uint32_t, uint64_t>> cpu_us_by_thread;

  /// True when nothing was charged (e.g. obs was disabled).
  bool Empty() const {
    return cpu_us == 0 && bytes_touched == 0 && morsels == 0 &&
           steals == 0 && tasks_spawned == 0 && cache_hits == 0 &&
           cache_derived_hits == 0 && cache_misses == 0;
  }

  /// One-line human-readable summary (used by QueryProfile::ToString).
  std::string ToString() const;
  /// JSON object with every field (used by QueryProfile::ToJson).
  std::string ToJson() const;
};

/// Lock-free accumulator behind one query's ResourceVector. Any thread the
/// query's context was propagated to may charge it concurrently; `Snapshot`
/// is meant for after the query joined its tasks (counters are monotonic,
/// so a mid-flight snapshot is merely a consistent-enough lower bound).
class ResourceAccumulator {
 public:
  /// Per-thread CPU attribution slots; threads with
  /// CurrentThreadId() >= kCpuSlots still charge the total.
  static constexpr size_t kCpuSlots = 64;

  ResourceAccumulator() = default;
  ResourceAccumulator(const ResourceAccumulator&) = delete;  ///< Not copyable.
  ResourceAccumulator& operator=(const ResourceAccumulator&) =
      delete;  ///< Not copyable.

  /// Adds `us` microseconds of execution on thread `thread_id`.
  void ChargeCpu(uint32_t thread_id, uint64_t us) {
    cpu_us_.fetch_add(us, std::memory_order_relaxed);
    if (thread_id < kCpuSlots) {
      per_thread_us_[thread_id].fetch_add(us, std::memory_order_relaxed);
      per_thread_used_[thread_id].store(true, std::memory_order_relaxed);
    }
  }
  /// Adds logical bytes touched.
  void ChargeBytes(uint64_t n) {
    bytes_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Counts executed morsels.
  void CountMorsels(uint64_t n = 1) {
    morsels_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Counts a task that migrated to another worker before running.
  void CountSteal() { steals_.fetch_add(1, std::memory_order_relaxed); }
  /// Counts tasks submitted on the query's behalf.
  void CountTasks(uint64_t n = 1) {
    tasks_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Counts a result-cache exact hit.
  void CountCacheHit() {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Counts a result-cache derived hit.
  void CountCacheDerived() {
    cache_derived_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Counts a result-cache miss.
  void CountCacheMiss() {
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Folds the counters into a plain ResourceVector.
  ResourceVector Snapshot() const;

 private:
  std::atomic<uint64_t> cpu_us_{0};
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> morsels_{0};
  std::atomic<uint64_t> steals_{0};
  std::atomic<uint64_t> tasks_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_derived_{0};
  std::atomic<uint64_t> cache_misses_{0};
  std::array<std::atomic<uint64_t>, kCpuSlots> per_thread_us_{};
  std::array<std::atomic<bool>, kCpuSlots> per_thread_used_{};
};

/// The accumulator charged by this thread's instrumentation sites, or
/// nullptr when no query context is installed.
ResourceAccumulator* CurrentResources();

/// Everything a unit of work needs to carry a query's observability context
/// to another thread: the trace, the span to parent worker spans under, and
/// the resource accumulator. Captured on the submitting thread, installed
/// on the executing thread via TaskContextScope.
struct TaskContext {
  Trace* trace = nullptr;             ///< destination span tree, if any
  int32_t parent_span = -1;           ///< span to parent worker spans under
  ResourceAccumulator* resources = nullptr;  ///< destination for charges

  /// Snapshot of the calling thread's context. Cheap (two thread-local
  /// reads); returns an all-null context when observability is disabled.
  static TaskContext Capture();

  /// True when there is nothing to propagate (scope install will no-op).
  bool empty() const { return trace == nullptr && resources == nullptr; }
};

/// Installs a captured TaskContext on the executing thread for one task's
/// duration: the trace is bound with `parent_span` as the base parent (so
/// spans opened here nest under the submitting span) and the accumulator
/// becomes CurrentResources(). Restores the previous bindings on exit;
/// empty contexts install nothing.
class TaskContextScope {
 public:
  /// Installs `ctx` (no-op when `ctx.empty()`).
  explicit TaskContextScope(const TaskContext& ctx);
  ~TaskContextScope();
  TaskContextScope(const TaskContextScope&) = delete;  ///< Not copyable.
  TaskContextScope& operator=(const TaskContextScope&) =
      delete;  ///< Not copyable.

 private:
  internal::TraceBinding prev_binding_;
  ResourceAccumulator* prev_res_ = nullptr;
  bool installed_ = false;
};

namespace internal {
/// Installs `r` as the thread's accumulator; returns the previous one.
ResourceAccumulator* SwapCurrentResources(ResourceAccumulator* r);
}  // namespace internal

/// Charges logical bytes to the current query (no-op when obs is disabled
/// or no context is installed). Instrumented kernels call this once per
/// input they scan.
inline void RecordBytesTouched(uint64_t bytes) {
  if (!Enabled()) return;
  if (ResourceAccumulator* r = CurrentResources()) r->ChargeBytes(bytes);
}

/// Result-cache probe outcomes, charged to the current query.
enum class CacheProbe {
  kHit,      ///< exact entry answered
  kDerived,  ///< answered by lattice roll-up of a cached superset
  kMiss      ///< no exact entry
};

/// Records a result-cache probe outcome against the current query (no-op
/// when obs is disabled or no context is installed).
inline void RecordCacheProbe(CacheProbe outcome) {
  if (!Enabled()) return;
  ResourceAccumulator* r = CurrentResources();
  if (r == nullptr) return;
  switch (outcome) {
    case CacheProbe::kHit: r->CountCacheHit(); break;
    case CacheProbe::kDerived: r->CountCacheDerived(); break;
    case CacheProbe::kMiss: r->CountCacheMiss(); break;
  }
}

}  // namespace statcube::obs

#endif  // STATCUBE_OBS_RESOURCE_H_
