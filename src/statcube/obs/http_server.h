// Embedded HTTP/1.1 stats server over raw POSIX sockets — no third-party
// dependency, because the only job is serving small text/JSON snapshots to
// scrapers and humans with curl. Architecture: one acceptor thread blocks
// in poll() on the listen socket plus a self-pipe; accepted connections go
// into a bounded queue drained by a small fixed pool of worker threads
// (serving a snapshot is cheap; the pool exists so one stalled client
// cannot block the scraper). Stop() writes the self-pipe, closes the listen
// socket, and joins every thread — safe to call from any thread, idempotent.
//
// Built-in endpoints (GET unless noted; HEAD answers headers-only):
//   /metrics         Prometheus text exposition v0.0.4 (obs/exporter.h)
//   /healthz         "ok\n", 200 — liveness for load balancers
//   /varz            JSON: uptime, request counts, MetricsRegistry snapshot
//   /profiles        flight-recorder ring as JSON, oldest first (?n= limit)
//   /profiles/<id>   one retained profile by id (404 once evicted)
//   /queryz          in-flight queries from obs::QueryRegistry, HTML by
//                    default, ?format=json for machines: per-query id,
//                    text, engine, elapsed wall/CPU, morsels, cache mode
//   POST /queryz/cancel?id=N   cancels in-flight query N (404 when it is
//                    not running; the query returns kCancelled)
//   /statusz         dependency-free HTML: uptime, build info, QPS /
//                    latency / cache-hit-rate sparklines (when a
//                    MetricSampler is wired in), pool and queue gauges,
//                    recent slow queries (with their outcome)
//   /tracez          recent trace trees from the flight recorder, HTML by
//                    default, ?format=json for machines
//
// Content types are per-endpoint: Prometheus text for /metrics,
// application/json for the JSON endpoints, text/html for /statusz and
// /tracez. Query strings are parsed strictly — a malformed pair (missing
// '=', empty key) or an unparsable numeric value is a 400, not a silent
// default. Routes are (method, path) pairs: a known path hit with the wrong
// method is a 405, an unknown path a 404. POST bodies are read when
// Content-Length announces one, bounded by max_body_bytes (oversize = 413)
// — the serve/ front door's /query endpoint consumes them; /queryz/cancel
// still takes its argument in the query string.
//
// Additional handlers can be registered before Start(). Connections are
// serviced one request each (Connection: close); a client that does not
// deliver a full request within the read timeout is dropped with 408.

#ifndef STATCUBE_OBS_HTTP_SERVER_H_
#define STATCUBE_OBS_HTTP_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "statcube/common/mutex.h"
#include "statcube/common/status.h"
#include "statcube/common/thread_annotations.h"

namespace statcube::obs {

class MetricSampler;

/// A parsed request as seen by handlers.
struct HttpRequest {
  std::string method;  ///< "GET", "HEAD", ...
  std::string path;    ///< decoded path, no query string
  std::string query;   ///< raw query string after '?', may be empty
  /// Request body, read when Content-Length says there is one. Bounded by
  /// StatsServerOptions::max_body_bytes — an oversized body is answered 413
  /// before the handler ever runs.
  std::string body;
};

/// What a handler sends back. Default: 200 text/plain empty body.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  /// Extra response headers as (name, value) pairs — e.g. Retry-After on a
  /// 429. Content-Type/Content-Length/Connection are always emitted by the
  /// server and must not be repeated here.
  std::vector<std::pair<std::string, std::string>> headers;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

struct StatsServerOptions {
  uint16_t port = 0;        ///< 0 = kernel-assigned (see StatsServer::port())
  int num_workers = 4;      ///< connection-handling threads
  int max_queued = 64;      ///< accepted-but-unserviced connection cap;
                            ///< beyond it, new connections are closed
  int read_timeout_ms = 5000;   ///< full request must arrive within this
  int write_timeout_ms = 5000;  ///< response write timeout
  /// Largest accepted request body (Content-Length and actual bytes both
  /// checked). Bigger bodies are answered 413 Payload Too Large without
  /// reading them. Headers have their own independent 8 KB cap.
  size_t max_body_bytes = 65536;
  bool register_default_endpoints = true;  ///< the endpoint table above
  /// Optional time-series source for /statusz sparklines and /tracez's
  /// sampler block. Not owned; must outlive the server. Without one,
  /// /statusz still renders uptime/build/gauges/slow-queries but no
  /// sparklines.
  MetricSampler* sampler = nullptr;
};

class StatsServer {
 public:
  explicit StatsServer(StatsServerOptions options = {});
  ~StatsServer();  // calls Stop()
  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  /// Exact-path GET handler ("/metrics") or, with `prefix = true`, a
  /// subtree handler ("/profiles/" receives every path below it). Must be
  /// called before Start(). Longest match wins; exact beats prefix. HEAD is
  /// served by the GET route, headers-only.
  void Handle(const std::string& path, HttpHandler handler,
              bool prefix = false);

  /// Like Handle but for an explicit method (e.g. "POST" for
  /// /queryz/cancel). A path registered under one method answers 405 — not
  /// 404 — to the others.
  void HandleMethod(const std::string& method, const std::string& path,
                    HttpHandler handler, bool prefix = false);

  /// Appends a custom section to the /statusz page: `html_fn` is called at
  /// render time and must return an HTML fragment (it is embedded verbatim
  /// under an <h2> with `title`, which is escaped). This is how higher
  /// layers — the serve/ front door's per-tenant table, for example — put
  /// their state on /statusz without obs/ depending on them. Must be called
  /// before Start().
  void AddStatuszSection(const std::string& title,
                         std::function<std::string()> html_fn);

  /// Binds 0.0.0.0:<port>, spawns the acceptor and workers. Fails if the
  /// port is taken or the server already runs.
  Status Start();

  /// Shuts down: stops accepting, drains queued connections with 503,
  /// joins all threads. Idempotent.
  void Stop();

  bool running() const { return running_.load(); }
  /// The bound port (useful with options.port = 0). 0 before Start().
  uint16_t port() const { return port_.load(); }
  /// Requests fully served since Start().
  uint64_t requests_served() const { return requests_served_.load(); }

 private:
  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(int fd);
  /// Renders the /statusz HTML page (sparklines come from options_.sampler).
  HttpResponse StatuszPage() const;
  /// Renders /tracez: the newest `limit` flight-recorder traces.
  static HttpResponse TracezPage(size_t limit, bool json);
  /// Renders /queryz as HTML: one row per in-flight query.
  static HttpResponse QueryzPage();

  StatsServerOptions options_;
  std::atomic<bool> running_{false};
  std::atomic<uint16_t> port_{0};
  std::atomic<uint64_t> requests_served_{0};

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  // self-pipe: Stop() wakes the acceptor
  std::thread acceptor_;
  std::vector<std::thread> workers_;

  Mutex queue_mu_;
  CondVar queue_cv_;
  /// accepted fds awaiting a worker
  std::deque<int> pending_ STATCUBE_GUARDED_BY(queue_mu_);
  bool shutting_down_ STATCUBE_GUARDED_BY(queue_mu_) = false;

  /// One registered (method, path) route.
  struct Route {
    std::string path;
    std::string method;  // "GET", "POST", ... (HEAD dispatches to GET)
    HttpHandler handler;
  };

  std::vector<Route> exact_;
  std::vector<Route> prefix_;
  /// Extra /statusz sections from higher layers, rendered in order.
  std::vector<std::pair<std::string, std::function<std::string()>>>
      statusz_sections_;
  std::chrono::steady_clock::time_point start_time_;
};

}  // namespace statcube::obs

#endif  // STATCUBE_OBS_HTTP_SERVER_H_
