#include "statcube/obs/query_registry.h"

#include <chrono>
#include <utility>

#include "statcube/obs/json.h"
#include "statcube/obs/log.h"
#include "statcube/obs/metrics.h"

namespace statcube::obs {

namespace {

Gauge& ActiveGauge() {
  static Gauge& g = MetricsRegistry::Global().GetGauge("statcube.query.active");
  return g;
}

Counter& CancelRequestsCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("statcube.query.cancel_requests");
  return c;
}

Counter& StuckCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("statcube.query.stuck");
  return c;
}

Counter& WatchdogCancelledCounter() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "statcube.query.watchdog_cancelled");
  return c;
}

}  // namespace

// ------------------------------------------------------ ActiveQuerySnapshot

std::string ActiveQuerySnapshot::ToJson() const {
  std::string out = "{";
  out += "\"id\":" + std::to_string(id);
  out += ",\"query\":" + JsonStr(query);
  out += ",\"engine\":" + JsonStr(engine);
  out += ",\"cache\":" + JsonStr(cache_mode);
  out += ",\"tenant\":" + JsonStr(tenant);
  out += ",\"threads\":" + std::to_string(threads);
  out += ",\"elapsed_us\":" + std::to_string(elapsed_us);
  out += ",\"deadline_us\":" + std::to_string(deadline_us);
  out += std::string(",\"cancelled\":") + (cancelled ? "true" : "false");
  out += ",\"cpu_us\":" + std::to_string(resources.cpu_us);
  out += ",\"bytes_touched\":" + std::to_string(resources.bytes_touched);
  out += ",\"morsels\":" + std::to_string(resources.morsels);
  out += ",\"tasks_spawned\":" + std::to_string(resources.tasks_spawned);
  out += "}";
  return out;
}

// ------------------------------------------------------------ QueryRegistry

QueryRegistry& QueryRegistry::Global() {
  static QueryRegistry* registry = new QueryRegistry();
  return *registry;
}

uint64_t QueryRegistry::Register(ActiveQueryInfo info) {
  MutexLock lock(mu_);
  uint64_t id = next_id_++;
  Entry& e = queries_[id];
  e.info = std::move(info);
  e.start_us = SteadyNowUs();
  ActiveGauge().Set(double(queries_.size()));
  return id;
}

void QueryRegistry::Unregister(uint64_t id) {
  MutexLock lock(mu_);
  queries_.erase(id);
  ActiveGauge().Set(double(queries_.size()));
}

bool QueryRegistry::Cancel(uint64_t id) {
  MutexLock lock(mu_);
  auto it = queries_.find(id);
  if (it == queries_.end()) return false;
  it->second.info.token.Cancel();
  CancelRequestsCounter().Add(1);
  return true;
}

ActiveQuerySnapshot QueryRegistry::SnapshotEntry(uint64_t id, const Entry& e,
                                                 uint64_t now_us) const {
  ActiveQuerySnapshot snap;
  snap.id = id;
  snap.query = e.info.query;
  snap.engine = e.info.engine;
  snap.cache_mode = e.info.cache_mode;
  snap.tenant = e.info.tenant;
  snap.threads = e.info.threads;
  snap.start_us = e.start_us;
  snap.deadline_us = e.info.deadline_us;
  snap.elapsed_us = now_us > e.start_us ? now_us - e.start_us : 0;
  snap.cancelled = e.info.token.cancelled();
  if (e.info.resources != nullptr)
    snap.resources = e.info.resources->Snapshot();
  return snap;
}

std::vector<ActiveQuerySnapshot> QueryRegistry::Snapshot() const {
  uint64_t now = SteadyNowUs();
  MutexLock lock(mu_);
  std::vector<ActiveQuerySnapshot> out;
  out.reserve(queries_.size());
  for (const auto& [id, e] : queries_) out.push_back(SnapshotEntry(id, e, now));
  return out;
}

size_t QueryRegistry::ActiveCount() const {
  MutexLock lock(mu_);
  return queries_.size();
}

std::string QueryRegistry::ToJson() const {
  std::vector<ActiveQuerySnapshot> snaps = Snapshot();
  std::string out = "{\"now_us\":" + std::to_string(SteadyNowUs());
  out += ",\"active\":" + std::to_string(snaps.size());
  out += ",\"queries\":[";
  for (size_t i = 0; i < snaps.size(); ++i) {
    if (i > 0) out += ",";
    out += snaps[i].ToJson();
  }
  out += "]}";
  return out;
}

std::vector<StuckQuery> QueryRegistry::SweepStuck(uint64_t stuck_after_us,
                                                  uint64_t max_query_us) {
  uint64_t now = SteadyNowUs();
  MutexLock lock(mu_);
  std::vector<StuckQuery> out;
  for (auto& [id, e] : queries_) {
    uint64_t elapsed = now > e.start_us ? now - e.start_us : 0;
    if (stuck_after_us > 0 && elapsed >= stuck_after_us && !e.stuck_logged) {
      e.stuck_logged = true;
      out.push_back({SnapshotEntry(id, e, now), /*auto_cancelled=*/false});
    }
    if (max_query_us > 0 && elapsed >= max_query_us && !e.hard_cancelled) {
      e.hard_cancelled = true;
      e.info.token.Cancel();
      out.push_back({SnapshotEntry(id, e, now), /*auto_cancelled=*/true});
    }
  }
  return out;
}

// ------------------------------------------------------------ QueryWatchdog

QueryWatchdog::QueryWatchdog(const QueryWatchdogOptions& options)
    : interval_ms_(options.interval_ms < 10 ? 10 : options.interval_ms),
      stuck_after_us_(options.stuck_after_us),
      max_query_us_(options.max_query_us) {}

QueryWatchdog::~QueryWatchdog() { Stop(); }

void QueryWatchdog::Start() {
  MutexLock lock(thread_mu_);
  if (running_) return;
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { ThreadLoop(); });
  running_ = true;
}

void QueryWatchdog::Stop() {
  MutexLock lock(thread_mu_);
  if (!running_) return;
  stop_.store(true, std::memory_order_release);
  // Empty critical section: pairs with the loop's check-then-wait under
  // wake_mu_, so the notify below cannot land in that gap and get lost.
  { MutexLock sync(wake_mu_); }
  wake_cv_.NotifyAll();
  thread_.join();
  running_ = false;
}

size_t QueryWatchdog::SweepOnce() {
  std::vector<StuckQuery> actioned =
      QueryRegistry::Global().SweepStuck(stuck_after_us_, max_query_us_);
  for (const StuckQuery& s : actioned) {
    if (s.auto_cancelled) {
      WatchdogCancelledCounter().Add(1);
    } else {
      StuckCounter().Add(1);
    }
    // One structured line per actioned query, with a profile-style resource
    // snapshot so the log alone says what the query was doing. Rate-limited
    // like every LogEvent, so a mass stall cannot flood the sink.
    LogEvent(LogLevel::kWarn, "stuck_query")
        .Int("query_id", int64_t(s.snapshot.id))
        .Str("query", s.snapshot.query)
        .Str("engine", s.snapshot.engine)
        .Int("threads", s.snapshot.threads)
        .Int("elapsed_us", int64_t(s.snapshot.elapsed_us))
        .Int("cpu_us", int64_t(s.snapshot.resources.cpu_us))
        .Int("bytes_touched", int64_t(s.snapshot.resources.bytes_touched))
        .Int("morsels", int64_t(s.snapshot.resources.morsels))
        .Str("action", s.auto_cancelled ? "cancelled" : "logged")
        .Emit();
  }
  sweeps_.fetch_add(1, std::memory_order_release);
  return actioned.size();
}

void QueryWatchdog::ThreadLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    SweepOnce();
    MutexLock wake(wake_mu_);
    if (!stop_.load(std::memory_order_acquire))
      wake_cv_.WaitFor(wake_mu_, std::chrono::milliseconds(interval_ms_));
  }
}

}  // namespace statcube::obs
