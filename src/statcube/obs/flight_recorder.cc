#include "statcube/obs/flight_recorder.h"

#include <sstream>

#include "statcube/obs/json.h"
#include "statcube/obs/log.h"

namespace statcube::obs {

std::string RecordedProfile::ToJson() const {
  std::ostringstream os;
  os << "{\"id\":" << id << ",\"query\":" << JsonStr(query)
     << ",\"latency_us\":" << latency_us
     << ",\"slow\":" << (slow ? "true" : "false")
     << ",\"profile\":" << profile.ToJson() << "}";
  return os.str();
}

namespace {
Gauge& CapacityGauge() {
  static Gauge& g = MetricsRegistry::Global().GetGauge(
      "statcube.recorder.capacity");
  return g;
}
}  // namespace

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

bool FlightRecorder::SetCapacity(size_t n) {
  if (n == 0 || n > kMaxCapacity) return false;
  MutexLock lock(mu_);
  capacity_.store(n, std::memory_order_relaxed);
  while (ring_.size() > n) ring_.pop_front();
  CapacityGauge().Set(double(n));
  return true;
}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

uint64_t FlightRecorder::Record(const QueryProfile& profile,
                                const std::string& query) {
  RecordedProfile rec;
  rec.query = query;
  rec.latency_us = profile.trace.TotalDurationNs() / 1000;
  rec.profile = profile;

  uint64_t threshold;
  {
    MutexLock lock(mu_);
    rec.id = next_id_++;
    threshold = slow_threshold_us_;
    rec.slow = threshold > 0 && rec.latency_us >= threshold;
    ring_.push_back(rec);  // copy stays for the log event below
    while (ring_.size() > capacity()) ring_.pop_front();
  }

  if (Enabled())
    MetricsRegistry::Global().GetCounter("statcube.recorder.recorded").Add(1);
  if (rec.slow) {
    if (Enabled())
      MetricsRegistry::Global().GetCounter("statcube.recorder.slow").Add(1);
    LogEvent(LogLevel::kWarn, "slow_query")
        .Int("profile_id", int64_t(rec.id))
        .Int("latency_us", int64_t(rec.latency_us))
        .Int("threshold_us", int64_t(threshold))
        .Str("backend", rec.profile.backend.empty() ? "relational"
                                                    : rec.profile.backend)
        .Int("result_rows", int64_t(rec.profile.result_rows))
        .Int("blocks_read", int64_t(rec.profile.blocks.blocks_read()))
        .Str("outcome", rec.profile.outcome.empty() ? "ok"
                                                    : rec.profile.outcome)
        .Str("query", rec.query)
        .Emit();
  }
  return rec.id;
}

std::vector<RecordedProfile> FlightRecorder::Snapshot(
    size_t limit, const std::string& tenant) const {
  MutexLock lock(mu_);
  if (tenant.empty()) {
    size_t n = ring_.size();
    size_t take = (limit == 0 || limit > n) ? n : limit;
    return std::vector<RecordedProfile>(ring_.end() - ptrdiff_t(take),
                                        ring_.end());
  }
  // Filter first, then apply the limit to the filtered sequence so the
  // caller gets "the last N of this tenant's queries".
  std::vector<RecordedProfile> matched;
  for (const RecordedProfile& rec : ring_)
    if (rec.profile.tenant == tenant) matched.push_back(rec);
  if (limit != 0 && matched.size() > limit)
    matched.erase(matched.begin(),
                  matched.end() - ptrdiff_t(limit));
  return matched;
}

std::optional<RecordedProfile> FlightRecorder::Get(uint64_t id) const {
  MutexLock lock(mu_);
  for (const RecordedProfile& rec : ring_)
    if (rec.id == id) return rec;
  return std::nullopt;
}

std::string FlightRecorder::ToJson(size_t limit,
                                   const std::string& tenant) const {
  std::vector<RecordedProfile> entries = Snapshot(limit, tenant);
  uint64_t total, threshold;
  {
    MutexLock lock(mu_);
    total = next_id_ - 1;
    threshold = slow_threshold_us_;
  }
  std::ostringstream os;
  os << "{\"capacity\":" << capacity() << ",\"recorded\":" << total
     << ",\"slow_query_threshold_us\":" << threshold << ",\"profiles\":[";
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i) os << ",";
    os << entries[i].ToJson();
  }
  os << "]}";
  return os.str();
}

uint64_t FlightRecorder::SetSlowQueryThresholdUs(uint64_t us) {
  MutexLock lock(mu_);
  uint64_t prev = slow_threshold_us_;
  slow_threshold_us_ = us;
  return prev;
}

uint64_t FlightRecorder::SlowQueryThresholdUs() const {
  MutexLock lock(mu_);
  return slow_threshold_us_;
}

uint64_t FlightRecorder::TotalRecorded() const {
  MutexLock lock(mu_);
  return next_id_ - 1;
}

void FlightRecorder::Clear() {
  MutexLock lock(mu_);
  ring_.clear();
}

}  // namespace statcube::obs
