#include "statcube/obs/query_profile.h"

#include <sstream>

#include "statcube/obs/json.h"

namespace statcube::obs {

namespace internal {

QueryProfile*& ActiveProfileSlot() {
  thread_local QueryProfile* t_active = nullptr;
  return t_active;
}

void RecordOperatorImpl(const char* op, uint64_t rows_in, uint64_t rows_out) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  std::string prefix = std::string("statcube.relational.") + op;
  reg.GetCounter(prefix + ".calls").Add(1);
  reg.GetCounter(prefix + ".rows_in").Add(rows_in);
  reg.GetCounter(prefix + ".rows_out").Add(rows_out);
  if (QueryProfile* p = ActiveProfileSlot())
    p->operators.push_back({op, rows_in, rows_out});
}

void RecordBackendImpl(const std::string& backend, uint64_t blocks,
                       uint64_t bytes) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  std::string prefix = "statcube.backend." + backend;
  reg.GetCounter(prefix + ".queries").Add(1);
  reg.GetCounter(prefix + ".blocks_read").Add(blocks);
  reg.GetCounter(prefix + ".bytes_read").Add(bytes);
  if (QueryProfile* p = ActiveProfileSlot()) {
    p->backend = backend;
    p->blocks.MergeRaw(blocks, bytes);
  }
  if (ResourceAccumulator* r = CurrentResources()) r->ChargeBytes(bytes);
}

void RecordViewStoreQueryImpl(uint32_t mask, bool hit, int64_t ancestor_mask,
                              uint64_t rows_scanned) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter(hit ? "statcube.viewstore.hits"
                     : "statcube.viewstore.misses")
      .Add(1);
  reg.GetCounter("statcube.viewstore.rows_scanned").Add(rows_scanned);
  if (QueryProfile* p = ActiveProfileSlot()) {
    p->view_events.push_back({mask, hit, ancestor_mask, rows_scanned});
    if (hit) ++p->view_hits; else ++p->view_misses;
  }
}

void RecordViewStoreRefreshImpl(uint64_t reaggregated_rows) {
  MetricsRegistry::Global()
      .GetCounter("statcube.viewstore.reagg_rows")
      .Add(reaggregated_rows);
  if (QueryProfile* p = ActiveProfileSlot())
    p->reaggregated_rows += reaggregated_rows;
}

void RecordPrivacyImpl(bool answered, bool perturbed) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter(answered ? "statcube.privacy.answered"
                          : "statcube.privacy.refused")
      .Add(1);
  if (perturbed) reg.GetCounter("statcube.privacy.perturbed").Add(1);
}

}  // namespace internal

QueryProfile* ActiveProfile() { return internal::ActiveProfileSlot(); }

ProfileScope::ProfileScope() {
  prev_profile_ = internal::ActiveProfileSlot();
  internal::ActiveProfileSlot() = &profile_;
  prev_binding_ = internal::SwapTraceBinding({&profile_.trace, -1, {}});
  prev_resources_ = internal::SwapCurrentResources(&resources_);
  if (Enabled()) root_span_ = profile_.trace.BeginSpan("query");
}

void ProfileScope::Uninstall() {
  if (!installed_) return;
  installed_ = false;
  if (root_span_ >= 0) profile_.trace.EndSpan(root_span_);
  internal::SwapCurrentResources(prev_resources_);
  internal::SwapTraceBinding(std::move(prev_binding_));
  internal::ActiveProfileSlot() = prev_profile_;
}

ProfileScope::~ProfileScope() { Uninstall(); }

QueryProfile ProfileScope::Take() {
  Uninstall();
  profile_.resources = resources_.Snapshot();
  if (Enabled()) {
    MetricsRegistry::Global()
        .GetHistogram("statcube.query.latency_us")
        .Observe(double(profile_.trace.TotalDurationNs()) / 1000.0);
  }
  return std::move(profile_);
}

size_t QueryProfile::NumPhases() const {
  // Root spans plus their direct children: the "query" root contributes its
  // phase children; a profile built without the implicit root counts roots.
  size_t n = 0;
  for (const SpanRecord& s : trace.spans())
    if (s.depth <= 1) ++n;
  return n;
}

std::string QueryProfile::ToString() const {
  std::ostringstream os;
  os << "-- query profile --\n";
  os << "backend: " << (backend.empty() ? "relational" : backend) << "\n";
  if (!cache.empty()) os << "cache: " << cache << "\n";
  if (!outcome.empty() && outcome != "ok") os << "outcome: " << outcome
                                              << "\n";
  os << "spans:\n" << trace.TreeString();
  if (!resources.Empty()) os << "resources: " << resources.ToString() << "\n";
  if (!operators.empty()) {
    os << "operators:\n";
    for (const OperatorStats& op : operators)
      os << "  " << op.op << ": rows_in=" << op.rows_in
         << " rows_out=" << op.rows_out << "\n";
  }
  os << "blocks_read=" << blocks.blocks_read()
     << " bytes_read=" << blocks.bytes_read() << "\n";
  if (!view_events.empty()) {
    os << "view_store: hits=" << view_hits << " misses=" << view_misses;
    if (reaggregated_rows > 0) os << " reagg_rows=" << reaggregated_rows;
    os << "\n";
    for (const ViewStoreEvent& e : view_events) {
      os << "  mask=" << e.mask << (e.hit ? " hit" : " miss");
      if (!e.hit)
        os << " ancestor="
           << (e.ancestor_mask < 0 ? std::string("base")
                                   : std::to_string(e.ancestor_mask));
      os << " rows_scanned=" << e.rows_scanned << "\n";
    }
  }
  os << "result_rows=" << result_rows << "\n";
  return os.str();
}

std::string QueryProfile::ToJson() const {
  std::ostringstream os;
  os << "{\"backend\":"
     << JsonStr(backend.empty() ? std::string("relational") : backend)
     << ",\"cache\":" << JsonStr(cache.empty() ? std::string("off") : cache)
     << ",\"outcome\":"
     << JsonStr(outcome.empty() ? std::string("ok") : outcome)
     << ",\"tenant\":" << JsonStr(tenant) << ",\"spans\":[";
  const auto& spans = trace.spans();
  for (size_t i = 0; i < spans.size(); ++i) {
    if (i) os << ",";
    os << "{\"name\":" << JsonStr(spans[i].name)
       << ",\"parent\":" << spans[i].parent
       << ",\"start_us\":" << double(spans[i].start_ns) / 1000.0
       << ",\"dur_us\":" << double(spans[i].dur_ns) / 1000.0
       << ",\"thread\":" << spans[i].thread_id << "}";
  }
  os << "],\"dropped_spans\":" << trace.dropped_spans()
     << ",\"resources\":" << resources.ToJson() << ",\"operators\":[";
  for (size_t i = 0; i < operators.size(); ++i) {
    if (i) os << ",";
    os << "{\"op\":" << JsonStr(operators[i].op)
       << ",\"rows_in\":" << operators[i].rows_in
       << ",\"rows_out\":" << operators[i].rows_out << "}";
  }
  os << "],\"blocks_read\":" << blocks.blocks_read()
     << ",\"bytes_read\":" << blocks.bytes_read()
     << ",\"view_hits\":" << view_hits << ",\"view_misses\":" << view_misses
     << ",\"reaggregated_rows\":" << reaggregated_rows
     << ",\"result_rows\":" << result_rows << "}";
  return os.str();
}

}  // namespace statcube::obs
