/// \file
/// \brief Fixed-interval time series over the metrics registry: a
/// `MetricSampler` thread snapshots selected counters, gauges, and
/// histograms every tick into fixed-size `TimeSeriesRing`s, turning
/// monotonic counters into rates (QPS) and cumulative histograms into
/// sliding-window percentiles (p50/p95/p99 over the last N ticks) — the
/// data behind /statusz's sparklines.
///
/// Memory model: every ring is allocated at registration; a tick pushes
/// into preallocated atomic slots and reuses preallocated scratch buffers,
/// so steady-state sampling performs no allocation. Readers (HTTP scrape
/// threads) snapshot rings without blocking the sampler: slots are
/// `std::atomic<double>` (tear-free by construction) and a before/after
/// read of the push count discards any slot the single writer may have
/// overwritten mid-snapshot.

#ifndef STATCUBE_OBS_TIMESERIES_RING_H_
#define STATCUBE_OBS_TIMESERIES_RING_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "statcube/common/mutex.h"
#include "statcube/common/thread_annotations.h"

namespace statcube::obs {

/// A fixed-capacity ring of doubles with one writer (the sampler) and any
/// number of lock-free readers. `Push` overwrites the oldest value once
/// full; `Snapshot` returns the retained values oldest-first, dropping any
/// entry the writer may have overwritten while the snapshot was being
/// taken (so a reader never sees a torn or half-rotated window).
class TimeSeriesRing {
 public:
  /// `capacity` is clamped to at least 1. All slots are allocated here.
  explicit TimeSeriesRing(size_t capacity)
      : slots_(capacity == 0 ? 1 : capacity) {}

  TimeSeriesRing(const TimeSeriesRing&) = delete;             ///< Not copyable.
  TimeSeriesRing& operator=(const TimeSeriesRing&) = delete;  ///< Not copyable.

  /// Appends `v`, overwriting the oldest value when full. Single writer.
  void Push(double v) {
    uint64_t c = count_.load(std::memory_order_relaxed);
    slots_[size_t(c % slots_.size())].store(v, std::memory_order_release);
    count_.store(c + 1, std::memory_order_release);
  }

  /// Slots allocated (the window length).
  size_t capacity() const { return slots_.size(); }
  /// Total values ever pushed (not capped by capacity).
  uint64_t count() const { return count_.load(std::memory_order_acquire); }
  /// The most recently pushed value, or 0 before the first push.
  double Last() const {
    uint64_t c = count_.load(std::memory_order_acquire);
    if (c == 0) return 0.0;
    return slots_[size_t((c - 1) % slots_.size())].load(
        std::memory_order_acquire);
  }

  /// The retained values, oldest first. Safe against a concurrent writer:
  /// entries overwritten during the copy are dropped from the front.
  std::vector<double> Snapshot() const;

 private:
  std::vector<std::atomic<double>> slots_;
  std::atomic<uint64_t> count_{0};
};

/// Options for MetricSampler.
struct MetricSamplerOptions {
  /// Milliseconds between ticks (clamped to >= 10).
  int interval_ms = 1000;
  /// Samples retained per series ring.
  size_t ring_capacity = 120;
  /// Ticks per sliding percentile window (clamped to ring_capacity).
  size_t percentile_window = 30;
};

/// Samples registered metrics on a fixed interval from a background
/// thread. Register the series (and call Start) before handing the sampler
/// to readers; `SampleOnce` is exposed so tests can tick deterministically
/// without the thread.
///
/// Series naming: a counter rate for metric `m` is published as `m.rate`
/// (per second); a gauge keeps its name; a histogram `m` publishes
/// `m.p50` / `m.p95` / `m.p99` computed over the sliding window (bucket
/// deltas between the newest and oldest retained cumulative snapshot,
/// interpolated exactly like Histogram::Percentile); a ratio series uses
/// the name it was registered under (per-tick delta(numerator) /
/// delta(denominators), e.g. cache hit rate).
class MetricSampler {
 public:
  explicit MetricSampler(const MetricSamplerOptions& options = {});
  /// Stops the sampling thread if still running.
  ~MetricSampler();

  MetricSampler(const MetricSampler&) = delete;             ///< Not copyable.
  MetricSampler& operator=(const MetricSampler&) = delete;  ///< Not copyable.

  /// Publishes `<metric>.rate`: per-second delta of the counter.
  void AddCounterRate(const std::string& metric);
  /// Publishes `name`: delta(numerator) / sum(delta(denominators)) per
  /// tick, 0 when the denominator delta is 0. The numerator metric does
  /// not need to appear among the denominators.
  void AddCounterRatio(const std::string& name, const std::string& numerator,
                       const std::vector<std::string>& denominators);
  /// Publishes the gauge's instantaneous value under its own name.
  void AddGauge(const std::string& metric);
  /// Publishes `<metric>.p50/.p95/.p99` over the sliding window.
  void AddHistogramWindow(const std::string& metric);
  /// Registers the series /statusz renders: query rate, sliding query
  /// latency percentiles, cache hit rate, scheduler queue depth and pool
  /// size, task/morsel rates, and the vectorized-kernel row rate.
  void AddDefaultStatuszSeries();

  /// Starts the background sampling thread (idempotent).
  void Start();
  /// Stops and joins the thread (idempotent; also called by the dtor).
  void Stop();

  /// Takes one sample tick now. Called by the thread every interval; tests
  /// call it directly for determinism. Must not race itself.
  void SampleOnce();

  /// Ticks taken so far.
  uint64_t samples() const { return ticks_.load(std::memory_order_acquire); }
  /// Configured tick interval.
  int interval_ms() const { return interval_ms_; }
  /// Configured sliding-window length in ticks.
  size_t window() const { return window_; }

  /// Snapshot of every series, oldest first, sorted by name.
  std::vector<std::pair<std::string, std::vector<double>>> SnapshotAll() const;
  /// Snapshot of one series (empty when unknown).
  std::vector<double> Series(const std::string& name) const;
  /// JSON object: interval_ms, window, samples, and a "series" object
  /// mapping each name to its value array.
  std::string ToJson() const;

 private:
  struct CounterRateSeries;
  struct RatioSeries;
  struct GaugeSeries;
  struct HistogramSeries;

  void ThreadLoop();

  const int interval_ms_;
  const size_t capacity_;
  const size_t window_;

  mutable Mutex mu_;  // guards the series lists (rings are lock-free)
  std::vector<std::unique_ptr<CounterRateSeries>> counter_series_
      STATCUBE_GUARDED_BY(mu_);
  std::vector<std::unique_ptr<RatioSeries>> ratio_series_
      STATCUBE_GUARDED_BY(mu_);
  std::vector<std::unique_ptr<GaugeSeries>> gauge_series_
      STATCUBE_GUARDED_BY(mu_);
  std::vector<std::unique_ptr<HistogramSeries>> histogram_series_
      STATCUBE_GUARDED_BY(mu_);

  std::atomic<uint64_t> ticks_{0};
  uint64_t last_tick_ns_ = 0;  // SampleOnce-caller only (the sampler thread)
  std::atomic<bool> stop_{false};
  Mutex thread_mu_;  // guards thread_ start/stop
  std::thread thread_ STATCUBE_GUARDED_BY(thread_mu_);
  bool running_ STATCUBE_GUARDED_BY(thread_mu_) = false;
  Mutex wake_mu_;    // companion of wake_cv_ (wait condition is stop_)
  CondVar wake_cv_;
};

}  // namespace statcube::obs

#endif  // STATCUBE_OBS_TIMESERIES_RING_H_
