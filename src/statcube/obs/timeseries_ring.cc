#include "statcube/obs/timeseries_ring.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <sstream>
#include <utility>

#include "statcube/obs/json.h"
#include "statcube/obs/metrics.h"

namespace statcube::obs {

std::vector<double> TimeSeriesRing::Snapshot() const {
  const size_t cap = slots_.size();
  const uint64_t end = count_.load(std::memory_order_acquire);
  const uint64_t begin = end > cap ? end - cap : 0;
  std::vector<double> out;
  out.reserve(size_t(end - begin));
  for (uint64_t i = begin; i < end; ++i)
    out.push_back(slots_[size_t(i % cap)].load(std::memory_order_acquire));
  // Anything the writer rotated past while we copied is suspect: the slot
  // for logical index i may now hold a newer value. Drop those from the
  // front — the window shrinks instead of tearing.
  const uint64_t end2 = count_.load(std::memory_order_acquire);
  const uint64_t new_begin = end2 > cap ? end2 - cap : 0;
  const uint64_t overwritten = new_begin > begin ? new_begin - begin : 0;
  if (overwritten >= out.size()) return {};
  out.erase(out.begin(), out.begin() + size_t(overwritten));
  return out;
}

namespace {

uint64_t NowNs() {
  return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count());
}

// Percentile over per-bucket (non-cumulative) counts with the same
// interpolation as Histogram::Percentile, so a full-history window matches
// the histogram's own estimate.
double PercentileFromBuckets(const std::vector<double>& bounds,
                             const std::vector<uint64_t>& counts, double q) {
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  uint64_t rank = uint64_t(q * double(total));
  if (rank < 1) rank = 1;
  uint64_t cum = 0;
  for (size_t i = 0; i < bounds.size(); ++i) {
    uint64_t in_bucket = counts[i];
    if (cum + in_bucket >= rank) {
      double lo = i == 0 ? 0.0 : bounds[i - 1];
      double hi = bounds[i];
      if (in_bucket == 0) return hi;
      return lo + (hi - lo) * double(rank - cum) / double(in_bucket);
    }
    cum += in_bucket;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

}  // namespace

struct MetricSampler::CounterRateSeries {
  std::string name;  // "<metric>.rate"
  Counter* counter;
  uint64_t prev = 0;
  TimeSeriesRing ring;
  CounterRateSeries(std::string n, Counter* c, size_t cap)
      : name(std::move(n)), counter(c), ring(cap) {}
};

struct MetricSampler::RatioSeries {
  std::string name;
  Counter* numerator;
  std::vector<Counter*> denominators;
  uint64_t prev_numer = 0;
  std::vector<uint64_t> prev_denoms;
  TimeSeriesRing ring;
  RatioSeries(std::string n, Counter* num, std::vector<Counter*> den,
              size_t cap)
      : name(std::move(n)),
        numerator(num),
        denominators(std::move(den)),
        prev_denoms(denominators.size(), 0),
        ring(cap) {}
};

struct MetricSampler::GaugeSeries {
  std::string name;
  Gauge* gauge;
  TimeSeriesRing ring;
  GaugeSeries(std::string n, Gauge* g, size_t cap)
      : name(std::move(n)), gauge(g), ring(cap) {}
};

struct MetricSampler::HistogramSeries {
  std::string name;  // base metric name
  Histogram* hist;
  size_t nbuckets;              // bounds.size() + 1 (overflow)
  size_t nframes_retained;      // window + 1 cumulative snapshots
  std::vector<uint64_t> frames; // ring of per-bucket snapshots, sampler-only
  uint64_t frames_pushed = 0;
  uint64_t prev_total = 0;
  std::vector<uint64_t> scratch;  // bucket deltas, reused every tick
  TimeSeriesRing rate;  // "<name>.rate": observations per second
  TimeSeriesRing p50;
  TimeSeriesRing p95;
  TimeSeriesRing p99;
  HistogramSeries(std::string n, Histogram* h, size_t window, size_t cap)
      : name(std::move(n)),
        hist(h),
        nbuckets(h->bounds().size() + 1),
        nframes_retained(window + 1),
        frames(nbuckets * nframes_retained, 0),
        scratch(nbuckets, 0),
        rate(cap),
        p50(cap),
        p95(cap),
        p99(cap) {}
};

MetricSampler::MetricSampler(const MetricSamplerOptions& options)
    : interval_ms_(std::max(10, options.interval_ms)),
      capacity_(std::max<size_t>(1, options.ring_capacity)),
      window_(std::max<size_t>(
          1, std::min(options.percentile_window, capacity_))) {}

MetricSampler::~MetricSampler() { Stop(); }

void MetricSampler::AddCounterRate(const std::string& metric) {
  Counter& c = MetricsRegistry::Global().GetCounter(metric);
  MutexLock lock(mu_);
  counter_series_.push_back(std::make_unique<CounterRateSeries>(
      metric + ".rate", &c, capacity_));
}

void MetricSampler::AddCounterRatio(
    const std::string& name, const std::string& numerator,
    const std::vector<std::string>& denominators) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter& num = reg.GetCounter(numerator);
  std::vector<Counter*> den;
  den.reserve(denominators.size());
  for (const std::string& d : denominators) den.push_back(&reg.GetCounter(d));
  MutexLock lock(mu_);
  ratio_series_.push_back(
      std::make_unique<RatioSeries>(name, &num, std::move(den), capacity_));
}

void MetricSampler::AddGauge(const std::string& metric) {
  Gauge& g = MetricsRegistry::Global().GetGauge(metric);
  MutexLock lock(mu_);
  gauge_series_.push_back(
      std::make_unique<GaugeSeries>(metric, &g, capacity_));
}

void MetricSampler::AddHistogramWindow(const std::string& metric) {
  Histogram& h = MetricsRegistry::Global().GetHistogram(metric);
  MutexLock lock(mu_);
  histogram_series_.push_back(
      std::make_unique<HistogramSeries>(metric, &h, window_, capacity_));
}

void MetricSampler::AddDefaultStatuszSeries() {
  AddHistogramWindow("statcube.query.latency_us");  // QPS + sliding p50/95/99
  AddCounterRatio("statcube.cache.hit_rate", "statcube.cache.hits",
                  {"statcube.cache.hits", "statcube.cache.misses"});
  AddCounterRate("statcube.exec.tasks");
  AddCounterRate("statcube.exec.morsels");
  AddCounterRate("statcube.exec.vec.rows");  // vectorized group-by throughput
  AddGauge("statcube.exec.queue_depth");
  AddGauge("statcube.exec.pool_size");
}

void MetricSampler::SampleOnce() {
  // dt from the previous tick; the first tick assumes one interval.
  uint64_t now = NowNs();
  uint64_t prev = last_tick_ns_;
  last_tick_ns_ = now;
  double dt_s = prev == 0 ? double(interval_ms_) / 1000.0
                          : double(now - prev) / 1e9;
  if (dt_s <= 0) dt_s = double(interval_ms_) / 1000.0;

  MutexLock lock(mu_);
  for (auto& s : counter_series_) {
    uint64_t v = s->counter->Value();
    uint64_t delta = v >= s->prev ? v - s->prev : 0;
    s->prev = v;
    s->ring.Push(double(delta) / dt_s);
  }
  for (auto& s : ratio_series_) {
    uint64_t nv = s->numerator->Value();
    uint64_t dn = nv >= s->prev_numer ? nv - s->prev_numer : 0;
    s->prev_numer = nv;
    uint64_t dd = 0;
    for (size_t i = 0; i < s->denominators.size(); ++i) {
      uint64_t v = s->denominators[i]->Value();
      dd += v >= s->prev_denoms[i] ? v - s->prev_denoms[i] : 0;
      s->prev_denoms[i] = v;
    }
    s->ring.Push(dd == 0 ? 0.0 : double(dn) / double(dd));
  }
  for (auto& s : gauge_series_) s->ring.Push(s->gauge->Value());
  for (auto& s : histogram_series_) {
    // Snapshot per-bucket counts into this tick's frame.
    uint64_t* frame =
        &s->frames[size_t(s->frames_pushed % s->nframes_retained) *
                   s->nbuckets];
    for (size_t i = 0; i < s->nbuckets; ++i) frame[i] = s->hist->BucketCount(i);
    // Window baseline: the slot the NEXT tick will overwrite — it holds the
    // frame from exactly `window` ticks ago, or the all-zero initial state
    // during the first `window` ticks (so early ticks diff against zero
    // instead of against themselves).
    const uint64_t* oldest =
        &s->frames[size_t((s->frames_pushed + 1) % s->nframes_retained) *
                   s->nbuckets];
    for (size_t i = 0; i < s->nbuckets; ++i)
      s->scratch[i] = frame[i] >= oldest[i] ? frame[i] - oldest[i] : 0;
    ++s->frames_pushed;

    uint64_t total = s->hist->TotalCount();
    uint64_t delta = total >= s->prev_total ? total - s->prev_total : 0;
    s->prev_total = total;
    s->rate.Push(double(delta) / dt_s);
    const std::vector<double>& bounds = s->hist->bounds();
    s->p50.Push(PercentileFromBuckets(bounds, s->scratch, 0.50));
    s->p95.Push(PercentileFromBuckets(bounds, s->scratch, 0.95));
    s->p99.Push(PercentileFromBuckets(bounds, s->scratch, 0.99));
  }
  ticks_.fetch_add(1, std::memory_order_release);
}

void MetricSampler::Start() {
  MutexLock lock(thread_mu_);
  if (running_) return;
  stop_.store(false, std::memory_order_release);
  running_ = true;
  thread_ = std::thread([this] { ThreadLoop(); });
}

void MetricSampler::Stop() {
  MutexLock lock(thread_mu_);
  if (!running_) return;
  stop_.store(true, std::memory_order_release);
  // Empty critical section: pairs with the loop's check-then-wait under
  // wake_mu_, so the notify below cannot land in that gap and get lost.
  { MutexLock sync(wake_mu_); }
  wake_cv_.NotifyAll();
  thread_.join();
  running_ = false;
}

void MetricSampler::ThreadLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    SampleOnce();
    MutexLock lock(wake_mu_);
    if (!stop_.load(std::memory_order_acquire))
      wake_cv_.WaitFor(wake_mu_, std::chrono::milliseconds(interval_ms_));
  }
}

std::vector<std::pair<std::string, std::vector<double>>>
MetricSampler::SnapshotAll() const {
  std::map<std::string, std::vector<double>> by_name;
  {
    MutexLock lock(mu_);
    for (const auto& s : counter_series_)
      by_name[s->name] = s->ring.Snapshot();
    for (const auto& s : ratio_series_) by_name[s->name] = s->ring.Snapshot();
    for (const auto& s : gauge_series_) by_name[s->name] = s->ring.Snapshot();
    for (const auto& s : histogram_series_) {
      by_name[s->name + ".rate"] = s->rate.Snapshot();
      by_name[s->name + ".p50"] = s->p50.Snapshot();
      by_name[s->name + ".p95"] = s->p95.Snapshot();
      by_name[s->name + ".p99"] = s->p99.Snapshot();
    }
  }
  std::vector<std::pair<std::string, std::vector<double>>> out;
  out.reserve(by_name.size());
  for (auto& [name, values] : by_name)
    out.emplace_back(name, std::move(values));
  return out;
}

std::vector<double> MetricSampler::Series(const std::string& name) const {
  MutexLock lock(mu_);
  for (const auto& s : counter_series_)
    if (s->name == name) return s->ring.Snapshot();
  for (const auto& s : ratio_series_)
    if (s->name == name) return s->ring.Snapshot();
  for (const auto& s : gauge_series_)
    if (s->name == name) return s->ring.Snapshot();
  for (const auto& s : histogram_series_) {
    if (name == s->name + ".rate") return s->rate.Snapshot();
    if (name == s->name + ".p50") return s->p50.Snapshot();
    if (name == s->name + ".p95") return s->p95.Snapshot();
    if (name == s->name + ".p99") return s->p99.Snapshot();
  }
  return {};
}

std::string MetricSampler::ToJson() const {
  std::ostringstream os;
  os << "{\"interval_ms\":" << interval_ms_ << ",\"window\":" << window_
     << ",\"samples\":" << samples() << ",\"series\":{";
  bool first = true;
  for (const auto& [name, values] : SnapshotAll()) {
    if (!first) os << ",";
    first = false;
    os << JsonStr(name) << ":[";
    for (size_t i = 0; i < values.size(); ++i) {
      if (i) os << ",";
      os << values[i];
    }
    os << "]";
  }
  os << "}}";
  return os.str();
}

}  // namespace statcube::obs
