#include "statcube/materialize/lattice.h"

#include <unordered_set>

#include "statcube/common/str_util.h"

namespace statcube {

Lattice::Lattice(std::vector<std::string> dims,
                 std::vector<uint64_t> view_sizes)
    : dims_(std::move(dims)), view_sizes_(std::move(view_sizes)) {}

Result<Lattice> Lattice::FromTable(const Table& table,
                                   const std::vector<std::string>& dims) {
  if (dims.size() > 16)
    return Status::InvalidArgument("lattice over >16 dimensions refused");
  STATCUBE_ASSIGN_OR_RETURN(std::vector<size_t> idx,
                            table.schema().IndexesOf(dims));
  size_t n = dims.size();
  std::vector<uint64_t> sizes(size_t{1} << n, 0);
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    std::unordered_set<Row, RowHash, RowEq> distinct;
    Row key;
    for (const Row& r : table.rows()) {
      key.clear();
      for (size_t d = 0; d < n; ++d)
        if (mask & (1u << d)) key.push_back(r[idx[d]]);
      distinct.insert(key);
    }
    sizes[mask] = distinct.size();
  }
  return Lattice(dims, std::move(sizes));
}

Lattice Lattice::FromCardinalities(std::vector<std::string> dims,
                                   const std::vector<uint64_t>& cardinalities,
                                   uint64_t total_rows) {
  size_t n = dims.size();
  std::vector<uint64_t> sizes(size_t{1} << n, 1);
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    uint64_t prod = 1;
    for (size_t d = 0; d < n; ++d)
      if (mask & (1u << d)) prod *= cardinalities[d];
    sizes[mask] = prod < total_rows ? prod : total_rows;
  }
  return Lattice(std::move(dims), std::move(sizes));
}

uint64_t Lattice::QueryCost(uint32_t query,
                            const std::vector<uint32_t>& materialized) const {
  uint64_t best = size(top());  // the top view is always available
  for (uint32_t m : materialized)
    if (DerivableFrom(query, m) && size(m) < best) best = size(m);
  return best;
}

uint64_t Lattice::TotalCost(const std::vector<uint32_t>& materialized) const {
  uint64_t total = 0;
  for (uint32_t q = 0; q < num_views(); ++q)
    total += QueryCost(q, materialized);
  return total;
}

uint64_t Lattice::Benefit(const std::vector<uint32_t>& materialized) const {
  return TotalCost({}) - TotalCost(materialized);
}

std::string Lattice::ViewName(uint32_t mask) const {
  std::vector<std::string> members;
  for (size_t d = 0; d < dims_.size(); ++d)
    if (mask & (1u << d)) members.push_back(dims_[d]);
  if (members.empty()) return "{()}";
  return "{" + Join(members, ", ") + "}";
}

}  // namespace statcube
