#include "statcube/materialize/view_store.h"

#include <algorithm>

#include "statcube/common/mutex.h"
#include "statcube/exec/task_scheduler.h"
#include "statcube/materialize/lattice.h"
#include "statcube/obs/query_profile.h"

namespace statcube {

Result<MaterializedCubeStore> MaterializedCubeStore::Create(
    Table base, std::vector<std::string> dims, std::vector<AggSpec> aggs) {
  STATCUBE_RETURN_NOT_OK(base.schema().IndexesOf(dims).status());
  if (dims.size() > 16)
    return Status::InvalidArgument("cube store over >16 dimensions refused");
  for (const auto& a : aggs) {
    switch (a.fn) {
      case AggFn::kSum:
      case AggFn::kCount:
      case AggFn::kCountAll:
      case AggFn::kMin:
      case AggFn::kMax:
        break;
      default:
        return Status::InvalidArgument(
            std::string("aggregate '") + AggFnName(a.fn) +
            "' is not distributive; views could not be re-aggregated");
    }
  }
  return MaterializedCubeStore(std::move(base), std::move(dims),
                               std::move(aggs));
}

std::vector<std::string> MaterializedCubeStore::DimsOf(uint32_t mask) const {
  std::vector<std::string> out;
  for (size_t d = 0; d < dims_.size(); ++d)
    if (mask & (1u << d)) out.push_back(dims_[d]);
  return out;
}

int64_t MaterializedCubeStore::CheapestAncestor(uint32_t mask) const {
  int64_t best = -1;
  uint64_t best_size = base_.num_rows();
  for (const auto& [m, view] : views_) {
    if (Lattice::DerivableFrom(mask, m) && view.num_rows() <= best_size) {
      best = m;
      best_size = view.num_rows();
    }
  }
  return best;
}

Result<Table> MaterializedCubeStore::AggregateFrom(const Table& src,
                                                   uint32_t src_mask,
                                                   uint32_t mask) const {
  (void)src_mask;
  std::vector<AggSpec> combine;
  for (const auto& a : aggs_) {
    AggFn fn = a.fn;
    // Counts combine by summation; min/max by themselves; sums by sums.
    if (fn == AggFn::kCount || fn == AggFn::kCountAll) fn = AggFn::kSum;
    combine.push_back({fn, a.EffectiveName(), a.EffectiveName()});
  }
  return GroupBy(src, DimsOf(mask), combine);
}

Status MaterializedCubeStore::Materialize(uint32_t mask) {
  obs::Span span("viewstore.materialize");
  if (mask >= (uint32_t(1) << dims_.size()))
    return Status::OutOfRange("view mask");
  if (views_.count(mask)) return Status::OK();
  int64_t anc = CheapestAncestor(mask);
  Table view;
  if (anc < 0) {
    STATCUBE_ASSIGN_OR_RETURN(view, GroupBy(base_, DimsOf(mask), aggs_));
  } else {
    STATCUBE_ASSIGN_OR_RETURN(
        view, AggregateFrom(views_.at(uint32_t(anc)), uint32_t(anc), mask));
  }
  views_.emplace(mask, std::move(view));
  return Status::OK();
}

Status MaterializedCubeStore::MaterializeAll(
    const std::vector<uint32_t>& masks, int threads) {
  obs::Span span("viewstore.materialize_all");
  std::vector<uint32_t> todo;
  for (uint32_t mask : masks) {
    if (mask >= (uint32_t(1) << dims_.size()))
      return Status::OutOfRange("view mask");
    if (!views_.count(mask)) todo.push_back(mask);
  }
  std::sort(todo.begin(), todo.end(), [](uint32_t a, uint32_t b) {
    int pa = __builtin_popcount(a), pb = __builtin_popcount(b);
    return pa != pb ? pa > pb : a < b;
  });
  todo.erase(std::unique(todo.begin(), todo.end()), todo.end());

  exec::ParallelForOptions loop;
  loop.label = "viewstore_materialize";
  loop.max_workers = threads <= 0 ? exec::DefaultThreads() : threads;
  loop.morsel_size = 1;  // one view per task

  // Build one popcount level at a time: within a level no view derives from
  // another, so CheapestAncestor and the source views are stable reads.
  for (size_t lo = 0; lo < todo.size();) {
    size_t hi = lo + 1;
    while (hi < todo.size() && __builtin_popcount(todo[hi]) ==
                                   __builtin_popcount(todo[lo]))
      ++hi;
    std::vector<Table> built(hi - lo);
    Mutex err_mu;
    Status first_error = Status::OK();
    exec::ParallelFor(
        hi - lo,
        [&](size_t, size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            uint32_t mask = todo[lo + i];
            int64_t anc = CheapestAncestor(mask);
            Result<Table> view =
                anc < 0 ? GroupBy(base_, DimsOf(mask), aggs_)
                        : AggregateFrom(views_.at(uint32_t(anc)),
                                        uint32_t(anc), mask);
            if (!view.ok()) {
              MutexLock lock(err_mu);
              if (first_error.ok()) first_error = view.status();
              return;
            }
            built[i] = std::move(view).value();
          }
        },
        loop);
    if (!first_error.ok()) return first_error;
    for (size_t i = 0; i < built.size(); ++i)
      views_.emplace(todo[lo + i], std::move(built[i]));
    lo = hi;
  }
  return Status::OK();
}

Result<Table> MaterializedCubeStore::Query(uint32_t mask) {
  obs::Span span("viewstore.query");
  if (mask >= (uint32_t(1) << dims_.size()))
    return Status::OutOfRange("view mask");
  auto it = views_.find(mask);
  if (it != views_.end()) {
    last_rows_scanned_ = it->second.num_rows();
    obs::RecordViewStoreQuery(mask, /*hit=*/true, int64_t(mask),
                              last_rows_scanned_);
    return it->second;
  }
  int64_t anc = CheapestAncestor(mask);
  if (anc < 0) {
    last_rows_scanned_ = base_.num_rows();
    obs::RecordViewStoreQuery(mask, /*hit=*/false, /*ancestor_mask=*/-1,
                              last_rows_scanned_);
    return GroupBy(base_, DimsOf(mask), aggs_);
  }
  last_rows_scanned_ = views_.at(uint32_t(anc)).num_rows();
  obs::RecordViewStoreQuery(mask, /*hit=*/false, anc, last_rows_scanned_);
  return AggregateFrom(views_.at(uint32_t(anc)), uint32_t(anc), mask);
}

Result<uint64_t> MaterializedCubeStore::AppendAndRefresh(
    const std::vector<Row>& new_rows) {
  // Stage the delta as a table and validate arity up front.
  Table delta("delta", base_.schema());
  for (const Row& r : new_rows) STATCUBE_RETURN_NOT_OK(delta.AppendRow(r));

  uint64_t reaggregated = 0;
  for (auto& [mask, view] : views_) {
    // Aggregate the delta at this view's grouping...
    STATCUBE_ASSIGN_OR_RETURN(Table delta_view,
                              GroupBy(delta, DimsOf(mask), aggs_));
    reaggregated += delta.num_rows();
    // ... and merge into the stored view: distributive aggregates combine
    // group-wise (count -> sum, min/max -> min/max, sum -> sum).
    size_t ngroup = DimsOf(mask).size();
    // Index existing view rows by group key.
    std::unordered_map<Row, size_t, RowHash, RowEq> index;
    for (size_t i = 0; i < view.num_rows(); ++i) {
      Row key(view.row(i).begin(), view.row(i).begin() + long(ngroup));
      index.emplace(std::move(key), i);
    }
    for (const Row& dr : delta_view.rows()) {
      Row key(dr.begin(), dr.begin() + long(ngroup));
      auto it = index.find(key);
      if (it == index.end()) {
        view.AppendRowUnchecked(dr);
        continue;
      }
      Row& target = view.mutable_rows()[it->second];
      for (size_t a = 0; a < aggs_.size(); ++a) {
        size_t col = ngroup + a;
        const Value& add = dr[col];
        if (add.is_null()) continue;
        if (target[col].is_null()) {
          target[col] = add;
          continue;
        }
        switch (aggs_[a].fn) {
          case AggFn::kSum:
          case AggFn::kCount:
          case AggFn::kCountAll:
            target[col] = Value(target[col].AsDouble() + add.AsDouble());
            break;
          case AggFn::kMin:
            if (add.AsDouble() < target[col].AsDouble()) target[col] = add;
            break;
          case AggFn::kMax:
            if (add.AsDouble() > target[col].AsDouble()) target[col] = add;
            break;
          default:
            return Status::Internal("non-distributive aggregate in store");
        }
      }
    }
    // Keep deterministic order for comparisons.
    STATCUBE_RETURN_NOT_OK(view.SortBy(DimsOf(mask)));
  }
  // Finally append to the base.
  for (const Row& r : new_rows) base_.AppendRowUnchecked(r);
  obs::RecordViewStoreRefresh(reaggregated);
  return reaggregated;
}

uint64_t MaterializedCubeStore::materialized_rows() const {
  uint64_t n = 0;
  for (const auto& [m, view] : views_) n += view.num_rows();
  return n;
}

std::vector<uint32_t> MaterializedCubeStore::materialized_masks() const {
  std::vector<uint32_t> out;
  for (const auto& [m, view] : views_) out.push_back(m);
  return out;
}

}  // namespace statcube
