#include "statcube/materialize/greedy.h"

#include "statcube/exec/task_scheduler.h"

namespace statcube {

namespace {

ViewSelection Finish(const Lattice& lattice, std::vector<uint32_t> views) {
  ViewSelection out;
  out.benefit = lattice.Benefit(views);
  out.total_cost = lattice.TotalCost(views);
  for (uint32_t v : views) out.space_rows += lattice.size(v);
  out.views = std::move(views);
  return out;
}

}  // namespace

ViewSelection GreedySelect(const Lattice& lattice, size_t k) {
  std::vector<uint32_t> chosen;
  uint64_t current = lattice.TotalCost({});
  for (size_t pick = 0; pick < k; ++pick) {
    int best_view = -1;
    uint64_t best_cost = current;
    for (uint32_t v = 0; v < lattice.num_views(); ++v) {
      if (v == lattice.top()) continue;
      bool already = false;
      for (uint32_t c : chosen) already |= (c == v);
      if (already) continue;
      std::vector<uint32_t> trial = chosen;
      trial.push_back(v);
      uint64_t cost = lattice.TotalCost(trial);
      if (cost < best_cost) {
        best_cost = cost;
        best_view = static_cast<int>(v);
      }
    }
    if (best_view < 0) break;  // no view helps any more
    chosen.push_back(static_cast<uint32_t>(best_view));
    current = best_cost;
  }
  return Finish(lattice, std::move(chosen));
}

ViewSelection GreedySelectParallel(const Lattice& lattice, size_t k,
                                   int threads) {
  std::vector<uint32_t> chosen;
  uint64_t current = lattice.TotalCost({});
  exec::ParallelForOptions loop;
  loop.label = "greedy_candidates";
  loop.max_workers = threads <= 0 ? exec::DefaultThreads() : threads;
  loop.morsel_size = 4;  // TotalCost is O(num_views * |set|): tiny morsels

  for (size_t pick = 0; pick < k; ++pick) {
    size_t ncand = lattice.num_views();
    // Per-morsel argmin over candidate costs (TotalCost is a pure read of
    // the lattice), combined in ascending morsel order with a strict `<`
    // both times — the same lowest-index tie-break the serial loop has.
    size_t nmorsels = (ncand + loop.morsel_size - 1) / loop.morsel_size;
    std::vector<int> best_views(nmorsels, -1);
    std::vector<uint64_t> best_costs(nmorsels, current);
    exec::ParallelFor(
        ncand,
        [&](size_t m, size_t begin, size_t end) {
          for (size_t v = begin; v < end; ++v) {
            if (uint32_t(v) == lattice.top()) continue;
            bool already = false;
            for (uint32_t c : chosen) already |= (c == uint32_t(v));
            if (already) continue;
            std::vector<uint32_t> trial = chosen;
            trial.push_back(uint32_t(v));
            uint64_t cost = lattice.TotalCost(trial);
            if (cost < best_costs[m]) {
              best_costs[m] = cost;
              best_views[m] = int(v);
            }
          }
        },
        loop);
    int best_view = -1;
    uint64_t best_cost = current;
    for (size_t m = 0; m < nmorsels; ++m) {
      if (best_views[m] >= 0 && best_costs[m] < best_cost) {
        best_cost = best_costs[m];
        best_view = best_views[m];
      }
    }
    if (best_view < 0) break;  // no view helps any more
    chosen.push_back(static_cast<uint32_t>(best_view));
    current = best_cost;
  }
  return Finish(lattice, std::move(chosen));
}

Result<ViewSelection> OptimalSelect(const Lattice& lattice, size_t k) {
  size_t nviews = lattice.num_views();
  if (nviews > 20)
    return Status::InvalidArgument(
        "exhaustive selection over >20 views refused");
  // Enumerate k-subsets of the non-top views.
  std::vector<uint32_t> candidates;
  for (uint32_t v = 0; v < nviews; ++v)
    if (v != lattice.top()) candidates.push_back(v);
  if (k > candidates.size()) k = candidates.size();

  std::vector<uint32_t> best;
  uint64_t best_cost = lattice.TotalCost({});
  std::vector<uint32_t> current;
  // Recursive combination enumeration.
  struct Rec {
    const Lattice& lattice;
    const std::vector<uint32_t>& candidates;
    size_t k;
    std::vector<uint32_t>& current;
    std::vector<uint32_t>& best;
    uint64_t& best_cost;
    void Run(size_t start) {
      if (current.size() == k) {
        uint64_t cost = lattice.TotalCost(current);
        if (cost < best_cost) {
          best_cost = cost;
          best = current;
        }
        return;
      }
      for (size_t i = start; i < candidates.size(); ++i) {
        current.push_back(candidates[i]);
        Run(i + 1);
        current.pop_back();
      }
    }
  };
  Rec rec{lattice, candidates, k, current, best, best_cost};
  rec.Run(0);
  return Finish(lattice, std::move(best));
}

ViewSelection GreedySelectWithBudget(const Lattice& lattice,
                                     uint64_t space_row_budget) {
  std::vector<uint32_t> chosen;
  uint64_t used = 0;
  uint64_t current = lattice.TotalCost({});
  while (true) {
    int best_view = -1;
    double best_rate = 0.0;
    uint64_t best_cost = current;
    for (uint32_t v = 0; v < lattice.num_views(); ++v) {
      if (v == lattice.top()) continue;
      bool already = false;
      for (uint32_t c : chosen) already |= (c == v);
      if (already) continue;
      uint64_t sz = lattice.size(v);
      if (sz == 0 || used + sz > space_row_budget) continue;
      std::vector<uint32_t> trial = chosen;
      trial.push_back(v);
      uint64_t cost = lattice.TotalCost(trial);
      double rate = double(current - cost) / double(sz);
      if (rate > best_rate) {
        best_rate = rate;
        best_view = static_cast<int>(v);
        best_cost = cost;
      }
    }
    if (best_view < 0) break;
    chosen.push_back(static_cast<uint32_t>(best_view));
    used += lattice.size(static_cast<uint32_t>(best_view));
    current = best_cost;
  }
  return Finish(lattice, std::move(chosen));
}

}  // namespace statcube
