// Greedy view selection ([HUR96], paper §6.3): given space for k extra
// views, repeatedly materialize the view with the largest marginal benefit.
// [HUR96] proves the greedy benefit is at least (1 - 1/e) ≈ 63% of optimal;
// the tests check greedy == optimal on small lattices and the bound in
// general.

#ifndef STATCUBE_MATERIALIZE_GREEDY_H_
#define STATCUBE_MATERIALIZE_GREEDY_H_

#include <cstdint>
#include <vector>

#include "statcube/common/status.h"
#include "statcube/materialize/lattice.h"

namespace statcube {

/// Outcome of a selection run.
struct ViewSelection {
  std::vector<uint32_t> views;  ///< chosen views, in pick order
  uint64_t benefit = 0;         ///< total cost reduction vs. top-only
  uint64_t total_cost = 0;      ///< TotalCost with the chosen set
  uint64_t space_rows = 0;      ///< extra rows stored by the chosen views
};

/// Greedily picks `k` views (beyond the always-materialized top view).
ViewSelection GreedySelect(const Lattice& lattice, size_t k);

/// GreedySelect with each pick round's candidate costs evaluated
/// concurrently (`threads` workers; 0 = exec::DefaultThreads()). The argmin
/// keeps the lowest-index candidate on ties, exactly like the serial scan,
/// so the selection is identical.
ViewSelection GreedySelectParallel(const Lattice& lattice, size_t k,
                                   int threads = 0);

/// Exhaustive optimum over all k-subsets (exponential; for tests/benches on
/// small lattices only).
Result<ViewSelection> OptimalSelect(const Lattice& lattice, size_t k);

/// Greedy under a row budget instead of a view count: keep picking the
/// highest benefit-per-row view that still fits.
ViewSelection GreedySelectWithBudget(const Lattice& lattice,
                                     uint64_t space_row_budget);

}  // namespace statcube

#endif  // STATCUBE_MATERIALIZE_GREEDY_H_
