/// \file
/// \brief A store of materialized group-by views that answers aggregate
/// queries from the cheapest materialized ancestor (paper §6.3): the
/// run-time counterpart of the lattice/greedy analysis.
///
/// Only distributive aggregates (sum, count, min, max) can be
/// re-aggregated from a view, which is what the store accepts.

#ifndef STATCUBE_MATERIALIZE_VIEW_STORE_H_
#define STATCUBE_MATERIALIZE_VIEW_STORE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "statcube/common/status.h"
#include "statcube/relational/aggregate.h"
#include "statcube/relational/table.h"

namespace statcube {

/// Materialized-view store over one base table.
class MaterializedCubeStore {
 public:
  /// `dims` are the cube dimensions (columns of `base`); `aggs` the
  /// distributive aggregates every view carries.
  static Result<MaterializedCubeStore> Create(Table base,
                                              std::vector<std::string> dims,
                                              std::vector<AggSpec> aggs);

  /// Materializes the view for `mask` (bit i = dims[i] grouped). Computed
  /// from the smallest already-materialized ancestor — materializing the
  /// whole lattice this way is itself the simultaneous-cube optimization.
  Status Materialize(uint32_t mask);

  /// Materializes every view in `masks` with `threads` workers (0 =
  /// exec::DefaultThreads()). Views build level-synchronously by descending
  /// popcount: views within one level are never ancestors of each other, so
  /// they build concurrently from the levels already stored — the result is
  /// the same as serial Materialize calls in (popcount desc, mask asc)
  /// order.
  Status MaterializeAll(const std::vector<uint32_t>& masks, int threads = 0);

  /// Answers the group-by at `mask` from the smallest materialized ancestor
  /// (or the base table). Sets last_rows_scanned() to the ancestor's size —
  /// the [HUR96] linear cost actually paid.
  Result<Table> Query(uint32_t mask);

  /// Appends rows to the base table and *incrementally* folds them into
  /// every materialized view (distributive aggregates merge, so only the
  /// delta is aggregated — the §6.5 daily-append case without recomputing
  /// any view). Returns the rows re-aggregated (delta size × views), which
  /// the bench compares against full recomputation.
  Result<uint64_t> AppendAndRefresh(const std::vector<Row>& new_rows);

  /// Rows scanned by the last Query call.
  uint64_t last_rows_scanned() const { return last_rows_scanned_; }

  /// Extra rows stored by materialized views (excluding the base).
  uint64_t materialized_rows() const;

  /// Which views are materialized.
  std::vector<uint32_t> materialized_masks() const;

  /// Number of cube dimensions (mask width).
  size_t num_dims() const { return dims_.size(); }

 private:
  MaterializedCubeStore(Table base, std::vector<std::string> dims,
                        std::vector<AggSpec> aggs)
      : base_(std::move(base)), dims_(std::move(dims)), aggs_(std::move(aggs)) {}

  // Dimension-name list for a mask.
  std::vector<std::string> DimsOf(uint32_t mask) const;
  // Smallest materialized strict ancestor of mask, or -1 for the base.
  int64_t CheapestAncestor(uint32_t mask) const;
  // Aggregates `src` (a view at `src_mask`) down to `mask`.
  Result<Table> AggregateFrom(const Table& src, uint32_t src_mask,
                              uint32_t mask) const;

  Table base_;
  std::vector<std::string> dims_;
  std::vector<AggSpec> aggs_;
  std::map<uint32_t, Table> views_;
  uint64_t last_rows_scanned_ = 0;
};

}  // namespace statcube

#endif  // STATCUBE_MATERIALIZE_VIEW_STORE_H_
