// The view-materialization lattice of [HUR96] (paper §6.3, Figure 22).
//
// Each of the 2^n group-bys over n dimensions is a view, identified by a
// dimension bitmask. View u is derivable from view v iff u's dimensions are
// a subset of v's (the "lines between the items" of Figure 22). Under the
// linear cost model of [HUR96], answering a query on view u from a
// materialized ancestor v costs |v| rows; the benefit of materializing a set
// is the total cost reduction against answering everything from the top
// view.

#ifndef STATCUBE_MATERIALIZE_LATTICE_H_
#define STATCUBE_MATERIALIZE_LATTICE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "statcube/common/status.h"
#include "statcube/relational/table.h"

namespace statcube {

/// The cube lattice with per-view sizes.
class Lattice {
 public:
  /// `view_sizes` has 2^|dims| entries indexed by dimension bitmask.
  Lattice(std::vector<std::string> dims, std::vector<uint64_t> view_sizes);

  /// Builds the lattice with *exact* view sizes by counting distinct
  /// dimension-value combinations in `table` for every subset. Exponential
  /// in |dims|; fine for the n <= ~12 the technique targets.
  static Result<Lattice> FromTable(const Table& table,
                                   const std::vector<std::string>& dims);

  /// Builds the lattice with *estimated* sizes: |v| = min(prod of member
  /// cardinalities, total_rows) — the standard independence estimate.
  static Lattice FromCardinalities(std::vector<std::string> dims,
                                   const std::vector<uint64_t>& cardinalities,
                                   uint64_t total_rows);

  size_t num_dims() const { return dims_.size(); }
  const std::vector<std::string>& dims() const { return dims_; }
  uint32_t top() const {
    return num_dims() == 0 ? 0 : ((1u << num_dims()) - 1);
  }
  size_t num_views() const { return view_sizes_.size(); }

  /// Rows in view `mask`.
  uint64_t size(uint32_t mask) const { return view_sizes_[mask]; }

  /// True if `query` can be answered from `view` (query dims ⊆ view dims).
  static bool DerivableFrom(uint32_t query, uint32_t view) {
    return (query & view) == query;
  }

  /// Cost of answering `query` given `materialized` views (the top view is
  /// always implicitly available): the size of the smallest materialized
  /// ancestor.
  uint64_t QueryCost(uint32_t query,
                     const std::vector<uint32_t>& materialized) const;

  /// Sum of QueryCost over all 2^n views (all queries equally likely, as
  /// [HUR96] assumes).
  uint64_t TotalCost(const std::vector<uint32_t>& materialized) const;

  /// The benefit of a materialized set: TotalCost({}) - TotalCost(set).
  uint64_t Benefit(const std::vector<uint32_t>& materialized) const;

  /// Human-readable name of a view ("{product, location}").
  std::string ViewName(uint32_t mask) const;

 private:
  std::vector<std::string> dims_;
  std::vector<uint64_t> view_sizes_;
};

}  // namespace statcube

#endif  // STATCUBE_MATERIALIZE_LATTICE_H_
