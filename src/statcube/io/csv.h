// CSV + metadata-sidecar interchange (paper §5.6): the paper concludes that
// data management systems and statistical packages "will continue their
// independent existence. Therefore, clean interfaces between them is the key
// to future integration". This module is that clean interface: a statistical
// object round-trips through a CSV body (the macro-data) plus a plain-text
// metadata header carrying exactly what a bare CSV loses — which columns are
// category vs summary attributes, measure types/units/functions, dimension
// kinds, and classification hierarchies.

#ifndef STATCUBE_IO_CSV_H_
#define STATCUBE_IO_CSV_H_

#include <string>

#include "statcube/common/status.h"
#include "statcube/core/statistical_object.h"
#include "statcube/relational/table.h"

namespace statcube {

/// Serializes a table as RFC-4180-ish CSV (header row; quotes doubled;
/// fields with commas/quotes/newlines quoted; NULL as empty, ALL as the
/// reserved word ALL).
std::string WriteCsv(const Table& table);

/// Parses CSV into a table. All columns are typed kString except values that
/// parse fully as integers/doubles; empty fields become NULL; "ALL" becomes
/// the ALL pseudo-value.
Result<Table> ReadCsv(const std::string& csv, const std::string& table_name);

/// Serializes the object: a "# statcube-object v1" metadata block (the
/// semantics a statistical package needs) followed by the CSV body.
std::string ExportObject(const StatisticalObject& obj);

/// Reconstructs an object from ExportObject's output, including dimensions,
/// kinds, measures, and classification hierarchies.
Result<StatisticalObject> ImportObject(const std::string& text);

}  // namespace statcube

#endif  // STATCUBE_IO_CSV_H_
