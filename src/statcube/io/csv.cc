#include "statcube/io/csv.h"

#include <cstdlib>
#include <map>
#include <sstream>

#include "statcube/common/str_util.h"

namespace statcube {

namespace {

// Strings are always quoted (so the reader can tell "1996" the string from
// 1996 the number); numbers, ALL and NULL (empty) are never quoted.
std::string FieldFor(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return "";
    case ValueType::kAll:
      return "ALL";
    case ValueType::kInt64:
    case ValueType::kDouble:
      return v.ToString();
    case ValueType::kString: {
      std::string out = "\"";
      for (char c : v.AsString()) {
        if (c == '"') out += '"';
        out += c;
      }
      out += '"';
      return out;
    }
  }
  return "";
}

// Splits one CSV record (no embedded newlines supported in this format).
Result<std::vector<std::pair<std::string, bool>>> SplitRecord(
    const std::string& line) {
  std::vector<std::pair<std::string, bool>> fields;  // (text, was_quoted)
  std::string cur;
  bool quoted = false, in_quotes = false;
  size_t i = 0;
  auto push = [&] {
    fields.emplace_back(cur, quoted);
    cur.clear();
    quoted = false;
  };
  while (i < line.size()) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
      quoted = true;
    } else if (c == ',') {
      push();
    } else {
      cur += c;
    }
    ++i;
  }
  if (in_quotes) return Status::InvalidArgument("unterminated quote in CSV");
  push();
  return fields;
}

Value ValueFor(const std::string& text, bool was_quoted) {
  if (was_quoted) return Value(text);
  if (text.empty()) return Value::Null();
  if (text == "ALL") return Value::All();
  // Full-string numeric parse.
  char* end = nullptr;
  long long ll = strtoll(text.c_str(), &end, 10);
  if (end && *end == '\0') return Value(int64_t(ll));
  end = nullptr;
  double d = strtod(text.c_str(), &end);
  if (end && *end == '\0') return Value(d);
  return Value(text);
}

std::string EscapeField(const std::string& s) {
  return FieldFor(Value(s));
}

}  // namespace

std::string WriteCsv(const Table& table) {
  std::string out;
  std::vector<std::string> header;
  for (const auto& c : table.schema().columns())
    header.push_back(EscapeField(c.name));
  out += Join(header, ",") + "\n";
  for (const Row& r : table.rows()) {
    std::vector<std::string> fields;
    for (const Value& v : r) fields.push_back(FieldFor(v));
    out += Join(fields, ",") + "\n";
  }
  return out;
}

Result<Table> ReadCsv(const std::string& csv, const std::string& table_name) {
  std::istringstream in(csv);
  std::string line;
  if (!std::getline(in, line))
    return Status::InvalidArgument("CSV has no header row");
  STATCUBE_ASSIGN_OR_RETURN(auto header, SplitRecord(line));
  Schema schema;
  for (const auto& [name, q] : header) schema.AddColumn(name, ValueType::kString);
  Table out(table_name, schema);
  size_t lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    STATCUBE_ASSIGN_OR_RETURN(auto fields, SplitRecord(line));
    if (fields.size() != header.size())
      return Status::InvalidArgument("CSV line " + std::to_string(lineno) +
                                     " has " + std::to_string(fields.size()) +
                                     " fields, expected " +
                                     std::to_string(header.size()));
    Row row;
    for (const auto& [text, quoted] : fields)
      row.push_back(ValueFor(text, quoted));
    out.AppendRowUnchecked(std::move(row));
  }
  return out;
}

namespace {

const char* KindName(DimensionKind k) { return DimensionKindName(k); }

Result<DimensionKind> KindFromName(const std::string& n) {
  if (n == "categorical") return DimensionKind::kCategorical;
  if (n == "temporal") return DimensionKind::kTemporal;
  if (n == "spatial") return DimensionKind::kSpatial;
  return Status::InvalidArgument("unknown dimension kind '" + n + "'");
}

Result<MeasureType> MeasureTypeFromName(const std::string& n) {
  if (n == "flow") return MeasureType::kFlow;
  if (n == "stock") return MeasureType::kStock;
  if (n == "value-per-unit") return MeasureType::kValuePerUnit;
  return Status::InvalidArgument("unknown measure type '" + n + "'");
}

Result<AggFn> AggFromName(const std::string& n) {
  for (AggFn f : {AggFn::kCount, AggFn::kCountAll, AggFn::kSum, AggFn::kAvg,
                  AggFn::kMin, AggFn::kMax, AggFn::kVariance, AggFn::kStdDev})
    if (n == AggFnName(f)) return f;
  return Status::InvalidArgument("unknown aggregate '" + n + "'");
}

}  // namespace

std::string ExportObject(const StatisticalObject& obj) {
  std::string out = "# statcube-object v1\n";
  out += "# name," + EscapeField(obj.name()) + "\n";
  for (const auto& d : obj.dimensions())
    out += "# dimension," + EscapeField(d.name()) + "," +
           KindName(d.kind()) + "\n";
  for (const auto& m : obj.measures())
    out += "# measure," + EscapeField(m.name) + "," + EscapeField(m.unit) +
           "," + MeasureTypeName(m.type) + "," + AggFnName(m.default_fn) +
           "," + EscapeField(m.weight_measure) + "\n";
  for (const auto& d : obj.dimensions()) {
    for (const auto& h : d.hierarchies()) {
      std::vector<std::string> levels;
      for (const auto& l : h.levels()) levels.push_back(EscapeField(l));
      out += "# hierarchy," + EscapeField(d.name()) + "," +
             EscapeField(h.name()) + "," + std::to_string(h.id_dependent()) +
             "," + Join(levels, ",") + "\n";
      for (size_t l = 0; l + 1 < h.num_levels(); ++l) {
        for (const Value& child : h.ValuesAt(l)) {
          for (const Value& parent : h.Parents(l, child)) {
            out += "# link," + EscapeField(h.name()) + "," +
                   std::to_string(l) + "," + FieldFor(child) + "," +
                   FieldFor(parent) + "\n";
          }
        }
        for (const auto& m : obj.measures()) {
          if (h.IsDeclaredComplete(l, m.name)) {
            out += "# complete," + EscapeField(h.name()) + "," +
                   std::to_string(l) + "," + EscapeField(m.name) + "\n";
          }
        }
      }
    }
  }
  out += "# end\n";
  out += WriteCsv(obj.data());
  return out;
}

Result<StatisticalObject> ImportObject(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "# statcube-object v1")
    return Status::InvalidArgument("missing statcube-object header");

  StatisticalObject obj;
  std::vector<Dimension> dims;
  std::vector<SummaryMeasure> measures;
  // hierarchy name -> (dimension index, hierarchy object)
  std::map<std::string, std::pair<size_t, ClassificationHierarchy>> hiers;
  std::string name = "imported";

  while (std::getline(in, line)) {
    if (line == "# end") break;
    if (line.rfind("# ", 0) != 0)
      return Status::InvalidArgument("malformed metadata line: " + line);
    STATCUBE_ASSIGN_OR_RETURN(auto fields, SplitRecord(line.substr(2)));
    const std::string& tag = fields[0].first;
    auto text_at = [&](size_t i) { return fields[i].first; };
    if (tag == "name") {
      name = text_at(1);
    } else if (tag == "dimension") {
      STATCUBE_ASSIGN_OR_RETURN(DimensionKind kind, KindFromName(text_at(2)));
      dims.emplace_back(text_at(1), kind);
    } else if (tag == "measure") {
      SummaryMeasure m;
      m.name = text_at(1);
      m.unit = text_at(2);
      STATCUBE_ASSIGN_OR_RETURN(m.type, MeasureTypeFromName(text_at(3)));
      STATCUBE_ASSIGN_OR_RETURN(m.default_fn, AggFromName(text_at(4)));
      m.weight_measure = text_at(5);
      measures.push_back(std::move(m));
    } else if (tag == "hierarchy") {
      const std::string& dim_name = text_at(1);
      size_t didx = dims.size();
      for (size_t i = 0; i < dims.size(); ++i)
        if (dims[i].name() == dim_name) didx = i;
      if (didx == dims.size())
        return Status::InvalidArgument("hierarchy on unknown dimension '" +
                                       dim_name + "'");
      std::vector<std::string> levels;
      for (size_t i = 4; i < fields.size(); ++i) levels.push_back(text_at(i));
      ClassificationHierarchy h(text_at(2), levels);
      h.set_id_dependent(text_at(3) == "1");
      hiers.emplace(text_at(2), std::make_pair(didx, std::move(h)));
    } else if (tag == "link") {
      auto it = hiers.find(text_at(1));
      if (it == hiers.end())
        return Status::InvalidArgument("link for unknown hierarchy");
      size_t level = size_t(std::stoul(text_at(2)));
      STATCUBE_RETURN_NOT_OK(it->second.second.Link(
          level, ValueFor(fields[3].first, fields[3].second),
          ValueFor(fields[4].first, fields[4].second)));
    } else if (tag == "complete") {
      auto it = hiers.find(text_at(1));
      if (it == hiers.end())
        return Status::InvalidArgument("complete for unknown hierarchy");
      it->second.second.DeclareComplete(size_t(std::stoul(text_at(2))),
                                        text_at(3));
    } else {
      return Status::InvalidArgument("unknown metadata tag '" + tag + "'");
    }
  }

  // Attach hierarchies and assemble the object.
  for (auto& [hname, entry] : hiers)
    dims[entry.first].AddHierarchy(std::move(entry.second));
  obj = StatisticalObject(name);
  for (auto& d : dims) STATCUBE_RETURN_NOT_OK(obj.AddDimension(std::move(d)));
  for (auto& m : measures) STATCUBE_RETURN_NOT_OK(obj.AddMeasure(m));

  // CSV body.
  std::string body((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  STATCUBE_ASSIGN_OR_RETURN(Table data, ReadCsv(body, name));
  size_t nd = obj.dimensions().size();
  size_t nm = obj.measures().size();
  if (data.num_columns() != nd + nm)
    return Status::InvalidArgument("CSV body arity does not match metadata");
  for (const Row& r : data.rows()) {
    Row coord(r.begin(), r.begin() + long(nd));
    Row mv(r.begin() + long(nd), r.end());
    STATCUBE_RETURN_NOT_OK(obj.AddCell(coord, mv));
  }
  return obj;
}

}  // namespace statcube
