#include "statcube/exec/parallel_kernels.h"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "statcube/common/mutex.h"
#include "statcube/common/str_util.h"
#include "statcube/common/vec_block.h"
#include "statcube/exec/vec_kernels.h"
#include "statcube/obs/metrics.h"
#include "statcube/obs/query_profile.h"
#include "statcube/obs/resource.h"
#include "statcube/relational/cube_operator.h"

namespace statcube::exec {

namespace vec = ::statcube::vec;

namespace {

size_t NumMorsels(size_t n, size_t morsel) {
  return n == 0 ? 0 : (n + morsel - 1) / morsel;
}

ParallelForOptions LoopOptions(const char* label, const ExecOptions& options) {
  ParallelForOptions loop;
  loop.label = label;
  loop.morsel_size = options.morsel_rows == 0 ? kDefaultMorselRows
                                              : options.morsel_rows;
  loop.max_workers = options.EffectiveThreads();
  loop.scheduler = options.scheduler;
  loop.stop = options.stop;
  return loop;
}

// The stop state after a kernel's loops ran: kNone means every morsel was
// claimed and completed (monotonicity — a stop that fired during the loop is
// still visible here), anything else means the kernel must discard its
// partial output and report the stop.
StopReason StopAfter(const ExecOptions& options) {
  return options.stop == nullptr ? StopReason::kNone : options.stop->Check();
}

// Folds `src` into `dst`. Called in ascending morsel order, so the sequence
// of inserts and AggState::Merge calls is a pure function of the input —
// the iteration order of each (deterministically built) partial map is
// itself deterministic for a fixed standard library.
void MergeGroupedStates(GroupedStates* dst, GroupedStates* src) {
  if (dst->empty()) {
    *dst = std::move(*src);
    return;
  }
  for (auto& [key, st] : *src) {
    auto it = dst->find(key);
    if (it == dst->end()) {
      dst->emplace(key, std::move(st));
    } else {
      for (size_t i = 0; i < st.size(); ++i) it->second[i].Merge(st[i]);
    }
  }
}

}  // namespace

Table ParallelSelect(const Table& input, const RowPredicate& pred,
                     const ExecOptions& options) {
  obs::Span span("op.select");
  // ByteSize walks every cell — compute it only when someone is counting.
  if (obs::Enabled()) obs::RecordBytesTouched(input.ByteSize());
  ParallelForOptions loop = LoopOptions("select", options);
  size_t n = input.num_rows();
  std::vector<std::vector<Row>> parts(NumMorsels(n, loop.morsel_size));

  ParallelFor(
      n,
      [&](size_t m, size_t begin, size_t end) {
        std::vector<Row>& out = parts[m];
        for (size_t r = begin; r < end; ++r)
          if (pred(input.row(r))) out.push_back(input.row(r));
      },
      loop);

  Table out(input.name() + "_sel", input.schema());
  for (std::vector<Row>& part : parts)
    for (Row& row : part) out.AppendRowUnchecked(std::move(row));
  obs::RecordOperator("select", input.num_rows(), out.num_rows());
  return out;
}

Result<GroupedStates> ParallelGroupByStates(
    const Table& input, const std::vector<std::string>& group_cols,
    const std::vector<AggSpec>& aggs, const ExecOptions& options) {
  // Vectorized route: the radix kernel either answers (bit-identical to the
  // serial scan) or declines with Unimplemented when the input exceeds its
  // 32-bit row indexes — then the scalar morsel path below serves as the
  // fallback. Real errors (bad columns, stop) propagate unchanged.
  if (options.vectorized) {
    Result<GroupedStates> r =
        VectorizedGroupByStates(input, group_cols, aggs, options);
    if (r.ok() || r.status().code() != StatusCode::kUnimplemented) return r;
    if (obs::Enabled())
      obs::MetricsRegistry::Global()
          .GetCounter("statcube.exec.vec.fallbacks")
          .Add(1);
  }

  // Resolve columns up front (exactly as GroupByStates) so every error
  // surfaces before any task is spawned.
  STATCUBE_ASSIGN_OR_RETURN(std::vector<size_t> gidx,
                            input.schema().IndexesOf(group_cols));
  std::vector<int64_t> aidx(aggs.size(), -1);
  for (size_t i = 0; i < aggs.size(); ++i) {
    if (aggs[i].fn == AggFn::kCountAll && aggs[i].column.empty()) continue;
    STATCUBE_ASSIGN_OR_RETURN(size_t idx,
                              input.schema().IndexOf(aggs[i].column));
    aidx[i] = static_cast<int64_t>(idx);
  }

  // ByteSize walks every cell — compute it only when someone is counting.
  if (obs::Enabled()) obs::RecordBytesTouched(input.ByteSize());
  ParallelForOptions loop = LoopOptions("groupby", options);
  size_t n = input.num_rows();
  std::vector<GroupedStates> parts(NumMorsels(n, loop.morsel_size));

  ParallelFor(
      n,
      [&](size_t m, size_t begin, size_t end) {
        GroupedStates& states = parts[m];
        Row key(gidx.size());
        for (size_t r = begin; r < end; ++r) {
          const Row& row = input.row(r);
          for (size_t k = 0; k < gidx.size(); ++k) key[k] = row[gidx[k]];
          auto it = states.find(key);
          if (it == states.end())
            it = states.emplace(key, std::vector<AggState>(aggs.size()))
                     .first;
          for (size_t i = 0; i < aggs.size(); ++i) {
            if (aidx[i] < 0) {
              ++it->second[i].rows;  // kCountAll without a column
            } else {
              it->second[i].Add(row[static_cast<size_t>(aidx[i])]);
            }
          }
        }
      },
      loop);

  if (StopReason r = StopAfter(options); r != StopReason::kNone)
    return StopStatus(r, "groupby");

  GroupedStates merged;
  for (GroupedStates& part : parts) MergeGroupedStates(&merged, &part);
  return merged;
}

Result<Table> ParallelGroupBy(const Table& input,
                              const std::vector<std::string>& group_cols,
                              const std::vector<AggSpec>& aggs,
                              const ExecOptions& options) {
  obs::Span span("op.groupby");
  STATCUBE_ASSIGN_OR_RETURN(
      GroupedStates states,
      ParallelGroupByStates(input, group_cols, aggs, options));
  Table out = StatesToTable(input.name() + "_by_" + Join(group_cols, "_"),
                            group_cols, aggs, states);
  obs::RecordOperator("groupby", input.num_rows(), out.num_rows());
  return out;
}

Result<Table> ParallelCubeBy(const Table& input,
                             const std::vector<std::string>& dims,
                             const std::vector<AggSpec>& aggs,
                             const ExecOptions& options) {
  if (dims.size() > 20)
    return Status::InvalidArgument("cube over >20 dimensions refused");
  obs::Span span("op.cube");
  size_t ndims = dims.size();
  uint32_t full = ndims == 0 ? 0 : ((1u << ndims) - 1);

  // The finest grouping: one parallel scan of the input.
  STATCUBE_ASSIGN_OR_RETURN(GroupedStates base,
                            ParallelGroupByStates(input, dims, aggs, options));

  // Every coarser grouping rolls up from the parent with the lowest absent
  // dimension added — the same parent CubeBy picks, so the merged states are
  // identical. Groupings within one popcount level depend only on the level
  // above, so each level is one parallel loop (morsel = one grouping set).
  std::vector<GroupedStates> computed(size_t(full) + 1);
  computed[full] = std::move(base);

  std::vector<std::vector<uint32_t>> levels(ndims);  // by popcount, asc mask
  for (uint32_t m = 0; m < full; ++m)
    levels[__builtin_popcount(m)].push_back(m);

  ParallelForOptions loop = LoopOptions("cube_rollup", options);
  loop.morsel_size = 1;  // one grouping set per task
  for (size_t level = ndims; level-- > 0;) {
    const std::vector<uint32_t>& masks = levels[level];
    ParallelFor(
        masks.size(),
        [&](size_t, size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            uint32_t m = masks[i];
            uint32_t missing = full & ~m;
            uint32_t parent = m | (missing & (~missing + 1));
            computed[m] =
                RollupGroupedStates(computed[parent], parent, m, ndims);
          }
        },
        loop);
    if (StopReason r = StopAfter(options); r != StopReason::kNone)
      return StopStatus(r, "cube");
  }

  // Emission order matches CubeBy (popcount desc, mask asc); the canonical
  // sort would make any emission order equivalent anyway since every
  // dim/ALL pattern is unique.
  Table out(input.name() + "_cube", CubeOutputSchema(dims, aggs));
  EmitCubeGrouping(computed[full], full, ndims, aggs, &out);
  for (size_t level = ndims; level-- > 0;)
    for (uint32_t m : levels[level])
      EmitCubeGrouping(computed[m], m, ndims, aggs, &out);
  SortCubeRows(&out, ndims);
  return out;
}

Result<Table> ParallelRollupBy(const Table& input,
                               const std::vector<std::string>& dims,
                               const std::vector<AggSpec>& aggs,
                               const ExecOptions& options) {
  obs::Span span("op.rollup");
  size_t ndims = dims.size();
  Table out(input.name() + "_rollup", CubeOutputSchema(dims, aggs));

  // Only the base scan parallelizes; the n+1 prefixes form a chain, and
  // each link is tiny compared to the scan.
  STATCUBE_ASSIGN_OR_RETURN(GroupedStates states,
                            ParallelGroupByStates(input, dims, aggs, options));
  uint32_t full = ndims == 0 ? 0 : ((1u << ndims) - 1);
  uint32_t mask = full;
  for (size_t len = ndims + 1; len-- > 0;) {
    uint32_t m = len == 0 ? 0 : ((1u << len) - 1);
    if (m != mask) {
      states = RollupGroupedStates(states, mask, m, ndims);
      mask = m;
    }
    EmitCubeGrouping(states, m, ndims, aggs, &out);
  }
  if (StopReason r = StopAfter(options); r != StopReason::kNone)
    return StopStatus(r, "rollup");
  SortCubeRows(&out, ndims);
  return out;
}

Result<double> ParallelSumRange(DenseArray& array,
                                const std::vector<DimRange>& ranges,
                                const ExecOptions& options) {
  // Same validation (and early-outs) as DenseArray::SumRange.
  if (ranges.size() != array.num_dims())
    return Status::InvalidArgument("range arity mismatch");
  for (size_t i = 0; i < ranges.size(); ++i) {
    if (ranges[i].lo > ranges[i].hi || ranges[i].hi > array.shape()[i])
      return Status::OutOfRange("range invalid for dimension " +
                                std::to_string(i));
    if (ranges[i].lo == ranges[i].hi) return 0.0;  // empty slab
  }
  size_t ndims = array.num_dims();
  if (ndims <= 1) return array.SumRange(ranges);

  // Morsel unit: one contiguous innermost segment, i.e. one assignment of
  // the leading dims. Segment s decodes to leading coordinates in the same
  // row-major (last-leading-dim-fastest) order the serial odometer visits.
  size_t nsegments = 1;
  for (size_t i = 0; i + 1 < ndims; ++i) nsegments *= ranges[i].width();
  size_t inner_width = ranges[ndims - 1].width();

  // Strides of the flat array (recomputed; DenseArray keeps them private).
  std::vector<size_t> strides(ndims, 1);
  for (size_t i = ndims - 1; i-- > 0;)
    strides[i] = strides[i + 1] * array.shape()[i + 1];

  ParallelForOptions loop = LoopOptions("sum_range", options);
  // Scale the morsel so one morsel covers roughly kDefaultMorselRows cells.
  loop.morsel_size = std::max<size_t>(
      1, (options.morsel_rows == 0 ? kDefaultMorselRows
                                   : options.morsel_rows) /
             std::max<size_t>(1, inner_width));
  obs::RecordBytesTouched(nsegments * inner_width * sizeof(double));
  std::vector<double> parts(NumMorsels(nsegments, loop.morsel_size), 0.0);
  const std::vector<double>& cells = array.cells();
  BlockCounter& counter = array.counter();
  // Same exactness gate as DenseArray::SumRange: when the whole region's
  // sum is provably exact, segments may use the reassociated block kernel
  // — bit-identical to the ordered walk, and to the serial SumRange.
  bool fast = vec::ReorderIsExact(array.all_integral(), array.max_abs(),
                                  nsegments * inner_width);

  ParallelFor(
      nsegments,
      [&](size_t m, size_t begin, size_t end) {
        double sum = 0.0;
        std::vector<size_t> coord(ndims);
        coord[ndims - 1] = ranges[ndims - 1].lo;
        for (size_t s = begin; s < end; ++s) {
          size_t rem = s;
          for (size_t d = ndims - 1; d-- > 0;) {
            coord[d] = ranges[d].lo + rem % ranges[d].width();
            rem /= ranges[d].width();
          }
          size_t base = 0;
          for (size_t i = 0; i < ndims; ++i) base += coord[i] * strides[i];
          counter.ChargeBytes(inner_width * sizeof(double));
          if (fast) {
            sum += vec::SumBlockFast(&cells[base], inner_width);
          } else {
            for (size_t k = 0; k < inner_width; ++k) sum += cells[base + k];
          }
        }
        parts[m] = sum;
      },
      loop);

  if (StopReason r = StopAfter(options); r != StopReason::kNone)
    return StopStatus(r, "sum_range");
  double total = 0.0;
  for (double p : parts) total += p;
  return total;
}

Result<std::vector<double>> MarginalSums(DenseArray& array, size_t dim) {
  if (dim >= array.num_dims())
    return Status::OutOfRange("marginal dimension out of range");
  size_t ndims = array.num_dims();
  std::vector<double> out(array.shape()[dim], 0.0);
  std::vector<DimRange> ranges(ndims);
  for (size_t d = 0; d < ndims; ++d) ranges[d] = {0, array.shape()[d]};
  for (size_t i = 0; i < out.size(); ++i) {
    ranges[dim] = {i, i + 1};
    STATCUBE_ASSIGN_OR_RETURN(out[i], array.SumRange(ranges));
  }
  return out;
}

Result<std::vector<double>> ParallelMarginalSums(DenseArray& array,
                                                 size_t dim,
                                                 const ExecOptions& options) {
  if (dim >= array.num_dims())
    return Status::OutOfRange("marginal dimension out of range");
  size_t ndims = array.num_dims();
  size_t card = array.shape()[dim];
  std::vector<double> out(card, 0.0);
  obs::RecordBytesTouched(array.cells().size() * sizeof(double));

  ParallelForOptions loop = LoopOptions("marginal", options);
  // One marginal entry is a whole slab; a morsel of a few entries balances
  // well even for small cardinalities.
  loop.morsel_size = std::max<size_t>(
      1, std::min<size_t>(loop.morsel_size,
                          (card + size_t(loop.max_workers) * 4 - 1) /
                              std::max<size_t>(1, size_t(loop.max_workers) *
                                                      4)));
  Mutex err_mu;
  Status first_error = Status::OK();

  ParallelFor(
      card,
      [&](size_t, size_t begin, size_t end) {
        std::vector<DimRange> ranges(ndims);
        for (size_t d = 0; d < ndims; ++d) ranges[d] = {0, array.shape()[d]};
        for (size_t i = begin; i < end; ++i) {
          ranges[dim] = {i, i + 1};
          // Each entry walks its slab in the serial index order, so the
          // value is bit-identical to MarginalSums.
          Result<double> r = array.SumRange(ranges);
          if (!r.ok()) {
            MutexLock lock(err_mu);
            if (first_error.ok()) first_error = r.status();
            return;
          }
          out[i] = r.value();
        }
      },
      loop);

  if (!first_error.ok()) return first_error;
  if (StopReason r = StopAfter(options); r != StopReason::kNone)
    return StopStatus(r, "marginal");
  return out;
}

}  // namespace statcube::exec
