/// \file
/// \brief Morsel-driven parallel execution: a dependency-free task
/// scheduler in the style of [LBKN14]'s morsel-driven parallelism (see
/// PAPERS.md).
///
/// The paper's §6.6 ROLAP-vs-MOLAP debate and [GB+96]'s CUBE cost model
/// are throughput arguments; this module is what lets the engine use more
/// than one core to make them measurable.
///
/// Architecture:
///  * A fixed pool of worker threads (`TaskScheduler`), each owning a
///    deque. Workers pop their own deque LIFO (cache-warm) and steal FIFO
///    from other workers when idle (the classic work-stealing discipline).
///  * `TaskGroup` — a fork/join scope: `Run` submits tasks, `Wait` blocks
///    until all complete while *helping* (the waiting thread executes
///    queued tasks instead of idling), which is what makes nested
///    parallelism and a 1-thread pool deadlock-free.
///  * `ParallelFor` — the morsel loop: [0, n) is cut into fixed-size
///    morsels (boundaries depend only on `morsel_size`, never on the
///    thread count), runner tasks claim morsel indexes from a shared
///    counter, and the body runs once per morsel. Results keyed by morsel
///    index can therefore be combined in a canonical order — the
///    determinism hook the parallel kernels (parallel_kernels.h) build on.
///  * Cooperative cancellation: a `CancellationToken` checked between
///    morsels/tasks; the first exception thrown by any task cancels the
///    rest of its group and is rethrown from `Wait`/`ParallelFor` on the
///    caller.
///
/// Observability: the scheduler registers counters/gauges in
/// obs::MetricsRegistry (statcube.exec.*: tasks, steals, morsels, queue
/// depth, worker busy time, pool size). In addition, `TaskGroup::Run`
/// captures an obs::TaskContext (resource.h) on the submitting thread —
/// the current trace, innermost open span, and resource accumulator — and
/// installs it on whichever thread executes the task. Worker-side morsel
/// spans therefore attach under the submitting query's span tree (with
/// each span recording its worker's thread id), and per-morsel CPU time,
/// morsel counts, and steal migrations are charged to the submitting
/// query's ResourceVector. All of it is gated on obs::Enabled(): disabled,
/// the capture is one relaxed load and the context is empty.

#ifndef STATCUBE_EXEC_TASK_SCHEDULER_H_
#define STATCUBE_EXEC_TASK_SCHEDULER_H_

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "statcube/common/cancellation.h"
#include "statcube/common/mutex.h"
#include "statcube/common/thread_annotations.h"

namespace statcube::exec {

/// Number of hardware threads (>= 1 even when the runtime reports 0).
int HardwareThreads();

/// Default pool size: the STATCUBE_THREADS environment variable when set to
/// a positive integer (clamped to kMaxThreads), otherwise HardwareThreads().
int DefaultThreads();

/// Hard cap on pool size (deque slots are preallocated up to this).
inline constexpr int kMaxThreads = 64;

/// Default morsel size for row-oriented ParallelFor loops. Chosen so a
/// morsel of typical Rows (a few hundred bytes each) stays around the L2
/// cache while still yielding enough morsels to balance 8 workers on the
/// benchmark workloads; see DESIGN.md §6.
inline constexpr size_t kDefaultMorselRows = 2048;

/// Shared cooperative-cancellation flag. The type moved to
/// common/cancellation.h (the query-lifecycle registry in obs/ holds one
/// per in-flight query, and obs must not include exec headers); this alias
/// keeps the historical exec::CancellationToken spelling working.
using CancellationToken = ::statcube::CancellationToken;

/// Fixed thread pool with per-worker deques and work stealing.
///
/// Thread-safety: all public methods are safe to call from any thread,
/// including from inside tasks (nested submission goes to the submitting
/// worker's own deque).
class TaskScheduler {
 public:
  /// A unit of work; runs exactly once on some thread.
  using Task = std::function<void()>;

  /// `num_threads` <= 0 means DefaultThreads(). The pool can later grow up
  /// to kMaxThreads via EnsureThreads; it never shrinks.
  explicit TaskScheduler(int num_threads = 0);
  /// Stops and joins every worker; queued tasks are abandoned.
  ~TaskScheduler();

  TaskScheduler(const TaskScheduler&) = delete;             ///< Not copyable.
  TaskScheduler& operator=(const TaskScheduler&) = delete;  ///< Not copyable.

  /// Current number of worker threads (>= 1).
  int num_threads() const {
    return active_workers_.load(std::memory_order_acquire);
  }

  /// Grows the pool to at least `n` workers (clamped to kMaxThreads).
  /// Lets an explicit `--threads=8` request oversubscribe a small machine —
  /// the CI 2-core cap and the thread-sweep benches rely on this.
  void EnsureThreads(int n);

  /// The process-wide pool, lazily built with DefaultThreads() workers.
  static TaskScheduler& Global();

  /// Runs one queued task on the calling thread if any is available
  /// (own deque first for workers, then stealing). Returns false when every
  /// deque is empty. This is the "help" primitive TaskGroup::Wait uses.
  bool RunOneTask();

 private:
  friend class TaskGroup;

  // One worker's state. Deques are preallocated for kMaxThreads so growing
  // the pool never reallocates under readers.
  struct WorkerQueue {
    Mutex mu;
    std::deque<Task> tasks STATCUBE_GUARDED_BY(mu);
  };

  /// Enqueues a task: a pool worker pushes to its own deque (LIFO end);
  /// other threads round-robin across workers.
  void Submit(Task task);

  void WorkerLoop(int id);
  bool PopOrSteal(int self_id, Task* out);  // self deque back, others front
  void SpawnLocked(int id) STATCUBE_REQUIRES(grow_mu_);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;  // kMaxThreads slots
  Mutex grow_mu_;  // guards threads_ growth
  std::vector<std::thread> threads_ STATCUBE_GUARDED_BY(grow_mu_);
  std::atomic<int> active_workers_{0};
  std::atomic<uint64_t> rr_next_{0};   // round-robin submit cursor
  std::atomic<uint64_t> pending_{0};   // queued, not yet started
  std::atomic<bool> stop_{false};
  Mutex idle_mu_;      // companion of idle_cv_; guards no fields (the wait
                       // conditions are the atomics above)
  CondVar idle_cv_;
};

/// Fork/join scope over one scheduler. `Wait` helps run queued tasks (from
/// any group — helping is global, which keeps nesting deadlock-free),
/// rethrows the first exception any task threw, and cancels the group's
/// token as soon as that first exception is captured so remaining tasks
/// fall through without running their bodies.
class TaskGroup {
 public:
  /// `scheduler` == nullptr means TaskScheduler::Global().
  explicit TaskGroup(TaskScheduler* scheduler = nullptr);
  /// Blocks until outstanding tasks finish (never throws).
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;             ///< Not copyable.
  TaskGroup& operator=(const TaskGroup&) = delete;  ///< Not copyable.

  /// Submits `fn`. If the group is already cancelled the task is still
  /// accounted for but its body will not run.
  void Run(std::function<void()> fn);

  /// Blocks until every submitted task completed, executing queued tasks on
  /// the calling thread while it waits. Rethrows the first captured
  /// exception (after all tasks have drained).
  void Wait();

  /// Cooperatively cancels tasks that have not started yet.
  void Cancel() { token_.Cancel(); }
  /// The group's cancellation token (copy it into task bodies).
  CancellationToken& token() { return token_; }

  /// The scheduler this group submits to.
  TaskScheduler& scheduler() { return *scheduler_; }

 private:
  struct State;
  TaskScheduler* scheduler_;
  std::shared_ptr<State> state_;
  CancellationToken token_;
};

/// Options for ParallelFor.
struct ParallelForOptions {
  /// Span label for morsel batches executed on the calling thread (visible
  /// in query profiles when a trace is installed).
  const char* label = "parallel_for";
  /// Morsel size in loop iterations. Fixed morsel boundaries — never derived
  /// from the thread count — are what make reductions keyed by morsel index
  /// thread-count invariant.
  size_t morsel_size = kDefaultMorselRows;
  /// Cap on concurrent runners; <= 0 means the scheduler's pool size.
  /// Values above the pool size grow the pool (EnsureThreads).
  int max_workers = 0;
  /// Optional external cancellation (checked between morsels).
  CancellationToken* cancel = nullptr;
  /// Optional query-level stop configuration (external token + absolute
  /// deadline; common/cancellation.h), checked between morsels exactly like
  /// `cancel`. The loop stops claiming morsels once the context reports a
  /// stop; callers turn the (monotonic) stop state into a Status by
  /// re-checking the context after ParallelFor returns. nullptr or an
  /// inactive context costs one pointer test per morsel.
  const CancelContext* stop = nullptr;
  /// nullptr means TaskScheduler::Global().
  TaskScheduler* scheduler = nullptr;
};

/// Runs `body(morsel_index, begin, end)` for every morsel of [0, n), where
/// morsel `m` covers [m * morsel_size, min(n, (m+1) * morsel_size)).
/// Blocks until every morsel ran (or was cancelled); rethrows the first
/// exception. The calling thread participates as a runner, so this works on
/// a 1-thread pool and nests arbitrarily.
///
/// Morsels are claimed dynamically (work keeps flowing to idle workers) but
/// the (index, range) pairs are a pure function of n and morsel_size —
/// combine per-morsel results in ascending index order for bit-identical
/// output at any thread count.
void ParallelFor(size_t n,
                 const std::function<void(size_t, size_t, size_t)>& body,
                 const ParallelForOptions& options = {});

}  // namespace statcube::exec

#endif  // STATCUBE_EXEC_TASK_SCHEDULER_H_
