#include "statcube/exec/vec_kernels.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <utility>

#include "statcube/common/vec_block.h"
#include "statcube/obs/metrics.h"
#include "statcube/obs/query_profile.h"
#include "statcube/obs/resource.h"
#include "statcube/obs/trace.h"

namespace statcube::exec {

// ---------------------------------------------------------------------------
// Block primitives live in common/vec_block.cc (namespace statcube::vec);
// only the metrics-instrumented SumBlockAuto wrapper stays at this layer.
// ---------------------------------------------------------------------------

namespace vec = ::statcube::vec;

double SumBlockAuto(const double* v, size_t n, bool all_integral,
                    double max_abs) {
  // Resolved once: GetCounter is a by-name map lookup under the registry
  // mutex, and this function runs once per block. Registry entries are
  // never erased (Reset() only zeroes values), so the references stay
  // valid for the process lifetime.
  static obs::Counter& fast_counter = obs::MetricsRegistry::Global()
      .GetCounter("statcube.exec.vec.block_sum_fast");
  static obs::Counter& ordered_counter = obs::MetricsRegistry::Global()
      .GetCounter("statcube.exec.vec.block_sum_ordered");
  if (vec::ReorderIsExact(all_integral, max_abs, n)) {
    if (obs::Enabled()) fast_counter.Add(1);
    return vec::SumBlockFast(v, n);
  }
  if (obs::Enabled()) ordered_counter.Add(1);
  return vec::SumBlockOrdered(v, n);
}

// ---------------------------------------------------------------------------
// Vectorized radix group-by
// ---------------------------------------------------------------------------

bool DefaultVectorized() {
  static const bool value = [] {
    const char* env = std::getenv("STATCUBE_VECTORIZED");
    if (env == nullptr || env[0] == '\0') return false;
    return !(env[0] == '0' && env[1] == '\0');
  }();
  return value;
}

namespace {

constexpr int kRadixBits = 6;
static_assert((size_t(1) << kRadixBits) == kRadixPartitions,
              "kRadixPartitions must be 2^kRadixBits");

// splitmix64 finalizer: spreads tuple hashes so the open-addressing probe
// start is well distributed even when Value::Hash clusters.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Group ids are dense (0..ngroups-1), so the low bits alone deal groups
// round-robin — perfectly balanced by construction, no mixing needed.
inline size_t PartitionOf(uint32_t gid) {
  return size_t(gid) & (kRadixPartitions - 1);
}

size_t NumMorsels(size_t n, size_t morsel) {
  return n == 0 ? 0 : (n + morsel - 1) / morsel;
}

ParallelForOptions LoopOptions(const char* label, const ExecOptions& options) {
  ParallelForOptions loop;
  loop.label = label;
  loop.morsel_size =
      options.morsel_rows == 0 ? kDefaultMorselRows : options.morsel_rows;
  loop.max_workers = options.EffectiveThreads();
  loop.scheduler = options.scheduler;
  loop.stop = options.stop;
  return loop;
}

StopReason StopAfter(const ExecOptions& options) {
  return options.stop == nullptr ? StopReason::kNone : options.stop->Check();
}

// Measure flags: bit0 = non-null, bit1 = numeric. Together they replicate
// AggState::Add's branch structure over the slab without touching Values.
constexpr uint8_t kFlagNonNull = 1;
constexpr uint8_t kFlagNumeric = 2;

// Open-addressing dictionary over group-column tuples. The tuple itself is
// never copied: an entry remembers the global row index of its first
// occurrence plus the cached tuple hash, and probes compare against the
// borrowed input row. `entries` insertion order is first-occurrence order
// (within a morsel for the per-morsel dictionaries; globally for the merged
// one).
// Fixed-width inline key record: one (tag, len, 16 payload bytes, padding)
// cell per group column, 24 bytes so the tuple hash can run word-at-a-time
// over the record itself. Probe hits compare records with a single memcmp
// against the entry's cached record — no representative-row fetch, no
// string walk — whenever both sides encode cleanly. Cells that cannot
// preserve Value::Compare's equality inline (strings longer than 16 bytes,
// numeric magnitudes at or beyond 2^53 whose double image is ambiguous,
// NaN — which Compare treats as equal to every number) mark the record as
// a fallback and the probe re-checks with the exact TupleEq below.
constexpr size_t kKeyCell = 24;
constexpr uint8_t kTagNull = 0, kTagAll = 1, kTagNum = 2, kTagStr = 3;

// Encodes one key column into `out` (kKeyCell bytes). Returns false when
// the cell cannot decide equality on its own (caller marks the record as
// fallback). int64 and double collapse to one canonical double image so
// cross-representation equal values compare equal; -0.0 collapses to +0.0.
inline bool EncodeKeyCell(const Value& v, uint8_t* out) {
  std::memset(out, 0, kKeyCell);
  switch (v.type()) {
    case ValueType::kNull:
      out[0] = kTagNull;
      return true;
    case ValueType::kAll:
      out[0] = kTagAll;
      return true;
    case ValueType::kInt64: {
      int64_t i = v.AsInt64();
      if (i <= -(int64_t(1) << 53) || i >= (int64_t(1) << 53)) return false;
      out[0] = kTagNum;
      double d = double(i);
      __builtin_memcpy(out + 2, &d, sizeof(d));
      return true;
    }
    case ValueType::kDouble: {
      double d = v.AsDouble();
      if (d != d) return false;  // NaN: Compare calls it equal to anything
      if (std::abs(d) >= 9007199254740992.0) return false;  // 2^53: int64
      if (d == 0.0) d = 0.0;  // collapse -0.0 to +0.0
      out[0] = kTagNum;
      __builtin_memcpy(out + 2, &d, sizeof(d));
      return true;
    }
    default: {  // string
      const std::string& s = v.AsString();
      if (s.size() > 16) return false;
      out[0] = kTagStr;
      out[1] = uint8_t(s.size());
      __builtin_memcpy(out + 2, s.data(), s.size());
      return true;
    }
  }
}

struct TupleDict {
  std::vector<int32_t> slots;    // entry index, -1 = empty; power-of-two
  std::vector<uint64_t> hashes;  // per entry: cached tuple hash
  std::vector<uint32_t> rows;    // per entry: first-occurrence row
  std::vector<uint32_t> counts;  // per entry: occurrences seen
  std::vector<uint8_t> recs;     // per entry: inline key record
  std::vector<uint8_t> rec_ok;   // per entry: record decides equality
  size_t mask = 0;

  void Init(size_t expected) {
    size_t cap = 16;
    while (cap < expected * 2) cap <<= 1;  // load factor <= 0.5
    slots.assign(cap, -1);
    mask = cap - 1;
  }
};

// Inline mirror of Value::Hash for the probe loop: the out-of-line version
// costs a call plus a type dispatch per key column per row. Only the
// *shape* must match — values that Value::Compare calls equal must hash
// equal (int64 and integral doubles collapse, strings hash by content) —
// because the dictionary is self-contained: emitted keys re-enter the
// output map through RowHash, never through this function.
inline uint64_t FastValueHash(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueType::kAll:
      return 0xa0761d6478bd642fULL;
    case ValueType::kString: {
      // Word-at-a-time multiply-xor (byte-wise FNV is a one-byte-per-cycle
      // dependency chain). Length is mixed in up front so a short string is
      // never a hash prefix of a longer one.
      const std::string& s = v.AsString();
      const char* p = s.data();
      size_t rem = s.size();
      uint64_t h = 0xcbf29ce484222325ULL ^ (uint64_t(rem) * 0x100000001b3ULL);
      while (rem >= 8) {
        uint64_t w;
        __builtin_memcpy(&w, p, 8);
        h = (h ^ w) * 0x9ddfea08eb382d69ULL;
        h ^= h >> 29;
        p += 8;
        rem -= 8;
      }
      if (rem > 0) {
        uint64_t w = 0;
        __builtin_memcpy(&w, p, rem);
        h = (h ^ w) * 0x9ddfea08eb382d69ULL;
        h ^= h >> 29;
      }
      return h;
    }
    default: {  // numeric: int64 and integral doubles hash identically
      double d = v.AsDouble();
      if (d == std::floor(d) && std::abs(d) < 9.2e18) {
        uint64_t x = uint64_t(int64_t(d)) * 0xff51afd7ed558ccdULL;
        return x ^ (x >> 33);
      }
      uint64_t bits;
      __builtin_memcpy(&bits, &d, sizeof(d));
      bits *= 0xc4ceb9fe1a85ec53ULL;
      return bits ^ (bits >> 29);
    }
  }
}

// Inline equality with Value::Compare's exact semantics: int64 and double
// compare numerically across representations, and the double comparison is
// !(x<y) && !(x>y) — NOT x==y — so NaN keys group the way the serial map's
// RowEq groups them.
inline bool FastValueEq(const Value& a, const Value& b) {
  ValueType ta = a.type(), tb = b.type();
  if (ta == tb) {
    switch (ta) {
      case ValueType::kNull:
      case ValueType::kAll:
        return true;
      case ValueType::kInt64:
        return a.AsInt64() == b.AsInt64();
      case ValueType::kDouble: {
        double x = a.AsDouble(), y = b.AsDouble();
        return !(x < y) && !(x > y);
      }
      default:
        return a.AsString() == b.AsString();
    }
  }
  if ((ta == ValueType::kInt64 && tb == ValueType::kDouble) ||
      (ta == ValueType::kDouble && tb == ValueType::kInt64)) {
    double x = a.AsDouble(), y = b.AsDouble();
    return !(x < y) && !(x > y);
  }
  return false;
}

// Encodes the key record for `row` and folds the tuple hash in the same
// pass: exact cells hash their three record words (the canonical bytes ARE
// the value identity), fallback cells hash through FastValueHash. Equal
// tuples always hash equal: exact cells are bijective with the value's
// equality class, and a value with an exact cell can never Compare-equal
// one that falls back (lengths differ for strings; the 2^53 cutoff applies
// to int64 and double alike, so an exact-cell numeric is always below it
// and a fallback numeric at or above it — NaN keeps the same
// hash-vs-Compare tension the serial map's RowHash has).
inline uint64_t EncodeAndHash(const Row& row, const std::vector<size_t>& gidx,
                              uint8_t* rec, bool* rec_ok) {
  uint64_t h = 0xcbf29ce484222325ULL;
  bool ok_all = true;
  for (size_t c = 0; c < gidx.size(); ++c) {
    const Value& v = row[gidx[c]];
    uint8_t* cell = rec + c * kKeyCell;
    if (EncodeKeyCell(v, cell)) {
      for (int k = 0; k < 3; ++k) {
        uint64_t w;
        __builtin_memcpy(&w, cell + 8 * k, 8);
        h = (h ^ w) * 0x9ddfea08eb382d69ULL;
        h ^= h >> 29;
      }
    } else {
      ok_all = false;
      h = (h ^ FastValueHash(v)) * 0x100000001b3ULL;
    }
  }
  *rec_ok = ok_all;
  return h;
}

bool TupleEq(const Row& a, const Row& b, const std::vector<size_t>& gidx) {
  for (size_t g : gidx)
    if (!FastValueEq(a[g], b[g])) return false;
  return true;
}

// Finds or inserts `row` (at global index r, with hash h and encoded key
// record `rec` of `stride` bytes, exact iff `rec_ok`) and returns its entry
// index. The caller sizes the dictionary so it never grows. A hash match
// resolves with one record memcmp when both records are exact; otherwise it
// re-checks with the exact TupleEq against the entry's borrowed first row.
uint32_t DictCode(TupleDict& d, const Table& input,
                  const std::vector<size_t>& gidx, const Row& row, size_t r,
                  uint64_t h, const uint8_t* rec, bool rec_ok,
                  size_t stride) {
  size_t idx = size_t(Mix64(h)) & d.mask;
  for (;;) {
    int32_t s = d.slots[idx];
    if (s < 0) {
      uint32_t code = uint32_t(d.rows.size());
      d.slots[idx] = int32_t(code);
      d.hashes.push_back(h);
      d.rows.push_back(uint32_t(r));
      d.counts.push_back(1);
      d.recs.insert(d.recs.end(), rec, rec + stride);
      d.rec_ok.push_back(rec_ok ? 1 : 0);
      return code;
    }
    if (d.hashes[size_t(s)] == h) {
      bool equal =
          (rec_ok && d.rec_ok[size_t(s)] != 0)
              ? std::memcmp(d.recs.data() + size_t(s) * stride, rec,
                            stride) == 0
              : TupleEq(input.row(d.rows[size_t(s)]), row, gidx);
      if (equal) {
        ++d.counts[size_t(s)];
        return uint32_t(s);
      }
    }
    idx = (idx + 1) & d.mask;
  }
}

}  // namespace

Result<GroupedStates> VectorizedGroupByStates(
    const Table& input, const std::vector<std::string>& group_cols,
    const std::vector<AggSpec>& aggs, const ExecOptions& options) {
  // Resolve columns up front (exactly as GroupByStates) so every error
  // surfaces before any task is spawned.
  STATCUBE_ASSIGN_OR_RETURN(std::vector<size_t> gidx,
                            input.schema().IndexesOf(group_cols));
  std::vector<int64_t> aidx(aggs.size(), -1);
  for (size_t i = 0; i < aggs.size(); ++i) {
    if (aggs[i].fn == AggFn::kCountAll && aggs[i].column.empty()) continue;
    STATCUBE_ASSIGN_OR_RETURN(size_t idx,
                              input.schema().IndexOf(aggs[i].column));
    aidx[i] = static_cast<int64_t>(idx);
  }

  const size_t n = input.num_rows();
  const size_t ncols = gidx.size();
  const size_t naggs = aggs.size();
  if (n == 0) return GroupedStates{};
  if (n >= size_t(UINT32_MAX)) {
    // The pipeline stores row indexes as uint32; inputs beyond that route
    // back to the scalar kernel through the caller's fallback.
    if (obs::Enabled())
      obs::MetricsRegistry::Global()
          .GetCounter("statcube.exec.vec.row_overflow")
          .Add(1);
    return Status::Unimplemented(
        "input exceeds the vectorized kernel's 32-bit row indexes");
  }

  if (obs::Enabled()) {
    obs::RecordBytesTouched(input.ByteSize());
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    reg.GetCounter("statcube.exec.vec.groupby_calls").Add(1);
    reg.GetCounter("statcube.exec.vec.rows").Add(n);
  }

  ParallelForOptions loop = LoopOptions("vec_columnarize", options);
  const size_t morsel = loop.morsel_size;
  const size_t nmorsels = NumMorsels(n, morsel);
  // Columnarize always fans out (it dominates); the cheap phases dispatch
  // to the pool only when the rows per worker pay for the barrier.
  const bool fan_out =
      options.vec_fanout_rows == 0 ||
      n >= options.vec_fanout_rows * size_t(options.EffectiveThreads());

  // --- Phase 1: columnarize -----------------------------------------------
  // Each morsel dictionary-encodes its group-column tuples to dense local
  // codes (one open-addressing probe per row, values borrowed from the
  // table); measures copy into double slabs with a flag byte per row.
  // Per-measure integral/max_abs evidence feeds the exactness gate for
  // reassociated summation.
  // Slabs are allocated uninitialized (for_overwrite): phase 1 writes every
  // row of every slab before anything reads it, and the default-zeroing
  // constructor would memset megabytes per call for nothing.
  auto codes = std::make_unique_for_overwrite<uint32_t[]>(n);  // local code
  std::vector<std::unique_ptr<double[]>> vals(naggs);
  std::vector<std::unique_ptr<uint8_t[]>> flags(naggs);
  // Measure slots that actually read a column (kCountAll-without-column
  // never touches the slabs).
  std::vector<uint32_t> mslots;
  for (size_t i = 0; i < naggs; ++i) {
    if (aidx[i] < 0) continue;
    vals[i] = std::make_unique_for_overwrite<double[]>(n);
    flags[i] = std::make_unique_for_overwrite<uint8_t[]>(n);
    mslots.push_back(uint32_t(i));
  }
  std::vector<TupleDict> dicts(nmorsels);
  // [morsel][agg]: integral-so-far flag, max |value|, any row not
  // (non-null and numeric).
  std::vector<std::vector<uint8_t>> m_integral(
      nmorsels, std::vector<uint8_t>(naggs, 1));
  std::vector<std::vector<double>> m_max_abs(
      nmorsels, std::vector<double>(naggs, 0.0));
  std::vector<std::vector<uint8_t>> m_gap(nmorsels,
                                          std::vector<uint8_t>(naggs, 0));

  {
    obs::Span span("vec.columnarize");
    ParallelFor(
        n,
        [&](size_t m, size_t begin, size_t end) {
          TupleDict& d = dicts[m];
          d.Init(end - begin);
          uint8_t* integral = m_integral[m].data();
          double* max_abs = m_max_abs[m].data();
          uint8_t* gap = m_gap[m].data();
          const size_t stride = kKeyCell * ncols;
          std::vector<uint8_t> rec(stride);
          for (size_t r = begin; r < end; ++r) {
            const Row& row = input.row(r);
            bool rec_ok = false;
            uint64_t h = EncodeAndHash(row, gidx, rec.data(), &rec_ok);
            codes[r] = DictCode(d, input, gidx, row, r, h, rec.data(),
                                rec_ok, stride);
            for (uint32_t i : mslots) {
              const Value& v = row[size_t(aidx[i])];
              uint8_t f = 0;
              double x = 0.0;
              switch (v.type()) {
                case ValueType::kInt64: {
                  f = kFlagNonNull | kFlagNumeric;
                  x = double(v.AsInt64());  // always integral, never NaN
                  double a = x < 0 ? -x : x;
                  if (a > max_abs[i]) max_abs[i] = a;
                  break;
                }
                case ValueType::kDouble: {
                  f = kFlagNonNull | kFlagNumeric;
                  x = v.AsDouble();
                  double a = x < 0 ? -x : x;
                  if (a > max_abs[i]) max_abs[i] = a;
                  if (integral[i] != 0 && std::trunc(x) != x)
                    integral[i] = 0;
                  // NaN breaks the block min/max precondition (serial's
                  // ordered `<` comparisons skip it; a block seed would
                  // keep it), so NaN rows count as gaps too.
                  if (x != x) gap[i] = 1;
                  break;
                }
                case ValueType::kNull:
                  gap[i] = 1;
                  break;
                default:  // string / ALL: counts, never aggregates
                  f = kFlagNonNull;
                  gap[i] = 1;
                  break;
              }
              vals[i][r] = x;
              flags[i][r] = f;
            }
          }
        },
        loop);
  }
  if (StopReason r = StopAfter(options); r != StopReason::kNone)
    return StopStatus(r, "groupby");

  // Empty BY: one global group over fully contiguous slabs — the pure
  // block-kernel case. Sum/sum_sq run reassociated only under the exactness
  // gate (null rows are padded with 0.0, which is bit-transparent to a sum
  // whose running value starts at +0.0); count reduces over the flag bytes;
  // min/max fall back to a flag-checked loop when any row lacks a numeric
  // value.
  if (ncols == 0) {
    obs::Span agg_span("vec.aggregate");
    std::vector<AggState> st(naggs);
    for (size_t i = 0; i < naggs; ++i) {
      st[i].rows = int64_t(n);
      if (aidx[i] < 0) continue;  // kCountAll without a column
      bool integral = true, gap = false;
      double max_abs = 0.0;
      for (size_t m = 0; m < nmorsels; ++m) {
        integral = integral && m_integral[m][i] != 0;
        gap = gap || m_gap[m][i] != 0;
        if (m_max_abs[m][i] > max_abs) max_abs = m_max_abs[m][i];
      }
      const double* v = vals[i].get();
      st[i].sum = SumBlockAuto(v, n, integral, max_abs);
      st[i].sum_sq =
          vec::ReorderIsExact(integral, max_abs * max_abs, n)
              ? vec::SumSqBlockFast(v, n)
              : vec::SumSqBlockOrdered(v, n);
      if (!gap) {
        st[i].count = int64_t(n);
        st[i].min = vec::MinBlock(v, n);
        st[i].max = vec::MaxBlock(v, n);
      } else {
        const uint8_t* f = flags[i].get();
        st[i].count = int64_t(vec::CountFlagBits(f, n, kFlagNonNull));
        for (size_t r = 0; r < n; ++r) {
          if ((f[r] & kFlagNumeric) == 0) continue;
          if (v[r] < st[i].min) st[i].min = v[r];
          if (v[r] > st[i].max) st[i].max = v[r];
        }
      }
    }
    GroupedStates out;
    out.emplace(Row(), std::move(st));
    if (obs::Enabled())
      obs::MetricsRegistry::Global()
          .GetCounter("statcube.exec.vec.groups")
          .Add(1);
    return out;
  }

  // Merge local dictionaries in ascending morsel order (entries in
  // insertion = first-occurrence order): the global group id sequence is
  // therefore the global first-occurrence order — the serial scan's emplace
  // order. Cached hashes make the merge a probe per distinct tuple per
  // morsel, not per row.
  size_t total_entries = 0;
  for (const TupleDict& d : dicts) total_entries += d.rows.size();
  TupleDict global;
  global.Init(total_entries);
  const size_t stride = kKeyCell * ncols;
  // [morsel]: local tuple code -> global group id
  std::vector<std::vector<uint32_t>> remap(nmorsels);
  for (size_t m = 0; m < nmorsels; ++m) {
    const TupleDict& d = dicts[m];
    std::vector<uint32_t>& rm = remap[m];
    rm.resize(d.rows.size());
    for (size_t e = 0; e < d.rows.size(); ++e)
      rm[e] = DictCode(global, input, gidx, input.row(d.rows[e]), d.rows[e],
                       d.hashes[e], d.recs.data() + e * stride,
                       d.rec_ok[e] != 0, stride);
  }
  const size_t ngroups = global.rows.size();
  const std::vector<uint32_t>& first_row = global.rows;  // per gid

  // A measure with no gap anywhere (every row non-null numeric — the
  // morsel evidence already knows) needs no flag bytes downstream: the
  // per-row fold is unconditional.
  std::vector<uint8_t> no_gap(naggs, 0);
  for (uint32_t i : mslots) {
    bool gap = false;
    for (size_t m = 0; m < nmorsels; ++m) gap = gap || m_gap[m][i] != 0;
    no_gap[i] = gap ? 0 : 1;
  }

  // --- Phase 2: radix partition -------------------------------------------
  // Histogram per (morsel, partition), prefix into stable scatter offsets,
  // and scatter each row's gid and measure values partition-major — the
  // aggregation pass then touches nothing but sequential partition-ordered
  // slabs. Stability: partition-major, then morsel-major, then row order —
  // i.e. ascending global row order within a partition. The histogram needs
  // no per-row pass at all: the morsel dictionaries counted each local code
  // during phase 1, so it folds per *entry* (groups-per-morsel, a few
  // hundred — not rows).
  std::vector<std::vector<uint32_t>> hist(
      nmorsels, std::vector<uint32_t>(kRadixPartitions, 0));
  auto part_gids = std::make_unique_for_overwrite<uint32_t[]>(n);
  std::vector<std::unique_ptr<double[]>> part_vals(naggs);
  std::vector<std::unique_ptr<uint8_t[]>> part_flags(naggs);
  for (uint32_t i : mslots) {
    part_vals[i] = std::make_unique_for_overwrite<double[]>(n);
    if (no_gap[i] == 0)
      part_flags[i] = std::make_unique_for_overwrite<uint8_t[]>(n);
  }
  std::vector<size_t> part_begin(kRadixPartitions + 1, 0);
  {
    obs::Span span("vec.partition");
    ParallelForOptions ploop = LoopOptions("vec_partition", options);
    for (size_t m = 0; m < nmorsels; ++m) {
      const std::vector<uint32_t>& rm = remap[m];
      const std::vector<uint32_t>& cnt = dicts[m].counts;
      std::vector<uint32_t>& h = hist[m];
      for (size_t e = 0; e < rm.size(); ++e)
        h[PartitionOf(rm[e])] += cnt[e];
    }

    std::vector<std::vector<size_t>> offsets(
        nmorsels, std::vector<size_t>(kRadixPartitions, 0));
    size_t pos = 0;
    for (size_t p = 0; p < kRadixPartitions; ++p) {
      part_begin[p] = pos;
      for (size_t m = 0; m < nmorsels; ++m) {
        offsets[m][p] = pos;
        pos += hist[m][p];
      }
    }
    part_begin[kRadixPartitions] = pos;

    auto scatter = [&](size_t m, size_t begin, size_t end) {
      const std::vector<uint32_t>& rm = remap[m];
      std::vector<size_t>& off = offsets[m];
      for (size_t r = begin; r < end; ++r) {
        uint32_t g = rm[codes[r]];
        size_t idx = off[PartitionOf(g)]++;
        part_gids[idx] = g;
        for (uint32_t i : mslots) {
          part_vals[i][idx] = vals[i][r];
          if (no_gap[i] == 0) part_flags[i][idx] = flags[i][r];
        }
      }
    };
    if (fan_out) {
      ParallelFor(n, scatter, ploop);
    } else {
      for (size_t m = 0; m < nmorsels; ++m)
        scatter(m, m * morsel, std::min(n, (m + 1) * morsel));
    }
  }
  if (StopReason r = StopAfter(options); r != StopReason::kNone)
    return StopStatus(r, "groupby");

  // --- Phase 3: per-partition aggregation ---------------------------------
  // One task per partition; gids index the flat AggState array directly (no
  // hash table, no Row allocation, no Value hashing), and partitions own
  // disjoint gid sets, so the writes never race and there is no
  // cross-thread merge of thread-local partials. Rows arrive in ascending
  // global row order (stable scatter), so every group's AggState replays
  // the serial accumulation sequence bit for bit.
  std::vector<AggState> states(ngroups * naggs);
  {
    obs::Span span("vec.aggregate");
    ParallelForOptions aloop = LoopOptions("vec_aggregate", options);
    aloop.morsel_size = 1;
    std::vector<const double*> vp(naggs, nullptr);
    std::vector<const uint8_t*> fp(naggs, nullptr);
    for (uint32_t i : mslots) {
      vp[i] = part_vals[i].get();
      fp[i] = part_flags[i].get();
    }
    auto aggregate = [&](size_t, size_t pbegin, size_t pend) {
      for (size_t p = pbegin; p < pend; ++p) {
        for (size_t e = part_begin[p]; e < part_begin[p + 1]; ++e) {
          AggState* st = &states[size_t(part_gids[e]) * naggs];
          for (size_t i = 0; i < naggs; ++i) {
            if (aidx[i] < 0) {
              ++st[i].rows;  // kCountAll without a column
              continue;
            }
            ++st[i].rows;
            if (no_gap[i] == 0) {
              uint8_t f = fp[i][e];
              if ((f & kFlagNonNull) == 0) continue;
              ++st[i].count;
              if ((f & kFlagNumeric) == 0) continue;
            } else {
              ++st[i].count;
            }
            double d = vp[i][e];
            st[i].sum += d;
            st[i].sum_sq += d * d;
            if (d < st[i].min) st[i].min = d;
            if (d > st[i].max) st[i].max = d;
          }
        }
      }
    };
    if (fan_out) {
      ParallelFor(kRadixPartitions, aggregate, aloop);
    } else {
      aggregate(0, 0, kRadixPartitions);
    }
  }
  if (StopReason r = StopAfter(options); r != StopReason::kNone)
    return StopStatus(r, "groupby");

  // --- Phase 4: emit -------------------------------------------------------
  // Gid order IS global first-occurrence order (the merge above), so
  // inserting by ascending gid reproduces the serial scan's emplace
  // sequence — and with it the output map's growth history and iteration
  // order, which downstream lattice rollups fold in. Key Rows are rebuilt
  // from each group's first row, replicating the serial representative
  // choice (int64 2 and double 2.0 compare equal; the serial map keeps
  // whichever arrived first).
  obs::Span span("vec.emit");
  GroupedStates out;
  Row key(ncols);
  for (size_t g = 0; g < ngroups; ++g) {
    const Row& first = input.row(first_row[g]);
    for (size_t k = 0; k < ncols; ++k) key[k] = first[gidx[k]];
    std::vector<AggState> st(states.begin() + g * naggs,
                             states.begin() + (g + 1) * naggs);
    out.emplace(key, std::move(st));
  }
  if (obs::Enabled())
    obs::MetricsRegistry::Global()
        .GetCounter("statcube.exec.vec.groups")
        .Add(ngroups);
  return out;
}

}  // namespace statcube::exec
