/// \file
/// \brief Vectorized, radix-partitioned aggregation kernels (DESIGN.md §12):
/// the block-at-a-time group-by core behind `ExecOptions::vectorized`.
///
/// The scalar kernels (parallel_kernels.h) run the row-at-a-time path inside
/// each morsel: build a key Row, hash Values, probe an unordered_map, fold
/// one AggState per row. `VectorizedGroupByStates` replaces that hot loop
/// with a columnar pipeline over the paper's §6.1 transposed layout:
///
///   1. **Columnarize** — one parallel pass dictionary-encodes each morsel's
///      group-column *tuples* into dense local codes through an
///      open-addressing dictionary. Each tuple is encoded once into a
///      fixed-width inline key record (24 bytes per column) that is hashed
///      word-at-a-time in the same pass; probes confirm hash matches with a
///      single `memcmp` of the records (falling back to exact Value
///      comparison only for long strings, |numerics| >= 2^53, and NaN —
///      cases where the record image cannot prove Value::Compare equality).
///      The same pass copies each measure into a contiguous `double` slab
///      plus a null/numeric flag byte per row. One probe per row, no
///      allocation on the hot path.
///   2. **Partition** — local dictionaries merge in ascending morsel order,
///      so the global group id (gid) sequence follows global
///      first-occurrence order — exactly the serial scan's emplace order.
///      A per-entry histogram (the dictionary counts rows per tuple, so no
///      second row scan) + prefix-offset + scatter then radix-partitions
///      each row's gid *and measure values* by the low bits of the dense
///      gid into `kRadixPartitions` buckets. The scatter is stable: within
///      a partition, rows keep ascending global row order.
///   3. **Aggregate** — one task per partition folds its partition-ordered
///      value slabs straight into flat per-gid AggState slices (gids index
///      directly — no hash table, no Row allocation, no Value access; every
///      load is sequential). Partitions own disjoint gid sets, so there is
///      no cross-thread merge of thread-local partials at all — the radix
///      refinement of PR 3's morsel design.
///   4. **Emit** — gids are already first-occurrence-ordered, so groups
///      insert into the output GroupedStates by ascending gid; each key Row
///      is rebuilt from the group's first input row (the exact
///      representative the serial map keeps).
///
/// Determinism contract (extends parallel_kernels.h's): the output is
/// **bit-identical for any thread count, and bit-identical to the serial
/// GroupByStates for every measure** — including non-integral doubles where
/// the scalar parallel kernel only promises last-ulp agreement. Two
/// properties make this exact rather than approximate:
///
///   * the stable scatter hands each partition its rows in global row
///     order, so every group's AggState sees the exact floating-point
///     accumulation sequence of the serial scan;
///   * groups enter the output map in global first-occurrence order with
///     the same growth pattern as the serial map, so downstream consumers
///     that iterate it (the CUBE lattice rollup's merge order) see the
///     serial iteration order.
///
/// Reassociated (SIMD) summation is used only where vec_block.h's
/// `ReorderIsExact` proves it cannot change a bit; everything else keeps
/// the ordered loops. The cheap phases (scatter, aggregate) fan out to the
/// pool only past `ExecOptions::vec_fanout_rows` rows per worker — below
/// that a pool barrier costs more than the phase itself — with identical
/// results either way. Spans `vec.columnarize` / `vec.partition` /
/// `vec.aggregate` / `vec.emit` and `statcube.exec.vec.*` counters expose
/// each phase.

#ifndef STATCUBE_EXEC_VEC_KERNELS_H_
#define STATCUBE_EXEC_VEC_KERNELS_H_

#include <string>
#include <vector>

#include "statcube/common/status.h"
#include "statcube/exec/parallel_kernels.h"
#include "statcube/relational/aggregate.h"
#include "statcube/relational/table.h"

namespace statcube::exec {

/// Number of radix partitions (a power of two). Partition id is the low
/// log2(kRadixPartitions) bits of the *dense* group id — gids are assigned
/// sequentially in first-occurrence order, so the low bits round-robin
/// groups across partitions regardless of key distribution; 64 partitions
/// keep per-partition state cache-resident while out-scaling kMaxThreads.
inline constexpr size_t kRadixPartitions = 64;

/// Picks the reassociated block sum when
/// `vec::ReorderIsExact(all_integral, max_abs, n)` holds and the ordered
/// loop otherwise; always bit-identical to `vec::SumBlockOrdered`. Lives in
/// exec (not common/vec_block.h with the primitives it wraps) because it
/// bumps the `statcube.exec.vec.block_sum_*` counters, and obs sits above
/// common in the layer DAG.
double SumBlockAuto(const double* v, size_t n, bool all_integral,
                    double max_abs);

/// Accumulator states per group over the vectorized pipeline above. Output
/// is bit-identical to the serial GroupByStates (and therefore to itself at
/// every thread count). Honors `options.stop` between phases like every
/// parallel kernel.
///
/// Returns Unimplemented when the input does not fit the kernel's 32-bit
/// row indexes (more than 2^32 - 1 rows) — the router in
/// ParallelGroupByStates falls back to the scalar kernel and bumps
/// `statcube.exec.vec.fallbacks`.
Result<GroupedStates> VectorizedGroupByStates(
    const Table& input, const std::vector<std::string>& group_cols,
    const std::vector<AggSpec>& aggs, const ExecOptions& options = {});

}  // namespace statcube::exec

#endif  // STATCUBE_EXEC_VEC_KERNELS_H_
