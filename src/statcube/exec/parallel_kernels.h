// Parallel operator kernels over the morsel scheduler (task_scheduler.h):
// scan/filter, hash group-by with thread-local partial aggregation, the
// CUBE/ROLLUP grouping-set lattice, and MOLAP dense-array reductions.
//
// Determinism contract (tested by tests/parallel_equivalence_test.cc and
// documented in DESIGN.md §6): every kernel's output is **bit-identical for
// any thread count**, including 1. Morsel boundaries are a pure function of
// the input size and morsel_rows (never the thread count), every morsel is
// aggregated in row order, and per-morsel partials are merged in ascending
// morsel index — so the floating-point combination order is fixed. The tail
// is the same canonical sort the serial operators already perform, so a
// kernel's result also matches its serial counterpart exactly whenever
// addition over the measure is exact (integer-valued measures — every
// workload measure except the stock close price) and to the last ulp
// otherwise.

#ifndef STATCUBE_EXEC_PARALLEL_KERNELS_H_
#define STATCUBE_EXEC_PARALLEL_KERNELS_H_

#include <string>
#include <vector>

#include "statcube/common/status.h"
#include "statcube/exec/task_scheduler.h"
#include "statcube/molap/dense_array.h"
#include "statcube/relational/aggregate.h"
#include "statcube/relational/expression.h"
#include "statcube/relational/table.h"

namespace statcube::exec {

/// Process-wide default for ExecOptions::vectorized: true when the
/// STATCUBE_VECTORIZED environment variable is set to anything but "0"
/// (read once, like STATCUBE_THREADS). Lets CI force the vectorized kernels
/// on for an entire test run without touching call sites.
bool DefaultVectorized();

/// Knobs shared by every parallel kernel.
struct ExecOptions {
  /// Worker cap: 0 = DefaultThreads(); 1 = run inline on the caller (same
  /// morsel structure, so the result is identical); N > pool grows the pool.
  int threads = 0;
  /// Morsel size in rows (or cells / lattice units); part of the canonical
  /// decomposition, so changing it may legitimately change last-ulp FP
  /// results — it is NOT varied by the engine at run time.
  size_t morsel_rows = kDefaultMorselRows;
  /// nullptr = TaskScheduler::Global().
  TaskScheduler* scheduler = nullptr;
  /// Optional query-level stop context (token + deadline). Morsel loops stop
  /// claiming work once it fires and the kernel returns kCancelled /
  /// kDeadlineExceeded instead of a partial result. nullptr = never stops.
  const CancelContext* stop = nullptr;
  /// Routes group-by (and everything built on it: CUBE, ROLLUP, the ROLAP
  /// backend, cache derivation) through the vectorized radix kernels
  /// (vec_kernels.h) instead of the scalar row-at-a-time morsel path.
  /// Output is bit-identical to the serial operators at any thread count
  /// (see vec_kernels.h for why this is exact, not last-ulp). Inputs past
  /// the kernel's 32-bit row indexes fall back to the scalar kernel
  /// transparently.
  bool vectorized = DefaultVectorized();
  /// The vectorized kernel's cheap phases (radix scatter, per-partition
  /// aggregation — a few ns per row) fan out to the pool only when the rows
  /// per worker amortize a dispatch+barrier: n >= this * EffectiveThreads().
  /// Below that they run inline on the caller. 0 = always fan out (tests
  /// use this to exercise the parallel phases at small row counts). Either
  /// way the result is bit-identical — the phase decomposition, not the
  /// execution layout, fixes the arithmetic.
  size_t vec_fanout_rows = 65536;

  /// The thread cap with defaults resolved.
  int EffectiveThreads() const {
    return threads <= 0 ? DefaultThreads() : threads;
  }
};

/// sigma, parallel: same rows (same order) as relational Select — morsels
/// filter independently, outputs concatenate in morsel order.
Table ParallelSelect(const Table& input, const RowPredicate& pred,
                     const ExecOptions& options = {});

/// Accumulator states per group, computed with thread-local partial
/// aggregation and merged via AggState::Merge in ascending morsel order.
Result<GroupedStates> ParallelGroupByStates(
    const Table& input, const std::vector<std::string>& group_cols,
    const std::vector<AggSpec>& aggs, const ExecOptions& options = {});

/// Full group-by: identical output contract to relational GroupBy (same
/// schema, name, canonical sort).
Result<Table> ParallelGroupBy(const Table& input,
                              const std::vector<std::string>& group_cols,
                              const std::vector<AggSpec>& aggs,
                              const ExecOptions& options = {});

/// GROUP BY CUBE: the finest grouping is one parallel scan; every coarser
/// grouping rolls up through the lattice level-synchronously, one task per
/// grouping set within a level ([ZDN97]'s simultaneous aggregation,
/// parallelized). Output contract identical to CubeBy.
Result<Table> ParallelCubeBy(const Table& input,
                             const std::vector<std::string>& dims,
                             const std::vector<AggSpec>& aggs,
                             const ExecOptions& options = {});

/// GROUP BY ROLLUP: parallel finest grouping, then the (cheap) prefix chain
/// serially — the n+1 prefixes form a dependency chain, so only the base
/// scan parallelizes. Output contract identical to RollupBy.
Result<Table> ParallelRollupBy(const Table& input,
                               const std::vector<std::string>& dims,
                               const std::vector<AggSpec>& aggs,
                               const ExecOptions& options = {});

/// Parallel DenseArray::SumRange: contiguous innermost segments are the
/// morsel units; per-morsel sums combine in ascending morsel order. Block
/// charges are identical to the serial walk (BlockCounter is atomic).
Result<double> ParallelSumRange(DenseArray& array,
                                const std::vector<DimRange>& ranges,
                                const ExecOptions& options = {});

/// The MOLAP marginal along `dim`: entry i is the sum over every cell whose
/// coordinate on `dim` is i (the paper's Figure 9 row/column totals). Each
/// entry is one independent slab reduction.
Result<std::vector<double>> MarginalSums(DenseArray& array, size_t dim);

/// Parallel MarginalSums: entries are computed concurrently; each entry is
/// produced by exactly one task walking its slab in index order, so the
/// vector is bit-identical to the serial one at any thread count.
Result<std::vector<double>> ParallelMarginalSums(
    DenseArray& array, size_t dim, const ExecOptions& options = {});

}  // namespace statcube::exec

#endif  // STATCUBE_EXEC_PARALLEL_KERNELS_H_
