#include "statcube/exec/task_scheduler.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>

#include "statcube/obs/metrics.h"
#include "statcube/obs/resource.h"
#include "statcube/obs/trace.h"

namespace statcube::exec {

namespace {

// Which scheduler (if any) owns the current thread, and as which worker.
// Keyed by scheduler pointer so tests can run local pools next to Global().
struct ThreadWorker {
  TaskScheduler* scheduler = nullptr;
  int id = -1;
};
thread_local ThreadWorker tl_worker;

// Whether the task most recently popped on this thread came from another
// worker's deque (set by PopOrSteal, read by TaskGroup's wrapper before it
// runs the body — i.e. before any nested pop can overwrite it). Lets the
// per-query ResourceVector attribute work-stealing migrations without the
// scheduler knowing anything about queries.
thread_local bool tl_last_pop_was_steal = false;

obs::Counter& TasksCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("statcube.exec.tasks");
  return c;
}
obs::Counter& StealsCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("statcube.exec.steals");
  return c;
}
obs::Counter& MorselsCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("statcube.exec.morsels");
  return c;
}
obs::Counter& ParallelForCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("statcube.exec.parallel_for");
  return c;
}
obs::Counter& BusyUsCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "statcube.exec.worker_busy_us");
  return c;
}
obs::Counter& CancelledCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "statcube.exec.tasks_cancelled");
  return c;
}
obs::Gauge& QueueDepthGauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::Global().GetGauge("statcube.exec.queue_depth");
  return g;
}
obs::Gauge& PoolSizeGauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::Global().GetGauge("statcube.exec.pool_size");
  return g;
}
obs::Histogram& MorselUsHistogram() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "statcube.exec.morsel_us");
  return h;
}

uint64_t NowUs() {
  return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count());
}

}  // namespace

int HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : int(n);
}

int DefaultThreads() {
  const char* env = std::getenv("STATCUBE_THREADS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != nullptr && *end == '\0' && v > 0)
      return int(std::min<long>(v, kMaxThreads));
    // Malformed or non-positive values fall through to the hardware default
    // rather than silently serializing the whole process.
  }
  return std::min(HardwareThreads(), kMaxThreads);
}

TaskScheduler::TaskScheduler(int num_threads) {
  queues_.reserve(kMaxThreads);
  for (int i = 0; i < kMaxThreads; ++i)
    queues_.push_back(std::make_unique<WorkerQueue>());
  int n = num_threads <= 0 ? DefaultThreads() : num_threads;
  EnsureThreads(std::max(1, std::min(n, kMaxThreads)));
}

TaskScheduler::~TaskScheduler() {
  stop_.store(true, std::memory_order_release);
  // Empty critical section: a worker that observed stop_ == false while
  // holding idle_mu_ is guaranteed to reach its wait (releasing the mutex)
  // before we can pass this section, so the notify below cannot be lost.
  { MutexLock sync(idle_mu_); }
  idle_cv_.NotifyAll();
  // grow_mu_ is free by now (no EnsureThreads can race a destructor), but
  // holding it keeps the threads_ access discipline uniform.
  MutexLock lock(grow_mu_);
  for (auto& t : threads_) t.join();
}

void TaskScheduler::SpawnLocked(int id) {
  threads_.emplace_back([this, id] { WorkerLoop(id); });
}

void TaskScheduler::EnsureThreads(int n) {
  n = std::min(n, kMaxThreads);
  if (n <= num_threads()) return;
  MutexLock lock(grow_mu_);
  int have = active_workers_.load(std::memory_order_acquire);
  if (n <= have) return;
  // Publish the size before spawning: a new worker's first PopOrSteal
  // modulo-indexes by num_threads(), which must never observe a stale zero.
  // Submitters may round-robin to a queue whose worker has not started yet;
  // the queue is preallocated and the task waits there.
  active_workers_.store(n, std::memory_order_release);
  PoolSizeGauge().Set(double(n));  // /varz shows the pool size
  for (int id = have; id < n; ++id) SpawnLocked(id);
}

TaskScheduler& TaskScheduler::Global() {
  static TaskScheduler* pool = new TaskScheduler();  // leaked: outlives exit
  return *pool;
}

void TaskScheduler::Submit(Task task) {
  int target;
  if (tl_worker.scheduler == this && tl_worker.id >= 0) {
    target = tl_worker.id;  // nested submission stays cache-local
  } else {
    target = int(rr_next_.fetch_add(1, std::memory_order_relaxed) %
                 uint64_t(num_threads()));
  }
  {
    MutexLock lock(queues_[size_t(target)]->mu);
    queues_[size_t(target)]->tasks.push_back(std::move(task));
  }
  uint64_t depth = pending_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (obs::Enabled()) {
    TasksCounter().Add(1);
    QueueDepthGauge().Set(double(depth));
  }
  // The wait conditions (stop_, pending_) are atomics, not data guarded by
  // idle_mu_, so a bare notify could land between an idle worker's condition
  // check and its block — a lost wakeup that stalls this task for the full
  // 1 ms wait timeout. The empty critical section forces ordering: any
  // worker that missed the pending_ increment is provably inside its wait
  // (it holds idle_mu_ from check through block) by the time we get past
  // the lock, so the notify always lands.
  { MutexLock sync(idle_mu_); }
  idle_cv_.NotifyOne();
}

bool TaskScheduler::PopOrSteal(int self_id, Task* out) {
  int n = num_threads();
  // Own deque first, LIFO end: the most recently pushed (cache-warm) task.
  if (self_id >= 0) {
    WorkerQueue& own = *queues_[size_t(self_id)];
    MutexLock lock(own.mu);
    if (!own.tasks.empty()) {
      *out = std::move(own.tasks.back());
      own.tasks.pop_back();
      tl_last_pop_was_steal = false;
      return true;
    }
  }
  // Steal FIFO from the other workers, round robin from our right neighbor.
  int start = self_id >= 0 ? (self_id + 1) % n : 0;
  for (int k = 0; k < n; ++k) {
    int victim = (start + k) % n;
    if (victim == self_id) continue;
    WorkerQueue& q = *queues_[size_t(victim)];
    MutexLock lock(q.mu);
    if (!q.tasks.empty()) {
      *out = std::move(q.tasks.front());
      q.tasks.pop_front();
      tl_last_pop_was_steal = true;
      if (obs::Enabled()) StealsCounter().Add(1);
      return true;
    }
  }
  return false;
}

bool TaskScheduler::RunOneTask() {
  Task task;
  int self_id = tl_worker.scheduler == this ? tl_worker.id : -1;
  if (!PopOrSteal(self_id, &task)) return false;
  pending_.fetch_sub(1, std::memory_order_relaxed);
  bool obs_on = obs::Enabled();
  uint64_t t0 = obs_on ? NowUs() : 0;
  task();
  if (obs_on) BusyUsCounter().Add(NowUs() - t0);
  return true;
}

void TaskScheduler::WorkerLoop(int id) {
  tl_worker = {this, id};
  while (true) {
    if (stop_.load(std::memory_order_acquire)) break;
    if (RunOneTask()) continue;
    // Timed wait; the outer loop re-checks stop_/work after every wakeup
    // (spurious or not), so no predicate is needed inside the wait.
    MutexLock lock(idle_mu_);
    if (!stop_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_relaxed) == 0) {
      idle_cv_.WaitFor(idle_mu_, std::chrono::milliseconds(1));
    }
  }
  tl_worker = {nullptr, -1};
}

// ----------------------------------------------------------------- TaskGroup

struct TaskGroup::State {
  Mutex mu;
  CondVar cv;
  size_t outstanding STATCUBE_GUARDED_BY(mu) = 0;
  std::exception_ptr error STATCUBE_GUARDED_BY(mu);
};

TaskGroup::TaskGroup(TaskScheduler* scheduler)
    : scheduler_(scheduler != nullptr ? scheduler
                                      : &TaskScheduler::Global()),
      state_(std::make_shared<State>()) {}

TaskGroup::~TaskGroup() {
  // Unwind-safe join: cancel unstarted bodies, then drain without throwing.
  token_.Cancel();
  while (true) {
    {
      MutexLock lock(state_->mu);
      if (state_->outstanding == 0) break;
    }
    if (!scheduler_->RunOneTask()) {
      // Timed wait; the outer loop re-checks outstanding on every wakeup.
      MutexLock lock(state_->mu);
      if (state_->outstanding != 0)
        state_->cv.WaitFor(state_->mu, std::chrono::microseconds(200));
    }
  }
}

void TaskGroup::Run(std::function<void()> fn) {
  {
    MutexLock lock(state_->mu);
    ++state_->outstanding;
  }
  // Carry the submitting thread's observability context (trace + open span +
  // resource accumulator) with the task, so whatever thread runs it charges
  // the submitting query. Empty when obs is disabled.
  obs::TaskContext ctx = obs::TaskContext::Capture();
  if (ctx.resources != nullptr) ctx.resources->CountTasks();
  scheduler_->Submit(
      [state = state_, token = token_, ctx, fn = std::move(fn)]() mutable {
        if (!token.cancelled()) {
          if (ctx.resources != nullptr && tl_last_pop_was_steal)
            ctx.resources->CountSteal();
          obs::TaskContextScope obs_scope(ctx);
          try {
            fn();
          } catch (...) {
            MutexLock lock(state->mu);
            if (!state->error) state->error = std::current_exception();
            token.Cancel();
          }
        } else if (obs::Enabled()) {
          CancelledCounter().Add(1);
        }
        MutexLock lock(state->mu);
        if (--state->outstanding == 0) state->cv.NotifyAll();
      });
}

void TaskGroup::Wait() {
  while (true) {
    {
      MutexLock lock(state_->mu);
      if (state_->outstanding == 0) break;
    }
    // Help: run queued tasks (any group's) instead of blocking the core.
    if (!scheduler_->RunOneTask()) {
      // Timed wait; the outer loop re-checks outstanding on every wakeup.
      MutexLock lock(state_->mu);
      if (state_->outstanding != 0)
        state_->cv.WaitFor(state_->mu, std::chrono::microseconds(200));
    }
  }
  std::exception_ptr error;
  {
    MutexLock lock(state_->mu);
    std::swap(error, state_->error);
  }
  if (error) std::rethrow_exception(error);
}

// --------------------------------------------------------------- ParallelFor

namespace {

// Claims morsels from `next` and runs the body on each. Returns normally on
// exhaustion or cancellation; lets exceptions propagate to the caller
// (TaskGroup captures them for runner tasks).
void RunMorsels(size_t n, size_t morsel, size_t nmorsels,
                std::atomic<size_t>& next,
                const std::function<void(size_t, size_t, size_t)>& body,
                const CancellationToken* external_cancel,
                const CancelContext* stop, const CancellationToken& group_token,
                const char* label) {
  while (true) {
    if (external_cancel != nullptr && external_cancel->cancelled()) return;
    if (stop != nullptr && stop->Check() != StopReason::kNone) return;
    if (group_token.cancelled()) return;
    size_t m = next.fetch_add(1, std::memory_order_relaxed);
    if (m >= nmorsels) return;
    size_t begin = m * morsel;
    size_t end = std::min(n, begin + morsel);
    bool obs_on = obs::Enabled();
    uint64_t t0 = obs_on ? NowUs() : 0;
    {
      // Attaches under the submitting query's span tree on every runner —
      // pool workers included, via the TaskContext the group propagated.
      obs::Span span(obs_on && obs::CurrentTrace() != nullptr
                         ? std::string(label) + "[" + std::to_string(begin) +
                               ".." + std::to_string(end) + ")"
                         : std::string());
      body(m, begin, end);
    }
    if (obs_on) {
      uint64_t dt = NowUs() - t0;
      MorselsCounter().Add(1);
      MorselUsHistogram().Observe(double(dt));
      if (obs::ResourceAccumulator* r = obs::CurrentResources()) {
        r->ChargeCpu(obs::CurrentThreadId(), dt);
        r->CountMorsels();
      }
    }
  }
}

}  // namespace

void ParallelFor(size_t n,
                 const std::function<void(size_t, size_t, size_t)>& body,
                 const ParallelForOptions& options) {
  if (n == 0) return;
  size_t morsel =
      options.morsel_size == 0 ? kDefaultMorselRows : options.morsel_size;
  size_t nmorsels = (n + morsel - 1) / morsel;
  TaskScheduler& sched = options.scheduler != nullptr
                             ? *options.scheduler
                             : TaskScheduler::Global();
  if (obs::Enabled()) ParallelForCounter().Add(1);

  int workers = options.max_workers;
  if (workers <= 0) workers = sched.num_threads();
  if (workers > sched.num_threads()) sched.EnsureThreads(workers);
  workers = std::min<int>(workers, int(nmorsels));

  std::atomic<size_t> next{0};
  if (workers <= 1 || nmorsels <= 1) {
    // Inline path: same morsel boundaries, ascending order — bit-identical
    // to the pooled path for any kernel that combines by morsel index.
    CancellationToken never;
    RunMorsels(n, morsel, nmorsels, next, body, options.cancel, options.stop,
               never, options.label);
    return;
  }

  TaskGroup group(&sched);
  for (int r = 0; r < workers; ++r) {
    group.Run([&, r] {
      (void)r;
      RunMorsels(n, morsel, nmorsels, next, body, options.cancel, options.stop,
                 group.token(), options.label);
    });
  }
  group.Wait();  // helps run the morsel tasks; rethrows the first exception
}

}  // namespace statcube::exec
