/// \file
/// \brief Builds the canonical cache key (cache/query_key.h) for one
/// (object, parsed query, engine) triple.
///
/// The builder lives in query/ (not cache/) because it must see
/// query/parser.h to canonicalize the parsed request; cache/ sits below
/// query/ in the layer DAG and only defines the key *struct* plus the
/// stores keyed by it. See cache/query_key.h for the key semantics.

#ifndef STATCUBE_QUERY_CACHE_KEY_H_
#define STATCUBE_QUERY_CACHE_KEY_H_

#include "statcube/cache/query_key.h"
#include "statcube/common/status.h"
#include "statcube/core/statistical_object.h"
#include "statcube/query/parser.h"

namespace statcube::query {

/// Builds the canonical key. Cheap (touches two rows of data); fails only
/// when the query has no aggregates.
Result<cache::QueryKey> BuildQueryKey(const StatisticalObject& obj,
                                      const ParsedQuery& query,
                                      QueryEngine engine);

}  // namespace statcube::query

#endif  // STATCUBE_QUERY_CACHE_KEY_H_
