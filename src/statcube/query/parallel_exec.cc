// ExecuteQueryParallel: the relational executor routed through the
// morsel-parallel kernels (statcube/exec). Mirrors ExecuteQuery phase by
// phase — plan/rollup derivation stays serial (it is per-query metadata
// work, not a scan), while the WHERE filter and the grouping/CUBE run
// parallel. Lives in its own translation unit for the same codegen reason
// as profiled.cc: parser.cc's hot parse path must not grow.

#include <set>

#include "statcube/exec/parallel_kernels.h"
#include "statcube/query/parser.h"
#include "statcube/relational/expression.h"

namespace statcube {

Result<Table> ExecuteQueryParallel(const StatisticalObject& obj,
                                   const ParsedQuery& query, int threads,
                                   const CancelContext* stop,
                                   bool vectorized) {
  exec::ExecOptions exec_options;
  exec_options.threads = threads;
  exec_options.stop = stop;
  exec_options.vectorized = vectorized;

  // Hierarchy-level references derive extra columns, exactly as
  // ExecuteQuery does (same spans, same errors, same derived rows).
  std::set<std::string> referenced;
  for (const auto& b : query.by) referenced.insert(b);
  for (const auto& [attr, v] : query.where) referenced.insert(attr);

  Table data = obj.data();
  {
    obs::Span plan_span("plan");
    for (const auto& attr : referenced) {
      if (obj.DimensionNamed(attr).ok()) continue;  // plain dimension
      if (data.schema().Contains(attr)) continue;   // measure or derived
      bool resolved = false;
      for (const auto& d : obj.dimensions()) {
        auto lv = d.LevelNamed(attr);
        if (!lv.ok() || lv->second == 0) continue;
        obs::Span rollup_span("rollup:" + attr);
        const ClassificationHierarchy* hier = lv->first;
        size_t level = lv->second;
        for (size_t step = 0; step < level; ++step) {
          if (!hier->IsStrictAt(step))
            return Status::NotSummarizable(
                "attribute '" + attr + "' reached through non-strict "
                "hierarchy '" + hier->name() + "'");
        }
        STATCUBE_ASSIGN_OR_RETURN(size_t leaf_idx,
                                  data.schema().IndexOf(d.name()));
        Schema s2 = data.schema();
        s2.AddColumn(attr, ValueType::kString);
        Table derived(data.name(), s2);
        for (const Row& r : data.rows()) {
          STATCUBE_ASSIGN_OR_RETURN(std::vector<Value> anc,
                                    hier->Ancestors(0, r[leaf_idx], level));
          Row r2 = r;
          r2.push_back(anc.empty() ? Value::Null() : anc.front());
          derived.AppendRowUnchecked(std::move(r2));
        }
        obs::RecordOperator("rollup", data.num_rows(), derived.num_rows());
        data = std::move(derived);
        resolved = true;
        break;
      }
      if (!resolved)
        return Status::NotFound("no dimension, level or measure named '" +
                                attr + "'");
    }
  }
  if (!query.where.empty()) {
    obs::Span filter_span("filter");
    std::vector<RowPredicate> preds;
    for (const auto& [attr, v] : query.where) {
      STATCUBE_ASSIGN_OR_RETURN(RowPredicate p,
                                expr::ColumnEq(data.schema(), attr, v));
      preds.push_back(std::move(p));
    }
    data = exec::ParallelSelect(data, expr::And(std::move(preds)),
                                exec_options);
    // ParallelSelect returns a bare Table, so a stop that fired during the
    // filter surfaces here (monotonic: once fired, Check keeps reporting it).
    if (stop != nullptr)
      if (StopReason r = stop->Check(); r != StopReason::kNone)
        return StopStatus(r, "filter");
  }

  std::vector<AggSpec> aggs = query.aggs;
  for (auto& a : aggs)
    if (a.output_name.empty()) a.output_name = a.EffectiveName();
  obs::Span agg_span("aggregate");
  if (query.cube) return exec::ParallelCubeBy(data, query.by, aggs,
                                              exec_options);
  return exec::ParallelGroupBy(data, query.by, aggs, exec_options);
}

}  // namespace statcube
