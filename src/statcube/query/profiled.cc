// Profiled / engine-routed query execution (EXPLAIN PROFILE and the
// QueryEngine selector). Lives in its own translation unit so the hot
// ParseQuery/ExecuteQuery path in parser.cc keeps its compact codegen:
// pulling the backend constructors into that TU measurably changed GCC's
// inlining choices for the parser (~20% on BM_ParseOnly).

#include <algorithm>
#include <cctype>
#include <chrono>

#include "statcube/cache/derive.h"
#include "statcube/query/cache_key.h"
#include "statcube/cache/result_cache.h"
#include "statcube/common/cancellation.h"
#include "statcube/obs/flight_recorder.h"
#include "statcube/obs/query_registry.h"
#include "statcube/query/parser.h"

namespace statcube {

namespace {

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return char(std::tolower(c)); });
  return s;
}

}  // namespace

Result<Table> ExecuteQueryOnBackend(const StatisticalObject& obj,
                                    const ParsedQuery& query,
                                    CubeBackend& backend, int threads,
                                    bool vectorized) {
  if (query.cube)
    return Status::Unimplemented("BY CUBE is not backend-expressible");
  if (query.aggs.size() != 1 || query.aggs[0].fn != AggFn::kSum)
    return Status::Unimplemented(
        "cube backends answer exactly one SUM aggregate");
  for (const auto& b : query.by)
    if (!obj.DimensionNamed(b).ok())
      return Status::Unimplemented("BY '" + b + "' is not a plain dimension");
  CubeQuery cq;
  cq.threads = threads;
  cq.vectorized = vectorized;
  cq.group_dims = query.by;
  for (const auto& [attr, v] : query.where) {
    if (!obj.DimensionNamed(attr).ok())
      return Status::Unimplemented("WHERE '" + attr +
                                   "' is not a plain dimension");
    cq.filters.push_back({attr, v});
  }
  obs::Span span("execute");
  return backend.GroupBySum(cq);
}

const char* QueryEngineName(QueryEngine engine) {
  switch (engine) {
    case QueryEngine::kRelational: return "relational";
    case QueryEngine::kMolap: return "molap";
    case QueryEngine::kRolap: return "rolap";
    case QueryEngine::kRolapBitmap: return "rolap+bitmap";
  }
  return "?";
}

Result<QueryEngine> EngineFromName(const std::string& name) {
  std::string n = Lower(name);
  if (n == "relational") return QueryEngine::kRelational;
  if (n == "molap") return QueryEngine::kMolap;
  if (n == "rolap") return QueryEngine::kRolap;
  if (n == "rolap+bitmap" || n == "bitmap") return QueryEngine::kRolapBitmap;
  return Status::InvalidArgument("unknown engine '" + name +
                                 "' (relational|molap|rolap|rolap+bitmap)");
}

Result<ProfiledQuery> QueryProfiled(const StatisticalObject& obj,
                                    const std::string& text,
                                    const QueryOptions& options) {
  obs::EnabledScope enabled(true);
  obs::ProfileScope scope;

  ParsedQuery q;
  STATCUBE_ASSIGN_OR_RETURN(q, ParseQuery(text));

  // Stop configuration: a token copy shared with the caller (if any) plus
  // the absolute deadline. The CancelScope hands it to serial row loops
  // thread-locally; parallel paths get it explicitly via ExecOptions.
  CancellationToken token =
      options.cancel != nullptr ? *options.cancel : CancellationToken();
  CancelContext cctx;
  cctx.token = &token;
  cctx.deadline_us =
      options.deadline_us != 0 ? SteadyNowUs() + options.deadline_us : 0;
  CancelScope cancel_scope(&cctx);

  // Enroll in the live /queryz registry for the duration of execution. The
  // scope is declared after ProfileScope on purpose: it unregisters first,
  // so the registry's borrowed accumulator pointer never dangles.
  obs::ActiveQueryInfo active_info;
  active_info.query = text;
  active_info.engine = QueryEngineName(options.engine);
  active_info.cache_mode = cache::ModeName(options.cache);
  active_info.tenant = options.tenant;
  active_info.threads = options.threads;
  active_info.deadline_us = cctx.deadline_us;
  active_info.token = token;
  active_info.resources = &scope.resources();
  obs::ActiveQueryScope active(std::move(active_info));

  // A query stopped by cancellation or deadline still produces a profile —
  // with outcome "cancelled" / "deadline_exceeded" — so /profiles and the
  // slow-query table tell the whole story, but it is never offered to the
  // result cache (partial work must not masquerade as an answer).
  auto fail = [&](const Status& st) -> Status {
    obs::QueryProfile p = scope.Take();
    p.outcome = st.code() == StatusCode::kCancelled ? "cancelled"
                                                    : "deadline_exceeded";
    p.tenant = options.tenant;
    if (p.backend.empty()) p.backend = "relational";
    if (options.record) obs::FlightRecorder::Global().Record(p, text);
    return st;
  };
  auto is_stop = [](const Status& st) {
    return st.code() == StatusCode::kCancelled ||
           st.code() == StatusCode::kDeadlineExceeded;
  };
  // Admission check: a pre-cancelled token or an already-expired deadline
  // stops the query before it touches any data.
  if (StopReason r = cctx.Check(); r != StopReason::kNone)
    return fail(StopStatus(r, "admission"));

  Table out;
  bool executed = false;

  // Result-cache route: an exact entry is returned byte-for-byte; under
  // Mode::kDerive a cached superset grouping is rolled up instead of
  // touching base data. Either way the backends below are skipped entirely
  // (profile backend "cache"). Key building failures — e.g. a query with no
  // aggregates, which cannot parse anyway — just disable caching.
  cache::ResultCache& rc = cache::ResultCache::Global();
  Result<cache::QueryKey> key = Status::Unimplemented("cache off");
  if (options.cache != cache::Mode::kOff) {
    obs::Span lookup_span("cache.lookup");
    key = query::BuildQueryKey(obj, q, options.engine);
    if (key.ok()) {
      if (std::optional<Table> hit = rc.Lookup(*key)) {
        out = *std::move(hit);
        executed = true;
        scope.profile().cache = "hit";
      } else if (options.cache == cache::Mode::kDerive && key->derivable) {
        if (std::optional<cache::DerivedSource> src =
                rc.FindDerivationSource(*key)) {
          obs::Span derive_span("cache.derive");
          const auto derive_start = std::chrono::steady_clock::now();
          Result<Table> derived = cache::RollupDerived(
              *src, *key, options.threads, options.vectorized);
          if (derived.ok()) {
            out = *std::move(derived);
            executed = true;
            scope.profile().cache = "derived";
            rc.NoteDerivedHit();
            // Offer the derived table as an exact entry for next time;
            // admission weighs the (cheap) re-derivation cost, so tiny
            // roll-ups stay derive-on-demand.
            uint64_t derive_us =
                uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                             std::chrono::steady_clock::now() - derive_start)
                             .count());
            // The source was shape-matched, so the derived table has the
            // request's predicted shape.
            rc.Insert(*key, out, key->backend_shaped, derive_us);
          }
        }
      }
      if (!executed) scope.profile().cache = "miss";
    }
  }
  const bool from_cache = executed;
  if (from_cache) scope.profile().backend = "cache";
  const auto exec_start = std::chrono::steady_clock::now();

  // Cube-engine route: build the backend for the query's measure (its cost
  // is part of the profile, under its own span) and execute there when the
  // query is backend-expressible; otherwise fall back to the relational
  // executor — the profile's backend field says which path answered.
  bool backend_answered = false;
  if (!executed && options.engine != QueryEngine::kRelational) {
    Result<std::unique_ptr<CubeBackend>> backend =
        Status::Internal("unreachable");
    {
      obs::Span build_span("backend.build");
      const std::string& measure =
          q.aggs.empty() ? std::string() : q.aggs[0].column;
      switch (options.engine) {
        case QueryEngine::kMolap:
          backend = MakeMolapBackend(obj, measure);
          break;
        case QueryEngine::kRolap:
          backend = MakeRolapBackend(obj, measure);
          break;
        case QueryEngine::kRolapBitmap:
          backend = MakeRolapBackend(obj, measure,
                                     {.build_bitmap_indexes = true});
          break;
        case QueryEngine::kRelational:
          break;
      }
    }
    if (backend.ok()) {
      Result<Table> res = ExecuteQueryOnBackend(obj, q, **backend,
                                                options.threads,
                                                options.vectorized);
      if (res.ok()) {
        out = std::move(res).value();
        executed = true;
        backend_answered = true;
      } else if (is_stop(res.status())) {
        return fail(res.status());
      } else if (res.status().code() != StatusCode::kUnimplemented) {
        return res.status();
      }
    }
    // Backend build failures (e.g. the aggregate column is not a measure)
    // also fall through to the relational executor, which reports the
    // precise error if the query is genuinely wrong.
  }
  if (!executed) {
    Result<Table> res = Status::Internal("unreachable");
    {
      obs::Span exec_span("execute");
      res = options.threads != 1
                ? ExecuteQueryParallel(obj, q, options.threads, &cctx,
                                       options.vectorized)
                : ExecuteQuery(obj, q);
    }
    if (!res.ok()) {
      if (is_stop(res.status())) return fail(res.status());
      return res.status();
    }
    out = std::move(res).value();
  }

  // Post-execution stop check, before the cache is offered anything: an
  // engine that cannot stop mid-flight (the cube backends check nothing
  // between blocks) still reports the stop here, so a cancelled or expired
  // query is *never* admitted to the result cache — and the /queryz cancel
  // smoke behaves identically across engines.
  if (StopReason r = cctx.Check(); r != StopReason::kNone)
    return fail(StopStatus(r, "post-execution"));

  // Offer a freshly computed result back to the cache; admission compares
  // the measured execution cost (backend build included — that is what a
  // recomputation would pay) against the cost floor.
  if (!from_cache && key.ok()) {
    obs::Span insert_span("cache.insert");
    uint64_t exec_us = uint64_t(std::chrono::duration_cast<
                                    std::chrono::microseconds>(
                                    std::chrono::steady_clock::now() -
                                    exec_start)
                                    .count());
    rc.Insert(*key, out, backend_answered, exec_us);
  }

  ProfiledQuery pq;
  {
    obs::Span render_span("render");
    pq.rendered = out.ToString(options.render_limit);
  }
  pq.table = std::move(out);
  pq.profile = scope.Take();
  pq.profile.result_rows = pq.table.num_rows();
  pq.profile.outcome = "ok";
  pq.profile.tenant = options.tenant;
  if (pq.profile.backend.empty()) pq.profile.backend = "relational";
  // Retain the completed profile in the flight recorder so /profiles (and
  // post-hoc debugging) can see it; queries over the slow threshold emit
  // one structured slow_query log line from inside Record.
  if (options.record)
    pq.profile_id = obs::FlightRecorder::Global().Record(pq.profile, text);
  return pq;
}

}  // namespace statcube
