// Profiled / engine-routed query execution (EXPLAIN PROFILE and the
// QueryEngine selector). Lives in its own translation unit so the hot
// ParseQuery/ExecuteQuery path in parser.cc keeps its compact codegen:
// pulling the backend constructors into that TU measurably changed GCC's
// inlining choices for the parser (~20% on BM_ParseOnly).

#include <algorithm>
#include <cctype>

#include "statcube/obs/flight_recorder.h"
#include "statcube/query/parser.h"

namespace statcube {

namespace {

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return char(std::tolower(c)); });
  return s;
}

}  // namespace

Result<Table> ExecuteQueryOnBackend(const StatisticalObject& obj,
                                    const ParsedQuery& query,
                                    CubeBackend& backend, int threads) {
  if (query.cube)
    return Status::Unimplemented("BY CUBE is not backend-expressible");
  if (query.aggs.size() != 1 || query.aggs[0].fn != AggFn::kSum)
    return Status::Unimplemented(
        "cube backends answer exactly one SUM aggregate");
  for (const auto& b : query.by)
    if (!obj.DimensionNamed(b).ok())
      return Status::Unimplemented("BY '" + b + "' is not a plain dimension");
  CubeQuery cq;
  cq.threads = threads;
  cq.group_dims = query.by;
  for (const auto& [attr, v] : query.where) {
    if (!obj.DimensionNamed(attr).ok())
      return Status::Unimplemented("WHERE '" + attr +
                                   "' is not a plain dimension");
    cq.filters.push_back({attr, v});
  }
  obs::Span span("execute");
  return backend.GroupBySum(cq);
}

const char* QueryEngineName(QueryEngine engine) {
  switch (engine) {
    case QueryEngine::kRelational: return "relational";
    case QueryEngine::kMolap: return "molap";
    case QueryEngine::kRolap: return "rolap";
    case QueryEngine::kRolapBitmap: return "rolap+bitmap";
  }
  return "?";
}

Result<QueryEngine> EngineFromName(const std::string& name) {
  std::string n = Lower(name);
  if (n == "relational") return QueryEngine::kRelational;
  if (n == "molap") return QueryEngine::kMolap;
  if (n == "rolap") return QueryEngine::kRolap;
  if (n == "rolap+bitmap" || n == "bitmap") return QueryEngine::kRolapBitmap;
  return Status::InvalidArgument("unknown engine '" + name +
                                 "' (relational|molap|rolap|rolap+bitmap)");
}

Result<ProfiledQuery> QueryProfiled(const StatisticalObject& obj,
                                    const std::string& text,
                                    const QueryOptions& options) {
  obs::EnabledScope enabled(true);
  obs::ProfileScope scope;

  ParsedQuery q;
  STATCUBE_ASSIGN_OR_RETURN(q, ParseQuery(text));

  // Cube-engine route: build the backend for the query's measure (its cost
  // is part of the profile, under its own span) and execute there when the
  // query is backend-expressible; otherwise fall back to the relational
  // executor — the profile's backend field says which path answered.
  Table out;
  bool executed = false;
  if (options.engine != QueryEngine::kRelational) {
    Result<std::unique_ptr<CubeBackend>> backend =
        Status::Internal("unreachable");
    {
      obs::Span build_span("backend.build");
      const std::string& measure =
          q.aggs.empty() ? std::string() : q.aggs[0].column;
      switch (options.engine) {
        case QueryEngine::kMolap:
          backend = MakeMolapBackend(obj, measure);
          break;
        case QueryEngine::kRolap:
          backend = MakeRolapBackend(obj, measure);
          break;
        case QueryEngine::kRolapBitmap:
          backend = MakeRolapBackend(obj, measure,
                                     {.build_bitmap_indexes = true});
          break;
        case QueryEngine::kRelational:
          break;
      }
    }
    if (backend.ok()) {
      Result<Table> res =
          ExecuteQueryOnBackend(obj, q, **backend, options.threads);
      if (res.ok()) {
        out = std::move(res).value();
        executed = true;
      } else if (res.status().code() != StatusCode::kUnimplemented) {
        return res.status();
      }
    }
    // Backend build failures (e.g. the aggregate column is not a measure)
    // also fall through to the relational executor, which reports the
    // precise error if the query is genuinely wrong.
  }
  if (!executed) {
    obs::Span exec_span("execute");
    if (options.threads != 1) {
      STATCUBE_ASSIGN_OR_RETURN(
          out, ExecuteQueryParallel(obj, q, options.threads));
    } else {
      STATCUBE_ASSIGN_OR_RETURN(out, ExecuteQuery(obj, q));
    }
  }

  ProfiledQuery pq;
  {
    obs::Span render_span("render");
    pq.rendered = out.ToString(options.render_limit);
  }
  pq.table = std::move(out);
  pq.profile = scope.Take();
  pq.profile.result_rows = pq.table.num_rows();
  if (pq.profile.backend.empty()) pq.profile.backend = "relational";
  // Retain the completed profile in the flight recorder so /profiles (and
  // post-hoc debugging) can see it; queries over the slow threshold emit
  // one structured slow_query log line from inside Record.
  if (options.record)
    pq.profile_id = obs::FlightRecorder::Global().Record(pq.profile, text);
  return pq;
}

}  // namespace statcube
