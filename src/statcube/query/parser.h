// A small textual query language over statistical objects — the paper's
// §5.1 point that explicit statistical-object semantics "permit the use of
// very concise query languages". Grammar (case-insensitive keywords):
//
//   query   := [EXPLAIN PROFILE] SELECT aggs [BY dims] [WHERE conds]
//   aggs    := agg (',' agg)*
//   agg     := FN '(' ident ')'          FN in {SUM, COUNT, AVG, MIN, MAX}
//   dims    := ident (',' ident)*
//   conds   := cond (AND cond)*
//   cond    := ident '=' literal
//   literal := 'single-quoted string' | number
//
// Example:  SELECT sum(amount), avg(qty) BY city WHERE product = 'prod1'
//
// Identifiers name dimensions, classification levels, or measures of the
// target object. A dimension-level identifier (e.g. "city" when the object
// stores stores) triggers the automatic-aggregation machinery: the object
// is rolled up along the hierarchy owning that level before grouping — the
// Figure 13 inference, exposed through text.

#ifndef STATCUBE_QUERY_PARSER_H_
#define STATCUBE_QUERY_PARSER_H_

#include <string>
#include <vector>

#include "statcube/cache/mode.h"
#include "statcube/common/cancellation.h"
#include "statcube/common/status.h"
#include "statcube/core/statistical_object.h"
#include "statcube/obs/query_profile.h"
#include "statcube/olap/backend.h"
#include "statcube/relational/aggregate.h"

namespace statcube {

/// A parsed query, independent of any object.
struct ParsedQuery {
  std::vector<AggSpec> aggs;
  std::vector<std::string> by;
  /// BY CUBE(...) — compute all 2^n groupings with ALL rows ([GB+96]'s SQL
  /// extension, paper §5.4).
  bool cube = false;
  std::vector<std::pair<std::string, Value>> where;
  /// EXPLAIN PROFILE prefix: the caller should execute under a ProfileScope
  /// and show the profile alongside the result (olap_cli does).
  bool explain_profile = false;
};

/// Parses the query text (syntax only).
Result<ParsedQuery> ParseQuery(const std::string& text);

/// Executes a parsed query against a statistical object: resolves
/// identifiers (dimension, hierarchy level, or measure), rolls the object up
/// to any referenced hierarchy levels, applies WHERE equalities, groups and
/// aggregates. Returns the result table (group columns then aggregates).
Result<Table> ExecuteQuery(const StatisticalObject& obj,
                           const ParsedQuery& query);

/// Parse + execute.
Result<Table> Query(const StatisticalObject& obj, const std::string& text);

/// ExecuteQuery over the parallel kernels (statcube/exec): the WHERE filter
/// and the grouping/CUBE run morsel-parallel with `threads` workers (0 =
/// exec::DefaultThreads()). Output is bit-identical across thread counts;
/// see the determinism contract in exec/parallel_kernels.h for when it also
/// matches ExecuteQuery exactly. `stop` (optional) is the query's stop
/// context — morsel loops check it between morsels and the call returns
/// kCancelled / kDeadlineExceeded instead of a partial table once it fires.
/// `vectorized` routes the grouping through the radix kernels
/// (exec/vec_kernels.h) — same results, bit for bit.
Result<Table> ExecuteQueryParallel(const StatisticalObject& obj,
                                   const ParsedQuery& query, int threads,
                                   const CancelContext* stop = nullptr,
                                   bool vectorized = exec::DefaultVectorized());

/// Executes a parsed query through a CubeBackend (§6.6: the same textual
/// query served by either physical organization). Only backend-expressible
/// queries are accepted — exactly one SUM aggregate over the backend's
/// measure, BY plain dimensions (no CUBE), WHERE equalities on dimensions;
/// anything else returns Unimplemented so callers can fall back to
/// ExecuteQuery. `threads` != 1 routes the backend's scan/grouping through
/// the parallel kernels (CubeQuery::threads); `vectorized` is forwarded to
/// CubeQuery::vectorized.
Result<Table> ExecuteQueryOnBackend(const StatisticalObject& obj,
                                    const ParsedQuery& query,
                                    CubeBackend& backend, int threads = 1,
                                    bool vectorized = exec::DefaultVectorized());

/// Which execution engine QueryProfiled routes through.
enum class QueryEngine { kRelational, kMolap, kRolap, kRolapBitmap };

/// Name as accepted by EngineFromName / printed in profiles.
const char* QueryEngineName(QueryEngine engine);

/// Parses "relational" / "molap" / "rolap" / "rolap+bitmap".
Result<QueryEngine> EngineFromName(const std::string& name);

struct QueryOptions {
  QueryEngine engine = QueryEngine::kRelational;
  /// Execution parallelism: 1 (default) keeps the legacy serial operators;
  /// N > 1 routes scans and groupings through the morsel-parallel kernels
  /// with N workers; 0 means exec::DefaultThreads() (STATCUBE_THREADS or
  /// the hardware concurrency).
  int threads = 1;
  /// Rows shown by the render phase of QueryProfiled.
  size_t render_limit = 25;
  /// Retain the completed profile in obs::FlightRecorder::Global() (and
  /// emit a slow_query log line past its threshold). Off for callers that
  /// must not perturb the recorder (A/B benchmarks, recorder tests).
  bool record = true;
  /// Result-cache mode (cache/result_cache.h): kOff never consults the
  /// cache, kOn reuses exact-key matches, kDerive additionally answers by
  /// rolling up a cached superset grouping through the lattice. Any mode
  /// returns bit-identical tables; the profile's `cache` field says which
  /// path answered ("hit" / "derived" / "miss").
  cache::Mode cache = cache::Mode::kOff;
  /// Relative execution budget in microseconds, measured from query start
  /// (0 = none). Past it the query stops at the next morsel / row-batch
  /// boundary and QueryProfiled returns kDeadlineExceeded; the profile is
  /// still recorded, with outcome "deadline_exceeded".
  uint64_t deadline_us = 0;
  /// Optional external cancellation flag. QueryProfiled copies the token
  /// (copies share the flag), so the caller — or the /queryz control plane,
  /// which registers its own copy — can cancel mid-flight from any thread;
  /// the query returns kCancelled with outcome "cancelled".
  const CancellationToken* cancel = nullptr;
  /// Tenant the query runs on behalf of (set by the serve/ front door;
  /// empty for untenanted callers like the CLI). Stamped into the profile,
  /// the /queryz registry entry, and the flight-recorder record so every
  /// observability surface can attribute the work.
  std::string tenant;
  /// Routes groupings (parallel path, backends, cache derivation) through
  /// the vectorized radix kernels (exec/vec_kernels.h). Any setting returns
  /// bit-identical tables; defaults to the STATCUBE_VECTORIZED environment
  /// gate. Exposed as `--vectorized` in the CLI and `"vectorized"` in the
  /// /query JSON body.
  bool vectorized = exec::DefaultVectorized();
};

/// A query result with its profile (and the table already rendered, so the
/// render phase is part of the measured span tree).
struct ProfiledQuery {
  Table table;
  std::string rendered;
  obs::QueryProfile profile;
  /// Flight-recorder id of the retained profile (0 if recording was off).
  uint64_t profile_id = 0;
};

/// Parse + execute + render with full observability: enables obs for the
/// call, collects the span tree (parse → plan → rollup → execute → render),
/// per-operator row counts, and block I/O. Cube-engine options build the
/// backend per call (visible as a backend.build span) and fall back to the
/// relational path — noted in profile.backend — when the query is not
/// backend-expressible.
Result<ProfiledQuery> QueryProfiled(const StatisticalObject& obj,
                                    const std::string& text,
                                    const QueryOptions& options = {});

}  // namespace statcube

#endif  // STATCUBE_QUERY_PARSER_H_
