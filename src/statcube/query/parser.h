// A small textual query language over statistical objects — the paper's
// §5.1 point that explicit statistical-object semantics "permit the use of
// very concise query languages". Grammar (case-insensitive keywords):
//
//   query   := SELECT aggs [BY dims] [WHERE conds]
//   aggs    := agg (',' agg)*
//   agg     := FN '(' ident ')'          FN in {SUM, COUNT, AVG, MIN, MAX}
//   dims    := ident (',' ident)*
//   conds   := cond (AND cond)*
//   cond    := ident '=' literal
//   literal := 'single-quoted string' | number
//
// Example:  SELECT sum(amount), avg(qty) BY city WHERE product = 'prod1'
//
// Identifiers name dimensions, classification levels, or measures of the
// target object. A dimension-level identifier (e.g. "city" when the object
// stores stores) triggers the automatic-aggregation machinery: the object
// is rolled up along the hierarchy owning that level before grouping — the
// Figure 13 inference, exposed through text.

#ifndef STATCUBE_QUERY_PARSER_H_
#define STATCUBE_QUERY_PARSER_H_

#include <string>
#include <vector>

#include "statcube/common/status.h"
#include "statcube/core/statistical_object.h"
#include "statcube/relational/aggregate.h"

namespace statcube {

/// A parsed query, independent of any object.
struct ParsedQuery {
  std::vector<AggSpec> aggs;
  std::vector<std::string> by;
  /// BY CUBE(...) — compute all 2^n groupings with ALL rows ([GB+96]'s SQL
  /// extension, paper §5.4).
  bool cube = false;
  std::vector<std::pair<std::string, Value>> where;
};

/// Parses the query text (syntax only).
Result<ParsedQuery> ParseQuery(const std::string& text);

/// Executes a parsed query against a statistical object: resolves
/// identifiers (dimension, hierarchy level, or measure), rolls the object up
/// to any referenced hierarchy levels, applies WHERE equalities, groups and
/// aggregates. Returns the result table (group columns then aggregates).
Result<Table> ExecuteQuery(const StatisticalObject& obj,
                           const ParsedQuery& query);

/// Parse + execute.
Result<Table> Query(const StatisticalObject& obj, const std::string& text);

}  // namespace statcube

#endif  // STATCUBE_QUERY_PARSER_H_
