#include "statcube/query/parser.h"

#include <algorithm>
#include <cctype>
#include <set>

#include "statcube/relational/cube_operator.h"
#include "statcube/relational/expression.h"
#include "statcube/relational/operators.h"

namespace statcube {

namespace {

// ----------------------------------------------------------------- lexer
//
// The token kinds, lexer loop, and aggregate-keyword table below are kept in
// lockstep with the grammar table in docs/QUERY.md. statcube-lint pins the
// region with a content hash: edit it deliberately, then refresh the hash
// with `tools/statcube_lint.py --update-codegen-hash`.

// STATCUBE-CODEGEN-BEGIN lexer sha256:852f07e75f6e
enum class TokKind { kIdent, kNumber, kString, kComma, kLParen, kRParen,
                     kEquals, kEnd };

struct Token {
  TokKind kind;
  std::string text;  // ident (lowercased for keywords), string body, number
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Result<Token> Next() {
    while (pos_ < text_.size() && std::isspace(uchar(text_[pos_]))) ++pos_;
    if (pos_ >= text_.size()) return Token{TokKind::kEnd, ""};
    char c = text_[pos_];
    if (c == ',') return Simple(TokKind::kComma);
    if (c == '(') return Simple(TokKind::kLParen);
    if (c == ')') return Simple(TokKind::kRParen);
    if (c == '=') return Simple(TokKind::kEquals);
    if (c == '\'') {
      ++pos_;
      std::string body;
      while (pos_ < text_.size() && text_[pos_] != '\'') body += text_[pos_++];
      if (pos_ >= text_.size())
        return Status::InvalidArgument("unterminated string literal");
      ++pos_;
      return Token{TokKind::kString, body};
    }
    if (std::isdigit(uchar(c)) || c == '-' || c == '.') {
      std::string num;
      while (pos_ < text_.size() &&
             (std::isdigit(uchar(text_[pos_])) || text_[pos_] == '.' ||
              text_[pos_] == '-'))
        num += text_[pos_++];
      return Token{TokKind::kNumber, num};
    }
    if (std::isalpha(uchar(c)) || c == '_') {
      std::string ident;
      while (pos_ < text_.size() &&
             (std::isalnum(uchar(text_[pos_])) || text_[pos_] == '_' ||
              text_[pos_] == '.' || text_[pos_] == '#' || text_[pos_] == '/' ||
              text_[pos_] == '-'))
        ident += text_[pos_++];
      return Token{TokKind::kIdent, ident};
    }
    return Status::InvalidArgument(std::string("unexpected character '") + c +
                                   "'");
  }

 private:
  static unsigned char uchar(char c) { return static_cast<unsigned char>(c); }
  Token Simple(TokKind k) {
    ++pos_;
    return Token{k, ""};
  }
  const std::string& text_;
  size_t pos_ = 0;
};

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return char(std::tolower(c)); });
  return s;
}

Result<AggFn> AggFnFromName(const std::string& name) {
  std::string n = Lower(name);
  if (n == "sum") return AggFn::kSum;
  if (n == "count") return AggFn::kCountAll;
  if (n == "avg") return AggFn::kAvg;
  if (n == "min") return AggFn::kMin;
  if (n == "max") return AggFn::kMax;
  if (n == "stddev") return AggFn::kStdDev;
  if (n == "var") return AggFn::kVariance;
  return Status::InvalidArgument("unknown aggregate function '" + name + "'");
}
// STATCUBE-CODEGEN-END lexer

}  // namespace

Result<ParsedQuery> ParseQuery(const std::string& text) {
  obs::Span span("parse");
  Lexer lex(text);
  ParsedQuery q;

  STATCUBE_ASSIGN_OR_RETURN(Token tok, lex.Next());
  std::string kw = tok.kind == TokKind::kIdent ? Lower(tok.text) : "";
  if (kw == "explain") {
    STATCUBE_ASSIGN_OR_RETURN(tok, lex.Next());
    if (tok.kind != TokKind::kIdent || Lower(tok.text) != "profile")
      return Status::InvalidArgument("expected PROFILE after EXPLAIN");
    q.explain_profile = true;
    STATCUBE_ASSIGN_OR_RETURN(tok, lex.Next());
    kw = tok.kind == TokKind::kIdent ? Lower(tok.text) : "";
  }
  if (kw != "select")
    return Status::InvalidArgument("query must start with SELECT");

  // Aggregates.
  while (true) {
    STATCUBE_ASSIGN_OR_RETURN(Token fn, lex.Next());
    if (fn.kind != TokKind::kIdent)
      return Status::InvalidArgument("expected aggregate function");
    STATCUBE_ASSIGN_OR_RETURN(AggFn agg, AggFnFromName(fn.text));
    STATCUBE_ASSIGN_OR_RETURN(Token lp, lex.Next());
    if (lp.kind != TokKind::kLParen)
      return Status::InvalidArgument("expected '(' after " + fn.text);
    STATCUBE_ASSIGN_OR_RETURN(Token arg, lex.Next());
    std::string column;
    if (arg.kind == TokKind::kIdent) {
      column = arg.text;
      STATCUBE_ASSIGN_OR_RETURN(arg, lex.Next());
    } else if (agg != AggFn::kCountAll) {
      return Status::InvalidArgument("aggregate needs a column argument");
    }
    if (arg.kind != TokKind::kRParen)
      return Status::InvalidArgument("expected ')'");
    q.aggs.push_back({agg, column, ""});

    STATCUBE_ASSIGN_OR_RETURN(tok, lex.Next());
    if (tok.kind == TokKind::kComma) continue;
    break;
  }

  // Optional BY [CUBE(...)].
  if (tok.kind == TokKind::kIdent && Lower(tok.text) == "by") {
    STATCUBE_ASSIGN_OR_RETURN(Token first, lex.Next());
    if (first.kind == TokKind::kIdent && Lower(first.text) == "cube") {
      // BY CUBE(d1, d2, ...): the [GB+96] GROUP BY CUBE extension.
      q.cube = true;
      STATCUBE_ASSIGN_OR_RETURN(Token lp, lex.Next());
      if (lp.kind != TokKind::kLParen)
        return Status::InvalidArgument("expected '(' after CUBE");
      while (true) {
        STATCUBE_ASSIGN_OR_RETURN(Token dim, lex.Next());
        if (dim.kind != TokKind::kIdent)
          return Status::InvalidArgument("expected dimension inside CUBE()");
        q.by.push_back(dim.text);
        STATCUBE_ASSIGN_OR_RETURN(tok, lex.Next());
        if (tok.kind == TokKind::kComma) continue;
        if (tok.kind != TokKind::kRParen)
          return Status::InvalidArgument("expected ')' closing CUBE");
        break;
      }
      STATCUBE_ASSIGN_OR_RETURN(tok, lex.Next());
    } else {
      if (first.kind != TokKind::kIdent)
        return Status::InvalidArgument("expected dimension name after BY");
      q.by.push_back(first.text);
      STATCUBE_ASSIGN_OR_RETURN(tok, lex.Next());
      while (tok.kind == TokKind::kComma) {
        STATCUBE_ASSIGN_OR_RETURN(Token dim, lex.Next());
        if (dim.kind != TokKind::kIdent)
          return Status::InvalidArgument("expected dimension name after ','");
        q.by.push_back(dim.text);
        STATCUBE_ASSIGN_OR_RETURN(tok, lex.Next());
      }
    }
  }

  // Optional WHERE.
  if (tok.kind == TokKind::kIdent && Lower(tok.text) == "where") {
    while (true) {
      STATCUBE_ASSIGN_OR_RETURN(Token attr, lex.Next());
      if (attr.kind != TokKind::kIdent)
        return Status::InvalidArgument("expected attribute in WHERE");
      STATCUBE_ASSIGN_OR_RETURN(Token eq, lex.Next());
      if (eq.kind != TokKind::kEquals)
        return Status::InvalidArgument("expected '=' in WHERE");
      STATCUBE_ASSIGN_OR_RETURN(Token lit, lex.Next());
      Value value;
      if (lit.kind == TokKind::kString) {
        value = Value(lit.text);
      } else if (lit.kind == TokKind::kNumber) {
        if (lit.text.find('.') != std::string::npos) {
          value = Value(std::stod(lit.text));
        } else {
          value = Value(int64_t(std::stoll(lit.text)));
        }
      } else {
        return Status::InvalidArgument("expected literal after '='");
      }
      q.where.emplace_back(attr.text, value);
      STATCUBE_ASSIGN_OR_RETURN(tok, lex.Next());
      if (tok.kind == TokKind::kIdent && Lower(tok.text) == "and") continue;
      break;
    }
  }

  if (tok.kind != TokKind::kEnd)
    return Status::InvalidArgument("trailing tokens after query");
  return q;
}

Result<Table> ExecuteQuery(const StatisticalObject& obj,
                           const ParsedQuery& query) {
  // Every referenced attribute that is a *hierarchy level* rather than a
  // dimension or measure is derived as an extra column (leaf value -> its
  // ancestor at that level) so that grouping/filtering on it is the implied
  // roll-up of Figure 13 — without collapsing the leaf dimension, which may
  // itself be referenced.
  std::set<std::string> referenced;
  for (const auto& b : query.by) referenced.insert(b);
  for (const auto& [attr, v] : query.where) referenced.insert(attr);

  Table data = obj.data();
  {
    obs::Span plan_span("plan");
    for (const auto& attr : referenced) {
      if (obj.DimensionNamed(attr).ok()) continue;  // plain dimension
      if (data.schema().Contains(attr)) continue;   // measure or derived
      // Find a hierarchy level with this name on some dimension.
      bool resolved = false;
      for (const auto& d : obj.dimensions()) {
        auto lv = d.LevelNamed(attr);
        if (!lv.ok() || lv->second == 0) continue;
        obs::Span rollup_span("rollup:" + attr);
        const ClassificationHierarchy* hier = lv->first;
        size_t level = lv->second;
        // A non-strict path would assign several ancestors to one cell;
        // refuse rather than silently double-count.
        for (size_t step = 0; step < level; ++step) {
          if (!hier->IsStrictAt(step))
            return Status::NotSummarizable(
                "attribute '" + attr + "' reached through non-strict "
                "hierarchy '" + hier->name() + "'");
        }
        STATCUBE_ASSIGN_OR_RETURN(size_t leaf_idx,
                                  data.schema().IndexOf(d.name()));
        Schema s2 = data.schema();
        s2.AddColumn(attr, ValueType::kString);
        Table derived(data.name(), s2);
        for (const Row& r : data.rows()) {
          STATCUBE_ASSIGN_OR_RETURN(std::vector<Value> anc,
                                    hier->Ancestors(0, r[leaf_idx], level));
          Row r2 = r;
          r2.push_back(anc.empty() ? Value::Null() : anc.front());
          derived.AppendRowUnchecked(std::move(r2));
        }
        obs::RecordOperator("rollup", data.num_rows(), derived.num_rows());
        data = std::move(derived);
        resolved = true;
        break;
      }
      if (!resolved)
        return Status::NotFound("no dimension, level or measure named '" +
                                attr + "'");
    }
  }
  if (!query.where.empty()) {
    obs::Span filter_span("filter");
    std::vector<RowPredicate> preds;
    for (const auto& [attr, v] : query.where) {
      STATCUBE_ASSIGN_OR_RETURN(RowPredicate p,
                                expr::ColumnEq(data.schema(), attr, v));
      preds.push_back(std::move(p));
    }
    data = Select(data, expr::And(std::move(preds)));
  }

  // Fill default output names.
  std::vector<AggSpec> aggs = query.aggs;
  for (auto& a : aggs)
    if (a.output_name.empty()) a.output_name = a.EffectiveName();
  obs::Span agg_span("aggregate");
  if (query.cube) return CubeBy(data, query.by, aggs);
  return GroupBy(data, query.by, aggs);
}

Result<Table> Query(const StatisticalObject& obj, const std::string& text) {
  STATCUBE_ASSIGN_OR_RETURN(ParsedQuery q, ParseQuery(text));
  return ExecuteQuery(obj, q);
}

}  // namespace statcube
