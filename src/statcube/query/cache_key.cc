#include "statcube/query/cache_key.h"

#include <algorithm>
#include <cstdio>

#include "statcube/common/epoch.h"
#include "statcube/query/parser.h"

namespace statcube::query {

namespace {

// FNV-1a 64-bit over the bytes of `s`.
uint64_t FnvMix(uint64_t h, const std::string& s) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  h ^= 0xff;  // field separator so {"ab","c"} != {"a","bc"}
  h *= 1099511628211ull;
  return h;
}

// Type-tagged rendering: the string '1', the integer 1 and the double 1.0
// must not collide in predicate fingerprints or row samples.
std::string Tagged(const Value& v) {
  return std::string(ValueTypeName(v.type())) + ":" + v.ToString();
}

uint64_t FingerprintRow(uint64_t h, const Row& row) {
  for (const Value& v : row) h = FnvMix(h, Tagged(v));
  return h;
}

// Identifies the dataset *contents* independently of which backend will scan
// them: object name, shape, and a first/last row sample. Combined with the
// mutation epoch this is the "backend-independent dataset version" of the
// key. The row sample guards against two same-named objects built in one
// process without any mutation in between (the epoch alone would tie them).
uint64_t DatasetFingerprint(const StatisticalObject& obj) {
  uint64_t h = 14695981039346656037ull;
  h = FnvMix(h, obj.name());
  h = FnvMix(h, std::to_string(obj.data().num_rows()));
  for (const auto& d : obj.dimensions()) h = FnvMix(h, d.name());
  for (const auto& m : obj.measures()) h = FnvMix(h, m.name);
  const Table& data = obj.data();
  if (data.num_rows() > 0) {
    h = FingerprintRow(h, data.row(0));
    h = FingerprintRow(h, data.row(data.num_rows() - 1));
  }
  return h;
}

bool Distributive(AggFn fn) {
  switch (fn) {
    case AggFn::kSum:
    case AggFn::kCount:
    case AggFn::kCountAll:
    case AggFn::kMin:
    case AggFn::kMax:
      return true;
    case AggFn::kAvg:
    case AggFn::kVariance:
    case AggFn::kStdDev:
      return false;
  }
  return false;
}

// Mirrors the acceptance conditions of ExecuteQueryOnBackend plus the
// backend constructors: these all depend only on the object and the query,
// so the prediction matches the executed path whenever the backend build
// succeeds — and when it cannot succeed, no backend-shaped entry exists in
// the family either, so a wrong prediction can only miss, never mis-derive.
bool PredictBackendShape(const StatisticalObject& obj, const ParsedQuery& q,
                         QueryEngine engine) {
  if (engine == QueryEngine::kRelational) return false;
  if (q.cube) return false;
  if (q.aggs.size() != 1 || q.aggs[0].fn != AggFn::kSum) return false;
  if (!obj.MeasureNamed(q.aggs[0].column).ok()) return false;
  for (const auto& b : q.by)
    if (!obj.DimensionNamed(b).ok()) return false;
  for (const auto& [attr, v] : q.where)
    if (!obj.DimensionNamed(attr).ok()) return false;
  return true;
}

}  // namespace

Result<cache::QueryKey> BuildQueryKey(const StatisticalObject& obj,
                               const ParsedQuery& query, QueryEngine engine) {
  if (query.aggs.empty())
    return Status::InvalidArgument("query has no aggregates to cache");

  cache::QueryKey key;
  key.by = query.by;
  key.cube = query.cube;
  key.derivable = !query.cube;
  for (const auto& a : query.aggs) {
    key.agg_fns.push_back(a.fn);
    key.agg_names.push_back(a.EffectiveName());
    if (!Distributive(a.fn)) key.derivable = false;
  }
  key.backend_shaped = PredictBackendShape(obj, query, engine);

  char fp[32];
  snprintf(fp, sizeof(fp), "%016llx",
           static_cast<unsigned long long>(DatasetFingerprint(obj)));

  std::string family = fp;
  family += "|e";
  family += std::to_string(DataEpochs::Global().Of(obj.name()));
  family += "|";
  family += QueryEngineName(engine);
  family += "|aggs=";
  for (size_t i = 0; i < query.aggs.size(); ++i) {
    if (i) family += ",";
    family += AggFnName(query.aggs[i].fn);
    family += "(";
    family += query.aggs[i].column;
    family += ")->";
    family += key.agg_names[i];
  }
  // WHERE is conjunctive equality, so order does not affect the result:
  // canonicalize by sorting on (attribute, tagged value).
  std::vector<std::string> preds;
  preds.reserve(query.where.size());
  for (const auto& [attr, v] : query.where)
    preds.push_back(attr + "=" + Tagged(v));
  std::sort(preds.begin(), preds.end());
  family += "|where=";
  for (size_t i = 0; i < preds.size(); ++i) {
    if (i) family += "&";
    family += preds[i];
  }

  key.family = std::move(family);
  key.exact = key.family + "|by=";
  for (size_t i = 0; i < key.by.size(); ++i) {
    if (i) key.exact += ",";
    key.exact += key.by[i];
  }
  if (key.cube) key.exact += "|cube";
  return key;
}

}  // namespace statcube::query
