/// \file
/// \brief Result-cache mode selector shared by QueryOptions and the CLIs.
///
/// Split from result_cache.h so that query/parser.h (included by nearly
/// every translation unit) can carry a cache mode without pulling the whole
/// cache implementation into its include graph.

#ifndef STATCUBE_CACHE_MODE_H_
#define STATCUBE_CACHE_MODE_H_

#include <string>

#include "statcube/common/status.h"

namespace statcube::cache {

/// How QueryProfiled consults the result cache.
enum class Mode {
  kOff,     ///< never consult or populate the cache (the default)
  kOn,      ///< exact-key reuse only
  kDerive,  ///< exact reuse + lattice roll-up from cached supersets
};

/// Name as accepted by ModeFromName ("off" / "on" / "derive").
const char* ModeName(Mode mode);

/// Parses "off" / "on" / "derive" (case-insensitive).
Result<Mode> ModeFromName(const std::string& name);

}  // namespace statcube::cache

#endif  // STATCUBE_CACHE_MODE_H_
