/// \file
/// \brief Thread-safe, lattice-aware LRU cache of query result tables.
///
/// Sits between QueryProfiled / ExecuteQueryOnBackend and the physical
/// backends (relational, MOLAP, ROLAP): the paper's §6.3/§6.6 observation —
/// most OLAP answers are derivable from previously computed aggregates — as
/// an actual fast path. Three ways a request can be satisfied:
///
///  1. **Exact hit**: the canonical key (cache/query_key.h) matches a live
///     entry; the stored table is returned byte-for-byte.
///  2. **Derived hit** (Mode::kDerive): no exact entry, but some cached
///     entry in the same family groups by a *superset* of the requested
///     dimensions (`Lattice::DerivableFrom` on interned dimension masks) and
///     every aggregate is distributive — the entry is rolled up with the
///     ordinary group-by kernels instead of scanning base data
///     (cache/derive.h).
///  3. **Miss**: the caller executes normally and offers the result back via
///     Insert, which applies cost-aware admission: results cheaper to
///     recompute than `admit_min_us` (measured by the QueryProfile span
///     timings) or larger than `max_entry_bytes` are not worth keeping.
///
/// Storage is a sharded LRU keyed by the exact key string, bounded by a byte
/// budget (`Table::ByteSize` of each entry); eviction is per shard. A
/// side index per family maps group-by sets to bitmasks for the derivation
/// search. Invalidation is by construction: keys embed the dataset epoch
/// (common/epoch.h), so entries for mutated objects stop matching and age
/// out via LRU.
///
/// Observability: statcube.cache.{hits,misses,derived_hits,inserts,
/// admission_rejects,evictions} counters and statcube.cache.{bytes,entries}
/// gauges, visible in /metrics and /varz when obs is enabled; identical
/// numbers are always available via stats() for tests.

#ifndef STATCUBE_CACHE_RESULT_CACHE_H_
#define STATCUBE_CACHE_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "statcube/cache/mode.h"
#include "statcube/common/mutex.h"
#include "statcube/common/thread_annotations.h"
#include "statcube/cache/query_key.h"
#include "statcube/relational/table.h"

namespace statcube::cache {

/// A cached superset entry usable to answer a finer query by roll-up; handed
/// to RollupDerived (cache/derive.h).
struct DerivedSource {
  Table result;                     ///< the cached superset result
  std::vector<std::string> by;      ///< its group-by columns (insert order)
  std::vector<AggFn> agg_fns;       ///< original aggregate functions
  std::vector<std::string> agg_cols;  ///< aggregate column names in `result`
};

/// The sharded, byte-bounded, lattice-aware result cache.
class ResultCache {
 public:
  /// Construction-time knobs (see class comment).
  struct Options {
    size_t byte_budget = 64ull << 20;  ///< total across shards
    size_t shards = 8;                 ///< lock-striping factor
    /// Admission floor: results that took less than this to execute are not
    /// cached (0 admits everything — used by tests).
    uint64_t admit_min_us = 50;
    /// Largest admissible entry; 0 means byte_budget / 8.
    size_t max_entry_bytes = 0;
  };

  /// Monotonic counters + instantaneous size, mirrored in statcube.cache.*.
  /// Hit rate over a window is (hits + derived_hits) / (hits + misses):
  /// every lookup counts one hit or one miss, and derived hits are the
  /// subset of misses recovered without touching base data.
  struct Stats {
    uint64_t hits = 0;               ///< exact-key lookups answered
    uint64_t misses = 0;             ///< lookups that found no exact entry
    uint64_t derived_hits = 0;       ///< misses recovered by roll-up
    uint64_t inserts = 0;            ///< entries admitted
    uint64_t admission_rejects = 0;  ///< offers refused (too cheap / large)
    uint64_t evictions = 0;          ///< entries pushed out by the budget
    size_t bytes = 0;                ///< current resident bytes
    size_t entries = 0;              ///< current resident entries
  };

  /// Default Options.
  ResultCache();
  /// Custom budget/sharding/admission knobs.
  explicit ResultCache(const Options& options);

  /// The process-wide cache used by QueryProfiled. Honors the
  /// STATCUBE_CACHE_BYTES environment variable for its byte budget.
  static ResultCache& Global();

  /// Exact lookup; counts a hit (and refreshes LRU) or a miss.
  std::optional<Table> Lookup(const QueryKey& key);

  /// Best derivation source for `key`: a live entry of the same family and
  /// shape whose group-by set is a superset of `key.by`, with distributive
  /// aggregates on both sides — smallest row count wins, mirroring
  /// MaterializedCubeStore::CheapestAncestor. Does not count hits or misses
  /// (call NoteDerivedHit once the roll-up actually succeeds).
  std::optional<DerivedSource> FindDerivationSource(const QueryKey& key);

  /// Records a successful derivation (statcube.cache.derived_hits).
  void NoteDerivedHit();

  /// Offers a computed result. `backend_answered` says whether a cube
  /// backend produced it (shape tag for derivation), `exec_us` is the
  /// measured execution cost driving admission. Returns true if admitted.
  bool Insert(const QueryKey& key, const Table& result, bool backend_answered,
              uint64_t exec_us);

  /// Empties the cache and the derivation index (counters are kept:
  /// they are lifetime totals).
  void Clear();

  /// Snapshot of the counters and current size.
  Stats stats() const;

  /// Current resident bytes across all shards.
  size_t bytes() const { return bytes_.load(std::memory_order_relaxed); }
  /// Current resident entry count across all shards.
  size_t entries() const { return entries_.load(std::memory_order_relaxed); }

  /// Runtime knobs for tests and benchmarks (e.g. force admission with 0, or
  /// block admission entirely to measure steady-state derivation).
  void set_admit_min_us(uint64_t us) {
    admit_min_us_.store(us, std::memory_order_relaxed);
  }
  /// Current admission floor in microseconds.
  uint64_t admit_min_us() const {
    return admit_min_us_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    std::string exact;
    std::string family;
    Table result;
    std::vector<std::string> by;
    std::vector<AggFn> agg_fns;
    std::vector<std::string> agg_cols;
    bool derivable_source = false;
    bool backend_shaped = false;
    size_t bytes = 0;
  };
  struct Shard {
    Mutex mu;
    /// front = most recently used
    std::list<Entry> lru STATCUBE_GUARDED_BY(mu);
    std::unordered_map<std::string, std::list<Entry>::iterator> map
        STATCUBE_GUARDED_BY(mu);
    size_t bytes STATCUBE_GUARDED_BY(mu) = 0;
  };
  /// Derivation index for one family: group-by column names interned to
  /// bits, members listed as (mask, exact key, rows).
  struct FamilyMember {
    std::string exact;
    uint32_t mask = 0;
    size_t rows = 0;
    bool backend_shaped = false;
  };
  struct Family {
    std::unordered_map<std::string, int> bit_of;
    std::vector<FamilyMember> members;
  };

  Shard& ShardFor(const std::string& exact);
  void UpdateSizeMetrics();

  const size_t byte_budget_;
  const size_t per_shard_budget_;
  const size_t max_entry_bytes_;
  std::atomic<uint64_t> admit_min_us_;
  std::vector<std::unique_ptr<Shard>> shards_;

  Mutex index_mu_;
  std::unordered_map<std::string, Family> families_
      STATCUBE_GUARDED_BY(index_mu_);

  std::atomic<size_t> bytes_{0};
  std::atomic<size_t> entries_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> derived_hits_{0};
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> admission_rejects_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace statcube::cache

#endif  // STATCUBE_CACHE_RESULT_CACHE_H_
