/// \file
/// \brief Roll-up of a cached superset result to answer a finer grouping.
///
/// The execution half of the cache's derived-hit path: given a cached entry
/// whose group-by set is a superset of the request ([HUR96] derivability,
/// `Lattice::DerivableFrom`), re-aggregate the *result* table — typically
/// orders of magnitude smaller than the base data — with the existing
/// serial/parallel group-by kernels. Only distributive aggregates are
/// eligible (sum of sums, count as sum of counts, min of mins, max of
/// maxes); avg/variance/stddev are not re-aggregable from finalized values
/// and never reach this code (QueryKey::derivable gates them out).
///
/// The output contract matches the direct execution path bit-for-bit for
/// the same reasons PR 3's parallel kernels match the serial ones: identical
/// schema/table naming, canonical group sort, and exact arithmetic whenever
/// the measure sums are integer-valued (per-group partial sums are a
/// reassociation of the same additions). Counts are re-finalized to int64
/// so a derived COUNT renders identically to a direct one.

#ifndef STATCUBE_CACHE_DERIVE_H_
#define STATCUBE_CACHE_DERIVE_H_

#include "statcube/cache/result_cache.h"
#include "statcube/common/status.h"
#include "statcube/relational/table.h"

namespace statcube::exec {
/// See exec/parallel_kernels.h.
bool DefaultVectorized();
}  // namespace statcube::exec

namespace statcube::cache {

/// Rolls `src` (a cached superset result) up to `key.by`. `threads` follows
/// QueryOptions::threads: 1 = serial kernels, anything else = the morsel
/// engine with that worker cap (0 = default pool); `vectorized` additionally
/// routes the parallel grouping through the radix kernels
/// (exec/vec_kernels.h). The returned table is bit-identical to executing
/// `key`'s query directly.
Result<Table> RollupDerived(const DerivedSource& src, const QueryKey& key,
                            int threads,
                            bool vectorized = exec::DefaultVectorized());

}  // namespace statcube::cache

#endif  // STATCUBE_CACHE_DERIVE_H_
