#include "statcube/cache/derive.h"

#include <algorithm>
#include <cmath>

#include "statcube/common/str_util.h"
#include "statcube/exec/parallel_kernels.h"
#include "statcube/relational/aggregate.h"

namespace statcube::cache {

namespace {

// Re-aggregation function applied to the *finalized* column: sums and both
// counts add up; min/max idempotently re-reduce.
AggFn ReaggFn(AggFn original) {
  switch (original) {
    case AggFn::kSum:
    case AggFn::kCount:
    case AggFn::kCountAll:
      return AggFn::kSum;
    case AggFn::kMin:
      return AggFn::kMin;
    case AggFn::kMax:
      return AggFn::kMax;
    default:
      return original;  // unreachable: QueryKey::derivable gates these out
  }
}

bool IsCount(AggFn fn) {
  return fn == AggFn::kCount || fn == AggFn::kCountAll;
}

// The direct paths name their output from the source table and the group
// list (`<source>_by_<dims>`, see relational GroupBy and the ROLAP backend);
// MOLAP uses the fixed name "groupby_molap". Rebase the cached name onto the
// requested group list so a derived table is indistinguishable from a
// directly computed one.
std::string DerivedName(const std::string& cached_name,
                        const std::vector<std::string>& cached_by,
                        const std::vector<std::string>& want_by) {
  std::string suffix = "_by_" + Join(cached_by, "_");
  if (cached_name.size() >= suffix.size() &&
      cached_name.compare(cached_name.size() - suffix.size(), suffix.size(),
                          suffix) == 0) {
    return cached_name.substr(0, cached_name.size() - suffix.size()) +
           "_by_" + Join(want_by, "_");
  }
  return cached_name;
}

}  // namespace

Result<Table> RollupDerived(const DerivedSource& src, const QueryKey& key,
                            int threads, bool vectorized) {
  std::vector<AggSpec> respecs;
  respecs.reserve(src.agg_fns.size());
  for (size_t i = 0; i < src.agg_fns.size(); ++i)
    respecs.push_back(
        {ReaggFn(src.agg_fns[i]), src.agg_cols[i], src.agg_cols[i]});

  GroupedStates states;
  if (threads != 1) {
    exec::ExecOptions xo;
    xo.threads = threads;
    xo.vectorized = vectorized;
    STATCUBE_ASSIGN_OR_RETURN(
        states, exec::ParallelGroupByStates(src.result, key.by, respecs, xo));
  } else {
    STATCUBE_ASSIGN_OR_RETURN(
        states, GroupByStates(src.result, key.by, respecs));
  }

  // StatesToTable with one twist: counts re-finalize to int64 (Finalize of
  // the kSum re-aggregate would say double, and a derived COUNT must render
  // exactly like a direct one).
  Schema schema;
  for (const auto& g : key.by) schema.AddColumn(g, ValueType::kString);
  for (const auto& r : respecs)
    schema.AddColumn(r.output_name, ValueType::kDouble);
  Table out(DerivedName(src.result.name(), src.by, key.by), schema);
  for (const auto& [group, st] : states) {
    Row row = group;
    for (size_t i = 0; i < respecs.size(); ++i) {
      if (IsCount(src.agg_fns[i])) {
        row.push_back(Value(int64_t(std::llround(st[i].sum))));
      } else {
        row.push_back(st[i].Finalize(respecs[i].fn));
      }
    }
    out.AppendRowUnchecked(std::move(row));
  }
  std::sort(out.mutable_rows().begin(), out.mutable_rows().end(),
            [n = key.by.size()](const Row& a, const Row& b) {
              for (size_t c = 0; c < n; ++c) {
                int cmp = Value::Compare(a[c], b[c]);
                if (cmp != 0) return cmp < 0;
              }
              return false;
            });
  return out;
}

}  // namespace statcube::cache
