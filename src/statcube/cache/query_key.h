/// \file
/// \brief Canonical cache key for one (object, parsed query, engine) triple.
///
/// The key is built so that two requests share an entry exactly when they
/// are guaranteed to produce bit-identical result tables:
///
///  - **Dataset version**: a fingerprint of the object (name, row count,
///    dimension/measure names, first/last row) combined with the object's
///    mutation epoch (common/epoch.h). Any load or append changes the epoch,
///    so stale entries can never be served.
///  - **Predicate fingerprint**: WHERE equalities sorted by attribute then
///    value (with a value-type tag, so the string '1' never collides with
///    the integer 1) — `WHERE a=1 AND b=2` and `WHERE b=2 AND a=1` share.
///  - **Measure / aggregate list**: functions, columns and output names in
///    request order (output column order is part of the result).
///  - **Engine**: the three physical backends produce differently *shaped*
///    tables for the same logical answer (MOLAP enumerates the full cross
///    product with zeros; ROLAP and the relational path emit observed groups
///    and differ in table/column naming), so entries never cross engines.
///
/// Two strings are derived from this: `family` (everything except the
/// group-by list — the unit inside which lattice derivation is sound) and
/// `exact` (family plus the ordered BY list — the unit of bit-identical
/// reuse). `BY b, a` therefore misses exactly but derives from a cached
/// `BY a, b` via a (free) roll-up.
///
/// The *builder* lives in query/cache_key.h: it needs query/parser.h, which
/// sits above cache/ in the layer DAG.

#ifndef STATCUBE_CACHE_QUERY_KEY_H_
#define STATCUBE_CACHE_QUERY_KEY_H_

#include <string>
#include <vector>

#include "statcube/relational/aggregate.h"

namespace statcube::cache {

/// Canonical identity of one query against one dataset version, plus the
/// metadata the cache needs for admission and lattice derivation.
struct QueryKey {
  /// Everything but the group-by list; the scope of derivation.
  std::string family;
  /// `family` + the ordered BY list (+ CUBE); the scope of exact reuse.
  std::string exact;
  /// Requested group-by columns, in request order.
  std::vector<std::string> by;
  /// Aggregate functions, in request order.
  std::vector<AggFn> agg_fns;
  /// Relational-shape output column names (AggSpec::EffectiveName), in
  /// request order. Backend-shaped results use the single column "sum".
  std::vector<std::string> agg_names;
  /// BY CUBE(...) request — cacheable exactly, never derivable.
  bool cube = false;
  /// All aggregates are distributive (sum/count/min/max): the result can be
  /// rolled up from a cached superset, and the entry can serve as a source.
  bool derivable = false;
  /// Predicted answer shape: true when ExecuteQueryOnBackend would accept
  /// the query for this engine (single SUM of a real measure, plain
  /// dimensions only). Derivation never crosses shapes.
  bool backend_shaped = false;
};

}  // namespace statcube::cache

#endif  // STATCUBE_CACHE_QUERY_KEY_H_
