#include "statcube/cache/result_cache.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <functional>

#include "statcube/materialize/lattice.h"
#include "statcube/obs/metrics.h"
#include "statcube/obs/resource.h"

namespace statcube::cache {

namespace {

// Everything is behind the obs gate, like the rest of the codebase: with
// observability disabled the cache maintains only its own relaxed atomics.
void Count(const char* name, uint64_t n = 1) {
  if (!obs::Enabled()) return;
  obs::MetricsRegistry::Global()
      .GetCounter(std::string("statcube.cache.") + name)
      .Add(n);
}

}  // namespace

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kOff: return "off";
    case Mode::kOn: return "on";
    case Mode::kDerive: return "derive";
  }
  return "?";
}

Result<Mode> ModeFromName(const std::string& name) {
  std::string n;
  n.reserve(name.size());
  for (char c : name) n.push_back(char(std::tolower((unsigned char)c)));
  if (n == "off") return Mode::kOff;
  if (n == "on") return Mode::kOn;
  if (n == "derive") return Mode::kDerive;
  return Status::InvalidArgument("unknown cache mode '" + name +
                                 "' (off|on|derive)");
}

ResultCache::ResultCache() : ResultCache(Options()) {}

ResultCache::ResultCache(const Options& options)
    : byte_budget_(options.byte_budget),
      per_shard_budget_(options.byte_budget /
                        std::max<size_t>(1, options.shards)),
      max_entry_bytes_(options.max_entry_bytes != 0 ? options.max_entry_bytes
                                                    : options.byte_budget / 8),
      admit_min_us_(options.admit_min_us) {
  size_t n = std::max<size_t>(1, options.shards);
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

ResultCache& ResultCache::Global() {
  static ResultCache* instance = [] {
    Options o;
    if (const char* env = std::getenv("STATCUBE_CACHE_BYTES")) {
      char* end = nullptr;
      unsigned long long v = std::strtoull(env, &end, 10);
      if (end != env && v > 0) o.byte_budget = size_t(v);
    }
    return new ResultCache(o);
  }();
  return *instance;
}

ResultCache::Shard& ResultCache::ShardFor(const std::string& exact) {
  return *shards_[std::hash<std::string>()(exact) % shards_.size()];
}

std::optional<Table> ResultCache::Lookup(const QueryKey& key) {
  Shard& shard = ShardFor(key.exact);
  {
    MutexLock lock(shard.mu);
    auto it = shard.map.find(key.exact);
    if (it != shard.map.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      hits_.fetch_add(1, std::memory_order_relaxed);
      Count("hits");
      obs::RecordCacheProbe(obs::CacheProbe::kHit);
      return it->second->result;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  Count("misses");
  obs::RecordCacheProbe(obs::CacheProbe::kMiss);
  return std::nullopt;
}

std::optional<DerivedSource> ResultCache::FindDerivationSource(
    const QueryKey& key) {
  if (!key.derivable || key.cube) return std::nullopt;

  // Candidate scan under the index lock only; the entries themselves are
  // fetched afterwards shard by shard (an entry evicted in between simply
  // falls through to the next candidate).
  std::vector<std::string> candidates;
  {
    MutexLock lock(index_mu_);
    auto fam_it = families_.find(key.family);
    if (fam_it == families_.end()) return std::nullopt;
    Family& fam = fam_it->second;
    uint32_t want = 0;
    for (const auto& name : key.by) {
      auto bit = fam.bit_of.find(name);
      // A dimension no cached entry groups by: nothing can be a superset.
      if (bit == fam.bit_of.end()) return std::nullopt;
      want |= 1u << bit->second;
    }
    std::vector<const FamilyMember*> fit;
    for (const auto& m : fam.members)
      if (m.backend_shaped == key.backend_shaped && m.exact != key.exact &&
          Lattice::DerivableFrom(want, m.mask))
        fit.push_back(&m);
    // Cheapest ancestor first (ties broken on the key for determinism),
    // mirroring MaterializedCubeStore::CheapestAncestor.
    std::sort(fit.begin(), fit.end(),
              [](const FamilyMember* a, const FamilyMember* b) {
                if (a->rows != b->rows) return a->rows < b->rows;
                return a->exact < b->exact;
              });
    for (const auto* m : fit) candidates.push_back(m->exact);
  }

  for (const auto& exact : candidates) {
    Shard& shard = ShardFor(exact);
    MutexLock lock(shard.mu);
    auto it = shard.map.find(exact);
    if (it == shard.map.end()) continue;  // evicted since the index scan
    Entry& e = *it->second;
    if (!e.derivable_source) continue;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);  // keep hot
    DerivedSource src;
    src.result = e.result;
    src.by = e.by;
    src.agg_fns = e.agg_fns;
    src.agg_cols = e.agg_cols;
    return src;
  }
  return std::nullopt;
}

void ResultCache::NoteDerivedHit() {
  derived_hits_.fetch_add(1, std::memory_order_relaxed);
  Count("derived_hits");
  obs::RecordCacheProbe(obs::CacheProbe::kDerived);
}

bool ResultCache::Insert(const QueryKey& key, const Table& result,
                         bool backend_answered, uint64_t exec_us) {
  if (exec_us < admit_min_us_.load(std::memory_order_relaxed)) {
    admission_rejects_.fetch_add(1, std::memory_order_relaxed);
    Count("admission_rejects");
    return false;
  }
  size_t entry_bytes = result.ByteSize() + key.exact.size() + sizeof(Entry);
  if (entry_bytes > max_entry_bytes_) {
    admission_rejects_.fetch_add(1, std::memory_order_relaxed);
    Count("admission_rejects");
    return false;
  }

  Entry e;
  e.exact = key.exact;
  e.family = key.family;
  e.result = result;
  e.by = key.by;
  e.agg_fns = key.agg_fns;
  // Actual shape, not predicted: a backend answer always has the single
  // aggregate column "sum" (olap/backend.h), anything else keeps the
  // relational EffectiveName columns.
  e.agg_cols = backend_answered ? std::vector<std::string>{"sum"}
                                : key.agg_names;
  e.derivable_source = key.derivable && !key.cube;
  e.backend_shaped = backend_answered;
  e.bytes = entry_bytes;

  std::vector<std::pair<std::string, std::string>> evicted;  // family, exact
  bool inserted = false;
  {
    Shard& shard = ShardFor(key.exact);
    MutexLock lock(shard.mu);
    auto it = shard.map.find(key.exact);
    if (it != shard.map.end()) {
      // Deterministic execution means an existing entry is already this
      // result; just refresh recency.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return true;
    }
    shard.lru.push_front(std::move(e));
    shard.map[key.exact] = shard.lru.begin();
    shard.bytes += entry_bytes;
    bytes_.fetch_add(entry_bytes, std::memory_order_relaxed);
    entries_.fetch_add(1, std::memory_order_relaxed);
    inserted = true;
    while (shard.bytes > per_shard_budget_ && shard.lru.size() > 1) {
      Entry& victim = shard.lru.back();
      evicted.emplace_back(victim.family, victim.exact);
      shard.bytes -= victim.bytes;
      bytes_.fetch_sub(victim.bytes, std::memory_order_relaxed);
      entries_.fetch_sub(1, std::memory_order_relaxed);
      shard.map.erase(victim.exact);
      shard.lru.pop_back();
    }
  }

  if (inserted) {
    inserts_.fetch_add(1, std::memory_order_relaxed);
    Count("inserts");
    MutexLock lock(index_mu_);
    if (key.derivable && !key.cube) {
      Family& fam = families_[key.family];
      uint32_t mask = 0;
      bool indexable = true;
      for (const auto& name : key.by) {
        auto [bit, ignore] =
            fam.bit_of.try_emplace(name, int(fam.bit_of.size()));
        if (bit->second >= 32) {  // lattice masks are 32-bit; skip the index
          indexable = false;
          break;
        }
        mask |= 1u << bit->second;
      }
      if (indexable)
        fam.members.push_back(
            {key.exact, mask, result.num_rows(), backend_answered});
    }
    for (const auto& [family, exact] : evicted) {
      auto fam_it = families_.find(family);
      if (fam_it == families_.end()) continue;
      auto& members = fam_it->second.members;
      members.erase(std::remove_if(members.begin(), members.end(),
                                   [&exact = exact](const FamilyMember& m) {
                                     return m.exact == exact;
                                   }),
                    members.end());
      if (members.empty()) families_.erase(fam_it);
    }
  }
  if (!evicted.empty()) {
    evictions_.fetch_add(evicted.size(), std::memory_order_relaxed);
    Count("evictions", evicted.size());
  }
  UpdateSizeMetrics();
  return true;
}

void ResultCache::Clear() {
  for (auto& shard : shards_) {
    MutexLock lock(shard->mu);
    shard->lru.clear();
    shard->map.clear();
    shard->bytes = 0;
  }
  {
    MutexLock lock(index_mu_);
    families_.clear();
  }
  bytes_.store(0, std::memory_order_relaxed);
  entries_.store(0, std::memory_order_relaxed);
  UpdateSizeMetrics();
}

ResultCache::Stats ResultCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.derived_hits = derived_hits_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.admission_rejects = admission_rejects_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.bytes = bytes_.load(std::memory_order_relaxed);
  s.entries = entries_.load(std::memory_order_relaxed);
  return s;
}

void ResultCache::UpdateSizeMetrics() {
  if (!obs::Enabled()) return;
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetGauge("statcube.cache.bytes")
      .Set(double(bytes_.load(std::memory_order_relaxed)));
  reg.GetGauge("statcube.cache.entries")
      .Set(double(entries_.load(std::memory_order_relaxed)));
}

}  // namespace statcube::cache
