// Synthetic HMO workload (paper §3.2(iii)): cost per patient per procedure
// with the paper's defining complication — the disease classification is
// NOT a strict hierarchy ("lung cancer" belongs under both "cancer" and
// "respiratory"), so naive roll-ups double-count. Privacy matters here too;
// the micro-data feeds the privacy benches.

#ifndef STATCUBE_WORKLOAD_HMO_H_
#define STATCUBE_WORKLOAD_HMO_H_

#include <cstdint>

#include "statcube/common/status.h"
#include "statcube/core/statistical_object.h"

namespace statcube {

/// Size knobs for the HMO generator.
struct HmoOptions {
  int num_hospitals = 6;
  int num_cities = 3;
  int num_months = 6;
  int num_visits = 4000;
  /// Fraction of diseases classified under two categories (non-strict).
  double multi_category_fraction = 0.25;
  uint64_t seed = 4;
};

/// Builds the HMO statistical object: cost (flow) and visits (flow) by
/// disease x hospital x month; disease classified into categories
/// non-strictly; hospital carries a city hierarchy.
Result<StatisticalObject> MakeHmoWorkload(const HmoOptions& options = {});

/// Visit-level micro-data (patient, disease, hospital, month, cost) for
/// privacy experiments.
Result<Table> MakeHmoMicroData(const HmoOptions& options = {});

}  // namespace statcube

#endif  // STATCUBE_WORKLOAD_HMO_H_
