#include "statcube/workload/hmo.h"

#include <map>

#include "statcube/common/rng.h"

namespace statcube {

namespace {

// A fixed disease list; some belong to two categories.
struct DiseaseDef {
  const char* name;
  const char* category;
  const char* second_category;  // nullptr for strictly classified diseases
};

const DiseaseDef kDiseases[] = {
    {"lung cancer", "cancer", "respiratory"},
    {"leukemia", "cancer", nullptr},
    {"melanoma", "cancer", nullptr},
    {"asthma", "respiratory", nullptr},
    {"pneumonia", "respiratory", "infectious"},
    {"influenza", "infectious", nullptr},
    {"hepatitis", "infectious", nullptr},
    {"arthritis", "musculoskeletal", nullptr},
    {"fracture", "musculoskeletal", nullptr},
    {"hypertension", "cardiovascular", nullptr},
    {"stroke", "cardiovascular", nullptr},
    {"arrhythmia", "cardiovascular", nullptr},
};
constexpr int kNumDiseases = int(sizeof(kDiseases) / sizeof(kDiseases[0]));

std::string HospitalName(int h) { return "hosp" + std::to_string(h); }
std::string MonthName(int m) { return "1996-" + std::to_string(1 + m); }

ClassificationHierarchy MakeDiseaseHierarchy(double multi_fraction, Rng* rng) {
  ClassificationHierarchy h("by_category", {"disease", "disease_category"});
  for (const auto& d : kDiseases) {
    (void)h.Link(0, Value(d.name), Value(d.category));
    if (d.second_category && rng->Bernoulli(multi_fraction * 4)) {
      (void)h.Link(0, Value(d.name), Value(d.second_category));
    }
  }
  h.DeclareComplete(0, "cost");
  h.DeclareComplete(0, "visits");
  return h;
}

}  // namespace

Result<StatisticalObject> MakeHmoWorkload(const HmoOptions& options) {
  StatisticalObject obj("hmo");
  Rng rng(options.seed);

  Dimension disease("disease");
  disease.AddHierarchy(
      MakeDiseaseHierarchy(options.multi_category_fraction, &rng));
  STATCUBE_RETURN_NOT_OK(obj.AddDimension(disease));

  Dimension hospital("hospital", DimensionKind::kSpatial);
  ClassificationHierarchy geo("by_city", {"hospital", "city"});
  for (int h = 0; h < options.num_hospitals; ++h)
    STATCUBE_RETURN_NOT_OK(geo.Link(
        0, Value(HospitalName(h)),
        Value("city" + std::to_string(h % options.num_cities))));
  geo.DeclareComplete(0, "cost");
  geo.DeclareComplete(0, "visits");
  hospital.AddHierarchy(geo);
  STATCUBE_RETURN_NOT_OK(obj.AddDimension(hospital));

  STATCUBE_RETURN_NOT_OK(
      obj.AddDimension(Dimension("month", DimensionKind::kTemporal)));

  STATCUBE_RETURN_NOT_OK(
      obj.AddMeasure({"cost", "dollars", MeasureType::kFlow, AggFn::kSum, ""}));
  STATCUBE_RETURN_NOT_OK(
      obj.AddMeasure({"visits", "", MeasureType::kFlow, AggFn::kSum, ""}));

  // Aggregate the visit stream into cells.
  std::map<Row, std::pair<double, int64_t>> cells;
  for (int i = 0; i < options.num_visits; ++i) {
    const auto& d = kDiseases[rng.Uniform(uint64_t(kNumDiseases))];
    Row coord = {Value(d.name),
                 Value(HospitalName(
                     int(rng.Uniform(uint64_t(options.num_hospitals))))),
                 Value(MonthName(int(rng.Uniform(uint64_t(options.num_months)))))};
    auto& cell = cells[coord];
    cell.first += 100.0 + double(rng.Uniform(5000));
    cell.second += 1;
  }
  for (const auto& [coord, cv] : cells)
    STATCUBE_RETURN_NOT_OK(
        obj.AddCell(coord, {Value(cv.first), Value(cv.second)}));
  return obj;
}

Result<Table> MakeHmoMicroData(const HmoOptions& options) {
  Schema s;
  s.AddColumn("patient", ValueType::kString);
  s.AddColumn("disease", ValueType::kString);
  s.AddColumn("hospital", ValueType::kString);
  s.AddColumn("month", ValueType::kString);
  s.AddColumn("cost", ValueType::kInt64);
  Table t("hmo_micro", s);
  Rng rng(options.seed + 5000);
  for (int i = 0; i < options.num_visits; ++i) {
    const auto& d = kDiseases[rng.Uniform(uint64_t(kNumDiseases))];
    t.AppendRowUnchecked(
        {Value("patient" + std::to_string(rng.Uniform(
                               uint64_t(options.num_visits / 4 + 1)))),
         Value(d.name),
         Value(HospitalName(int(rng.Uniform(uint64_t(options.num_hospitals))))),
         Value(MonthName(int(rng.Uniform(uint64_t(options.num_months))))),
         Value(int64_t(100 + rng.Uniform(5000)))});
  }
  return t;
}

}  // namespace statcube
