// Synthetic census workload (paper §3.1(i)): population and average income
// by county x race x sex x age group x year, with a geographic
// classification hierarchy (county -> state) and the structural properties
// the paper calls out — a stock population measure (no summing over years),
// an average-income measure weighted by population, and a deep, voluminous
// geography. Deterministic given the seed; see DESIGN.md's substitution
// note for why synthetic data preserves the paper's behaviours.

#ifndef STATCUBE_WORKLOAD_CENSUS_H_
#define STATCUBE_WORKLOAD_CENSUS_H_

#include <cstdint>

#include "statcube/common/status.h"
#include "statcube/core/statistical_object.h"

namespace statcube {

/// Size knobs for the census generator.
struct CensusOptions {
  int num_states = 4;
  int counties_per_state = 6;
  /// States per census region; the geography becomes the 3-level
  /// county -> state -> region hierarchy the paper calls "voluminous".
  int states_per_region = 2;
  int num_races = 4;
  int num_age_groups = 9;
  int num_years = 3;
  uint64_t seed = 1;
};

/// Builds the census statistical object. Dimensions: county (spatial, with
/// the 3-level geo hierarchy county -> state -> region, each step declared
/// complete for population), race, sex, age_group, year (temporal).
/// Measures: population (stock), avg_income (value-per-unit, weighted by
/// population).
Result<StatisticalObject> MakeCensusWorkload(const CensusOptions& options = {});

/// The micro-data the object summarizes: one row per person-group sample
/// (used by privacy and sampling benches). Columns: county, state, race,
/// sex, age_group, year, income.
Result<Table> MakeCensusMicroData(int num_people, const CensusOptions& options = {});

}  // namespace statcube

#endif  // STATCUBE_WORKLOAD_CENSUS_H_
