// Synthetic stock-market workload (paper §3.2(ii)): a weekday-only time
// series of closing prices (a stock/level measure — averaging over time is
// meaningful, summing is not) and trading volumes (a flow), with multiple
// classifications over the stock dimension: by industry and by rating.

#ifndef STATCUBE_WORKLOAD_STOCKS_H_
#define STATCUBE_WORKLOAD_STOCKS_H_

#include <cstdint>

#include "statcube/common/status.h"
#include "statcube/core/statistical_object.h"

namespace statcube {

/// Size knobs for the stock-market generator.
struct StockOptions {
  int num_stocks = 20;
  int num_industries = 5;
  int num_weeks = 8;  ///< 5 weekdays each; weekends/holidays absent
  uint64_t seed = 3;
};

/// Builds the stock statistical object: close (stock measure, avg) and
/// volume (flow, sum) by stock x day, day hierarchy day -> week, stock
/// classified by_industry and by_rating.
Result<StatisticalObject> MakeStockWorkload(const StockOptions& options = {});

}  // namespace statcube

#endif  // STATCUBE_WORKLOAD_STOCKS_H_
