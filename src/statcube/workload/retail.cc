#include "statcube/workload/retail.h"

#include "statcube/common/rng.h"

namespace statcube {

namespace {

std::string ProductName(int p) { return "prod" + std::to_string(p); }
std::string StoreName(int city, int store) {
  // Store numbers are only unique within a city (ID dependency, §2.2).
  return "city" + std::to_string(city) + "/s#" + std::to_string(store);
}
std::string DayName(int day) {
  int month = day / 30, dom = day % 30;
  return "1996-" + std::to_string(1 + month) + "-" + std::to_string(1 + dom);
}
std::string MonthName(int day) {
  return "1996-" + std::to_string(1 + day / 30);
}

}  // namespace

Result<RetailData> MakeRetailWorkload(const RetailOptions& options) {
  Rng rng(options.seed);

  // --- dimension metadata -----------------------------------------------
  // Product: category (grouping) and price range (alternative grouping).
  std::vector<int> product_category(size_t(options.num_products));
  std::vector<double> product_price(size_t(options.num_products));
  for (int p = 0; p < options.num_products; ++p) {
    product_category[size_t(p)] =
        int(rng.Uniform(uint64_t(options.num_categories)));
    product_price[size_t(p)] = 1.0 + double(rng.Uniform(200));
  }
  auto price_range = [](double price) {
    return price < 20 ? "budget" : (price < 80 ? "mid" : "premium");
  };
  // Store -> city assignment (round-robin keeps cities non-empty).
  auto store_city = [&](int s) { return s % options.num_cities; };
  auto store_num = [&](int s) { return s / options.num_cities; };

  // --- star schema --------------------------------------------------------
  Schema fact_schema;
  fact_schema.AddColumn("product_id", ValueType::kInt64);
  fact_schema.AddColumn("store_id", ValueType::kInt64);
  fact_schema.AddColumn("day_id", ValueType::kInt64);
  fact_schema.AddColumn("qty", ValueType::kInt64);
  fact_schema.AddColumn("amount", ValueType::kDouble);
  Table fact("sales_fact", fact_schema);

  Schema flat_schema;
  for (const char* c : {"product", "category", "price_range", "store", "city",
                        "day", "month", "year"})
    flat_schema.AddColumn(c, ValueType::kString);
  flat_schema.AddColumn("qty", ValueType::kInt64);
  flat_schema.AddColumn("amount", ValueType::kDouble);
  Table flat("sales_flat", flat_schema);

  StatisticalObject obj("sales");
  {
    Dimension product("product");
    ClassificationHierarchy by_cat("by_category", {"product", "category"});
    ClassificationHierarchy by_price("by_price_range",
                                     {"product", "price_range"});
    for (int p = 0; p < options.num_products; ++p) {
      STATCUBE_RETURN_NOT_OK(by_cat.Link(
          0, Value(ProductName(p)),
          Value("cat" + std::to_string(product_category[size_t(p)]))));
      STATCUBE_RETURN_NOT_OK(
          by_price.Link(0, Value(ProductName(p)),
                        Value(price_range(product_price[size_t(p)]))));
      STATCUBE_RETURN_NOT_OK(by_cat.SetProperty(
          0, Value(ProductName(p)), "price", Value(product_price[size_t(p)])));
    }
    by_cat.DeclareComplete(0, "qty");
    by_cat.DeclareComplete(0, "amount");
    by_price.DeclareComplete(0, "qty");
    by_price.DeclareComplete(0, "amount");
    product.AddHierarchy(by_cat);
    product.AddHierarchy(by_price);
    STATCUBE_RETURN_NOT_OK(obj.AddDimension(product));

    Dimension store("store", DimensionKind::kSpatial);
    ClassificationHierarchy geo("by_city", {"store", "city"});
    for (int s = 0; s < options.num_stores; ++s)
      STATCUBE_RETURN_NOT_OK(
          geo.Link(0, Value(StoreName(store_city(s), store_num(s))),
                   Value("city" + std::to_string(store_city(s)))));
    geo.set_id_dependent(true);
    geo.DeclareComplete(0, "qty");
    geo.DeclareComplete(0, "amount");
    store.AddHierarchy(geo);
    STATCUBE_RETURN_NOT_OK(obj.AddDimension(store));

    Dimension day("day", DimensionKind::kTemporal);
    ClassificationHierarchy cal("calendar", {"day", "month", "year"});
    for (int d = 0; d < options.num_days; ++d)
      STATCUBE_RETURN_NOT_OK(
          cal.Link(0, Value(DayName(d)), Value(MonthName(d))));
    for (int m = 0; m < (options.num_days + 29) / 30; ++m)
      STATCUBE_RETURN_NOT_OK(
          cal.Link(1, Value("1996-" + std::to_string(1 + m)), Value("1996")));
    cal.set_id_dependent(true);
    cal.DeclareComplete(0, "qty");
    cal.DeclareComplete(0, "amount");
    cal.DeclareComplete(1, "qty");
    cal.DeclareComplete(1, "amount");
    day.AddHierarchy(cal);
    STATCUBE_RETURN_NOT_OK(obj.AddDimension(day));

    STATCUBE_RETURN_NOT_OK(
        obj.AddMeasure({"qty", "", MeasureType::kFlow, AggFn::kSum, ""}));
    STATCUBE_RETURN_NOT_OK(obj.AddMeasure(
        {"amount", "dollars", MeasureType::kFlow, AggFn::kSum, ""}));
  }

  // --- facts --------------------------------------------------------------
  for (int i = 0; i < options.num_rows; ++i) {
    int p = int(rng.Zipf(uint64_t(options.num_products), options.zipf_theta));
    int s = int(rng.Uniform(uint64_t(options.num_stores)));
    int d = int(rng.Uniform(uint64_t(options.num_days)));
    int64_t qty = 1 + int64_t(rng.Uniform(9));
    double amount = double(qty) * product_price[size_t(p)];

    STATCUBE_RETURN_NOT_OK(fact.AppendRow({Value(int64_t(p)),
                                           Value(int64_t(s)),
                                           Value(int64_t(d)), Value(qty),
                                           Value(amount)}));
    flat.AppendRowUnchecked(
        {Value(ProductName(p)),
         Value("cat" + std::to_string(product_category[size_t(p)])),
         Value(price_range(product_price[size_t(p)])),
         Value(StoreName(store_city(s), store_num(s))),
         Value("city" + std::to_string(store_city(s))), Value(DayName(d)),
         Value(MonthName(d)), Value("1996"), Value(qty), Value(amount)});
    STATCUBE_RETURN_NOT_OK(
        obj.AddCell({Value(ProductName(p)),
                     Value(StoreName(store_city(s), store_num(s))),
                     Value(DayName(d))},
                    {Value(qty), Value(amount)}));
  }

  // --- dimension tables ----------------------------------------------------
  StarSchema star(std::move(fact));
  {
    Schema ps;
    ps.AddColumn("product_id", ValueType::kInt64);
    ps.AddColumn("product", ValueType::kString);
    ps.AddColumn("category", ValueType::kString);
    ps.AddColumn("price_range", ValueType::kString);
    ps.AddColumn("price", ValueType::kDouble);
    Table products("product", ps);
    for (int p = 0; p < options.num_products; ++p)
      products.AppendRowUnchecked(
          {Value(int64_t(p)), Value(ProductName(p)),
           Value("cat" + std::to_string(product_category[size_t(p)])),
           Value(price_range(product_price[size_t(p)])),
           Value(product_price[size_t(p)])});
    STATCUBE_RETURN_NOT_OK(star.AddDimension({"product", std::move(products),
                                              "product_id", "product_id",
                                              {"category"}}));

    Schema ss;
    ss.AddColumn("store_id", ValueType::kInt64);
    ss.AddColumn("store", ValueType::kString);
    ss.AddColumn("city", ValueType::kString);
    Table stores("store", ss);
    for (int s = 0; s < options.num_stores; ++s)
      stores.AppendRowUnchecked(
          {Value(int64_t(s)), Value(StoreName(store_city(s), store_num(s))),
           Value("city" + std::to_string(store_city(s)))});
    STATCUBE_RETURN_NOT_OK(star.AddDimension(
        {"store", std::move(stores), "store_id", "store_id", {"city"}}));

    Schema ts;
    ts.AddColumn("day_id", ValueType::kInt64);
    ts.AddColumn("day", ValueType::kString);
    ts.AddColumn("month", ValueType::kString);
    ts.AddColumn("year", ValueType::kString);
    Table days("time", ts);
    for (int d = 0; d < options.num_days; ++d)
      days.AppendRowUnchecked({Value(int64_t(d)), Value(DayName(d)),
                               Value(MonthName(d)), Value("1996")});
    STATCUBE_RETURN_NOT_OK(star.AddDimension(
        {"time", std::move(days), "day_id", "day_id", {"month", "year"}}));
  }

  RetailData out{std::move(star), std::move(flat), std::move(obj)};
  return out;
}

}  // namespace statcube
