// Synthetic retail sales workload (paper §2.2 / §3.2(i)): a store-chain
// transaction cube with the paper's structural features — a star schema
// (Figure 11), an ID-dependent store location hierarchy (city -> store,
// Figure 2), a multi-level time hierarchy (year -> month -> day), and
// *multiple classifications over the same dimension* (products by category
// AND by price range). Zipf-skewed product popularity controls density.

#ifndef STATCUBE_WORKLOAD_RETAIL_H_
#define STATCUBE_WORKLOAD_RETAIL_H_

#include <cstdint>

#include "statcube/common/status.h"
#include "statcube/core/statistical_object.h"
#include "statcube/relational/star_schema.h"

namespace statcube {

/// Size and skew knobs for the retail generator.
struct RetailOptions {
  int num_products = 50;
  int num_categories = 8;
  int num_stores = 12;
  int num_cities = 4;
  int num_days = 60;   ///< spanning months of 30 days
  int num_rows = 8000; ///< fact transactions
  double zipf_theta = 0.6;
  uint64_t seed = 2;
};

/// The generated workload in its three guises.
struct RetailData {
  /// Star schema: fact(product_id, store_id, day_id, qty, amount) plus
  /// product/store/time dimension tables — the ROLAP representation.
  StarSchema star;
  /// The same data denormalized flat: product, category, price_range,
  /// store, city, day, month, year, qty, amount.
  Table flat;
  /// Statistical object over product x store x day with measures qty and
  /// amount; product carries two classifications (by_category and
  /// by_price_range), store carries the ID-dependent city hierarchy, day
  /// the calendar hierarchy.
  StatisticalObject object;
};

/// Builds all three representations of one deterministic dataset.
Result<RetailData> MakeRetailWorkload(const RetailOptions& options = {});

}  // namespace statcube

#endif  // STATCUBE_WORKLOAD_RETAIL_H_
