#include "statcube/workload/census.h"

#include "statcube/common/rng.h"

namespace statcube {

namespace {

std::string CountyName(int state, int county) {
  return "st" + std::to_string(state) + "_co" + std::to_string(county);
}

}  // namespace

Result<StatisticalObject> MakeCensusWorkload(const CensusOptions& options) {
  StatisticalObject obj("census");

  Dimension county("county", DimensionKind::kSpatial);
  ClassificationHierarchy geo("geo", {"county", "state", "region"});
  for (int s = 0; s < options.num_states; ++s) {
    for (int c = 0; c < options.counties_per_state; ++c)
      STATCUBE_RETURN_NOT_OK(
          geo.Link(0, Value(CountyName(s, c)), Value("st" + std::to_string(s))));
    int region = options.states_per_region > 0 ? s / options.states_per_region
                                               : 0;
    STATCUBE_RETURN_NOT_OK(geo.Link(1, Value("st" + std::to_string(s)),
                                    Value("region" + std::to_string(region))));
  }
  // Counties partition a state and states a region: complete throughout.
  for (size_t level : {size_t{0}, size_t{1}}) {
    geo.DeclareComplete(level, "population");
    geo.DeclareComplete(level, "avg_income");
  }
  county.AddHierarchy(geo);
  STATCUBE_RETURN_NOT_OK(obj.AddDimension(county));

  STATCUBE_RETURN_NOT_OK(obj.AddDimension(Dimension("race")));
  STATCUBE_RETURN_NOT_OK(obj.AddDimension(Dimension("sex")));
  STATCUBE_RETURN_NOT_OK(obj.AddDimension(Dimension("age_group")));
  STATCUBE_RETURN_NOT_OK(
      obj.AddDimension(Dimension("year", DimensionKind::kTemporal)));

  STATCUBE_RETURN_NOT_OK(obj.AddMeasure(
      {"population", "", MeasureType::kStock, AggFn::kSum, ""}));
  STATCUBE_RETURN_NOT_OK(obj.AddMeasure({"avg_income", "dollars",
                                         MeasureType::kValuePerUnit,
                                         AggFn::kAvg, "population"}));

  Rng rng(options.seed);
  for (int s = 0; s < options.num_states; ++s) {
    for (int c = 0; c < options.counties_per_state; ++c) {
      for (int r = 0; r < options.num_races; ++r) {
        for (const char* sex : {"M", "F"}) {
          for (int a = 0; a < options.num_age_groups; ++a) {
            for (int y = 0; y < options.num_years; ++y) {
              int64_t pop = int64_t(100 + rng.Uniform(20000));
              double income =
                  a == 0 ? 0.0 : 15000.0 + double(rng.Uniform(70000));
              STATCUBE_RETURN_NOT_OK(obj.AddCell(
                  {Value(CountyName(s, c)),
                   Value("race" + std::to_string(r)), Value(sex),
                   Value("age" + std::to_string(a)),
                   Value(int64_t(1990 + y))},
                  {Value(pop), Value(income)}));
            }
          }
        }
      }
    }
  }
  return obj;
}

Result<Table> MakeCensusMicroData(int num_people,
                                  const CensusOptions& options) {
  Schema s;
  s.AddColumn("county", ValueType::kString);
  s.AddColumn("state", ValueType::kString);
  s.AddColumn("race", ValueType::kString);
  s.AddColumn("sex", ValueType::kString);
  s.AddColumn("age_group", ValueType::kString);
  s.AddColumn("year", ValueType::kInt64);
  s.AddColumn("income", ValueType::kInt64);
  Table t("census_micro", s);
  Rng rng(options.seed + 1000);
  for (int i = 0; i < num_people; ++i) {
    int st = int(rng.Uniform(uint64_t(options.num_states)));
    int co = int(rng.Uniform(uint64_t(options.counties_per_state)));
    t.AppendRowUnchecked(
        {Value(CountyName(st, co)), Value("st" + std::to_string(st)),
         Value("race" + std::to_string(rng.Uniform(uint64_t(options.num_races)))),
         Value(rng.Bernoulli(0.5) ? "M" : "F"),
         Value("age" + std::to_string(
                           rng.Uniform(uint64_t(options.num_age_groups)))),
         Value(int64_t(1990 + rng.Uniform(uint64_t(options.num_years)))),
         Value(int64_t(15000 + rng.Uniform(85000)))});
  }
  return t;
}

}  // namespace statcube
