#include "statcube/workload/stocks.h"

#include <cmath>

#include "statcube/common/rng.h"

namespace statcube {

namespace {

std::string StockName(int s) { return "TKR" + std::to_string(s); }
std::string DayName(int week, int wd) {
  static const char* kWeekdays[] = {"mon", "tue", "wed", "thu", "fri"};
  return "w" + std::to_string(week) + "-" + kWeekdays[wd];
}

}  // namespace

Result<StatisticalObject> MakeStockWorkload(const StockOptions& options) {
  StatisticalObject obj("stock_market");
  Rng rng(options.seed);

  Dimension stock("stock");
  ClassificationHierarchy by_industry("by_industry", {"stock", "industry"});
  ClassificationHierarchy by_rating("by_rating", {"stock", "rating"});
  static const char* kRatings[] = {"AAA", "AA", "A", "BBB"};
  for (int s = 0; s < options.num_stocks; ++s) {
    STATCUBE_RETURN_NOT_OK(by_industry.Link(
        0, Value(StockName(s)),
        Value("ind" +
              std::to_string(rng.Uniform(uint64_t(options.num_industries))))));
    STATCUBE_RETURN_NOT_OK(by_rating.Link(0, Value(StockName(s)),
                                          Value(kRatings[rng.Uniform(4)])));
  }
  by_industry.DeclareComplete(0, "volume");
  by_rating.DeclareComplete(0, "volume");
  stock.AddHierarchy(by_industry);
  stock.AddHierarchy(by_rating);
  STATCUBE_RETURN_NOT_OK(obj.AddDimension(stock));

  Dimension day("day", DimensionKind::kTemporal);
  ClassificationHierarchy cal("calendar", {"day", "week"});
  for (int w = 0; w < options.num_weeks; ++w)
    for (int wd = 0; wd < 5; ++wd)
      STATCUBE_RETURN_NOT_OK(cal.Link(0, Value(DayName(w, wd)),
                                      Value("w" + std::to_string(w))));
  cal.DeclareComplete(0, "volume");
  day.AddHierarchy(cal);
  STATCUBE_RETURN_NOT_OK(obj.AddDimension(day));

  STATCUBE_RETURN_NOT_OK(obj.AddMeasure(
      {"close", "dollars", MeasureType::kStock, AggFn::kAvg, ""}));
  STATCUBE_RETURN_NOT_OK(obj.AddMeasure(
      {"volume", "shares", MeasureType::kFlow, AggFn::kSum, ""}));

  // Random-walk prices, bursty volumes.
  for (int s = 0; s < options.num_stocks; ++s) {
    double price = 20.0 + double(rng.Uniform(200));
    for (int w = 0; w < options.num_weeks; ++w) {
      for (int wd = 0; wd < 5; ++wd) {
        price = std::max(1.0, price * (1.0 + rng.Gaussian(0.0, 0.02)));
        int64_t volume = int64_t(1000 + rng.Uniform(100000));
        STATCUBE_RETURN_NOT_OK(
            obj.AddCell({Value(StockName(s)), Value(DayName(w, wd))},
                        {Value(price), Value(volume)}));
      }
    }
  }
  return obj;
}

}  // namespace statcube
