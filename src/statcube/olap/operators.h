// Statistical algebra and OLAP operators over StatisticalObjects.
//
// Following the correspondence of the paper's §5.2–5.3 (Figure 14):
//
//   OLAP                      SDB [MRS92]      here
//   -------------             ------------     -----------------------------
//   Dice                      S-selection      SSelect / Dice
//   Slice (summarize sense)   S-projection     SProject / Slice
//   Slice (fixed-value sense) —                SliceAt (the paper notes the
//                                              term is used both ways)
//   Roll up (consolidation)   S-aggregation    SAggregate / RollUp
//   Drill down                S-disaggregation DrillDown (requires the base
//                                              object: a summary cannot be
//                                              refined without its source)
//   —                         S-union          SUnion
//
// Every operator that further summarizes (SProject, SAggregate) consults the
// summarizability checker (§3.3.2) and refuses unsafe operations unless
// `OperatorOptions::enforce_summarizability` is cleared — which is exactly
// how one reproduces the paper's double-counting example (physicians by
// specialty summed over specialties).

#ifndef STATCUBE_OLAP_OPERATORS_H_
#define STATCUBE_OLAP_OPERATORS_H_

#include <string>
#include <vector>

#include "statcube/common/status.h"
#include "statcube/core/statistical_object.h"
#include "statcube/core/summarizability.h"
#include "statcube/matching/matching.h"

namespace statcube {

/// Behavior switches for summarizing operators.
struct OperatorOptions {
  /// Refuse operations the summarizability checker rejects.
  bool enforce_summarizability = true;
};

/// One dimension's selection for Dice.
struct DiceSpec {
  std::string dim;
  std::vector<Value> values;
};

/// S-select: keep only cells whose `dim` value is in `values`. Cardinality
/// of the multidimensional space is otherwise unchanged; hierarchies and
/// measures carry over.
Result<StatisticalObject> SSelect(const StatisticalObject& obj,
                                  const std::string& dim,
                                  const std::vector<Value>& values);

/// OLAP dice: S-select over several dimensions at once.
Result<StatisticalObject> Dice(const StatisticalObject& obj,
                               const std::vector<DiceSpec>& specs);

/// S-project: summarize over *all* values of `dim`, removing it (reduces
/// dimensionality by one). Measures aggregate with their declared functions;
/// kAvg measures with a `weight_measure` aggregate as weighted means.
Result<StatisticalObject> SProject(const StatisticalObject& obj,
                                   const std::string& dim,
                                   const OperatorOptions& options = {});

/// OLAP slice in the "summarize over a dimension" sense == S-project.
inline Result<StatisticalObject> Slice(const StatisticalObject& obj,
                                       const std::string& dim,
                                       const OperatorOptions& options = {}) {
  return SProject(obj, dim, options);
}

/// OLAP slice in the "cut at a fixed value" sense: keep only cells with
/// `dim == value`; the dimension remains as a singleton (like the "state =
/// California" page of Figure 1).
Result<StatisticalObject> SliceAt(const StatisticalObject& obj,
                                  const std::string& dim, const Value& value);

/// S-aggregation / roll-up: replace the leaf values of `dim` with their
/// ancestors at `to_level` of `hierarchy`, aggregating cells that collide.
/// In a non-strict hierarchy a cell contributes to every parent — the
/// double-counting hazard the checker guards against.
Result<StatisticalObject> SAggregate(const StatisticalObject& obj,
                                     const std::string& dim,
                                     const std::string& hierarchy,
                                     size_t to_level,
                                     const OperatorOptions& options = {});

/// OLAP roll-up (consolidation): one level up.
inline Result<StatisticalObject> RollUp(const StatisticalObject& obj,
                                        const std::string& dim,
                                        const std::string& hierarchy,
                                        const OperatorOptions& options = {}) {
  return SAggregate(obj, dim, hierarchy, 1, options);
}

/// Drill down ("disaggregation", §5.3): re-derive the view of `base` with
/// `dim` classified at `to_level` (0 = the leaves). Needs the base object —
/// a coarse summary alone cannot be refined.
Result<StatisticalObject> DrillDown(const StatisticalObject& base,
                                    const std::string& dim,
                                    const std::string& hierarchy,
                                    size_t to_level,
                                    const OperatorOptions& options = {});

/// S-union: combines two objects with identical structure (same dimensions
/// and measures). Cells present in both aggregate with the measures'
/// functions — the "overlapping category values" case of [MRS92].
Result<StatisticalObject> SUnion(const StatisticalObject& a,
                                 const StatisticalObject& b);

/// Disaggregation by proxy (§5.3): estimates a *finer* statistical object
/// than the data supports — "if the population is only known at the state
/// level, but the area of each county is known, one can use the area of the
/// counties as a proxy". The object's `dim` values must be the parents;
/// `children` supplies the child -> (parent, proxy weight) mapping;
/// additive measures split proportionally, others are copied to each child.
/// The finer dimension is named `child_attribute`. This is an ESTIMATE; the
/// catalog (§3.3.3) should record the method.
Result<StatisticalObject> SDisaggregateByProxy(
    const StatisticalObject& obj, const std::string& dim,
    const std::string& child_attribute,
    const std::vector<ProxyChild>& children);

/// Collapses duplicate coordinates in an object's cell table, aggregating
/// measures with their declared functions (weighted for kAvg-with-weight).
/// Shared by the operators; exposed for reuse by backends.
Result<StatisticalObject> Consolidate(const StatisticalObject& obj);

}  // namespace statcube

#endif  // STATCUBE_OLAP_OPERATORS_H_
