// Sparse MOLAP backend: the dense linearized array of §6.2 stored under
// header compression ([EOA81]) — the combination the paper implies for
// cubes where "many of the cells have nulls or zeros" (the oil-production
// example). Slab queries decompose into contiguous innermost segments, each
// answered by the header tree's range sum, so empty stretches cost nothing.

#ifndef STATCUBE_OLAP_SPARSE_CUBE_H_
#define STATCUBE_OLAP_SPARSE_CUBE_H_

#include <string>
#include <vector>

#include "statcube/common/status.h"
#include "statcube/core/statistical_object.h"
#include "statcube/molap/header_compressed.h"
#include "statcube/storage/dictionary.h"
#include "statcube/storage/stores.h"

namespace statcube {

/// A statistical object's measure as a header-compressed linearized array.
class SparseMolapCube {
 public:
  /// Materializes `measure` over the cross product, then compresses. Cells
  /// that collide are summed; absent cells are the null value (0).
  static Result<SparseMolapCube> Build(const StatisticalObject& obj,
                                       const std::string& measure);

  size_t num_dims() const { return dicts_.size(); }

  /// SUM over the slab fixed by `filters`; unknown values yield 0.
  Result<double> SumWhere(const std::vector<EqFilter>& filters);

  /// Value of one cell.
  Result<double> GetCell(const std::vector<Value>& coord_values);

  /// Compressed footprint (values + header + dictionaries).
  size_t ByteSize() const;

  /// Dense-array bytes this layout avoided storing.
  size_t DenseByteSize() const {
    return size_t(array_.logical_size()) * sizeof(double);
  }

  double compression_ratio() const {
    return ByteSize() == 0 ? 0.0
                           : double(DenseByteSize()) / double(ByteSize());
  }

  BlockCounter& counter() { return array_.counter(); }

 private:
  SparseMolapCube(std::vector<std::string> dim_names,
                  std::vector<Dictionary> dicts, std::vector<size_t> strides,
                  HeaderCompressedArray array)
      : dim_names_(std::move(dim_names)),
        dicts_(std::move(dicts)),
        strides_(std::move(strides)),
        array_(std::move(array)) {}

  std::vector<std::string> dim_names_;
  std::vector<Dictionary> dicts_;
  std::vector<size_t> strides_;  // row-major over the dictionary shape
  HeaderCompressedArray array_;
};

}  // namespace statcube

#endif  // STATCUBE_OLAP_SPARSE_CUBE_H_
