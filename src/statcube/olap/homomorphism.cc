#include "statcube/olap/homomorphism.h"

#include <algorithm>
#include <cmath>

namespace statcube {

Result<StatisticalObject> SummarizeMicro(const Table& micro,
                                         const std::vector<std::string>& dims,
                                         const AggSpec& agg,
                                         MeasureType type) {
  std::vector<AggSpec> aggs = {agg};
  bool with_count = agg.fn == AggFn::kAvg;
  if (with_count)
    aggs.push_back({AggFn::kCountAll, "", agg.EffectiveName() + "_count"});
  STATCUBE_ASSIGN_OR_RETURN(Table macro, GroupBy(micro, dims, aggs));

  std::vector<SummaryMeasure> measures;
  SummaryMeasure m;
  m.name = agg.EffectiveName();
  m.type = type;
  m.default_fn = agg.fn;
  if (with_count) m.weight_measure = agg.EffectiveName() + "_count";
  measures.push_back(m);
  if (with_count) {
    SummaryMeasure c;
    c.name = agg.EffectiveName() + "_count";
    c.type = MeasureType::kFlow;
    c.default_fn = AggFn::kSum;
    measures.push_back(c);
  }
  return StatisticalObject::FromTable(macro, dims, measures);
}

Result<bool> MacroDataEqual(const StatisticalObject& a,
                            const StatisticalObject& b, double tol) {
  if (a.data().num_columns() != b.data().num_columns()) return false;
  if (a.data().num_rows() != b.data().num_rows()) return false;
  // Compare as sorted row sets.
  auto rows_a = a.data().rows();
  auto rows_b = b.data().rows();
  auto cmp = [](const Row& x, const Row& y) {
    for (size_t i = 0; i < x.size(); ++i) {
      int c = Value::Compare(x[i], y[i]);
      if (c != 0) return c < 0;
    }
    return false;
  };
  std::sort(rows_a.begin(), rows_a.end(), cmp);
  std::sort(rows_b.begin(), rows_b.end(), cmp);
  for (size_t r = 0; r < rows_a.size(); ++r) {
    for (size_t c = 0; c < rows_a[r].size(); ++c) {
      const Value& x = rows_a[r][c];
      const Value& y = rows_b[r][c];
      if (x.is_numeric() && y.is_numeric()) {
        if (std::abs(x.AsDouble() - y.AsDouble()) > tol) return false;
      } else if (x != y) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace statcube
