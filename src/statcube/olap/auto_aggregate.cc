#include "statcube/olap/auto_aggregate.h"

#include <map>

#include "statcube/obs/trace.h"

namespace statcube {

Result<AutoResult> AutoAggregate(const StatisticalObject& obj,
                                 const AutoQuery& query,
                                 const OperatorOptions& options) {
  obs::Span span("auto_aggregate");
  STATCUBE_RETURN_NOT_OK(obj.MeasureNamed(query.measure).status());
  AutoResult result;

  // Resolve each selection to (dimension, hierarchy, level).
  struct Resolved {
    std::string dim;
    std::string hierarchy;  // empty = leaf selection
    size_t level = 0;
    Value value;
  };
  std::vector<Resolved> resolved;
  std::map<std::string, bool> selected_dim;
  for (const auto& sel : query.selections) {
    bool found = false;
    for (const auto& d : obj.dimensions()) {
      if (d.name() == sel.attribute) {
        resolved.push_back({d.name(), "", 0, sel.value});
        selected_dim[d.name()] = true;
        found = true;
        break;
      }
      auto lv = d.LevelNamed(sel.attribute);
      if (lv.ok()) {
        resolved.push_back(
            {d.name(), lv->first->name(), lv->second, sel.value});
        selected_dim[d.name()] = true;
        found = true;
        break;
      }
    }
    if (!found)
      return Status::NotFound("no category attribute '" + sel.attribute +
                              "' on any dimension");
  }

  StatisticalObject cur = obj;
  // (i) selections on non-leaf nodes: aggregate the dimension to that level
  // first (summarization over all descendants is implied), then select.
  for (const auto& r : resolved) {
    if (!r.hierarchy.empty() && r.level > 0) {
      STATCUBE_ASSIGN_OR_RETURN(const Dimension* od, obj.DimensionNamed(r.dim));
      STATCUBE_ASSIGN_OR_RETURN(const ClassificationHierarchy* h,
                                od->HierarchyNamed(r.hierarchy));
      STATCUBE_ASSIGN_OR_RETURN(
          cur, SAggregate(cur, r.dim, r.hierarchy, r.level, options));
      result.inferred_steps.push_back("S-aggregate " + r.dim + " to level '" +
                                      h->levels()[r.level] + "'");
    }
  }
  // After aggregation the dimension is renamed to the level's attribute;
  // re-resolve names for the select step.
  for (const auto& r : resolved) {
    std::string dim_name = r.dim;
    if (!r.hierarchy.empty() && r.level > 0) {
      // The aggregated dimension carries the level's name.
      STATCUBE_ASSIGN_OR_RETURN(const Dimension* od, obj.DimensionNamed(r.dim));
      STATCUBE_ASSIGN_OR_RETURN(const ClassificationHierarchy* h,
                                od->HierarchyNamed(r.hierarchy));
      dim_name = h->levels()[r.level];
    }
    STATCUBE_ASSIGN_OR_RETURN(cur, SSelect(cur, dim_name, {r.value}));
    result.inferred_steps.push_back("S-select " + dim_name + " = " +
                                    r.value.ToString());
  }
  // (ii) dimensions without a selection: summarization over all their
  // values is implied -> S-project them out.
  for (const auto& d : obj.dimensions()) {
    if (!selected_dim.count(d.name())) {
      STATCUBE_ASSIGN_OR_RETURN(cur, SProject(cur, d.name(), options));
      result.inferred_steps.push_back("S-project " + d.name() +
                                      " (summarize over all values)");
    }
  }
  // (iii) project the remaining selected dimensions away too — each is now a
  // singleton, so this only collapses the coordinate, not the data.
  while (!cur.dimensions().empty()) {
    STATCUBE_ASSIGN_OR_RETURN(
        cur, SProject(cur, cur.dimensions().front().name(), options));
  }

  // (iv) the measure value is read off the single remaining cell.
  if (cur.data().num_rows() == 0) {
    result.value = Value::Null();
    return result;
  }
  STATCUBE_ASSIGN_OR_RETURN(size_t midx,
                            cur.data().schema().IndexOf(query.measure));
  result.value = cur.data().at(0, midx);
  result.inferred_steps.push_back("report " + query.measure);
  return result;
}

}  // namespace statcube
