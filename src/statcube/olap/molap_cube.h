// The MOLAP backend: a statistical object materialized as a dense
// linearized array (paper §6.2/§6.6) with per-dimension dictionaries. This
// is what bench_rolap_molap races against the ROLAP star schema: cell
// addressing is arithmetic, slab summaries are sequential array scans, and
// the whole cross product is stored whether or not cells are occupied — the
// space/density trade-off at the heart of the §6.6 debate.

#ifndef STATCUBE_OLAP_MOLAP_CUBE_H_
#define STATCUBE_OLAP_MOLAP_CUBE_H_

#include <string>
#include <vector>

#include "statcube/common/status.h"
#include "statcube/core/statistical_object.h"
#include "statcube/molap/dense_array.h"
#include "statcube/storage/dictionary.h"
#include "statcube/storage/stores.h"

namespace statcube {

/// A statistical object's measure as a dense multidimensional array.
class MolapCube {
 public:
  /// Materializes `measure` over the full cross product of the object's
  /// dimension values. Cells that collide (duplicate coordinates) are
  /// summed; absent cells are zero.
  static Result<MolapCube> Build(const StatisticalObject& obj,
                                 const std::string& measure);

  size_t num_dims() const { return dicts_.size(); }
  const DenseArray& array() const { return array_; }
  DenseArray& mutable_array() { return array_; }

  /// Value of one cell addressed by dimension values.
  Result<double> GetCell(const std::vector<Value>& coord_values);

  /// SUM over the slab fixed by `filters` (dimension name = value); other
  /// dimensions range over everything. Unknown filter values yield 0.
  Result<double> SumWhere(const std::vector<EqFilter>& filters);

  /// SUM over arbitrary value subsets per dimension (a dice). Dimensions
  /// not mentioned range over everything.
  struct DiceDim {
    std::string dim;
    std::vector<Value> values;
  };
  Result<double> SumDice(const std::vector<DiceDim>& dice);

  /// Occupied-cell fraction of the cross product.
  double density() const { return array_.Density(); }

  /// Bytes: the dense array plus the dimension dictionaries — the MOLAP
  /// footprint (stores the cross product but each dimension value once,
  /// Figure 20).
  size_t ByteSize() const;

  BlockCounter& counter() { return array_.counter(); }

 private:
  MolapCube(std::vector<std::string> dim_names, std::vector<Dictionary> dicts,
            DenseArray array)
      : dim_names_(std::move(dim_names)),
        dicts_(std::move(dicts)),
        array_(std::move(array)) {}

  Result<size_t> DimIndex(const std::string& name) const;

  std::vector<std::string> dim_names_;
  std::vector<Dictionary> dicts_;
  DenseArray array_;
};

}  // namespace statcube

#endif  // STATCUBE_OLAP_MOLAP_CUBE_H_
