// Holistic statistics (paper §5.6): the operations beyond the simple
// aggregation functions database systems provide — percentiles, medians,
// trimmed means — which the paper notes are the domain of statistical
// packages. They need the full value set, so they operate on vectors rather
// than mergeable states.

#ifndef STATCUBE_OLAP_STATISTICS_H_
#define STATCUBE_OLAP_STATISTICS_H_

#include <string>
#include <vector>

#include "statcube/common/status.h"
#include "statcube/relational/table.h"

namespace statcube {

/// p-th percentile (0 <= p <= 100) with linear interpolation between order
/// statistics. Errors on empty input.
Result<double> Percentile(std::vector<double> values, double p);

/// Median (50th percentile).
Result<double> Median(std::vector<double> values);

/// Mean after discarding the lowest and highest `trim_fraction` of values
/// (0 <= trim_fraction < 0.5) — "find the trimmed means over a sample of the
/// data" (§5.6).
Result<double> TrimmedMean(std::vector<double> values, double trim_fraction);

/// Arithmetic mean. Errors on empty input.
Result<double> Mean(const std::vector<double>& values);

/// Population standard deviation. Errors on empty input.
Result<double> StdDev(const std::vector<double>& values);

/// Holistic statistics per group: the "find the trimmed means / percentiles
/// by category" bridge between group-by and the statistical package. Each
/// output row is (group values..., statistic). Supported `stat`:
/// "median", "p<value>" (e.g. "p95"), "trimmed<percent>" (e.g. "trimmed10").
Result<Table> GroupedHolistic(const Table& input,
                              const std::vector<std::string>& group_cols,
                              const std::string& value_col,
                              const std::string& stat);

}  // namespace statcube

#endif  // STATCUBE_OLAP_STATISTICS_H_
