#include "statcube/olap/cube_build.h"

#include <algorithm>

namespace statcube {

DenseArray CollapseDim(const DenseArray& a, size_t d) {
  std::vector<size_t> out_shape;
  for (size_t i = 0; i < a.shape().size(); ++i)
    if (i != d) out_shape.push_back(a.shape()[i]);
  if (out_shape.empty()) out_shape.push_back(1);  // 0-d -> single cell
  DenseArray out(out_shape);

  size_t n = a.num_cells();
  std::vector<size_t> coord;
  for (size_t pos = 0; pos < n; ++pos) {
    coord = a.Delinearize(pos);
    std::vector<size_t> oc;
    for (size_t i = 0; i < coord.size(); ++i)
      if (i != d) oc.push_back(coord[i]);
    if (oc.empty()) oc.push_back(0);
    size_t opos = *out.Linearize(oc);
    out.SetLinear(opos, out.GetLinear(opos) + a.GetLinear(pos));
  }
  return out;
}

Result<std::map<uint32_t, DenseArray>> ArrayCubeAll(const DenseArray& base) {
  size_t ndims = base.shape().size();
  if (ndims > 20) return Status::InvalidArgument("cube over >20 dims refused");
  uint32_t full = ndims == 0 ? 0 : ((1u << ndims) - 1);

  std::map<uint32_t, DenseArray> out;
  out.emplace(full, base);

  // Masks by decreasing popcount: every child has a computed parent.
  std::vector<uint32_t> masks;
  for (uint32_t m = 0; m <= full; ++m) masks.push_back(m);
  std::sort(masks.begin(), masks.end(), [](uint32_t a, uint32_t b) {
    int pa = __builtin_popcount(a), pb = __builtin_popcount(b);
    return pa != pb ? pa > pb : a < b;
  });

  for (uint32_t m : masks) {
    if (out.count(m)) continue;
    uint32_t missing = full & ~m;
    uint32_t bit = missing & (~missing + 1);  // lowest absent dimension
    uint32_t parent = m | bit;
    // Position of `bit`'s dimension within the parent's retained dims.
    size_t d = 0;
    for (size_t i = 0; i < ndims; ++i) {
      if ((uint32_t(1) << i) == bit) break;
      if (parent & (1u << i)) ++d;
    }
    out.emplace(m, CollapseDim(out.at(parent), d));
  }
  return out;
}

uint64_t ArrayCubeCells(const std::vector<size_t>& shape) {
  size_t ndims = shape.size();
  uint64_t total = 0;
  for (uint32_t m = 0; m < (1u << ndims); ++m) {
    uint64_t cells = 1;
    for (size_t i = 0; i < ndims; ++i)
      if (m & (1u << i)) cells *= shape[i];
    total += cells;
  }
  return total;
}

}  // namespace statcube
