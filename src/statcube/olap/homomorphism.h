// The completeness-by-homomorphism harness (paper §5.5, Figure 16; [MRS92]):
//
//        micro ── summarize ──► macro
//          │                      │
//   relational op          statistical op
//          ▼                      ▼
//    result micro ─ summarize ─► result macro  (must commute)
//
// `SummarizeMicro` is the vertical "summarize" arrow: it derives a
// statistical object (macro-data) from a relational micro-data table. The
// property tests drive relational operators down the left side and
// S-operators down the right side and assert the square commutes for
// S-select/select, S-project/project-out, and S-union/union.

#ifndef STATCUBE_OLAP_HOMOMORPHISM_H_
#define STATCUBE_OLAP_HOMOMORPHISM_H_

#include <string>
#include <vector>

#include "statcube/common/status.h"
#include "statcube/core/statistical_object.h"
#include "statcube/relational/aggregate.h"
#include "statcube/relational/table.h"

namespace statcube {

/// Derives macro-data from micro-data: groups `micro` by `dims` and
/// aggregates `agg`, returning a StatisticalObject whose one measure is the
/// aggregate (named by the spec). For kAvg aggregates a companion count
/// measure is added automatically and linked as the weight, so that further
/// summarization of the macro-data is exact (the paper's §5.1 note).
Result<StatisticalObject> SummarizeMicro(const Table& micro,
                                         const std::vector<std::string>& dims,
                                         const AggSpec& agg,
                                         MeasureType type = MeasureType::kFlow);

/// Compares two statistical objects' cell tables for equality up to row
/// order and floating-point tolerance. Used by the commutation tests.
Result<bool> MacroDataEqual(const StatisticalObject& a,
                            const StatisticalObject& b, double tol = 1e-9);

}  // namespace statcube

#endif  // STATCUBE_OLAP_HOMOMORPHISM_H_
