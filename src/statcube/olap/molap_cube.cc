#include "statcube/olap/molap_cube.h"

namespace statcube {

Result<MolapCube> MolapCube::Build(const StatisticalObject& obj,
                                   const std::string& measure) {
  STATCUBE_ASSIGN_OR_RETURN(size_t midx,
                            obj.data().schema().IndexOf(measure));
  size_t ndims = obj.dimensions().size();
  std::vector<std::string> names;
  std::vector<Dictionary> dicts(ndims);
  std::vector<size_t> shape(ndims);
  for (size_t i = 0; i < ndims; ++i) {
    names.push_back(obj.dimensions()[i].name());
    for (const Value& v : obj.dimensions()[i].values()) dicts[i].Encode(v);
    shape[i] = dicts[i].cardinality();
    if (shape[i] == 0)
      return Status::InvalidArgument("dimension '" + names[i] +
                                     "' has no values");
  }
  DenseArray array(shape);
  std::vector<size_t> coord(ndims);
  for (const Row& r : obj.data().rows()) {
    for (size_t i = 0; i < ndims; ++i) {
      STATCUBE_ASSIGN_OR_RETURN(uint32_t code, dicts[i].Lookup(r[i]));
      coord[i] = code;
    }
    STATCUBE_ASSIGN_OR_RETURN(size_t pos, array.Linearize(coord));
    double v = r[midx].is_numeric() ? r[midx].AsDouble() : 0.0;
    array.SetLinear(pos, array.GetLinear(pos) + v);
  }
  return MolapCube(std::move(names), std::move(dicts), std::move(array));
}

Result<size_t> MolapCube::DimIndex(const std::string& name) const {
  for (size_t i = 0; i < dim_names_.size(); ++i)
    if (dim_names_[i] == name) return i;
  return Status::NotFound("cube has no dimension '" + name + "'");
}

Result<double> MolapCube::GetCell(const std::vector<Value>& coord_values) {
  if (coord_values.size() != dicts_.size())
    return Status::InvalidArgument("coordinate arity mismatch");
  std::vector<size_t> coord(dicts_.size());
  for (size_t i = 0; i < dicts_.size(); ++i) {
    auto code = dicts_[i].Lookup(coord_values[i]);
    if (!code.ok()) return 0.0;
    coord[i] = *code;
  }
  STATCUBE_ASSIGN_OR_RETURN(double v, array_.Get(coord));
  array_.counter().ChargeBlocks(1);
  return v;
}

Result<double> MolapCube::SumWhere(const std::vector<EqFilter>& filters) {
  std::vector<DimRange> ranges(dicts_.size());
  for (size_t i = 0; i < dicts_.size(); ++i)
    ranges[i] = {0, dicts_[i].cardinality()};
  for (const auto& f : filters) {
    STATCUBE_ASSIGN_OR_RETURN(size_t d, DimIndex(f.column));
    auto code = dicts_[d].Lookup(f.value);
    if (!code.ok()) return 0.0;  // value never occurs
    ranges[d] = {*code, *code + 1};
  }
  return array_.SumRange(ranges);
}

Result<double> MolapCube::SumDice(const std::vector<DiceDim>& dice) {
  // Per dimension: the list of selected codes (all codes if unmentioned).
  std::vector<std::vector<size_t>> codes(dicts_.size());
  for (size_t i = 0; i < dicts_.size(); ++i) {
    codes[i].resize(dicts_[i].cardinality());
    for (size_t c = 0; c < codes[i].size(); ++c) codes[i][c] = c;
  }
  for (const auto& d : dice) {
    STATCUBE_ASSIGN_OR_RETURN(size_t di, DimIndex(d.dim));
    codes[di].clear();
    for (const Value& v : d.values) {
      auto code = dicts_[di].Lookup(v);
      if (code.ok()) codes[di].push_back(*code);
    }
    if (codes[di].empty()) return 0.0;
  }
  // Enumerate combinations of the leading dims; the innermost selected
  // codes read via Get (charged per cell block).
  size_t ndims = dicts_.size();
  std::vector<size_t> pick(ndims, 0);
  std::vector<size_t> coord(ndims);
  double sum = 0.0;
  while (true) {
    for (size_t i = 0; i < ndims; ++i) coord[i] = codes[i][pick[i]];
    STATCUBE_ASSIGN_OR_RETURN(double v, array_.Get(coord));
    array_.counter().ChargeBlocks(1);
    sum += v;
    size_t d = ndims;
    bool done = true;
    while (d-- > 0) {
      if (++pick[d] < codes[d].size()) {
        done = false;
        break;
      }
      pick[d] = 0;
    }
    if (done) break;
  }
  return sum;
}

size_t MolapCube::ByteSize() const {
  size_t b = array_.ByteSize();
  for (const auto& d : dicts_) b += d.ByteSize();
  return b;
}

}  // namespace statcube
