#include "statcube/olap/backend.h"

#include <algorithm>
#include <map>

#include "statcube/common/mutex.h"
#include "statcube/exec/parallel_kernels.h"
#include "statcube/obs/query_profile.h"
#include "statcube/olap/molap_cube.h"
#include "statcube/relational/aggregate.h"

namespace statcube {

namespace {

// Snapshots a backend's BlockCounter around an answer and reports the delta
// (plus the backend's identity) to the active profile and registry.
class BackendObsScope {
 public:
  BackendObsScope(const std::string& backend, BlockCounter& counter)
      : enabled_(obs::Enabled()),
        backend_(enabled_ ? backend : std::string()),
        counter_(counter),
        blocks0_(enabled_ ? counter.blocks_read() : 0),
        bytes0_(enabled_ ? counter.bytes_read() : 0) {}
  ~BackendObsScope() {
    if (!enabled_) return;
    obs::RecordBackend(backend_, counter_.blocks_read() - blocks0_,
                       counter_.bytes_read() - bytes0_);
  }

 private:
  bool enabled_;
  std::string backend_;
  BlockCounter& counter_;
  uint64_t blocks0_, bytes0_;
};

// ------------------------------------------------------------------ MOLAP

class MolapBackend : public CubeBackend {
 public:
  MolapBackend(MolapCube cube, std::vector<std::string> dim_names,
               std::vector<std::vector<Value>> dim_values)
      : cube_(std::move(cube)),
        dim_names_(std::move(dim_names)),
        dim_values_(std::move(dim_values)) {}

  std::string name() const override { return "molap"; }

  Result<double> Sum(const std::vector<EqFilter>& filters) override {
    obs::Span span("backend.sum:molap");
    BackendObsScope scope(name(), cube_.counter());
    return cube_.SumWhere(filters);
  }

  Result<Table> GroupBySum(const CubeQuery& query) override {
    obs::Span span("backend.groupby:molap");
    BackendObsScope scope(name(), cube_.counter());
    // Enumerate group coordinates from the dimension metadata; each group
    // is a slab sum over the array.
    std::vector<size_t> gidx;
    for (const auto& g : query.group_dims) {
      auto it = std::find(dim_names_.begin(), dim_names_.end(), g);
      if (it == dim_names_.end())
        return Status::NotFound("no dimension '" + g + "'");
      gidx.push_back(size_t(it - dim_names_.begin()));
    }
    Schema out_schema;
    for (const auto& g : query.group_dims)
      out_schema.AddColumn(g, ValueType::kString);
    out_schema.AddColumn("sum", ValueType::kDouble);
    Table out("groupby_molap", out_schema);

    if (query.threads != 1) {
      STATCUBE_RETURN_NOT_OK(GroupBySumParallel(query, gidx, &out));
    } else {
      std::vector<size_t> pick(gidx.size(), 0);
      while (true) {
        std::vector<EqFilter> filters = query.filters;
        Row row;
        for (size_t i = 0; i < gidx.size(); ++i) {
          const Value& v = dim_values_[gidx[i]][pick[i]];
          filters.push_back({dim_names_[gidx[i]], v});
          row.push_back(v);
        }
        STATCUBE_ASSIGN_OR_RETURN(double s, cube_.SumWhere(filters));
        row.push_back(Value(s));
        out.AppendRowUnchecked(std::move(row));
        // Odometer.
        size_t d = gidx.size();
        bool done = true;
        while (d-- > 0) {
          if (++pick[d] < dim_values_[gidx[d]].size()) {
            done = false;
            break;
          }
          pick[d] = 0;
        }
        if (done || gidx.empty()) break;
      }
    }
    STATCUBE_RETURN_NOT_OK(out.SortBy(query.group_dims));
    return out;
  }

  size_t ByteSize() const override { return cube_.ByteSize(); }
  BlockCounter& counter() override { return cube_.counter(); }

 private:
  // One slab sum per group coordinate, computed concurrently. Group index g
  // decodes to the same pick vector the serial odometer visits at step g
  // (last group dimension fastest), so the pre-sorted row order — and after
  // SortBy the output — is identical to the serial path.
  Status GroupBySumParallel(const CubeQuery& query,
                            const std::vector<size_t>& gidx, Table* out) {
    size_t ngroups = 1;
    for (size_t i : gidx) ngroups *= dim_values_[i].size();
    std::vector<Row> rows(ngroups);

    exec::ExecOptions xo;
    xo.threads = query.threads;
    exec::ParallelForOptions loop;
    loop.label = "molap_groupby";
    loop.max_workers = xo.EffectiveThreads();
    // One group is a whole slab sum; small morsels balance uneven slabs.
    loop.morsel_size = 4;

    Mutex err_mu;
    Status first_error = Status::OK();
    exec::ParallelFor(
        ngroups,
        [&](size_t, size_t begin, size_t end) {
          std::vector<size_t> pick(gidx.size());
          for (size_t g = begin; g < end; ++g) {
            size_t rem = g;
            for (size_t i = gidx.size(); i-- > 0;) {
              pick[i] = rem % dim_values_[gidx[i]].size();
              rem /= dim_values_[gidx[i]].size();
            }
            std::vector<EqFilter> filters = query.filters;
            Row row;
            for (size_t i = 0; i < gidx.size(); ++i) {
              const Value& v = dim_values_[gidx[i]][pick[i]];
              filters.push_back({dim_names_[gidx[i]], v});
              row.push_back(v);
            }
            Result<double> s = cube_.SumWhere(filters);
            if (!s.ok()) {
              MutexLock lock(err_mu);
              if (first_error.ok()) first_error = s.status();
              return;
            }
            row.push_back(Value(s.value()));
            rows[g] = std::move(row);
          }
        },
        loop);
    if (!first_error.ok()) return first_error;
    for (Row& row : rows) out->AppendRowUnchecked(std::move(row));
    return Status::OK();
  }

  MolapCube cube_;
  std::vector<std::string> dim_names_;
  std::vector<std::vector<Value>> dim_values_;
};

// ------------------------------------------------------------------ ROLAP

class RolapBackend : public CubeBackend {
 public:
  RolapBackend(const StatisticalObject& obj, size_t measure_idx,
               RolapBackendOptions options)
      : table_(obj.data()), measure_idx_(measure_idx), options_(options) {
    for (const auto& d : obj.dimensions()) dim_names_.push_back(d.name());
    if (options_.build_bitmap_indexes) BuildIndexes();
  }

  std::string name() const override {
    return options_.build_bitmap_indexes ? "rolap+bitmap" : "rolap";
  }

  Result<double> Sum(const std::vector<EqFilter>& filters) override {
    obs::Span span(options_.build_bitmap_indexes ? "backend.sum:rolap+bitmap"
                                                 : "backend.sum:rolap");
    BackendObsScope scope(name(), counter_);
    if (options_.build_bitmap_indexes) return SumIndexed(filters);
    return SumScan(filters);
  }

  Result<Table> GroupBySum(const CubeQuery& query) override {
    obs::Span span("backend.groupby:rolap");
    BackendObsScope scope(name(), counter_);
    // Filter then relational group-by over the cell table.
    STATCUBE_ASSIGN_OR_RETURN(std::vector<size_t> fidx, FilterIdx(query.filters));
    Table filtered(table_.name(), table_.schema());
    counter_.ChargeBytes(table_.ByteSize());
    auto matches = [&](const Row& r) {
      for (size_t i = 0; i < fidx.size(); ++i)
        if (r[fidx[i]] != query.filters[i].value) return false;
      return true;
    };
    if (query.threads != 1) {
      // Morsel-parallel scan; per-morsel matches concatenate in morsel
      // order, which is the serial row order.
      exec::ParallelForOptions loop;
      loop.label = "rolap_filter_scan";
      exec::ExecOptions xo;
      xo.threads = query.threads;
      loop.max_workers = xo.EffectiveThreads();
      std::vector<std::vector<Row>> parts(
          table_.num_rows() == 0
              ? 0
              : (table_.num_rows() + loop.morsel_size - 1) / loop.morsel_size);
      exec::ParallelFor(
          table_.num_rows(),
          [&](size_t m, size_t begin, size_t end) {
            for (size_t r = begin; r < end; ++r)
              if (matches(table_.row(r))) parts[m].push_back(table_.row(r));
          },
          loop);
      for (std::vector<Row>& part : parts)
        for (Row& r : part) filtered.AppendRowUnchecked(std::move(r));
    } else {
      for (const Row& r : table_.rows())
        if (matches(r)) filtered.AppendRowUnchecked(r);
    }
    obs::RecordOperator("backend.filter_scan", table_.num_rows(),
                        filtered.num_rows());
    std::string measure = table_.schema().column(measure_idx_).name;
    if (query.threads != 1) {
      exec::ExecOptions xo;
      xo.threads = query.threads;
      xo.vectorized = query.vectorized;
      return exec::ParallelGroupBy(filtered, query.group_dims,
                                   {{AggFn::kSum, measure, "sum"}}, xo);
    }
    STATCUBE_ASSIGN_OR_RETURN(
        Table out,
        GroupBy(filtered, query.group_dims, {{AggFn::kSum, measure, "sum"}}));
    return out;
  }

  size_t ByteSize() const override {
    size_t b = table_.ByteSize();
    for (const auto& dim_index : indexes_)
      for (const auto& [v, bm] : dim_index) b += bm.ByteSize();
    return b;
  }
  BlockCounter& counter() override { return counter_; }

 private:
  Result<std::vector<size_t>> FilterIdx(
      const std::vector<EqFilter>& filters) const {
    std::vector<size_t> out;
    for (const auto& f : filters) {
      STATCUBE_ASSIGN_OR_RETURN(size_t i, table_.schema().IndexOf(f.column));
      out.push_back(i);
    }
    return out;
  }

  Result<double> SumScan(const std::vector<EqFilter>& filters) {
    STATCUBE_ASSIGN_OR_RETURN(std::vector<size_t> fidx, FilterIdx(filters));
    counter_.ChargeBytes(table_.ByteSize());
    double sum = 0;
    for (const Row& r : table_.rows()) {
      bool match = true;
      for (size_t i = 0; i < fidx.size(); ++i) {
        if (r[fidx[i]] != filters[i].value) {
          match = false;
          break;
        }
      }
      if (match && r[measure_idx_].is_numeric())
        sum += r[measure_idx_].AsDouble();
    }
    return sum;
  }

  Result<double> SumIndexed(const std::vector<EqFilter>& filters) {
    BitVector match(table_.num_rows(), true);
    for (const auto& f : filters) {
      auto dit = std::find(dim_names_.begin(), dim_names_.end(), f.column);
      if (dit == dim_names_.end())
        return Status::NotFound("no dimension '" + f.column + "'");
      size_t d = size_t(dit - dim_names_.begin());
      auto vit = indexes_[d].find(f.value);
      if (vit == indexes_[d].end()) return 0.0;  // value never occurs
      counter_.ChargeBytes(vit->second.ByteSize());
      match.AndWith(vit->second);
    }
    // Read only the matching measure cells.
    double sum = 0;
    size_t matched = 0;
    for (size_t i = 0; i < table_.num_rows(); ++i) {
      if (!match.Get(i)) continue;
      ++matched;
      const Value& v = table_.at(i, measure_idx_);
      if (v.is_numeric()) sum += v.AsDouble();
    }
    counter_.ChargeBytes(matched * sizeof(double));
    return sum;
  }

  void BuildIndexes() {
    indexes_.resize(dim_names_.size());
    for (size_t d = 0; d < dim_names_.size(); ++d) {
      for (size_t i = 0; i < table_.num_rows(); ++i) {
        const Value& v = table_.at(i, d);
        auto it = indexes_[d].find(v);
        if (it == indexes_[d].end())
          it = indexes_[d].emplace(v, BitVector(table_.num_rows())).first;
        it->second.Set(i, true);
      }
    }
  }

  Table table_;
  size_t measure_idx_;
  RolapBackendOptions options_;
  std::vector<std::string> dim_names_;
  std::vector<std::map<Value, BitVector>> indexes_;  // per dim: value -> rows
  BlockCounter counter_;
};

}  // namespace

Result<std::unique_ptr<CubeBackend>> MakeMolapBackend(
    const StatisticalObject& obj, const std::string& measure) {
  STATCUBE_ASSIGN_OR_RETURN(MolapCube cube, MolapCube::Build(obj, measure));
  std::vector<std::string> names;
  std::vector<std::vector<Value>> values;
  for (const auto& d : obj.dimensions()) {
    names.push_back(d.name());
    values.push_back(d.values());
  }
  return std::unique_ptr<CubeBackend>(
      new MolapBackend(std::move(cube), std::move(names), std::move(values)));
}

Result<std::unique_ptr<CubeBackend>> MakeRolapBackend(
    const StatisticalObject& obj, const std::string& measure,
    const RolapBackendOptions& options) {
  STATCUBE_ASSIGN_OR_RETURN(size_t midx,
                            obj.data().schema().IndexOf(measure));
  return std::unique_ptr<CubeBackend>(new RolapBackend(obj, midx, options));
}

}  // namespace statcube
