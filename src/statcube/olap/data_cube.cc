#include "statcube/olap/data_cube.h"

namespace statcube {

Result<DataCube> DataCube::Wrap(Result<StatisticalObject> r) const {
  if (!r.ok()) return r.status();
  return DataCube(std::move(r).value(), options_);
}

Result<DataCube> DataCube::Select(const std::string& dim,
                                  const std::vector<Value>& values) const {
  return Wrap(SSelect(object_, dim, values));
}

Result<DataCube> DataCube::Dice(const std::vector<DiceSpec>& specs) const {
  return Wrap(statcube::Dice(object_, specs));
}

Result<DataCube> DataCube::Slice(const std::string& dim) const {
  return Wrap(SProject(object_, dim, OpOptions()));
}

Result<DataCube> DataCube::SliceAt(const std::string& dim,
                                   const Value& value) const {
  return Wrap(statcube::SliceAt(object_, dim, value));
}

Result<DataCube> DataCube::RollUp(const std::string& dim,
                                  const std::string& hierarchy,
                                  size_t to_level) const {
  return Wrap(SAggregate(object_, dim, hierarchy, to_level, OpOptions()));
}

Result<DataCube> DataCube::Union(const DataCube& other) const {
  return Wrap(SUnion(object_, other.object_));
}

Status DataCube::EnsureBackend(const std::string& measure) {
  if (backend_ && backend_measure_ == measure) return Status::OK();
  Result<std::unique_ptr<CubeBackend>> built =
      options_.backend == BackendKind::kMolap
          ? MakeMolapBackend(object_, measure)
          : MakeRolapBackend(
                object_, measure,
                {.build_bitmap_indexes =
                     options_.backend == BackendKind::kRolapBitmap});
  if (!built.ok()) return built.status();
  backend_ = std::shared_ptr<CubeBackend>(std::move(built).value());
  backend_measure_ = measure;
  return Status::OK();
}

Result<double> DataCube::Sum(const std::string& measure,
                             const std::vector<EqFilter>& filters) {
  STATCUBE_RETURN_NOT_OK(EnsureBackend(measure));
  return backend_->Sum(filters);
}

Result<AutoResult> DataCube::Ask(const AutoQuery& query) const {
  return AutoAggregate(object_, query, OpOptions());
}

Result<std::string> DataCube::Render(const Render2DOptions& options) const {
  return Render2D(object_, options);
}

}  // namespace statcube
