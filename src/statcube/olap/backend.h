/// \file
/// \brief The pluggable query backend interface behind a statistical
/// object — the §6.6 ROLAP vs MOLAP debate expressed as an API.
///
/// Both backends answer the same aggregate queries over the same
/// StatisticalObject; which physical organization serves them differs:
///
///  * MolapBackend — dense linearized array (molap_cube.h): arithmetic
///    addressing, stores the whole cross product.
///  * RolapBackend — the object's cell table scanned relationally; with
///    `BuildIndexes`, dictionary-encoded bitmap indexes per dimension
///    accelerate the scans (the ROLAP proponents' claim (iv): "efficiency
///    of ROLAP can be achieved by using techniques such as encoding and
///    compression").
///
/// Equivalence across backends is a test invariant; bench_rolap_molap and
/// bench_ablation measure the trade-offs.

#ifndef STATCUBE_OLAP_BACKEND_H_
#define STATCUBE_OLAP_BACKEND_H_

#include <memory>
#include <string>
#include <vector>

#include "statcube/common/block_counter.h"
#include "statcube/common/status.h"
#include "statcube/core/statistical_object.h"
#include "statcube/storage/bitvector.h"
#include "statcube/storage/dictionary.h"
#include "statcube/storage/stores.h"

namespace statcube::exec {
/// See exec/parallel_kernels.h (declared here to avoid pulling the whole
/// kernel layer into every backend user).
bool DefaultVectorized();
}  // namespace statcube::exec

namespace statcube {

/// A dimension-subset aggregate query: SUM(measure) grouped by `group_dims`
/// with optional equality filters. Empty group = a single total.
struct CubeQuery {
  /// Dimensions to group by (order fixes the output column order).
  std::vector<std::string> group_dims;
  /// Equality filters ANDed together; empty = no filtering.
  std::vector<EqFilter> filters;
  /// 1 (default) = the serial answer path; N != 1 routes the backend's
  /// scans/groupings through the morsel-parallel kernels (statcube/exec)
  /// with N workers (0 = exec::DefaultThreads()). Results are identical.
  int threads = 1;
  /// Routes the parallel grouping (threads != 1) through the vectorized
  /// radix kernels (exec/vec_kernels.h). Results stay bit-identical; see
  /// ExecOptions::vectorized.
  bool vectorized = exec::DefaultVectorized();
};

/// Backend-independent query interface over one (object, measure) pair.
class CubeBackend {
 public:
  virtual ~CubeBackend() = default;  ///< Backends are owned polymorphically.

  /// Descriptive name ("molap", "rolap", "rolap+bitmap").
  virtual std::string name() const = 0;

  /// SUM(measure) over cells matching all equality filters.
  virtual Result<double> Sum(const std::vector<EqFilter>& filters) = 0;

  /// GROUP BY over the named dimensions with filters; returns rows of
  /// (group values..., sum) sorted by group values.
  virtual Result<Table> GroupBySum(const CubeQuery& query) = 0;

  /// Physical footprint.
  virtual size_t ByteSize() const = 0;

  /// Logical block accounting.
  virtual BlockCounter& counter() = 0;
};

/// Builds a MOLAP backend (dense array).
Result<std::unique_ptr<CubeBackend>> MakeMolapBackend(
    const StatisticalObject& obj, const std::string& measure);

/// Options for the ROLAP backend.
struct RolapBackendOptions {
  /// Build per-dimension bitmap indexes (one bitmap per category value) so
  /// equality filters intersect bitmaps instead of scanning.
  bool build_bitmap_indexes = false;
};

/// Builds a ROLAP backend over the object's cell table.
Result<std::unique_ptr<CubeBackend>> MakeRolapBackend(
    const StatisticalObject& obj, const std::string& measure,
    const RolapBackendOptions& options = {});

}  // namespace statcube

#endif  // STATCUBE_OLAP_BACKEND_H_
