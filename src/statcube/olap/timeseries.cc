#include "statcube/olap/timeseries.h"

#include <algorithm>
#include <map>

#include "statcube/relational/aggregate.h"

namespace statcube {

Result<std::vector<SeriesPoint>> ExtractSeries(const StatisticalObject& obj,
                                               const std::string& entity_dim,
                                               const Value& entity,
                                               const std::string& time_dim,
                                               const std::string& measure) {
  STATCUBE_ASSIGN_OR_RETURN(size_t eidx, obj.DimensionIndex(entity_dim));
  STATCUBE_ASSIGN_OR_RETURN(size_t tidx, obj.DimensionIndex(time_dim));
  STATCUBE_ASSIGN_OR_RETURN(const SummaryMeasure* m,
                            obj.MeasureNamed(measure));
  STATCUBE_ASSIGN_OR_RETURN(size_t midx,
                            obj.data().schema().IndexOf(measure));

  std::map<Value, AggState> per_time;
  for (const Row& r : obj.data().rows()) {
    if (r[eidx] != entity) continue;
    per_time[r[tidx]].Add(r[midx]);
  }
  std::vector<SeriesPoint> out;
  out.reserve(per_time.size());
  for (const auto& [t, st] : per_time) {
    Value v = st.Finalize(m->default_fn);
    out.push_back({t, v.is_numeric() ? v.AsDouble() : 0.0});
  }
  return out;
}

std::vector<SeriesPoint> MovingAverage(const std::vector<SeriesPoint>& series,
                                       size_t window) {
  std::vector<SeriesPoint> out;
  if (window == 0) window = 1;
  double sum = 0;
  for (size_t i = 0; i < series.size(); ++i) {
    sum += series[i].value;
    if (i >= window) sum -= series[i - window].value;
    size_t n = i + 1 < window ? i + 1 : window;
    out.push_back({series[i].time, sum / double(n)});
  }
  return out;
}

Result<std::vector<PeriodSummary>> SummarizeByPeriod(
    const StatisticalObject& obj, const std::string& time_dim,
    const std::string& hierarchy, size_t level,
    const std::vector<SeriesPoint>& series) {
  STATCUBE_ASSIGN_OR_RETURN(const Dimension* dim,
                            obj.DimensionNamed(time_dim));
  STATCUBE_ASSIGN_OR_RETURN(const ClassificationHierarchy* hier,
                            dim->HierarchyNamed(hierarchy));
  if (level == 0 || level >= hier->num_levels())
    return Status::OutOfRange("period level out of range");

  std::map<Value, PeriodSummary> periods;
  for (const auto& p : series) {
    STATCUBE_ASSIGN_OR_RETURN(std::vector<Value> anc,
                              hier->Ancestors(0, p.time, level));
    if (anc.empty())
      return Status::NotFound("timestamp " + p.time.ToString() +
                              " is unmapped in hierarchy '" + hierarchy + "'");
    for (const Value& a : anc) {
      auto it = periods.find(a);
      if (it == periods.end()) {
        it = periods.emplace(a, PeriodSummary{a, 0, p.value, p.value, 0})
                 .first;
      }
      PeriodSummary& ps = it->second;
      ps.avg += p.value;  // running sum; divided below
      ps.high = std::max(ps.high, p.value);
      ps.low = std::min(ps.low, p.value);
      ++ps.n;
    }
  }
  std::vector<PeriodSummary> out;
  for (auto& [k, ps] : periods) {
    ps.avg /= double(ps.n);
    out.push_back(ps);
  }
  return out;
}

Result<double> MaxDrawdown(const std::vector<SeriesPoint>& series) {
  if (series.empty()) return Status::InvalidArgument("empty series");
  double peak = series.front().value;
  double worst = 0.0;
  for (const auto& p : series) {
    if (p.value > peak) peak = p.value;
    if (peak > 0) worst = std::max(worst, (peak - p.value) / peak);
  }
  return worst;
}

}  // namespace statcube
