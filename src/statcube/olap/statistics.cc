#include "statcube/olap/statistics.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>

namespace statcube {

Result<double> Percentile(std::vector<double> values, double p) {
  if (values.empty()) return Status::InvalidArgument("percentile of nothing");
  if (p < 0 || p > 100)
    return Status::InvalidArgument("percentile must be in [0, 100]");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  double rank = p / 100.0 * double(values.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  double frac = rank - double(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

Result<double> Median(std::vector<double> values) {
  return Percentile(std::move(values), 50.0);
}

Result<double> TrimmedMean(std::vector<double> values, double trim_fraction) {
  if (values.empty()) return Status::InvalidArgument("trimmed mean of nothing");
  if (trim_fraction < 0 || trim_fraction >= 0.5)
    return Status::InvalidArgument("trim fraction must be in [0, 0.5)");
  std::sort(values.begin(), values.end());
  size_t k = static_cast<size_t>(std::floor(trim_fraction * double(values.size())));
  if (2 * k >= values.size())
    return Status::InvalidArgument("trim removes all values");
  double sum = 0;
  for (size_t i = k; i < values.size() - k; ++i) sum += values[i];
  return sum / double(values.size() - 2 * k);
}

Result<double> Mean(const std::vector<double>& values) {
  if (values.empty()) return Status::InvalidArgument("mean of nothing");
  double sum = 0;
  for (double v : values) sum += v;
  return sum / double(values.size());
}

Result<double> StdDev(const std::vector<double>& values) {
  if (values.empty()) return Status::InvalidArgument("stddev of nothing");
  STATCUBE_ASSIGN_OR_RETURN(double mean, Mean(values));
  double ss = 0;
  for (double v : values) ss += (v - mean) * (v - mean);
  return std::sqrt(ss / double(values.size()));
}

Result<Table> GroupedHolistic(const Table& input,
                              const std::vector<std::string>& group_cols,
                              const std::string& value_col,
                              const std::string& stat) {
  STATCUBE_ASSIGN_OR_RETURN(std::vector<size_t> gidx,
                            input.schema().IndexesOf(group_cols));
  STATCUBE_ASSIGN_OR_RETURN(size_t vidx, input.schema().IndexOf(value_col));

  // Parse the statistic spec once.
  enum class Kind { kMedian, kPercentile, kTrimmed } kind;
  double param = 0;
  if (stat == "median") {
    kind = Kind::kMedian;
  } else if (stat.rfind("p", 0) == 0) {
    kind = Kind::kPercentile;
    char* end = nullptr;
    param = strtod(stat.c_str() + 1, &end);
    if (!end || *end != '\0' || param < 0 || param > 100)
      return Status::InvalidArgument("bad percentile spec '" + stat + "'");
  } else if (stat.rfind("trimmed", 0) == 0) {
    kind = Kind::kTrimmed;
    char* end = nullptr;
    param = strtod(stat.c_str() + 7, &end) / 100.0;
    if (!end || *end != '\0' || param < 0 || param >= 0.5)
      return Status::InvalidArgument("bad trim spec '" + stat + "'");
  } else {
    return Status::InvalidArgument("unknown statistic '" + stat + "'");
  }

  // Holistic: collect the full value set per group.
  std::map<Row, std::vector<double>> groups;
  Row key(gidx.size());
  for (const Row& r : input.rows()) {
    for (size_t i = 0; i < gidx.size(); ++i) key[i] = r[gidx[i]];
    if (r[vidx].is_numeric()) groups[key].push_back(r[vidx].AsDouble());
  }

  Schema out_schema;
  for (const auto& g : group_cols) out_schema.AddColumn(g, ValueType::kString);
  out_schema.AddColumn(stat + "_" + value_col, ValueType::kDouble);
  Table out(input.name() + "_" + stat, out_schema);
  for (auto& [k, values] : groups) {
    Result<double> s = kind == Kind::kMedian
                           ? Median(values)
                           : kind == Kind::kPercentile
                                 ? Percentile(values, param)
                                 : TrimmedMean(values, param);
    Row row = k;
    row.push_back(s.ok() ? Value(*s) : Value::Null());
    out.AppendRowUnchecked(std::move(row));
  }
  return out;
}

}  // namespace statcube
