#include "statcube/olap/sparse_cube.h"

namespace statcube {

Result<SparseMolapCube> SparseMolapCube::Build(const StatisticalObject& obj,
                                               const std::string& measure) {
  STATCUBE_ASSIGN_OR_RETURN(size_t midx,
                            obj.data().schema().IndexOf(measure));
  size_t ndims = obj.dimensions().size();
  std::vector<std::string> names;
  std::vector<Dictionary> dicts(ndims);
  std::vector<size_t> shape(ndims);
  for (size_t i = 0; i < ndims; ++i) {
    names.push_back(obj.dimensions()[i].name());
    for (const Value& v : obj.dimensions()[i].values()) dicts[i].Encode(v);
    shape[i] = dicts[i].cardinality();
    if (shape[i] == 0)
      return Status::InvalidArgument("dimension '" + names[i] +
                                     "' has no values");
  }
  std::vector<size_t> strides(ndims, 1);
  size_t total = 1;
  for (size_t i = ndims; i-- > 0;) {
    strides[i] = total;
    total *= shape[i];
  }
  std::vector<double> cells(total, 0.0);
  for (const Row& r : obj.data().rows()) {
    size_t pos = 0;
    for (size_t i = 0; i < ndims; ++i) {
      STATCUBE_ASSIGN_OR_RETURN(uint32_t code, dicts[i].Lookup(r[i]));
      pos += code * strides[i];
    }
    if (r[midx].is_numeric()) cells[pos] += r[midx].AsDouble();
  }
  HeaderCompressedArray compressed(cells);
  return SparseMolapCube(std::move(names), std::move(dicts),
                         std::move(strides), std::move(compressed));
}

Result<double> SparseMolapCube::SumWhere(
    const std::vector<EqFilter>& filters) {
  size_t ndims = dicts_.size();
  if (ndims == 0) return array_.SumPositions(0, array_.logical_size());
  // [lo, hi) code slab per dimension.
  std::vector<size_t> lo(ndims, 0), hi(ndims);
  for (size_t i = 0; i < ndims; ++i) hi[i] = dicts_[i].cardinality();
  for (const auto& f : filters) {
    bool found = false;
    for (size_t i = 0; i < ndims; ++i) {
      if (dim_names_[i] != f.column) continue;
      found = true;
      auto code = dicts_[i].Lookup(f.value);
      if (!code.ok()) return 0.0;
      lo[i] = *code;
      hi[i] = *code + 1;
    }
    if (!found) return Status::NotFound("no dimension '" + f.column + "'");
  }
  // Odometer over leading dims; innermost dim gives contiguous positions.
  std::vector<size_t> cur = lo;
  double sum = 0.0;
  while (true) {
    size_t base = 0;
    for (size_t i = 0; i < ndims; ++i) base += cur[i] * strides_[i];
    STATCUBE_ASSIGN_OR_RETURN(
        double seg, array_.SumPositions(base, base + (hi[ndims - 1] -
                                                      lo[ndims - 1])));
    sum += seg;
    size_t d = ndims - 1;
    bool done = true;
    while (d-- > 0) {
      if (++cur[d] < hi[d]) {
        done = false;
        break;
      }
      cur[d] = lo[d];
    }
    if (done) break;
  }
  return sum;
}

Result<double> SparseMolapCube::GetCell(
    const std::vector<Value>& coord_values) {
  if (coord_values.size() != dicts_.size())
    return Status::InvalidArgument("coordinate arity mismatch");
  size_t pos = 0;
  for (size_t i = 0; i < dicts_.size(); ++i) {
    auto code = dicts_[i].Lookup(coord_values[i]);
    if (!code.ok()) return 0.0;
    pos += *code * strides_[i];
  }
  return array_.Get(pos);
}

size_t SparseMolapCube::ByteSize() const {
  size_t b = array_.ByteSize();
  for (const auto& d : dicts_) b += d.ByteSize();
  return b;
}

}  // namespace statcube
