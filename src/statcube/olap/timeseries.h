// Time-series operations over a statistical object's temporal dimension
// (paper §3.2(ii)): the stock-market needs the paper lists — "generating
// weekly or monthly averages, highs and lows" — plus moving averages, the
// bread-and-butter smoothing of regular-interval series.
//
// The temporal dimension's leaf values are ordered by the Value total order
// (workloads name days so lexicographic == chronological); per-key series
// are extracted per value of a chosen entity dimension.

#ifndef STATCUBE_OLAP_TIMESERIES_H_
#define STATCUBE_OLAP_TIMESERIES_H_

#include <string>
#include <vector>

#include "statcube/common/status.h"
#include "statcube/core/statistical_object.h"

namespace statcube {

/// One (time, value) point.
struct SeriesPoint {
  Value time;
  double value;
};

/// Extracts the ordered series of `measure` for a fixed value of
/// `entity_dim` (e.g. the close prices of one stock), ordered by the
/// temporal dimension's values. Remaining dimensions must be singletons or
/// absent; duplicate timestamps aggregate with the measure's function.
Result<std::vector<SeriesPoint>> ExtractSeries(const StatisticalObject& obj,
                                               const std::string& entity_dim,
                                               const Value& entity,
                                               const std::string& time_dim,
                                               const std::string& measure);

/// Simple moving average with the given window (first window-1 points use
/// the partial prefix, so output length == input length).
std::vector<SeriesPoint> MovingAverage(const std::vector<SeriesPoint>& series,
                                       size_t window);

/// Per-period summary: average, high, low of a series grouped by a
/// classification level of the time dimension (e.g. weekly from daily).
struct PeriodSummary {
  Value period;
  double avg = 0;
  double high = 0;
  double low = 0;
  size_t n = 0;
};

/// Groups `series` by the ancestors of each timestamp at `level` of
/// `hierarchy` on the object's `time_dim`. The "weekly averages, highs and
/// lows" of §3.2(ii).
Result<std::vector<PeriodSummary>> SummarizeByPeriod(
    const StatisticalObject& obj, const std::string& time_dim,
    const std::string& hierarchy, size_t level,
    const std::vector<SeriesPoint>& series);

/// Largest peak-to-trough decline of the series, as a fraction of the peak
/// (max drawdown — a standard series statistic exercising ordering).
Result<double> MaxDrawdown(const std::vector<SeriesPoint>& series);

}  // namespace statcube

#endif  // STATCUBE_OLAP_TIMESERIES_H_
