#include "statcube/olap/operators.h"

#include <map>
#include <set>

namespace statcube {

namespace {

// Builds a fresh object from dimension/measure metadata and cells given as
// (coordinate, measure values) rows. Dimension leaf registries are rebuilt
// from the cells.
Result<StatisticalObject> MakeObject(
    const std::string& name, std::vector<Dimension> dims,
    const std::vector<SummaryMeasure>& measures,
    const std::vector<std::pair<Row, Row>>& cells) {
  StatisticalObject out(name);
  for (auto& d : dims) {
    d.ClearValues();
    STATCUBE_RETURN_NOT_OK(out.AddDimension(std::move(d)));
  }
  for (const auto& m : measures) STATCUBE_RETURN_NOT_OK(out.AddMeasure(m));
  for (const auto& [coord, mv] : cells)
    STATCUBE_RETURN_NOT_OK(out.AddCell(coord, mv));
  return out;
}

// Aggregation plan per measure, honoring weight_measure for kAvg.
struct MeasurePlan {
  AggFn fn;
  int weight_index = -1;  // index into the measure list, or -1
};

std::vector<MeasurePlan> PlanMeasures(
    const std::vector<SummaryMeasure>& measures) {
  std::vector<MeasurePlan> plans;
  for (const auto& m : measures) {
    MeasurePlan p{m.default_fn, -1};
    if (m.default_fn == AggFn::kAvg && !m.weight_measure.empty()) {
      for (size_t j = 0; j < measures.size(); ++j)
        if (measures[j].name == m.weight_measure)
          p.weight_index = static_cast<int>(j);
    }
    plans.push_back(p);
  }
  return plans;
}

// One accumulator per measure per group.
struct MeasureAcc {
  AggState state;
  double weighted_num = 0.0;
  double weighted_den = 0.0;
};

// Groups `cells` (coordinate, measure-values pairs) by coordinate and
// aggregates the measures according to `plans`.
std::vector<std::pair<Row, Row>> AggregateCells(
    const std::vector<std::pair<Row, Row>>& cells,
    const std::vector<SummaryMeasure>& measures,
    const std::vector<MeasurePlan>& plans) {
  std::map<Row, std::vector<MeasureAcc>> groups;
  for (const auto& [coord, mv] : cells) {
    auto it = groups.find(coord);
    if (it == groups.end())
      it = groups.emplace(coord, std::vector<MeasureAcc>(measures.size()))
               .first;
    for (size_t i = 0; i < measures.size(); ++i) {
      MeasureAcc& acc = it->second[i];
      acc.state.Add(mv[i]);
      if (plans[i].weight_index >= 0) {
        const Value& w = mv[static_cast<size_t>(plans[i].weight_index)];
        if (mv[i].is_numeric() && w.is_numeric()) {
          acc.weighted_num += mv[i].AsDouble() * w.AsDouble();
          acc.weighted_den += w.AsDouble();
        }
      }
    }
  }
  std::vector<std::pair<Row, Row>> out;
  out.reserve(groups.size());
  for (auto& [coord, accs] : groups) {
    Row mv(measures.size());
    for (size_t i = 0; i < measures.size(); ++i) {
      if (plans[i].weight_index >= 0 && accs[i].weighted_den > 0) {
        mv[i] = Value(accs[i].weighted_num / accs[i].weighted_den);
      } else {
        mv[i] = accs[i].state.Finalize(plans[i].fn);
      }
    }
    out.emplace_back(coord, std::move(mv));
  }
  return out;
}

// Splits the object's data rows into (coordinate, measure values).
std::vector<std::pair<Row, Row>> SplitCells(const StatisticalObject& obj) {
  size_t nd = obj.dimensions().size();
  size_t nm = obj.measures().size();
  std::vector<std::pair<Row, Row>> out;
  out.reserve(obj.data().num_rows());
  for (const Row& r : obj.data().rows()) {
    Row coord(r.begin(), r.begin() + static_cast<long>(nd));
    Row mv(r.begin() + static_cast<long>(nd),
           r.begin() + static_cast<long>(nd + nm));
    out.emplace_back(std::move(coord), std::move(mv));
  }
  return out;
}

}  // namespace

Result<StatisticalObject> SSelect(const StatisticalObject& obj,
                                  const std::string& dim,
                                  const std::vector<Value>& values) {
  STATCUBE_ASSIGN_OR_RETURN(size_t didx, obj.DimensionIndex(dim));
  std::set<Value> keep(values.begin(), values.end());
  std::vector<std::pair<Row, Row>> cells;
  for (auto& cell : SplitCells(obj))
    if (keep.count(cell.first[didx])) cells.push_back(std::move(cell));
  return MakeObject(obj.name() + "_sselect", obj.dimensions(), obj.measures(),
                    cells);
}

Result<StatisticalObject> Dice(const StatisticalObject& obj,
                               const std::vector<DiceSpec>& specs) {
  StatisticalObject cur = obj;
  for (const auto& spec : specs) {
    STATCUBE_ASSIGN_OR_RETURN(cur, SSelect(cur, spec.dim, spec.values));
  }
  return cur;
}

Result<StatisticalObject> SliceAt(const StatisticalObject& obj,
                                  const std::string& dim, const Value& value) {
  return SSelect(obj, dim, {value});
}

Result<StatisticalObject> SProject(const StatisticalObject& obj,
                                   const std::string& dim,
                                   const OperatorOptions& options) {
  STATCUBE_ASSIGN_OR_RETURN(size_t didx, obj.DimensionIndex(dim));
  if (options.enforce_summarizability) {
    for (const auto& m : obj.measures()) {
      STATCUBE_ASSIGN_OR_RETURN(
          SummarizabilityReport rep,
          CheckProjectOut(obj, dim, m.name, m.default_fn));
      STATCUBE_RETURN_NOT_OK(rep.ToStatus());
    }
  }
  std::vector<Dimension> dims;
  for (size_t i = 0; i < obj.dimensions().size(); ++i)
    if (i != didx) dims.push_back(obj.dimensions()[i]);

  std::vector<std::pair<Row, Row>> cells;
  for (auto& [coord, mv] : SplitCells(obj)) {
    Row c;
    for (size_t i = 0; i < coord.size(); ++i)
      if (i != didx) c.push_back(coord[i]);
    cells.emplace_back(std::move(c), std::move(mv));
  }
  auto plans = PlanMeasures(obj.measures());
  auto aggregated = AggregateCells(cells, obj.measures(), plans);
  return MakeObject(obj.name() + "_minus_" + dim, std::move(dims),
                    obj.measures(), aggregated);
}

Result<StatisticalObject> SAggregate(const StatisticalObject& obj,
                                     const std::string& dim,
                                     const std::string& hierarchy,
                                     size_t to_level,
                                     const OperatorOptions& options) {
  STATCUBE_ASSIGN_OR_RETURN(size_t didx, obj.DimensionIndex(dim));
  const Dimension& d = obj.dimensions()[didx];
  STATCUBE_ASSIGN_OR_RETURN(const ClassificationHierarchy* hier,
                            d.HierarchyNamed(hierarchy));
  if (to_level == 0) return obj;  // already at the leaves
  if (to_level >= hier->num_levels())
    return Status::OutOfRange("hierarchy '" + hierarchy + "' has only " +
                              std::to_string(hier->num_levels()) + " levels");
  if (options.enforce_summarizability) {
    for (const auto& m : obj.measures()) {
      STATCUBE_ASSIGN_OR_RETURN(
          SummarizabilityReport rep,
          CheckRollup(obj, dim, hierarchy, 0, to_level, m.name, m.default_fn));
      STATCUBE_RETURN_NOT_OK(rep.ToStatus());
    }
  }

  // New dimension named after the target category attribute, carrying the
  // truncated hierarchy (levels to_level and above).
  Dimension nd(hier->levels()[to_level], d.kind());
  if (to_level + 1 < hier->num_levels()) {
    std::vector<std::string> levels(hier->levels().begin() +
                                        static_cast<long>(to_level),
                                    hier->levels().end());
    ClassificationHierarchy trunc(hier->name(), levels);
    for (size_t l = to_level; l + 1 < hier->num_levels(); ++l) {
      for (const Value& child : hier->ValuesAt(l)) {
        for (const Value& parent : hier->Parents(l, child)) {
          STATCUBE_RETURN_NOT_OK(trunc.Link(l - to_level, child, parent));
        }
      }
    }
    nd.AddHierarchy(std::move(trunc));
  }
  std::vector<Dimension> dims = obj.dimensions();
  dims[didx] = std::move(nd);

  // Map each cell's leaf value to its ancestors at to_level. Multiple
  // ancestors (non-strict) replicate the cell; none (uncovered) drops it.
  std::vector<std::pair<Row, Row>> cells;
  for (auto& [coord, mv] : SplitCells(obj)) {
    STATCUBE_ASSIGN_OR_RETURN(std::vector<Value> ancestors,
                              hier->Ancestors(0, coord[didx], to_level));
    for (const Value& a : ancestors) {
      Row c = coord;
      c[didx] = a;
      cells.emplace_back(std::move(c), mv);
    }
  }
  auto plans = PlanMeasures(obj.measures());
  auto aggregated = AggregateCells(cells, obj.measures(), plans);
  return MakeObject(obj.name() + "_by_" + hier->levels()[to_level],
                    std::move(dims), obj.measures(), aggregated);
}

Result<StatisticalObject> DrillDown(const StatisticalObject& base,
                                    const std::string& dim,
                                    const std::string& hierarchy,
                                    size_t to_level,
                                    const OperatorOptions& options) {
  if (to_level == 0) return base;
  return SAggregate(base, dim, hierarchy, to_level, options);
}

Result<StatisticalObject> SUnion(const StatisticalObject& a,
                                 const StatisticalObject& b) {
  if (a.dimensions().size() != b.dimensions().size())
    return Status::InvalidArgument("S-union: dimension counts differ");
  for (size_t i = 0; i < a.dimensions().size(); ++i)
    if (a.dimensions()[i].name() != b.dimensions()[i].name())
      return Status::InvalidArgument("S-union: dimension '" +
                                     a.dimensions()[i].name() + "' vs '" +
                                     b.dimensions()[i].name() + "'");
  if (a.measures().size() != b.measures().size())
    return Status::InvalidArgument("S-union: measure counts differ");
  for (size_t i = 0; i < a.measures().size(); ++i)
    if (a.measures()[i].name != b.measures()[i].name)
      return Status::InvalidArgument("S-union: measure '" +
                                     a.measures()[i].name + "' vs '" +
                                     b.measures()[i].name + "'");

  auto cells = SplitCells(a);
  for (auto& cell : SplitCells(b)) cells.push_back(std::move(cell));
  auto plans = PlanMeasures(a.measures());
  auto aggregated = AggregateCells(cells, a.measures(), plans);
  // Union the dimension hierarchies too (prefer a's; b's extra hierarchies
  // are not merged — classification matching (§5.7) handles mismatched
  // classifications explicitly).
  return MakeObject(a.name() + "_union_" + b.name(), a.dimensions(),
                    a.measures(), aggregated);
}

Result<StatisticalObject> SDisaggregateByProxy(
    const StatisticalObject& obj, const std::string& dim,
    const std::string& child_attribute,
    const std::vector<ProxyChild>& children) {
  STATCUBE_ASSIGN_OR_RETURN(size_t didx, obj.DimensionIndex(dim));

  // Per parent: its children and normalized weights.
  std::map<Value, std::vector<std::pair<Value, double>>> per_parent;
  std::map<Value, double> weight_sum;
  for (const auto& c : children) {
    if (c.proxy_weight < 0)
      return Status::InvalidArgument("negative proxy weight for " +
                                     c.child.ToString());
    per_parent[c.parent].emplace_back(c.child, c.proxy_weight);
    weight_sum[c.parent] += c.proxy_weight;
  }

  // Which measures split (additive) vs copy (levels/rates).
  std::vector<bool> additive;
  for (const auto& m : obj.measures())
    additive.push_back(m.default_fn == AggFn::kSum ||
                       m.default_fn == AggFn::kCount ||
                       m.default_fn == AggFn::kCountAll);

  std::vector<Dimension> dims = obj.dimensions();
  dims[didx] = Dimension(child_attribute, obj.dimensions()[didx].kind());

  std::vector<std::pair<Row, Row>> cells;
  for (auto& [coord, mv] : SplitCells(obj)) {
    auto pit = per_parent.find(coord[didx]);
    if (pit == per_parent.end())
      return Status::NotFound("no proxy children for parent " +
                              coord[didx].ToString());
    double wsum = weight_sum[coord[didx]];
    if (wsum <= 0)
      return Status::InvalidArgument("zero total proxy weight under " +
                                     coord[didx].ToString());
    for (const auto& [child, w] : pit->second) {
      Row c = coord;
      c[didx] = child;
      Row m = mv;
      for (size_t i = 0; i < m.size(); ++i) {
        if (additive[i] && m[i].is_numeric())
          m[i] = Value(m[i].AsDouble() * (w / wsum));
      }
      cells.emplace_back(std::move(c), std::move(m));
    }
  }
  return MakeObject(obj.name() + "_by_" + child_attribute, std::move(dims),
                    obj.measures(), cells);
}

Result<StatisticalObject> Consolidate(const StatisticalObject& obj) {
  auto plans = PlanMeasures(obj.measures());
  auto aggregated = AggregateCells(SplitCells(obj), obj.measures(), plans);
  return MakeObject(obj.name(), obj.dimensions(), obj.measures(), aggregated);
}

}  // namespace statcube
