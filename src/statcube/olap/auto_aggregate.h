// Automatic aggregation ([S82], paper §5.1, Figure 13): because a
// statistical object's semantics are explicit, a query need only circle a
// few nodes — "engineer" on the profession hierarchy, "1980" on year — and
// everything else is inferred:
//   * a selection on a non-leaf category value implies summarization over
//     its descendants;
//   * a dimension with no selection implies summarization over all its
//     values;
//   * the measure and the summary function come from the object itself.
//
// AutoAggregate compiles such a minimal query into the S-operator pipeline
// (S-aggregate to the selected level, S-select the circled value, S-project
// the unselected dimensions) and returns the single resulting cell.

#ifndef STATCUBE_OLAP_AUTO_AGGREGATE_H_
#define STATCUBE_OLAP_AUTO_AGGREGATE_H_

#include <string>
#include <vector>

#include "statcube/common/status.h"
#include "statcube/core/statistical_object.h"
#include "statcube/olap/operators.h"

namespace statcube {

/// One circled node: a category attribute name (a dimension name or any
/// classification level name on it) and the selected value.
struct AutoSelection {
  std::string attribute;
  Value value;
};

/// A minimal query: selections plus the measure to report.
struct AutoQuery {
  std::vector<AutoSelection> selections;
  std::string measure;
};

/// Result of an automatic aggregation: the inferred plan (for display) and
/// the value.
struct AutoResult {
  Value value;
  std::vector<std::string> inferred_steps;  ///< human-readable plan
};

/// Evaluates a minimal query against the object. Summarizability
/// enforcement follows `options`; the default matches interactive use
/// (enforce off — the user explicitly asked for this summary, as in the
/// paper's Figure 13 walk-through).
Result<AutoResult> AutoAggregate(const StatisticalObject& obj,
                                 const AutoQuery& query,
                                 const OperatorOptions& options = {
                                     .enforce_summarizability = false});

}  // namespace statcube

#endif  // STATCUBE_OLAP_AUTO_AGGREGATE_H_
