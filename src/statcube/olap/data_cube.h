// DataCube: the Statistical Object as a self-contained data type — what the
// paper's conclusion (§8) argues object-relational systems should support:
// "the semantics, operations, and physical structures of the
// multidimensional space, but also of the classification structures ...
// automatic aggregations, advanced statistical operators, and mechanisms to
// deal with time varying and incompatible classifications."
//
// DataCube owns a StatisticalObject, lazily materializes a physical backend
// (MOLAP array, ROLAP scan, or bitmap-indexed ROLAP) for fast aggregates,
// and exposes the operator algebra, the text query language, automatic
// aggregation, and 2-D rendering behind one handle. Operators return new
// DataCubes, so pipelines chain.

#ifndef STATCUBE_OLAP_DATA_CUBE_H_
#define STATCUBE_OLAP_DATA_CUBE_H_

#include <memory>
#include <string>
#include <vector>

#include "statcube/common/status.h"
#include "statcube/core/statistical_object.h"
#include "statcube/core/table_render.h"
#include "statcube/olap/auto_aggregate.h"
#include "statcube/olap/backend.h"
#include "statcube/olap/operators.h"

namespace statcube {

/// Physical backend choice for aggregate queries.
enum class BackendKind { kMolap, kRolap, kRolapBitmap };

/// Configuration for a DataCube.
struct DataCubeOptions {
  BackendKind backend = BackendKind::kMolap;
  /// Applied to every summarizing operator invoked through this handle.
  bool enforce_summarizability = true;
};

/// The statistical-object data type: semantics + operators + physical
/// backend behind one handle.
class DataCube {
 public:
  explicit DataCube(StatisticalObject object, DataCubeOptions options = {})
      : object_(std::move(object)), options_(options) {}

  const StatisticalObject& object() const { return object_; }
  const DataCubeOptions& options() const { return options_; }

  /// Structural description (the paper's §2 summaries).
  std::string Describe() const { return object_.DescribeStructure(); }

  // --- operators (each returns a new DataCube with the same options) -----
  Result<DataCube> Select(const std::string& dim,
                          const std::vector<Value>& values) const;
  Result<DataCube> Dice(const std::vector<DiceSpec>& specs) const;
  Result<DataCube> Slice(const std::string& dim) const;  // S-project
  Result<DataCube> SliceAt(const std::string& dim, const Value& value) const;
  Result<DataCube> RollUp(const std::string& dim, const std::string& hierarchy,
                          size_t to_level = 1) const;
  Result<DataCube> Union(const DataCube& other) const;

  // --- aggregates through the physical backend ---------------------------
  /// SUM(measure) under equality filters; the backend is built lazily per
  /// measure and cached.
  Result<double> Sum(const std::string& measure,
                     const std::vector<EqFilter>& filters = {});

  // The §5.1 text query language lives one layer up: parse-and-run a cube
  // with statcube::Query(cube.object(), text) (query/parser.h). A member
  // forwarding to it would point olap/ at query/, inverting the layer DAG.

  /// Automatic aggregation (Figure 13).
  Result<AutoResult> Ask(const AutoQuery& query) const;

  /// 2-D statistical table (Figure 1/9).
  Result<std::string> Render(const Render2DOptions& options) const;

  /// Name of the active backend, if one has been materialized.
  std::string backend_name() const {
    return backend_ ? backend_->name() : "(none)";
  }

 private:
  OperatorOptions OpOptions() const {
    return {.enforce_summarizability = options_.enforce_summarizability};
  }
  Result<DataCube> Wrap(Result<StatisticalObject> r) const;
  Status EnsureBackend(const std::string& measure);

  StatisticalObject object_;
  DataCubeOptions options_;
  std::shared_ptr<CubeBackend> backend_;  // lazily built
  std::string backend_measure_;
};

}  // namespace statcube

#endif  // STATCUBE_OLAP_DATA_CUBE_H_
