// Array-based simultaneous computation of all 2^n cube aggregates, in the
// spirit of [ZDN97] (paper §5.4/§6.6): instead of scanning the base data
// once per grouping (the naive relational strategy), compute the finest
// array once and derive every coarser array by collapsing one dimension of
// an already-computed parent — each cell is touched a minimal number of
// times.

#ifndef STATCUBE_OLAP_CUBE_BUILD_H_
#define STATCUBE_OLAP_CUBE_BUILD_H_

#include <cstdint>
#include <map>
#include <vector>

#include "statcube/common/status.h"
#include "statcube/molap/dense_array.h"

namespace statcube {

/// Sums array `a` along dimension `d`, producing an array of one fewer
/// dimension (shape without d). A 0-d result is a single-cell array.
DenseArray CollapseDim(const DenseArray& a, size_t d);

/// All 2^n groupings of `base`, keyed by dimension bitmask (bit i set =
/// dimension i retained; the full mask maps to a copy of `base`). Each
/// grouping is derived from a parent with exactly one more dimension.
Result<std::map<uint32_t, DenseArray>> ArrayCubeAll(const DenseArray& base);

/// Total cells written across all groupings (cost model for benches).
uint64_t ArrayCubeCells(const std::vector<size_t>& shape);

}  // namespace statcube

#endif  // STATCUBE_OLAP_CUBE_BUILD_H_
