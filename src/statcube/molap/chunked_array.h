// Subcube (chunk) partitioning of a data cube ([SS94], paper §6.4,
// Figure 23): the cube is cut into equal sub-dimension subcubes so that a
// range ("dice") query reads only the subcubes it overlaps. Each chunk is
// stored contiguously; the block counter charges whole chunks, which is the
// unit of I/O this layout trades in.

#ifndef STATCUBE_MOLAP_CHUNKED_ARRAY_H_
#define STATCUBE_MOLAP_CHUNKED_ARRAY_H_

#include <cstdint>
#include <vector>

#include "statcube/common/block_counter.h"
#include "statcube/common/status.h"
#include "statcube/molap/dense_array.h"

namespace statcube {

/// Non-symmetric partitioning advisor (paper §6.4): "when knowledge exists
/// on the access patterns ... a non-symmetric partitioning approach can
/// further improve performance" ([CD+95]; the exact problem is NP-complete,
/// so a heuristic is expected). This one shapes chunks like the typical
/// query — extents proportional to `query_shape`, scaled so one chunk holds
/// about `target_cells` cells — which minimizes the expected number of
/// chunks a query straddles at fixed chunk volume.
std::vector<size_t> AdviseChunkShape(const std::vector<size_t>& shape,
                                     const std::vector<size_t>& query_shape,
                                     size_t target_cells);

/// A dense array partitioned into equal subcubes.
class ChunkedArray {
 public:
  /// `chunk_shape[i]` divides the query granularity of dimension i; the last
  /// chunk along a dimension may be ragged.
  ChunkedArray(std::vector<size_t> shape, std::vector<size_t> chunk_shape);

  size_t num_dims() const { return shape_.size(); }
  const std::vector<size_t>& shape() const { return shape_; }
  const std::vector<size_t>& chunk_shape() const { return chunk_shape_; }
  size_t num_chunks() const { return chunks_.size(); }

  Status Set(const std::vector<size_t>& coord, double v);
  Result<double> Get(const std::vector<size_t>& coord);

  /// Sum over a hyper-rectangle; charges each overlapped chunk in full.
  Result<double> SumRange(const std::vector<DimRange>& ranges);

  /// Number of chunks a range query would touch (exposed for benches).
  Result<uint64_t> ChunksOverlapped(const std::vector<DimRange>& ranges) const;

  size_t ByteSize() const;
  BlockCounter& counter() { return counter_; }

 private:
  // Chunk grid coordinate of a cell coordinate.
  std::vector<size_t> ChunkCoord(const std::vector<size_t>& coord) const;
  // Linear chunk index from a chunk grid coordinate.
  size_t ChunkIndex(const std::vector<size_t>& ccoord) const;
  // Offset of a cell within its chunk.
  size_t InChunkOffset(const std::vector<size_t>& coord,
                       const std::vector<size_t>& ccoord, size_t chunk) const;
  Status CheckCoord(const std::vector<size_t>& coord) const;

  std::vector<size_t> shape_;
  std::vector<size_t> chunk_shape_;
  std::vector<size_t> grid_;          // chunks per dimension
  std::vector<size_t> grid_strides_;  // row-major over the chunk grid
  // Per chunk: its actual (possibly ragged) shape and cells.
  struct Chunk {
    std::vector<size_t> shape;
    std::vector<size_t> strides;
    std::vector<double> cells;
  };
  std::vector<Chunk> chunks_;
  BlockCounter counter_;
};

}  // namespace statcube

#endif  // STATCUBE_MOLAP_CHUNKED_ARRAY_H_
