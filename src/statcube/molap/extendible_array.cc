#include "statcube/molap/extendible_array.h"

namespace statcube {

namespace {

void BuildStrides(const std::vector<size_t>& dims,
                  std::vector<size_t>* strides, size_t* cells) {
  strides->assign(dims.size(), 1);
  size_t total = 1;
  for (size_t i = dims.size(); i-- > 0;) {
    (*strides)[i] = total;
    total *= dims[i];
  }
  *cells = total;
}

}  // namespace

ExtendibleArray::ExtendibleArray(std::vector<size_t> initial_shape)
    : shape_(std::move(initial_shape)) {
  Segment s;
  s.dim = 0;
  s.start = 0;
  s.end = shape_.empty() ? 0 : shape_[0];
  s.bounds = shape_;
  size_t cells = 0;
  BuildStrides(s.bounds, &s.strides, &cells);
  s.cells.assign(cells, 0.0);
  segments_.push_back(std::move(s));
}

size_t ExtendibleArray::num_cells() const {
  size_t n = 1;
  for (size_t d : shape_) n *= d;
  return n;
}

Status ExtendibleArray::Expand(size_t dim, size_t by) {
  if (dim >= shape_.size()) return Status::OutOfRange("dimension");
  if (by == 0) return Status::OK();
  Segment s;
  s.dim = dim;
  s.start = shape_[dim];
  s.end = shape_[dim] + by;
  shape_[dim] += by;
  s.bounds = shape_;  // other dims at their *current* extents
  size_t cells = 0;
  // The segment spans [start, end) along dim and [0, shape) on the others,
  // so its dim-extent is `by`.
  std::vector<size_t> seg_shape = shape_;
  seg_shape[dim] = by;
  BuildStrides(seg_shape, &s.strides, &cells);
  s.cells.assign(cells, 0.0);
  counter_.ChargeBytes(cells * sizeof(double));  // write the new slab only
  segments_.push_back(std::move(s));
  return Status::OK();
}

Status ExtendibleArray::CheckCoord(const std::vector<size_t>& coord) const {
  if (coord.size() != shape_.size())
    return Status::InvalidArgument("coordinate arity mismatch");
  for (size_t i = 0; i < coord.size(); ++i)
    if (coord[i] >= shape_[i])
      return Status::OutOfRange("coordinate out of range");
  return Status::OK();
}

Result<size_t> ExtendibleArray::SegmentOf(
    const std::vector<size_t>& coord) const {
  for (size_t i = segments_.size(); i-- > 0;) {
    const Segment& s = segments_[i];
    if (coord[s.dim] >= s.start && coord[s.dim] < s.end) return i;
  }
  return Status::Internal("no segment owns coordinate");
}

size_t ExtendibleArray::OffsetIn(const Segment& s,
                                 const std::vector<size_t>& coord) const {
  size_t off = 0;
  for (size_t i = 0; i < coord.size(); ++i) {
    size_t c = (i == s.dim) ? coord[i] - s.start : coord[i];
    off += c * s.strides[i];
  }
  return off;
}

Status ExtendibleArray::Set(const std::vector<size_t>& coord, double v) {
  STATCUBE_RETURN_NOT_OK(CheckCoord(coord));
  STATCUBE_ASSIGN_OR_RETURN(size_t si, SegmentOf(coord));
  segments_[si].cells[OffsetIn(segments_[si], coord)] = v;
  return Status::OK();
}

Result<double> ExtendibleArray::Get(const std::vector<size_t>& coord) {
  STATCUBE_RETURN_NOT_OK(CheckCoord(coord));
  STATCUBE_ASSIGN_OR_RETURN(size_t si, SegmentOf(coord));
  counter_.ChargeBlocks(1);
  return segments_[si].cells[OffsetIn(segments_[si], coord)];
}

Result<double> ExtendibleArray::SumRange(const std::vector<DimRange>& ranges) {
  if (ranges.size() != shape_.size())
    return Status::InvalidArgument("range arity mismatch");
  size_t ndims = shape_.size();
  for (size_t i = 0; i < ndims; ++i) {
    if (ranges[i].lo > ranges[i].hi || ranges[i].hi > shape_[i])
      return Status::OutOfRange("range invalid");
    if (ranges[i].lo == ranges[i].hi) return 0.0;
  }
  double sum = 0.0;
  // Per segment: intersect the query with the segment's region, iterate.
  for (const Segment& s : segments_) {
    std::vector<size_t> lo(ndims), hi(ndims);
    bool empty = false;
    for (size_t i = 0; i < ndims; ++i) {
      size_t slo = (i == s.dim) ? s.start : 0;
      size_t shi = (i == s.dim) ? s.end : s.bounds[i];
      lo[i] = ranges[i].lo > slo ? ranges[i].lo : slo;
      hi[i] = ranges[i].hi < shi ? ranges[i].hi : shi;
      if (lo[i] >= hi[i]) {
        empty = true;
        break;
      }
    }
    if (empty) continue;
    // Later segments own overlapping coordinates along other dims? No: a
    // segment's region [start,end) along its dim never overlaps another
    // segment's region along the same dim, and along other dims its bounds
    // were the shape at expansion time, which later segments extend beyond —
    // so regions partition the array... except that a later expansion of a
    // *different* dim overlaps this segment's dim-range with larger other
    // coords. The region test above uses s.bounds for the other dims, which
    // excludes exactly those cells. Hence no double counting.
    size_t cells_visited = 1;
    for (size_t i = 0; i < ndims; ++i) cells_visited *= hi[i] - lo[i];
    counter_.ChargeBytes(cells_visited * sizeof(double));

    std::vector<size_t> cur = lo;
    while (true) {
      // cur[ndims-1] stays at lo[ndims-1]; the innermost dimension has
      // stride 1, so the run is contiguous from the base offset.
      size_t off = OffsetIn(s, cur);
      for (size_t k = 0; k < hi[ndims - 1] - lo[ndims - 1]; ++k)
        sum += s.cells[off + k];
      size_t d = ndims - 1;
      bool done = true;
      while (d-- > 0) {
        if (++cur[d] < hi[d]) {
          done = false;
          break;
        }
        cur[d] = lo[d];
      }
      if (done) break;
    }
  }
  return sum;
}

size_t ExtendibleArray::ByteSize() const {
  size_t b = 0;
  for (const auto& s : segments_) b += s.cells.size() * sizeof(double);
  return b;
}

}  // namespace statcube
