#include "statcube/molap/chunked_array.h"

#include <cmath>

namespace statcube {

std::vector<size_t> AdviseChunkShape(const std::vector<size_t>& shape,
                                     const std::vector<size_t>& query_shape,
                                     size_t target_cells) {
  size_t n = shape.size();
  std::vector<size_t> out(n, 1);
  if (n == 0) return out;
  double qprod = 1;
  for (size_t i = 0; i < n; ++i)
    qprod *= double(query_shape[i] == 0 ? 1 : query_shape[i]);
  double f = std::pow(double(target_cells) / qprod, 1.0 / double(n));
  for (size_t i = 0; i < n; ++i) {
    double q = double(query_shape[i] == 0 ? 1 : query_shape[i]);
    double c = std::round(q * f);
    if (c < 1) c = 1;
    if (c > double(shape[i])) c = double(shape[i]);
    out[i] = size_t(c);
  }
  return out;
}

ChunkedArray::ChunkedArray(std::vector<size_t> shape,
                           std::vector<size_t> chunk_shape)
    : shape_(std::move(shape)), chunk_shape_(std::move(chunk_shape)) {
  size_t ndims = shape_.size();
  grid_.resize(ndims);
  for (size_t i = 0; i < ndims; ++i)
    grid_[i] = (shape_[i] + chunk_shape_[i] - 1) / chunk_shape_[i];
  grid_strides_.assign(ndims, 1);
  size_t nchunks = 1;
  for (size_t i = ndims; i-- > 0;) {
    grid_strides_[i] = nchunks;
    nchunks *= grid_[i];
  }
  chunks_.resize(nchunks);
  // Materialize each chunk's (possibly ragged) shape.
  for (size_t ci = 0; ci < nchunks; ++ci) {
    Chunk& ch = chunks_[ci];
    ch.shape.resize(ndims);
    size_t rem = ci;
    size_t cells = 1;
    for (size_t i = 0; i < ndims; ++i) {
      size_t g = rem / grid_strides_[i];
      rem %= grid_strides_[i];
      size_t lo = g * chunk_shape_[i];
      size_t hi = lo + chunk_shape_[i];
      if (hi > shape_[i]) hi = shape_[i];
      ch.shape[i] = hi - lo;
    }
    ch.strides.assign(ndims, 1);
    for (size_t i = ndims; i-- > 0;) {
      ch.strides[i] = cells;
      cells *= ch.shape[i];
    }
    ch.cells.assign(cells, 0.0);
  }
}

Status ChunkedArray::CheckCoord(const std::vector<size_t>& coord) const {
  if (coord.size() != shape_.size())
    return Status::InvalidArgument("coordinate arity mismatch");
  for (size_t i = 0; i < coord.size(); ++i)
    if (coord[i] >= shape_[i])
      return Status::OutOfRange("coordinate out of range");
  return Status::OK();
}

std::vector<size_t> ChunkedArray::ChunkCoord(
    const std::vector<size_t>& coord) const {
  std::vector<size_t> c(coord.size());
  for (size_t i = 0; i < coord.size(); ++i) c[i] = coord[i] / chunk_shape_[i];
  return c;
}

size_t ChunkedArray::ChunkIndex(const std::vector<size_t>& ccoord) const {
  size_t idx = 0;
  for (size_t i = 0; i < ccoord.size(); ++i)
    idx += ccoord[i] * grid_strides_[i];
  return idx;
}

size_t ChunkedArray::InChunkOffset(const std::vector<size_t>& coord,
                                   const std::vector<size_t>& ccoord,
                                   size_t chunk) const {
  const Chunk& ch = chunks_[chunk];
  size_t off = 0;
  for (size_t i = 0; i < coord.size(); ++i)
    off += (coord[i] - ccoord[i] * chunk_shape_[i]) * ch.strides[i];
  return off;
}

Status ChunkedArray::Set(const std::vector<size_t>& coord, double v) {
  STATCUBE_RETURN_NOT_OK(CheckCoord(coord));
  auto cc = ChunkCoord(coord);
  size_t ci = ChunkIndex(cc);
  chunks_[ci].cells[InChunkOffset(coord, cc, ci)] = v;
  return Status::OK();
}

Result<double> ChunkedArray::Get(const std::vector<size_t>& coord) {
  STATCUBE_RETURN_NOT_OK(CheckCoord(coord));
  auto cc = ChunkCoord(coord);
  size_t ci = ChunkIndex(cc);
  counter_.ChargeBytes(chunks_[ci].cells.size() * sizeof(double));
  return chunks_[ci].cells[InChunkOffset(coord, cc, ci)];
}

Result<uint64_t> ChunkedArray::ChunksOverlapped(
    const std::vector<DimRange>& ranges) const {
  if (ranges.size() != shape_.size())
    return Status::InvalidArgument("range arity mismatch");
  uint64_t n = 1;
  for (size_t i = 0; i < ranges.size(); ++i) {
    if (ranges[i].lo > ranges[i].hi || ranges[i].hi > shape_[i])
      return Status::OutOfRange("range invalid");
    if (ranges[i].lo == ranges[i].hi) return 0;
    size_t first = ranges[i].lo / chunk_shape_[i];
    size_t last = (ranges[i].hi - 1) / chunk_shape_[i];
    n *= (last - first + 1);
  }
  return n;
}

Result<double> ChunkedArray::SumRange(const std::vector<DimRange>& ranges) {
  STATCUBE_ASSIGN_OR_RETURN(uint64_t overlapped, ChunksOverlapped(ranges));
  if (overlapped == 0) return 0.0;
  size_t ndims = shape_.size();

  // Iterate the overlapped chunk grid; read each chunk once and sum the
  // intersection of the query with the chunk.
  std::vector<size_t> cfirst(ndims), clast(ndims), ccur(ndims);
  for (size_t i = 0; i < ndims; ++i) {
    cfirst[i] = ranges[i].lo / chunk_shape_[i];
    clast[i] = (ranges[i].hi - 1) / chunk_shape_[i];
    ccur[i] = cfirst[i];
  }

  double sum = 0.0;
  while (true) {
    size_t ci = ChunkIndex(ccur);
    const Chunk& ch = chunks_[ci];
    counter_.ChargeBytes(ch.cells.size() * sizeof(double));  // full chunk read

    // Intersection of query and chunk, in in-chunk coordinates.
    std::vector<size_t> lo(ndims), hi(ndims), cur(ndims);
    for (size_t i = 0; i < ndims; ++i) {
      size_t base = ccur[i] * chunk_shape_[i];
      lo[i] = ranges[i].lo > base ? ranges[i].lo - base : 0;
      size_t h = ranges[i].hi - base;
      hi[i] = h > ch.shape[i] ? ch.shape[i] : h;
      cur[i] = lo[i];
    }
    while (true) {
      size_t off = 0;
      for (size_t i = 0; i < ndims; ++i) off += cur[i] * ch.strides[i];
      for (size_t k = lo[ndims - 1]; k < hi[ndims - 1]; ++k)
        sum += ch.cells[off - cur[ndims - 1] * ch.strides[ndims - 1] + k];
      size_t d = ndims - 1;
      bool done = true;
      while (d-- > 0) {
        if (++cur[d] < hi[d]) {
          done = false;
          break;
        }
        cur[d] = lo[d];
      }
      if (done) break;
    }

    // Advance chunk odometer.
    size_t d = ndims;
    bool done = true;
    while (d-- > 0) {
      if (++ccur[d] <= clast[d]) {
        done = false;
        break;
      }
      ccur[d] = cfirst[d];
    }
    if (done) break;
  }
  return sum;
}

size_t ChunkedArray::ByteSize() const {
  size_t b = 0;
  for (const auto& ch : chunks_) b += ch.cells.size() * sizeof(double);
  return b;
}

}  // namespace statcube
