// Header compression for sparse linearized arrays ([EOA81], paper §6.2,
// Figure 21).
//
// Nulls cluster in the linearized value sequence, so only the non-null
// values are stored, plus a run-length "header": the alternating counts of
// values and nulls, accumulated into a monotonically increasing sequence and
// indexed with a B+-tree. The tree supports both mappings in O(log n):
//   forward  — logical array position -> stored position (or "null");
//   inverse  — stored position -> logical array position.

#ifndef STATCUBE_MOLAP_HEADER_COMPRESSED_H_
#define STATCUBE_MOLAP_HEADER_COMPRESSED_H_

#include <cstdint>
#include <vector>

#include "statcube/common/block_counter.h"
#include "statcube/common/status.h"
#include "statcube/molap/dense_array.h"
#include "statcube/storage/btree.h"

namespace statcube {

/// A sparse linearized array stored as (non-null values, header B+-tree).
class HeaderCompressedArray {
 public:
  /// Compresses a dense cell sequence, treating `null_value` cells as nulls.
  HeaderCompressedArray(const std::vector<double>& cells,
                        double null_value = 0.0);

  /// Convenience: compress a DenseArray's cells.
  static HeaderCompressedArray FromDense(const DenseArray& array,
                                         double null_value = 0.0) {
    return HeaderCompressedArray(array.cells(), null_value);
  }

  /// Value at logical position `pos` (the null value for compressed-out
  /// cells). O(log #runs) via the header tree.
  Result<double> Get(uint64_t pos);

  /// Inverse mapping: the logical position of the i-th stored value.
  Result<uint64_t> LogicalPositionOf(uint64_t stored_index);

  /// Sum of logical positions [lo, hi) — reads only the overlapping stored
  /// runs.
  Result<double> SumPositions(uint64_t lo, uint64_t hi);

  uint64_t logical_size() const { return logical_size_; }
  uint64_t stored_count() const { return uint64_t(values_.size()); }
  double null_value() const { return null_value_; }

  /// Stored bytes: values + header entries.
  size_t ByteSize() const;

  /// Compression ratio versus the dense layout.
  double CompressionRatio() const {
    size_t dense = size_t(logical_size_) * sizeof(double);
    return ByteSize() == 0 ? 0.0 : double(dense) / double(ByteSize());
  }

  /// Number of non-null runs (header entries).
  size_t num_runs() const { return runs_; }

  BlockCounter& counter() { return counter_; }

 private:
  struct RunInfo {
    uint64_t logical_start;
    uint64_t stored_start;
    uint64_t length;
  };

  double null_value_;
  uint64_t logical_size_ = 0;
  size_t runs_ = 0;
  std::vector<double> values_;  // non-null values, in order
  // Forward header: logical_start -> run; FloorEntry(pos) finds the run.
  BPlusTree<uint64_t, RunInfo> forward_;
  // Inverse header: stored_start -> run.
  BPlusTree<uint64_t, RunInfo> inverse_;
  BlockCounter counter_;
};

}  // namespace statcube

#endif  // STATCUBE_MOLAP_HEADER_COMPRESSED_H_
