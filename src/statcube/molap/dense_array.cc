#include "statcube/molap/dense_array.h"

#include <cmath>

#include "statcube/common/vec_block.h"

namespace statcube {

bool DenseArray::IsIntegral(double v) { return std::trunc(v) == v; }

DenseArray::DenseArray(std::vector<size_t> shape) : shape_(std::move(shape)) {
  strides_.assign(shape_.size(), 1);
  size_t total = 1;
  for (size_t i = shape_.size(); i-- > 0;) {
    strides_[i] = total;
    total *= shape_[i];
  }
  cells_.assign(total, 0.0);
}

Result<size_t> DenseArray::Linearize(const std::vector<size_t>& coord) const {
  if (coord.size() != shape_.size())
    return Status::InvalidArgument("coordinate arity mismatch");
  size_t pos = 0;
  for (size_t i = 0; i < coord.size(); ++i) {
    if (coord[i] >= shape_[i])
      return Status::OutOfRange("coordinate " + std::to_string(coord[i]) +
                                " out of range for dimension " +
                                std::to_string(i));
    pos += coord[i] * strides_[i];
  }
  return pos;
}

std::vector<size_t> DenseArray::Delinearize(size_t pos) const {
  std::vector<size_t> coord(shape_.size());
  for (size_t i = 0; i < shape_.size(); ++i) {
    coord[i] = pos / strides_[i];
    pos %= strides_[i];
  }
  return coord;
}

Status DenseArray::Set(const std::vector<size_t>& coord, double v) {
  STATCUBE_ASSIGN_OR_RETURN(size_t pos, Linearize(coord));
  cells_[pos] = v;
  NoteWrite(v);
  return Status::OK();
}

Result<double> DenseArray::Get(const std::vector<size_t>& coord) const {
  STATCUBE_ASSIGN_OR_RETURN(size_t pos, Linearize(coord));
  return cells_[pos];
}

Result<double> DenseArray::SumRange(const std::vector<DimRange>& ranges) {
  if (ranges.size() != shape_.size())
    return Status::InvalidArgument("range arity mismatch");
  for (size_t i = 0; i < ranges.size(); ++i) {
    if (ranges[i].lo > ranges[i].hi || ranges[i].hi > shape_[i])
      return Status::OutOfRange("range invalid for dimension " +
                                std::to_string(i));
    if (ranges[i].lo == ranges[i].hi) return 0.0;  // empty slab
  }
  // Iterate over all combinations of the leading dims; the innermost
  // dimension contributes a contiguous segment each time.
  size_t ndims = shape_.size();
  std::vector<size_t> coord(ndims);
  for (size_t i = 0; i < ndims; ++i) coord[i] = ranges[i].lo;
  size_t inner_width = ranges[ndims - 1].width();

  // Exactness gate for reassociated (SIMD) segment sums: when every cell
  // ever written is integral and the whole selected region's sum stays
  // within 2^53, any association is exact, so block-summing each segment
  // and adding segment totals is bit-identical to the one running serial
  // sum. Otherwise keep the strictly ordered accumulation.
  size_t total_cells = 1;
  for (const DimRange& r : ranges) total_cells *= r.width();
  bool fast = vec::ReorderIsExact(all_integral_, max_abs_, total_cells);

  double sum = 0.0;
  while (true) {
    size_t base = 0;
    for (size_t i = 0; i < ndims; ++i) base += coord[i] * strides_[i];
    // One contiguous segment (charged as a sequential read).
    counter_.ChargeBytes(inner_width * sizeof(double));
    if (fast) {
      sum += vec::SumBlockFast(&cells_[base], inner_width);
    } else {
      for (size_t k = 0; k < inner_width; ++k) sum += cells_[base + k];
    }

    // Odometer over the leading dims.
    size_t d = ndims - 1;
    bool done = true;
    while (d-- > 0) {
      if (++coord[d] < ranges[d].hi) {
        done = false;
        break;
      }
      coord[d] = ranges[d].lo;
    }
    if (done) break;
  }
  return sum;
}

double DenseArray::Density(double null_value) const {
  if (cells_.empty()) return 0.0;
  size_t nonnull = 0;
  for (double c : cells_)
    if (c != null_value) ++nonnull;
  return double(nonnull) / double(cells_.size());
}

}  // namespace statcube
