// Extendible arrays for incrementally growing data cubes ([RZ86], paper
// §6.5, Figure 24): appends along any dimension allocate a new subarray
// segment instead of relinearizing the whole cube. An index over the
// expansion history routes each coordinate to its segment; a cell belongs to
// the expansion that made it addressable.
//
// The benchmark compares Expand (write only the new slab) against the
// rebuild strategy (reallocate and rewrite every cell), which is what a
// plain linearized array must do when a dimension grows.

#ifndef STATCUBE_MOLAP_EXTENDIBLE_ARRAY_H_
#define STATCUBE_MOLAP_EXTENDIBLE_ARRAY_H_

#include <cstdint>
#include <vector>

#include "statcube/common/block_counter.h"
#include "statcube/common/status.h"
#include "statcube/molap/dense_array.h"

namespace statcube {

/// A multidimensional array of doubles that grows along any dimension
/// without moving existing cells.
class ExtendibleArray {
 public:
  /// Starts with `initial_shape` (one initial segment).
  explicit ExtendibleArray(std::vector<size_t> initial_shape);

  size_t num_dims() const { return shape_.size(); }
  const std::vector<size_t>& shape() const { return shape_; }
  size_t num_cells() const;

  /// Grows dimension `dim` by `by` slices; existing data stays in place.
  /// Charges only the new segment's bytes (the incremental-append win).
  Status Expand(size_t dim, size_t by);

  Status Set(const std::vector<size_t>& coord, double v);
  Result<double> Get(const std::vector<size_t>& coord);

  /// Sum over a hyper-rectangle. Visits each expansion segment that
  /// intersects the range and charges the intersected bytes.
  Result<double> SumRange(const std::vector<DimRange>& ranges);

  /// Number of expansion segments (1 after construction).
  size_t num_segments() const { return segments_.size(); }

  size_t ByteSize() const;
  BlockCounter& counter() { return counter_; }

 private:
  // One expansion: dimension `dim` grew from `start` to `end`; all other
  // dimensions were bounded by `bounds` (shape at expansion time).
  struct Segment {
    size_t dim;
    size_t start, end;           // [start, end) along `dim`
    std::vector<size_t> bounds;  // shape at expansion time (with end at dim)
    std::vector<size_t> strides;
    std::vector<double> cells;
  };

  // Segment owning `coord`: the latest segment s with coord[s.dim] in
  // [s.start, s.end).
  Result<size_t> SegmentOf(const std::vector<size_t>& coord) const;
  size_t OffsetIn(const Segment& s, const std::vector<size_t>& coord) const;
  Status CheckCoord(const std::vector<size_t>& coord) const;

  std::vector<size_t> shape_;
  std::vector<Segment> segments_;
  BlockCounter counter_;
};

}  // namespace statcube

#endif  // STATCUBE_MOLAP_EXTENDIBLE_ARRAY_H_
