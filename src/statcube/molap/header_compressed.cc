#include "statcube/molap/header_compressed.h"

namespace statcube {

HeaderCompressedArray::HeaderCompressedArray(const std::vector<double>& cells,
                                             double null_value)
    : null_value_(null_value), logical_size_(cells.size()) {
  uint64_t i = 0;
  while (i < cells.size()) {
    if (cells[i] == null_value_) {
      ++i;
      continue;
    }
    // Start of a non-null run.
    RunInfo run{i, uint64_t(values_.size()), 0};
    while (i < cells.size() && cells[i] != null_value_) {
      values_.push_back(cells[i]);
      ++run.length;
      ++i;
    }
    forward_.Insert(run.logical_start, run);
    inverse_.Insert(run.stored_start, run);
    ++runs_;
  }
}

Result<double> HeaderCompressedArray::Get(uint64_t pos) {
  if (pos >= logical_size_) return Status::OutOfRange("position");
  // One header probe (a handful of tree blocks) ...
  counter_.ChargeBlocks(1);
  auto e = forward_.FloorEntry(pos);
  if (!e.valid()) return null_value_;
  const RunInfo& run = *e.value;
  if (pos >= run.logical_start + run.length) return null_value_;
  // ... plus the value block.
  counter_.ChargeBlocks(1);
  return values_[run.stored_start + (pos - run.logical_start)];
}

Result<uint64_t> HeaderCompressedArray::LogicalPositionOf(
    uint64_t stored_index) {
  if (stored_index >= values_.size())
    return Status::OutOfRange("stored index");
  counter_.ChargeBlocks(1);
  auto e = inverse_.FloorEntry(stored_index);
  if (!e.valid()) return Status::Internal("inverse header inconsistent");
  const RunInfo& run = *e.value;
  return run.logical_start + (stored_index - run.stored_start);
}

Result<double> HeaderCompressedArray::SumPositions(uint64_t lo, uint64_t hi) {
  if (lo > hi || hi > logical_size_) return Status::OutOfRange("range");
  if (lo == hi) return 0.0;
  double sum = 0.0;
  counter_.ChargeBlocks(1);  // header probe
  // Start from the run containing (or after) lo.
  auto e = forward_.FloorEntry(lo);
  if (!e.valid() || e.value->logical_start + e.value->length <= lo)
    e = forward_.LowerBound(lo);
  while (e.valid() && e.value->logical_start < hi) {
    const RunInfo& run = *e.value;
    uint64_t from = run.logical_start < lo ? lo : run.logical_start;
    uint64_t to = run.logical_start + run.length;
    if (to > hi) to = hi;
    if (from < to) {
      counter_.ChargeBytes((to - from) * sizeof(double));
      uint64_t s = run.stored_start + (from - run.logical_start);
      for (uint64_t k = 0; k < to - from; ++k) sum += values_[s + k];
    }
    e = forward_.LowerBound(run.logical_start + 1);
  }
  return sum;
}

size_t HeaderCompressedArray::ByteSize() const {
  // Values + one (start, stored, length) header entry per run. The two
  // trees index the same header; a disk layout stores it once.
  return values_.size() * sizeof(double) + runs_ * sizeof(RunInfo);
}

}  // namespace statcube
