// Dense multidimensional array with row-major linearization (paper §6.2,
// Figure 20) — the storage model of MOLAP products: store the distinct
// values of each dimension once, then only the cells, addressed by the
// "fairly simple well-known calculation" pos = sum_i coord_i * stride_i.
//
// Range aggregation charges the block counter one sequential byte range per
// contiguous innermost segment, which is what a disk-resident row-major
// array would read; the chunked array (Figure 23) improves exactly this.

#ifndef STATCUBE_MOLAP_DENSE_ARRAY_H_
#define STATCUBE_MOLAP_DENSE_ARRAY_H_

#include <cstdint>
#include <vector>

#include "statcube/common/block_counter.h"
#include "statcube/common/status.h"

namespace statcube {

/// A [lo, hi) slab per dimension.
struct DimRange {
  size_t lo = 0;
  size_t hi = 0;  ///< exclusive
  size_t width() const { return hi - lo; }
};

/// Row-major dense array of doubles.
class DenseArray {
 public:
  /// `shape[i]` = cardinality of dimension i. Product must fit memory.
  explicit DenseArray(std::vector<size_t> shape);

  size_t num_dims() const { return shape_.size(); }
  const std::vector<size_t>& shape() const { return shape_; }
  size_t num_cells() const { return cells_.size(); }

  /// Row-major position of a coordinate.
  Result<size_t> Linearize(const std::vector<size_t>& coord) const;

  /// Inverse of Linearize.
  std::vector<size_t> Delinearize(size_t pos) const;

  Status Set(const std::vector<size_t>& coord, double v);
  Result<double> Get(const std::vector<size_t>& coord) const;

  double GetLinear(size_t pos) const { return cells_[pos]; }
  void SetLinear(size_t pos, double v) { cells_[pos] = v; }

  /// Sum over the hyper-rectangle `ranges` (one DimRange per dimension).
  /// Charges one sequential read per contiguous innermost segment.
  Result<double> SumRange(const std::vector<DimRange>& ranges);

  /// Fraction of cells different from `null_value`.
  double Density(double null_value = 0.0) const;

  size_t ByteSize() const { return cells_.size() * sizeof(double); }

  BlockCounter& counter() { return counter_; }
  const std::vector<double>& cells() const { return cells_; }

 private:
  std::vector<size_t> shape_;
  std::vector<size_t> strides_;  // row-major
  std::vector<double> cells_;
  BlockCounter counter_;
};

}  // namespace statcube

#endif  // STATCUBE_MOLAP_DENSE_ARRAY_H_
