// Dense multidimensional array with row-major linearization (paper §6.2,
// Figure 20) — the storage model of MOLAP products: store the distinct
// values of each dimension once, then only the cells, addressed by the
// "fairly simple well-known calculation" pos = sum_i coord_i * stride_i.
//
// Range aggregation charges the block counter one sequential byte range per
// contiguous innermost segment, which is what a disk-resident row-major
// array would read; the chunked array (Figure 23) improves exactly this.

#ifndef STATCUBE_MOLAP_DENSE_ARRAY_H_
#define STATCUBE_MOLAP_DENSE_ARRAY_H_

#include <cstdint>
#include <vector>

#include "statcube/common/block_counter.h"
#include "statcube/common/status.h"

namespace statcube {

/// A [lo, hi) slab per dimension.
struct DimRange {
  size_t lo = 0;
  size_t hi = 0;  ///< exclusive
  size_t width() const { return hi - lo; }
};

/// Row-major dense array of doubles.
class DenseArray {
 public:
  /// `shape[i]` = cardinality of dimension i. Product must fit memory.
  explicit DenseArray(std::vector<size_t> shape);

  size_t num_dims() const { return shape_.size(); }
  const std::vector<size_t>& shape() const { return shape_; }
  size_t num_cells() const { return cells_.size(); }

  /// Row-major position of a coordinate.
  Result<size_t> Linearize(const std::vector<size_t>& coord) const;

  /// Inverse of Linearize.
  std::vector<size_t> Delinearize(size_t pos) const;

  Status Set(const std::vector<size_t>& coord, double v);
  Result<double> Get(const std::vector<size_t>& coord) const;

  double GetLinear(size_t pos) const { return cells_[pos]; }
  void SetLinear(size_t pos, double v) {
    cells_[pos] = v;
    NoteWrite(v);
  }

  /// Sum over the hyper-rectangle `ranges` (one DimRange per dimension).
  /// Charges one sequential read per contiguous innermost segment.
  Result<double> SumRange(const std::vector<DimRange>& ranges);

  /// Fraction of cells different from `null_value`.
  double Density(double null_value = 0.0) const;

  size_t ByteSize() const { return cells_.size() * sizeof(double); }

  BlockCounter& counter() { return counter_; }
  const std::vector<double>& cells() const { return cells_; }

  /// Conservative exactness evidence for reassociated (SIMD) summation
  /// (common/vec_block.h): true while every value ever written was an integer
  /// (the initial cells are 0.0). Overwrites never clear history, so this
  /// may under-claim but never over-claims.
  bool all_integral() const { return all_integral_; }
  /// Upper bound on |cell| across every value ever written (overwrites keep
  /// the old bound — an over-estimate is still a sound gate input).
  double max_abs() const { return max_abs_; }

 private:
  // Maintains the exactness metadata on every write path. NaN is not
  // integral and its magnitude comparison is always false, so it pins
  // all_integral_ off; infinities blow the bound. Either disables the
  // reassociated fast path.
  void NoteWrite(double v) {
    double a = v < 0 ? -v : v;
    if (a > max_abs_) max_abs_ = a;
    if (all_integral_ && !IsIntegral(v)) all_integral_ = false;
  }
  static bool IsIntegral(double v);

  std::vector<size_t> shape_;
  std::vector<size_t> strides_;  // row-major
  std::vector<double> cells_;
  bool all_integral_ = true;
  double max_abs_ = 0.0;
  BlockCounter counter_;
};

}  // namespace statcube

#endif  // STATCUBE_MOLAP_DENSE_ARRAY_H_
