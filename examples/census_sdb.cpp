// Census example (the paper's archetypal SDB application, §3.1): geographic
// roll-ups with summarizability checking, schema-graph export, 2-D rendering
// with marginals, classification matching across incompatible age groupings,
// and the §7 privacy story — a tracker attack on the micro-data and the
// defenses that blunt it.
//
// Run: ./build/examples/census_sdb

#include <cmath>
#include <cstdio>

#include "statcube/core/schema_graph.h"
#include "statcube/core/summarizability.h"
#include "statcube/core/table_render.h"
#include "statcube/matching/matching.h"
#include "statcube/olap/operators.h"
#include "statcube/privacy/protected_db.h"
#include "statcube/privacy/tracker.h"
#include "statcube/workload/census.h"

using namespace statcube;

int main() {
  CensusOptions opt;
  opt.num_states = 3;
  opt.counties_per_state = 4;
  opt.num_age_groups = 4;
  auto obj = MakeCensusWorkload(opt);
  if (!obj.ok()) {
    fprintf(stderr, "%s\n", obj.status().ToString().c_str());
    return 1;
  }
  printf("%s\n", obj->DescribeStructure().c_str());

  // --- Schema graph (Figures 4/5) -----------------------------------------
  SchemaGraph graph = SchemaGraph::FromObject(*obj);
  (void)graph.GroupDimensions("socio_economic", {"race", "sex", "age_group"});
  printf("Schema graph (DOT, socio-economic X-node grouping):\n%s\n",
         graph.ToDot().c_str());

  // --- Summarizability (§3.3.2) -------------------------------------------
  auto ok_rollup =
      CheckRollup(*obj, "county", "geo", 0, 1, "population", AggFn::kSum);
  printf("Roll up counties -> states for population: %s\n",
         ok_rollup.ok() && ok_rollup->summarizable ? "summarizable"
                                                   : "NOT summarizable");
  auto bad = SProject(*obj, "year");
  printf("Sum population over years: %s\n\n",
         bad.status().ToString().c_str());

  // --- State-level view with marginals (Figure 9) ------------------------
  auto by_state = SAggregate(*obj, "county", "geo", 1);
  if (by_state.ok()) {
    auto slice91 = SliceAt(*by_state, "year", Value(1990));
    if (slice91.ok()) {
      Render2DOptions ropt;
      ropt.row_dims = {"state", "sex"};
      ropt.col_dims = {"age_group"};
      ropt.measure = "population";
      ropt.marginals = true;
      auto table = Render2D(*slice91, ropt);
      if (table.ok()) printf("%s\n", table->c_str());
    }
  }

  // --- Classification matching (Figure 17) -------------------------------
  // Two states report age groups with different boundaries; align and sum.
  std::vector<IntervalBucket> state_a = {
      {0, 5, 120000}, {5, 10, 110000}, {10, 20, 190000}};
  std::vector<IntervalBucket> state_b = {
      {0, 1, 21000}, {1, 10, 240000}, {10, 20, 180000}};
  auto merged = MergeIntervalSources(state_a, state_b);
  if (merged.ok()) {
    printf("Aligned age-group classification (uniform interpolation):\n");
    for (const auto& b : *merged)
      printf("  [%2.0f, %2.0f): %.0f\n", b.lo, b.hi, b.value);
    printf("\n");
  }

  // Disaggregation by proxy (§5.3): county populations from state totals
  // using county areas.
  std::map<Value, double> state_pop = {{Value("st0"), 900000.0}};
  std::vector<ProxyChild> proxies = {{Value("st0_co0"), Value("st0"), 100},
                                     {Value("st0_co1"), Value("st0"), 300},
                                     {Value("st0_co2"), Value("st0"), 500}};
  auto est = DisaggregateByProxy(state_pop, proxies);
  if (est.ok()) {
    printf("Disaggregation by proxy (area -> population estimate):\n");
    for (const auto& [county, pop] : *est)
      printf("  %s: %.0f\n", county.ToString().c_str(), pop);
    printf("\n");
  }

  // --- Privacy (§7) --------------------------------------------------------
  auto micro = MakeCensusMicroData(400, opt);
  if (!micro.ok()) return 1;
  // Make one individual unique: the only person in age group "age99".
  micro->mutable_rows()[0][4] = Value("age99");
  micro->mutable_rows()[0][6] = Value(987654);

  ProtectedDatabase db(*micro, {.min_query_set_size = 8});
  auto is_target = expr::ColumnEq(micro->schema(), "age_group", Value("age99"));
  auto direct = db.Query(AggFn::kSum, "income", *is_target);
  printf("Direct query for the unique individual's income: %s\n",
         direct.status().ToString().c_str());

  auto tracker = FindGeneralTracker(db, micro->schema(), {"sex"},
                                    {{Value("M"), Value("F")}});
  if (tracker.ok()) {
    TrackerAttack attack(&db, *tracker);
    auto salary = attack.IndividualValue("income", *is_target);
    if (salary.ok()) {
      printf("Tracker attack (tracker: %s) recovered it anyway: %.0f using "
             "%llu legal queries\n",
             tracker->description.c_str(), *salary,
             (unsigned long long)attack.queries_used());
    }
  }

  // Output perturbation blunts the attack.
  ProtectedDatabase noisy(*micro, {.min_query_set_size = 8,
                                   .output_noise_stddev = 5000.0});
  auto male = expr::ColumnEq(micro->schema(), "sex", Value("M"));
  GeneralTracker t2{*male, expr::Not(*male), "sex = M"};
  TrackerAttack attack2(&noisy, t2);
  auto noisy_salary = attack2.Sum("income", *is_target);
  if (noisy_salary.ok()) {
    printf("Same attack under output perturbation: %.0f (error %.0f)\n",
           *noisy_salary, std::fabs(*noisy_salary - 987654.0));
  }
  return 0;
}
