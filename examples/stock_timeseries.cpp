// Stock-market example (paper §3.2(ii)): a weekday time series with a
// level (stock-type) measure, weekly roll-ups that must average rather than
// sum, multiple classifications over the stock dimension, and the holistic
// statistics of §5.6 (median, percentiles, trimmed mean) that the paper
// assigns to statistical packages.
//
// Run: ./build/examples/stock_timeseries

#include <cstdio>

#include "statcube/core/summarizability.h"
#include "statcube/olap/operators.h"
#include "statcube/olap/statistics.h"
#include "statcube/workload/stocks.h"

using namespace statcube;

int main() {
  auto obj = MakeStockWorkload({.num_stocks = 8, .num_weeks = 6});
  if (!obj.ok()) {
    fprintf(stderr, "%s\n", obj.status().ToString().c_str());
    return 1;
  }
  printf("%s\n", obj->DescribeStructure().c_str());

  // --- Measure-type discipline --------------------------------------------
  auto sum_close = CheckProjectOut(*obj, "day", "close", AggFn::kSum);
  if (sum_close.ok()) {
    printf("Summing closing prices over days: %s\n",
           sum_close->ToStatus().ToString().c_str());
  }
  auto avg_close = CheckProjectOut(*obj, "day", "close", AggFn::kAvg);
  if (avg_close.ok()) {
    printf("Averaging closing prices over days: %s\n\n",
           avg_close->ToStatus().ToString().c_str());
  }

  // --- Weekly averages (roll-up along the time hierarchy) -----------------
  auto weekly = SAggregate(*obj, "day", "calendar", 1,
                           {.enforce_summarizability = false});
  if (weekly.ok()) {
    auto one = SSelect(*weekly, "stock", {Value("TKR0")});
    if (one.ok()) {
      printf("TKR0 weekly average close / total volume:\n%s\n",
             one->data().ToString(8).c_str());
    }
  }

  // --- Multiple classifications over the same dimension -------------------
  auto by_industry = SAggregate(*obj, "stock", "by_industry", 1,
                                {.enforce_summarizability = false});
  if (by_industry.ok()) {
    auto compact = SProject(*by_industry, "day",
                            {.enforce_summarizability = false});
    if (compact.ok()) {
      printf("Average close / total volume by industry:\n%s\n",
             compact->data().ToString(8).c_str());
    }
  }
  auto by_rating = SAggregate(*obj, "stock", "by_rating", 1,
                              {.enforce_summarizability = false});
  if (by_rating.ok()) {
    printf("The SAME stock dimension also classifies by rating: %zu cells\n\n",
           by_rating->data().num_rows());
  }

  // --- Holistic statistics (§5.6) ------------------------------------------
  auto closes = obj->data().Column("close");
  if (closes.ok()) {
    std::vector<double> values;
    for (const Value& v : *closes) values.push_back(v.AsDouble());
    auto med = Median(values);
    auto p95 = Percentile(values, 95);
    auto trimmed = TrimmedMean(values, 0.1);
    auto sd = StdDev(values);
    if (med.ok() && p95.ok() && trimmed.ok() && sd.ok()) {
      printf("Close price distribution over all stocks and days:\n");
      printf("  median        %.2f\n", *med);
      printf("  95th pct      %.2f\n", *p95);
      printf("  trimmed mean  %.2f (10%% trim)\n", *trimmed);
      printf("  stddev        %.2f\n", *sd);
    }
  }
  return 0;
}
