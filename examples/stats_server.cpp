// Always-on telemetry demo: replays a mixed OLAP workload in a loop against
// the retail statistical object while the embedded stats server serves the
// numbers. Point a Prometheus scraper (or curl) at it:
//
//   ./build/examples/stats_server --port=8080 &
//   curl localhost:8080/metrics     # Prometheus text, latency histograms
//   curl localhost:8080/varz        # JSON metrics + uptime
//   curl localhost:8080/profiles    # last N query profiles (flight recorder)
//   curl localhost:8080/statusz     # HTML: uptime, QPS/p99 sparklines
//   curl localhost:8080/tracez      # recent trace trees (?format=json)
//   curl localhost:8080/healthz
//
// The workload rotates through the paper's query shapes (rollup by hierarchy
// level, filtered group-by, CUBE) across all three engines, so the §6.6
// ROLAP-vs-MOLAP cost split is visible live in statcube_backend_* counters.
//
// Flags:
//   --port=P           listen port (default 8080; 0 = kernel-assigned)
//   --iterations=N     stop after N workload rounds (default 0 = forever)
//   --delay-ms=D       sleep between queries (default 50)
//   --slow-query-us=T  slow-query log threshold (default 20000)
//   --flight-capacity=N  flight-recorder ring size (default 128, max 65536)
//   --statusz-sample-ms=D  /statusz sampling interval (default 1000)
//   --cache=M          result-cache mode off|on|derive (default off);
//                      with the cache on, round 1 is cold and every later
//                      round hits — statcube_cache_* in /metrics shows the
//                      hit rate live (the EXPERIMENTS.md P2 recipe)
//   --rows=N           retail workload size in rows (default 20000; the CI
//                      cancellation smoke raises it so queries stay
//                      in-flight long enough to show up on /queryz)
//   --default-deadline-ms=N  per-query execution budget (default 0 = none);
//                      expired queries return DeadlineExceeded and are
//                      recorded with outcome "deadline_exceeded"
//   --max-query-ms=N   stuck-query watchdog hard limit (default 0 = log
//                      only): queries in flight past it are auto-cancelled
//                      (statcube.query.watchdog_cancelled counts them)
//   --quiet            suppress the per-round progress line
//   --no-workload      skip the background replay loop and only serve —
//                      what tools/loadgen wants, so the front door's numbers
//                      are not polluted by the demo workload
//
// Query front door (serve/front_door.h) — POST /query is always on:
//   --max-active=N         queries executing at once (default 4)
//   --max-queue=N          waiters beyond that before 503-shedding (def. 16)
//   --max-wait-ms=N        longest queued wait before shedding (def. 2000)
//   --tenant-max-concurrent=N  per-tenant in-flight cap (default 16)
//   --tenant-qps=Q         per-tenant request rate (default 0 = unlimited)
//   --tenant-burst=B       token-bucket capacity (default max(1, qps))
//   --tenant-bytes-per-sec=N  per-tenant response-byte budget (default 0)
//   --http-workers=N       connection-handling threads (default 4); raise
//                          for load tests so shedding happens at the
//                          admission queue, not the connection queue
//   --http-queue=N         accepted-but-unserviced connection cap (def. 64)
//
//   curl -s localhost:8080/query -d '{"query":"SELECT sum(amount) BY store",
//     "engine":"molap","tenant":"demo"}'
//
// Per-tenant counters land on /statusz (tenants section) and 429s carry a
// Retry-After header computed from the refused bucket's refill rate.
//
// The query lifecycle control plane is live here too: /queryz lists the
// in-flight query with its elapsed wall/CPU time, and
// POST /queryz/cancel?id=N stops it mid-morsel (the profile shows outcome
// "cancelled"). A QueryWatchdog thread sweeps the registry once a second,
// logging a structured stuck_query line for anything slower than 10 s.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "statcube/obs/flight_recorder.h"
#include "statcube/obs/http_server.h"
#include "statcube/obs/log.h"
#include "statcube/obs/metrics.h"
#include "statcube/obs/query_registry.h"
#include "statcube/obs/timeseries_ring.h"
#include "statcube/query/parser.h"
#include "statcube/serve/front_door.h"
#include "statcube/workload/retail.h"

using namespace statcube;

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

struct WorkloadQuery {
  const char* text;
  QueryEngine engine;
};

// The replayed mix: every engine answers the same backend-expressible
// queries; rollups and CUBE exercise the relational path.
const WorkloadQuery kWorkload[] = {
    {"SELECT sum(amount) BY store", QueryEngine::kMolap},
    {"SELECT sum(amount) BY store", QueryEngine::kRolap},
    {"SELECT sum(amount) BY store", QueryEngine::kRolapBitmap},
    {"SELECT sum(amount) BY city", QueryEngine::kRelational},
    {"SELECT sum(qty), avg(amount) BY category", QueryEngine::kRelational},
    {"SELECT sum(amount) BY month WHERE city = 'city1'",
     QueryEngine::kRelational},
    {"SELECT sum(amount) BY product WHERE store = 'store2'",
     QueryEngine::kRolap},
    {"SELECT sum(amount) BY CUBE(city, month)", QueryEngine::kRelational},
    {"SELECT count() WHERE price_range = 'premium'",
     QueryEngine::kRelational},
};

}  // namespace

int main(int argc, char** argv) {
  int port = 8080;
  long iterations = 0;
  long delay_ms = 50;
  long slow_query_us = 20000;
  long flight_capacity = 0;  // 0 = keep the default
  long statusz_sample_ms = 1000;
  long rows = 20000;
  long default_deadline_ms = 0;
  long max_query_ms = 0;
  bool quiet = false;
  bool no_workload = false;
  // HTTP connection-layer sizing. The defaults fit the demo workload; a
  // load-test front door wants enough workers that shedding happens at the
  // admission queue (tenant-attributed) rather than the connection queue.
  int http_workers = 4;
  int http_queue = 64;
  cache::Mode cache_mode = cache::Mode::kOff;
  serve::FrontDoorOptions fdopt;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--port=", 0) == 0) {
      port = atoi(arg.c_str() + strlen("--port="));
    } else if (arg.rfind("--iterations=", 0) == 0) {
      iterations = atol(arg.c_str() + strlen("--iterations="));
    } else if (arg.rfind("--delay-ms=", 0) == 0) {
      delay_ms = atol(arg.c_str() + strlen("--delay-ms="));
    } else if (arg.rfind("--slow-query-us=", 0) == 0) {
      slow_query_us = atol(arg.c_str() + strlen("--slow-query-us="));
    } else if (arg.rfind("--flight-capacity=", 0) == 0) {
      flight_capacity = atol(arg.c_str() + strlen("--flight-capacity="));
      if (flight_capacity < 1 ||
          size_t(flight_capacity) > obs::FlightRecorder::kMaxCapacity) {
        fprintf(stderr, "--flight-capacity must be in [1, %zu]\n",
                obs::FlightRecorder::kMaxCapacity);
        return 1;
      }
    } else if (arg.rfind("--statusz-sample-ms=", 0) == 0) {
      statusz_sample_ms = atol(arg.c_str() + strlen("--statusz-sample-ms="));
      if (statusz_sample_ms < 10) {
        fprintf(stderr, "--statusz-sample-ms must be >= 10\n");
        return 1;
      }
    } else if (arg.rfind("--cache=", 0) == 0) {
      auto mode = cache::ModeFromName(arg.substr(strlen("--cache=")));
      if (!mode.ok()) {
        fprintf(stderr, "%s\n", mode.status().ToString().c_str());
        return 1;
      }
      cache_mode = *mode;
    } else if (arg.rfind("--rows=", 0) == 0) {
      rows = atol(arg.c_str() + strlen("--rows="));
      if (rows < 1) {
        fprintf(stderr, "--rows must be >= 1\n");
        return 1;
      }
    } else if (arg.rfind("--default-deadline-ms=", 0) == 0) {
      default_deadline_ms =
          atol(arg.c_str() + strlen("--default-deadline-ms="));
      if (default_deadline_ms < 0) {
        fprintf(stderr, "--default-deadline-ms must be >= 0\n");
        return 1;
      }
    } else if (arg.rfind("--max-query-ms=", 0) == 0) {
      max_query_ms = atol(arg.c_str() + strlen("--max-query-ms="));
      if (max_query_ms < 0) {
        fprintf(stderr, "--max-query-ms must be >= 0\n");
        return 1;
      }
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--no-workload") {
      no_workload = true;
    } else if (arg.rfind("--max-active=", 0) == 0) {
      fdopt.queue.max_active = atoi(arg.c_str() + strlen("--max-active="));
      if (fdopt.queue.max_active < 1) {
        fprintf(stderr, "--max-active must be >= 1\n");
        return 1;
      }
    } else if (arg.rfind("--max-queue=", 0) == 0) {
      fdopt.queue.max_queued = atoi(arg.c_str() + strlen("--max-queue="));
      if (fdopt.queue.max_queued < 0) {
        fprintf(stderr, "--max-queue must be >= 0\n");
        return 1;
      }
    } else if (arg.rfind("--max-wait-ms=", 0) == 0) {
      fdopt.queue.max_wait_ms = atoi(arg.c_str() + strlen("--max-wait-ms="));
      if (fdopt.queue.max_wait_ms < 1) {
        fprintf(stderr, "--max-wait-ms must be >= 1\n");
        return 1;
      }
    } else if (arg.rfind("--tenant-max-concurrent=", 0) == 0) {
      fdopt.default_quota.max_concurrent =
          atoi(arg.c_str() + strlen("--tenant-max-concurrent="));
      if (fdopt.default_quota.max_concurrent < 0) {
        fprintf(stderr, "--tenant-max-concurrent must be >= 0\n");
        return 1;
      }
    } else if (arg.rfind("--tenant-qps=", 0) == 0) {
      fdopt.default_quota.rate_qps =
          atof(arg.c_str() + strlen("--tenant-qps="));
      if (fdopt.default_quota.rate_qps < 0) {
        fprintf(stderr, "--tenant-qps must be >= 0\n");
        return 1;
      }
    } else if (arg.rfind("--tenant-burst=", 0) == 0) {
      fdopt.default_quota.burst =
          atof(arg.c_str() + strlen("--tenant-burst="));
      if (fdopt.default_quota.burst < 0) {
        fprintf(stderr, "--tenant-burst must be >= 0\n");
        return 1;
      }
    } else if (arg.rfind("--http-workers=", 0) == 0) {
      http_workers = atoi(arg.c_str() + strlen("--http-workers="));
      if (http_workers < 1) {
        fprintf(stderr, "--http-workers must be >= 1\n");
        return 1;
      }
    } else if (arg.rfind("--http-queue=", 0) == 0) {
      http_queue = atoi(arg.c_str() + strlen("--http-queue="));
      if (http_queue < 1) {
        fprintf(stderr, "--http-queue must be >= 1\n");
        return 1;
      }
    } else if (arg.rfind("--tenant-bytes-per-sec=", 0) == 0) {
      long v = atol(arg.c_str() + strlen("--tenant-bytes-per-sec="));
      if (v < 0) {
        fprintf(stderr, "--tenant-bytes-per-sec must be >= 0\n");
        return 1;
      }
      fdopt.default_quota.bytes_per_sec = uint64_t(v);
    } else {
      fprintf(stderr,
              "usage: stats_server [--port=P] [--iterations=N] "
              "[--delay-ms=D] [--slow-query-us=T] [--flight-capacity=N] "
              "[--statusz-sample-ms=D] [--cache=off|on|derive] [--rows=N] "
              "[--default-deadline-ms=N] [--max-query-ms=N] [--quiet] "
              "[--no-workload] [--max-active=N] [--max-queue=N] "
              "[--max-wait-ms=N] [--tenant-max-concurrent=N] "
              "[--tenant-qps=Q] [--tenant-burst=B] "
              "[--tenant-bytes-per-sec=N] [--http-workers=N] "
              "[--http-queue=N]\n");
      return arg == "--help" || arg == "-h" ? 0 : 1;
    }
  }

  RetailOptions ropt;
  ropt.num_products = 24;
  ropt.num_stores = 8;
  ropt.num_cities = 4;
  ropt.num_days = 30;
  ropt.num_rows = size_t(rows);
  auto data = MakeRetailWorkload(ropt);
  if (!data.ok()) {
    fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }

  obs::SetEnabled(true);
  obs::FlightRecorder::Global().SetSlowQueryThresholdUs(
      uint64_t(slow_query_us < 0 ? 0 : slow_query_us));
  if (flight_capacity > 0 &&
      !obs::FlightRecorder::Global().SetCapacity(size_t(flight_capacity))) {
    fprintf(stderr, "--flight-capacity=%ld rejected\n", flight_capacity);
    return 1;
  }

  obs::MetricSamplerOptions mopt;
  mopt.interval_ms = int(statusz_sample_ms);
  obs::MetricSampler sampler(mopt);
  sampler.AddDefaultStatuszSeries();
  sampler.Start();

  obs::QueryWatchdogOptions wopt;
  wopt.max_query_us = uint64_t(max_query_ms) * 1000;
  obs::QueryWatchdog watchdog(wopt);
  watchdog.Start();

  obs::StatsServerOptions sopt;
  sopt.port = uint16_t(port);
  sopt.sampler = &sampler;
  sopt.num_workers = http_workers;
  sopt.max_queued = http_queue;
  obs::StatsServer server(sopt);

  // The query front door: POST /query with per-tenant admission control.
  // Client deadlines default to the server-wide --default-deadline-ms and
  // the demo cache mode, so curl without options behaves like the workload.
  fdopt.default_cache = cache_mode;
  fdopt.default_deadline_ms = uint64_t(default_deadline_ms);
  serve::QueryFrontDoor front_door(data->object, fdopt);
  front_door.Register(server);

  auto started = server.Start();
  if (!started.ok()) {
    fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }
  printf("serving on http://localhost:%u  (/metrics /varz /profiles "
         "/statusz /tracez /queryz /healthz; POST /query); Ctrl-C stops\n",
         unsigned(server.port()));
  fflush(stdout);

  signal(SIGINT, HandleSignal);
  signal(SIGTERM, HandleSignal);

  long round = 0;
  uint64_t queries = 0, errors = 0, stopped = 0;
  while (no_workload && !g_stop.load()) {
    // Serve-only mode: the front door is the sole query source. Keep the
    // process alive (and the sampler ticking) until a signal arrives, or
    // until --iterations rounds' worth of delay in serve-only smoke tests.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (iterations > 0 && ++round >= iterations) break;
  }
  while (!no_workload && !g_stop.load() &&
         (iterations == 0 || round < iterations)) {
    for (const WorkloadQuery& wq : kWorkload) {
      if (g_stop.load()) break;
      QueryOptions qopt;
      qopt.engine = wq.engine;
      qopt.cache = cache_mode;
      qopt.deadline_us = uint64_t(default_deadline_ms) * 1000;
      auto r = QueryProfiled(data->object, wq.text, qopt);
      // Cancelled / expired queries are the control plane doing its job
      // (the CI smoke cancels one on purpose), not workload errors.
      if (r.ok()) {
        ++queries;
      } else if (r.status().code() == StatusCode::kCancelled ||
                 r.status().code() == StatusCode::kDeadlineExceeded) {
        ++stopped;
      } else {
        ++errors;
      }
      if (delay_ms > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    }
    ++round;
    if (!quiet) {
      printf("round %ld: %llu queries, %llu stopped, %llu errors, "
             "%llu profiles retained\n",
             round, (unsigned long long)queries, (unsigned long long)stopped,
             (unsigned long long)errors,
             (unsigned long long)obs::FlightRecorder::Global()
                 .Snapshot()
                 .size());
      fflush(stdout);
    }
  }

  watchdog.Stop();
  server.Stop();
  printf("done: %llu queries, %llu stopped, %llu errors, "
         "%llu http requests served\n",
         (unsigned long long)queries, (unsigned long long)stopped,
         (unsigned long long)errors,
         (unsigned long long)server.requests_served());
  return errors == 0 ? 0 : 1;
}
