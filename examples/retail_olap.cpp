// Retail OLAP example (the paper's archetypal OLAP application, §2.2/§3.2):
// the same sales data as a star schema (ROLAP), a dense array (MOLAP), and a
// statistical object — exercising the CUBE operator with ALL rows, view
// materialization with greedy selection, and the cross-checks that all
// representations answer identically.
//
// Run: ./build/examples/retail_olap

#include <cstdio>

#include "statcube/materialize/greedy.h"
#include "statcube/materialize/lattice.h"
#include "statcube/materialize/view_store.h"
#include "statcube/olap/molap_cube.h"
#include "statcube/olap/operators.h"
#include "statcube/relational/cube_operator.h"
#include "statcube/workload/retail.h"

using namespace statcube;

int main() {
  RetailOptions opt;
  opt.num_products = 12;
  opt.num_stores = 6;
  opt.num_cities = 3;
  opt.num_days = 30;
  opt.num_rows = 3000;
  auto data = MakeRetailWorkload(opt);
  if (!data.ok()) {
    fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  printf("%s\n", data->object.DescribeStructure().c_str());

  // --- ROLAP: star-schema query (Figure 11) -------------------------------
  auto by_city =
      data->star.Aggregate({"city"}, {{AggFn::kSum, "amount", "revenue"}});
  if (by_city.ok()) {
    printf("ROLAP star-schema query — revenue by city:\n%s\n",
           by_city->ToString().c_str());
  }

  // --- MOLAP: the same answer from the dense array ------------------------
  auto cube = MolapCube::Build(data->object, "amount");
  if (cube.ok()) {
    printf("MOLAP cube: %zu dims, %zu cells, density %.2f%%\n",
           cube->num_dims(), cube->array().num_cells(),
           100.0 * cube->density());
    auto s = cube->SumWhere({{"store", Value("city0/s#0")}});
    if (s.ok()) printf("  revenue at city0/s#0 (array slab sum): %.2f\n\n", *s);
  }

  // --- CUBE operator (Figure 15) -------------------------------------------
  auto rolled = SAggregate(data->object, "store", "by_city", 1);
  if (rolled.ok()) {
    auto cube_table = CubeBy(rolled->data(), {"city"},
                             {{AggFn::kSum, "amount", "revenue"}});
    if (cube_table.ok()) {
      printf("GROUP BY CUBE(city) — note the ALL row (grand total):\n%s\n",
             cube_table->ToString(8).c_str());
    }
  }

  // --- View materialization (Figure 22) ------------------------------------
  auto lattice =
      Lattice::FromTable(data->flat, {"product", "store", "day"});
  if (lattice.ok()) {
    printf("Materialization lattice (exact view sizes):\n");
    for (uint32_t m = 0; m < lattice->num_views(); ++m)
      printf("  %-28s %8llu rows\n", lattice->ViewName(m).c_str(),
             (unsigned long long)lattice->size(m));
    ViewSelection sel = GreedySelect(*lattice, 3);
    printf("Greedy picks (k=3):");
    for (uint32_t v : sel.views) printf(" %s", lattice->ViewName(v).c_str());
    printf("\n  total query cost %llu -> %llu rows (benefit %llu)\n\n",
           (unsigned long long)lattice->TotalCost({}),
           (unsigned long long)sel.total_cost,
           (unsigned long long)sel.benefit);

    // Use the selection: queries now scan the small views.
    auto store = MaterializedCubeStore::Create(
        data->flat, {"product", "store", "day"},
        {{AggFn::kSum, "qty", "qty"}, {AggFn::kSum, "amount", "revenue"}});
    if (store.ok()) {
      for (uint32_t v : sel.views) (void)store->Materialize(v);
      auto q = store->Query(0b001);  // by product
      if (q.ok()) {
        printf("Query 'by product' scanned %llu rows (base has %zu)\n\n",
               (unsigned long long)store->last_rows_scanned(),
               data->flat.num_rows());
      }
    }
  }

  // --- Roll-up through the calendar, then drill down -----------------------
  auto monthly = SAggregate(data->object, "day", "calendar", 1);
  if (monthly.ok()) {
    auto city_month = SAggregate(*monthly, "store", "by_city", 1,
                                 {.enforce_summarizability = false});
    if (city_month.ok()) {
      auto view = SProject(*city_month, "product",
                           {.enforce_summarizability = false});
      if (view.ok()) {
        printf("Monthly revenue by city (rolled up twice):\n%s\n",
               view->data().ToString(12).c_str());
      }
    }
  }
  return 0;
}
