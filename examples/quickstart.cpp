// Quickstart: build a statistical object (the paper's Figure 1 dataset),
// inspect its structure, render it as a 2-D statistical table, and run the
// S-operators / OLAP operators on it — ending with the automatic-aggregation
// query of Figure 13.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart

#include <cstdio>

#include "statcube/core/statistical_object.h"
#include "statcube/core/table_render.h"
#include "statcube/olap/auto_aggregate.h"
#include "statcube/olap/operators.h"

using namespace statcube;

int main() {
  // --- 1. Declare the statistical object ---------------------------------
  // Summary measure: employment; dimensions: sex, year, profession;
  // classification hierarchy: professional class --> profession.
  StatisticalObject obj("employment_in_california");
  (void)obj.AddDimension(Dimension("sex"));
  (void)obj.AddDimension(Dimension("year", DimensionKind::kTemporal));

  Dimension prof("profession");
  ClassificationHierarchy h("by_class", {"profession", "professional_class"});
  (void)h.Link(0, Value("chemical engineer"), Value("engineer"));
  (void)h.Link(0, Value("civil engineer"), Value("engineer"));
  (void)h.Link(0, Value("junior secretary"), Value("secretary"));
  (void)h.Link(0, Value("executive secretary"), Value("secretary"));
  (void)h.Link(0, Value("elementary teacher"), Value("teacher"));
  (void)h.Link(0, Value("high school teacher"), Value("teacher"));
  h.DeclareComplete(0, "employment");  // professions exhaust each class
  prof.AddHierarchy(h);
  (void)obj.AddDimension(prof);

  (void)obj.AddMeasure(
      {"employment", "", MeasureType::kStock, AggFn::kSum, ""});

  // --- 2. Load cells (the numbers of Figure 1, abbreviated) --------------
  struct CellSpec {
    const char* sex;
    int year;
    const char* prof;
    int employment;
  };
  const CellSpec cells[] = {
      {"M", 1991, "chemical engineer", 197700},
      {"M", 1991, "civil engineer", 241100},
      {"M", 1991, "junior secretary", 534300},
      {"M", 1991, "executive secretary", 154100},
      {"M", 1991, "elementary teacher", 212943},
      {"M", 1991, "high school teacher", 123740},
      {"M", 1992, "chemical engineer", 209900},
      {"M", 1992, "civil engineer", 278000},
      {"M", 1992, "junior secretary", 542100},
      {"M", 1992, "executive secretary", 169800},
      {"M", 1992, "elementary teacher", 213521},
      {"M", 1992, "high school teacher", 145766},
      {"F", 1991, "chemical engineer", 25800},
      {"F", 1991, "civil engineer", 112000},
      {"F", 1991, "junior secretary", 667300},
      {"F", 1991, "executive secretary", 162300},
      {"F", 1991, "elementary teacher", 216071},
      {"F", 1991, "high school teacher", 275123},
      {"F", 1992, "chemical engineer", 28900},
      {"F", 1992, "civil engineer", 127600},
      {"F", 1992, "junior secretary", 692500},
      {"F", 1992, "executive secretary", 174400},
      {"F", 1992, "elementary teacher", 217520},
      {"F", 1992, "high school teacher", 299344},
  };
  for (const auto& c : cells)
    (void)obj.AddCell({Value(c.sex), Value(c.year), Value(c.prof)},
                      {Value(c.employment)});

  // --- 3. Inspect --------------------------------------------------------
  printf("%s\n", obj.DescribeStructure().c_str());

  Render2DOptions opt;
  opt.row_dims = {"sex", "year"};
  opt.col_dims = {"profession"};
  opt.measure = "employment";
  opt.nest_hierarchy = "by_class";
  opt.marginals = true;
  auto table = Render2D(obj, opt);
  printf("%s\n", table.ok() ? table->c_str() : table.status().ToString().c_str());

  // --- 4. Operate ---------------------------------------------------------
  // Roll up to professional class (S-aggregation / OLAP roll-up).
  auto by_class = SAggregate(obj, "profession", "by_class", 1);
  if (by_class.ok()) {
    printf("After roll-up to professional class:\n%s\n",
           by_class->data().ToString(10).c_str());
  }

  // Dice: keep only the engineers of 1992.
  auto diced = Dice(obj, {{"year", {Value(1992)}},
                          {"profession",
                           {Value("chemical engineer"), Value("civil engineer")}}});
  if (diced.ok()) {
    printf("Dice (1992 engineers): %zu cells\n\n", diced->data().num_rows());
  }

  // Slice (S-project) over sex — refused? No: employment is a stock but sex
  // is not temporal, so summing is fine.
  auto no_sex = SProject(obj, "sex");
  if (no_sex.ok()) {
    printf("After summarizing over sex: %zu cells\n\n",
           no_sex->data().num_rows());
  }

  // ... but summing the headcount over *years* is refused:
  auto over_years = SProject(obj, "year");
  printf("S-project over year -> %s\n\n",
         over_years.status().ToString().c_str());

  // --- 5. Automatic aggregation (Figure 13) ------------------------------
  AutoQuery q;
  q.selections = {{"year", Value(1992)},
                  {"professional_class", Value("engineer")}};
  q.measure = "employment";
  auto r = AutoAggregate(obj, q);
  if (r.ok()) {
    printf("Query: employment of engineers in 1992\n");
    for (const auto& step : r->inferred_steps)
      printf("  inferred: %s\n", step.c_str());
    printf("  answer: %s\n", r->value.ToString().c_str());
  }
  return 0;
}
