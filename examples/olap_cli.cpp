// Interactive query console driving the concise query language of §5.1.
// With no arguments it queries the built-in retail statistical object; pass
// a path to a file written by ExportObject (statcube/io/csv.h) to query your
// own data. Reads queries from stdin; with no piped input it runs a
// scripted demo. Commands: \d describes the object, \e exports it, \q quits.
//
// Run: ./build/examples/olap_cli [object-file]
//      echo "SELECT sum(amount) BY city" | ./build/examples/olap_cli

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "statcube/io/csv.h"
#include "statcube/query/parser.h"
#include "statcube/workload/retail.h"

using namespace statcube;

namespace {

void Execute(const StatisticalObject& obj, const std::string& text) {
  auto result = Query(obj, text);
  if (!result.ok()) {
    printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  printf("%s\n", result->ToString(25).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  StatisticalObject obj;
  if (argc > 1) {
    std::ifstream f(argv[1]);
    if (!f) {
      fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::stringstream buf;
    buf << f.rdbuf();
    auto imported = ImportObject(buf.str());
    if (!imported.ok()) {
      fprintf(stderr, "%s\n", imported.status().ToString().c_str());
      return 1;
    }
    obj = std::move(imported).value();
  } else {
    RetailOptions opt;
    opt.num_products = 12;
    opt.num_stores = 6;
    opt.num_cities = 3;
    opt.num_days = 20;
    opt.num_rows = 4000;
    auto data = MakeRetailWorkload(opt);
    if (!data.ok()) {
      fprintf(stderr, "%s\n", data.status().ToString().c_str());
      return 1;
    }
    obj = std::move(data->object);
  }
  printf("%s\n", obj.DescribeStructure().c_str());
  printf("Query language: SELECT fn(measure)[, ...] [BY dims | BY CUBE(dims)]"
         " [WHERE attr = literal [AND ...]]\n"
         "Hierarchy levels (category, price_range, city, month, year) roll"
         " up automatically.\n\n");

  std::string line;
  bool interactive = false;
  if (std::getline(std::cin, line)) {
    interactive = true;
    do {
      if (line == "\\q") break;
      if (line == "\\d") {
        printf("%s\n", obj.DescribeStructure().c_str());
        continue;
      }
      if (line == "\\e") {
        printf("%s", ExportObject(obj).c_str());
        continue;
      }
      if (line.empty()) continue;
      Execute(obj, line);
    } while (std::getline(std::cin, line));
  }

  if (!interactive) {
    const char* demo[] = {
        "SELECT sum(amount) BY city",
        "SELECT sum(qty), avg(amount) BY category",
        "SELECT sum(amount) BY month WHERE city = 'city1'",
        "SELECT sum(amount) BY CUBE(city, month)",
        "SELECT count() WHERE price_range = 'premium'",
    };
    for (const char* q : demo) {
      printf("statcube> %s\n", q);
      Execute(obj, q);
    }
  }
  return 0;
}
