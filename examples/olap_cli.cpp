// Interactive query console driving the concise query language of §5.1.
// With no arguments it queries the built-in retail statistical object; pass
// a path to a file written by ExportObject (statcube/io/csv.h) to query your
// own data. Reads queries from stdin; with no piped input it runs a
// scripted demo. Commands: \d describes the object, \e exports it, \m dumps
// the metrics registry, \p dumps the flight recorder as JSON, \q quits.
//
// Observability: `--profile` runs every query under a profile scope and
// prints the span tree, per-operator row counts, and block I/O after each
// result; `EXPLAIN PROFILE <query>` does the same for a single query.
// `--engine=molap|rolap|rolap+bitmap` routes backend-expressible queries
// (single SUM over dimensions) through that physical organization instead of
// the relational executor — the §6.6 comparison, one flag apart.
//
// Parallelism: `--threads=N` executes queries on N workers through the
// morsel-parallel kernels (statcube/exec); results are bit-identical to
// serial execution at any thread count. The default comes from the
// STATCUBE_THREADS environment variable, falling back to the hardware
// concurrency; `--threads=1` forces the serial operators. The worker pool is
// built at startup, so /varz shows statcube.exec.pool_size immediately.
// `--vectorized[=0|1]` routes parallel group-bys through the block-at-a-time
// radix kernels (exec/vec_kernels.h); results stay bit-identical, and
// EXPLAIN PROFILE shows the vec.columnarize/partition/aggregate/emit spans.
// The default comes from the STATCUBE_VECTORIZED environment variable.
//
// Caching: `--cache=off|on|derive` answers repeated queries from the
// result cache (`on` = exact reuse, `derive` = also roll up cached
// supersets through the lattice; see cache/result_cache.h). Cached answers
// are bit-identical to direct execution; the profile's `cache:` line shows
// hit / derived / miss, and statcube.cache.* metrics land in \m and /varz.
// Any --cache mode routes queries through QueryProfiled even without
// --profile, so admission can see execution timings.
//
// Serving: `--serve=PORT` runs the embedded stats server for the session's
// lifetime (and implies --profile, so every query is recorded), so
// `curl localhost:PORT/metrics` (or /profiles, /varz, /healthz)
// works while you type queries; `--slow-query-us=N` makes any profiled query
// slower than N microseconds emit one structured slow-query log line to
// stderr. Profiled queries land in the flight recorder either way (`\p`
// dumps it). For an always-on serving demo see examples/stats_server.cpp.
//
// Deadlines: `--deadline-ms=N` gives every query an execution budget; a
// query that runs past it stops at the next morsel / row-batch boundary and
// reports DeadlineExceeded (the profile records outcome
// "deadline_exceeded"). Implies the profiled path, like --cache.
//
// Run: ./build/examples/olap_cli [--profile] [--engine=E] [--threads=N]
//          [--vectorized[=0|1]] [--cache=M] [--serve=PORT] [--slow-query-us=N]
//          [--flight-capacity=N] [--statusz-sample-ms=D] [--deadline-ms=N]
//          [object-file]
//      echo "EXPLAIN PROFILE SELECT sum(amount) BY city" | ./build/examples/olap_cli
//
// Parser/executor errors go to stderr and make the exit code nonzero, so
// profile output on stdout stays machine-separable from failures.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "statcube/exec/task_scheduler.h"
#include "statcube/io/csv.h"
#include "statcube/obs/flight_recorder.h"
#include "statcube/obs/http_server.h"
#include "statcube/obs/metrics.h"
#include "statcube/obs/timeseries_ring.h"
#include "statcube/query/parser.h"
#include "statcube/workload/retail.h"

using namespace statcube;

namespace {

struct CliOptions {
  bool profile = false;
  QueryEngine engine = QueryEngine::kRelational;
  int threads = exec::DefaultThreads();  // --threads=N / STATCUBE_THREADS
  // --vectorized[=0|1] / STATCUBE_VECTORIZED
  bool vectorized = exec::DefaultVectorized();
  int serve_port = -1;          // --serve=PORT; -1 = no server
  long slow_query_us = -1;      // --slow-query-us=N; -1 = leave default
  long flight_capacity = -1;    // --flight-capacity=N; -1 = leave default
  long statusz_sample_ms = 1000;  // --statusz-sample-ms=D
  long deadline_ms = 0;           // --deadline-ms=N; 0 = no deadline
  cache::Mode cache = cache::Mode::kOff;  // --cache=off|on|derive
  std::string object_file;
};

// Returns false on a parser/executor error (already reported to stderr).
bool Execute(const StatisticalObject& obj, const std::string& text,
             const CliOptions& cli) {
  auto parsed = ParseQuery(text);
  if (!parsed.ok()) {
    fprintf(stderr, "error: %s\n", parsed.status().ToString().c_str());
    return false;
  }
  // Caching and deadlines need the profiled path: QueryProfiled owns the
  // cache lookup/insert, the execution timing that drives admission, and
  // the deadline/cancellation plumbing. Without --profile the profile
  // itself is simply not printed.
  if (cli.profile || parsed->explain_profile ||
      cli.cache != cache::Mode::kOff || cli.deadline_ms > 0) {
    QueryOptions opt;
    opt.engine = cli.engine;
    opt.threads = cli.threads;
    opt.vectorized = cli.vectorized;
    opt.cache = cli.cache;
    opt.deadline_us = uint64_t(cli.deadline_ms) * 1000;
    auto result = QueryProfiled(obj, text, opt);
    if (!result.ok()) {
      fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
      return false;
    }
    if (cli.profile || parsed->explain_profile) {
      printf("%s\n%s", result->rendered.c_str(),
             result->profile.ToString().c_str());
    } else {
      printf("%s\n", result->rendered.c_str());
    }
    return true;
  }
  auto result = cli.threads != 1
                    ? ExecuteQueryParallel(obj, *parsed, cli.threads,
                                           /*stop=*/nullptr, cli.vectorized)
                    : ExecuteQuery(obj, *parsed);
  if (!result.ok()) {
    fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return false;
  }
  printf("%s\n", result->ToString(25).c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--profile") {
      cli.profile = true;
    } else if (arg.rfind("--engine=", 0) == 0) {
      auto engine = EngineFromName(arg.substr(strlen("--engine=")));
      if (!engine.ok()) {
        fprintf(stderr, "%s\n", engine.status().ToString().c_str());
        return 1;
      }
      cli.engine = *engine;
    } else if (arg.rfind("--threads=", 0) == 0) {
      cli.threads = atoi(arg.c_str() + strlen("--threads="));
      if (cli.threads < 1 || cli.threads > exec::kMaxThreads) {
        fprintf(stderr, "bad --threads value %s (1..%d)\n", arg.c_str(),
                exec::kMaxThreads);
        return 1;
      }
    } else if (arg == "--vectorized" || arg == "--vectorized=1") {
      cli.vectorized = true;
    } else if (arg == "--vectorized=0") {
      cli.vectorized = false;
    } else if (arg.rfind("--cache=", 0) == 0) {
      auto mode = cache::ModeFromName(arg.substr(strlen("--cache=")));
      if (!mode.ok()) {
        fprintf(stderr, "%s\n", mode.status().ToString().c_str());
        return 1;
      }
      cli.cache = *mode;
    } else if (arg.rfind("--serve=", 0) == 0) {
      cli.serve_port = atoi(arg.c_str() + strlen("--serve="));
      if (cli.serve_port < 0 || cli.serve_port > 65535) {
        fprintf(stderr, "bad --serve port %s\n", arg.c_str());
        return 1;
      }
    } else if (arg.rfind("--slow-query-us=", 0) == 0) {
      cli.slow_query_us = atol(arg.c_str() + strlen("--slow-query-us="));
      if (cli.slow_query_us < 0) {
        fprintf(stderr, "bad --slow-query-us value %s\n", arg.c_str());
        return 1;
      }
    } else if (arg.rfind("--flight-capacity=", 0) == 0) {
      cli.flight_capacity = atol(arg.c_str() + strlen("--flight-capacity="));
      if (cli.flight_capacity < 1 ||
          size_t(cli.flight_capacity) > obs::FlightRecorder::kMaxCapacity) {
        fprintf(stderr, "bad --flight-capacity value %s (1..%zu)\n",
                arg.c_str(), obs::FlightRecorder::kMaxCapacity);
        return 1;
      }
    } else if (arg.rfind("--statusz-sample-ms=", 0) == 0) {
      cli.statusz_sample_ms =
          atol(arg.c_str() + strlen("--statusz-sample-ms="));
      if (cli.statusz_sample_ms < 10) {
        fprintf(stderr, "bad --statusz-sample-ms value %s (>= 10)\n",
                arg.c_str());
        return 1;
      }
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      cli.deadline_ms = atol(arg.c_str() + strlen("--deadline-ms="));
      if (cli.deadline_ms < 0) {
        fprintf(stderr, "bad --deadline-ms value %s (>= 0; 0 = no deadline)\n",
                arg.c_str());
        return 1;
      }
    } else if (arg == "--help" || arg == "-h") {
      printf("usage: olap_cli [--profile] [--engine=relational|molap|rolap|"
             "rolap+bitmap] [--threads=N] [--vectorized[=0|1]] "
             "[--cache=off|on|derive] "
             "[--serve=PORT] [--slow-query-us=N] [--flight-capacity=N] "
             "[--statusz-sample-ms=D] [--deadline-ms=N] [object-file]\n"
             "  --threads=N   execute on N workers (default: "
             "STATCUBE_THREADS or hardware concurrency; 1 = serial)\n"
             "  --vectorized  block-at-a-time radix group-by kernels; "
             "bit-identical results (default: STATCUBE_VECTORIZED)\n"
             "  --cache=M     result cache: on = exact reuse, derive = also "
             "roll up cached supersets (default: off)\n"
             "  --deadline-ms=N  per-query execution budget; past it the "
             "query stops with DeadlineExceeded (0 = no deadline, the "
             "default)\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 1;
    } else {
      cli.object_file = arg;
    }
  }

  StatisticalObject obj;
  if (!cli.object_file.empty()) {
    std::ifstream f(cli.object_file);
    if (!f) {
      fprintf(stderr, "cannot open %s\n", cli.object_file.c_str());
      return 1;
    }
    std::stringstream buf;
    buf << f.rdbuf();
    auto imported = ImportObject(buf.str());
    if (!imported.ok()) {
      fprintf(stderr, "%s\n", imported.status().ToString().c_str());
      return 1;
    }
    obj = std::move(imported).value();
  } else {
    RetailOptions opt;
    opt.num_products = 12;
    opt.num_stores = 6;
    opt.num_cities = 3;
    opt.num_days = 20;
    opt.num_rows = 4000;
    auto data = MakeRetailWorkload(opt);
    if (!data.ok()) {
      fprintf(stderr, "%s\n", data.status().ToString().c_str());
      return 1;
    }
    obj = std::move(data->object);
  }
  // Build the worker pool up front: query latency stays flat from the first
  // query, and the pool-size gauge is in /varz before any query runs.
  if (cli.threads > 1) exec::TaskScheduler::Global().EnsureThreads(cli.threads);

  if (cli.profile) obs::SetEnabled(true);
  if (cli.slow_query_us >= 0)
    obs::FlightRecorder::Global().SetSlowQueryThresholdUs(
        uint64_t(cli.slow_query_us));

  if (cli.flight_capacity > 0)
    obs::FlightRecorder::Global().SetCapacity(size_t(cli.flight_capacity));

  std::optional<obs::MetricSampler> sampler;
  std::optional<obs::StatsServer> server;
  if (cli.serve_port >= 0) {
    // A stats server without stats is useless: enable instrumentation and
    // profile every query, or /profiles stays empty and --slow-query-us
    // can never fire.
    obs::SetEnabled(true);
    cli.profile = true;
    obs::MetricSamplerOptions mopt;
    mopt.interval_ms = int(cli.statusz_sample_ms);
    sampler.emplace(mopt);
    sampler->AddDefaultStatuszSeries();
    sampler->Start();
    obs::StatsServerOptions sopt;
    sopt.port = uint16_t(cli.serve_port);
    sopt.sampler = &*sampler;
    server.emplace(sopt);
    auto started = server->Start();
    if (!started.ok()) {
      fprintf(stderr, "%s\n", started.ToString().c_str());
      return 1;
    }
    printf("stats server on http://localhost:%u  "
           "(/metrics /varz /profiles /statusz /tracez /healthz)\n\n",
           unsigned(server->port()));
  }
  printf("Query language: [EXPLAIN PROFILE] SELECT fn(measure)[, ...]"
         " [BY dims | BY CUBE(dims)] [WHERE attr = literal [AND ...]]\n"
         "Hierarchy levels (category, price_range, city, month, year) roll"
         " up automatically.\n\n");

  bool any_error = false;
  std::string line;
  bool interactive = false;
  if (std::getline(std::cin, line)) {
    interactive = true;
    do {
      if (line == "\\q") break;
      if (line == "\\d") {
        printf("%s\n", obj.DescribeStructure().c_str());
        continue;
      }
      if (line == "\\e") {
        printf("%s", ExportObject(obj).c_str());
        continue;
      }
      if (line == "\\m") {
        printf("%s", obs::MetricsRegistry::Global().TextSnapshot().c_str());
        continue;
      }
      if (line == "\\p") {
        printf("%s\n", obs::FlightRecorder::Global().ToJson().c_str());
        continue;
      }
      if (line.empty()) continue;
      if (!Execute(obj, line, cli)) any_error = true;
    } while (std::getline(std::cin, line));
  }

  if (!interactive) {
    const char* demo[] = {
        "SELECT sum(amount) BY city",
        "SELECT sum(qty), avg(amount) BY category",
        "SELECT sum(amount) BY month WHERE city = 'city1'",
        "SELECT sum(amount) BY CUBE(city, month)",
        "SELECT count() WHERE price_range = 'premium'",
    };
    for (const char* q : demo) {
      printf("statcube> %s\n", q);
      if (!Execute(obj, q, cli)) any_error = true;
    }
  }
  return any_error ? 1 : 0;
}
