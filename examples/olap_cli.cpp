// Interactive query console driving the concise query language of §5.1.
// With no arguments it queries the built-in retail statistical object; pass
// a path to a file written by ExportObject (statcube/io/csv.h) to query your
// own data. Reads queries from stdin; with no piped input it runs a
// scripted demo. Commands: \d describes the object, \e exports it, \m dumps
// the metrics registry, \q quits.
//
// Observability: `--profile` runs every query under a profile scope and
// prints the span tree, per-operator row counts, and block I/O after each
// result; `EXPLAIN PROFILE <query>` does the same for a single query.
// `--engine=molap|rolap|rolap+bitmap` routes backend-expressible queries
// (single SUM over dimensions) through that physical organization instead of
// the relational executor — the §6.6 comparison, one flag apart.
//
// Run: ./build/examples/olap_cli [--profile] [--engine=E] [object-file]
//      echo "EXPLAIN PROFILE SELECT sum(amount) BY city" | ./build/examples/olap_cli
//
// Parser/executor errors go to stderr and make the exit code nonzero, so
// profile output on stdout stays machine-separable from failures.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "statcube/io/csv.h"
#include "statcube/obs/metrics.h"
#include "statcube/query/parser.h"
#include "statcube/workload/retail.h"

using namespace statcube;

namespace {

struct CliOptions {
  bool profile = false;
  QueryEngine engine = QueryEngine::kRelational;
  std::string object_file;
};

// Returns false on a parser/executor error (already reported to stderr).
bool Execute(const StatisticalObject& obj, const std::string& text,
             const CliOptions& cli) {
  auto parsed = ParseQuery(text);
  if (!parsed.ok()) {
    fprintf(stderr, "error: %s\n", parsed.status().ToString().c_str());
    return false;
  }
  if (cli.profile || parsed->explain_profile) {
    QueryOptions opt;
    opt.engine = cli.engine;
    auto result = QueryProfiled(obj, text, opt);
    if (!result.ok()) {
      fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
      return false;
    }
    printf("%s\n%s", result->rendered.c_str(),
           result->profile.ToString().c_str());
    return true;
  }
  auto result = ExecuteQuery(obj, *parsed);
  if (!result.ok()) {
    fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return false;
  }
  printf("%s\n", result->ToString(25).c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--profile") {
      cli.profile = true;
    } else if (arg.rfind("--engine=", 0) == 0) {
      auto engine = EngineFromName(arg.substr(strlen("--engine=")));
      if (!engine.ok()) {
        fprintf(stderr, "%s\n", engine.status().ToString().c_str());
        return 1;
      }
      cli.engine = *engine;
    } else if (arg == "--help" || arg == "-h") {
      printf("usage: olap_cli [--profile] [--engine=relational|molap|rolap|"
             "rolap+bitmap] [object-file]\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 1;
    } else {
      cli.object_file = arg;
    }
  }

  StatisticalObject obj;
  if (!cli.object_file.empty()) {
    std::ifstream f(cli.object_file);
    if (!f) {
      fprintf(stderr, "cannot open %s\n", cli.object_file.c_str());
      return 1;
    }
    std::stringstream buf;
    buf << f.rdbuf();
    auto imported = ImportObject(buf.str());
    if (!imported.ok()) {
      fprintf(stderr, "%s\n", imported.status().ToString().c_str());
      return 1;
    }
    obj = std::move(imported).value();
  } else {
    RetailOptions opt;
    opt.num_products = 12;
    opt.num_stores = 6;
    opt.num_cities = 3;
    opt.num_days = 20;
    opt.num_rows = 4000;
    auto data = MakeRetailWorkload(opt);
    if (!data.ok()) {
      fprintf(stderr, "%s\n", data.status().ToString().c_str());
      return 1;
    }
    obj = std::move(data->object);
  }
  if (cli.profile) obs::SetEnabled(true);

  printf("%s\n", obj.DescribeStructure().c_str());
  printf("Query language: [EXPLAIN PROFILE] SELECT fn(measure)[, ...]"
         " [BY dims | BY CUBE(dims)] [WHERE attr = literal [AND ...]]\n"
         "Hierarchy levels (category, price_range, city, month, year) roll"
         " up automatically.\n\n");

  bool any_error = false;
  std::string line;
  bool interactive = false;
  if (std::getline(std::cin, line)) {
    interactive = true;
    do {
      if (line == "\\q") break;
      if (line == "\\d") {
        printf("%s\n", obj.DescribeStructure().c_str());
        continue;
      }
      if (line == "\\e") {
        printf("%s", ExportObject(obj).c_str());
        continue;
      }
      if (line == "\\m") {
        printf("%s", obs::MetricsRegistry::Global().TextSnapshot().c_str());
        continue;
      }
      if (line.empty()) continue;
      if (!Execute(obj, line, cli)) any_error = true;
    } while (std::getline(std::cin, line));
  }

  if (!interactive) {
    const char* demo[] = {
        "SELECT sum(amount) BY city",
        "SELECT sum(qty), avg(amount) BY category",
        "SELECT sum(amount) BY month WHERE city = 'city1'",
        "SELECT sum(amount) BY CUBE(city, month)",
        "SELECT count() WHERE price_range = 'premium'",
    };
    for (const char* q : demo) {
      printf("statcube> %s\n", q);
      if (!Execute(obj, q, cli)) any_error = true;
    }
  }
  return any_error ? 1 : 0;
}
