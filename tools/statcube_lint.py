#!/usr/bin/env python3
"""statcube-lint: project-specific invariants no off-the-shelf tool knows.

Rules (each has an id; suppress one occurrence with a trailing or
preceding-line comment `// statcube-lint: allow(<rule-id>)`):

  naked-new        `new` outside the sanctioned idioms: smart-pointer
                   adoption (`std::unique_ptr<T>(new T...)`) and the
                   intentionally-leaked function-local static singleton
                   (`static T* x = new T;` or `static T* x = [] { ...
                   return new T; }();`). Everything else must use
                   make_unique/containers/arena types.
  naked-delete     any `delete` expression (deleted special members,
                   `= delete`, are fine). The repo owns no raw lifetimes.
  banned-random    std::rand/srand, std::random_device, std::mt19937,
                   time(nullptr)-style seeding. Determinism is a tested
                   contract (serial == parallel bit-for-bit); all
                   randomness must flow through common/rng.h's seeded
                   splitmix64 Rng.
  unconsumed-status  a bare statement call of a function whose declared
                   return type is Status/Result<...> silently drops the
                   error. Consume it, or cast with `(void)`. Function
                   names are harvested from src/**/*.h; names that are
                   also declared with a non-Status return type anywhere
                   (Set, Get, ...) are ambiguous and skipped.
  include-cc       `#include` of a .cc file: creates double-definition
                   traps and breaks the one-TU-per-.cc build model.
  codegen-drift    a `STATCUBE-CODEGEN-BEGIN <name> sha256:<12hex>` ...
                   `STATCUBE-CODEGEN-END <name>` region whose content no
                   longer matches its recorded hash. The hash makes
                   "this table is generated/kept-in-lockstep" a checked
                   claim instead of a comment; refresh deliberate edits
                   with `tools/statcube_lint.py --update-codegen-hash`.
                   src/statcube/query/parser.cc must carry at least one
                   region (its token/keyword tables).
  doc-gated        a top-level class/struct in a doxygen-gated header
                   (the GATED list in tools/check_doxygen_warnings.sh)
                   with no comment immediately above it, or a gated
                   header that does not open with a file comment.
  no-cout          std::cout/std::cerr in src/: library code reports
                   through Status and obs/log.h, never the process's
                   streams. (Examples, tools and tests may print.)
  sleep            std::this_thread::sleep_for in tests/: wall-clock
                   waits are either too short (flaky under sanitizers
                   and load) or too long (slow everywhere). Tests must
                   poll the observable condition or drive the
                   component's deterministic hook (e.g. SweepOnce).
  unordered-emit   a range-for over a variable declared with an
                   unordered container type (or the GroupedStates alias)
                   whose body emits rows/output, in result-producing
                   src/statcube modules. Bucket order is stdlib-defined,
                   so it must never reach results (DESIGN.md §13). This
                   is the fail-fast single-file edition of the
                   whole-program determinism pass in
                   tools/statcube_analyze (which also sees aliases and
                   cross-file types); sort before emitting or iterate a
                   deterministic index instead.

Usage:
  tools/statcube_lint.py                      # lint src tests bench examples
  tools/statcube_lint.py src/statcube/obs     # lint a subtree
  tools/statcube_lint.py --update-codegen-hash
  tools/statcube_lint.py --list-rules

Exit status: 0 clean, 1 violations, 2 usage/internal error.
Stdlib only; runs under any Python >= 3.8.
"""

import argparse
import hashlib
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_ROOTS = ["src", "tests", "bench", "examples"]
CXX_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp")

# Headers under the documentation gate — mirror of the GATED list in
# tools/check_doxygen_warnings.sh (a path ending in "/" gates a directory).
DOXYGEN_GATED = [
    "src/statcube/exec/task_scheduler.h",
    "src/statcube/common/vec_block.h",
    "src/statcube/exec/vec_kernels.h",
    "src/statcube/materialize/view_store.h",
    "src/statcube/olap/backend.h",
    "src/statcube/cache/",
    "src/statcube/obs/query_registry.h",
    "src/statcube/obs/resource.h",
    "src/statcube/obs/timeseries_ring.h",
    "src/statcube/serve/",
]

ALLOW_RE = re.compile(r"statcube-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

CODEGEN_BEGIN_RE = re.compile(
    r"^\s*//\s*STATCUBE-CODEGEN-BEGIN\s+(\S+)\s+sha256:([0-9a-f]{12})\s*$")
CODEGEN_END_RE = re.compile(r"^\s*//\s*STATCUBE-CODEGEN-END\s+(\S+)\s*$")

# Region-bearing files that MUST contain at least one codegen region.
CODEGEN_REQUIRED = ["src/statcube/query/parser.cc"]


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line  # 1-based
        self.rule = rule
        self.message = message

    def __str__(self):
        rel = os.path.relpath(self.path, REPO_ROOT)
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"


# --------------------------------------------------------------------------
# Comment/string stripping.
#
# Produces a "code view" of the file: same line structure, but comment and
# string-literal bodies blanked with spaces so the rules never match inside
# prose or literals. Raw lines are kept for allow() escapes and codegen
# markers (which live in comments by design).
# --------------------------------------------------------------------------

def strip_code_view(text):
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                # Raw strings R"(...)" get the simple treatment: the repo
                # does not use raw literals with embedded quotes.
                state = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\" and nxt:
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(quote)
                i += 1
            elif c == "\n":  # unterminated; keep line structure
                state = "code"
                out.append("\n")
                i += 1
            else:
                out.append(" ")
                i += 1
    return "".join(out)


def allowed_rules_at(raw_lines, idx):
    """Rule ids suppressed at line index `idx` (same line or the line above)."""
    rules = set()
    for j in (idx, idx - 1):
        if 0 <= j < len(raw_lines):
            m = ALLOW_RE.search(raw_lines[j])
            if m:
                rules.update(r.strip() for r in m.group(1).split(","))
    return rules


# --------------------------------------------------------------------------
# Rule: naked-new / naked-delete
# --------------------------------------------------------------------------

SMART_PTR_ADOPT_RE = re.compile(r"(unique_ptr|shared_ptr)\s*<[^;]*>\s*\(\s*$")
STATIC_NEW_RE = re.compile(r"\bstatic\b[^;=]*=\s*new\b")
STATIC_LAMBDA_RE = re.compile(r"\bstatic\b[^;=]*=[^;\[]*\[")
NEW_RE = re.compile(r"\bnew\b(?!\s*\()")  # `new (place)` placement also banned
DELETE_EXPR_RE = re.compile(r"(?<![=\w])\s*\bdelete\b(?:\s*\[\s*\])?\s+[\w(*]")


def check_new_delete(path, raw_lines, code_lines, violations):
    for idx, line in enumerate(code_lines):
        for m in NEW_RE.finditer(line):
            if "naked-new" in allowed_rules_at(raw_lines, idx):
                continue
            if STATIC_NEW_RE.search(line):
                continue  # static T* x = new T;  (leaked singleton)
            # std::unique_ptr<T>(new T...) — the `(` may close on the
            # previous line, so join the tail of the previous line in.
            prefix = line[: m.start()]
            joined = (code_lines[idx - 1] if idx > 0 else "") + " " + prefix
            if SMART_PTR_ADOPT_RE.search(joined.rstrip()):
                continue
            # `return new T;` / `auto* p = new T;` inside the leaked-
            # singleton lambda: `static T* x = [] { ... return new T; }();`
            in_singleton_lambda = False
            for back in range(idx - 1, max(-1, idx - 13), -1):
                if "}();" in code_lines[back]:
                    break  # any candidate lambda already closed above us
                if STATIC_LAMBDA_RE.search(code_lines[back]):
                    in_singleton_lambda = True
                    break
            if in_singleton_lambda:
                continue
            violations.append(Violation(
                path, idx + 1, "naked-new",
                "raw `new` outside smart-pointer adoption or a leaked "
                "function-local static singleton; use std::make_unique or "
                "a container"))
        dm = DELETE_EXPR_RE.search(line)
        if dm and "naked-delete" not in allowed_rules_at(raw_lines, idx):
            violations.append(Violation(
                path, idx + 1, "naked-delete",
                "raw `delete` expression; no code in this repo owns a raw "
                "lifetime — use std::unique_ptr"))


# --------------------------------------------------------------------------
# Rule: banned-random
# --------------------------------------------------------------------------

BANNED_RANDOM = [
    (re.compile(r"\bstd::rand\b|(?<![\w:])rand\s*\("), "std::rand"),
    (re.compile(r"\bsrand\s*\("), "srand"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bmt19937(?:_64)?\b"), "std::mt19937"),
    (re.compile(r"\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)"), "time(nullptr)"),
]


def check_banned_random(path, raw_lines, code_lines, violations):
    for idx, line in enumerate(code_lines):
        for pat, what in BANNED_RANDOM:
            if pat.search(line):
                if "banned-random" in allowed_rules_at(raw_lines, idx):
                    continue
                violations.append(Violation(
                    path, idx + 1, "banned-random",
                    f"{what}: nondeterministic/unseeded randomness breaks "
                    "the serial==parallel determinism contract; use the "
                    "seeded Rng in common/rng.h"))


# --------------------------------------------------------------------------
# Rule: unconsumed-status
# --------------------------------------------------------------------------

STATUS_DECL_RE = re.compile(
    r"^\s*(?:\[\[nodiscard\]\]\s*)?(?:virtual\s+|static\s+|inline\s+)*"
    r"(?:statcube::)?(Status|Result\s*<)[^;{()]*?\s(\w+)\s*\(")
OTHER_DECL_RE = re.compile(
    r"^\s*(?:\[\[nodiscard\]\]\s*)?(?:virtual\s+|static\s+|inline\s+|constexpr\s+)*"
    r"(void|bool|int|unsigned|long|float|double|char|auto|size_t|u?int\d+_t|"
    r"std::\w[\w:<>]*)\s+(\w+)\s*\(")


def harvest_status_names(src_root):
    """Names declared returning Status/Result in src headers, minus names
    that are also declared with some other return type (ambiguous)."""
    status_names, other_names = set(), set()
    for dirpath, _dirnames, filenames in os.walk(src_root):
        for fn in sorted(filenames):
            if not fn.endswith((".h", ".hpp")):
                continue
            full = os.path.join(dirpath, fn)
            try:
                code = strip_code_view(read_text(full))
            except OSError:
                continue
            for line in code.splitlines():
                m = STATUS_DECL_RE.match(line)
                if m:
                    status_names.add(m.group(2))
                    continue
                m = OTHER_DECL_RE.match(line)
                if m:
                    other_names.add(m.group(2))
    return status_names - other_names


# A full statement on one line: optional receiver chain, then the call.
BARE_CALL_TMPL = r"^\s*(?:[A-Za-z_]\w*(?:\.|->|::))*({names})\s*\(.*\)\s*;\s*$"
CONTINUATION_TAIL = tuple("(,=&|?:+-*/%<>")


def check_unconsumed_status(path, raw_lines, code_lines, status_names,
                            violations):
    # A file-local declaration with a non-Status return type (e.g. a static
    # helper `void Count(...)` in a .cc) shadows a same-named Status-returning
    # function harvested from the headers.
    local_other = set()
    for line in code_lines:
        m = OTHER_DECL_RE.match(line)
        if m:
            local_other.add(m.group(2))
    status_names = status_names - local_other
    if not status_names:
        return
    bare_call_re = re.compile(
        BARE_CALL_TMPL.format(names="|".join(sorted(map(re.escape,
                                                        status_names)))))
    for idx, line in enumerate(code_lines):
        if "=" in line or "return" in line or line.lstrip().startswith("#"):
            continue
        m = bare_call_re.match(line)
        if not m:
            continue
        # Part of a larger multi-line expression? The previous code line
        # would end mid-expression.
        prev = ""
        for back in range(idx - 1, -1, -1):
            if code_lines[back].strip():
                prev = code_lines[back].rstrip()
                break
        if prev.endswith(CONTINUATION_TAIL) or prev.endswith("return"):
            continue
        if "unconsumed-status" in allowed_rules_at(raw_lines, idx):
            continue
        violations.append(Violation(
            path, idx + 1, "unconsumed-status",
            f"result of {m.group(1)}() is declared Status/Result and is "
            "discarded; handle it or cast with (void)"))


# --------------------------------------------------------------------------
# Rule: include-cc
# --------------------------------------------------------------------------

INCLUDE_CC_RE = re.compile(r'^\s*#\s*include\s*["<][^">]*\.cc[">]')


def check_include_cc(path, raw_lines, code_lines, violations):
    for idx, line in enumerate(raw_lines):
        if INCLUDE_CC_RE.match(line):
            if "include-cc" in allowed_rules_at(raw_lines, idx):
                continue
            violations.append(Violation(
                path, idx + 1, "include-cc",
                "#include of a .cc file; every .cc is its own translation "
                "unit — include the header instead"))


# --------------------------------------------------------------------------
# Rule: codegen-drift
# --------------------------------------------------------------------------

def region_hash(lines):
    body = "\n".join(l.rstrip() for l in lines)
    return hashlib.sha256(body.encode("utf-8")).hexdigest()[:12]


def find_codegen_regions(raw_lines):
    """Yields (name, recorded_hash, begin_idx, end_idx) — indices of the
    marker lines; raises ValueError with a line number on malformed nesting."""
    regions = []
    open_name, open_hash, open_idx = None, None, None
    for idx, line in enumerate(raw_lines):
        bm = CODEGEN_BEGIN_RE.match(line)
        em = CODEGEN_END_RE.match(line)
        if bm:
            if open_name is not None:
                raise ValueError((idx + 1,
                                  f"BEGIN '{bm.group(1)}' inside open region "
                                  f"'{open_name}'"))
            open_name, open_hash, open_idx = bm.group(1), bm.group(2), idx
        elif em:
            if open_name is None:
                raise ValueError((idx + 1, f"END '{em.group(1)}' with no "
                                           "open region"))
            if em.group(1) != open_name:
                raise ValueError((idx + 1, f"END '{em.group(1)}' closes "
                                           f"region '{open_name}'"))
            regions.append((open_name, open_hash, open_idx, idx))
            open_name = None
        elif "STATCUBE-CODEGEN" in line:
            raise ValueError((idx + 1, "malformed STATCUBE-CODEGEN marker"))
    if open_name is not None:
        raise ValueError((open_idx + 1, f"region '{open_name}' never closed"))
    return regions


def check_codegen(path, raw_lines, code_lines, violations):
    try:
        regions = find_codegen_regions(raw_lines)
    except ValueError as e:
        (lineno, msg) = e.args[0]
        violations.append(Violation(path, lineno, "codegen-drift", msg))
        return
    rel = os.path.relpath(path, REPO_ROOT)
    if rel in CODEGEN_REQUIRED and not regions:
        violations.append(Violation(
            path, 1, "codegen-drift",
            "file must carry at least one STATCUBE-CODEGEN region around "
            "its generated tables"))
    for name, recorded, begin, end in regions:
        actual = region_hash(raw_lines[begin + 1:end])
        if actual != recorded:
            violations.append(Violation(
                path, begin + 1, "codegen-drift",
                f"region '{name}' hashes to sha256:{actual} but the marker "
                f"records sha256:{recorded}; if the edit is deliberate run "
                "tools/statcube_lint.py --update-codegen-hash"))


def update_codegen_hashes(paths):
    """Rewrites BEGIN markers to the current content hash. Returns the
    number of markers changed."""
    changed = 0
    for path in paths:
        raw = read_text(path)
        raw_lines = raw.splitlines()
        try:
            regions = find_codegen_regions(raw_lines)
        except ValueError:
            continue  # the lint pass reports malformed markers
        for name, recorded, begin, end in regions:
            actual = region_hash(raw_lines[begin + 1:end])
            if actual != recorded:
                raw_lines[begin] = raw_lines[begin].replace(
                    f"sha256:{recorded}", f"sha256:{actual}")
                changed += 1
        new_text = "\n".join(raw_lines) + ("\n" if raw.endswith("\n") else "")
        if new_text != raw:
            with open(path, "w", encoding="utf-8") as f:
                f.write(new_text)
            print(f"updated {os.path.relpath(path, REPO_ROOT)}")
    return changed


# --------------------------------------------------------------------------
# Rule: doc-gated
# --------------------------------------------------------------------------

TOP_TYPE_RE = re.compile(r"^(class|struct)\s+(?:STATCUBE_\w+(?:\([^)]*\))?\s+)?"
                         r"(\w+)[^;]*$")
COMMENT_TAIL_RE = re.compile(r"^\s*(///|//|\*/|\*|/\*)")


def is_doxygen_gated(path):
    rel = os.path.relpath(path, REPO_ROOT)
    if not rel.endswith((".h", ".hpp")):
        return False
    for gated in DOXYGEN_GATED:
        if gated.endswith("/"):
            if rel.startswith(gated):
                return True
        elif rel == gated:
            return True
    return False


def check_doc_gated(path, raw_lines, code_lines, violations):
    if not is_doxygen_gated(path):
        return
    if not raw_lines or not COMMENT_TAIL_RE.match(raw_lines[0]):
        if "doc-gated" not in allowed_rules_at(raw_lines, 0):
            violations.append(Violation(
                path, 1, "doc-gated",
                "gated header must open with a file-level comment"))
    for idx, line in enumerate(code_lines):
        m = TOP_TYPE_RE.match(line)
        if not m:
            continue
        # The immediately preceding line must be a comment — doxygen only
        # attaches a doc comment when it is adjacent; a blank line detaches
        # it, so we require adjacency too.
        prev = raw_lines[idx - 1] if idx > 0 else ""
        if prev.strip() and COMMENT_TAIL_RE.match(prev):
            continue
        if "doc-gated" in allowed_rules_at(raw_lines, idx):
            continue
        violations.append(Violation(
            path, idx + 1, "doc-gated",
            f"{m.group(1)} {m.group(2)} in a doxygen-gated header has no "
            "doc comment above it"))


# --------------------------------------------------------------------------
# Rule: no-cout
# --------------------------------------------------------------------------

COUT_RE = re.compile(r"\bstd::(cout|cerr)\b")


def check_no_cout(path, raw_lines, code_lines, violations):
    rel = os.path.relpath(path, REPO_ROOT)
    if not rel.startswith("src" + os.sep):
        return
    for idx, line in enumerate(code_lines):
        m = COUT_RE.search(line)
        if m and "no-cout" not in allowed_rules_at(raw_lines, idx):
            violations.append(Violation(
                path, idx + 1, "no-cout",
                f"std::{m.group(1)} in library code; report errors through "
                "Status and diagnostics through obs/log.h"))


# --------------------------------------------------------------------------
# Rule: sleep
# --------------------------------------------------------------------------

SLEEP_RE = re.compile(r"\bstd::this_thread::sleep_for\b")


def check_sleep(path, raw_lines, code_lines, violations):
    rel = os.path.relpath(path, REPO_ROOT)
    if not rel.startswith("tests" + os.sep):
        return
    for idx, line in enumerate(code_lines):
        if SLEEP_RE.search(line) and "sleep" not in allowed_rules_at(
                raw_lines, idx):
            violations.append(Violation(
                path, idx + 1, "sleep",
                "std::this_thread::sleep_for in a test: a wall-clock wait "
                "is flaky when short and slow when long — poll the "
                "observable condition (loop + yield) or call the "
                "component's deterministic hook instead"))


# --------------------------------------------------------------------------
# Rule: unordered-emit
# --------------------------------------------------------------------------

UNORDERED_EMIT_MODULES = ("exec", "cache", "molap", "relational", "olap",
                          "query", "serve")
UNORDERED_DECL_RE = re.compile(
    r"(?:unordered_(?:map|set|multimap|multiset)\s*<|\bGroupedStates\b)")
RANGE_FOR_UNORDERED_RE = re.compile(r"\bfor\s*\([^;)]*:\s*([\w.\->\[\]]+)")
EMIT_CALL_RE = re.compile(
    r"\b(AppendRow(?:Unchecked)?|push_back|emplace_back|ToJson|ToString|"
    r"AddRow)\s*\(")
SORT_CALL_RE = re.compile(r"\b(?:std::)?(?:stable_)?sort\s*\(|\bSort\w*\s*\(")


def check_unordered_emit(path, raw_lines, code_lines, violations):
    rel = os.path.relpath(path, REPO_ROOT).replace(os.sep, "/")
    parts = rel.split("/")
    if len(parts) < 4 or parts[0] != "src" or parts[1] != "statcube" or \
            parts[2] not in UNORDERED_EMIT_MODULES:
        return
    # Names this file declares with an unordered type (locals, members,
    # parameters): the identifier following the closing `>` (or the alias).
    unordered_names = set()
    text = "\n".join(code_lines)
    for m in UNORDERED_DECL_RE.finditer(text):
        i = text.find("<", m.start())
        if i >= 0 and i < m.end() + 2:
            depth = 0
            while i < len(text):
                if text[i] == "<":
                    depth += 1
                elif text[i] == ">":
                    depth -= 1
                    if depth == 0:
                        break
                i += 1
        else:
            i = m.end() - 1
        nm = re.match(r"[&*\s]*([A-Za-z_]\w*)", text[i + 1: i + 160])
        if nm and nm.group(1) != "const":
            unordered_names.add(nm.group(1))
    if not unordered_names:
        return
    for idx, line in enumerate(code_lines):
        fm = RANGE_FOR_UNORDERED_RE.search(line)
        if not fm:
            continue
        target = re.split(r"[.\-\[]", fm.group(1))[0]
        if target not in unordered_names:
            continue
        if "unordered-emit" in allowed_rules_at(raw_lines, idx):
            continue
        # Loop body: lines until the braces opened from here re-balance.
        depth = 0
        end = idx
        emitted = False
        for j in range(idx, min(idx + 80, len(code_lines))):
            emitted = emitted or (j > idx and
                                  EMIT_CALL_RE.search(code_lines[j]))
            depth += code_lines[j].count("{") - code_lines[j].count("}")
            if j > idx and depth <= 0:
                end = j
                break
        if not emitted:
            continue
        after = "\n".join(code_lines[end + 1: end + 16])
        if SORT_CALL_RE.search(after):
            continue
        violations.append(Violation(
            path, idx + 1, "unordered-emit",
            f"range-for over unordered container '{target}' emits output; "
            "stdlib bucket order must not reach results — sort first or "
            "iterate a deterministic index (see tools/statcube_analyze)"))


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

RULES = [
    "naked-new", "naked-delete", "banned-random", "unconsumed-status",
    "include-cc", "codegen-drift", "doc-gated", "no-cout", "sleep",
    "unordered-emit",
]


def read_text(path):
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        return f.read()


def collect_files(roots):
    files = []
    for root in roots:
        if os.path.isfile(root):
            if root.endswith(CXX_EXTENSIONS):
                files.append(os.path.abspath(root))
            continue
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(d for d in dirnames
                                 if d not in ("build", ".git", "third_party"))
            for fn in sorted(filenames):
                if fn.endswith(CXX_EXTENSIONS):
                    files.append(os.path.abspath(os.path.join(dirpath, fn)))
    return files


def lint_file(path, status_names, violations):
    raw = read_text(path)
    raw_lines = raw.splitlines()
    code_lines = strip_code_view(raw).splitlines()
    # splitlines on the code view can drop a trailing blank; pad to match.
    while len(code_lines) < len(raw_lines):
        code_lines.append("")
    check_new_delete(path, raw_lines, code_lines, violations)
    check_banned_random(path, raw_lines, code_lines, violations)
    check_unconsumed_status(path, raw_lines, code_lines, status_names,
                            violations)
    check_include_cc(path, raw_lines, code_lines, violations)
    check_codegen(path, raw_lines, code_lines, violations)
    check_doc_gated(path, raw_lines, code_lines, violations)
    check_no_cout(path, raw_lines, code_lines, violations)
    check_sleep(path, raw_lines, code_lines, violations)
    check_unordered_emit(path, raw_lines, code_lines, violations)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="statcube-lint",
        description="project-specific invariant checks for StatCube")
    parser.add_argument("paths", nargs="*",
                        help="files or directories (default: src tests "
                             "bench examples under the repo root)")
    parser.add_argument("--update-codegen-hash", action="store_true",
                        help="rewrite STATCUBE-CODEGEN-BEGIN hashes to the "
                             "current region content")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for r in RULES:
            print(r)
        return 0

    roots = args.paths or [os.path.join(REPO_ROOT, d) for d in DEFAULT_ROOTS]
    roots = [r for r in roots if os.path.exists(r)]
    files = collect_files(roots)
    if not files:
        print("statcube-lint: no C++ sources found", file=sys.stderr)
        return 2

    if args.update_codegen_hash:
        changed = update_codegen_hashes(files)
        print(f"{changed} marker(s) updated")
        return 0

    status_names = harvest_status_names(os.path.join(REPO_ROOT, "src"))
    violations = []
    for path in files:
        lint_file(path, status_names, violations)

    for v in sorted(violations, key=lambda v: (v.path, v.line)):
        print(v)
    if violations:
        print(f"statcube-lint: {len(violations)} violation(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"statcube-lint: {len(files)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
