/// \file
/// \brief Closed-loop load generator for the query front door: N concurrent
/// sessions, each issuing `POST /query` requests back-to-back against a
/// running stats_server, with per-class counters (200/429/503/other) and a
/// latency histogram reported as p50/p95/p99.
///
/// Closed-loop means each session waits for its response before sending the
/// next request, so offered concurrency — not offered rate — is the control
/// variable; that is the right model for the admission-control experiment,
/// where the question is "what happens when 1000 clients all lean on the
/// door at once". Sessions honour Retry-After on 429/503 only when
/// --honor-retry-after is set, so both the polite and the impolite client
/// populations can be measured.
///
/// Usage:
///   loadgen --port=8080 [--sessions=1000] [--requests=20] [--tenants=8]
///           [--query='SELECT sum(amount) BY city'] [--honor-retry-after]
///
/// Output: one human-readable summary plus a single JSON line (machine
/// scrapeable, used by EXPERIMENTS.md) on stdout. Exit code 0 when every
/// session completed its request budget without an IO error, 1 otherwise.
///
/// This is a tool, not part of the library: it speaks plain sockets so a
/// packaged statcube is not required to run it against any host/port.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

namespace {

struct Options {
  uint16_t port = 8080;
  std::string host = "127.0.0.1";
  int sessions = 1000;
  int requests = 20;      // per session
  int tenants = 8;        // requests spread across tenant0..tenantN-1
  std::string query = "SELECT sum(amount) BY city";
  bool honor_retry_after = false;
  int max_retry_sleep_ms = 1000;  // cap on honored Retry-After sleeps
};

// One session's tally; summed after the threads join.
struct SessionResult {
  uint64_t ok = 0;        // 200
  uint64_t rejected = 0;  // 429
  uint64_t shed = 0;      // 503
  uint64_t other = 0;     // any other HTTP status
  uint64_t io_errors = 0; // connect/send/recv failures
  std::vector<uint32_t> latencies_us;  // successful (200) requests only
};

// Blocking one-shot HTTP POST; returns the status code (0 on IO failure).
int PostQuery(const Options& opt, const std::string& body,
              std::string* retry_after) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opt.port);
  if (inet_pton(AF_INET, opt.host.c_str(), &addr.sin_addr) != 1 ||
      connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    close(fd);
    return 0;
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  std::string req =
      "POST /query HTTP/1.1\r\nHost: localhost\r\nContent-Length: " +
      std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" + body;
  size_t off = 0;
  while (off < req.size()) {
    ssize_t n = send(fd, req.data() + off, req.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      close(fd);
      return 0;
    }
    off += size_t(n);
  }
  std::string resp;
  char buf[8192];
  ssize_t n;
  while ((n = recv(fd, buf, sizeof(buf), 0)) > 0) resp.append(buf, size_t(n));
  close(fd);

  // "HTTP/1.1 NNN ..."
  if (resp.size() < 12 || resp.compare(0, 5, "HTTP/") != 0) return 0;
  int status = atoi(resp.c_str() + 9);
  if (retry_after != nullptr) {
    retry_after->clear();
    size_t pos = resp.find("Retry-After: ");
    if (pos != std::string::npos) {
      size_t end = resp.find('\r', pos);
      *retry_after = resp.substr(pos + 13, end - pos - 13);
    }
  }
  return status;
}

void RunSession(const Options& opt, int session_id, SessionResult* out) {
  const std::string tenant =
      "tenant" + std::to_string(opt.tenants > 0 ? session_id % opt.tenants : 0);
  const std::string body = "{\"query\":\"" + opt.query +
                           "\",\"tenant\":\"" + tenant + "\"}";
  out->latencies_us.reserve(size_t(opt.requests));
  for (int i = 0; i < opt.requests; ++i) {
    std::string retry_after;
    auto start = std::chrono::steady_clock::now();
    int status = PostQuery(opt, body, &retry_after);
    auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count();
    switch (status) {
      case 200:
        ++out->ok;
        out->latencies_us.push_back(uint32_t(std::min<int64_t>(
            us, std::numeric_limits<uint32_t>::max())));
        break;
      case 429: ++out->rejected; break;
      case 503: ++out->shed; break;
      case 0: ++out->io_errors; break;
      default: ++out->other; break;
    }
    if (opt.honor_retry_after && (status == 429 || status == 503) &&
        !retry_after.empty()) {
      int ms = std::min(atoi(retry_after.c_str()) * 1000,
                        opt.max_retry_sleep_ms);
      if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    }
  }
}

uint32_t Percentile(std::vector<uint32_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  size_t idx = size_t(p * double(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

bool ParseFlag(const std::string& arg, const char* name, std::string* out) {
  std::string prefix = std::string("--") + name + "=";
  if (arg.compare(0, prefix.size(), prefix) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

void Usage() {
  std::cout <<
      "loadgen: closed-loop load generator for statcube's POST /query\n"
      "  --port=N            stats_server port (required)\n"
      "  --host=ADDR         IPv4 address (default 127.0.0.1)\n"
      "  --sessions=N        concurrent sessions (default 1000)\n"
      "  --requests=N        requests per session (default 20)\n"
      "  --tenants=N         spread sessions over N tenants (default 8)\n"
      "  --query=SQL         query text (default 'SELECT sum(amount) BY "
      "city')\n"
      "  --honor-retry-after sleep as 429/503 responses suggest (capped)\n"
      "  --max-retry-sleep-ms=N  cap for honored sleeps (default 1000)\n";
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i], v;
    if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (arg == "--honor-retry-after") {
      opt.honor_retry_after = true;
    } else if (ParseFlag(arg, "port", &v)) {
      opt.port = uint16_t(atoi(v.c_str()));
    } else if (ParseFlag(arg, "host", &v)) {
      opt.host = v;
    } else if (ParseFlag(arg, "sessions", &v)) {
      opt.sessions = atoi(v.c_str());
    } else if (ParseFlag(arg, "requests", &v)) {
      opt.requests = atoi(v.c_str());
    } else if (ParseFlag(arg, "tenants", &v)) {
      opt.tenants = atoi(v.c_str());
    } else if (ParseFlag(arg, "query", &v)) {
      opt.query = v;
    } else if (ParseFlag(arg, "max-retry-sleep-ms", &v)) {
      opt.max_retry_sleep_ms = atoi(v.c_str());
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      Usage();
      return 2;
    }
  }
  if (opt.port == 0 || opt.sessions < 1 || opt.requests < 1) {
    std::cerr << "need --port, --sessions >= 1, --requests >= 1\n";
    return 2;
  }

  std::vector<SessionResult> results(size_t(opt.sessions));
  std::vector<std::thread> threads;
  threads.reserve(size_t(opt.sessions));
  auto wall_start = std::chrono::steady_clock::now();
  for (int s = 0; s < opt.sessions; ++s)
    threads.emplace_back(RunSession, std::cref(opt), s, &results[size_t(s)]);
  for (std::thread& t : threads) t.join();
  double wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - wall_start)
                      .count();

  SessionResult total;
  for (const SessionResult& r : results) {
    total.ok += r.ok;
    total.rejected += r.rejected;
    total.shed += r.shed;
    total.other += r.other;
    total.io_errors += r.io_errors;
    total.latencies_us.insert(total.latencies_us.end(),
                              r.latencies_us.begin(), r.latencies_us.end());
  }
  std::sort(total.latencies_us.begin(), total.latencies_us.end());
  uint64_t sent = total.ok + total.rejected + total.shed + total.other +
                  total.io_errors;
  uint32_t p50 = Percentile(total.latencies_us, 0.50);
  uint32_t p95 = Percentile(total.latencies_us, 0.95);
  uint32_t p99 = Percentile(total.latencies_us, 0.99);

  std::cout << "loadgen: " << opt.sessions << " sessions x " << opt.requests
            << " requests (" << sent << " sent) in " << wall_s << " s, "
            << double(sent) / wall_s << " req/s\n"
            << "  200 ok:       " << total.ok << "\n"
            << "  429 rejected: " << total.rejected << "\n"
            << "  503 shed:     " << total.shed << "\n"
            << "  other:        " << total.other << "\n"
            << "  io errors:    " << total.io_errors << "\n"
            << "  latency (200s only): p50 " << p50 << " us, p95 " << p95
            << " us, p99 " << p99 << " us\n";
  std::cout << "{\"sessions\":" << opt.sessions
            << ",\"requests_per_session\":" << opt.requests
            << ",\"sent\":" << sent << ",\"ok\":" << total.ok
            << ",\"rejected_429\":" << total.rejected
            << ",\"shed_503\":" << total.shed << ",\"other\":" << total.other
            << ",\"io_errors\":" << total.io_errors
            << ",\"wall_s\":" << wall_s
            << ",\"throughput_rps\":" << double(sent) / wall_s
            << ",\"p50_us\":" << p50 << ",\"p95_us\":" << p95
            << ",\"p99_us\":" << p99 << "}\n";
  return total.io_errors == 0 ? 0 : 1;
}
