#!/usr/bin/env python3
"""Compare a bench_json/ run (tools/bench_to_json.sh output) against a
committed baseline, and fail on regressions beyond a tolerance.

The baseline is one JSON file mapping binary -> benchmark -> real_time,
recorded with --update from a bench_json/ directory:

    tools/bench_to_json.sh                      # writes bench_json/BENCH_*.json
    tools/bench_diff.py --update                # (re)writes the baseline

Compare mode prints a table for every binary in the baseline and exits
nonzero only when a regression exceeds the tolerance AND hard mode is on
(--hard or BENCH_DIFF_HARD=1) — so CI can run it report-only by default.
Inside GitHub Actions, regressions additionally emit ::warning:: annotations.

    tools/bench_diff.py                         # soft gate (report only)
    BENCH_DIFF_HARD=1 tools/bench_diff.py       # hard gate
    tools/bench_diff.py --tolerance 0.25        # looser threshold
"""

import argparse
import json
import os
import sys

DEFAULT_BASELINE = "BENCH_PR9.json"
DEFAULT_DIR = "bench_json"


def load_run_dir(dir_path):
    """bench_json/BENCH_<binary>.json files -> {binary: {bench: {...}}}."""
    out = {}
    if not os.path.isdir(dir_path):
        return out
    for fname in sorted(os.listdir(dir_path)):
        if not (fname.startswith("BENCH_") and fname.endswith(".json")):
            continue
        binary = fname[len("BENCH_"):-len(".json")]
        with open(os.path.join(dir_path, fname)) as f:
            data = json.load(f)
        benches = {}
        for b in data.get("benchmarks", []):
            # Aggregate rows (mean/median/stddev) would double-count.
            if b.get("run_type") == "aggregate":
                continue
            benches[b["name"]] = {
                "real_time": b["real_time"],
                "time_unit": b.get("time_unit", "ns"),
            }
        if benches:
            out[binary] = benches
    return out


def update_baseline(args):
    run = load_run_dir(args.dir)
    if not run:
        print(f"error: no BENCH_*.json found in {args.dir}/ — run "
              "tools/bench_to_json.sh first", file=sys.stderr)
        return 1
    baseline = {
        "comment": "benchmark baseline; regenerate with tools/bench_diff.py "
                   "--update after an intentional perf change",
        "binaries": run,
    }
    with open(args.baseline, "w") as f:
        json.dump(baseline, f, indent=1, sort_keys=True)
        f.write("\n")
    nbench = sum(len(v) for v in run.values())
    print(f"wrote {args.baseline}: {len(run)} binaries, {nbench} benchmarks")
    return 0


def fmt_time(value, unit):
    return f"{value:.0f}{unit}" if value >= 100 else f"{value:.2f}{unit}"


def compare(args):
    try:
        with open(args.baseline) as f:
            baseline = json.load(f)["binaries"]
    except FileNotFoundError:
        print(f"error: baseline {args.baseline} not found — record one with "
              "--update", file=sys.stderr)
        return 1
    current = load_run_dir(args.dir)
    hard = args.hard or os.environ.get("BENCH_DIFF_HARD") == "1"

    regressions = []
    improvements = 0
    compared = 0
    for binary in sorted(baseline):
        print(f"\n== {binary} ==")
        cur_benches = current.get(binary)
        if not cur_benches:
            print("  (no current run — binary missing from "
                  f"{args.dir}/; skipped)")
            continue
        width = max(len(n) for n in baseline[binary]) + 2
        print(f"  {'benchmark':<{width}} {'baseline':>12} {'current':>12} "
              f"{'delta':>8}")
        for name, base in sorted(baseline[binary].items()):
            cur = cur_benches.get(name)
            if cur is None:
                print(f"  {name:<{width}} {'-':>12} {'-':>12} {'gone':>8}")
                continue
            if cur["time_unit"] != base["time_unit"]:
                print(f"  {name:<{width}} unit changed "
                      f"({base['time_unit']} -> {cur['time_unit']})")
                continue
            compared += 1
            delta = (cur["real_time"] - base["real_time"]) / base["real_time"]
            flag = ""
            if delta > args.tolerance:
                flag = " REGRESSED"
                regressions.append((binary, name, delta))
            elif delta < -args.tolerance:
                flag = " improved"
                improvements += 1
            print(f"  {name:<{width}} "
                  f"{fmt_time(base['real_time'], base['time_unit']):>12} "
                  f"{fmt_time(cur['real_time'], cur['time_unit']):>12} "
                  f"{delta:>+7.1%}{flag}")

    print(f"\n{compared} benchmarks compared, {len(regressions)} regressed "
          f"beyond {args.tolerance:.0%}, {improvements} improved")
    for binary, name, delta in regressions:
        msg = (f"benchmark regression: {binary}/{name} {delta:+.1%} "
               f"(tolerance {args.tolerance:.0%})")
        if os.environ.get("GITHUB_ACTIONS") == "true":
            print(f"::warning title=bench regression::{msg}")
        else:
            print(f"warning: {msg}", file=sys.stderr)
    if regressions and hard:
        print("hard gate enabled (BENCH_DIFF_HARD=1 or --hard): failing",
              file=sys.stderr)
        return 1
    return 0


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help=f"baseline file (default {DEFAULT_BASELINE})")
    parser.add_argument("--dir", default=DEFAULT_DIR,
                        help=f"current-run directory (default {DEFAULT_DIR})")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="relative slowdown treated as a regression "
                             "(default 0.10 = 10%%)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the current run")
    parser.add_argument("--hard", action="store_true",
                        help="exit 1 on regressions (also BENCH_DIFF_HARD=1)")
    args = parser.parse_args()
    return update_baseline(args) if args.update else compare(args)


if __name__ == "__main__":
    sys.exit(main())
