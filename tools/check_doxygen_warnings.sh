#!/usr/bin/env bash
# Runs doxygen and fails if it emits documentation warnings for the headers
# this repo keeps warning-free. The full warning log is always printed, so
# drift in not-yet-gated headers stays visible without failing the build;
# add a path here once its header is cleaned up.
#
# Usage: tools/check_doxygen_warnings.sh   (from the repo root)

set -uo pipefail

# Headers under the documentation gate: every public entity in these files
# must carry a doc comment and parse cleanly.
GATED=(
  "src/statcube/exec/task_scheduler.h"
  "src/statcube/common/vec_block.h"
  "src/statcube/exec/vec_kernels.h"
  "src/statcube/materialize/view_store.h"
  "src/statcube/olap/backend.h"
  "src/statcube/cache/"
  "src/statcube/obs/query_registry.h"
  "src/statcube/obs/resource.h"
  "src/statcube/obs/timeseries_ring.h"
  "src/statcube/serve/"
)

if ! command -v doxygen >/dev/null; then
  echo "error: doxygen not found on PATH" >&2
  exit 2
fi

mkdir -p build/docs
log=build/docs/doxygen_warnings.log
doxygen Doxyfile 2> "$log"
status=$?
if [ $status -ne 0 ]; then
  echo "error: doxygen exited with status $status" >&2
  cat "$log" >&2
  exit $status
fi

total=$(grep -c "warning:" "$log" || true)
echo "doxygen: $total warning(s) total (full log: $log)"

fail=0
for path in "${GATED[@]}"; do
  hits=$(grep "warning:" "$log" | grep -F "$path" || true)
  if [ -n "$hits" ]; then
    echo "FAIL: documentation warnings in gated path $path:" >&2
    echo "$hits" >&2
    fail=1
  fi
done

if [ $fail -ne 0 ]; then
  exit 1
fi
echo "gated headers are doxygen-warning-free"
