#!/usr/bin/env python3
"""Self-test for statcube-analyze: per pass, one fixture that seeds a
violation of the invariant (must be caught) and one clean fixture (must
pass), plus the suppression-file contract (mandatory justification,
stale entries fail) and the include scanner's comment handling.

Runs under plain `python3 tools/statcube_analyze_test.py`; ctest
registers it as `statcube_analyze_selftest`.
"""

import io
import json
import os
import shutil
import sys
import tempfile
import unittest
from contextlib import redirect_stderr, redirect_stdout

_TOOLS = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(_TOOLS, "statcube_analyze"))
sys.path.insert(0, _TOOLS)

import analyze            # noqa: E402
import core               # noqa: E402
import include_graph      # noqa: E402
import pass_determinism   # noqa: E402
import pass_hotpath       # noqa: E402
import pass_layers        # noqa: E402
import pass_locks         # noqa: E402


class FixtureTest(unittest.TestCase):
    """Writes a fixture repo under a temp root and analyzes it."""

    def setUp(self):
        self.tmp = tempfile.mkdtemp(prefix="statcube_analyze_test_")
        self.addCleanup(shutil.rmtree, self.tmp)

    def write(self, rel, content):
        path = os.path.join(self.tmp, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(content)
        return path

    def layers(self, modules):
        return self.write("layers.json", json.dumps(
            {"modules": {m: {"deps": deps} for m, deps in modules.items()}}))

    def ctx(self, layers=None):
        return core.AnalyzeContext(self.tmp, layers_path=layers)

    def keys(self, findings):
        return [f"{f.pass_id}/{f.key}" for f in findings]


# ---------------------------------------------------------------- layers

class LayersPassTest(FixtureTest):
    def test_forbidden_edge_fires(self):
        lp = self.layers({"common": [], "cache": ["common"],
                          "query": ["cache", "common"]})
        self.write("src/statcube/cache/a.cc",
                   '#include "statcube/query/parser.h"\n')
        found = self.keys(pass_layers.run(self.ctx(lp)))
        self.assertIn("layers/edge:cache->query", found)

    def test_allowed_edge_clean(self):
        lp = self.layers({"common": [], "query": ["common"]})
        self.write("src/statcube/query/a.cc",
                   '#include "statcube/common/status.h"\n')
        self.assertEqual(self.keys(pass_layers.run(self.ctx(lp))), [])

    def test_unknown_module_fires(self):
        lp = self.layers({"common": []})
        self.write("src/statcube/rogue/a.cc", "int x;\n")
        found = self.keys(pass_layers.run(self.ctx(lp)))
        self.assertIn("layers/unknown-module:rogue", found)

    def test_actual_cycle_fires(self):
        lp = self.layers({"alpha": [], "beta": []})
        self.write("src/statcube/alpha/a.h",
                   '#include "statcube/beta/b.h"\n')
        self.write("src/statcube/beta/b.h",
                   '#include "statcube/alpha/a.h"\n')
        found = self.keys(pass_layers.run(self.ctx(lp)))
        self.assertIn("layers/cycle:alpha,beta", found)

    def test_cyclic_layer_map_rejected(self):
        lp = self.layers({"alpha": ["beta"], "beta": ["alpha"]})
        with self.assertRaises(ValueError):
            pass_layers.validate_layer_map(self.ctx(lp))

    def test_commented_include_ignored(self):
        lp = self.layers({"common": [], "cache": ["common"]})
        self.write("src/statcube/cache/a.cc",
                   '// #include "statcube/query/parser.h"\n'
                   'int x;\n')
        self.assertEqual(self.keys(pass_layers.run(self.ctx(lp))), [])


# ----------------------------------------------------------------- locks

LOCK_PRELUDE = """\
class Widget {
 public:
  void AB();
  void BA();
 private:
  Mutex a_;
  Mutex b_;
};
"""


class LocksPassTest(FixtureTest):
    def run_locks(self):
        ctx = self.ctx()
        return self.keys(pass_locks.run(ctx))

    def test_inversion_fires(self):
        self.write("src/statcube/serve/widget.h", LOCK_PRELUDE)
        self.write("src/statcube/serve/widget.cc", """\
void Widget::AB() {
  MutexLock la(a_);
  MutexLock lb(b_);
}
void Widget::BA() {
  MutexLock lb(b_);
  MutexLock la(a_);
}
""")
        found = self.run_locks()
        self.assertIn("locks/cycle:Widget::a_,Widget::b_", found)

    def test_consistent_order_clean(self):
        self.write("src/statcube/serve/widget.h", LOCK_PRELUDE)
        self.write("src/statcube/serve/widget.cc", """\
void Widget::AB() {
  MutexLock la(a_);
  MutexLock lb(b_);
}
void Widget::BA() {
  MutexLock la(a_);
  MutexLock lb(b_);
}
""")
        self.assertEqual(self.run_locks(), [])

    def test_scoped_release_breaks_edge(self):
        self.write("src/statcube/serve/widget.h", LOCK_PRELUDE)
        self.write("src/statcube/serve/widget.cc", """\
void Widget::AB() {
  { MutexLock la(a_); }
  MutexLock lb(b_);
}
void Widget::BA() {
  { MutexLock lb(b_); }
  MutexLock la(a_);
}
""")
        self.assertEqual(self.run_locks(), [])

    def test_inversion_via_call_edge_fires(self):
        self.write("src/statcube/serve/widget.h", LOCK_PRELUDE)
        self.write("src/statcube/serve/widget.cc", """\
void Widget::TakeB() { MutexLock lb(b_); }
void Widget::AB() {
  MutexLock la(a_);
  TakeB();
}
void Widget::BA() {
  MutexLock lb(b_);
  MutexLock la(a_);
}
""")
        found = self.run_locks()
        self.assertIn("locks/cycle:Widget::a_,Widget::b_", found)

    def test_lambda_not_nested_under_definition_site(self):
        # The worker lambda runs later on another thread; its acquisition
        # of b_ must not become an a_ -> b_ edge.
        self.write("src/statcube/serve/widget.h", LOCK_PRELUDE)
        self.write("src/statcube/serve/widget.cc", """\
void Widget::AB() {
  MutexLock la(a_);
  workers_.emplace_back([this] {
    MutexLock lb(b_);
  });
}
void Widget::BA() {
  MutexLock lb(b_);
  MutexLock la(a_);
}
""")
        self.assertEqual(self.run_locks(), [])


# ----------------------------------------------------------- determinism

class DeterminismPassTest(FixtureTest):
    def run_det(self):
        return self.keys(pass_determinism.run(self.ctx()))

    def test_unordered_emit_fires(self):
        self.write("src/statcube/exec/emit.cc", """\
#include <unordered_map>
void Emit(Table& out) {
  std::unordered_map<int, double> groups;
  for (const auto& [k, v] : groups) {
    out.AppendRow({k, v});
  }
}
""")
        self.assertIn("determinism/src/statcube/exec/emit.cc:groups",
                      self.run_det())

    def test_sort_after_loop_clean(self):
        self.write("src/statcube/exec/emit.cc", """\
void Emit(std::vector<Row>& rows) {
  std::unordered_map<int, double> groups;
  for (const auto& [k, v] : groups) {
    rows.push_back({k, v});
  }
  std::sort(rows.begin(), rows.end());
}
""")
        self.assertEqual(self.run_det(), [])

    def test_ordered_map_clean(self):
        self.write("src/statcube/exec/emit.cc", """\
void Emit(Table& out) {
  std::map<int, double> groups;
  for (const auto& [k, v] : groups) {
    out.AppendRow({k, v});
  }
}
""")
        self.assertEqual(self.run_det(), [])

    def test_alias_type_fires(self):
        self.write("src/statcube/relational/agg.h",
                   "using GroupedStates = "
                   "std::unordered_map<Row, AggState>;\n")
        self.write("src/statcube/exec/emit.cc", """\
Table Emit(const GroupedStates& states) {
  Table out;
  for (const auto& [row, st] : states) {
    out.AppendRow(row);
  }
  return out;
}
""")
        self.assertIn("determinism/src/statcube/exec/emit.cc:states",
                      self.run_det())

    def test_non_result_module_ignored(self):
        self.write("src/statcube/io/emit.cc", """\
void Emit(Table& out) {
  std::unordered_map<int, double> groups;
  for (const auto& [k, v] : groups) {
    out.AppendRow({k, v});
  }
}
""")
        self.assertEqual(self.run_det(), [])


# --------------------------------------------------------------- hotpath

class HotpathPassTest(FixtureTest):
    def run_hot(self):
        return self.keys(pass_hotpath.run(self.ctx()))

    def test_mutex_in_morsel_lambda_fires(self):
        self.write("src/statcube/exec/k.cc", """\
void Kernel() {
  ParallelFor(
      n,
      [&](size_t m, size_t begin, size_t end) {
        MutexLock lock(mu_);
      },
      loop);
}
""")
        self.assertIn(
            "hotpath/src/statcube/exec/k.cc:ParallelFor-lambda:mutex",
            self.run_hot())

    def test_alloc_in_block_kernel_fires(self):
        self.write("src/statcube/common/vb.cc", """\
double SumBlockOrdered(const double* v, size_t n) {
  auto scratch = std::make_unique<double[]>(n);
  return 0.0;
}
""")
        self.assertIn(
            "hotpath/src/statcube/common/vb.cc:SumBlockOrdered:alloc",
            self.run_hot())

    def test_transitive_helper_fires(self):
        self.write("src/statcube/exec/k.cc", """\
void Helper(size_t r) {
  obs::MetricsRegistry::Global().GetCounter("x").Add(1);
}
void Kernel() {
  RunMorsels(
      n, morsel, nmorsels, next,
      [&](size_t begin, size_t end) {
        for (size_t r = begin; r < end; ++r) Helper(r);
      });
}
""")
        self.assertIn("hotpath/src/statcube/exec/k.cc:Helper:registry",
                      self.run_hot())

    def test_clean_kernel_passes(self):
        self.write("src/statcube/exec/k.cc", """\
void Kernel() {
  ParallelFor(
      n,
      [&](size_t m, size_t begin, size_t end) {
        for (size_t r = begin; r < end; ++r) acc[m] += v[r];
      },
      loop);
}
""")
        self.assertEqual(self.run_hot(), [])

    def test_static_initializer_exonerated(self):
        self.write("src/statcube/exec/k.cc", """\
double SumBlockAuto(const double* v, size_t n) {
  static obs::Counter& c = obs::MetricsRegistry::Global()
      .GetCounter("statcube.exec.fast");
  c.Add(1);
  return 0.0;
}
""")
        self.assertEqual(self.run_hot(), [])


# ---------------------------------------------------- suppressions/driver

class DriverTest(FixtureTest):
    def drive(self, argv):
        out, err = io.StringIO(), io.StringIO()
        with redirect_stdout(out), redirect_stderr(err):
            code = analyze.main(argv)
        return code, out.getvalue(), err.getvalue()

    def seeded_fixture(self):
        lp = self.layers({"common": [], "cache": ["common"]})
        self.write("src/statcube/cache/a.cc",
                   '#include "statcube/common/status.h"\n')
        return lp

    def test_clean_tree_exit_zero(self):
        lp = self.seeded_fixture()
        supp = self.write("supp.txt", "")
        code, out, _ = self.drive(
            ["--repo-root", self.tmp, "--layers", lp,
             "--suppressions", supp])
        self.assertEqual(code, 0, out)

    def test_finding_exit_one(self):
        lp = self.layers({"common": [], "cache": ["common"]})
        self.write("src/statcube/cache/a.cc",
                   '#include "statcube/serve/http.h"\n')
        supp = self.write("supp.txt", "")
        code, out, _ = self.drive(
            ["--repo-root", self.tmp, "--layers", lp,
             "--suppressions", supp])
        self.assertEqual(code, 1)
        self.assertIn("edge:cache->serve", out)

    def test_suppression_silences_finding(self):
        lp = self.layers({"common": [], "cache": ["common"]})
        self.write("src/statcube/cache/a.cc",
                   '#include "statcube/serve/http.h"\n')
        supp = self.write(
            "supp.txt",
            "layers edge:cache->serve  # fixture justification\n")
        code, out, _ = self.drive(
            ["--repo-root", self.tmp, "--layers", lp,
             "--suppressions", supp])
        self.assertEqual(code, 0, out)
        self.assertIn("1 suppressed", out)

    def test_suppression_without_justification_rejected(self):
        lp = self.seeded_fixture()
        supp = self.write("supp.txt", "layers edge:cache->serve\n")
        code, _, err = self.drive(
            ["--repo-root", self.tmp, "--layers", lp,
             "--suppressions", supp])
        self.assertEqual(code, 2)
        self.assertIn("justification", err)

    def test_stale_suppression_fails(self):
        lp = self.seeded_fixture()
        supp = self.write(
            "supp.txt", "layers edge:cache->serve  # no longer real\n")
        code, _, err = self.drive(
            ["--repo-root", self.tmp, "--layers", lp,
             "--suppressions", supp])
        self.assertEqual(code, 1)
        self.assertIn("stale suppression", err)

    def test_unknown_pass_rejected(self):
        code, _, err = self.drive(["--passes", "nope"])
        self.assertEqual(code, 2)
        self.assertIn("unknown pass", err)


# -------------------------------------------------------- include scanner

class IncludeGraphTest(FixtureTest):
    def test_direct_includes_and_closure(self):
        self.write("src/statcube/common/a.h", "int a;\n")
        self.write("src/statcube/core/b.h",
                   '#include "statcube/common/a.h"\n')
        self.write("src/statcube/core/b.cc",
                   '#include "statcube/core/b.h"\n')
        ctx = self.ctx()
        incs = include_graph.direct_includes(ctx, "src/statcube/core/b.cc")
        self.assertEqual(incs, [(1, "statcube/core/b.h")])
        closure = include_graph.tu_closure_scan(ctx, "src/statcube/core/b.cc")
        self.assertEqual(closure, {"src/statcube/core/b.h",
                                   "src/statcube/common/a.h"})


if __name__ == "__main__":
    unittest.main()
