#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy) over every first-party translation
# unit using the compilation database, which it (re)generates if missing.
#
# Usage: tools/run_clang_tidy.sh [build-dir]     (from the repo root)
#   CLANG_TIDY=clang-tidy-18 tools/run_clang_tidy.sh   # pick a binary
#
# Exit: 0 clean, 1 findings, 2 clang-tidy unavailable.

set -uo pipefail

BUILD_DIR="${1:-build}"
TIDY="${CLANG_TIDY:-}"
if [ -z "$TIDY" ]; then
  for cand in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
              clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    if command -v "$cand" >/dev/null; then TIDY="$cand"; break; fi
  done
fi
if [ -z "$TIDY" ]; then
  echo "error: clang-tidy not found on PATH (set CLANG_TIDY=...)" >&2
  exit 2
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "generating $BUILD_DIR/compile_commands.json ..."
  cmake -B "$BUILD_DIR" -S . >/dev/null || exit 2
fi

# First-party TUs only: third-party headers are filtered by
# HeaderFilterRegex, but there is no point invoking tidy on gtest TUs.
mapfile -t FILES < <(find src examples bench -name '*.cc' -o -name '*.cpp' \
                     | sort)
echo "clang-tidy ($TIDY) over ${#FILES[@]} translation units ..."

status=0
"$TIDY" -p "$BUILD_DIR" --quiet "${FILES[@]}" || status=1
if [ $status -ne 0 ]; then
  echo "clang-tidy: findings above must be fixed (or the check disabled" >&2
  echo "with rationale in .clang-tidy)" >&2
  exit 1
fi
echo "clang-tidy: clean"
