#!/usr/bin/env python3
"""Self-test for statcube-lint: one should-fire and one should-not-fire
fixture per rule, plus the allow() escape and --update-codegen-hash.

Runs under plain `python3 tools/statcube_lint_test.py` (stdlib unittest);
ctest registers it as `statcube_lint_selftest`.
"""

import os
import shutil
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import statcube_lint  # noqa: E402


class LintFixtureTest(unittest.TestCase):
    """Writes a fixture tree under a temp root and lints it."""

    def setUp(self):
        self.tmp = tempfile.mkdtemp(prefix="statcube_lint_test_")
        self.addCleanup(shutil.rmtree, self.tmp)
        self._saved_root = statcube_lint.REPO_ROOT
        statcube_lint.REPO_ROOT = self.tmp
        self.addCleanup(setattr, statcube_lint, "REPO_ROOT",
                        self._saved_root)

    def write(self, rel, content):
        path = os.path.join(self.tmp, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(content)
        return path

    def lint(self, rel, status_names=frozenset()):
        path = os.path.join(self.tmp, rel)
        violations = []
        statcube_lint.lint_file(path, set(status_names), violations)
        return [v.rule for v in violations], violations

    def assertFires(self, rel, rule, status_names=frozenset()):
        rules, violations = self.lint(rel, status_names)
        self.assertIn(rule, rules,
                      f"{rel}: expected [{rule}], got {violations or 'clean'}")

    def assertClean(self, rel, status_names=frozenset()):
        rules, violations = self.lint(rel, status_names)
        self.assertEqual(rules, [],
                         f"{rel}: expected clean, got "
                         f"{[str(v) for v in violations]}")

    # ---------------------------------------------------------- naked-new

    def test_naked_new_fires(self):
        self.write("src/a.cc", "void F() {\n  auto* p = new Thing();\n}\n")
        self.assertFires("src/a.cc", "naked-new")

    def test_new_in_unique_ptr_ok(self):
        self.write("src/a.cc",
                   "auto p = std::unique_ptr<Thing>(new Thing(1));\n")
        self.assertClean("src/a.cc")

    def test_new_in_multiline_unique_ptr_ok(self):
        self.write("src/a.cc",
                   "return std::unique_ptr<Base>(\n"
                   "    new Derived(std::move(x)));\n")
        self.assertClean("src/a.cc")

    def test_new_in_static_singleton_ok(self):
        self.write("src/a.cc", "static Thing* t = new Thing();\n")
        self.assertClean("src/a.cc")

    def test_new_in_static_lambda_singleton_ok(self):
        self.write("src/a.cc",
                   "static Thing* t = [] {\n"
                   "  auto* out = new Thing();\n"
                   "  out->Init();\n"
                   "  return out;\n"
                   "}();\n")
        self.assertClean("src/a.cc")

    def test_new_after_closed_lambda_fires(self):
        self.write("src/a.cc",
                   "static Thing* t = [] { return MakeThing(); }();\n"
                   "void F() {\n"
                   "  auto* p = new Thing();\n"
                   "}\n")
        self.assertFires("src/a.cc", "naked-new")

    def test_new_in_comment_ok(self):
        self.write("src/a.cc", "// allocates a new Thing on every call\n")
        self.assertClean("src/a.cc")

    def test_allow_escape(self):
        self.write("src/a.cc",
                   "// statcube-lint: allow(naked-new)\n"
                   "auto* p = new Thing();\n")
        self.assertClean("src/a.cc")

    # ------------------------------------------------------- naked-delete

    def test_naked_delete_fires(self):
        self.write("src/a.cc", "void F(Thing* t) {\n  delete t;\n}\n")
        self.assertFires("src/a.cc", "naked-delete")

    def test_deleted_member_ok(self):
        self.write("src/a.h",
                   "class C {\n  C(const C&) = delete;\n"
                   "  C& operator=(const C&) = delete;\n};\n")
        self.assertClean("src/a.h")

    # ------------------------------------------------------ banned-random

    def test_rand_fires(self):
        self.write("src/a.cc", "int r = std::rand();\n")
        self.assertFires("src/a.cc", "banned-random")

    def test_time_seed_fires(self):
        self.write("src/a.cc", "srand(time(nullptr));\n")
        self.assertFires("src/a.cc", "banned-random")

    def test_random_device_fires(self):
        self.write("src/a.cc", "std::random_device rd;\n")
        self.assertFires("src/a.cc", "banned-random")

    def test_seeded_rng_ok(self):
        self.write("src/a.cc",
                   "Rng rng(17);\n"
                   "uint64_t x = rng.Next();\n"
                   "bool operand = true;  // 'rand' inside a word\n")
        self.assertClean("src/a.cc")

    # -------------------------------------------------- unconsumed-status

    def test_bare_status_call_fires(self):
        self.write("src/a.cc", "void F() {\n  table.Expand(0, 1);\n}\n")
        self.assertFires("src/a.cc", "unconsumed-status",
                         status_names={"Expand"})

    def test_consumed_status_ok(self):
        self.write("src/a.cc",
                   "void F() {\n"
                   "  Status s = table.Expand(0, 1);\n"
                   "  (void)table.Expand(1, 2);\n"
                   "  if (!table.Expand(2, 3).ok()) return;\n"
                   "}\n")
        self.assertClean("src/a.cc", status_names={"Expand"})

    def test_call_as_argument_ok(self):
        # Part of a larger expression spread over two lines.
        self.write("src/a.cc",
                   "void F() {\n"
                   "  Check(\n"
                   "      Expand(0, 1));\n"
                   "}\n")
        rules, _ = self.lint("src/a.cc", {"Expand"})
        self.assertNotIn("unconsumed-status", rules)

    def test_local_void_helper_shadows(self):
        # File-local `void Count(...)` beats a header's Result Count().
        self.write("src/a.cc",
                   "void Count(const char* name) { Bump(name); }\n"
                   "void F() {\n  Count(\"hits\");\n}\n")
        self.assertClean("src/a.cc", status_names={"Count"})

    # --------------------------------------------------------- include-cc

    def test_include_cc_fires(self):
        self.write("src/a.cc", '#include "statcube/query/parser.cc"\n')
        self.assertFires("src/a.cc", "include-cc")

    def test_include_header_ok(self):
        self.write("src/a.cc", '#include "statcube/query/parser.h"\n')
        self.assertClean("src/a.cc")

    # ------------------------------------------------------ codegen-drift

    CODEGEN_OK = ("// STATCUBE-CODEGEN-BEGIN tbl sha256:%s\n"
                  "int kTable[] = {1, 2, 3};\n"
                  "// STATCUBE-CODEGEN-END tbl\n")

    def test_codegen_intact_ok(self):
        h = statcube_lint.region_hash(["int kTable[] = {1, 2, 3};"])
        self.write("src/a.cc", self.CODEGEN_OK % h)
        self.assertClean("src/a.cc")

    def test_codegen_drift_fires(self):
        h = statcube_lint.region_hash(["int kTable[] = {1, 2, 3};"])
        drifted = (self.CODEGEN_OK % h).replace("{1, 2, 3}", "{1, 2, 4}")
        self.write("src/a.cc", drifted)
        self.assertFires("src/a.cc", "codegen-drift")

    def test_codegen_unclosed_fires(self):
        self.write("src/a.cc",
                   "// STATCUBE-CODEGEN-BEGIN tbl sha256:000000000000\n"
                   "int x;\n")
        self.assertFires("src/a.cc", "codegen-drift")

    def test_codegen_required_file_without_region_fires(self):
        self.write("src/statcube/query/parser.cc", "int x;\n")
        self.assertFires("src/statcube/query/parser.cc", "codegen-drift")

    def test_update_codegen_hash_repairs_drift(self):
        h = statcube_lint.region_hash(["int kTable[] = {1, 2, 3};"])
        drifted = (self.CODEGEN_OK % h).replace("{1, 2, 3}", "{1, 2, 4}")
        path = self.write("src/a.cc", drifted)
        changed = statcube_lint.update_codegen_hashes([path])
        self.assertEqual(changed, 1)
        self.assertClean("src/a.cc")

    # ---------------------------------------------------------- doc-gated

    def test_undocumented_class_in_gated_header_fires(self):
        self.write("src/statcube/cache/x.h",
                   "// Cache support.\n\n"
                   "class Undocumented {\n public:\n  int x;\n};\n")
        self.assertFires("src/statcube/cache/x.h", "doc-gated")

    def test_documented_gated_header_ok(self):
        self.write("src/statcube/cache/x.h",
                   "// Cache support.\n\n"
                   "/// A documented class.\n"
                   "class Documented {\n public:\n  int x;\n};\n")
        self.assertClean("src/statcube/cache/x.h")

    def test_missing_file_comment_fires(self):
        self.write("src/statcube/cache/x.h",
                   "#pragma once\n/// Doc.\nclass C {\n};\n")
        self.assertFires("src/statcube/cache/x.h", "doc-gated")

    def test_ungated_header_not_checked(self):
        self.write("src/statcube/storage/x.h",
                   "class Undocumented {\n};\n")
        self.assertClean("src/statcube/storage/x.h")

    # ------------------------------------------------------------ no-cout

    def test_cout_in_src_fires(self):
        self.write("src/a.cc", 'std::cout << "x";\n')
        self.assertFires("src/a.cc", "no-cout")

    def test_cout_in_examples_ok(self):
        self.write("examples/a.cc", 'std::cout << "x";\n')
        self.assertClean("examples/a.cc")

    def test_cout_in_string_literal_ok(self):
        self.write("src/a.cc", 'const char* kHelp = "pipe to std::cout";\n')
        self.assertClean("src/a.cc")

    # ----------------------------------------------- serve/ subsystem rules

    def test_cout_in_serve_fires(self):
        # The front door writes HTTP responses, never stdout: a stray debug
        # print in serve/ is a lint error like anywhere else in src/.
        self.write("src/statcube/serve/front_door.cc",
                   'void Debug() { std::cout << "admitted"; }\n')
        self.assertFires("src/statcube/serve/front_door.cc", "no-cout")

    def test_dropped_admission_status_fires(self):
        # An ignored Status-returning call in serve/ (e.g. a Start() whose
        # failure would silently disable the endpoint) must be consumed.
        self.write("src/statcube/serve/front_door.cc",
                   "void Register() {\n  StartServer();\n}\n")
        self.assertFires("src/statcube/serve/front_door.cc",
                         "unconsumed-status",
                         status_names={"StartServer"})

    def test_serve_header_without_doc_fires(self):
        self.write("src/statcube/serve/new_gate.h",
                   "#ifndef X\n#define X\nclass Gate {};\n#endif\n")
        self.assertFires("src/statcube/serve/new_gate.h", "doc-gated")

    # -------------------------------------------------------------- sleep

    def test_sleep_in_test_fires(self):
        self.write("tests/a_test.cc",
                   "TEST(T, Wait) {\n"
                   "  std::this_thread::sleep_for("
                   "std::chrono::milliseconds(50));\n"
                   "}\n")
        self.assertFires("tests/a_test.cc", "sleep")

    def test_sleep_outside_tests_ok(self):
        self.write("src/a.cc",
                   "void Backoff() {\n"
                   "  std::this_thread::sleep_for("
                   "std::chrono::milliseconds(1));\n"
                   "}\n")
        self.assertClean("src/a.cc")

    def test_sleep_allow_escape(self):
        self.write("tests/a_test.cc",
                   "TEST(T, Latency) {\n"
                   "  // Simulates work. statcube-lint: allow(sleep)\n"
                   "  std::this_thread::sleep_for("
                   "std::chrono::milliseconds(2));\n"
                   "}\n")
        self.assertClean("tests/a_test.cc")

    def test_sleep_in_comment_ok(self):
        self.write("tests/a_test.cc",
                   "// never std::this_thread::sleep_for in tests\n"
                   "TEST(T, X) { Poll(); }\n")
        self.assertClean("tests/a_test.cc")

    # ------------------------------------------------------ unordered-emit

    def test_unordered_emit_fires(self):
        self.write("src/statcube/exec/a.cc",
                   "void Emit(Table* out) {\n"
                   "  std::unordered_map<Key, Agg> groups;\n"
                   "  for (const auto& [k, v] : groups) {\n"
                   "    out->AppendRow(MakeRow(k, v));\n"
                   "  }\n"
                   "}\n")
        self.assertFires("src/statcube/exec/a.cc", "unordered-emit")

    def test_unordered_emit_alias_fires(self):
        self.write("src/statcube/relational/a.cc",
                   "void Emit(const GroupedStates& states, Table* out) {\n"
                   "  for (const auto& [k, st] : states) {\n"
                   "    out->AppendRowUnchecked(MakeRow(k, st));\n"
                   "  }\n"
                   "}\n")
        self.assertFires("src/statcube/relational/a.cc", "unordered-emit")

    def test_unordered_emit_sort_after_ok(self):
        self.write("src/statcube/exec/a.cc",
                   "void Emit(Table* out) {\n"
                   "  std::unordered_map<Key, Agg> groups;\n"
                   "  for (const auto& [k, v] : groups) {\n"
                   "    out->AppendRow(MakeRow(k, v));\n"
                   "  }\n"
                   "  SortRows(out);\n"
                   "}\n")
        self.assertClean("src/statcube/exec/a.cc")

    def test_unordered_emit_ordered_map_ok(self):
        self.write("src/statcube/exec/a.cc",
                   "void Emit(Table* out) {\n"
                   "  std::map<Key, Agg> groups;\n"
                   "  for (const auto& [k, v] : groups) {\n"
                   "    out->AppendRow(MakeRow(k, v));\n"
                   "  }\n"
                   "}\n")
        self.assertClean("src/statcube/exec/a.cc")

    def test_unordered_emit_non_result_module_ok(self):
        self.write("src/statcube/io/a.cc",
                   "void Emit(Table* out) {\n"
                   "  std::unordered_map<Key, Agg> groups;\n"
                   "  for (const auto& [k, v] : groups) {\n"
                   "    out->AppendRow(MakeRow(k, v));\n"
                   "  }\n"
                   "}\n")
        self.assertClean("src/statcube/io/a.cc")

    def test_unordered_emit_no_emit_in_body_ok(self):
        self.write("src/statcube/exec/a.cc",
                   "size_t Count() {\n"
                   "  std::unordered_map<Key, Agg> groups;\n"
                   "  size_t n = 0;\n"
                   "  for (const auto& [k, v] : groups) {\n"
                   "    n += v.count;\n"
                   "  }\n"
                   "  return n;\n"
                   "}\n")
        self.assertClean("src/statcube/exec/a.cc")

    def test_unordered_emit_allow_escape(self):
        self.write("src/statcube/exec/a.cc",
                   "void Emit(Table* out) {\n"
                   "  std::unordered_map<Key, Agg> groups;\n"
                   "  // statcube-lint: allow(unordered-emit)\n"
                   "  for (const auto& [k, v] : groups) {\n"
                   "    out->AppendRow(MakeRow(k, v));\n"
                   "  }\n"
                   "}\n")
        self.assertClean("src/statcube/exec/a.cc")


class HarvestTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.mkdtemp(prefix="statcube_lint_harvest_")
        self.addCleanup(shutil.rmtree, self.tmp)

    def write(self, rel, content):
        path = os.path.join(self.tmp, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(content)

    def test_harvest_drops_ambiguous_names(self):
        self.write("src/a.h",
                   "Status Expand(size_t dim, size_t by);\n"
                   "Result<double> Get(size_t i);\n"
                   "Status Set(size_t i, double v);\n")
        self.write("src/b.h",
                   "void Set(double v);\n"       # ambiguous with a.h
                   "uint64_t Get(size_t i) const;\n")  # ambiguous with a.h
        names = statcube_lint.harvest_status_names(
            os.path.join(self.tmp, "src"))
        self.assertEqual(names, {"Expand"})


class RepoTest(unittest.TestCase):
    """The real tree must lint clean — this is the gate ctest runs."""

    def test_repo_is_clean(self):
        rc = statcube_lint.main([])
        self.assertEqual(rc, 0, "statcube-lint found violations in the repo")


if __name__ == "__main__":
    unittest.main(verbosity=2)
