#!/usr/bin/env bash
# clang-format gate over all first-party C++ sources (config: .clang-format).
#
# Soft by default — prints the offending files and diffs but exits 0 — so a
# formatter version skew never blocks a local build. CI exports FORMAT_HARD=1
# (or pass --hard) to make drift a failure.
#
# Usage: tools/check_format.sh [--hard]          (from the repo root)
#   FORMAT_HARD=1 tools/check_format.sh
#   tools/check_format.sh --fix                  # rewrite in place
#
# Exit: 0 clean (or soft mode), 1 drift in hard mode, 2 clang-format missing.

set -uo pipefail

HARD="${FORMAT_HARD:-0}"
FIX=0
for arg in "$@"; do
  case "$arg" in
    --hard) HARD=1 ;;
    --fix) FIX=1 ;;
    *) echo "usage: $0 [--hard|--fix]" >&2; exit 2 ;;
  esac
done

FMT="${CLANG_FORMAT:-}"
if [ -z "$FMT" ]; then
  for cand in clang-format clang-format-19 clang-format-18 clang-format-17 \
              clang-format-16 clang-format-15 clang-format-14; do
    if command -v "$cand" >/dev/null; then FMT="$cand"; break; fi
  done
fi
if [ -z "$FMT" ]; then
  echo "error: clang-format not found on PATH (set CLANG_FORMAT=...)" >&2
  exit 2
fi

mapfile -t FILES < <(find src tests bench examples \
                     \( -name '*.cc' -o -name '*.cpp' -o -name '*.h' \) \
                     | sort)

if [ "$FIX" -eq 1 ]; then
  "$FMT" -i "${FILES[@]}"
  echo "reformatted ${#FILES[@]} files"
  exit 0
fi

drifted=()
for f in "${FILES[@]}"; do
  if ! "$FMT" --dry-run --Werror "$f" >/dev/null 2>&1; then
    drifted+=("$f")
  fi
done

if [ ${#drifted[@]} -eq 0 ]; then
  echo "clang-format: ${#FILES[@]} files clean"
  exit 0
fi

echo "clang-format: ${#drifted[@]} of ${#FILES[@]} files drift from .clang-format:"
printf '  %s\n' "${drifted[@]}"
echo "fix with: tools/check_format.sh --fix"
if [ "$HARD" = "1" ]; then
  exit 1
fi
echo "(soft gate: not failing; set FORMAT_HARD=1 to enforce)"
exit 0
