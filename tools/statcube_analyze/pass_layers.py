"""Pass 1: layer conformance.

Extracts every direct `#include "statcube/<module>/..."` edge between
modules and checks it against the allowed-dependency DAG in layers.json.
Findings:

 * `edge:<from>-><to>` — an include edge not in the allowed map (one
   finding per including file, at the include's line).
 * `unknown-module:<m>` — a src/statcube subdirectory layers.json does
   not know about (forces the map to stay complete).
 * `cycle:<m1>,<m2>,...` — a dependency cycle among the *actual* edges.
   (Allowed edges are validated to be acyclic up front — a cyclic map is
   a configuration error, not a suppressible finding.)
"""

import json

import include_graph

PASS_ID = "layers"


def load_layer_map(ctx):
    with open(ctx.layers_path) as f:
        data = json.load(f)
    return {m: set(spec.get("deps", []))
            for m, spec in data["modules"].items()}


def _find_cycles(edges):
    """Strongly connected components with more than one node (or a
    self-loop) in a {node: set(node)} graph — iterative Tarjan."""
    index = {}
    low = {}
    on_stack = set()
    stack = []
    sccs = []
    counter = [0]

    for root in sorted(edges):
        if root in index:
            continue
        work = [(root, iter(sorted(edges.get(root, ()))))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for nxt in it:
                if nxt not in index:
                    index[nxt] = low[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(sorted(edges.get(nxt, ())))))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == node:
                        break
                if len(scc) > 1 or node in edges.get(node, ()):
                    sccs.append(sorted(scc))
    return sccs


def validate_layer_map(ctx):
    """Raises ValueError when layers.json itself is cyclic or references
    an undeclared module — the map must be a DAG over known modules."""
    allowed = load_layer_map(ctx)
    for mod, deps in allowed.items():
        unknown = deps - set(allowed)
        if unknown:
            raise ValueError(
                f"layers.json: module {mod!r} depends on undeclared "
                f"module(s) {sorted(unknown)}")
    cycles = _find_cycles(allowed)
    if cycles:
        raise ValueError(f"layers.json: allowed deps contain cycles "
                         f"{cycles} — the map must be a DAG")
    return allowed


def run(ctx):
    from core import Finding
    allowed = validate_layer_map(ctx)
    findings = []

    actual = {}  # module -> set(module)
    for relpath in ctx.src_files():
        mod = ctx.module_of(relpath)
        if mod is None:
            continue
        if mod not in allowed:
            findings.append(Finding(
                PASS_ID, f"unknown-module:{mod}", relpath, 0,
                f"module '{mod}' is not declared in layers.json — add it "
                "with its allowed deps"))
            continue
        for line_no, inc in include_graph.direct_includes(ctx, relpath):
            parts = inc.split("/")
            if len(parts) < 2:
                continue
            dep = parts[1]
            if dep == mod:
                continue
            actual.setdefault(mod, set()).add(dep)
            if dep not in allowed[mod]:
                findings.append(Finding(
                    PASS_ID, f"edge:{mod}->{dep}", relpath, line_no,
                    f"module '{mod}' may not include '{dep}' "
                    f"(allowed: {sorted(allowed[mod]) or 'none'}) — fix the "
                    "dependency or extend layers.json with a justification"))

    for scc in _find_cycles(actual):
        findings.append(Finding(
            PASS_ID, "cycle:" + ",".join(scc), "src/statcube", 0,
            f"dependency cycle between modules {scc}"))
    return findings
