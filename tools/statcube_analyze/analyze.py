#!/usr/bin/env python3
"""statcube-analyze: whole-program invariant analysis for statcube.

Four passes over src/statcube (see each pass module for the full story):

  layers       module dependency edges must match the allowed DAG in
               tools/statcube_analyze/layers.json; no cycles.
  locks        the global lock-acquisition graph must be acyclic
               (a cycle is a potential deadlock).
  determinism  no emitting iteration over unordered containers in
               result-producing modules.
  hotpath      no blocking operations (locks, IO, sleeps, registry
               lookups, unwhitelisted allocation) in morsel/kernel
               bodies.

Where statcube-lint checks single lines in single files, this tool sees
the whole program: the include graph (cross-checked against the real
preprocessor via `cc -MM` when compile_commands.json and a compiler are
available), cross-function lock nesting, and loop-body reachability.

Findings are suppressed only via tools/statcube_analyze/suppressions.txt
(`<pass> <key>  # justification` — the justification is mandatory, and
stale entries fail the run so the file always describes exactly the
accepted findings).

Usage:
  tools/statcube_analyze/analyze.py                 # all passes
  tools/statcube_analyze/analyze.py --passes layers,locks
  tools/statcube_analyze/analyze.py --mm-check      # + -MM cross-check
  tools/statcube_analyze/analyze.py --print-layers  # ARCHITECTURE diagram

Exit status: 0 clean, 1 unsuppressed findings (or stale suppressions),
2 usage/configuration error. Stdlib only; Python >= 3.8.
"""

import argparse
import os
import sys

_THIS_DIR = os.path.dirname(os.path.abspath(__file__))
if _THIS_DIR not in sys.path:
    sys.path.insert(0, _THIS_DIR)

import core                # noqa: E402
import include_graph       # noqa: E402
import pass_determinism    # noqa: E402
import pass_hotpath        # noqa: E402
import pass_layers         # noqa: E402
import pass_locks          # noqa: E402

PASSES = {
    "layers": pass_layers.run,
    "locks": pass_locks.run,
    "determinism": pass_determinism.run,
    "hotpath": pass_hotpath.run,
}

DEFAULT_REPO_ROOT = os.path.dirname(os.path.dirname(_THIS_DIR))


def print_layers(ctx):
    """Render the allowed DAG as the text diagram ARCHITECTURE.md embeds."""
    allowed = pass_layers.validate_layer_map(ctx)
    # Topological ranks: a module's rank is 1 + max rank of its deps.
    rank = {}

    def rank_of(m):
        if m not in rank:
            rank[m] = 1 + max((rank_of(d) for d in allowed[m]), default=-1)
        return rank[m]

    for m in allowed:
        rank_of(m)
    by_rank = {}
    for m, r in rank.items():
        by_rank.setdefault(r, []).append(m)
    for r in sorted(by_rank, reverse=True):
        mods = sorted(by_rank[r])
        print(f"  [{r}] " + "  ".join(
            f"{m} -> ({', '.join(sorted(allowed[m])) or '-'})"
            for m in mods))
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--repo-root", default=DEFAULT_REPO_ROOT,
                        help="repository root (default: auto-detected)")
    parser.add_argument("--passes", default=",".join(PASSES),
                        help="comma-separated subset of: "
                             + ", ".join(PASSES))
    parser.add_argument("--suppressions",
                        default=os.path.join(_THIS_DIR, "suppressions.txt"),
                        help="suppression file (default: the checked-in one)")
    parser.add_argument("--layers",
                        default=None,
                        help="layer map (default: the checked-in "
                             "layers.json)")
    parser.add_argument("--compdb", default=None,
                        help="compile_commands.json path (default: "
                             "build/compile_commands.json under the root)")
    parser.add_argument("--mm-check", action="store_true",
                        help="cross-check the include scanner against the "
                             "compiler's -MM output for every TU in the "
                             "compilation database")
    parser.add_argument("--print-layers", action="store_true",
                        help="print the rendered layer diagram and exit")
    parser.add_argument("--no-suppressions", action="store_true",
                        help="report every finding, ignoring the "
                             "suppression file")
    args = parser.parse_args(argv)

    ctx = core.AnalyzeContext(args.repo_root, layers_path=args.layers)
    if args.print_layers:
        return print_layers(ctx)

    wanted = [p.strip() for p in args.passes.split(",") if p.strip()]
    unknown = [p for p in wanted if p not in PASSES]
    if unknown:
        print(f"error: unknown pass(es) {unknown}; available: "
              f"{sorted(PASSES)}", file=sys.stderr)
        return 2

    try:
        supp = (core.Suppressions({}) if args.no_suppressions
                else core.Suppressions.load(args.suppressions))
    except core.SuppressionError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    all_findings = []
    suppressed = 0
    for name in wanted:
        try:
            findings = PASSES[name](ctx)
        except ValueError as e:
            print(f"error: {e}", file=sys.stderr)
            return 2
        for f in findings:
            if supp.matches(f):
                suppressed += 1
            else:
                all_findings.append(f)

    if args.mm_check:
        compdb = include_graph.load_compdb(ctx, args.compdb)
        if not compdb:
            print("note: --mm-check requested but no compile_commands.json "
                  "found; skipping (build with "
                  "CMAKE_EXPORT_COMPILE_COMMANDS=ON)", file=sys.stderr)
        else:
            checked, problems = include_graph.cross_check(ctx, compdb)
            print(f"include scanner cross-checked against -MM for "
                  f"{checked}/{len(compdb)} TUs")
            for p in problems:
                print(f"error: {p}", file=sys.stderr)
            if problems:
                return 1

    for f in sorted(all_findings, key=lambda f: (f.path, f.line)):
        print(f)
    stale = supp.unused() if not args.no_suppressions else []
    for pass_id, key in stale:
        print(f"{args.suppressions}: stale suppression `{pass_id} {key}` "
              "matches nothing — remove it", file=sys.stderr)

    npass = len(wanted)
    print(f"statcube-analyze: {npass} pass(es), {len(all_findings)} "
          f"finding(s), {suppressed} suppressed"
          + (f", {len(stale)} stale suppression(s)" if stale else ""))
    return 1 if (all_findings or stale) else 0


if __name__ == "__main__":
    sys.exit(main())
