"""Pass 3: determinism audit.

The engine's tested contract is bit-identical results at any thread
count — and, implicitly, across standard libraries. Iterating an
`unordered_map`/`unordered_set` visits elements in an order the stdlib's
bucket layout picks, so a range-for over an unordered container whose
body *emits* (appends rows, builds output, serializes) leaks that order
into results.

The pass, over the result-producing modules (exec, cache, molap,
relational, olap, query, serve):

 1. harvests unordered type aliases repo-wide
    (`using GroupedStates = std::unordered_map<...>;`), so loops over
    aliased types are seen too;
 2. finds every range-for whose range expression is (a) declared
    unordered in the same file, (b) of an unordered alias type, or
    (c) a direct member/local the file declares as `unordered_*`;
 3. flags the loop when its body contains an emit-like call
    (AppendRow/push_back/ToJson/ToString/...) — unless a sort follows
    within a few lines of the loop (sort-after-iteration makes the
    visit order immaterial, the pattern StatesToTable uses).

Suppression key: `<path>:<range-expr-identifier>` — stable across line
churn; one justified entry covers the idiom in that file.
"""

import re

PASS_ID = "determinism"

RESULT_MODULES = {"exec", "cache", "molap", "relational", "olap", "query",
                  "serve"}

_ALIAS_RE = re.compile(
    r"using\s+(\w+)\s*=\s*(?:std\s*::\s*)?unordered_(?:map|set|multimap|"
    r"multiset)\s*<")
_UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set|multimap|multiset)\s*<")
_RANGE_FOR_RE = re.compile(r"\bfor\s*\(")
EMIT_RE = re.compile(
    r"\b(AppendRow(?:Unchecked)?|push_back|emplace_back|ToJson|ToString|"
    r"AppendJson|AddRow|Render\w*|Emit\w*)\s*\(|\bout\s*<<|\bos\s*<<")
SORT_AFTER_RE = re.compile(r"\b(?:std\s*::\s*)?(?:stable_)?sort\s*\(|"
                           r"\bSort\w*\s*\(")
_IDENT_RE = re.compile(r"[A-Za-z_]\w*")


def harvest_aliases(ctx, files):
    """Names aliased to unordered containers anywhere in the repo."""
    aliases = set()
    for relpath in files:
        for m in _ALIAS_RE.finditer(ctx.code_view(relpath)):
            aliases.add(m.group(1))
    return aliases


def _unordered_names_in_file(ctx, relpath, aliases):
    """Identifiers this file declares with an unordered (or aliased) type.

    Catches members (`GroupedStates groups_;`), locals
    (`std::unordered_map<K, V> build;`) and parameters
    (`const GroupedStates& states`).
    """
    names = set()
    text = ctx.code_view(relpath)
    for m in _UNORDERED_DECL_RE.finditer(text):
        # Skip the template argument list, then take the next identifier.
        i = text.find("<", m.start())
        depth = 0
        while i < len(text):
            if text[i] == "<":
                depth += 1
            elif text[i] == ">":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        tail = text[i + 1: i + 200]
        nm = re.match(r"[&*\s]*([A-Za-z_]\w*)", tail)
        if nm and nm.group(1) not in ("const",):
            names.add(nm.group(1))
    for alias in aliases:
        for m in re.finditer(
                r"\b" + re.escape(alias) + r"\b\s*[&*]*\s*([A-Za-z_]\w*)",
                text):
            if m.group(1) not in ("const",):
                names.add(m.group(1))
    return names


def _find_range_fors(lines):
    """[(line_idx, range_expr, body_start, body_end)] over a code view."""
    from core import find_matching_brace
    out = []
    for idx, line in enumerate(lines):
        for m in _RANGE_FOR_RE.finditer(line):
            # Join continuation lines to see the full for-header.
            header = line[m.end():]
            j = idx
            while header.count("(") + 1 > header.count(")") and \
                    j + 1 < len(lines) and j - idx < 5:
                j += 1
                header += " " + lines[j]
            close = 0
            depth = 1
            for k, c in enumerate(header):
                if c == "(":
                    depth += 1
                elif c == ")":
                    depth -= 1
                    if depth == 0:
                        close = k
                        break
            header_body = header[:close]
            if ":" not in header_body:
                continue  # classic for, not range-for
            range_expr = header_body.rsplit(":", 1)[1].strip()
            # Body extent: next '{' after the header close.
            bi, bj = j, line.find("{", m.end()) if j == idx else -1
            if bj < 0:
                # search forward for the opening brace
                found = False
                for bi in range(j, min(j + 3, len(lines))):
                    bj = lines[bi].find("{")
                    if bj >= 0:
                        found = True
                        break
                if not found:
                    continue  # single-statement body; ignore
            end = find_matching_brace(lines, bi, bj)
            if end is None:
                continue
            out.append((idx, range_expr, bi, end[0]))
    return out


def run(ctx, files=None):
    from core import Finding
    files = files if files is not None else ctx.src_files()
    aliases = harvest_aliases(ctx, files)
    findings = []
    for relpath in files:
        mod = ctx.module_of(relpath)
        if mod is not None and mod not in RESULT_MODULES:
            continue
        names = _unordered_names_in_file(ctx, relpath, aliases)
        if not names:
            continue
        lines = ctx.code_lines(relpath)
        for idx, range_expr, body_start, body_end in _find_range_fors(lines):
            ids = _IDENT_RE.findall(range_expr)
            target = next((i for i in ids if i in names), None)
            if target is None:
                continue
            body = "\n".join(lines[body_start:body_end + 1])
            em = EMIT_RE.search(body)
            if not em:
                continue
            after = "\n".join(lines[body_end + 1: body_end + 16])
            if SORT_AFTER_RE.search(after):
                continue  # sorted afterwards; visit order immaterial
            findings.append(Finding(
                PASS_ID, f"{relpath}:{target}", relpath, idx + 1,
                f"iteration over unordered container '{target}' emits "
                "output (stdlib bucket order would leak into results); "
                "sort before emitting, iterate a deterministic index, or "
                "suppress with a justification"))
    return findings
