"""Include-graph extraction for statcube-analyze.

Two sources of truth, cross-checked against each other:

 * **Header-scanning resolver** (always available): extract every direct
   `#include "statcube/..."` from the comment-stripped code view of each
   file and resolve it against src/. Direct edges are what the layering
   pass wants — a module depends on exactly what its files name.
 * **Compiler `-MM`** (when a compiler and compile_commands.json are
   present): ask the real preprocessor for each TU's transitive header
   closure and verify the resolver's closure covers the same statcube
   headers. This catches includes the textual scan would miss (macro
   includes, generated headers) without making analysis depend on having
   a compiler — g++-only and compiler-less boxes still get the full
   analysis from the resolver alone.
"""

import json
import os
import re
import shlex
import subprocess

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"(statcube/[^"]+)"')


def direct_includes(ctx, relpath):
    """[(line_no, "statcube/<mod>/<file>")] — direct statcube includes.

    Matched against the *raw* lines (the code view blanks string-literal
    bodies, include paths among them), with the code view consulted only
    to reject directives living inside comments.
    """
    out = []
    code = ctx.code_lines(relpath)
    for idx, line in enumerate(ctx.raw(relpath).split("\n")):
        m = INCLUDE_RE.match(line)
        if m and idx < len(code) and code[idx].lstrip().startswith("#"):
            out.append((idx + 1, m.group(1)))
    return out


def resolve_include(ctx, inc):
    """'statcube/x/y.h' -> 'src/statcube/x/y.h' if it exists, else None."""
    rel = os.path.join("src", inc)
    if os.path.exists(os.path.join(ctx.repo_root, rel)):
        return rel
    return None


def tu_closure_scan(ctx, relpath):
    """Transitive statcube-header closure of one file via the resolver."""
    seen = set()
    stack = [relpath]
    while stack:
        cur = stack.pop()
        for _, inc in direct_includes(ctx, cur):
            dep = resolve_include(ctx, inc)
            if dep and dep not in seen:
                seen.add(dep)
                stack.append(dep)
    return seen


# ---------------------------------------------------------------------------
# compile_commands.json + compiler -MM cross-check
# ---------------------------------------------------------------------------

def load_compdb(ctx, compdb_path=None):
    """compile_commands.json entries for src/statcube TUs, or []."""
    path = compdb_path or os.path.join(
        ctx.repo_root, "build", "compile_commands.json")
    if not os.path.exists(path):
        return []
    with open(path) as f:
        db = json.load(f)
    out = []
    for entry in db:
        rel = os.path.relpath(entry["file"], ctx.repo_root)
        if rel.startswith(os.path.join("src", "statcube")):
            out.append(entry)
    return out


def _mm_command(entry):
    """Rewrite one compdb entry into a -MM dependency-listing command."""
    if "arguments" in entry:
        args = list(entry["arguments"])
    else:
        args = shlex.split(entry["command"])
    out = []
    skip_next = False
    for a in args:
        if skip_next:
            skip_next = False
            continue
        if a in ("-o", "-MF", "-MT", "-MQ"):
            skip_next = True
            continue
        if a in ("-c", "-MD", "-MMD"):
            continue
        out.append(a)
    out += ["-MM", "-MG"]
    return out


def mm_closure(entry, repo_root):
    """statcube headers the preprocessor reports for one TU, or None when
    the compiler is unavailable/fails (callers treat None as 'no check')."""
    try:
        proc = subprocess.run(
            _mm_command(entry), cwd=entry.get("directory", repo_root),
            capture_output=True, text=True, timeout=60)
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    deps = set()
    text = proc.stdout.replace("\\\n", " ")
    for tok in text.split():
        if tok.endswith(":"):
            continue
        full = os.path.normpath(
            os.path.join(entry.get("directory", repo_root), tok))
        rel = os.path.relpath(full, repo_root)
        if rel.startswith(os.path.join("src", "statcube")) and \
                rel.endswith(".h"):
            deps.add(rel)
    return deps


def cross_check(ctx, compdb, max_tus=None):
    """Compare the resolver's closure against -MM for every compdb TU.

    Returns (checked, discrepancies): headers -MM saw that the resolver
    missed (the dangerous direction — a module edge the layering pass
    would silently not see). Resolver-only extras are fine: the scan
    resolves includes inside `#if 0`/platform blocks the preprocessor
    skipped, which can only make the layer check stricter.
    """
    checked = 0
    discrepancies = []
    for entry in compdb[:max_tus] if max_tus else compdb:
        rel = os.path.relpath(entry["file"], ctx.repo_root)
        mm = mm_closure(entry, ctx.repo_root)
        if mm is None:
            continue
        checked += 1
        scan = tu_closure_scan(ctx, rel)
        missed = mm - scan - {rel}
        for h in sorted(missed):
            discrepancies.append(
                f"{rel}: -MM reaches {h} but the include scanner does not")
    return checked, discrepancies
