"""Shared infrastructure for statcube-analyze passes.

A pass is a function `run(ctx) -> list[Finding]`. The AnalyzeContext owns
the file inventory and the comment/string-stripped "code view" of every
C++ file (reusing statcube_lint.strip_code_view so both tools agree on
what counts as code), plus the suppression table.

Suppression file format (one finding class per line):

    <pass-id> <key>  # <mandatory justification>

`key` is the stable, line-number-free identity every Finding carries
(e.g. `cache->query` for a layer edge, `src/.../foo.cc:states` for a
determinism finding). A suppression with no justification text, or one
that matches nothing on the current tree, is itself an error: the file
must describe exactly the set of accepted findings, no more.
"""

import os
import sys

_THIS_DIR = os.path.dirname(os.path.abspath(__file__))
_TOOLS_DIR = os.path.dirname(_THIS_DIR)
if _TOOLS_DIR not in sys.path:
    sys.path.insert(0, _TOOLS_DIR)

from statcube_lint import strip_code_view  # noqa: E402

CXX_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp")


class Finding:
    """One analyzer finding with a stable suppression key."""

    def __init__(self, pass_id, key, path, line, message):
        self.pass_id = pass_id
        self.key = key
        self.path = path  # repo-relative
        self.line = line  # 1-based, 0 when the finding has no single site
        self.message = message

    def __str__(self):
        loc = f"{self.path}:{self.line}" if self.line else self.path
        return f"{loc}: [{self.pass_id}/{self.key}] {self.message}"


class SuppressionError(Exception):
    """Malformed suppression file (missing justification, bad syntax)."""


class Suppressions:
    def __init__(self, entries):
        # {(pass_id, key): justification}
        self.entries = entries
        self.used = set()

    @classmethod
    def load(cls, path):
        entries = {}
        if not os.path.exists(path):
            return cls(entries)
        with open(path) as f:
            for lineno, raw in enumerate(f, 1):
                line = raw.strip()
                if not line or line.startswith("#"):
                    continue
                body, sep, justification = line.partition("#")
                if not sep or not justification.strip():
                    raise SuppressionError(
                        f"{path}:{lineno}: suppression without a "
                        "justification comment (`<pass> <key>  # why`)")
                parts = body.split()
                if len(parts) != 2:
                    raise SuppressionError(
                        f"{path}:{lineno}: expected `<pass> <key>`, got "
                        f"{body.strip()!r}")
                entries[(parts[0], parts[1])] = justification.strip()
        return cls(entries)

    def matches(self, finding):
        k = (finding.pass_id, finding.key)
        if k in self.entries:
            self.used.add(k)
            return True
        return False

    def unused(self):
        return sorted(set(self.entries) - self.used)


class AnalyzeContext:
    """File inventory + code views for one analysis run.

    `repo_root` may point at a fixture tree in self-tests; everything the
    passes read goes through this object so tests can target temp dirs.
    """

    def __init__(self, repo_root, layers_path=None):
        self.repo_root = os.path.abspath(repo_root)
        self.layers_path = layers_path or os.path.join(
            _THIS_DIR, "layers.json")
        self._code_views = {}
        self._raw = {}

    # ---- file inventory --------------------------------------------------

    def src_files(self):
        """All C++ files under src/statcube, repo-relative, sorted."""
        out = []
        root = os.path.join(self.repo_root, "src", "statcube")
        for dirpath, _, filenames in os.walk(root):
            for name in sorted(filenames):
                if name.endswith(CXX_EXTENSIONS):
                    full = os.path.join(dirpath, name)
                    out.append(os.path.relpath(full, self.repo_root))
        return sorted(out)

    def module_of(self, relpath):
        """Module name of a src/statcube file: the path component after
        src/statcube/, or None for files outside it."""
        parts = relpath.replace(os.sep, "/").split("/")
        if len(parts) >= 4 and parts[0] == "src" and parts[1] == "statcube":
            return parts[2]
        return None

    # ---- file contents ---------------------------------------------------

    def raw(self, relpath):
        if relpath not in self._raw:
            with open(os.path.join(self.repo_root, relpath)) as f:
                self._raw[relpath] = f.read()
        return self._raw[relpath]

    def code_view(self, relpath):
        """Comment/string-stripped text with identical line structure."""
        if relpath not in self._code_views:
            self._code_views[relpath] = strip_code_view(self.raw(relpath))
        return self._code_views[relpath]

    def code_lines(self, relpath):
        return self.code_view(relpath).split("\n")


def find_matching_brace(lines, line_idx, col):
    """Given `lines[line_idx][col] == '{'`, return (line_idx, col) of the
    matching '}' or None if the file ends first. Operates on a code view,
    so braces in strings/comments are already blanked."""
    depth = 0
    i, j = line_idx, col
    while i < len(lines):
        line = lines[i]
        while j < len(line):
            c = line[j]
            if c == "{":
                depth += 1
            elif c == "}":
                depth -= 1
                if depth == 0:
                    return (i, j)
            j += 1
        i += 1
        j = 0
    return None
