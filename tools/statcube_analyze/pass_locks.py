"""Pass 2: global lock-order analysis.

Harvests every Mutex declaration (class members via cxxmodel, locals via
function scans) and every acquisition site (`MutexLock l(mu);`,
`mu.Lock()`), then builds the global lock-acquisition graph: an edge
A -> B means some code path acquires B while holding A — directly, or
through a call to a function (same TU) that acquires B. A cycle in that
graph is a potential deadlock: two threads entering the cycle from
different points can each hold the lock the other wants.

Lock identity is `Class::member` where resolvable:

 * a plain identifier resolves against the enclosing method's class,
   then against the unique class declaring that member anywhere;
 * `expr->member` / `expr.member` resolves via the unique declaring
   class, falling back to matching the base variable's name against
   declaring class names (`state_->mu` -> `State::mu`);
 * function-local `Mutex` variables are scoped to their function;
 * anything else degrades to `?<file-stem>::member` — a conservative
   merged identity. Merged identities can over-report; cycles touching
   them deserve a look anyway, and a justified suppression if benign.

Known limitation (by design, see cxxmodel): lambdas are independent
functions, so edges into deferred work (thread bodies, scheduler tasks)
are not fabricated from their definition site.
"""

import os
import re

import cxxmodel

PASS_ID = "locks"

_MEMBER_TAIL_RE = re.compile(r"(?:\.|->)\s*([A-Za-z_]\w*)\s*$")


def _base_variable(expr):
    """`queues_[i]->mu` -> `queues_`; `state_->mu` -> `state_`."""
    m = _MEMBER_TAIL_RE.search(expr)
    if not m:
        return None
    base = expr[: m.start()]
    base = re.sub(r"\[[^\]]*\]", "", base)
    base = base.split(".")[-1].split("->")[-1].strip(" *&()")
    return base or None


class LockResolver:
    def __init__(self, classes):
        self.classes = classes  # {class: set(members)} across the repo
        self.by_member = {}
        for cls, members in classes.items():
            for mem in members:
                self.by_member.setdefault(mem, set()).add(cls)

    def resolve(self, expr, func, file_stem):
        expr = expr.strip()
        member_m = _MEMBER_TAIL_RE.search(expr)
        member = member_m.group(1) if member_m else expr
        if not re.fullmatch(r"[A-Za-z_]\w*", member):
            return f"?{file_stem}::<expr>"
        if member_m is None:
            if member in func.local_mutexes:
                return f"{file_stem}:{func.qualified}::{member}"
            if func.cls and member in self.classes.get(func.cls, ()):
                return f"{func.cls}::{member}"
        owners = self.by_member.get(member, set())
        if len(owners) == 1:
            return f"{next(iter(owners))}::{member}"
        if member_m is not None:
            base = _base_variable(expr)
            if base:
                norm = base.strip("_").lower()
                exact = [c for c in owners if c.lower() == norm]
                if len(exact) == 1:
                    return f"{exact[0]}::{member}"
                matches = [c for c in owners
                           if norm and (norm in c.lower() or
                                        c.lower() in norm)]
                if len(matches) == 1:
                    return f"{matches[0]}::{member}"
        return f"?{file_stem}::{member}"


def _transitive_acquires(funcs_by_name, direct):
    """Fixpoint of `locks a function may acquire` across same-TU calls."""
    trans = {name: set(locks) for name, locks in direct.items()}
    changed = True
    while changed:
        changed = False
        for name, func in funcs_by_name.items():
            for ev in func.events:
                if ev[0] == "call" and ev[1] in trans:
                    add = trans[ev[1]] - trans[name]
                    if add:
                        trans[name] |= add
                        changed = True
    return trans


def build_lock_graph(ctx, files=None):
    """-> (edges {A: {B: (path, line, note)}}, classes registry)."""
    files = files if files is not None else ctx.src_files()
    models = []
    classes = {}
    for relpath in files:
        if relpath.endswith(os.path.join("common", "mutex.h")):
            continue  # the Mutex wrapper itself, not a lock user
        model = cxxmodel.scan_file(ctx, relpath)
        models.append(model)
        for cls, members in model.classes.items():
            classes.setdefault(cls, set()).update(members)

    resolver = LockResolver(classes)
    edges = {}

    # Group models per TU stem so .h declarations and .cc bodies share a
    # call-graph (WorkerQueue methods in the header, users in the .cc).
    by_stem = {}
    for model in models:
        stem = os.path.splitext(os.path.basename(model.relpath))[0]
        by_stem.setdefault(stem, []).append(model)

    for stem, group in sorted(by_stem.items()):
        funcs = [f for m in group for f in m.functions]
        func_paths = {}
        funcs_by_name = {}
        for m in group:
            for f in m.functions:
                # Last definition wins on collisions; good enough for a
                # may-acquire set.
                funcs_by_name[f.name] = f
                func_paths[id(f)] = m.relpath
        direct = {}
        for name, f in funcs_by_name.items():
            direct[name] = {
                resolver.resolve(ev[1], f, stem)
                for ev in f.events if ev[0] == "acquire"
            }
        trans = _transitive_acquires(funcs_by_name, direct)

        for f in funcs:
            path = func_paths[id(f)]
            held = []            # (lock, depth)
            depth = 0
            for ev in f.events:
                if ev[0] == "open":
                    depth += 1
                elif ev[0] == "close":
                    depth -= 1
                    held = [(l, d) for (l, d) in held if d <= depth]
                elif ev[0] == "acquire":
                    lock = resolver.resolve(ev[1], f, stem)
                    for other, _ in held:
                        if other != lock:
                            edges.setdefault(other, {}).setdefault(
                                lock, (path, ev[2], f.qualified))
                    held.append((lock, depth))
                elif ev[0] == "release":
                    lock = resolver.resolve(ev[1], f, stem)
                    held = [(l, d) for (l, d) in held if l != lock]
                elif ev[0] == "call":
                    if not held or ev[1] == f.name:
                        continue
                    for callee_lock in sorted(trans.get(ev[1], ())):
                        for other, _ in held:
                            if other != callee_lock:
                                edges.setdefault(other, {}).setdefault(
                                    callee_lock,
                                    (path, ev[2],
                                     f"{f.qualified} via call to {ev[1]}"))
    return edges, classes


def _cycles(edges):
    """All strongly connected components of size > 1 (or self-loops)."""
    import pass_layers
    graph = {a: set(bs) for a, bs in edges.items()}
    for bs in edges.values():
        for b in bs:
            graph.setdefault(b, set())
    return pass_layers._find_cycles(graph)


def run(ctx, files=None):
    from core import Finding
    edges, _ = build_lock_graph(ctx, files)
    findings = []
    for scc in _cycles(edges):
        in_cycle = set(scc)
        sites = []
        for a in scc:
            for b, (path, line, where) in sorted(edges.get(a, {}).items()):
                if b in in_cycle:
                    sites.append(f"{a} -> {b} at {path}:{line} ({where})")
        first = None
        for a in scc:
            for b, site in sorted(edges.get(a, {}).items()):
                if b in in_cycle:
                    first = site
                    break
            if first:
                break
        path, line = (first[0], first[1]) if first else ("src/statcube", 0)
        findings.append(Finding(
            PASS_ID, "cycle:" + ",".join(scc), path, line,
            "potential deadlock: lock-acquisition cycle between "
            f"{scc}; " + "; ".join(sites)))
    return findings
