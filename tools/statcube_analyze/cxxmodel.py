"""A lightweight structural model of one C++ file for statcube-analyze.

This is not a parser — it is a brace-matching scanner over the
comment/string-stripped code view that recovers just enough structure for
the whole-program passes:

 * class/struct bodies, and the `Mutex` members declared in them;
 * function and lambda bodies, as flat event streams of
   `open` / `close` (block scopes), `acquire` (MutexLock/.Lock sites),
   `stmt` (raw statement text, for pass-specific matching) and `call`
   (identifier followed by `(`);
 * namespace nesting (ignored for scoping, tracked so depth stays right).

Lambda bodies are modeled as *separate* functions (named
`<enclosing>::lambda@<line>`), not as nested scopes of their enclosing
function: almost every lambda in this codebase is deferred work (thread
entry, scheduler task, morsel body), so treating its acquisitions as
nested under locks held at the definition site would fabricate
lock-order edges that never happen at runtime.
"""

import re

KEYWORDS_NOT_CALLS = {
    "if", "for", "while", "switch", "return", "sizeof", "catch", "do",
    "alignas", "alignof", "decltype", "static_assert", "defined", "assert",
    "static_cast", "dynamic_cast", "reinterpret_cast", "const_cast", "new",
    "delete", "throw", "else", "case", "co_await", "co_return", "noexcept",
    "operator", "typeid", "until",
}

_MACRO_TRAILER_RE = re.compile(r"STATCUBE_\w+\s*\([^)]*\)")
_NAMESPACE_RE = re.compile(r"(^|[;{}\s])namespace(\s+[\w:]+)?\s*$")
_CLASS_RE = re.compile(r"(^|[;{}\s])(class|struct|union)\s+")
_ENUM_RE = re.compile(r"(^|[;{}\s])enum\b")
_LAMBDA_RE = re.compile(
    r"\[[^\[\]]*\]\s*(\([^()]*(\([^()]*\))*[^()]*\))?\s*"
    r"(mutable|noexcept|constexpr|\s)*(->\s*[^{]+)?$")
_FUNC_NAME_RE = re.compile(r"([A-Za-z_~][\w~]*)\s*\(")
_QUALIFIED_RE = re.compile(r"([A-Za-z_]\w*)\s*::\s*([A-Za-z_~][\w~]*)\s*\($")
_MUTEX_MEMBER_RE = re.compile(r"(^|\s)(?:mutable\s+)?Mutex\s+(\w+)\s*$")
_ACQUIRE_RE = re.compile(r"\bMutexLock\s+\w+\s*\(\s*([^,)]+)")
_MANUAL_LOCK_RE = re.compile(r"([\w\]\[.>_-]+?)\s*(?:\.|->)\s*Lock\s*\(\s*\)")
_MANUAL_UNLOCK_RE = re.compile(
    r"([\w\]\[.>_-]+?)\s*(?:\.|->)\s*Unlock\s*\(\s*\)")
_CALL_RE = re.compile(r"(?<![\w.>:])([A-Za-z_]\w*)\s*\(")
_LOCAL_MUTEX_RE = re.compile(r"^\s*Mutex\s+(\w+)\s*;?\s*$")


class Function:
    def __init__(self, name, cls, line):
        self.name = name      # unqualified (lambdas: enclosing::lambda@N)
        self.cls = cls        # Class for `Ret Class::Name(...)`, else None
        self.line = line
        self.events = []      # ('open',) ('close',)
                              # ('acquire', expr, line) ('release', expr, line)
                              # ('call', name, line) ('stmt', text, line)
        self.local_mutexes = set()

    @property
    def qualified(self):
        return f"{self.cls}::{self.name}" if self.cls else self.name


class FileModel:
    def __init__(self, relpath):
        self.relpath = relpath
        self.classes = {}     # class name -> set(Mutex member names)
        self.functions = []   # Function, in file order (lambdas included)


def _classify_open(head):
    """What kind of scope does this `{` start? -> (kind, name, cls)."""
    head = head.strip()
    if _NAMESPACE_RE.search(head):
        return ("namespace", None, None)
    if _ENUM_RE.search(head) and "(" not in _MACRO_TRAILER_RE.sub("", head):
        return ("block", None, None)
    cleaned = _MACRO_TRAILER_RE.sub(" ", head)
    cm = _CLASS_RE.search(cleaned)
    if cm:
        tail = cleaned[cm.end():]
        # `struct TaskGroup::State` defines State; keep the last component.
        nm = re.match(r"\s*((?:[A-Za-z_]\w*\s*::\s*)*)([A-Za-z_]\w*)", tail)
        # A '(' before the class keyword means this is a function returning
        # or taking a class type, not a definition.
        if nm and nm.group(2) and "(" not in cleaned[:cm.start()]:
            return ("class", nm.group(2), None)
    if _LAMBDA_RE.search(head):
        return ("lambda", None, None)
    # Function definition: `...Name(args...) [qualifiers] {`
    sig = cleaned
    if sig.endswith("try"):
        sig = sig[:-3].rstrip()
    for qual in ("const", "noexcept", "override", "final", "mutable"):
        while sig.endswith(qual):
            sig = sig[: -len(qual)].rstrip()
    if sig.endswith(")"):
        # Walk back to the matching '(' of the argument list.
        depth = 0
        for i in range(len(sig) - 1, -1, -1):
            if sig[i] == ")":
                depth += 1
            elif sig[i] == "(":
                depth -= 1
                if depth == 0:
                    prefix = sig[:i].rstrip() + "("
                    qm = _QUALIFIED_RE.search(prefix)
                    if qm:
                        name, cls = qm.group(2), qm.group(1)
                    else:
                        fm = re.search(r"([A-Za-z_~][\w~]*)\s*\($", prefix)
                        name, cls = (fm.group(1), None) if fm else (None,
                                                                    None)
                    if name and name not in ("if", "for", "while", "switch",
                                             "catch") and "=" not in prefix:
                        return ("function", name, cls)
                    break
    return ("block", None, None)


def _statement_events(func, stmt, line):
    """Record the lock/call events of one statement into `func`."""
    lm = _LOCAL_MUTEX_RE.match(stmt)
    if lm:
        func.local_mutexes.add(lm.group(1))
        return
    for m in _ACQUIRE_RE.finditer(stmt):
        func.events.append(("acquire", m.group(1).strip().lstrip("&"),
                            line))
    for m in _MANUAL_LOCK_RE.finditer(stmt):
        func.events.append(("acquire", m.group(1).strip(), line))
    for m in _MANUAL_UNLOCK_RE.finditer(stmt):
        func.events.append(("release", m.group(1).strip(), line))
    for m in _CALL_RE.finditer(stmt):
        name = m.group(1)
        if name not in KEYWORDS_NOT_CALLS and name != "MutexLock":
            func.events.append(("call", name, line))
    func.events.append(("stmt", stmt, line))


def scan_file(ctx, relpath):
    """Build the FileModel for one file from its code view."""
    text = ctx.code_view(relpath)
    model = FileModel(relpath)
    stack = []        # (kind, name) per open brace
    func_stack = []   # Function objects for enclosing function/lambda scopes
    buf = []
    line = 1
    lambda_count = 0

    def flush_statement():
        stmt = "".join(buf).strip()
        buf.clear()
        if stmt and func_stack:
            _statement_events(func_stack[-1], stmt, line)
        return stmt

    in_class = lambda: any(k == "class" for k, _ in stack)

    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "\n":
            buf.append(" ")
            line += 1
            i += 1
            continue
        if c == ";":
            stmt = "".join(buf).strip()
            if stmt and in_class() and not func_stack:
                mm = _MUTEX_MEMBER_RE.search(
                    _MACRO_TRAILER_RE.sub("", stmt).rstrip())
                if mm:
                    for k, nm in reversed(stack):
                        if k == "class":
                            model.classes.setdefault(nm, set()).add(
                                mm.group(2))
                            break
            flush_statement()
            i += 1
            continue
        if c == "{":
            head = "".join(buf)
            kind, name, cls = _classify_open(head)
            if kind == "lambda" and not func_stack:
                kind = "block"  # class-member initializer lambdas etc.
            if kind == "function":
                f = Function(name, cls, line)
                model.functions.append(f)
                func_stack.append(f)
            elif kind == "lambda":
                lambda_count += 1
                enclosing = func_stack[-1].qualified
                f = Function(f"{enclosing}::lambda@{line}", None, line)
                model.functions.append(f)
                func_stack.append(f)
            elif kind == "block" and func_stack:
                # The statement head (for/if/plain brace) still carries
                # calls and acquisitions — record before opening the scope.
                if head.strip():
                    _statement_events(func_stack[-1], head.strip(), line)
                func_stack[-1].events.append(("open",))
            buf.clear()
            stack.append((kind, name))
            i += 1
            continue
        if c == "}":
            flush_statement()
            if stack:
                kind, _ = stack.pop()
                if kind in ("function", "lambda"):
                    if func_stack:
                        func_stack.pop()
                elif kind == "block" and func_stack:
                    func_stack[-1].events.append(("close",))
            i += 1
            continue
        buf.append(c)
        i += 1
    return model
